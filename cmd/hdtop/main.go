// Command hdtop is a terminal dashboard over hdserve's windowed
// telemetry. It polls GET /v1/telemetry and repaints one frame per poll:
// per-plane QPS, latency quantiles (p50/p99/p999), SLO burn rates and
// breach state, a QPS trend chart over the trailing polls, and a per-model
// Hd-mix heat strip showing where estimate traffic concentrates across
// Hamming-distance classes — the mix the refinement loop budgets against.
//
//	hdtop -url http://127.0.0.1:8080 -interval 2s
//
// -once renders a single frame without ANSI screen clearing, so the
// output can be piped into files, docs, or CI logs:
//
//	hdtop -url http://127.0.0.1:8080 -once
//
// Exit status: 0 on success, 1 when the server cannot be polled.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"strings"
	"time"

	"hdpower/internal/textplot"
)

// snapshot mirrors the GET /v1/telemetry payload
// (internal/telemetry.Snapshot); only the fields the dashboard renders
// are decoded.
type snapshot struct {
	WindowSeconds float64         `json:"window_seconds"`
	Windows       int             `json:"windows"`
	Planes        []planeSnapshot `json:"planes"`
	Models        []modelSnapshot `json:"models"`
	DroppedModels uint64          `json:"dropped_models"`
}

type planeSnapshot struct {
	Plane    string  `json:"plane"`
	Requests uint64  `json:"requests"`
	Bad      uint64  `json:"bad"`
	QPS      float64 `json:"qps"`
	P50      float64 `json:"p50_s"`
	P99      float64 `json:"p99_s"`
	P999     float64 `json:"p999_s"`
	BurnFast float64 `json:"burn_fast"`
	BurnSlow float64 `json:"burn_slow"`
	Breached bool    `json:"breached"`
}

type modelSnapshot struct {
	Key        string   `json:"key"`
	Requests   uint64   `json:"requests"`
	Estimates  uint64   `json:"estimates"`
	AvgLatency float64  `json:"avg_latency_s"`
	HdHits     []uint64 `json:"hd_hits"`
}

func main() {
	var (
		url      = flag.String("url", "http://127.0.0.1:8080", "hdserve base URL")
		interval = flag.Duration("interval", 2*time.Second, "poll interval")
		frames   = flag.Int("n", 0, "number of frames to render (0 = until interrupted)")
		once     = flag.Bool("once", false, "render one frame without clearing the screen and exit (for captures and scripts)")
		width    = flag.Int("width", 60, "trend chart width in characters")
	)
	flag.Parse()
	if *once {
		*frames = 1
	}
	client := &http.Client{Timeout: 10 * time.Second}
	hist := newHistory(64)
	for i := 0; *frames == 0 || i < *frames; i++ {
		if i > 0 {
			time.Sleep(*interval)
		}
		snap, err := fetch(client, *url)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hdtop: %v\n", err)
			os.Exit(1)
		}
		hist.push(snap)
		if *frames != 1 {
			fmt.Print("\x1b[H\x1b[2J") // cursor home + clear: repaint in place
		}
		fmt.Print(render(*url, snap, hist, *width))
	}
}

// fetch polls one telemetry snapshot.
func fetch(client *http.Client, url string) (*snapshot, error) {
	resp, err := client.Get(url + "/v1/telemetry")
	if err != nil {
		return nil, err
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return nil, fmt.Errorf("read /v1/telemetry: %v", err)
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("/v1/telemetry: status %d: %s", resp.StatusCode, data)
	}
	var snap snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return nil, fmt.Errorf("decode /v1/telemetry: %v", err)
	}
	return &snap, nil
}

// history keeps the trailing per-plane QPS samples backing the trend
// chart, bounded to cap polls.
type history struct {
	cap   int
	order []string             // plane registration order, first seen first
	qps   map[string][]float64 // plane -> trailing samples
}

func newHistory(cap int) *history {
	return &history{cap: cap, qps: make(map[string][]float64)}
}

func (h *history) push(snap *snapshot) {
	for _, p := range snap.Planes {
		if _, ok := h.qps[p.Plane]; !ok {
			h.order = append(h.order, p.Plane)
		}
		s := append(h.qps[p.Plane], p.QPS)
		if len(s) > h.cap {
			s = s[len(s)-h.cap:]
		}
		h.qps[p.Plane] = s
	}
}

// render formats one full dashboard frame.
func render(url string, snap *snapshot, hist *history, width int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "hdtop — %s — window %gs × %d\n\n",
		url, snap.WindowSeconds, snap.Windows)

	fmt.Fprintf(&b, "%-8s %10s %8s %9s %9s %9s %10s  %s\n",
		"PLANE", "REQUESTS", "QPS", "P50", "P99", "P999", "BURN f/s", "SLO")
	for _, p := range snap.Planes {
		state := "ok"
		if p.Breached {
			state = "BREACH"
		}
		fmt.Fprintf(&b, "%-8s %10d %8.1f %9s %9s %9s %5.2f/%4.2f  %s\n",
			p.Plane, p.Requests, p.QPS,
			fmtSeconds(p.P50), fmtSeconds(p.P99), fmtSeconds(p.P999),
			p.BurnFast, p.BurnSlow, state)
	}

	if chart := qpsChart(hist, width); chart != "" {
		b.WriteByte('\n')
		b.WriteString(chart)
	}

	if len(snap.Models) > 0 {
		keyW := len("MODEL")
		for _, m := range snap.Models {
			if len(m.Key) > keyW {
				keyW = len(m.Key)
			}
		}
		fmt.Fprintf(&b, "\n%-*s %10s %10s %9s  %s\n",
			keyW, "MODEL", "REQUESTS", "ESTIMATES", "AVG", "HD MIX (class 0..m)")
		for _, m := range snap.Models {
			fmt.Fprintf(&b, "%-*s %10d %10d %9s  |%s|\n",
				keyW, m.Key, m.Requests, m.Estimates,
				fmtSeconds(m.AvgLatency), heatStrip(m.HdHits))
		}
	}
	if snap.DroppedModels > 0 {
		fmt.Fprintf(&b, "\n(%d model(s) over the profiler cap, not shown)\n", snap.DroppedModels)
	}
	return b.String()
}

// qpsChart renders the trailing QPS trend once at least two polls exist.
func qpsChart(hist *history, width int) string {
	n := 0
	var series []textplot.Series
	for _, name := range hist.order {
		s := hist.qps[name]
		if len(s) > n {
			n = len(s)
		}
		series = append(series, textplot.Series{Name: name + " qps", Y: s})
	}
	if n < 2 {
		return ""
	}
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = float64(i - n + 1) // polls ago, newest at 0
	}
	// Left-pad shorter series (planes that appeared later) with NaN so
	// every series shares the x axis; textplot skips NaN points.
	for si, s := range series {
		if len(s.Y) == n {
			continue
		}
		pad := make([]float64, n-len(s.Y), n)
		for i := range pad {
			pad[i] = math.NaN()
		}
		series[si].Y = append(pad, s.Y...)
	}
	return textplot.Chart("QPS trend", "polls ago", xs, series, width, 8)
}

// heatRamp maps relative per-class traffic to a glyph, lightest to
// heaviest.
var heatRamp = []byte(" .:-=+*#%@")

// heatStrip renders one character per Hd class, scaled to the hottest
// class, so traffic concentration is visible at a glance.
func heatStrip(hits []uint64) string {
	var max uint64
	for _, h := range hits {
		if h > max {
			max = h
		}
	}
	strip := make([]byte, len(hits))
	for i, h := range hits {
		if max == 0 {
			strip[i] = heatRamp[0]
			continue
		}
		strip[i] = heatRamp[int(float64(h)/float64(max)*float64(len(heatRamp)-1)+0.5)]
	}
	return string(strip)
}

// fmtSeconds renders a duration-in-seconds float compactly.
func fmtSeconds(s float64) string {
	switch {
	case s <= 0:
		return "-"
	case s < 1e-3:
		return fmt.Sprintf("%.0fµs", s*1e6)
	case s < 1:
		return fmt.Sprintf("%.2fms", s*1e3)
	default:
		return fmt.Sprintf("%.2fs", s)
	}
}
