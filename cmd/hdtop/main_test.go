package main

import (
	"strings"
	"testing"
)

func testSnapshot() *snapshot {
	return &snapshot{
		WindowSeconds: 10,
		Windows:       30,
		Planes: []planeSnapshot{
			{Plane: "unary", Requests: 1234, QPS: 410.5, P50: 42e-6, P99: 180e-6,
				P999: 410e-6, BurnFast: 0.1, BurnSlow: 0.05},
			{Plane: "stream", Requests: 88, QPS: 12.25, P50: 1.2e-3, P99: 3.9e-3,
				P999: 8.8e-3, BurnFast: 2.5, BurnSlow: 2.1, Breached: true},
		},
		Models: []modelSnapshot{
			{Key: "csa-multiplier/w8/s1", Requests: 1000, Estimates: 16000,
				AvgLatency: 48e-6, HdHits: []uint64{0, 10, 400, 800, 400, 10, 0, 0, 0}},
		},
	}
}

func TestRenderFrame(t *testing.T) {
	hist := newHistory(8)
	snap := testSnapshot()
	hist.push(snap)
	hist.push(snap)

	frame := render("http://example:8080", snap, hist, 40)
	for _, want := range []string{
		"window 10s × 30",
		"unary",
		"BREACH", // the stream plane burns over threshold on both spans
		"ok",
		"QPS trend",
		"csa-multiplier/w8/s1",
		"42µs",
		"3.90ms",
	} {
		if !strings.Contains(frame, want) {
			t.Errorf("frame missing %q:\n%s", want, frame)
		}
	}
	if frame != render("http://example:8080", snap, hist, 40) {
		t.Error("render is not deterministic for a fixed snapshot")
	}
}

// A plane that appears mid-run gets NaN-padded history, not a crash or a
// length-mismatch chart error.
func TestQPSChartLatePlane(t *testing.T) {
	hist := newHistory(8)
	first := &snapshot{Planes: []planeSnapshot{{Plane: "unary", QPS: 100}}}
	hist.push(first)
	hist.push(testSnapshot())
	hist.push(testSnapshot())

	chart := qpsChart(hist, 40)
	if !strings.Contains(chart, "unary qps") || !strings.Contains(chart, "stream qps") {
		t.Fatalf("chart missing a series:\n%s", chart)
	}
	if strings.Contains(chart, "length") {
		t.Fatalf("chart reports a series length mismatch:\n%s", chart)
	}
}

func TestHeatStrip(t *testing.T) {
	if got := heatStrip([]uint64{0, 5, 10}); got != " +@" {
		t.Errorf("heatStrip([0 5 10]) = %q, want %q", got, " +@")
	}
	if got := heatStrip([]uint64{0, 0}); got != "  " {
		t.Errorf("heatStrip on zero traffic = %q, want blanks", got)
	}
}

func TestFmtSeconds(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{0, "-"},
		{42e-6, "42µs"},
		{3.9e-3, "3.90ms"},
		{1.25, "1.25s"},
	}
	for _, c := range cases {
		if got := fmtSeconds(c.in); got != c.want {
			t.Errorf("fmtSeconds(%g) = %q, want %q", c.in, got, c.want)
		}
	}
}
