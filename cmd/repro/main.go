// Command repro regenerates the paper's tables and figures.
//
// Usage:
//
//	repro [-exp all|fig1|fig2|table1|table2|fig4|table3|fig6|fig9]
//	      [-quick] [-char N] [-eval N] [-widths 8,12,16] [-seed N] [-workers N]
//
// With -quick the reduced test-scale configuration is used; the default
// configuration matches the paper's stream lengths (5000-pattern streams,
// 8000 characterization pairs) and takes a few minutes for `-exp all`.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"hdpower/internal/experiments"
)

func main() {
	var (
		exp = flag.String("exp", "all", "experiment: all, fig1, fig2, table1, table2, "+
			"fig4, table3, fig6, fig9, estimators, engine, zclusters, adapt")
		quick       = flag.Bool("quick", false, "use the reduced test-scale configuration")
		charN       = flag.Int("char", 0, "override characterization pattern count")
		evalN       = flag.Int("eval", 0, "override evaluation stream length")
		widths      = flag.String("widths", "", "override Table 1 operand widths, e.g. 8,12,16")
		seed        = flag.Int64("seed", 0, "override random seed")
		workers     = flag.Int("workers", 0, "worker goroutines for characterization (0 = all CPUs); results are identical for any value")
		manifestDir = flag.String("manifest-dir", "", "persist one flight-recorder manifest per characterized instance here (off when empty)")
	)
	flag.Parse()

	cfg := experiments.Default()
	if *quick {
		cfg = experiments.Quick()
	}
	if *charN > 0 {
		cfg.CharPatterns = *charN
	}
	if *evalN > 0 {
		cfg.EvalPatterns = *evalN
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	cfg.Workers = *workers
	if *manifestDir != "" {
		if err := os.MkdirAll(*manifestDir, 0o755); err != nil {
			fatalf("manifest dir: %v", err)
		}
		cfg.ManifestDir = *manifestDir
	}
	if *widths != "" {
		var ws []int
		for _, part := range strings.Split(*widths, ",") {
			w, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil {
				fatalf("bad -widths: %v", err)
			}
			ws = append(ws, w)
		}
		cfg.Widths = ws
	}

	suite := experiments.New(cfg)
	fmt.Printf("# hdpower reproduction — char %d pairs, eval %d patterns, widths %v, seed %d\n\n",
		cfg.CharPatterns, cfg.EvalPatterns, cfg.Widths, cfg.Seed)

	type runner struct {
		name string
		run  func() (fmt.Stringer, error)
	}
	runners := []runner{
		{"fig1", func() (fmt.Stringer, error) { return suite.Figure1() }},
		{"fig2", func() (fmt.Stringer, error) { return suite.Figure2() }},
		{"table1", func() (fmt.Stringer, error) { return suite.Table1() }},
		{"table2", func() (fmt.Stringer, error) { return suite.Table2() }},
		{"fig4", func() (fmt.Stringer, error) { return suite.Figure4() }},
		{"table3", func() (fmt.Stringer, error) { return suite.Table3() }},
		{"fig6", func() (fmt.Stringer, error) { return suite.Figure6() }},
		{"fig9", func() (fmt.Stringer, error) { return suite.Figure9() }},
		// Extensions beyond the paper (see DESIGN.md §6).
		{"estimators", func() (fmt.Stringer, error) { return suite.EstimatorStudy() }},
		{"engine", func() (fmt.Stringer, error) { return suite.EngineAblation() }},
		{"zclusters", func() (fmt.Stringer, error) { return suite.ZClusterAblation() }},
		{"adapt", func() (fmt.Stringer, error) { return suite.AdaptationStudy() }},
		{"ports", func() (fmt.Stringer, error) { return suite.PortStudy() }},
		{"budget", func() (fmt.Stringer, error) { return suite.BudgetStudy() }},
		{"rect", func() (fmt.Stringer, error) { return suite.RectStudy() }},
	}

	matched := false
	for _, r := range runners {
		if *exp != "all" && *exp != r.name {
			continue
		}
		matched = true
		start := time.Now()
		res, err := r.run()
		if err != nil {
			fatalf("%s: %v", r.name, err)
		}
		fmt.Printf("===== %s (%.1fs) =====\n%s\n", r.name, time.Since(start).Seconds(), res)
	}
	if !matched {
		fatalf("unknown experiment %q", *exp)
	}
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "repro: "+format+"\n", args...)
	os.Exit(1)
}
