// Command hdlint runs the repository-invariant static analyzers of
// internal/lint over the whole module and exits non-zero on any finding.
// It is the machine-enforced half of the determinism and durability
// contracts: no wall-clock or global randomness in the deterministic
// packages, no raw file writes outside internal/atomicio, a consistent
// chaos-exercised fault-point registry, and balanced PhaseStart/PhaseEnd
// hook pairs.
//
//	hdlint                 # lint the module rooted at the cwd
//	hdlint -C path/to/mod  # lint another module root
//	hdlint -list           # show the analyzers and what they guard
//	hdlint -checks nondeterminism,atomicwrite
//
// Suppress a finding in code with a justified escape hatch on the flagged
// line or the line above:
//
//	//hdlint:allow <check> <reason>
//
// Exit status: 0 clean, 1 findings, 2 usage or load failure.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"hdpower/internal/lint"
)

func main() {
	root := flag.String("C", ".", "module root to lint (directory containing go.mod)")
	list := flag.Bool("list", false, "list the analyzers and exit")
	checks := flag.String("checks", "", "comma-separated subset of analyzers to run (default: all)")
	flag.Parse()

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := lint.Analyzers()
	if *checks != "" {
		want := make(map[string]bool)
		for _, c := range strings.Split(*checks, ",") {
			want[strings.TrimSpace(c)] = true
		}
		var sel []*lint.Analyzer
		for _, a := range analyzers {
			if want[a.Name] {
				sel = append(sel, a)
				delete(want, a.Name)
			}
		}
		for c := range want {
			fmt.Fprintf(os.Stderr, "hdlint: unknown check %q\n", c)
			os.Exit(2)
		}
		analyzers = sel
	}

	m, err := lint.Load(*root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hdlint: %v\n", err)
		os.Exit(2)
	}
	diags := lint.Run(m, analyzers, lint.DefaultConfig())
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "hdlint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
