// Command hdpower is the workflow CLI for the Hd power macro-model
// library: list modules, inspect netlists, characterize models, and
// estimate stream power.
//
// Subcommands:
//
//	hdpower modules
//	hdpower stats -module csa-multiplier -width 8
//	hdpower dot -module ripple-adder -width 4 > adder.dot
//	hdpower characterize -module csa-multiplier -width 8 -patterns 8000 \
//	        -enhanced -o csa8.json
//	hdpower estimate -model csa8.json -module csa-multiplier -width 8 \
//	        -data III -n 5000
//	hdpower hddist -data III -width 16 -n 20000
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"math"
	"os"
	"path/filepath"

	"hdpower"
	"hdpower/internal/atomicio"
	"hdpower/internal/bdd"
	"hdpower/internal/core"
	"hdpower/internal/dwlib"
	"hdpower/internal/hddist"
	"hdpower/internal/modellib"
	"hdpower/internal/netlist"
	"hdpower/internal/obs"
	"hdpower/internal/regress"
	"hdpower/internal/sim"
	"hdpower/internal/stats"
	"hdpower/internal/stimuli"
	"hdpower/internal/textplot"
	"hdpower/internal/verilog"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "modules":
		err = cmdModules()
	case "stats":
		err = cmdStats(os.Args[2:])
	case "verify":
		err = cmdVerify(os.Args[2:])
	case "dot":
		err = cmdDot(os.Args[2:])
	case "characterize":
		err = cmdCharacterize(os.Args[2:])
	case "estimate":
		err = cmdEstimate(os.Args[2:])
	case "hddist":
		err = cmdHdDist(os.Args[2:])
	case "vcd":
		err = cmdVCD(os.Args[2:])
	case "verilog":
		err = cmdVerilog(os.Args[2:])
	case "equiv":
		err = cmdEquiv(os.Args[2:])
	case "library":
		err = cmdLibrary(os.Args[2:])
	case "show":
		err = cmdShow(os.Args[2:])
	case "fit":
		err = cmdFit(os.Args[2:])
	case "synthesize":
		err = cmdSynthesize(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "hdpower: unknown subcommand %q\n\n", os.Args[1])
		usage()
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "hdpower: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: hdpower <subcommand> [flags]

subcommands:
  modules       list the datapath module catalog
  stats         print netlist statistics for a module instance
  verify        statically lint a module's netlist (loops, floating or
                multiply-driven nets, width mismatches, unreachable gates)
  dot           emit the netlist as Graphviz DOT
  characterize  fit an Hd model and write it as JSON
  estimate      estimate stream power with a stored model
  hddist        analytic vs extracted Hamming-distance distribution
  vcd           dump event-driven waveforms (with glitches) as VCD
  verilog       emit a module as gate-level structural Verilog
  equiv         formally check two catalog modules for equivalence (BDD)
  show          pretty-print a stored model's coefficient table
  library       list the models stored in a library directory
  fit           characterize prototype widths and fit a width-regression model
  synthesize    produce a model for any width from a fitted regression`)
	os.Exit(2)
}

func cmdModules() error {
	for _, name := range dwlib.Names() {
		mod, err := dwlib.Lookup(name)
		if err != nil {
			return err
		}
		fmt.Printf("%-26s %s\n", mod.Name, mod.Description)
	}
	return nil
}

func moduleFlags(fs *flag.FlagSet) (*string, *int) {
	module := fs.String("module", "", "catalog module name")
	width := fs.Int("width", 8, "operand width")
	return module, width
}

func cmdStats(args []string) error {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	module, width := moduleFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	nl, err := hdpower.Build(*module, *width)
	if err != nil {
		return err
	}
	fmt.Println(nl.Stats())
	return nil
}

// cmdVerify runs the static netlist linter (internal/netlist Verify)
// over one module instance or the whole catalog. -inject deliberately
// breaks the netlist first — the same surgery the chaos tests use — so
// the linter's rejection path can be demonstrated from the command line.
func cmdVerify(args []string) error {
	fs := flag.NewFlagSet("verify", flag.ExitOnError)
	module, width := moduleFlags(fs)
	all := fs.Bool("all", false, "verify every catalog module at -width")
	inject := fs.String("inject", "", "break the netlist first: loop | multidrive")
	if err := fs.Parse(args); err != nil {
		return err
	}
	names := []string{*module}
	if *all {
		names = dwlib.Names()
	} else if *module == "" {
		return fmt.Errorf("verify: -module or -all required")
	}
	failed := 0
	for _, name := range names {
		mod, err := dwlib.Lookup(name)
		if err != nil {
			return err
		}
		// Build without finalizing: Verify's subject matter includes
		// netlists Finalize would reject.
		nl := mod.Build(*width)
		switch *inject {
		case "":
		case "loop":
			nl.RewireGateInput(0, 0, nl.GateOutput(0))
		case "multidrive":
			nl.RedriveGateOutput(1, nl.GateOutput(0))
		default:
			return fmt.Errorf("verify: unknown -inject %q (want loop or multidrive)", *inject)
		}
		diags := nl.Verify()
		errs := 0
		for _, d := range diags {
			if d.Severity == netlist.SevError {
				errs++
			}
			fmt.Printf("%s-%d: %s\n", name, *width, d)
		}
		if errs > 0 {
			failed++
		} else if *all || len(diags) == 0 {
			fmt.Printf("%s-%d: ok (%d gates, %d warning(s))\n",
				name, *width, nl.NumGates(), len(diags))
		}
	}
	if failed > 0 {
		return fmt.Errorf("verify: %d module(s) failed", failed)
	}
	return nil
}

func cmdDot(args []string) error {
	fs := flag.NewFlagSet("dot", flag.ExitOnError)
	module, width := moduleFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	nl, err := hdpower.Build(*module, *width)
	if err != nil {
		return err
	}
	return nl.WriteDOT(os.Stdout)
}

func cmdCharacterize(args []string) error {
	fs := flag.NewFlagSet("characterize", flag.ExitOnError)
	module, width := moduleFlags(fs)
	patterns := fs.Int("patterns", 5000, "characterization pairs")
	enhanced := fs.Bool("enhanced", false, "also fit the enhanced (stable-zero) classes")
	zclusters := fs.Int("zclusters", 0, "cluster the stable-zero axis into N buckets (0 = full)")
	seed := fs.Int64("seed", 1, "random seed")
	workers := fs.Int("workers", 0, "simulation worker goroutines (0 = all CPUs); results are identical for any value")
	out := fs.String("o", "", "output file (default stdout)")
	libDir := fs.String("library", "", "also store the model in this library directory")
	traceOut := fs.String("trace", "", "write the run's flight-recorder manifest (JSON) to this file")
	logFormat := fs.String("log-format", "", "structured progress log on stderr: text or json (off when empty)")
	ckptDir := fs.String("checkpoint", "", "checkpoint the run's merged state into this directory (crash-safe)")
	resume := fs.Bool("resume", false, "resume from the checkpoint left by an interrupted identical run")
	ckptEvery := fs.Int("checkpoint-every", 0, "checkpoint interval in merged shards (0 = default 16)")
	backendName := fs.String("backend", "bitparallel", "simulation backend: bitparallel (64 pattern pairs per pass) or event (golden event-driven reference)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	backend, err := core.ParseBackendKind(*backendName)
	if err != nil {
		return err
	}
	if !obs.ValidLogFormat(*logFormat) {
		return fmt.Errorf("unknown -log-format %q (want text or json)", *logFormat)
	}
	if *resume && *ckptDir == "" {
		return fmt.Errorf("-resume needs -checkpoint DIR to know where the checkpoint lives")
	}
	nl, err := hdpower.Build(*module, *width)
	if err != nil {
		return err
	}
	name := fmt.Sprintf("%s-%d", *module, *width)
	opt := hdpower.CharacterizeOptions{
		Patterns: *patterns, Enhanced: *enhanced, ZClusters: *zclusters, Seed: *seed,
		Workers: *workers, Backend: backend,
	}
	if *ckptDir != "" {
		if err := os.MkdirAll(*ckptDir, 0o755); err != nil {
			return fmt.Errorf("checkpoint dir: %w", err)
		}
		opt.Checkpoint = core.CheckpointOptions{
			Path: filepath.Join(*ckptDir,
				fmt.Sprintf("%s-w%d-s%d.ckpt.json", *module, *width, *seed)),
			EveryShards: *ckptEvery,
			Resume:      *resume,
		}
		opt.Hooks = core.JoinHooks(opt.Hooks, &core.Hooks{
			Resumed: func(phase string, shards, _, _ int) {
				fmt.Fprintf(os.Stderr, "resumed from checkpoint: phase %s, %d shards already merged\n",
					phase, shards)
			},
		})
	}
	var rec *core.RunRecorder
	if *traceOut != "" {
		rec = core.NewRunRecorder(name, opt)
		opt.Hooks = core.JoinHooks(opt.Hooks, rec.Hooks())
	}
	if *logFormat != "" {
		logger := obs.NewLogger(os.Stderr, *logFormat, slog.LevelInfo)
		opt.Hooks = core.JoinHooks(opt.Hooks, progressLogHooks(logger))
	}
	model, err := hdpower.Characterize(nl, name, opt)
	if rec != nil {
		// The manifest is written even when the run fails: a failed run's
		// flight record is the one worth keeping.
		man := rec.Finish(model, err)
		man.Width = *width
		if werr := writeManifest(*traceOut, man); werr != nil {
			if err == nil {
				err = werr
			} else {
				fmt.Fprintf(os.Stderr, "hdpower: %v\n", werr)
			}
		}
	}
	if err != nil {
		return err
	}
	if *libDir != "" {
		lib, err := modellib.Open(*libDir)
		if err != nil {
			return err
		}
		if err := lib.PutModel(*module, *width, model); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "stored in library %s\n", *libDir)
	}
	return writeJSONOutput(*out, model)
}

// writeJSONOutput marshals v as indented JSON to stdout (empty path) or
// durably to a file. File writes go through atomicio, so an interrupted
// run leaves the previous model intact and the new file carries a
// checksum trailer; atomicio.ReadFile-based loaders verify it and plain
// JSON parsers still work because the trailer is a trailing comment-style
// line they never reach (loads here always strip it first).
func writeJSONOutput(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return atomicio.WriteFile(path, data, 0o644)
}

// readJSONInput loads a JSON artifact written by writeJSONOutput (or by
// hand): checksummed files are verified, legacy trailer-less files load
// as-is.
func readJSONInput(path string) ([]byte, error) {
	raw, err := atomicio.ReadFile(path)
	if err != nil && !errors.Is(err, atomicio.ErrNoChecksum) {
		return nil, err
	}
	return raw, nil
}

// progressLogHooks turns the characterization hook stream into structured
// progress records: phase transitions, convergence checkpoints, early
// stops. Listening to Convergence makes the engine evaluate checkpoints
// even without -converge, which never changes the fitted model.
func progressLogHooks(logger *slog.Logger) *core.Hooks {
	return &core.Hooks{
		PhaseStart: func(phase string, shards, patterns int) {
			logger.Info("phase start", "phase", phase, "shards", shards, "patterns", patterns)
		},
		PhaseEnd: func(phase string) { logger.Info("phase end", "phase", phase) },
		Convergence: func(patterns int, worst float64) {
			// The first checkpoint has no predecessor to diff against and
			// reports +Inf, which JSON handlers cannot encode.
			if math.IsInf(worst, 1) {
				logger.Info("convergence", "patterns", patterns, "worst_change", "first checkpoint")
				return
			}
			logger.Info("convergence", "patterns", patterns, "worst_change", worst)
		},
		EarlyStop: func(used int) { logger.Info("early stop", "patterns", used) },
	}
}

// writeManifest persists a flight-recorder manifest as indented JSON,
// atomically and checksummed: a crash while writing the post-mortem must
// not destroy it.
func writeManifest(path string, man *core.RunManifest) error {
	data, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		return err
	}
	return atomicio.WriteFile(path, append(data, '\n'), 0o644)
}

func cmdEstimate(args []string) error {
	fs := flag.NewFlagSet("estimate", flag.ExitOnError)
	module, width := moduleFlags(fs)
	modelPath := fs.String("model", "", "model JSON file from `characterize`")
	libDir := fs.String("library", "", "resolve the model from this library (instance or regression)")
	data := fs.String("data", "I", "data type: I, II, III, IV, V")
	n := fs.Int("n", 5000, "stream length")
	seed := fs.Int64("seed", 1, "random seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var model *core.Model
	switch {
	case *modelPath != "":
		raw, err := readJSONInput(*modelPath)
		if err != nil {
			return err
		}
		if model, err = core.LoadModel(raw); err != nil {
			return err
		}
	case *libDir != "":
		lib, err := modellib.Open(*libDir)
		if err != nil {
			return err
		}
		var synthesized bool
		model, synthesized, err = lib.Model(*module, *width, false)
		if err != nil {
			return err
		}
		if synthesized {
			fmt.Fprintf(os.Stderr, "using width-regression synthesis for %s width %d\n",
				*module, *width)
		}
	default:
		return fmt.Errorf("estimate needs -model or -library")
	}
	dt, err := parseDataType(*data)
	if err != nil {
		return err
	}
	nl, err := hdpower.Build(*module, *width)
	if err != nil {
		return err
	}
	mod, err := dwlib.Lookup(*module)
	if err != nil {
		return err
	}
	ports := 1
	if mod.TwoOperand {
		ports = 2
	}
	words := hdpower.TakeWords(hdpower.OperandStream(dt, *width, ports, *seed), *n+1)
	report, err := hdpower.Estimate(model, nl, words)
	if err != nil {
		return err
	}
	fmt.Print(report)
	return nil
}

func cmdHdDist(args []string) error {
	fs := flag.NewFlagSet("hddist", flag.ExitOnError)
	data := fs.String("data", "III", "data type: I, II, III, IV, V")
	width := fs.Int("width", 16, "word width")
	n := fs.Int("n", 20000, "stream length")
	seed := fs.Int64("seed", 1, "random seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	dt, err := parseDataType(*data)
	if err != nil {
		return err
	}
	words := stimuli.Take(stimuli.NewStream(dt, *width, *seed), *n)
	extracted, err := hddist.FromWords(words)
	if err != nil {
		return err
	}
	ws, err := stats.FromWords(words)
	if err != nil {
		return err
	}
	analytic := hddist.FromWordStats(ws, *width)
	xs := make([]float64, *width+1)
	for i := range xs {
		xs[i] = float64(i)
	}
	fmt.Print(textplot.Chart(
		fmt.Sprintf("Hd distribution, data type %s, %d bits", dt, *width),
		"Hd", xs, []textplot.Series{
			{Name: "extracted", Y: extracted},
			{Name: "analytic (eq. 18)", Y: analytic},
		}, 64, 14))
	tv, err := extracted.TotalVariation(analytic)
	if err != nil {
		return err
	}
	bp := stats.ComputeBreakpoints(ws, *width)
	fmt.Printf("\nword stats: mean %.1f std %.1f rho %.3f | BP0 %d BP1 %d | TV %.3f\n",
		ws.Mean, ws.Std, ws.Rho, bp.BP0, bp.BP1, tv)
	return nil
}

func cmdVCD(args []string) error {
	fs := flag.NewFlagSet("vcd", flag.ExitOnError)
	module, width := moduleFlags(fs)
	data := fs.String("data", "I", "data type: I, II, III, IV, V")
	n := fs.Int("n", 16, "number of cycles to dump")
	seed := fs.Int64("seed", 1, "random seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	dt, err := parseDataType(*data)
	if err != nil {
		return err
	}
	nl, err := hdpower.Build(*module, *width)
	if err != nil {
		return err
	}
	mod, err := dwlib.Lookup(*module)
	if err != nil {
		return err
	}
	ports := 1
	if mod.TwoOperand {
		ports = 2
	}
	words := hdpower.TakeWords(hdpower.OperandStream(dt, *width, ports, *seed), *n+1)
	return sim.DumpVCD(os.Stdout, nl, words, 0)
}

func cmdVerilog(args []string) error {
	fs := flag.NewFlagSet("verilog", flag.ExitOnError)
	module, width := moduleFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	nl, err := hdpower.Build(*module, *width)
	if err != nil {
		return err
	}
	return verilog.Write(os.Stdout, nl)
}

func cmdEquiv(args []string) error {
	fs := flag.NewFlagSet("equiv", flag.ExitOnError)
	a := fs.String("a", "", "first catalog module")
	b := fs.String("b", "", "second catalog module")
	width := fs.Int("width", 8, "operand width")
	if err := fs.Parse(args); err != nil {
		return err
	}
	nlA, err := hdpower.Build(*a, *width)
	if err != nil {
		return err
	}
	nlB, err := hdpower.Build(*b, *width)
	if err != nil {
		return err
	}
	eq, cex, err := bdd.Equivalent(nlA, nlB)
	if err != nil {
		return err
	}
	if eq {
		fmt.Printf("EQUIVALENT: %s and %s at width %d compute the same functions\n",
			*a, *b, *width)
		return nil
	}
	fmt.Printf("NOT EQUIVALENT: differ on bus %s bit %d for input %v\n",
		cex.Bus, cex.Bit, cex.Assignment)
	return nil
}

func parseDataType(s string) (stimuli.DataType, error) {
	for _, dt := range stimuli.AllDataTypes() {
		if dt.String() == s {
			return dt, nil
		}
	}
	return 0, fmt.Errorf("unknown data type %q (want I..V)", s)
}

func cmdFit(args []string) error {
	fs := flag.NewFlagSet("fit", flag.ExitOnError)
	module := fs.String("module", "", "catalog module name")
	set := fs.String("set", "ALL", "prototype set: ALL, SEC, THI")
	patterns := fs.Int("patterns", 5000, "characterization pairs per prototype")
	seed := fs.Int64("seed", 1, "random seed")
	workers := fs.Int("workers", 0, "simulation worker goroutines (0 = all CPUs); results are identical for any value")
	out := fs.String("o", "", "output file (default stdout)")
	libDir := fs.String("library", "", "also store the regression in this library directory")
	traceDir := fs.String("trace", "", "write one flight-recorder manifest per prototype into this directory")
	backendName := fs.String("backend", "bitparallel", "simulation backend: bitparallel (64 pattern pairs per pass) or event (golden event-driven reference)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	backend, err := core.ParseBackendKind(*backendName)
	if err != nil {
		return err
	}
	mod, err := dwlib.Lookup(*module)
	if err != nil {
		return err
	}
	if *traceDir != "" {
		if err := os.MkdirAll(*traceDir, 0o755); err != nil {
			return err
		}
	}
	widths := regress.PrototypeSet(*set).Widths()
	if widths == nil {
		return fmt.Errorf("unknown prototype set %q (want ALL, SEC, THI)", *set)
	}
	var protos []regress.Prototype
	for _, w := range widths {
		nl, err := hdpower.Build(*module, w)
		if err != nil {
			return err
		}
		opt := hdpower.CharacterizeOptions{Patterns: *patterns, Seed: *seed + int64(w), Workers: *workers, Backend: backend}
		var rec *core.RunRecorder
		if *traceDir != "" {
			rec = core.NewRunRecorder(fmt.Sprintf("%s-%d", *module, w), opt)
			opt.Hooks = rec.Hooks()
		}
		model, err := hdpower.Characterize(nl, fmt.Sprintf("%s-%d", *module, w), opt)
		if rec != nil {
			man := rec.Finish(model, err)
			man.Width = w
			path := filepath.Join(*traceDir, fmt.Sprintf("%s-w%d.manifest.json", *module, w))
			if werr := writeManifest(path, man); werr != nil {
				fmt.Fprintf(os.Stderr, "hdpower: %v\n", werr)
			}
		}
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "characterized %s width %d (%d input bits)\n",
			*module, w, model.InputBits)
		protos = append(protos, regress.Prototype{Width: w, Model: model})
	}
	factor := 1
	if mod.TwoOperand {
		factor = 2
	}
	pm, err := regress.Fit(*module, protos, regress.BasisFor(*module), factor)
	if err != nil {
		return err
	}
	if *libDir != "" {
		lib, err := modellib.Open(*libDir)
		if err != nil {
			return err
		}
		if err := lib.PutParam(pm); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "stored regression in library %s\n", *libDir)
	}
	return writeJSONOutput(*out, pm)
}

func cmdSynthesize(args []string) error {
	fs := flag.NewFlagSet("synthesize", flag.ExitOnError)
	paramPath := fs.String("param", "", "parameterized model JSON from `fit`")
	width := fs.Int("width", 8, "operand width to synthesize")
	out := fs.String("o", "", "output file (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	raw, err := readJSONInput(*paramPath)
	if err != nil {
		return err
	}
	pm, err := regress.LoadParamModel(raw)
	if err != nil {
		return err
	}
	return writeJSONOutput(*out, pm.Synthesize(*width))
}

func cmdShow(args []string) error {
	fs := flag.NewFlagSet("show", flag.ExitOnError)
	modelPath := fs.String("model", "", "model JSON file from characterize")
	if err := fs.Parse(args); err != nil {
		return err
	}
	raw, err := readJSONInput(*modelPath)
	if err != nil {
		return err
	}
	model, err := core.LoadModel(raw)
	if err != nil {
		return err
	}
	fmt.Print(model.Report())
	return nil
}

func cmdLibrary(args []string) error {
	fs := flag.NewFlagSet("library", flag.ExitOnError)
	dir := fs.String("dir", "", "library directory")
	if err := fs.Parse(args); err != nil {
		return err
	}
	lib, err := modellib.Open(*dir)
	if err != nil {
		return err
	}
	entries, err := lib.List()
	if err != nil {
		return err
	}
	if len(entries) == 0 {
		fmt.Println("(library is empty)")
		return nil
	}
	for _, e := range entries {
		kind := "basic"
		if e.Enhanced {
			kind = "enhanced"
		}
		fmt.Printf("%-26s width %3d  %s\n", e.Module, e.Width, kind)
	}
	return nil
}
