package main

import (
	"io"

	"hdpower/internal/atomicio"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func rec(name string, pps float64) record {
	return record{Name: name, Iterations: 2, Metrics: map[string]float64{"patterns/sec": pps, "ns/op": 1e6}}
}

func TestCompareWithinTolerance(t *testing.T) {
	oldRecs := []record{rec("B/workers=1", 1000), rec("B/workers=8", 4000)}
	newRecs := []record{rec("B/workers=1", 900), rec("B/workers=8", 3200)}
	if fails := compare(io.Discard, oldRecs, newRecs, "patterns/sec", 0.25); len(fails) != 0 {
		t.Fatalf("unexpected failures: %v", fails)
	}
}

func TestCompareRegression(t *testing.T) {
	oldRecs := []record{rec("B/workers=1", 1000)}
	newRecs := []record{rec("B/workers=1", 700)}
	fails := compare(io.Discard, oldRecs, newRecs, "patterns/sec", 0.25)
	if len(fails) != 1 || !strings.Contains(fails[0], "regressed") {
		t.Fatalf("failures = %v", fails)
	}
}

func TestCompareMissingBenchmark(t *testing.T) {
	oldRecs := []record{rec("B/workers=1", 1000), rec("B/workers=8", 4000)}
	newRecs := []record{rec("B/workers=1", 1000)}
	fails := compare(io.Discard, oldRecs, newRecs, "patterns/sec", 0.25)
	if len(fails) != 1 || !strings.Contains(fails[0], "missing") {
		t.Fatalf("failures = %v", fails)
	}
}

func TestCompareMissingMetricInNewRun(t *testing.T) {
	oldRecs := []record{rec("B/workers=1", 1000)}
	newRecs := []record{{Name: "B/workers=1", Iterations: 2, Metrics: map[string]float64{"ns/op": 1}}}
	fails := compare(io.Discard, oldRecs, newRecs, "patterns/sec", 0.25)
	if len(fails) != 1 || !strings.Contains(fails[0], "lacks metric") {
		t.Fatalf("failures = %v", fails)
	}
}

func TestScaling(t *testing.T) {
	gate := func(target string) ratioGate {
		return ratioGate{floor: 1.5, base: "workers=1", target: target, label: "scaling"}
	}
	recs := []record{rec("B/workers=1", 1000), rec("B/workers=8", 1400)}
	fails := checkRatio(io.Discard, recs, "patterns/sec", gate("workers=8"))
	if len(fails) != 1 {
		t.Fatalf("1.4x under a 1.5x floor must fail: %v", fails)
	}
	recs[1].Metrics["patterns/sec"] = 1600
	if fails := checkRatio(io.Discard, recs, "patterns/sec", gate("workers=8")); len(fails) != 0 {
		t.Fatalf("1.6x over a 1.5x floor must pass: %v", fails)
	}
	if fails := checkRatio(io.Discard, recs, "patterns/sec", gate("workers=64")); len(fails) != 1 {
		t.Fatalf("missing target must fail: %v", fails)
	}
}

func TestRunEndToEnd(t *testing.T) {
	dir := t.TempDir()
	oldPath := filepath.Join(dir, "old.json")
	newPath := filepath.Join(dir, "new.json")
	os.WriteFile(oldPath, []byte(`[{"name":"B/workers=1","iterations":2,"metrics":{"patterns/sec":1000}}]`), 0o644)
	os.WriteFile(newPath, []byte(`[{"name":"B/workers=1","iterations":2,"metrics":{"patterns/sec":1100}}]`), 0o644)
	fails, err := run(io.Discard, oldPath, newPath, "patterns/sec", 0.25, nil)
	if err != nil || len(fails) != 0 {
		t.Fatalf("run: %v %v", fails, err)
	}

	// Empty and malformed inputs are tool errors, not verdicts.
	empty := filepath.Join(dir, "empty.json")
	os.WriteFile(empty, []byte(`[]`), 0o644)
	if _, err := run(io.Discard, oldPath, empty, "patterns/sec", 0.25, nil); err == nil {
		t.Fatal("empty new file must error")
	}
	if _, err := run(io.Discard, filepath.Join(dir, "nope.json"), newPath, "patterns/sec", 0.25, nil); err == nil {
		t.Fatal("missing old file must error")
	}
}

// TestOlderSchemaBaseline: baselines written by earlier benchjson versions
// — records missing names or metrics, or fields whose types changed — are
// reported and skipped, and the usable rows still gate the run.
func TestOlderSchemaBaseline(t *testing.T) {
	dir := t.TempDir()
	oldPath := filepath.Join(dir, "old.json")
	newPath := filepath.Join(dir, "new.json")
	// Record 0 predates the name field, record 1 has metrics as a string
	// (type change), record 2 predates metrics, record 3 is usable.
	mixed := `[
	  {"iterations":2,"metrics":{"patterns/sec":900}},
	  {"name":"B/legacy","iterations":2,"metrics":"12345"},
	  {"name":"B/no-metrics","iterations":2},
	  {"name":"B/workers=1","iterations":2,"metrics":{"patterns/sec":1000}}
	]`
	if err := os.WriteFile(oldPath, []byte(mixed), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(newPath,
		[]byte(`[{"name":"B/workers=1","iterations":2,"metrics":{"patterns/sec":1100}}]`), 0o644); err != nil {
		t.Fatal(err)
	}

	var out strings.Builder
	fails, err := run(&out, oldPath, newPath, "patterns/sec", 0.25, nil)
	if err != nil {
		t.Fatalf("older-schema baseline must not error: %v", err)
	}
	if len(fails) != 0 {
		t.Fatalf("unexpected failures: %v", fails)
	}
	if got := out.String(); strings.Count(got, "older schema?") != 3 {
		t.Errorf("want 3 skip notes, output:\n%s", got)
	}

	// A baseline with nothing usable at all is still a tool error.
	allBad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(allBad, []byte(`[{"iterations":2}]`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := run(io.Discard, allBad, newPath, "patterns/sec", 0.25, nil); err == nil ||
		!strings.Contains(err.Error(), "no usable benchmark records") {
		t.Fatalf("all-bad baseline: %v", err)
	}
}

// TestCompareSkipsCrossBackend: a baseline row and a fresh row with the
// same name but different stamped backends must not be compared — the
// engine gap is not a regression — and must not fail the gate either.
func TestCompareSkipsCrossBackend(t *testing.T) {
	o := rec("B/workers=1", 70000)
	o.Backend = "bitparallel"
	n := rec("B/workers=1", 6500)
	n.Backend = "event"
	var out strings.Builder
	fails := compare(&out, []record{o}, []record{n}, "patterns/sec", 0.25)
	if len(fails) != 0 {
		t.Fatalf("cross-backend rows must be skipped, got failures: %v", fails)
	}
	if !strings.Contains(out.String(), "backend changed") {
		t.Errorf("skip note missing, output:\n%s", out.String())
	}
	// Unstamped (older) baselines still compare.
	o.Backend = ""
	fails = compare(io.Discard, []record{o}, []record{n}, "patterns/sec", 0.25)
	if len(fails) != 1 {
		t.Fatalf("unstamped baseline must still gate: %v", fails)
	}
}

// TestSpeedupGate drives the bit-parallel-vs-event ratio floor the CI
// bench gate arms with -min-speedup.
func TestSpeedupGate(t *testing.T) {
	gate := ratioGate{
		floor: 5, base: "CharacterizeParallel/workers=1",
		target: "CharacterizeBitParallel/workers=1", label: "speedup",
	}
	recs := []record{
		rec("BenchmarkCharacterizeParallel/workers=1", 6500),
		rec("BenchmarkCharacterizeBitParallel/workers=1", 70000),
	}
	if fails := checkRatio(io.Discard, recs, "patterns/sec", gate); len(fails) != 0 {
		t.Fatalf("10.8x over a 5x floor must pass: %v", fails)
	}
	recs[1].Metrics["patterns/sec"] = 20000
	fails := checkRatio(io.Discard, recs, "patterns/sec", gate)
	if len(fails) != 1 || !strings.Contains(fails[0], "speedup") {
		t.Fatalf("3.1x under a 5x floor must fail: %v", fails)
	}
}

// serveRec fabricates an hdload-shaped record for the budget tests.
func serveRec(name string, p99, allocs, qps float64) record {
	return record{Name: name, Iterations: 100, Backend: "serve",
		Metrics: map[string]float64{"p50-ns": p99 / 2, "p99-ns": p99, "allocs/op": allocs, "qps": qps}}
}

// TestBudgetGates drives the absolute-budget checks the serve gate arms:
// a p99 ceiling, an allocs/op ceiling and a qps floor over the new run.
func TestBudgetGates(t *testing.T) {
	recs := []record{
		serveRec("ServeEstimate/unary/mix=mixed/conc=4", 2e6, 80, 5000),
		serveRec("ServeEstimate/stream/mix=mixed/conc=4", 8e6, 2, 60000),
	}
	// Within budget: nothing fails.
	for _, b := range []budgetGate{
		{metric: "p99-ns", limit: 10e6},
		{metric: "allocs/op", limit: 100},
		{metric: "qps", limit: 1000, floor: true},
	} {
		if fails := checkBudget(io.Discard, recs, b); len(fails) != 0 {
			t.Errorf("budget %+v: unexpected failures %v", b, fails)
		}
	}
	// Ceiling breach: the unary record's p99 is over.
	fails := checkBudget(io.Discard, recs, budgetGate{metric: "p99-ns", limit: 1e6})
	if len(fails) != 2 || !strings.Contains(fails[0], "over budget") {
		t.Fatalf("p99 ceiling: %v", fails)
	}
	// Floor breach only where matched.
	fails = checkBudget(io.Discard, recs, budgetGate{metric: "qps", limit: 10000, floor: true, match: "unary"})
	if len(fails) != 1 || !strings.Contains(fails[0], "below floor") {
		t.Fatalf("qps floor: %v", fails)
	}
	// The match filter keeps the passing stream record out of a strict
	// unary allocs ceiling and vice versa.
	if fails := checkBudget(io.Discard, recs, budgetGate{metric: "allocs/op", limit: 5, match: "stream"}); len(fails) != 0 {
		t.Fatalf("stream allocs within its own ceiling: %v", fails)
	}
	// A zero ceiling is meaningful (and here violated).
	if fails := checkBudget(io.Discard, recs, budgetGate{metric: "allocs/op", limit: 0, match: "stream"}); len(fails) != 1 {
		t.Fatalf("zero ceiling must gate: %v", fails)
	}
	// A budget that matches nothing must fail, not silently pass.
	fails = checkBudget(io.Discard, recs, budgetGate{metric: "p99-ns", limit: 1e9, match: "no-such-record"})
	if len(fails) != 1 || !strings.Contains(fails[0], "no record") {
		t.Fatalf("unmatched budget: %v", fails)
	}
	fails = checkBudget(io.Discard, recs, budgetGate{metric: "patterns/sec", limit: 1, floor: true})
	if len(fails) != 1 || !strings.Contains(fails[0], "no record") {
		t.Fatalf("absent metric: %v", fails)
	}
}

// TestRunWithBudgets wires budgets through run(): baseline comparison and
// absolute budgets fail independently.
func TestRunWithBudgets(t *testing.T) {
	dir := t.TempDir()
	oldPath := filepath.Join(dir, "old.json")
	newPath := filepath.Join(dir, "new.json")
	body := `[{"name":"ServeEstimate/unary","iterations":5,"metrics":{"qps":5000,"p99-ns":2000000}}]`
	os.WriteFile(oldPath, []byte(body), 0o644)
	os.WriteFile(newPath, []byte(body), 0o644)
	fails, err := run(io.Discard, oldPath, newPath, "qps", 0.25,
		[]budgetGate{{metric: "p99-ns", limit: 1e6}})
	if err != nil {
		t.Fatal(err)
	}
	if len(fails) != 1 || !strings.Contains(fails[0], "over budget") {
		t.Fatalf("budget must fail through run: %v", fails)
	}
}

// TestLoadChecksummedFile: hdload writes its JSON through atomicio, which
// appends a checksum trailer; load must verify and strip it, and still
// accept trailer-less benchjson files.
func TestLoadChecksummedFile(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "BENCH_serve.json")
	body := []byte(`[{"name":"ServeEstimate/unary","iterations":5,"metrics":{"qps":5000}}]` + "\n")
	if err := atomicio.WriteFile(p, body, 0o644); err != nil {
		t.Fatal(err)
	}
	recs, _, err := load(p)
	if err != nil {
		t.Fatalf("checksummed file: %v", err)
	}
	if len(recs) != 1 || recs[0].Name != "ServeEstimate/unary" {
		t.Fatalf("recs = %+v", recs)
	}
}
