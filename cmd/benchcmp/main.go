// Command benchcmp is the CI bench-regression gate: it compares two
// benchmark JSON files produced by cmd/benchjson and fails (exit 1) when
// the new run regresses a higher-is-better metric beyond a tolerance, or
// when the worker-scaling ratio drops below a floor.
//
//	go run ./cmd/benchcmp -old BENCH_characterize.json -new BENCH_fresh.json \
//	    -metric patterns/sec -max-regress 0.25
//
// The scaling check (-min-scale) compares the metric of the -scale-target
// benchmark against the -scale-base one within the NEW file; it only makes
// sense on multi-core runners, so it is off by default and enabled
// explicitly by the CI workflow.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
)

// record mirrors cmd/benchjson's output schema. NumCPU is 0 and Backend
// empty in baselines written before those fields existed.
type record struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	NumCPU     int                `json:"num_cpu"`
	Backend    string             `json:"backend"`
	Metrics    map[string]float64 `json:"metrics"`
}

func main() {
	var (
		oldPath     = flag.String("old", "", "baseline benchmark JSON (committed)")
		newPath     = flag.String("new", "", "fresh benchmark JSON")
		metric      = flag.String("metric", "patterns/sec", "higher-is-better metric to gate on")
		maxRegress  = flag.Float64("max-regress", 0.25, "maximum tolerated fractional regression (0.25 = 25%)")
		minScale    = flag.Float64("min-scale", 0, "minimum scale-target/scale-base ratio in the new run (0 disables)")
		scaleBase   = flag.String("scale-base", "workers=1", "benchmark name substring of the scaling baseline")
		scaleTarget = flag.String("scale-target", "workers=8", "benchmark name substring of the scaling target")
		minSpeedup  = flag.Float64("min-speedup", 0, "minimum speedup-target/speedup-base ratio in the new run (0 disables); gates the bit-parallel backend's single-core advantage")
		speedBase   = flag.String("speedup-base", "CharacterizeParallel/workers=1", "benchmark name substring of the speedup baseline (event backend)")
		speedTarget = flag.String("speedup-target", "CharacterizeBitParallel/workers=1", "benchmark name substring of the speedup target (bit-parallel backend)")
	)
	flag.Parse()
	if *oldPath == "" || *newPath == "" {
		fmt.Fprintln(os.Stderr, "benchcmp: -old and -new are required")
		flag.Usage()
		os.Exit(2)
	}
	failures, err := run(os.Stdout, *oldPath, *newPath, *metric, *maxRegress,
		ratioGate{floor: *minScale, base: *scaleBase, target: *scaleTarget, label: "scaling"},
		ratioGate{floor: *minSpeedup, base: *speedBase, target: *speedTarget, label: "speedup"})
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcmp: %v\n", err)
		os.Exit(2)
	}
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintf(os.Stderr, "benchcmp: FAIL: %s\n", f)
		}
		os.Exit(1)
	}
	fmt.Println("benchcmp: ok")
}

// load reads one benchmark JSON file. Records that do not fit the current
// schema — committed baselines can long outlive the tool that wrote them —
// are skipped with a note instead of failing the whole comparison; only a
// file with no usable records at all is an error.
func load(path string) (recs []record, notes []string, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	var raws []json.RawMessage
	if err := json.Unmarshal(data, &raws); err != nil {
		return nil, nil, fmt.Errorf("%s: %w", path, err)
	}
	for i, raw := range raws {
		var r record
		if derr := json.Unmarshal(raw, &r); derr != nil {
			notes = append(notes, fmt.Sprintf("%s: skipping record %d: %v (older schema?)", path, i, derr))
			continue
		}
		if r.Name == "" {
			notes = append(notes, fmt.Sprintf("%s: skipping record %d: no benchmark name (older schema?)", path, i))
			continue
		}
		if len(r.Metrics) == 0 {
			notes = append(notes, fmt.Sprintf("%s: skipping %s: no metrics (older schema?)", path, r.Name))
			continue
		}
		recs = append(recs, r)
	}
	if len(recs) == 0 {
		return nil, notes, fmt.Errorf("%s: no usable benchmark records", path)
	}
	return recs, notes, nil
}

// run performs the comparison and returns human-readable failures.
// I/O problems and malformed inputs come back as err (exit 2, not a
// regression verdict).
func run(out io.Writer, oldPath, newPath, metric string, maxRegress float64, gates ...ratioGate) ([]string, error) {
	oldRecs, notes, err := load(oldPath)
	if err != nil {
		return nil, err
	}
	newRecs, newNotes, err := load(newPath)
	if err != nil {
		return nil, err
	}
	for _, note := range append(notes, newNotes...) {
		fmt.Fprintf(out, "note: %s\n", note)
	}
	if oc, nc := hostCPUs(oldRecs), hostCPUs(newRecs); oc > 0 || nc > 0 {
		fmt.Fprintf(out, "host cpus: baseline %s, new run %s\n", cpuLabel(oc), cpuLabel(nc))
		if oc > 0 && nc > 0 && oc != nc {
			fmt.Fprintf(out, "note: core counts differ; absolute throughput deltas reflect hardware, not code\n")
		}
	}
	failures := compare(out, oldRecs, newRecs, metric, maxRegress)
	for _, g := range gates {
		if g.floor > 0 {
			failures = append(failures, checkRatio(out, newRecs, metric, g)...)
		}
	}
	return failures, nil
}

// hostCPUs returns the CPU count stamped in a record set (0 if absent).
func hostCPUs(recs []record) int {
	for _, r := range recs {
		if r.NumCPU > 0 {
			return r.NumCPU
		}
	}
	return 0
}

func cpuLabel(n int) string {
	if n <= 0 {
		return "unknown"
	}
	return fmt.Sprintf("%d", n)
}

// compare gates every baseline benchmark's metric against the fresh run.
func compare(out io.Writer, oldRecs, newRecs []record, metric string, maxRegress float64) []string {
	byName := make(map[string]record, len(newRecs))
	for _, r := range newRecs {
		byName[r.Name] = r
	}
	var failures []string
	fmt.Fprintf(out, "%-50s %14s %14s %8s\n", "benchmark", "old "+metric, "new "+metric, "delta")
	for _, o := range oldRecs {
		ov, ok := o.Metrics[metric]
		if !ok {
			// Baseline rows without the gated metric don't constrain the run.
			continue
		}
		n, ok := byName[o.Name]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: present in baseline, missing from new run", o.Name))
			continue
		}
		nv, ok := n.Metrics[metric]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: new run lacks metric %q", o.Name, metric))
			continue
		}
		// Only same-backend records compare: an event baseline against a
		// bit-parallel candidate (or vice versa) would read the ~10x engine
		// gap as a huge improvement or regression. Records without a stamped
		// backend (older baselines) compare as before.
		if o.Backend != "" && n.Backend != "" && o.Backend != n.Backend {
			fmt.Fprintf(out, "note: %s: backend changed (%s -> %s); not compared\n",
				o.Name, o.Backend, n.Backend)
			continue
		}
		delta := 0.0
		if ov > 0 {
			delta = nv/ov - 1
		}
		fmt.Fprintf(out, "%-50s %14.1f %14.1f %+7.1f%%\n", o.Name, ov, nv, delta*100)
		if ov > 0 && nv < ov*(1-maxRegress) {
			failures = append(failures, fmt.Sprintf(
				"%s: %s regressed %.1f%% (%.1f -> %.1f, tolerance %.0f%%)",
				o.Name, metric, -delta*100, ov, nv, maxRegress*100))
		}
	}
	return failures
}

// ratioGate is a floor on the metric ratio of two benchmarks within the
// new run: worker scaling (workers=8 over workers=1) and the bit-parallel
// backend's speedup (BitParallel workers=1 over event workers=1) are both
// instances of it.
type ratioGate struct {
	floor        float64
	base, target string
	label        string
}

// checkRatio enforces one ratio floor within the new run.
func checkRatio(out io.Writer, recs []record, metric string, g ratioGate) []string {
	find := func(sub string) (record, bool) {
		for _, r := range recs {
			if strings.Contains(r.Name, sub) {
				return r, true
			}
		}
		return record{}, false
	}
	b, okB := find(g.base)
	tr, okT := find(g.target)
	if !okB || !okT {
		return []string{fmt.Sprintf("%s check: missing %q or %q in new run", g.label, g.base, g.target)}
	}
	bv, tv := b.Metrics[metric], tr.Metrics[metric]
	if bv <= 0 {
		return []string{fmt.Sprintf("%s check: baseline %s has %s = %v", g.label, b.Name, metric, bv)}
	}
	ratio := tv / bv
	fmt.Fprintf(out, "%s %s: %s/%s = %.2fx (floor %.2fx)\n", g.label, metric, g.target, g.base, ratio, g.floor)
	if ratio < g.floor {
		return []string{fmt.Sprintf("%s: %s is %.2fx of %s in %s, floor %.2fx",
			g.label, g.target, ratio, g.base, metric, g.floor)}
	}
	return nil
}
