// Command benchcmp is the CI bench-regression gate: it compares two
// benchmark JSON files produced by cmd/benchjson (or cmd/hdload) and
// fails (exit 1) when the new run regresses a higher-is-better metric
// beyond a tolerance, when the worker-scaling ratio drops below a floor,
// or when an absolute budget is exceeded.
//
//	go run ./cmd/benchcmp -old BENCH_characterize.json -new BENCH_fresh.json \
//	    -metric patterns/sec -max-regress 0.25
//
// The scaling check (-min-scale) compares the metric of the -scale-target
// benchmark against the -scale-base one within the NEW file; it only makes
// sense on multi-core runners, so it is off by default and enabled
// explicitly by the CI workflow.
//
// Absolute budgets gate the NEW run alone, independent of any baseline
// drift: -max-p99 caps the p99-ns metric, -max-allocs caps allocs/op,
// -min-qps floors qps. -budget-match restricts the budgets to records
// whose name contains the substring, so the serve gate can hold the
// unary and streaming planes to different ceilings in two invocations. A
// budget that matches no record in the new run fails the gate — a typo
// must not read as a pass.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"hdpower/internal/atomicio"
)

// record mirrors cmd/benchjson's output schema. NumCPU is 0 and Backend
// empty in baselines written before those fields existed.
type record struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	NumCPU     int                `json:"num_cpu"`
	Backend    string             `json:"backend"`
	Metrics    map[string]float64 `json:"metrics"`
}

func main() {
	var (
		oldPath     = flag.String("old", "", "baseline benchmark JSON (committed)")
		newPath     = flag.String("new", "", "fresh benchmark JSON")
		metric      = flag.String("metric", "patterns/sec", "higher-is-better metric to gate on")
		maxRegress  = flag.Float64("max-regress", 0.25, "maximum tolerated fractional regression (0.25 = 25%)")
		minScale    = flag.Float64("min-scale", 0, "minimum scale-target/scale-base ratio in the new run (0 disables)")
		scaleBase   = flag.String("scale-base", "workers=1", "benchmark name substring of the scaling baseline")
		scaleTarget = flag.String("scale-target", "workers=8", "benchmark name substring of the scaling target")
		minSpeedup  = flag.Float64("min-speedup", 0, "minimum speedup-target/speedup-base ratio in the new run (0 disables); gates the bit-parallel backend's single-core advantage")
		speedBase   = flag.String("speedup-base", "CharacterizeParallel/workers=1", "benchmark name substring of the speedup baseline (event backend)")
		speedTarget = flag.String("speedup-target", "CharacterizeBitParallel/workers=1", "benchmark name substring of the speedup target (bit-parallel backend)")
		maxP99      = flag.Float64("max-p99", 0, "absolute p99-ns budget for matching new-run records (0 disables)")
		maxAllocs   = flag.Float64("max-allocs", -1, "absolute allocs/op ceiling for matching new-run records (negative disables)")
		minQPS      = flag.Float64("min-qps", 0, "absolute qps floor for matching new-run records (0 disables)")
		budgetMatch = flag.String("budget-match", "", "restrict the absolute budgets to new-run records whose name contains this substring")
	)
	flag.Parse()
	if *oldPath == "" || *newPath == "" {
		fmt.Fprintln(os.Stderr, "benchcmp: -old and -new are required")
		flag.Usage()
		os.Exit(2)
	}
	var budgets []budgetGate
	if *maxP99 > 0 {
		budgets = append(budgets, budgetGate{metric: "p99-ns", limit: *maxP99, match: *budgetMatch})
	}
	if *maxAllocs >= 0 {
		budgets = append(budgets, budgetGate{metric: "allocs/op", limit: *maxAllocs, match: *budgetMatch})
	}
	if *minQPS > 0 {
		budgets = append(budgets, budgetGate{metric: "qps", limit: *minQPS, floor: true, match: *budgetMatch})
	}
	failures, err := run(os.Stdout, *oldPath, *newPath, *metric, *maxRegress, budgets,
		ratioGate{floor: *minScale, base: *scaleBase, target: *scaleTarget, label: "scaling"},
		ratioGate{floor: *minSpeedup, base: *speedBase, target: *speedTarget, label: "speedup"})
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcmp: %v\n", err)
		os.Exit(2)
	}
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintf(os.Stderr, "benchcmp: FAIL: %s\n", f)
		}
		os.Exit(1)
	}
	fmt.Println("benchcmp: ok")
}

// load reads one benchmark JSON file. Records that do not fit the current
// schema — committed baselines can long outlive the tool that wrote them —
// are skipped with a note instead of failing the whole comparison; only a
// file with no usable records at all is an error.
//
// Files written by cmd/hdload carry atomicio's checksum trailer;
// atomicio.ReadFile strips and verifies it, and passes trailer-less files
// (benchjson stdout redirects) through untouched.
func load(path string) (recs []record, notes []string, err error) {
	data, err := atomicio.ReadFile(path)
	if err != nil && !errors.Is(err, atomicio.ErrNoChecksum) {
		return nil, nil, err
	}
	var raws []json.RawMessage
	if err := json.Unmarshal(data, &raws); err != nil {
		return nil, nil, fmt.Errorf("%s: %w", path, err)
	}
	for i, raw := range raws {
		var r record
		if derr := json.Unmarshal(raw, &r); derr != nil {
			notes = append(notes, fmt.Sprintf("%s: skipping record %d: %v (older schema?)", path, i, derr))
			continue
		}
		if r.Name == "" {
			notes = append(notes, fmt.Sprintf("%s: skipping record %d: no benchmark name (older schema?)", path, i))
			continue
		}
		if len(r.Metrics) == 0 {
			notes = append(notes, fmt.Sprintf("%s: skipping %s: no metrics (older schema?)", path, r.Name))
			continue
		}
		recs = append(recs, r)
	}
	if len(recs) == 0 {
		return nil, notes, fmt.Errorf("%s: no usable benchmark records", path)
	}
	return recs, notes, nil
}

// run performs the comparison and returns human-readable failures.
// I/O problems and malformed inputs come back as err (exit 2, not a
// regression verdict).
func run(out io.Writer, oldPath, newPath, metric string, maxRegress float64, budgets []budgetGate, gates ...ratioGate) ([]string, error) {
	oldRecs, notes, err := load(oldPath)
	if err != nil {
		return nil, err
	}
	newRecs, newNotes, err := load(newPath)
	if err != nil {
		return nil, err
	}
	for _, note := range append(notes, newNotes...) {
		fmt.Fprintf(out, "note: %s\n", note)
	}
	if oc, nc := hostCPUs(oldRecs), hostCPUs(newRecs); oc > 0 || nc > 0 {
		fmt.Fprintf(out, "host cpus: baseline %s, new run %s\n", cpuLabel(oc), cpuLabel(nc))
		if oc > 0 && nc > 0 && oc != nc {
			fmt.Fprintf(out, "note: core counts differ; absolute throughput deltas reflect hardware, not code\n")
		}
	}
	failures := compare(out, oldRecs, newRecs, metric, maxRegress)
	for _, g := range gates {
		if g.floor > 0 {
			failures = append(failures, checkRatio(out, newRecs, metric, g)...)
		}
	}
	for _, b := range budgets {
		failures = append(failures, checkBudget(out, newRecs, b)...)
	}
	return failures, nil
}

// budgetGate is an absolute bound on one metric of the new run: a ceiling
// by default, a floor when floor is set. match restricts it to records
// whose name contains the substring ("" = every record with the metric).
type budgetGate struct {
	metric string
	limit  float64
	floor  bool
	match  string
}

// checkBudget enforces one absolute budget over the new run. No matching
// record is itself a failure: a gate that silently checked nothing would
// pass forever.
func checkBudget(out io.Writer, recs []record, b budgetGate) []string {
	kind := "ceiling"
	if b.floor {
		kind = "floor"
	}
	var failures []string
	checked := 0
	for _, r := range recs {
		if b.match != "" && !strings.Contains(r.Name, b.match) {
			continue
		}
		v, ok := r.Metrics[b.metric]
		if !ok {
			continue
		}
		checked++
		fmt.Fprintf(out, "budget %s: %s = %g (%s %g)\n", b.metric, r.Name, v, kind, b.limit)
		if b.floor && v < b.limit {
			failures = append(failures, fmt.Sprintf(
				"%s: %s = %g below floor %g", r.Name, b.metric, v, b.limit))
		}
		if !b.floor && v > b.limit {
			failures = append(failures, fmt.Sprintf(
				"%s: %s = %g over budget %g", r.Name, b.metric, v, b.limit))
		}
	}
	if checked == 0 {
		return []string{fmt.Sprintf(
			"budget %s (match %q): no record in the new run carries the metric", b.metric, b.match)}
	}
	return failures
}

// hostCPUs returns the CPU count stamped in a record set (0 if absent).
func hostCPUs(recs []record) int {
	for _, r := range recs {
		if r.NumCPU > 0 {
			return r.NumCPU
		}
	}
	return 0
}

func cpuLabel(n int) string {
	if n <= 0 {
		return "unknown"
	}
	return fmt.Sprintf("%d", n)
}

// compare gates every baseline benchmark's metric against the fresh run.
func compare(out io.Writer, oldRecs, newRecs []record, metric string, maxRegress float64) []string {
	byName := make(map[string]record, len(newRecs))
	for _, r := range newRecs {
		byName[r.Name] = r
	}
	var failures []string
	fmt.Fprintf(out, "%-50s %14s %14s %8s\n", "benchmark", "old "+metric, "new "+metric, "delta")
	for _, o := range oldRecs {
		ov, ok := o.Metrics[metric]
		if !ok {
			// Baseline rows without the gated metric don't constrain the run.
			continue
		}
		n, ok := byName[o.Name]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: present in baseline, missing from new run", o.Name))
			continue
		}
		nv, ok := n.Metrics[metric]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: new run lacks metric %q", o.Name, metric))
			continue
		}
		// Only same-backend records compare: an event baseline against a
		// bit-parallel candidate (or vice versa) would read the ~10x engine
		// gap as a huge improvement or regression. Records without a stamped
		// backend (older baselines) compare as before.
		if o.Backend != "" && n.Backend != "" && o.Backend != n.Backend {
			fmt.Fprintf(out, "note: %s: backend changed (%s -> %s); not compared\n",
				o.Name, o.Backend, n.Backend)
			continue
		}
		delta := 0.0
		if ov > 0 {
			delta = nv/ov - 1
		}
		fmt.Fprintf(out, "%-50s %14.1f %14.1f %+7.1f%%\n", o.Name, ov, nv, delta*100)
		if ov > 0 && nv < ov*(1-maxRegress) {
			failures = append(failures, fmt.Sprintf(
				"%s: %s regressed %.1f%% (%.1f -> %.1f, tolerance %.0f%%)",
				o.Name, metric, -delta*100, ov, nv, maxRegress*100))
		}
	}
	return failures
}

// ratioGate is a floor on the metric ratio of two benchmarks within the
// new run: worker scaling (workers=8 over workers=1) and the bit-parallel
// backend's speedup (BitParallel workers=1 over event workers=1) are both
// instances of it.
type ratioGate struct {
	floor        float64
	base, target string
	label        string
}

// checkRatio enforces one ratio floor within the new run.
func checkRatio(out io.Writer, recs []record, metric string, g ratioGate) []string {
	find := func(sub string) (record, bool) {
		for _, r := range recs {
			if strings.Contains(r.Name, sub) {
				return r, true
			}
		}
		return record{}, false
	}
	b, okB := find(g.base)
	tr, okT := find(g.target)
	if !okB || !okT {
		return []string{fmt.Sprintf("%s check: missing %q or %q in new run", g.label, g.base, g.target)}
	}
	bv, tv := b.Metrics[metric], tr.Metrics[metric]
	if bv <= 0 {
		return []string{fmt.Sprintf("%s check: baseline %s has %s = %v", g.label, b.Name, metric, bv)}
	}
	ratio := tv / bv
	fmt.Fprintf(out, "%s %s: %s/%s = %.2fx (floor %.2fx)\n", g.label, metric, g.target, g.base, ratio, g.floor)
	if ratio < g.floor {
		return []string{fmt.Sprintf("%s: %s is %.2fx of %s in %s, floor %.2fx",
			g.label, g.target, ratio, g.base, metric, g.floor)}
	}
	return nil
}
