// Command hdserve runs the Hd power-estimation service: fitted macro-model
// inference over HTTP with built-in Prometheus observability.
//
// Characterization is the expensive step; serving an estimate from a
// fitted model is a table lookup. hdserve keeps fitted models in an LRU,
// builds them asynchronously through the parallel characterization engine
// (deduplicating concurrent requests for the same model), and answers
// estimate requests in microseconds:
//
//	hdserve -addr :8080
//	curl -s localhost:8080/v1/models/build -d '{"module":"csa-multiplier","width":8,"seed":1,"wait":true}'
//	curl -s localhost:8080/v1/estimate -d '{"model":{"module":"csa-multiplier","width":8,"seed":1},"hd":[3,5,2]}'
//	curl -s localhost:8080/metrics
//
// SIGINT/SIGTERM starts a graceful shutdown: the listener stops, readiness
// flips to 503, and in-flight model builds drain before exit.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"hdpower/internal/serve"
)

func main() {
	var (
		addr           = flag.String("addr", ":8080", "listen address")
		requestTimeout = flag.Duration("request-timeout", 15*time.Second, "per-request timeout")
		buildTimeout   = flag.Duration("build-timeout", 10*time.Minute, "per-model-build timeout")
		buildWorkers   = flag.Int("build-workers", 1, "concurrent model builds")
		buildQueue     = flag.Int("build-queue", 16, "pending-build queue depth (full => 429)")
		charWorkers    = flag.Int("char-workers", 0, "characterization workers per build (0 = NumCPU)")
		modelCache     = flag.Int("model-cache", 64, "fitted-model LRU capacity")
		maxBody        = flag.Int64("max-body", 1<<20, "request body cap in bytes")
		shutdownGrace  = flag.Duration("shutdown-grace", 30*time.Second, "drain deadline on SIGTERM")
	)
	flag.Parse()

	srv := serve.New(serve.Config{
		MaxBodyBytes:   *maxBody,
		RequestTimeout: *requestTimeout,
		BuildTimeout:   *buildTimeout,
		BuildWorkers:   *buildWorkers,
		BuildQueue:     *buildQueue,
		ModelCache:     *modelCache,
		CharWorkers:    *charWorkers,
	})
	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("hdserve: listening on %s", *addr)
		errc <- hs.ListenAndServe()
	}()

	select {
	case err := <-errc:
		log.Fatalf("hdserve: %v", err)
	case <-ctx.Done():
	}

	log.Printf("hdserve: signal received, draining (grace %s)", *shutdownGrace)
	graceCtx, cancel := context.WithTimeout(context.Background(), *shutdownGrace)
	defer cancel()
	if err := hs.Shutdown(graceCtx); err != nil {
		log.Printf("hdserve: http shutdown: %v", err)
	}
	if err := srv.Drain(graceCtx); err != nil && !errors.Is(err, context.Canceled) {
		log.Printf("hdserve: %v", err)
	}
	srv.Close()
	fmt.Println("hdserve: drained, bye")
}
