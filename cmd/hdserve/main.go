// Command hdserve runs the Hd power-estimation service: fitted macro-model
// inference over HTTP with built-in Prometheus observability.
//
// Characterization is the expensive step; serving an estimate from a
// fitted model is a table lookup. hdserve keeps fitted models in an LRU,
// builds them asynchronously through the parallel characterization engine
// (deduplicating concurrent requests for the same model), and answers
// estimate requests in microseconds:
//
//	hdserve -addr :8080
//	curl -s localhost:8080/v1/models/build -d '{"module":"csa-multiplier","width":8,"seed":1,"wait":true}'
//	curl -s localhost:8080/v1/estimate -d '{"model":{"module":"csa-multiplier","width":8,"seed":1},"hd":[3,5,2]}'
//	curl -s localhost:8080/metrics
//
// Every request runs under a trace span (X-Trace-ID on responses, joined
// into the structured access log), model builds emit flight-recorder
// manifests (-manifest-dir persists them), and -admin-addr opens a second,
// operator-only listener with /debug/pprof and /debug/traces.
//
// GET /v1/telemetry serves the windowed view (latency quantiles, QPS,
// SLO burn rates, per-model Hd mix); -capture-dir writes telemetry+pprof
// captures on SLO breach, and -refine turns the observed mix into
// re-characterization builds for hot, under-budgeted models
// (GET /v1/telemetry/hotset shows the recommendations).
//
// -fleet turns the server into a characterization-fleet coordinator: it
// mounts the /fleet/v1/* lease protocol and dispatches model builds to
// registered workers as leased shard ranges, merging results
// bit-identically to a single-node build. -worker <url> runs the binary
// as a headless fleet worker of that coordinator instead of serving.
//
// SIGINT/SIGTERM starts a graceful shutdown: the listener stops, readiness
// flips to 503, and in-flight model builds drain before exit.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"hdpower/internal/core"
	"hdpower/internal/fleet"
	"hdpower/internal/obs"
	"hdpower/internal/serve"
)

func main() {
	var (
		addr           = flag.String("addr", ":8080", "listen address")
		adminAddr      = flag.String("admin-addr", "", "admin listen address for /debug/pprof and /debug/traces (off when empty)")
		requestTimeout = flag.Duration("request-timeout", 15*time.Second, "per-request timeout")
		buildTimeout   = flag.Duration("build-timeout", 10*time.Minute, "per-model-build timeout")
		buildWorkers   = flag.Int("build-workers", 1, "concurrent model builds")
		buildQueue     = flag.Int("build-queue", 16, "pending-build queue depth (full => 429)")
		charWorkers    = flag.Int("char-workers", 0, "characterization workers per build (0 = NumCPU)")
		modelCache     = flag.Int("model-cache", 64, "fitted-model LRU capacity")
		maxBody        = flag.Int64("max-body", 1<<20, "request body cap in bytes")
		shutdownGrace  = flag.Duration("shutdown-grace", 30*time.Second, "drain deadline on SIGTERM")
		logFormat      = flag.String("log-format", "text", "log output format: text or json")
		logLevel       = flag.String("log-level", "info", "minimum log level: debug, info, warn, error")
		traceCapacity  = flag.Int("trace-capacity", 0, "recent-span ring capacity (0 = default 512)")
		manifestDir    = flag.String("manifest-dir", "", "persist per-build flight-recorder manifests here (off when empty)")
		checkpointDir  = flag.String("checkpoint-dir", "", "crash-safe builds: checkpoint and recover interrupted builds here (off when empty)")
		checkpointEach = flag.Int("checkpoint-every", 0, "checkpoint interval in merged shards (0 = default 16)")
		buildRetries   = flag.Int("build-retries", 0, "retries per transiently failed build (0 = default 2, negative = none)")
		libraryDir     = flag.String("library", "", "durable model library for persisted builds and degraded estimates (off when empty)")
		backendName    = flag.String("backend", "bitparallel", "characterization backend: bitparallel (64 pairs per pass) or event (golden event-driven reference)")

		telemetryWindow  = flag.Duration("telemetry-window", 0, "telemetry aggregation window width (0 = default 10s)")
		telemetryWindows = flag.Int("telemetry-windows", 0, "telemetry window ring length (0 = default 30)")
		sloUnary         = flag.Duration("slo-latency-unary", 0, "unary estimate latency budget (0 = default 25ms)")
		sloStream        = flag.Duration("slo-latency-stream", 0, "stream estimate latency budget (0 = default 80ms)")
		sloObjective     = flag.Float64("slo-objective", 0, "SLO success-rate objective (0 = default 0.999)")
		sloBurn          = flag.Float64("slo-burn-breach", 0, "burn-rate multiple declaring an SLO breach (0 = default 2)")
		captureDir       = flag.String("capture-dir", "", "write telemetry+pprof captures here on SLO breach (off when empty)")
		captureInterval  = flag.Duration("capture-min-interval", 0, "minimum spacing between SLO captures (0 = default 1m)")
		captureMax       = flag.Int("capture-max", 0, "max SLO captures per process (0 = default 8)")
		refine           = flag.Duration("refine", 0, "refinement loop interval: re-characterize hot under-budgeted models from the observed Hd mix (0 = off)")
		refineThreshold  = flag.Float64("refine-threshold", 0, "hot-class threshold as a multiple of the uniform per-class budget (0 = default 2)")
		refineMinEst     = flag.Uint64("refine-min-estimates", 0, "minimum observed estimates before a model is refined (0 = default 1024)")

		fleetOn          = flag.Bool("fleet", false, "coordinator mode: mount /fleet/v1/* and dispatch builds to registered workers")
		fleetLeaseShards = flag.Int("fleet-lease-shards", 0, "plan shards per worker lease (0 = default 8)")
		fleetLeaseTTL    = flag.Duration("fleet-lease-ttl", 0, "lease deadline without a heartbeat before re-leasing (0 = default 10s)")
		workerOf         = flag.String("worker", "", "worker mode: pull shard-range leases from this coordinator URL instead of serving")
		workerName       = flag.String("worker-name", "", "worker name in leases and logs (default: hostname-pid)")
	)
	flag.Parse()
	backend, err := core.ParseBackendKind(*backendName)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hdserve: %v\n", err)
		os.Exit(2)
	}
	if !obs.ValidLogFormat(*logFormat) {
		fmt.Fprintf(os.Stderr, "hdserve: unknown -log-format %q (want text or json)\n", *logFormat)
		os.Exit(2)
	}
	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		fmt.Fprintf(os.Stderr, "hdserve: bad -log-level %q: %v\n", *logLevel, err)
		os.Exit(2)
	}
	logger := obs.NewLogger(os.Stderr, *logFormat, level)

	if *workerOf != "" {
		os.Exit(runWorker(*workerOf, *workerName, *charWorkers, logger))
	}

	var coord *fleet.Coordinator
	if *fleetOn {
		coord = fleet.NewCoordinator(fleet.Config{
			LeaseShards:  *fleetLeaseShards,
			LeaseTTL:     *fleetLeaseTTL,
			LocalWorkers: *charWorkers,
			Logger:       logger,
		})
	}

	srv := serve.New(serve.Config{
		MaxBodyBytes:    *maxBody,
		RequestTimeout:  *requestTimeout,
		BuildTimeout:    *buildTimeout,
		BuildWorkers:    *buildWorkers,
		BuildQueue:      *buildQueue,
		ModelCache:      *modelCache,
		CharWorkers:     *charWorkers,
		Backend:         backend,
		Logger:          logger,
		TraceCapacity:   *traceCapacity,
		ManifestDir:     *manifestDir,
		CheckpointDir:   *checkpointDir,
		CheckpointEvery: *checkpointEach,
		BuildRetries:    *buildRetries,
		LibraryDir:      *libraryDir,
		Fleet:           coord,

		TelemetryWindow:    *telemetryWindow,
		TelemetryWindows:   *telemetryWindows,
		SLOLatencyUnary:    *sloUnary,
		SLOLatencyStream:   *sloStream,
		SLOObjective:       *sloObjective,
		SLOBurnBreach:      *sloBurn,
		CaptureDir:         *captureDir,
		CaptureMinInterval: *captureInterval,
		CaptureMax:         *captureMax,
		RefineInterval:     *refine,
		RefineThreshold:    *refineThreshold,
		RefineMinEstimates: *refineMinEst,
	})
	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		logger.Info("listening", "addr", *addr)
		errc <- hs.ListenAndServe()
	}()

	var admin *http.Server
	if *adminAddr != "" {
		admin = &http.Server{
			Addr:              *adminAddr,
			Handler:           srv.AdminHandler(),
			ReadHeaderTimeout: 5 * time.Second,
		}
		go func() {
			logger.Info("admin listening", "addr", *adminAddr)
			if err := admin.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Error("admin listener", "err", err)
			}
		}()
	}

	select {
	case err := <-errc:
		logger.Error("listener failed", "err", err)
		os.Exit(1)
	case <-ctx.Done():
	}

	logger.Info("signal received, draining", "grace", *shutdownGrace)
	graceCtx, cancel := context.WithTimeout(context.Background(), *shutdownGrace)
	defer cancel()
	if err := hs.Shutdown(graceCtx); err != nil {
		logger.Warn("http shutdown", "err", err)
	}
	if admin != nil {
		if err := admin.Shutdown(graceCtx); err != nil {
			logger.Warn("admin shutdown", "err", err)
		}
	}
	if err := srv.Drain(graceCtx); err != nil && !errors.Is(err, context.Canceled) {
		logger.Warn("drain", "err", err)
	}
	srv.Close()
	logger.Info("drained, bye")
}

// runWorker is the -worker mode: a headless fleet worker pulling shard-range
// leases from the coordinator until interrupted. It never opens a listener.
func runWorker(coordinator, name string, workers int, logger *slog.Logger) int {
	if name == "" {
		host, err := os.Hostname()
		if err != nil {
			host = "worker"
		}
		name = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	w, err := fleet.NewWorker(fleet.WorkerConfig{
		Coordinator: coordinator,
		Name:        name,
		Workers:     workers,
		Logger:      logger,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "hdserve: %v\n", err)
		return 2
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	logger.Info("worker joining fleet", "coordinator", coordinator, "name", name)
	w.Run(ctx)
	logger.Info("worker stopped, bye")
	return 0
}
