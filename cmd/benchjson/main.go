// Command benchjson converts `go test -bench` output on stdin into a
// JSON array on stdout, one record per benchmark result line with every
// reported metric keyed by its unit. CI pipes the characterization
// benchmark through it to publish BENCH_characterize.json:
//
//	go test -run '^$' -bench BenchmarkCharacterizeParallel . | benchjson
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

type record struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

func main() {
	recs := []record{}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		if rec, ok := parseLine(sc.Text()); ok {
			recs = append(recs, rec)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(recs); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

// parseLine handles the testing package's benchmark result format:
//
//	BenchmarkName/sub-8   5   123 ns/op   456 patterns/sec   ...
func parseLine(line string) (record, bool) {
	if !strings.HasPrefix(line, "Benchmark") {
		return record{}, false
	}
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return record{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return record{}, false
	}
	rec := record{Name: fields[0], Iterations: iters, Metrics: make(map[string]float64)}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return record{}, false
		}
		rec.Metrics[fields[i+1]] = v
	}
	return rec, true
}
