// Command benchjson converts `go test -bench` output on stdin into a
// JSON array on stdout, one record per benchmark result line with every
// reported metric keyed by its unit. CI pipes the characterization
// benchmark through it to publish BENCH_characterize.json:
//
//	go test -run '^$' -bench BenchmarkCharacterizeParallel . | benchjson
//
// The tool is a CI gate input, so it fails loudly instead of emitting
// empty or partial JSON: no benchmark result lines on stdin, or a result
// line whose metrics cannot be parsed, exit non-zero.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
)

type record struct {
	Name       string `json:"name"`
	Iterations int64  `json:"iterations"`
	// NumCPU is the host's logical CPU count at conversion time, stamped
	// so a baseline records the hardware it was measured on — comparing
	// scaling ratios across hosts with different core counts is
	// meaningless, and this makes the mismatch visible.
	NumCPU int `json:"num_cpu"`
	// GOMAXPROCS is the scheduler width the benchmark ran at, parsed from
	// the "-N" suffix the testing package appends to every benchmark name.
	// It can differ from NumCPU (GOMAXPROCS env var, -cpu flag), and
	// allocs/op or ns/op comparisons across different widths mislead the
	// same way cross-host ones do. 0 when the name carries no suffix.
	GOMAXPROCS int `json:"gomaxprocs,omitempty"`
	// Backend names the simulation engine the benchmark exercised,
	// inferred from the benchmark name ("bitparallel" for the BitParallel
	// benchmark family, "event" for the scalar characterization and
	// simulation families, empty otherwise). benchcmp refuses to compare
	// records whose backends differ: a bitparallel baseline against an
	// event candidate would mistake an 11x engine gap for a regression.
	Backend string             `json:"backend,omitempty"`
	Metrics map[string]float64 `json:"metrics"`
}

// inferBackend maps a benchmark name to the simulation backend it drives.
func inferBackend(name string) string {
	switch {
	case strings.Contains(name, "BitParallel"):
		return "bitparallel"
	case strings.Contains(name, "Characterize"), strings.Contains(name, "Simulate"):
		return "event"
	default:
		return ""
	}
}

func main() {
	if err := convert(os.Stdin, os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

// convert reads `go test -bench` output and writes the JSON records, or
// returns an error when the input holds no usable benchmark results.
func convert(in io.Reader, out io.Writer) error {
	recs := []record{}
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		rec, ok, err := parseLine(sc.Text())
		if err != nil {
			return fmt.Errorf("stdin line %d: %w", lineNo, err)
		}
		if ok {
			rec.NumCPU = runtime.NumCPU()
			rec.GOMAXPROCS = nameProcs(rec.Name)
			rec.Backend = inferBackend(rec.Name)
			recs = append(recs, rec)
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if len(recs) == 0 {
		return fmt.Errorf("no benchmark result lines on stdin (did the benchmark run, and was its output piped here?)")
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(recs)
}

// nameProcs extracts the GOMAXPROCS suffix from a benchmark name
// ("BenchmarkX/sub-8" -> 8). The testing package only appends it when
// GOMAXPROCS > 1; 0 means no suffix.
func nameProcs(name string) int {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return 0
	}
	n, err := strconv.Atoi(name[i+1:])
	if err != nil || n <= 0 {
		return 0
	}
	return n
}

// parseLine handles the testing package's benchmark result format,
// including the -benchmem columns (B/op, allocs/op), which arrive as
// ordinary value/unit pairs:
//
//	BenchmarkName/sub-8   5   123 ns/op   456 patterns/sec   ...
//
// Non-result lines (package headers, PASS/ok, a benchmark's own log
// output) are skipped; a genuine result line that cannot be fully parsed
// is an error, because silently dropping it would let a CI gate pass on
// missing data.
func parseLine(line string) (record, bool, error) {
	if !strings.HasPrefix(line, "Benchmark") {
		return record{}, false, nil
	}
	fields := strings.Fields(line)
	if len(fields) < 2 {
		// Bare benchmark-name announce line (printed before sub-benchmark
		// log output); not a result.
		return record{}, false, nil
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		// Starts with "Benchmark" but the second token is not an
		// iteration count: benchmark log output, not a result line.
		return record{}, false, nil
	}
	rest := fields[2:]
	if len(rest) == 0 {
		return record{}, false, fmt.Errorf("benchmark line %q has no metrics", line)
	}
	if len(rest)%2 != 0 {
		return record{}, false, fmt.Errorf("benchmark line %q has a truncated value/unit pair", line)
	}
	rec := record{Name: fields[0], Iterations: iters, Metrics: make(map[string]float64, len(rest)/2)}
	for i := 0; i < len(rest); i += 2 {
		v, err := strconv.ParseFloat(rest[i], 64)
		if err != nil {
			return record{}, false, fmt.Errorf("benchmark line %q: bad metric value %q: %v", line, rest[i], err)
		}
		rec.Metrics[rest[i+1]] = v
	}
	return rec, true, nil
}
