package main

import (
	"bytes"
	"encoding/json"
	"runtime"
	"strings"
	"testing"
)

const benchOutput = `goos: linux
goarch: amd64
pkg: hdpower
cpu: some cpu
BenchmarkCharacterizeParallel/workers=1-8         	       2	271011689 ns/op	      7380 patterns/sec
BenchmarkCharacterizeParallel/workers=8-8         	       2	277127546 ns/op	      7217 patterns/sec
PASS
ok  	hdpower	2.5s
`

func TestConvertValid(t *testing.T) {
	var out bytes.Buffer
	if err := convert(strings.NewReader(benchOutput), &out); err != nil {
		t.Fatal(err)
	}
	var recs []record
	if err := json.Unmarshal(out.Bytes(), &recs); err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("got %d records", len(recs))
	}
	if recs[0].Name != "BenchmarkCharacterizeParallel/workers=1-8" || recs[0].Iterations != 2 {
		t.Fatalf("record[0] = %+v", recs[0])
	}
	if recs[0].Metrics["patterns/sec"] != 7380 || recs[1].Metrics["ns/op"] != 277127546 {
		t.Fatalf("metrics wrong: %+v", recs)
	}
	for i, r := range recs {
		if r.NumCPU != runtime.NumCPU() {
			t.Errorf("record[%d] num_cpu = %d, want %d", i, r.NumCPU, runtime.NumCPU())
		}
	}
}

func TestConvertEmptyInputFails(t *testing.T) {
	for _, in := range []string{"", "PASS\nok  \thdpower\t0.1s\n", "goos: linux\n"} {
		var out bytes.Buffer
		err := convert(strings.NewReader(in), &out)
		if err == nil {
			t.Errorf("input %q: expected error, wrote %q", in, out.String())
		}
		if out.Len() != 0 {
			t.Errorf("input %q: emitted partial output %q", in, out.String())
		}
	}
}

func TestConvertMissingMetricsFails(t *testing.T) {
	cases := []string{
		"BenchmarkX-8\t5\n",                 // iterations but no metrics
		"BenchmarkX-8\t5\t123\n",            // value without unit
		"BenchmarkX-8\t5\tfast ns/op\n",     // unparseable value
		"BenchmarkX-8\t5\t1 ns/op\t99 \n\n", // trailing orphan value
	}
	for _, in := range cases {
		var out bytes.Buffer
		if err := convert(strings.NewReader(in), &out); err == nil {
			t.Errorf("input %q: expected error, wrote %q", in, out.String())
		}
	}
}

func TestParseLineSkipsNonResults(t *testing.T) {
	for _, line := range []string{
		"goos: linux",
		"BenchmarkCharacterizeParallel/workers=1-8", // announce line
		"Benchmarking the fast path...",             // log output
		"ok  \thdpower\t2.5s",
	} {
		if rec, ok, err := parseLine(line); ok || err != nil {
			t.Errorf("line %q: rec=%+v ok=%v err=%v", line, rec, ok, err)
		}
	}
}

// TestBackendStamping: records carry the simulation backend inferred from
// the benchmark name, so benchcmp can refuse cross-backend comparisons.
func TestBackendStamping(t *testing.T) {
	for name, want := range map[string]string{
		"BenchmarkCharacterizeBitParallel/workers=1-8": "bitparallel",
		"BenchmarkCharacterizeParallel/workers=1-8":    "event",
		"BenchmarkSimulateCycle-8":                     "event",
		"BenchmarkFigure1-8":                           "",
	} {
		if got := inferBackend(name); got != want {
			t.Errorf("inferBackend(%q) = %q, want %q", name, got, want)
		}
	}
	in := "BenchmarkCharacterizeBitParallel/workers=1 2 1000 ns/op 70000 patterns/sec\n"
	var out bytes.Buffer
	if err := convert(strings.NewReader(in), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), `"backend": "bitparallel"`) {
		t.Errorf("backend not stamped:\n%s", out.String())
	}
}

// TestConvertBenchmem: the -benchmem columns (B/op, allocs/op) arrive as
// ordinary value/unit pairs and land in the metrics map, and the
// GOMAXPROCS suffix on the name is stamped as its own field.
func TestConvertBenchmem(t *testing.T) {
	in := "BenchmarkEstimateFast/hd-8    \t  500000\t      2134 ns/op\t       0 B/op\t       0 allocs/op\n"
	var out bytes.Buffer
	if err := convert(strings.NewReader(in), &out); err != nil {
		t.Fatal(err)
	}
	var recs []record
	if err := json.Unmarshal(out.Bytes(), &recs); err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("got %d records", len(recs))
	}
	r := recs[0]
	if r.Metrics["ns/op"] != 2134 || r.Metrics["B/op"] != 0 || r.Metrics["allocs/op"] != 0 {
		t.Fatalf("metrics = %+v", r.Metrics)
	}
	if r.GOMAXPROCS != 8 {
		t.Fatalf("gomaxprocs = %d, want 8", r.GOMAXPROCS)
	}
	if !strings.Contains(out.String(), `"gomaxprocs": 8`) {
		t.Errorf("gomaxprocs not serialized:\n%s", out.String())
	}
}

// TestNameProcs covers suffix parsing, including names without a suffix
// and dashes inside the benchmark name itself.
func TestNameProcs(t *testing.T) {
	for name, want := range map[string]int{
		"BenchmarkX-8":               8,
		"BenchmarkX/sub=1-16":        16,
		"BenchmarkX":                 0,
		"BenchmarkRipple-adder":      0, // trailing token not a number
		"BenchmarkX-0":               0, // zero procs is no stamp
		"BenchmarkServe/mix=mixed-4": 4,
	} {
		if got := nameProcs(name); got != want {
			t.Errorf("nameProcs(%q) = %d, want %d", name, got, want)
		}
	}
}

// TestConvertMalformedBenchmem extends the malformed-input coverage to
// the -benchmem shape: truncated pairs and garbage values in the memory
// columns are loud errors, not silently dropped metrics.
func TestConvertMalformedBenchmem(t *testing.T) {
	cases := []string{
		"BenchmarkX-8\t5\t1 ns/op\t0 B/op\t7\n",           // orphan allocs value
		"BenchmarkX-8\t5\t1 ns/op\tzero B/op\n",           // garbage B/op value
		"BenchmarkX-8\t5\t1 ns/op\t0 B/op\tx allocs/op\n", // garbage allocs value
	}
	for _, in := range cases {
		var out bytes.Buffer
		if err := convert(strings.NewReader(in), &out); err == nil {
			t.Errorf("input %q: expected error, wrote %q", in, out.String())
		}
	}
}
