package main

import (
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

func TestPercentileNearestRank(t *testing.T) {
	sorted := make([]time.Duration, 100)
	for i := range sorted {
		sorted[i] = time.Duration(i+1) * time.Millisecond
	}
	if got := percentile(sorted, 0.50); got != 50*time.Millisecond {
		t.Errorf("p50 = %v", got)
	}
	if got := percentile(sorted, 0.99); got != 99*time.Millisecond {
		t.Errorf("p99 = %v", got)
	}
	if got := percentile(sorted[:1], 0.99); got != time.Millisecond {
		t.Errorf("single sample p99 = %v", got)
	}
	if got := percentile(nil, 0.5); got != 0 {
		t.Errorf("empty p50 = %v", got)
	}
}

func TestScrapeCounterSumsSeries(t *testing.T) {
	body := `# HELP hdserve_estimate_served_total estimates
# TYPE hdserve_estimate_served_total counter
hdserve_estimate_served_total{path="lut"} 40
hdserve_estimate_served_total{path="legacy"} 2
hdserve_estimate_served_totally_unrelated 999
hdserve_go_mallocs_total 12345
`
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/metrics" {
			http.NotFound(w, r)
			return
		}
		w.Write([]byte(body))
	}))
	defer srv.Close()
	got, err := scrapeCounter(srv.Client(), srv.URL, "hdserve_estimate_served_total")
	if err != nil || got != 42 {
		t.Fatalf("labeled sum = %v, %v (want 42)", got, err)
	}
	got, err = scrapeCounter(srv.Client(), srv.URL, "hdserve_go_mallocs_total")
	if err != nil || got != 12345 {
		t.Fatalf("unlabeled = %v, %v", got, err)
	}
	if _, err := scrapeCounter(srv.Client(), srv.URL, "no_such_metric"); err == nil {
		t.Fatal("absent metric must error")
	}
}

// TestRenderRequestShapes: every generated body is valid JSON in the
// server's request schema, respects the hd/stable_zeros range contracts,
// and only legacy mode includes the fast-path-rejecting patterns field.
func TestRenderRequestShapes(t *testing.T) {
	tgt := target{module: "csa-multiplier", width: 8, seed: 1, inputBits: 16}
	rng := rand.New(rand.NewSource(7))
	for _, shape := range []string{"hd", "words", "enhanced"} {
		for _, legacy := range []bool{false, true} {
			body := renderRequest(rng, tgt, shape, 12, legacy, 2000)
			var req struct {
				Model struct {
					Module   string `json:"module"`
					Width    int    `json:"width"`
					Seed     int64  `json:"seed"`
					Patterns int    `json:"patterns"`
				} `json:"model"`
				Hd          []int    `json:"hd"`
				StableZeros []int    `json:"stable_zeros"`
				Words       []uint64 `json:"words"`
			}
			if err := json.Unmarshal(body, &req); err != nil {
				t.Fatalf("%s legacy=%v: %v: %s", shape, legacy, err, body)
			}
			if req.Model.Module != tgt.module || req.Model.Width != tgt.width {
				t.Fatalf("%s: model = %+v", shape, req.Model)
			}
			if legacy != (req.Model.Patterns != 0) {
				t.Fatalf("%s legacy=%v: patterns = %d", shape, legacy, req.Model.Patterns)
			}
			switch shape {
			case "hd":
				if len(req.Hd) != 12 || len(req.StableZeros) != 0 || len(req.Words) != 0 {
					t.Fatalf("hd body: %s", body)
				}
			case "words":
				if len(req.Words) != 13 || len(req.Hd) != 0 {
					t.Fatalf("words body: %s", body)
				}
				for _, w := range req.Words {
					if w >= 1<<8 {
						t.Fatalf("word %d over width %d", w, tgt.width)
					}
				}
			case "enhanced":
				if len(req.Hd) != 12 || len(req.StableZeros) != 12 {
					t.Fatalf("enhanced body: %s", body)
				}
				for i := range req.Hd {
					if req.Hd[i] < 0 || req.Hd[i] > tgt.inputBits ||
						req.StableZeros[i] < 0 || req.Hd[i]+req.StableZeros[i] > tgt.inputBits {
						t.Fatalf("range violation hd=%d sz=%d bits=%d",
							req.Hd[i], req.StableZeros[i], tgt.inputBits)
					}
				}
			}
		}
	}
}

// TestRenderRequestDeterministic: the same generator seed produces the
// same byte stream — the property that makes baselines comparable.
func TestRenderRequestDeterministic(t *testing.T) {
	tgt := target{module: "ripple-adder", width: 4, seed: 3, inputBits: 8}
	a := renderRequest(rand.New(rand.NewSource(11)), tgt, "enhanced", 6, false, 0)
	b := renderRequest(rand.New(rand.NewSource(11)), tgt, "enhanced", 6, false, 0)
	if string(a) != string(b) {
		t.Fatalf("same seed, different bodies:\n%s\n%s", a, b)
	}
}

func TestParseModels(t *testing.T) {
	good := config{mix: "mixed", endpoint: "both", concurrency: 1, cycles: 1, streamBatch: 1, seed: 5}
	if err := good.parseModels("csa-multiplier:8, ripple-adder:16"); err != nil {
		t.Fatal(err)
	}
	if len(good.models) != 2 || good.models[1].width != 16 || good.models[0].seed != 5 {
		t.Fatalf("models = %+v", good.models)
	}
	for _, tc := range []config{
		{mix: "nope", endpoint: "both", concurrency: 1, cycles: 1, streamBatch: 1},
		{mix: "hd", endpoint: "sideways", concurrency: 1, cycles: 1, streamBatch: 1},
		{mix: "hd", endpoint: "unary", concurrency: 0, cycles: 1, streamBatch: 1},
	} {
		if err := tc.parseModels("a:8"); err == nil {
			t.Errorf("config %+v must be rejected", tc)
		}
	}
	ok := config{mix: "hd", endpoint: "unary", concurrency: 1, cycles: 1, streamBatch: 1}
	for _, spec := range []string{"", "noseparator", "mod:zero", "mod:-1"} {
		c := ok
		if err := c.parseModels(spec); err == nil {
			t.Errorf("spec %q must be rejected", spec)
		}
	}
}
