// Command hdload is a deterministic closed-loop load generator for
// hdserve's estimate data plane. It builds the requested models, warms
// the server, then drives the unary (/v1/estimate) and streaming
// (/v1/estimate/stream) endpoints with a fixed-seed request mix, and
// emits benchjson-compatible records so serving performance lands in the
// same baseline/gate machinery (cmd/benchcmp) as characterization:
//
//	hdload -url http://127.0.0.1:8080 -models csa-multiplier:8 \
//	    -concurrency 4 -duration 5s -o BENCH_serve.json
//
// Per scenario the record carries p50-ns / p99-ns (client round-trip
// latency), qps (estimates priced per second), and allocs/op — the
// server-side heap allocations per estimate, measured by scraping
// hdserve_go_mallocs_total from /metrics before and after the measure
// phase. A request mix is reproducible across runs: the generator is
// seeded (-gen-seed), request bodies are pre-generated, and workers walk
// the pool at fixed offsets. Wall-clock only times phases and latencies;
// it never influences which requests are sent.
//
// With -telemetry-check the run also audits the server's own telemetry
// plane: /v1/telemetry is scraped before and after the measure phase and
// the server-observed request delta must agree with the client-side count
// within 1% per plane, then /v1/telemetry snapshot latency is benchmarked
// as a ServeTelemetry/snapshot record so the observability plane itself
// rides the same benchcmp budgets as the estimate planes.
//
// Transient connection errors — dial refused while the server restarts,
// a reset or broken pipe mid-flight — are retried with capped jittered
// backoff before any failure is declared, so a briefly unavailable server
// does not flunk a gate run.
//
// Exit status: 0 on success, 1 when any request failed (a gate run must
// not average errors away) or a telemetry cross-check disagreed, 2 on
// usage or setup failure.
package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"hdpower/internal/atomicio"
)

// record mirrors cmd/benchjson's output schema so BENCH_serve.json flows
// through the same benchcmp gates as BENCH_characterize.json.
type record struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	NumCPU     int                `json:"num_cpu"`
	Backend    string             `json:"backend,omitempty"`
	Metrics    map[string]float64 `json:"metrics"`
}

// target is one built model the generated requests price against.
type target struct {
	module    string
	width     int
	seed      int64
	inputBits int
}

type config struct {
	url          string
	models       []target
	seed         int64
	patterns     int
	enhanced     bool
	genSeed      int64
	qps          float64
	concurrency  int
	duration     time.Duration
	warmup       time.Duration
	mix          string
	cycles       int
	endpoint     string
	streamBatch  int
	readyTimeout time.Duration
	out          string
	legacy       bool
	telemetry    bool
}

func main() {
	var cfg config
	var modelsFlag string
	flag.StringVar(&cfg.url, "url", "http://127.0.0.1:8080", "hdserve base URL")
	flag.StringVar(&modelsFlag, "models", "csa-multiplier:8", "comma-separated module:width specs to build and load against")
	flag.Int64Var(&cfg.seed, "seed", 1, "model build seed")
	flag.IntVar(&cfg.patterns, "patterns", 2000, "characterization budget per model build")
	flag.BoolVar(&cfg.enhanced, "enhanced", false, "build the stable-zero enhanced tables too")
	flag.Int64Var(&cfg.genSeed, "gen-seed", 1, "request-generator seed (same seed => same request sequence)")
	flag.Float64Var(&cfg.qps, "qps", 0, "target aggregate request rate (0 = unthrottled closed loop)")
	flag.IntVar(&cfg.concurrency, "concurrency", 4, "concurrent closed-loop workers")
	flag.DurationVar(&cfg.duration, "duration", 5*time.Second, "measured load phase length")
	flag.DurationVar(&cfg.warmup, "warmup", 1*time.Second, "unmeasured warmup phase length")
	flag.StringVar(&cfg.mix, "mix", "mixed", "request mix: hd, words, enhanced, or mixed")
	flag.IntVar(&cfg.cycles, "cycles", 16, "cycles priced per estimate request")
	flag.StringVar(&cfg.endpoint, "endpoint", "both", "data plane to load: unary, stream, or both")
	flag.IntVar(&cfg.streamBatch, "stream-batch", 64, "estimate lines per streaming batch request")
	flag.DurationVar(&cfg.readyTimeout, "ready-timeout", 30*time.Second, "how long to poll /readyz before giving up")
	flag.StringVar(&cfg.out, "o", "", "write the benchmark JSON here (atomic); stdout when empty")
	flag.BoolVar(&cfg.legacy, "legacy", false, "force the server's legacy decode path (A/B baseline): adds a patterns field to the model spec, which the fast parser rejects while resolving to the same cached model")
	flag.BoolVar(&cfg.telemetry, "telemetry-check", false, "cross-check client request counts against the server's /v1/telemetry planes (>1% disagreement fails the run) and benchmark snapshot latency as ServeTelemetry/snapshot")
	flag.Parse()

	if err := cfg.parseModels(modelsFlag); err != nil {
		fmt.Fprintf(os.Stderr, "hdload: %v\n", err)
		os.Exit(2)
	}
	recs, errCount, checkFails, err := run(&cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hdload: %v\n", err)
		os.Exit(2)
	}
	data, err := json.MarshalIndent(recs, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "hdload: encode records: %v\n", err)
		os.Exit(2)
	}
	data = append(data, '\n')
	if cfg.out != "" {
		if err := atomicio.WriteFile(cfg.out, data, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "hdload: %v\n", err)
			os.Exit(2)
		}
	} else {
		os.Stdout.Write(data)
	}
	fail := false
	if errCount > 0 {
		fmt.Fprintf(os.Stderr, "hdload: FAIL: %d request(s) errored during the measure phase\n", errCount)
		fail = true
	}
	for _, f := range checkFails {
		fmt.Fprintf(os.Stderr, "hdload: FAIL: %s\n", f)
		fail = true
	}
	if fail {
		os.Exit(1)
	}
}

func (c *config) parseModels(spec string) error {
	switch c.mix {
	case "hd", "words", "enhanced", "mixed":
	default:
		return fmt.Errorf("unknown -mix %q (want hd, words, enhanced, or mixed)", c.mix)
	}
	switch c.endpoint {
	case "unary", "stream", "both":
	default:
		return fmt.Errorf("unknown -endpoint %q (want unary, stream, or both)", c.endpoint)
	}
	if c.concurrency < 1 || c.cycles < 1 || c.streamBatch < 1 {
		return fmt.Errorf("-concurrency, -cycles and -stream-batch must be >= 1")
	}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		mod, widthStr, ok := strings.Cut(part, ":")
		if !ok {
			return fmt.Errorf("bad -models entry %q (want module:width)", part)
		}
		width, err := strconv.Atoi(widthStr)
		if err != nil || width < 1 {
			return fmt.Errorf("bad width in -models entry %q", part)
		}
		c.models = append(c.models, target{module: mod, width: width, seed: c.seed})
	}
	if len(c.models) == 0 {
		return fmt.Errorf("-models named no models")
	}
	return nil
}

// run prepares the server (readiness, model builds, input-bits lookup)
// and executes one load scenario per selected endpoint, plus the
// telemetry audit and snapshot benchmark when -telemetry-check is set.
func run(cfg *config) (recs []record, errCount int64, checkFails []string, err error) {
	client := &http.Client{
		Timeout: 30 * time.Second,
		Transport: &http.Transport{
			MaxIdleConns:        cfg.concurrency * 2,
			MaxIdleConnsPerHost: cfg.concurrency * 2,
		},
	}
	if err := waitReady(client, cfg.url, cfg.readyTimeout); err != nil {
		return nil, 0, nil, err
	}
	for i := range cfg.models {
		if err := buildModel(client, cfg, &cfg.models[i]); err != nil {
			return nil, 0, nil, err
		}
	}

	pool := genPool(cfg)
	endpoints := []string{"unary", "stream"}
	if cfg.endpoint != "both" {
		endpoints = []string{cfg.endpoint}
	}
	for _, ep := range endpoints {
		rec, errs, checkFail, err := runScenario(client, cfg, ep, pool)
		if err != nil {
			return nil, 0, nil, err
		}
		recs = append(recs, rec)
		errCount += errs
		if checkFail != "" {
			checkFails = append(checkFails, checkFail)
		}
	}
	if cfg.telemetry {
		rec, err := telemetryBench(client, cfg)
		if err != nil {
			return nil, 0, nil, err
		}
		recs = append(recs, rec)
	}
	return recs, errCount, checkFails, nil
}

// Transient connection errors — the server restarting under us (dial
// refused) or a connection torn down mid-flight (reset, broken pipe) —
// are retried with capped jittered backoff rather than failing the run.
// HTTP status codes are never transient here: a 5xx is the server
// answering, and the caller decides what that means.
const (
	retryAttempts = 5
	retryBase     = 50 * time.Millisecond
	retryCap      = 2 * time.Second
)

func transientErr(err error) bool {
	return errors.Is(err, syscall.ECONNREFUSED) ||
		errors.Is(err, syscall.ECONNRESET) ||
		errors.Is(err, syscall.EPIPE) ||
		errors.Is(err, io.ErrUnexpectedEOF)
}

// retryDelay is the capped full-jitter backoff before retry attempt n.
// Jitter only shifts when a retry fires; it never influences which
// requests are sent, so runs stay reproducible.
func retryDelay(attempt int) time.Duration {
	d := retryBase << uint(attempt)
	if d > retryCap {
		d = retryCap
	}
	return d/2 + time.Duration(rand.Int63n(int64(d/2)+1))
}

// postRetry is client.Post with transient-error retry. The body is a
// byte slice (not a Reader) precisely so each attempt can resend it.
func postRetry(client *http.Client, url, contentType string, body []byte) (*http.Response, error) {
	for attempt := 0; ; attempt++ {
		resp, err := client.Post(url, contentType, bytes.NewReader(body))
		if err == nil {
			return resp, nil
		}
		if attempt >= retryAttempts-1 || !transientErr(err) {
			return nil, err
		}
		delay := retryDelay(attempt)
		fmt.Fprintf(os.Stderr, "hdload: transient error (%v); retrying in %s\n", err, delay)
		time.Sleep(delay)
	}
}

// getRetry is client.Get with transient-error retry.
func getRetry(client *http.Client, url string) (*http.Response, error) {
	for attempt := 0; ; attempt++ {
		resp, err := client.Get(url)
		if err == nil {
			return resp, nil
		}
		if attempt >= retryAttempts-1 || !transientErr(err) {
			return nil, err
		}
		delay := retryDelay(attempt)
		fmt.Fprintf(os.Stderr, "hdload: transient error (%v); retrying in %s\n", err, delay)
		time.Sleep(delay)
	}
}

// waitReady polls /readyz until the server answers 200.
func waitReady(client *http.Client, url string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		resp, err := client.Get(url + "/readyz")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			if err != nil {
				return fmt.Errorf("server at %s not ready after %s: %v", url, timeout, err)
			}
			return fmt.Errorf("server at %s not ready after %s", url, timeout)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// buildModel builds one model synchronously and resolves its input-bits
// count, which bounds the hd values the generator may emit.
func buildModel(client *http.Client, cfg *config, t *target) error {
	spec := map[string]any{
		"module": t.module, "width": t.width, "seed": t.seed,
		"patterns": cfg.patterns, "enhanced": cfg.enhanced, "wait": true,
	}
	body, _ := json.Marshal(spec)
	resp, err := postRetry(client, cfg.url+"/v1/models/build", "application/json", body)
	if err != nil {
		return fmt.Errorf("build %s:%d: %v", t.module, t.width, err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("build %s:%d: status %d: %s", t.module, t.width, resp.StatusCode, data)
	}

	resp, err = getRetry(client, cfg.url+"/v1/models")
	if err != nil {
		return fmt.Errorf("list models: %v", err)
	}
	data, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	var list struct {
		Models []struct {
			Spec struct {
				Module string `json:"module"`
				Width  int    `json:"width"`
				Seed   int64  `json:"seed"`
			} `json:"spec"`
			InputBits int `json:"input_bits"`
		} `json:"models"`
	}
	if err := json.Unmarshal(data, &list); err != nil {
		return fmt.Errorf("list models: %v", err)
	}
	for _, m := range list.Models {
		if m.Spec.Module == t.module && m.Spec.Width == t.width && m.Spec.Seed == t.seed {
			t.inputBits = m.InputBits
			return nil
		}
	}
	return fmt.Errorf("built model %s:%d missing from /v1/models", t.module, t.width)
}

// poolSize is how many distinct request bodies the generator prepares;
// workers cycle through them at fixed offsets, so the byte streams a run
// sends are a pure function of the flags.
const poolSize = 256

// genPool pre-renders the unary request bodies for the configured mix.
// Pre-generation keeps the load loop free of formatting work and makes
// the sequence reproducible without reseeding mid-run.
func genPool(cfg *config) [][]byte {
	rng := rand.New(rand.NewSource(cfg.genSeed))
	shapes := []string{cfg.mix}
	if cfg.mix == "mixed" {
		shapes = []string{"hd", "words", "enhanced"}
	}
	pool := make([][]byte, poolSize)
	for i := range pool {
		t := cfg.models[i%len(cfg.models)]
		pool[i] = renderRequest(rng, t, shapes[i%len(shapes)], cfg.cycles, cfg.legacy, cfg.patterns)
	}
	return pool
}

// renderRequest renders one estimate request body in the hot shape the
// server's fast path parses: the model key triple plus exactly one
// series field. In legacy mode an extra patterns field is included —
// not part of the model cache key, so the request resolves to the same
// model, but the fast parser refuses it and the server answers through
// the legacy decode path.
func renderRequest(rng *rand.Rand, t target, shape string, cycles int, legacy bool, patterns int) []byte {
	var b bytes.Buffer
	if legacy {
		fmt.Fprintf(&b, `{"model":{"module":%q,"width":%d,"seed":%d,"patterns":%d}`,
			t.module, t.width, t.seed, patterns)
	} else {
		fmt.Fprintf(&b, `{"model":{"module":%q,"width":%d,"seed":%d}`, t.module, t.width, t.seed)
	}
	switch shape {
	case "words":
		mask := ^uint64(0)
		if t.width < 64 {
			mask = (1 << uint(t.width)) - 1
		}
		b.WriteString(`,"words":[`)
		for i := 0; i <= cycles; i++ {
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "%d", rng.Uint64()&mask)
		}
		b.WriteString("]}")
	case "enhanced":
		hd := make([]int, cycles)
		for i := range hd {
			hd[i] = rng.Intn(t.inputBits + 1)
		}
		writeIntArray(&b, `,"hd":[`, hd)
		sz := make([]int, cycles)
		for i := range sz {
			sz[i] = rng.Intn(t.inputBits - hd[i] + 1)
		}
		writeIntArray(&b, `,"stable_zeros":[`, sz)
		b.WriteString("}")
	default: // "hd"
		hd := make([]int, cycles)
		for i := range hd {
			hd[i] = rng.Intn(t.inputBits + 1)
		}
		writeIntArray(&b, `,"hd":[`, hd)
		b.WriteString("}")
	}
	return b.Bytes()
}

func writeIntArray(b *bytes.Buffer, open string, vals []int) {
	b.WriteString(open)
	for i, v := range vals {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(b, "%d", v)
	}
	b.WriteByte(']')
}

// loadWorker is one closed-loop client: it sends the next pooled request,
// waits for the full response, records the round-trip, repeats.
type loadWorker struct {
	id       int
	client   *http.Client
	url      string
	pool     [][]byte
	batch    [][]byte // stream mode: bodies are pre-joined NDJSON batches
	interval time.Duration
	stagger  time.Duration

	samples   []time.Duration
	ops       int64 // requests completed
	estimates int64 // estimate lines priced
	errs      int64
	scan      []byte
}

// phase drives the worker until deadline; record selects whether samples
// and counters accumulate (the warmup phase discards them).
func (w *loadWorker) phase(deadline time.Time, unary bool, record bool) {
	bodies := w.pool
	if !unary {
		bodies = w.batch
	}
	i := w.id // fixed per-worker offset into the shared pool
	// Stagger worker start times across one interval so a throttled run
	// does not fire all workers in lockstep.
	next := time.Now().Add(w.stagger)
	for {
		now := time.Now()
		if !now.Before(deadline) {
			return
		}
		if w.interval > 0 {
			if now.Before(next) {
				time.Sleep(next.Sub(now))
			}
			next = next.Add(w.interval)
			if behind := time.Now(); behind.After(next) {
				next = behind // closed loop: never burst to catch up
			}
		}
		body := bodies[i%len(bodies)]
		i++
		t0 := time.Now()
		est, err := w.do(body, unary)
		lat := time.Since(t0)
		if record {
			w.samples = append(w.samples, lat)
			w.ops++
			w.estimates += est
			if err != nil {
				w.errs++
			}
		}
	}
}

// do issues one request and returns how many estimates it priced.
func (w *loadWorker) do(body []byte, unary bool) (int64, error) {
	path := "/v1/estimate/stream"
	if unary {
		path = "/v1/estimate"
	}
	resp, err := postRetry(w.client, w.url+path, "application/json", body)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return 0, fmt.Errorf("status %d", resp.StatusCode)
	}
	if unary {
		io.Copy(io.Discard, resp.Body)
		return 1, nil
	}
	// Stream: count output lines; any {"error": ...} line fails the run.
	est := int64(0)
	var firstErr error
	w.scan = w.scan[:0]
	buf := make([]byte, 32<<10)
	for {
		n, rerr := resp.Body.Read(buf)
		w.scan = append(w.scan, buf[:n]...)
		if rerr == io.EOF {
			break
		}
		if rerr != nil {
			return est, fmt.Errorf("stream read: %v", rerr)
		}
	}
	for _, line := range bytes.Split(w.scan, []byte{'\n'}) {
		if len(line) == 0 {
			continue
		}
		if bytes.HasPrefix(line, []byte(`{"error"`)) {
			if firstErr == nil {
				firstErr = fmt.Errorf("stream error line: %s", line)
			}
			continue
		}
		est++
	}
	return est, firstErr
}

// runScenario runs warmup + measure for one endpoint and folds the
// results into a benchjson record. With -telemetry-check it also returns
// a non-empty failure description when the server's telemetry plane
// disagrees with the client-side request count by more than 1%.
func runScenario(client *http.Client, cfg *config, ep string, pool [][]byte) (record, int64, string, error) {
	unary := ep == "unary"
	var batches [][]byte
	if !unary {
		// Pre-join pool lines into NDJSON batches, rotating the starting
		// line so batches differ while staying deterministic.
		for b := 0; b < poolSize/8; b++ {
			var buf bytes.Buffer
			for j := 0; j < cfg.streamBatch; j++ {
				buf.Write(pool[(b+j)%len(pool)])
				buf.WriteByte('\n')
			}
			batches = append(batches, buf.Bytes())
		}
	}
	interval := time.Duration(0)
	if cfg.qps > 0 {
		perWorker := cfg.qps / float64(cfg.concurrency)
		interval = time.Duration(float64(time.Second) / perWorker)
	}
	workers := make([]*loadWorker, cfg.concurrency)
	for i := range workers {
		workers[i] = &loadWorker{
			id: i, client: client, url: cfg.url,
			pool: pool, batch: batches, interval: interval,
			stagger: interval * time.Duration(i) / time.Duration(cfg.concurrency),
		}
	}
	runPhase := func(d time.Duration, rec bool) time.Duration {
		deadline := time.Now().Add(d)
		start := time.Now()
		var wg sync.WaitGroup
		for _, w := range workers {
			wg.Add(1)
			go func(w *loadWorker) {
				defer wg.Done()
				w.phase(deadline, unary, rec)
			}(w)
		}
		wg.Wait()
		return time.Since(start)
	}

	runPhase(cfg.warmup, false)
	mallocs0, err := scrapeCounter(client, cfg.url, "hdserve_go_mallocs_total")
	if err != nil {
		return record{}, 0, "", err
	}
	// The plane counters are cumulative since server start; diffing around
	// the measure phase isolates this run's traffic from warmup and from
	// whatever hit the server before.
	var tel0 uint64
	if cfg.telemetry {
		if tel0, err = scrapePlaneRequests(client, cfg.url, ep); err != nil {
			return record{}, 0, "", err
		}
	}
	elapsed := runPhase(cfg.duration, true)
	mallocs1, err := scrapeCounter(client, cfg.url, "hdserve_go_mallocs_total")
	if err != nil {
		return record{}, 0, "", err
	}

	var samples []time.Duration
	var ops, estimates, errs int64
	for _, w := range workers {
		samples = append(samples, w.samples...)
		ops += w.ops
		estimates += w.estimates
		errs += w.errs
	}
	if ops == 0 {
		return record{}, 0, "", fmt.Errorf("%s scenario completed zero requests in %s", ep, cfg.duration)
	}
	checkFail := ""
	if cfg.telemetry {
		tel1, err := scrapePlaneRequests(client, cfg.url, ep)
		if err != nil {
			return record{}, 0, "", err
		}
		serverOps := tel1 - tel0
		diff := math.Abs(float64(serverOps)-float64(ops)) / float64(ops)
		fmt.Fprintf(os.Stderr, "hdload: telemetry-check %s: client=%d server=%d (%.2f%% apart)\n",
			ep, ops, serverOps, diff*100)
		if diff > 0.01 {
			checkFail = fmt.Sprintf(
				"telemetry-check %s: server telemetry saw %d requests, client sent %d (>1%% apart)",
				ep, serverOps, ops)
		}
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	allocsPerOp := 0.0
	if estimates > 0 {
		allocsPerOp = (mallocs1 - mallocs0) / float64(estimates)
	}
	suffix := ""
	if cfg.legacy {
		suffix = "/legacy"
	}
	rec := record{
		Name:       fmt.Sprintf("ServeEstimate/%s/mix=%s/conc=%d%s", ep, cfg.mix, cfg.concurrency, suffix),
		Iterations: ops,
		NumCPU:     runtime.NumCPU(),
		Backend:    "serve",
		Metrics: map[string]float64{
			"p50-ns":    float64(percentile(samples, 0.50)),
			"p99-ns":    float64(percentile(samples, 0.99)),
			"qps":       float64(estimates) / elapsed.Seconds(),
			"allocs/op": allocsPerOp,
		},
	}
	if !unary {
		rec.Metrics["lines/batch"] = float64(cfg.streamBatch)
	}
	fmt.Fprintf(os.Stderr,
		"hdload: %-40s ops=%d est=%d errs=%d p50=%s p99=%s qps=%.0f allocs/op=%.3f\n",
		rec.Name, ops, estimates, errs,
		time.Duration(percentile(samples, 0.50)), time.Duration(percentile(samples, 0.99)),
		rec.Metrics["qps"], allocsPerOp)
	return rec, errs, checkFail, nil
}

// scrapePlaneRequests returns one plane's cumulative request count from
// GET /v1/telemetry.
func scrapePlaneRequests(client *http.Client, url, plane string) (uint64, error) {
	resp, err := getRetry(client, url+"/v1/telemetry")
	if err != nil {
		return 0, fmt.Errorf("scrape /v1/telemetry: %v", err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return 0, fmt.Errorf("scrape /v1/telemetry: %v", err)
	}
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("scrape /v1/telemetry: status %d: %s", resp.StatusCode, data)
	}
	var snap struct {
		Planes []struct {
			Plane    string `json:"plane"`
			Requests uint64 `json:"requests"`
		} `json:"planes"`
	}
	if err := json.Unmarshal(data, &snap); err != nil {
		return 0, fmt.Errorf("scrape /v1/telemetry: %v", err)
	}
	for _, p := range snap.Planes {
		if p.Plane == plane {
			return p.Requests, nil
		}
	}
	return 0, fmt.Errorf("plane %q not present on /v1/telemetry", plane)
}

// telemetryIters is how many sequential snapshot requests the telemetry
// benchmark times. The snapshot walks every plane's window ring and the
// whole profiler, so its latency scales with server state, not load;
// a few hundred samples give a stable p99 in well under a second.
const telemetryIters = 200

// telemetryBench times GET /v1/telemetry after the load scenarios, while
// the server still carries the full profiled-model state the run created,
// and reports it as a benchjson record. The record name deliberately
// avoids the "unary"/"stream" substrings the serve gate's budget matching
// keys on; the telemetry plane gets its own budget instead.
func telemetryBench(client *http.Client, cfg *config) (record, error) {
	samples := make([]time.Duration, 0, telemetryIters)
	start := time.Now()
	for i := 0; i < telemetryIters; i++ {
		t0 := time.Now()
		resp, err := getRetry(client, cfg.url+"/v1/telemetry")
		if err != nil {
			return record{}, fmt.Errorf("telemetry bench: %v", err)
		}
		_, cerr := io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if cerr != nil {
			return record{}, fmt.Errorf("telemetry bench: read: %v", cerr)
		}
		if resp.StatusCode != http.StatusOK {
			return record{}, fmt.Errorf("telemetry bench: status %d", resp.StatusCode)
		}
		samples = append(samples, time.Since(t0))
	}
	elapsed := time.Since(start)
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	rec := record{
		Name:       "ServeTelemetry/snapshot",
		Iterations: telemetryIters,
		NumCPU:     runtime.NumCPU(),
		Backend:    "serve",
		Metrics: map[string]float64{
			"p50-ns": float64(percentile(samples, 0.50)),
			"p99-ns": float64(percentile(samples, 0.99)),
			"qps":    telemetryIters / elapsed.Seconds(),
		},
	}
	fmt.Fprintf(os.Stderr, "hdload: %-40s ops=%d p50=%s p99=%s qps=%.0f\n",
		rec.Name, telemetryIters,
		time.Duration(percentile(samples, 0.50)), time.Duration(percentile(samples, 0.99)),
		rec.Metrics["qps"])
	return rec, nil
}

// percentile returns the nearest-rank percentile of sorted samples.
func percentile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// scrapeCounter sums every series of one metric family on /metrics.
func scrapeCounter(client *http.Client, url, name string) (float64, error) {
	resp, err := getRetry(client, url+"/metrics")
	if err != nil {
		return 0, fmt.Errorf("scrape /metrics: %v", err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return 0, fmt.Errorf("scrape /metrics: %v", err)
	}
	total, found := 0.0, false
	for _, line := range strings.Split(string(data), "\n") {
		if !strings.HasPrefix(line, name) {
			continue
		}
		rest := line[len(name):]
		if !strings.HasPrefix(rest, " ") && !strings.HasPrefix(rest, "{") {
			continue // e.g. name is a prefix of a longer metric
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			continue
		}
		v, err := strconv.ParseFloat(fields[len(fields)-1], 64)
		if err != nil {
			return 0, fmt.Errorf("scrape %s: bad value in %q", name, line)
		}
		total += v
		found = true
	}
	if !found {
		return 0, fmt.Errorf("metric %s not found on /metrics", name)
	}
	return total, nil
}
