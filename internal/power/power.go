// Package power turns switching activity from the logic simulators into
// charge figures. It implements the switched-capacitance charge model the
// reproduction uses in place of the paper's PowerMill reference:
//
//	Q[cycle] = Σ_nets C(net) · toggles(net, cycle)
//
// with the supply voltage normalized to 1, so charge and energy per cycle
// coincide up to a constant factor — exactly the license the paper takes
// ("power and charge consumption only differ by a constant factor").
package power

import (
	"fmt"
	"math"

	"hdpower/internal/logic"
	"hdpower/internal/netlist"
	"hdpower/internal/sim"
)

// Meter measures per-cycle charge consumption of one netlist. It wraps a
// simulator and pre-computes per-net capacitances. Not safe for concurrent
// use; Clone returns an independent meter for use on another goroutine.
type Meter struct {
	s    *sim.Simulator
	caps []float64
}

// NewMeter builds a meter over the netlist using the given simulation
// engine. EventDriven is the engine all experiments use for reference
// charges; ZeroDelay is available for ablations.
func NewMeter(nl *netlist.Netlist, engine sim.Engine) (*Meter, error) {
	s, err := sim.New(nl, engine)
	if err != nil {
		return nil, err
	}
	caps := make([]float64, nl.NumNets())
	for id := range caps {
		caps[id] = nl.NetCap(netlist.NetID(id))
	}
	return &Meter{s: s, caps: caps}, nil
}

// Clone returns an independent meter over the same netlist. The clone
// shares the immutable capacitance table and circuit topology with the
// receiver (see sim.Simulator.Clone) and owns its simulation state, so
// clones may measure concurrently — one meter per goroutine.
func (m *Meter) Clone() *Meter {
	return &Meter{s: m.s.Clone(), caps: m.caps}
}

// Simulator exposes the underlying simulator (for functional checks).
func (m *Meter) Simulator() *sim.Simulator { return m.s }

// NumInputBits returns the input vector width.
func (m *Meter) NumInputBits() int { return m.s.NumInputBits() }

// Reset settles the circuit on vector u without accumulating charge.
func (m *Meter) Reset(u logic.Word) { m.s.Settle(u) }

// Cycle applies the next input vector and returns the charge consumed by
// the resulting transient.
func (m *Meter) Cycle(v logic.Word) float64 {
	tog := m.s.Apply(v)
	var q float64
	for id, c := range tog {
		if c != 0 {
			q += m.caps[id] * float64(c)
		}
	}
	return q
}

// Trace is a sequence of per-cycle charges together with the input vector
// pair that caused each cycle.
type Trace struct {
	// Q[j] is the charge of cycle j.
	Q []float64
	// Hd[j] is the input Hamming-distance of cycle j.
	Hd []int
	// StableZeros[j] is the number of input bits that were zero in both
	// vectors of cycle j (for the enhanced model).
	StableZeros []int
}

// Len returns the number of cycles in the trace.
func (t Trace) Len() int { return len(t.Q) }

// Total returns the summed charge.
func (t Trace) Total() float64 {
	var s float64
	for _, q := range t.Q {
		s += q
	}
	return s
}

// Mean returns the average per-cycle charge, or 0 for an empty trace.
func (t Trace) Mean() float64 {
	if len(t.Q) == 0 {
		return 0
	}
	return t.Total() / float64(len(t.Q))
}

// Max returns the largest per-cycle charge, or 0 for an empty trace.
func (t Trace) Max() float64 {
	var mx float64
	for _, q := range t.Q {
		if q > mx {
			mx = q
		}
	}
	return mx
}

// Run plays an input vector stream through the circuit: the first vector
// settles the circuit, every following vector is one measured cycle. The
// resulting trace has len(vectors)-1 cycles.
func (m *Meter) Run(vectors []logic.Word) (Trace, error) {
	if len(vectors) < 2 {
		return Trace{}, fmt.Errorf("power: need at least 2 vectors, got %d", len(vectors))
	}
	t := Trace{
		Q:           make([]float64, 0, len(vectors)-1),
		Hd:          make([]int, 0, len(vectors)-1),
		StableZeros: make([]int, 0, len(vectors)-1),
	}
	m.Reset(vectors[0])
	prev := vectors[0]
	for _, v := range vectors[1:] {
		t.Q = append(t.Q, m.Cycle(v))
		t.Hd = append(t.Hd, logic.Hd(prev, v))
		t.StableZeros = append(t.StableZeros, logic.StableZeros(prev, v))
		prev = v
	}
	return t, nil
}

// AvgAbsCycleError implements the paper's ε_a metric: the mean absolute
// relative per-cycle error of estimate against reference, in percent.
// Cycles whose reference charge is zero are compared absolutely against
// the mean reference charge to avoid division by zero (they contribute
// |est|/mean·100%).
func AvgAbsCycleError(estimate, reference []float64) (float64, error) {
	if len(estimate) != len(reference) {
		return 0, fmt.Errorf("power: length mismatch %d vs %d", len(estimate), len(reference))
	}
	if len(reference) == 0 {
		return 0, fmt.Errorf("power: empty traces")
	}
	var refMean float64
	for _, r := range reference {
		refMean += r
	}
	refMean /= float64(len(reference))
	if refMean == 0 {
		return 0, fmt.Errorf("power: reference trace is all zero")
	}
	var sum float64
	for j := range reference {
		if reference[j] != 0 {
			sum += math.Abs((estimate[j] - reference[j]) / reference[j])
		} else {
			sum += math.Abs(estimate[j]) / refMean
		}
	}
	return sum / float64(len(reference)) * 100, nil
}

// AvgError implements the paper's ε metric: the signed relative error of
// the total (equivalently average) charge, in percent.
func AvgError(estimate, reference []float64) (float64, error) {
	if len(estimate) != len(reference) {
		return 0, fmt.Errorf("power: length mismatch %d vs %d", len(estimate), len(reference))
	}
	var se, sr float64
	for j := range reference {
		se += estimate[j]
		sr += reference[j]
	}
	if sr == 0 {
		return 0, fmt.Errorf("power: reference total is zero")
	}
	return (se - sr) / sr * 100, nil
}
