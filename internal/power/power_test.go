package power

import (
	"math"
	"math/rand"
	"testing"

	"hdpower/internal/cells"
	"hdpower/internal/logic"
	"hdpower/internal/netlist"
	"hdpower/internal/sim"
)

func xorTree(width int) *netlist.Netlist {
	n := netlist.New("xortree")
	a := n.AddInputBus("a", width)
	cur := a.Nets[0]
	for i := 1; i < width; i++ {
		cur = n.Xor(cur, a.Nets[i])
	}
	n.MarkOutputBus("parity", []netlist.NetID{cur})
	return n
}

func TestCycleChargePositiveOnActivity(t *testing.T) {
	m, err := NewMeter(xorTree(4), sim.EventDriven)
	if err != nil {
		t.Fatal(err)
	}
	m.Reset(logic.FromUint(0, 4))
	q := m.Cycle(logic.FromUint(0xf, 4))
	if q <= 0 {
		t.Errorf("charge %v for a 4-bit flip", q)
	}
	if q2 := m.Cycle(logic.FromUint(0xf, 4)); q2 != 0 {
		t.Errorf("charge %v for identical vector", q2)
	}
}

func bufBank(width int) *netlist.Netlist {
	n := netlist.New("bufbank")
	a := n.AddInputBus("a", width)
	outs := make([]netlist.NetID, width)
	for i, in := range a.Nets {
		outs[i] = n.AddGate(cells.Buf, in)
	}
	n.MarkOutputBus("y", outs)
	return n
}

func TestChargeMonotoneInHammingDistanceForBufBank(t *testing.T) {
	// With independent per-bit buffers, each additional flipped input bit
	// adds strictly positive switched capacitance.
	m, _ := NewMeter(bufBank(8), sim.ZeroDelay)
	prev := -1.0
	for k := 1; k <= 8; k++ {
		m.Reset(logic.FromUint(0, 8))
		v := logic.FromUint(1<<uint(k)-1, 8)
		q := m.Cycle(v)
		if q <= prev {
			t.Errorf("charge not increasing: Hd=%d gives %v, previous %v", k, q, prev)
		}
		prev = q
	}
}

func TestRunTraceShape(t *testing.T) {
	m, _ := NewMeter(xorTree(4), sim.EventDriven)
	rng := rand.New(rand.NewSource(3))
	var vecs []logic.Word
	for i := 0; i < 11; i++ {
		vecs = append(vecs, logic.FromUint(uint64(rng.Intn(16)), 4))
	}
	tr, err := m.Run(vecs)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 10 {
		t.Fatalf("trace len = %d, want 10", tr.Len())
	}
	for j := 0; j < tr.Len(); j++ {
		wantHd := logic.Hd(vecs[j], vecs[j+1])
		if tr.Hd[j] != wantHd {
			t.Errorf("cycle %d Hd = %d, want %d", j, tr.Hd[j], wantHd)
		}
		if tr.Hd[j] == 0 && tr.Q[j] != 0 {
			t.Errorf("cycle %d: zero Hd but charge %v", j, tr.Q[j])
		}
		wantSZ := logic.StableZeros(vecs[j], vecs[j+1])
		if tr.StableZeros[j] != wantSZ {
			t.Errorf("cycle %d stable zeros = %d, want %d", j, tr.StableZeros[j], wantSZ)
		}
	}
	if got := tr.Total(); math.Abs(got-sum(tr.Q)) > 1e-12 {
		t.Errorf("Total = %v", got)
	}
	if got := tr.Mean(); math.Abs(got-sum(tr.Q)/10) > 1e-12 {
		t.Errorf("Mean = %v", got)
	}
	if tr.Max() < tr.Mean() {
		t.Error("Max < Mean")
	}
}

func sum(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v
	}
	return s
}

func TestRunTooShort(t *testing.T) {
	m, _ := NewMeter(xorTree(4), sim.EventDriven)
	if _, err := m.Run([]logic.Word{logic.NewWord(4)}); err == nil {
		t.Fatal("Run with one vector succeeded")
	}
}

func TestEmptyTraceStats(t *testing.T) {
	var tr Trace
	if tr.Mean() != 0 || tr.Total() != 0 || tr.Max() != 0 || tr.Len() != 0 {
		t.Error("empty trace stats nonzero")
	}
}

func TestAvgAbsCycleError(t *testing.T) {
	ref := []float64{10, 20, 40}
	est := []float64{11, 18, 40} // 10%, 10%, 0% -> 6.666%
	got, err := AvgAbsCycleError(est, ref)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-20.0/3) > 1e-9 {
		t.Errorf("eps_a = %v, want %v", got, 20.0/3)
	}
}

func TestAvgAbsCycleErrorZeroRefCycle(t *testing.T) {
	ref := []float64{0, 10}
	est := []float64{5, 10} // zero-ref cycle compared against mean(ref)=5 -> 100%
	got, err := AvgAbsCycleError(est, ref)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-50) > 1e-9 {
		t.Errorf("eps_a = %v, want 50", got)
	}
}

func TestAvgError(t *testing.T) {
	ref := []float64{10, 10}
	est := []float64{11, 11}
	got, err := AvgError(est, ref)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-10) > 1e-9 {
		t.Errorf("eps = %v, want 10", got)
	}
	// signed: underestimation is negative
	got, _ = AvgError([]float64{9, 9}, ref)
	if math.Abs(got+10) > 1e-9 {
		t.Errorf("eps = %v, want -10", got)
	}
}

func TestErrorMetricsValidation(t *testing.T) {
	if _, err := AvgAbsCycleError([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := AvgAbsCycleError(nil, nil); err == nil {
		t.Error("empty traces accepted")
	}
	if _, err := AvgAbsCycleError([]float64{1}, []float64{0}); err == nil {
		t.Error("all-zero reference accepted")
	}
	if _, err := AvgError([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("AvgError length mismatch accepted")
	}
	if _, err := AvgError([]float64{1}, []float64{0}); err == nil {
		t.Error("AvgError zero reference accepted")
	}
}

func TestEventDrivenChargeAtLeastZeroDelay(t *testing.T) {
	// Glitching can only add charge for the same vector pair.
	mkVecs := func() []logic.Word {
		rng := rand.New(rand.NewSource(11))
		var vecs []logic.Word
		for i := 0; i < 50; i++ {
			vecs = append(vecs, logic.FromUint(uint64(rng.Intn(256)), 8))
		}
		return vecs
	}
	zd, _ := NewMeter(xorTree(8), sim.ZeroDelay)
	ed, _ := NewMeter(xorTree(8), sim.EventDriven)
	zt, err := zd.Run(mkVecs())
	if err != nil {
		t.Fatal(err)
	}
	et, err := ed.Run(mkVecs())
	if err != nil {
		t.Fatal(err)
	}
	for j := range zt.Q {
		if et.Q[j] < zt.Q[j]-1e-12 {
			t.Fatalf("cycle %d: event-driven charge %v below zero-delay %v", j, et.Q[j], zt.Q[j])
		}
	}
}

func TestMeterCloneMeasuresIdentically(t *testing.T) {
	ref, err := NewMeter(xorTree(8), sim.EventDriven)
	if err != nil {
		t.Fatal(err)
	}
	clone := ref.Clone()
	rng := rand.New(rand.NewSource(23))
	var vecs []logic.Word
	for i := 0; i < 80; i++ {
		vecs = append(vecs, logic.FromUint(uint64(rng.Intn(256)), 8))
	}
	rt, err := ref.Run(vecs)
	if err != nil {
		t.Fatal(err)
	}
	ct, err := clone.Run(vecs)
	if err != nil {
		t.Fatal(err)
	}
	for j := range rt.Q {
		if rt.Q[j] != ct.Q[j] {
			t.Fatalf("cycle %d: clone charge %v != original %v", j, ct.Q[j], rt.Q[j])
		}
	}
}
