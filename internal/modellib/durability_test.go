package modellib

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hdpower/internal/atomicio"
	"hdpower/internal/core"
)

// modelPath is the on-disk location of a stored instance model.
func modelPath(lib *Library, module string, width int, enhanced bool) string {
	return filepath.Join(lib.Root(), "models", modelKey(module, width, enhanced))
}

// TestPartialModelWriteDetected is the regression test for the non-atomic
// writes this package used to do: a partially-written (truncated) model
// file must be detected on load and quarantined, never parsed as valid.
func TestPartialModelWriteDetected(t *testing.T) {
	lib, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := lib.PutModel("ripple-adder", 4, testModel("ripple-adder", 8, true)); err != nil {
		t.Fatal(err)
	}
	path := modelPath(lib, "ripple-adder", 4, true)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Simulate the crash window of a plain os.WriteFile: 60% of the bytes.
	if err := os.WriteFile(path, raw[:len(raw)*6/10], 0o644); err != nil {
		t.Fatal(err)
	}

	_, err = lib.GetModel("ripple-adder", 4, true)
	if !atomicio.IsCorrupt(err) {
		t.Fatalf("truncated model loaded: %v", err)
	}
	if _, statErr := os.Stat(path + ".corrupt"); statErr != nil {
		t.Errorf("truncated model not quarantined: %v", statErr)
	}
	// After quarantine the lookup degrades to a clean miss.
	if _, err := lib.GetModel("ripple-adder", 4, true); err == nil || atomicio.IsCorrupt(err) {
		t.Errorf("quarantined model still poisons lookups: %v", err)
	}
}

// TestLegacyModelWithoutChecksumLoads keeps pre-atomicio libraries
// readable: plain JSON without a trailer is re-validated and accepted.
func TestLegacyModelWithoutChecksumLoads(t *testing.T) {
	lib, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	data, err := testModel("ripple-adder", 8, false).MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(modelPath(lib, "ripple-adder", 4, false), data, 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := lib.GetModel("ripple-adder", 4, false)
	if err != nil {
		t.Fatalf("legacy model rejected: %v", err)
	}
	if m.InputBits != 8 {
		t.Errorf("legacy model mangled: %d input bits", m.InputBits)
	}
}

// TestLegacyGarbageQuarantined: a legacy file that fails validation is
// corrupt, not a zero-valued model.
func TestLegacyGarbageQuarantined(t *testing.T) {
	lib, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	path := modelPath(lib, "ripple-adder", 4, false)
	if err := os.WriteFile(path, []byte(`{"module":"ripple-adder","input_bits":-3}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := lib.GetModel("ripple-adder", 4, false); !atomicio.IsCorrupt(err) {
		t.Fatalf("invalid legacy model loaded: %v", err)
	}
	if _, statErr := os.Stat(path + ".corrupt"); statErr != nil {
		t.Errorf("invalid legacy model not quarantined: %v", statErr)
	}
}

// TestPartialParamWriteDetected covers the same crash window for stored
// width regressions.
func TestPartialParamWriteDetected(t *testing.T) {
	lib, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	pm := fitTestParam(t)
	if err := lib.PutParam(pm); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(lib.Root(), "params", pm.Module+"-"+pm.Basis.Name+".json")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := lib.GetParam(pm.Module); !atomicio.IsCorrupt(err) {
		t.Fatalf("truncated regression loaded: %v", err)
	}
}

// TestVerifyModelCoefficientCount pins the paper's M = (m²+m)/2 invariant
// for full-resolution enhanced tables.
func TestVerifyModelCoefficientCount(t *testing.T) {
	good := testModel("x", 6, true)
	if err := verifyModel(good); err != nil {
		t.Fatalf("valid table rejected: %v", err)
	}
	bad := testModel("x", 6, true)
	bad.Enhanced[2] = append(bad.Enhanced[2], core.Coef{})
	err := verifyModel(bad)
	if err == nil {
		t.Fatal("oversized enhanced table accepted")
	}
	if !strings.Contains(err.Error(), "(m²+m)/2") {
		t.Errorf("invariant not named: %v", err)
	}
	// Clustered tables are exempt: their class count is intentionally
	// smaller than the full-resolution bound.
	clustered := &core.Model{Module: "x", InputBits: 6, ZClusters: 2,
		Basic: make([]core.Coef, 6), Enhanced: make([][]core.Coef, 6)}
	for i := 1; i <= 6; i++ {
		clustered.Enhanced[i-1] = make([]core.Coef, clustered.NumZBuckets(i))
	}
	if err := verifyModel(clustered); err != nil {
		t.Errorf("clustered table rejected: %v", err)
	}
}
