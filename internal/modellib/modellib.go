// Package modellib implements a directory-backed library of characterized
// Hd models — the "characterization database" a team using the paper's
// method accumulates: one JSON file per characterized module instance,
// plus fitted width-regression models per module family, under a single
// root directory with a deterministic layout:
//
//	<root>/models/<module>-w<width>[-enhanced].json
//	<root>/params/<module>-<basis>.json
//
// The library is the persistence layer behind `cmd/hdpower -library`
// workflows: characterize once, estimate forever. Writes are atomic and
// checksummed (internal/atomicio): a crash mid-write never tears a stored
// model, and a torn or tampered file is quarantined on load and reported
// as a typed corruption error instead of parsing as a (wrong) model.
// Files written by older versions — valid JSON without a checksum trailer
// — still load; they are re-validated structurally instead.
package modellib

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"hdpower/internal/atomicio"
	"hdpower/internal/core"
	"hdpower/internal/regress"
)

// Library is a handle on one library directory.
type Library struct {
	root string
}

// Open returns a library rooted at dir, creating the directory layout if
// needed.
func Open(dir string) (*Library, error) {
	if dir == "" {
		return nil, fmt.Errorf("modellib: empty directory")
	}
	for _, sub := range []string{"models", "params"} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, fmt.Errorf("modellib: %w", err)
		}
	}
	return &Library{root: dir}, nil
}

// Root returns the library directory.
func (l *Library) Root() string { return l.root }

// modelKey builds the canonical file name of an instance model.
func modelKey(module string, width int, enhanced bool) string {
	name := fmt.Sprintf("%s-w%d", module, width)
	if enhanced {
		name += "-enhanced"
	}
	return name + ".json"
}

// PutModel stores a characterized instance model under (module, width).
func (l *Library) PutModel(module string, width int, model *core.Model) error {
	if err := model.Validate(); err != nil {
		return err
	}
	data, err := json.MarshalIndent(model, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	path := filepath.Join(l.root, "models", modelKey(module, width, model.HasEnhanced()))
	return atomicio.WriteFile(path, data, 0o644)
}

// verifyModel checks the load-time coefficient-count invariants beyond
// Model.Validate: a full-resolution enhanced table must carry exactly
// M = (m²+m)/2 coefficients (the paper's class count).
func verifyModel(m *core.Model) error {
	if !m.HasEnhanced() || m.ZClusters > 0 {
		return nil
	}
	got := 0
	for _, row := range m.Enhanced {
		got += len(row)
	}
	if want := (m.InputBits*m.InputBits + m.InputBits) / 2; got != want {
		return fmt.Errorf("enhanced table has %d coefficients, want (m²+m)/2 = %d for m=%d",
			got, want, m.InputBits)
	}
	return nil
}

// loadModelFile reads, checksum-verifies, parses and validates one stored
// model file. Files that fail any of those stages are quarantined and
// reported as *atomicio.CorruptError.
func loadModelFile(path string) (*core.Model, error) {
	data, err := atomicio.ReadFile(path)
	if err != nil && !errors.Is(err, atomicio.ErrNoChecksum) {
		return nil, err
	}
	m, perr := core.LoadModel(data)
	if perr != nil {
		return nil, atomicio.MarkCorrupt(path, perr.Error())
	}
	if verr := verifyModel(m); verr != nil {
		return nil, atomicio.MarkCorrupt(path, verr.Error())
	}
	return m, nil
}

// GetModel loads an instance model. With enhanced=true only an
// enhanced-table model satisfies the request; with enhanced=false an
// enhanced model is accepted too (it embeds the basic table).
func (l *Library) GetModel(module string, width int, enhanced bool) (*core.Model, error) {
	candidates := []string{modelKey(module, width, enhanced)}
	if !enhanced {
		candidates = append(candidates, modelKey(module, width, true))
	}
	for _, key := range candidates {
		m, err := loadModelFile(filepath.Join(l.root, "models", key))
		if os.IsNotExist(err) {
			continue
		}
		if err != nil {
			return nil, err
		}
		return m, nil
	}
	return nil, fmt.Errorf("modellib: no model for %s width %d (enhanced=%v) in %s",
		module, width, enhanced, l.root)
}

// Entry describes one stored instance model.
type Entry struct {
	Module   string
	Width    int
	Enhanced bool
}

// List enumerates stored instance models, sorted by module then width.
func (l *Library) List() ([]Entry, error) {
	files, err := os.ReadDir(filepath.Join(l.root, "models"))
	if err != nil {
		return nil, err
	}
	var out []Entry
	for _, f := range files {
		name := f.Name()
		if !strings.HasSuffix(name, ".json") {
			continue
		}
		name = strings.TrimSuffix(name, ".json")
		enhanced := strings.HasSuffix(name, "-enhanced")
		name = strings.TrimSuffix(name, "-enhanced")
		idx := strings.LastIndex(name, "-w")
		if idx < 0 {
			continue // foreign file; skip silently
		}
		var width int
		if _, err := fmt.Sscanf(name[idx+2:], "%d", &width); err != nil || width <= 0 {
			continue
		}
		out = append(out, Entry{Module: name[:idx], Width: width, Enhanced: enhanced})
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Module != out[b].Module {
			return out[a].Module < out[b].Module
		}
		if out[a].Width != out[b].Width {
			return out[a].Width < out[b].Width
		}
		return !out[a].Enhanced && out[b].Enhanced
	})
	return out, nil
}

// PutParam stores a fitted width-regression model for a module family.
func (l *Library) PutParam(pm *regress.ParamModel) error {
	data, err := json.MarshalIndent(pm, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	path := filepath.Join(l.root, "params",
		fmt.Sprintf("%s-%s.json", pm.Module, pm.Basis.Name))
	return atomicio.WriteFile(path, data, 0o644)
}

// GetParam loads the fitted regression model of a module family with the
// conventional basis for that family.
func (l *Library) GetParam(module string) (*regress.ParamModel, error) {
	basis := regress.BasisFor(module)
	path := filepath.Join(l.root, "params",
		fmt.Sprintf("%s-%s.json", module, basis.Name))
	data, err := atomicio.ReadFile(path)
	if err != nil && !errors.Is(err, atomicio.ErrNoChecksum) {
		if atomicio.IsCorrupt(err) {
			return nil, err
		}
		return nil, fmt.Errorf("modellib: %w", err)
	}
	pm, perr := regress.LoadParamModel(data)
	if perr != nil {
		return nil, atomicio.MarkCorrupt(path, perr.Error())
	}
	return pm, nil
}

// Model returns the model for (module, width), preferring a stored
// instance model and falling back to synthesis from the family's stored
// regression. The returned bool reports whether synthesis was used.
func (l *Library) Model(module string, width int, enhanced bool) (*core.Model, bool, error) {
	if m, err := l.GetModel(module, width, enhanced); err == nil {
		return m, false, nil
	}
	if enhanced {
		return nil, false, fmt.Errorf("modellib: no enhanced model for %s width %d and synthesis cannot provide one", module, width)
	}
	pm, err := l.GetParam(module)
	if err != nil {
		return nil, false, fmt.Errorf("modellib: no model for %s width %d and no regression to synthesize from", module, width)
	}
	return pm.Synthesize(width), true, nil
}
