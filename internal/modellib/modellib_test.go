package modellib

import (
	"math"
	"testing"

	"hdpower/internal/core"
	"hdpower/internal/regress"
)

func testModel(module string, bits int, enhanced bool) *core.Model {
	m := &core.Model{Module: module, InputBits: bits, Basic: make([]core.Coef, bits)}
	for i := 1; i <= bits; i++ {
		m.Basic[i-1] = core.Coef{P: float64(i * 3), Count: 10}
	}
	if enhanced {
		m.Enhanced = make([][]core.Coef, bits)
		for i := 1; i <= bits; i++ {
			m.Enhanced[i-1] = make([]core.Coef, m.NumZBuckets(i))
		}
	}
	return m
}

func TestOpenCreatesLayout(t *testing.T) {
	dir := t.TempDir()
	lib, err := Open(dir + "/sub/lib")
	if err != nil {
		t.Fatal(err)
	}
	if lib.Root() == "" {
		t.Error("empty root")
	}
	if _, err := Open(""); err == nil {
		t.Error("empty dir accepted")
	}
}

func TestPutGetModelRoundTrip(t *testing.T) {
	lib, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	model := testModel("ripple-adder", 8, false)
	if err := lib.PutModel("ripple-adder", 4, model); err != nil {
		t.Fatal(err)
	}
	back, err := lib.GetModel("ripple-adder", 4, false)
	if err != nil {
		t.Fatal(err)
	}
	if back.P(5) != model.P(5) {
		t.Errorf("round trip lost coefficients")
	}
	if _, err := lib.GetModel("ripple-adder", 8, false); err == nil {
		t.Error("missing width found")
	}
	if _, err := lib.GetModel("cla-adder", 4, false); err == nil {
		t.Error("missing module found")
	}
}

func TestEnhancedLookupRules(t *testing.T) {
	lib, _ := Open(t.TempDir())
	if err := lib.PutModel("csa-multiplier", 8, testModel("csa", 16, true)); err != nil {
		t.Fatal(err)
	}
	// enhanced request satisfied
	if _, err := lib.GetModel("csa-multiplier", 8, true); err != nil {
		t.Errorf("enhanced lookup failed: %v", err)
	}
	// basic request satisfied by the enhanced model
	if _, err := lib.GetModel("csa-multiplier", 8, false); err != nil {
		t.Errorf("basic lookup via enhanced failed: %v", err)
	}
	// basic-only store cannot satisfy enhanced request
	if err := lib.PutModel("absval", 8, testModel("absval", 8, false)); err != nil {
		t.Fatal(err)
	}
	if _, err := lib.GetModel("absval", 8, true); err == nil {
		t.Error("basic model satisfied enhanced request")
	}
}

func TestPutModelValidates(t *testing.T) {
	lib, _ := Open(t.TempDir())
	bad := &core.Model{Module: "x", InputBits: 4} // missing basic table
	if err := lib.PutModel("x", 4, bad); err == nil {
		t.Error("invalid model stored")
	}
}

func TestList(t *testing.T) {
	lib, _ := Open(t.TempDir())
	mustPut := func(module string, width, bits int, enh bool) {
		t.Helper()
		if err := lib.PutModel(module, width, testModel(module, bits, enh)); err != nil {
			t.Fatal(err)
		}
	}
	mustPut("ripple-adder", 8, 16, false)
	mustPut("ripple-adder", 4, 8, false)
	mustPut("csa-multiplier", 8, 16, true)
	entries, err := lib.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 {
		t.Fatalf("entries = %d", len(entries))
	}
	want := []Entry{
		{"csa-multiplier", 8, true},
		{"ripple-adder", 4, false},
		{"ripple-adder", 8, false},
	}
	for i, e := range want {
		if entries[i] != e {
			t.Errorf("entry %d = %+v, want %+v", i, entries[i], e)
		}
	}
}

func fitTestParam(t *testing.T) *regress.ParamModel {
	t.Helper()
	law := func(i, w int) float64 { return float64(i) * (3*float64(w) + 5) }
	var protos []regress.Prototype
	for _, w := range regress.SetThi.Widths() {
		m := 2 * w
		model := &core.Model{Module: "ripple-adder", InputBits: m, Basic: make([]core.Coef, m)}
		for i := 1; i <= m; i++ {
			model.Basic[i-1] = core.Coef{P: law(i, w), Count: 5}
		}
		protos = append(protos, regress.Prototype{Width: w, Model: model})
	}
	pm, err := regress.Fit("ripple-adder", protos, regress.Linear, 2)
	if err != nil {
		t.Fatal(err)
	}
	return pm
}

func TestParamRoundTripAndSynthesisFallback(t *testing.T) {
	lib, _ := Open(t.TempDir())
	pm := fitTestParam(t)
	if err := lib.PutParam(pm); err != nil {
		t.Fatal(err)
	}
	back, err := lib.GetParam("ripple-adder")
	if err != nil {
		t.Fatal(err)
	}
	a, _ := pm.Coefficient(3, 12)
	b, _ := back.Coefficient(3, 12)
	if math.Abs(a-b) > 1e-12 {
		t.Errorf("param round trip: %v vs %v", a, b)
	}

	// Model(): no instance stored -> synthesized from regression.
	model, synthesized, err := lib.Model("ripple-adder", 12, false)
	if err != nil {
		t.Fatal(err)
	}
	if !synthesized {
		t.Error("expected synthesis fallback")
	}
	if model.InputBits != 24 {
		t.Errorf("synthesized bits = %d", model.InputBits)
	}

	// After storing an instance, it wins over synthesis.
	if err := lib.PutModel("ripple-adder", 12, testModel("ripple-adder", 24, false)); err != nil {
		t.Fatal(err)
	}
	model, synthesized, err = lib.Model("ripple-adder", 12, false)
	if err != nil {
		t.Fatal(err)
	}
	if synthesized {
		t.Error("instance model not preferred")
	}
	if model.P(2) != 6 { // testModel law
		t.Errorf("wrong model returned: p2 = %v", model.P(2))
	}

	// Enhanced request cannot be synthesized.
	if _, _, err := lib.Model("ripple-adder", 10, true); err == nil {
		t.Error("enhanced synthesis accepted")
	}
	// Unknown family with no regression.
	if _, _, err := lib.Model("cla-adder", 8, false); err == nil {
		t.Error("unknown family resolved")
	}
}
