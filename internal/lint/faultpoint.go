package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"strconv"
	"strings"
)

// FaultpointAnalyzer keeps the fault-injection surface honest. A fault
// point only earns its keep when chaos runs can actually arm it, which
// requires four properties the compiler never checks:
//
//   - every faultpoint.Hit/Delay call site names its point with a string
//     literal (a computed name can never be matched by an arming spec);
//   - every planted name is registered in the faultpoint package's
//     Known list, the single source of truth arming specs are written
//     against, and the list has no duplicates;
//   - every registered name is actually planted somewhere (a stale
//     registry entry arms nothing and gives false chaos confidence);
//   - every registered name is exercised: it appears in a chaos arming
//     spec in the Makefile or in at least one *_test.go file.
var FaultpointAnalyzer = &Analyzer{
	Name: "faultpoint",
	Doc:  "fault point names must be literal, registered in faultpoint.Known, planted, and chaos-exercised",
	Run:  runFaultpoint,
}

// faultpointSite is one faultpoint.Hit/Delay call site.
type faultpointSite struct {
	name string
	pos  token.Pos
}

func runFaultpoint(m *Module, cfg Config) []Diagnostic {
	var out []Diagnostic
	fpImport := m.Path + "/" + cfg.FaultpointDir

	// Collect the planted sites across all non-test files (the faultpoint
	// package itself calls its internals unqualified, so it is naturally
	// excluded by the qualified-call matching).
	var sites []faultpointSite
	for _, pkg := range m.Packages {
		for _, f := range pkg.Files {
			ast.Inspect(f.AST, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				for _, fn := range [...]string{"Hit", "Delay"} {
					if !pkg.PkgCall(f, call, fpImport, fn) {
						continue
					}
					if len(call.Args) != 1 {
						continue
					}
					lit, ok := call.Args[0].(*ast.BasicLit)
					if !ok || lit.Kind != token.STRING {
						out = append(out, diagAt(m, call.Pos(), "faultpoint",
							fmt.Sprintf("faultpoint.%s name must be a string literal so chaos arming specs can reference it", fn)))
						continue
					}
					name, err := strconv.Unquote(lit.Value)
					if err != nil || name == "" {
						out = append(out, diagAt(m, lit.Pos(), "faultpoint",
							"fault point name must be a non-empty string literal"))
						continue
					}
					sites = append(sites, faultpointSite{name: name, pos: call.Pos()})
				}
				return true
			})
		}
	}

	// Extract the registry: var Known = []string{...} in the faultpoint
	// package.
	reg, regPos, found := knownRegistry(m, cfg)
	if !found {
		if len(sites) > 0 {
			out = append(out, diagAt(m, sites[0].pos, "faultpoint",
				fmt.Sprintf("no `var Known = []string{...}` registry found in %s; fault points cannot be cross-checked", cfg.FaultpointDir)))
		}
		return out
	}

	// Uniqueness within the registry.
	seen := make(map[string]bool)
	for i, name := range reg {
		if seen[name] {
			out = append(out, diagAt(m, regPos[i], "faultpoint",
				fmt.Sprintf("duplicate fault point %q in Known registry", name)))
		}
		seen[name] = true
	}

	// Every planted site must be registered.
	planted := make(map[string]bool)
	for _, s := range sites {
		planted[s.name] = true
		if !seen[s.name] {
			out = append(out, diagAt(m, s.pos, "faultpoint",
				fmt.Sprintf("fault point %q is not registered in %s.Known", s.name, cfg.FaultpointDir)))
		}
	}

	// Every registered name must be planted and chaos-exercised.
	testRefs := testStringLiterals(m)
	for i, name := range reg {
		if !planted[name] {
			out = append(out, diagAt(m, regPos[i], "faultpoint",
				fmt.Sprintf("registered fault point %q has no faultpoint.Hit/Delay call site", name)))
		}
		if !strings.Contains(m.Makefile, name) && !testRefs[name] {
			out = append(out, diagAt(m, regPos[i], "faultpoint",
				fmt.Sprintf("registered fault point %q is not armed by any Makefile target or referenced by any test", name)))
		}
	}
	return out
}

// knownRegistry finds `var Known = []string{...}` in the faultpoint
// package and returns its entries with their positions.
func knownRegistry(m *Module, cfg Config) (names []string, poss []token.Pos, found bool) {
	for _, pkg := range m.Packages {
		if pkg.Dir != cfg.FaultpointDir {
			continue
		}
		for _, f := range pkg.Files {
			for _, decl := range f.AST.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok || gd.Tok != token.VAR {
					continue
				}
				for _, spec := range gd.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok || len(vs.Names) != 1 || vs.Names[0].Name != "Known" || len(vs.Values) != 1 {
						continue
					}
					cl, ok := vs.Values[0].(*ast.CompositeLit)
					if !ok {
						continue
					}
					for _, elt := range cl.Elts {
						lit, ok := elt.(*ast.BasicLit)
						if !ok || lit.Kind != token.STRING {
							continue
						}
						if name, err := strconv.Unquote(lit.Value); err == nil {
							names = append(names, name)
							poss = append(poss, lit.Pos())
						}
					}
					return names, poss, true
				}
			}
		}
	}
	return nil, nil, false
}

// testStringLiterals collects every fault-point-shaped reference in test
// files: a registered name counts as exercised when any test mentions it
// inside a string literal (arming specs, Hits assertions).
func testStringLiterals(m *Module) map[string]bool {
	out := make(map[string]bool)
	for _, pkg := range m.Packages {
		for _, f := range pkg.TestFiles {
			ast.Inspect(f.AST, func(n ast.Node) bool {
				lit, ok := n.(*ast.BasicLit)
				if !ok || lit.Kind != token.STRING {
					return true
				}
				if s, err := strconv.Unquote(lit.Value); err == nil {
					// Arming specs pack several names in one literal;
					// index by every plausible token.
					for _, tok := range strings.FieldsFunc(s, func(r rune) bool {
						return r == ';' || r == ',' || r == '=' || r == ':' || r == ' ' || r == '\''
					}) {
						out[tok] = true
					}
				}
				return true
			})
		}
	}
	return out
}
