// Package lint is the repo's static verification layer: a small,
// stdlib-only (go/parser, go/ast, go/types) analysis framework plus the
// analyzers that machine-enforce the invariants the compiler cannot see —
// the invariants the whole macro-model pipeline rests on.
//
// The paper's table-based Hd model is only trustworthy if characterization
// is bit-identical across worker counts, backends and resume points, and
// crash-safety only holds if every durable artifact goes through
// internal/atomicio. Those properties are global: a single stray
// time.Now(), global math/rand call, map-order-dependent merge, or raw
// os.WriteFile anywhere in the deterministic core silently breaks them.
// Tests catch specific regressions; the analyzers here reject the whole
// hazard class at lint time.
//
// Analyzers (see their files for the precise rules):
//
//	nondeterminism  no time.Now/time.Since, global math/rand, or
//	                map iteration in the deterministic packages
//	atomicwrite     no raw os.WriteFile/os.Create/os.Rename outside
//	                internal/atomicio (tests exempt)
//	faultpoint      fault point names are literal, registered in
//	                faultpoint.Known, planted, and chaos-exercised
//	hookbalance     every PhaseStart call is balanced by a PhaseEnd
//	                on all return paths
//
// A finding can be suppressed line-by-line with an escape hatch that
// forces the author to leave a reason behind:
//
//	t0 := time.Now() //hdlint:allow nondeterminism wall time is observability-only
//
// The directive may sit on the flagged line or the line directly above.
// Directives with no reason, and directives that suppress nothing, are
// themselves diagnostics — suppressions must not rot.
//
// The loader is deliberately self-contained: it discovers the module from
// go.mod, parses every package outside testdata, and type-checks each
// package standalone against stub imports. Cross-package types therefore
// do not resolve — the analyzers only rely on locally inferable types
// (e.g. "is this range expression a map?") and on syntactic import
// tracking, which keeps the whole layer dependency-free, hermetic and
// fast enough to run on every build.
package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Diagnostic is one analyzer finding.
type Diagnostic struct {
	// Path is the module-relative, slash-separated file path.
	Path string
	// Line and Col locate the finding (1-based).
	Line, Col int
	// Check names the analyzer (or "allow" for escape-hatch hygiene).
	Check string
	// Msg is the human-readable finding.
	Msg string
}

// String renders the diagnostic in the conventional path:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Path, d.Line, d.Col, d.Check, d.Msg)
}

// File is one parsed source file.
type File struct {
	// Path is module-relative and slash-separated.
	Path string
	// Test reports a *_test.go file.
	Test bool
	AST  *ast.File
	// imports maps the local package name (alias or guessed from the
	// path) to the import path, for syntactic qualified-call matching.
	imports map[string]string
	// allows holds the //hdlint:allow directives by line.
	allows map[int][]*allowDirective
}

// allowDirective is one parsed //hdlint:allow comment.
type allowDirective struct {
	line   int
	check  string
	reason string
	used   bool
}

// Package is one directory's worth of parsed files.
type Package struct {
	// Dir is the module-relative directory ("" for the module root).
	Dir string
	// Name is the package name of the primary (non-test) files.
	Name string
	// Files are the primary files; TestFiles the *_test.go files.
	Files     []*File
	TestFiles []*File
	// Info carries best-effort type information for the primary files.
	// Cross-package and stdlib types do not resolve (stub imports); local
	// types do.
	Info *types.Info
}

// Module is a loaded Go module ready for analysis.
type Module struct {
	// Root is the filesystem root (the go.mod directory).
	Root string
	// Path is the module path from go.mod.
	Path string
	Fset *token.FileSet
	// Packages in deterministic (directory) order.
	Packages []*Package
	// Makefile is the raw content of the root Makefile ("" if absent);
	// the faultpoint analyzer greps it for chaos arming specs.
	Makefile string
}

// Position resolves a node position to a module-relative Diagnostic site.
func (m *Module) Position(pos token.Pos) (path string, line, col int) {
	p := m.Fset.Position(pos)
	rel, err := filepath.Rel(m.Root, p.Filename)
	if err != nil {
		rel = p.Filename
	}
	return filepath.ToSlash(rel), p.Line, p.Column
}

// Config points the analyzers at the repo's layout. The zero value is not
// useful; start from DefaultConfig.
type Config struct {
	// DeterministicDirs are the module-relative package dirs (including
	// their subdirectories) whose results must be bit-identical across
	// worker counts, backends and resume points.
	DeterministicDirs []string
	// AtomicIODir is the one package allowed to touch raw file-write
	// primitives.
	AtomicIODir string
	// FaultpointDir is the package holding the fault-point registry
	// (var Known) and implementation.
	FaultpointDir string
}

// DefaultConfig matches this repository.
func DefaultConfig() Config {
	return Config{
		DeterministicDirs: []string{
			"internal/core",
			"internal/sim",
			"internal/bitsim",
			"internal/stimuli",
			"internal/hddist",
			"internal/telemetry",
		},
		AtomicIODir:   "internal/atomicio",
		FaultpointDir: "internal/faultpoint",
	}
}

// Analyzer is one repo-invariant check.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(m *Module, cfg Config) []Diagnostic
}

// Analyzers returns every registered analyzer in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		NondeterminismAnalyzer,
		AtomicWriteAnalyzer,
		FaultpointAnalyzer,
		HookBalanceAnalyzer,
	}
}

// knownChecks is the set of check names //hdlint:allow may reference.
func knownChecks() map[string]bool {
	m := make(map[string]bool)
	for _, a := range Analyzers() {
		m[a.Name] = true
	}
	return m
}

// Load parses and best-effort type-checks the module rooted at root.
// Directories named testdata (and hidden/underscore dirs) are skipped, so
// analyzer fixtures do not lint themselves.
func Load(root string) (*Module, error) {
	abs, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, err
	}
	m := &Module{Root: abs, Path: modPath, Fset: token.NewFileSet()}
	if raw, err := os.ReadFile(filepath.Join(abs, "Makefile")); err == nil {
		m.Makefile = string(raw)
	}

	var dirs []string
	err = filepath.WalkDir(abs, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != abs && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		ents, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		for _, e := range ents {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
				dirs = append(dirs, path)
				break
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)

	imp := &stubImporter{pkgs: make(map[string]*types.Package)}
	for _, dir := range dirs {
		pkg, err := loadPackage(m, imp, dir)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			m.Packages = append(m.Packages, pkg)
		}
	}
	return m, nil
}

func modulePath(gomod string) (string, error) {
	raw, err := os.ReadFile(gomod)
	if err != nil {
		return "", fmt.Errorf("lint: not a module root: %w", err)
	}
	for _, line := range strings.Split(string(raw), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", gomod)
}

func loadPackage(m *Module, imp *stubImporter, dir string) (*Package, error) {
	rel, err := filepath.Rel(m.Root, dir)
	if err != nil {
		return nil, err
	}
	if rel == "." {
		rel = ""
	}
	pkg := &Package{Dir: filepath.ToSlash(rel)}

	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var typeFiles []*ast.File
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		af, err := parser.ParseFile(m.Fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		f := &File{
			Path: filepath.ToSlash(filepath.Join(pkg.Dir, e.Name())),
			Test: strings.HasSuffix(e.Name(), "_test.go"),
			AST:  af,
		}
		f.imports = importMap(af)
		f.allows = parseAllows(m, af)
		if f.Test {
			pkg.TestFiles = append(pkg.TestFiles, f)
		} else {
			pkg.Files = append(pkg.Files, f)
			typeFiles = append(typeFiles, af)
			pkg.Name = af.Name.Name
		}
	}
	if len(pkg.Files) == 0 && len(pkg.TestFiles) == 0 {
		return nil, nil
	}
	if len(typeFiles) > 0 {
		pkg.Info = &types.Info{
			Types: make(map[ast.Expr]types.TypeAndValue),
			Uses:  make(map[*ast.Ident]types.Object),
			Defs:  make(map[*ast.Ident]types.Object),
		}
		conf := types.Config{
			Importer:         imp,
			FakeImportC:      true,
			IgnoreFuncBodies: false,
			// Standalone checking against stub imports produces a stream
			// of "undefined" errors for cross-package references; the
			// analyzers only consume the types that did resolve.
			Error: func(error) {},
		}
		importPath := m.Path
		if pkg.Dir != "" {
			importPath += "/" + pkg.Dir
		}
		// Check returns an error when any was reported; partial Info is
		// still populated, which is all the analyzers need.
		_, _ = conf.Check(importPath, m.Fset, typeFiles, pkg.Info)
	}
	return pkg, nil
}

// stubImporter satisfies every import with an empty, complete package, so
// standalone type-checking proceeds without resolving real dependencies.
type stubImporter struct {
	pkgs map[string]*types.Package
}

func (s *stubImporter) Import(path string) (*types.Package, error) {
	if p, ok := s.pkgs[path]; ok {
		return p, nil
	}
	name := path
	if i := strings.LastIndex(path, "/"); i >= 0 {
		name = path[i+1:]
	}
	p := types.NewPackage(path, name)
	p.MarkComplete()
	s.pkgs[path] = p
	return p, nil
}

// importMap maps local package names to import paths for one file.
func importMap(af *ast.File) map[string]string {
	out := make(map[string]string, len(af.Imports))
	for _, spec := range af.Imports {
		path := strings.Trim(spec.Path.Value, `"`)
		name := path
		if i := strings.LastIndex(path, "/"); i >= 0 {
			name = path[i+1:]
		}
		if spec.Name != nil {
			name = spec.Name.Name
			if name == "_" || name == "." {
				continue // blank and dot imports cannot qualify calls
			}
		}
		out[name] = path
	}
	return out
}

// allowPrefix introduces an escape-hatch directive.
const allowPrefix = "//hdlint:allow"

// parseAllows extracts the //hdlint:allow directives of a file.
func parseAllows(m *Module, af *ast.File) map[int][]*allowDirective {
	out := make(map[int][]*allowDirective)
	for _, cg := range af.Comments {
		for _, c := range cg.List {
			rest, ok := strings.CutPrefix(c.Text, allowPrefix)
			if !ok {
				continue
			}
			line := m.Fset.Position(c.Pos()).Line
			check, reason, _ := strings.Cut(strings.TrimSpace(rest), " ")
			out[line] = append(out[line], &allowDirective{
				line:   line,
				check:  check,
				reason: strings.TrimSpace(reason),
			})
		}
	}
	return out
}

// PkgCall reports whether call is a qualified call pkg.fn where the
// qualifier resolves to importPath in this file. Resolution prefers type
// information (so a local variable shadowing the package name is not
// mistaken for it) and falls back to the syntactic import table.
func (p *Package) PkgCall(f *File, call *ast.CallExpr, importPath, fn string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != fn {
		return false
	}
	return p.pkgQualifier(f, sel, importPath)
}

// pkgQualifier reports whether sel.X is the package importPath.
func (p *Package) pkgQualifier(f *File, sel *ast.SelectorExpr, importPath string) bool {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	if p.Info != nil {
		if obj, ok := p.Info.Uses[id]; ok {
			pn, isPkg := obj.(*types.PkgName)
			return isPkg && pn.Imported().Path() == importPath
		}
	}
	return f.imports[id.Name] == importPath
}

// diagAt builds a Diagnostic at a source position.
func diagAt(m *Module, pos token.Pos, check, msg string) Diagnostic {
	path, line, col := m.Position(pos)
	return Diagnostic{Path: path, Line: line, Col: col, Check: check, Msg: msg}
}

// Run executes the analyzers over the module, applies the //hdlint:allow
// suppressions, reports escape-hatch hygiene problems, and returns the
// surviving diagnostics sorted by position.
func Run(m *Module, analyzers []*Analyzer, cfg Config) []Diagnostic {
	var raw []Diagnostic
	for _, a := range analyzers {
		raw = append(raw, a.Run(m, cfg)...)
	}

	allowsByPath := make(map[string]map[int][]*allowDirective)
	fileOrder := make([]*File, 0)
	for _, pkg := range m.Packages {
		for _, f := range append(append([]*File(nil), pkg.Files...), pkg.TestFiles...) {
			allowsByPath[f.Path] = f.allows
			fileOrder = append(fileOrder, f)
		}
	}

	var out []Diagnostic
	for _, d := range raw {
		if suppressed(allowsByPath[d.Path], d) {
			continue
		}
		out = append(out, d)
	}

	// Escape-hatch hygiene: every directive must name a real check, carry
	// a reason, and actually suppress something.
	checks := knownChecks()
	for _, f := range fileOrder {
		for _, byLine := range f.allows {
			for _, a := range byLine {
				switch {
				case !checks[a.check]:
					out = append(out, Diagnostic{Path: f.Path, Line: a.line, Col: 1, Check: "allow",
						Msg: fmt.Sprintf("hdlint:allow names unknown check %q", a.check)})
				case a.reason == "":
					out = append(out, Diagnostic{Path: f.Path, Line: a.line, Col: 1, Check: "allow",
						Msg: fmt.Sprintf("hdlint:allow %s has no reason; say why the invariant is safe to waive here", a.check)})
				case !a.used:
					out = append(out, Diagnostic{Path: f.Path, Line: a.line, Col: 1, Check: "allow",
						Msg: fmt.Sprintf("unused hdlint:allow %s directive (nothing to suppress); delete it", a.check)})
				}
			}
		}
	}

	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Path != b.Path {
			return a.Path < b.Path
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Check < b.Check
	})
	return out
}

// suppressed consumes a matching allow directive on the diagnostic's line
// or the line directly above. Directives missing a reason do not
// suppress — an unexplained waiver is not a waiver.
func suppressed(allows map[int][]*allowDirective, d Diagnostic) bool {
	for _, line := range [2]int{d.Line, d.Line - 1} {
		for _, a := range allows[line] {
			if a.check == d.Check && a.reason != "" {
				a.used = true
				return true
			}
		}
	}
	return false
}
