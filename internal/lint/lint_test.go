package lint

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// wantMarkers scans a fixture module for expectation markers of the form
//
//	code() // want check1 check2
//
// A marker trailing code applies to its own line; a marker alone on a
// line applies to the next line (used for //hdlint:allow directives,
// which consume the whole line comment). Returns "path:line:check"
// strings, one per expected diagnostic.
func wantMarkers(t *testing.T, root string) []string {
	t.Helper()
	var want []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		raw, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		rel = filepath.ToSlash(rel)
		for i, line := range strings.Split(string(raw), "\n") {
			idx := strings.Index(line, "// want ")
			if idx < 0 {
				continue
			}
			target := i + 1 // 1-based line of the marker
			if strings.TrimSpace(line[:idx]) == "" {
				target++ // standalone marker applies to the next line
			}
			for _, check := range strings.Fields(line[idx+len("// want "):]) {
				want = append(want, fmt.Sprintf("%s:%d:%s", rel, target, check))
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(want)
	return want
}

func runFixture(t *testing.T, root string) []Diagnostic {
	t.Helper()
	m, err := Load(root)
	if err != nil {
		t.Fatalf("Load(%s): %v", root, err)
	}
	return Run(m, Analyzers(), DefaultConfig())
}

func diagKeys(diags []Diagnostic) []string {
	keys := make([]string, len(diags))
	for i, d := range diags {
		keys[i] = fmt.Sprintf("%s:%d:%s", d.Path, d.Line, d.Check)
	}
	sort.Strings(keys)
	return keys
}

// TestCleanFixture: a module written to the repo's contracts — seeded
// randomness, atomicio-only writes, a consistent armed registry,
// balanced hooks, and one justified (used) escape hatch — lints clean.
func TestCleanFixture(t *testing.T) {
	diags := runFixture(t, filepath.Join("testdata", "clean"))
	if len(diags) != 0 {
		t.Fatalf("clean fixture produced %d diagnostics:\n%s",
			len(diags), strings.Join(diagKeys(diags), "\n"))
	}
}

// TestDirtyFixture: every marked violation is reported, nothing else is,
// and suppressed lines stay quiet.
func TestDirtyFixture(t *testing.T) {
	root := filepath.Join("testdata", "dirty")
	got := diagKeys(runFixture(t, root))
	want := wantMarkers(t, root)

	if len(want) == 0 {
		t.Fatal("dirty fixture has no want markers; fixture is broken")
	}
	wantSet := make(map[string]int)
	for _, w := range want {
		wantSet[w]++
	}
	for _, g := range got {
		if wantSet[g] > 0 {
			wantSet[g]--
			continue
		}
		t.Errorf("unexpected diagnostic %s", g)
	}
	for w, n := range wantSet {
		for ; n > 0; n-- {
			t.Errorf("missing expected diagnostic %s", w)
		}
	}
}

// TestDirtyFixtureCoversEveryAnalyzer guards the fixture itself: each
// analyzer (and the allow-hygiene pass) must have at least one surviving
// finding, so a silently broken analyzer cannot pass the suite.
func TestDirtyFixtureCoversEveryAnalyzer(t *testing.T) {
	diags := runFixture(t, filepath.Join("testdata", "dirty"))
	byCheck := make(map[string]int)
	for _, d := range diags {
		byCheck[d.Check]++
	}
	for _, a := range Analyzers() {
		if byCheck[a.Name] == 0 {
			t.Errorf("analyzer %s found nothing in the dirty fixture", a.Name)
		}
	}
	if byCheck["allow"] == 0 {
		t.Error("allow-hygiene pass found nothing in the dirty fixture")
	}
}

// TestSelectedAnalyzersOnly: running a subset must not report the other
// checks (the hdlint -checks path).
func TestSelectedAnalyzersOnly(t *testing.T) {
	m, err := Load(filepath.Join("testdata", "dirty"))
	if err != nil {
		t.Fatal(err)
	}
	diags := Run(m, []*Analyzer{AtomicWriteAnalyzer}, DefaultConfig())
	for _, d := range diags {
		if d.Check != "atomicwrite" && d.Check != "allow" {
			t.Errorf("unexpected check %s in subset run: %s", d.Check, d)
		}
	}
}

// TestRepoClean pins the tentpole invariant: the repository itself has
// zero hdlint findings. Any new violation fails go test, not just CI's
// hdlint step.
func TestRepoClean(t *testing.T) {
	diags := runFixture(t, filepath.Join("..", ".."))
	if len(diags) != 0 {
		t.Fatalf("repository has %d hdlint findings:\n%s",
			len(diags), strings.Join(diagKeys(diags), "\n"))
	}
}
