package lint

import (
	"go/ast"
	"go/token"
)

// HookBalanceAnalyzer enforces the span contract of core.Hooks: every
// started phase ends. Observers (trace spans, progress bars, flight
// recorders) rely on PhaseStart/PhaseEnd arriving in balanced pairs even
// when a run is cut short, so a code path that fires PhaseStart and then
// returns without PhaseEnd leaks a span and wedges progress displays.
//
// Within each function body (function literals are analyzed as their own
// bodies), the analyzer tracks PhaseStart/phaseStart and
// PhaseEnd/phaseEnd calls in source order as an open-phase counter and
// flags:
//
//   - a return statement while a phase is open, and
//   - a function end with a phase still open,
//
// unless the function defers a PhaseEnd, which balances every path.
// Exempt as hook *implementations* rather than call sites: functions
// named phaseStart/phaseEnd themselves, and function literals assigned to
// a PhaseStart/PhaseEnd field (forwarders like JoinHooks).
//
// The source-order counter is deliberately control-flow-blind: it accepts
// the repo's straight-line start...end blocks and flags early returns
// inside them, at the price of misjudging exotic shapes (e.g. ends on
// both arms of a branch). Those suppress per line with a reason.
var HookBalanceAnalyzer = &Analyzer{
	Name: "hookbalance",
	Doc:  "every Hooks.PhaseStart call site must reach a PhaseEnd on all return paths",
	Run:  runHookBalance,
}

func isPhaseName(name string, kind string) bool {
	return name == kind || name == upperFirst(kind)
}

func upperFirst(s string) string {
	if s == "" {
		return s
	}
	return string(s[0]-'a'+'A') + s[1:]
}

// phaseCall reports whether expr is a call to a phaseStart- or
// phaseEnd-named method/function ("start" or "end").
func phaseCall(n ast.Node) (kind string, call *ast.CallExpr) {
	c, ok := n.(*ast.CallExpr)
	if !ok {
		return "", nil
	}
	var name string
	switch fun := c.Fun.(type) {
	case *ast.SelectorExpr:
		name = fun.Sel.Name
	case *ast.Ident:
		name = fun.Name
	default:
		return "", nil
	}
	switch {
	case isPhaseName(name, "phaseStart"):
		return "start", c
	case isPhaseName(name, "phaseEnd"):
		return "end", c
	}
	return "", nil
}

func runHookBalance(m *Module, cfg Config) []Diagnostic {
	var out []Diagnostic
	for _, pkg := range m.Packages {
		for _, f := range pkg.Files {
			out = append(out, hookBalanceFile(m, f)...)
		}
	}
	return out
}

func hookBalanceFile(m *Module, f *File) []Diagnostic {
	var out []Diagnostic

	// Pre-pass: function literals that *implement* a PhaseStart/PhaseEnd
	// hook field are forwarders, not call sites.
	implLits := make(map[*ast.FuncLit]bool)
	ast.Inspect(f.AST, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.KeyValueExpr:
			if key, ok := n.Key.(*ast.Ident); ok && isHookField(key.Name) {
				if lit, ok := n.Value.(*ast.FuncLit); ok {
					implLits[lit] = true
				}
			}
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				sel, ok := lhs.(*ast.SelectorExpr)
				if !ok || !isHookField(sel.Sel.Name) || i >= len(n.Rhs) {
					continue
				}
				if lit, ok := n.Rhs[i].(*ast.FuncLit); ok {
					implLits[lit] = true
				}
			}
		}
		return true
	})

	// Collect the bodies to analyze: each function declaration and each
	// function literal is its own scope.
	type body struct {
		node ast.Node
		skip bool
	}
	var bodies []body
	ast.Inspect(f.AST, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if n.Body != nil {
				skip := isPhaseName(n.Name.Name, "phaseStart") || isPhaseName(n.Name.Name, "phaseEnd")
				bodies = append(bodies, body{node: n.Body, skip: skip})
			}
		case *ast.FuncLit:
			bodies = append(bodies, body{node: n.Body, skip: implLits[n]})
		}
		return true
	})

	for _, b := range bodies {
		if b.skip {
			continue
		}
		out = append(out, hookBalanceBody(m, b.node)...)
	}
	return out
}

func isHookField(name string) bool {
	return name == "PhaseStart" || name == "PhaseEnd"
}

// hookBalanceBody walks one function body in source order (not descending
// into nested function literals) and applies the open-phase counter.
func hookBalanceBody(m *Module, root ast.Node) []Diagnostic {
	var out []Diagnostic
	var openStarts []token.Pos
	deferred := false

	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // separate scope, analyzed on its own
		case *ast.DeferStmt:
			if kind, _ := phaseCall(n.Call); kind == "end" {
				deferred = true
				return false // the deferred call is the balance, not a stack op
			}
		case *ast.CallExpr:
			switch kind, _ := phaseCall(n); kind {
			case "start":
				openStarts = append(openStarts, n.Pos())
			case "end":
				if len(openStarts) > 0 {
					openStarts = openStarts[:len(openStarts)-1]
				}
			}
		case *ast.ReturnStmt:
			if len(openStarts) > 0 && !deferred {
				out = append(out, diagAt(m, n.Pos(), "hookbalance",
					"return while a phase is open: PhaseStart has no PhaseEnd on this path (observers leak a span)"))
			}
		}
		return true
	}
	ast.Inspect(root, walk)

	if len(openStarts) > 0 && !deferred {
		for _, pos := range openStarts {
			out = append(out, diagAt(m, pos, "hookbalance",
				"PhaseStart without a matching PhaseEnd before the function ends"))
		}
	}
	return out
}
