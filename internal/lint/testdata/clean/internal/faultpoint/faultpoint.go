// Package faultpoint is the clean fixture's fault-injection registry.
package faultpoint

// Known lists every planted fault point.
var Known = []string{
	"store.flush",
}

// Hit reports whether the named fault point fires.
func Hit(name string) bool { return name == "" }
