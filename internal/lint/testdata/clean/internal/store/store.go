// Package store persists durable artifacts through atomicio only.
package store

import (
	"errors"

	"fixture/internal/atomicio"
	"fixture/internal/faultpoint"
)

var errInjected = errors.New("injected")

// Save writes durably, with a registered, Makefile-armed fault point.
func Save(path string, data []byte) error {
	if faultpoint.Hit("store.flush") {
		return errInjected
	}
	return atomicio.WriteFile(path, data, 0o644)
}
