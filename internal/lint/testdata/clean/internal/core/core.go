// Package core is the clean fixture's deterministic package: seeded
// randomness, order-insensitive map walks behind a justified waiver,
// and balanced hooks. Every analyzer must come back empty.
package core

import "math/rand"

// Draw uses a seeded instance — the sanctioned pattern.
func Draw(seed int64, n int) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(n)
}

// Sum accumulates integers, where order cannot change the result.
func Sum(m map[string]int) int {
	total := 0
	//hdlint:allow nondeterminism integer accumulation is order-insensitive
	for _, v := range m {
		total += v
	}
	return total
}

// Hooks carries the observer callbacks of the fixture.
type Hooks struct {
	PhaseStart func(name string)
	PhaseEnd   func(name string)
}

func phaseStart(h *Hooks, name string) {
	if h.PhaseStart != nil {
		h.PhaseStart(name)
	}
}

func phaseEnd(h *Hooks, name string) {
	if h.PhaseEnd != nil {
		h.PhaseEnd(name)
	}
}

// Run keeps the span balanced on every path.
func Run(h *Hooks) error {
	phaseStart(h, "basic")
	defer phaseEnd(h, "basic")
	return nil
}
