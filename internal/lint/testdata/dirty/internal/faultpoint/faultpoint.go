// Package faultpoint is the violating fixture's fault-injection
// registry: it contains a duplicate and a stale entry on purpose.
package faultpoint

// Known is the fixture registry.
var Known = []string{
	"core.armed",
	"core.dup",
	"core.dup",   // want faultpoint
	"core.stale", // want faultpoint faultpoint
}

// Hit reports whether the named fault point fires.
func Hit(name string) bool { return name == "" }

// Delay stalls at the named fault point.
func Delay(name string) { _ = name }
