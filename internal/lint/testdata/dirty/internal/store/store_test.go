package store

import (
	"os"
	"path/filepath"
	"testing"
)

// Tests fabricate corrupt inputs on purpose; raw writes are exempt here.
func TestFabricateCorrupt(t *testing.T) {
	path := filepath.Join(t.TempDir(), "torn")
	if err := os.WriteFile(path, []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}
}
