// Package store is the violating fixture's persistence layer: every
// marked raw write below must be flagged by the atomicwrite analyzer.
package store

import "os"

// Save writes raw — torn on crash.
func Save(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644) // want atomicwrite
}

// Open creates raw.
func Open(path string) (*os.File, error) {
	return os.Create(path) // want atomicwrite
}

// Move renames raw.
func Move(a, b string) error {
	return os.Rename(a, b) // want atomicwrite
}

// Scratch is a justified waiver: a file that is allowed to tear.
func Scratch(path string, data []byte) error {
	//hdlint:allow atomicwrite scratch file, deliberately allowed to tear
	return os.WriteFile(path, data, 0o600)
}
