// Package core is the violating fixture's deterministic package: every
// marked line below must be flagged by the nondeterminism analyzer.
package core

import (
	"math/rand"
	"time"
)

// Clock consults the wall clock.
func Clock() time.Time {
	return time.Now() // want nondeterminism
}

// Span measures a wall-time span.
func Span(t time.Time) time.Duration {
	return time.Since(t) // want nondeterminism
}

// Roll uses the process-global generator.
func Roll() int {
	return rand.Intn(6) // want nondeterminism
}

// SeededRoll is the sanctioned seeded-instance pattern; not flagged.
func SeededRoll(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(6)
}

// Sum walks a map in randomized iteration order.
func Sum(m map[string]int) int {
	total := 0
	for _, v := range m { // want nondeterminism
		total += v
	}
	return total
}

// Allowed demonstrates a justified escape hatch: no finding survives.
func Allowed() time.Time {
	//hdlint:allow nondeterminism fixture demonstrates a justified waiver
	return time.Now()
}
