package core

// The directives below are escape-hatch hygiene violations: an unknown
// check name, a missing reason, and a directive that suppresses nothing.

// want allow
//hdlint:allow nosuchcheck the check name is wrong

// want allow
//hdlint:allow nondeterminism

// Waive carries an unused directive: nothing it could suppress exists.
func Waive() int {
	// want allow
	//hdlint:allow atomicwrite nothing on the next line writes anything
	return 1
}
