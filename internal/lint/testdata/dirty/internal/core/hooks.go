package core

import "errors"

// Hooks carries the observer callbacks of the fixture.
type Hooks struct {
	PhaseStart func(name string)
	PhaseEnd   func(name string)
}

var errNope = errors.New("nope")

func work() bool { return false }

// phaseStart and phaseEnd are the nil-safe dispatchers; as hook
// implementations they are exempt from the balance check.
func phaseStart(h *Hooks, name string) {
	if h.PhaseStart != nil {
		h.PhaseStart(name)
	}
}

func phaseEnd(h *Hooks, name string) {
	if h.PhaseEnd != nil {
		h.PhaseEnd(name)
	}
}

// Balanced pairs start and end on the single path; not flagged.
func Balanced(h *Hooks) {
	phaseStart(h, "basic")
	work()
	phaseEnd(h, "basic")
}

// DeferBalanced ends the phase on every path via defer; not flagged.
func DeferBalanced(h *Hooks) error {
	phaseStart(h, "basic")
	defer phaseEnd(h, "basic")
	if !work() {
		return errNope
	}
	return nil
}

// LeakyReturn leaks the open span on the early return.
func LeakyReturn(h *Hooks) error {
	phaseStart(h, "basic")
	if !work() {
		return errNope // want hookbalance
	}
	phaseEnd(h, "basic")
	return nil
}

// LeakyEnd never ends the phase it starts.
func LeakyEnd(h *Hooks) {
	phaseStart(h, "biased") // want hookbalance
	work()
}

// JoinHooks forwards to both hook sets; the function literals implement
// the hook fields and are exempt forwarders, not call sites.
func JoinHooks(a, b *Hooks) *Hooks {
	return &Hooks{
		PhaseStart: func(name string) {
			a.PhaseStart(name)
			b.PhaseStart(name)
		},
		PhaseEnd: func(name string) {
			a.PhaseEnd(name)
			b.PhaseEnd(name)
		},
	}
}
