// Package atomicio implements the fixture's durable-write discipline;
// it is the one package allowed to touch the raw primitives.
package atomicio

import "os"

// WriteFile stands in for the real temp-file + rename discipline.
func WriteFile(path string, data []byte, mode os.FileMode) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, mode); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}
