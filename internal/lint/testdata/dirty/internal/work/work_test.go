package work

import "testing"

// TestChaosDup arms core.dup from a test, which counts as
// chaos-exercised for the faultpoint analyzer.
func TestChaosDup(t *testing.T) {
	t.Setenv("FIXTURE_FAULTPOINTS", "core.dup=err")
	if err := Step(); err != nil {
		t.Fatal(err)
	}
}
