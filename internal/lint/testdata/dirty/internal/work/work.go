// Package work plants the fixture's fault points: one registered and
// Makefile-armed, one registered and test-armed, one unregistered, and
// one with a computed (unmatchable) name.
package work

import (
	"errors"

	"fixture/internal/faultpoint"
)

var errInjected = errors.New("injected")

// Step exercises every call-site shape the faultpoint analyzer judges.
func Step() error {
	if faultpoint.Hit("core.armed") {
		return errInjected
	}
	faultpoint.Delay("core.dup")
	if faultpoint.Hit("core.rogue") { // want faultpoint
		return errInjected
	}
	name := "core" + ".computed"
	if faultpoint.Hit(name) { // want faultpoint
		return errInjected
	}
	return nil
}
