package lint

import (
	"fmt"
	"go/ast"
)

// AtomicWriteAnalyzer enforces the durability contract: every durable
// artifact — models, regressions, checkpoints, manifests, trace dumps —
// goes through internal/atomicio's temp-file + fsync + rename + checksum
// discipline, so a crash at any instant leaves either the old file or the
// new file, never a torn mixture.
//
// Raw calls to os.WriteFile, os.Create and os.Rename are therefore
// forbidden everywhere except inside the atomicio package itself (which
// implements the discipline) and in *_test.go files (which fabricate
// corrupt and legacy inputs on purpose). Non-durable uses — a scratch
// file that is deliberately allowed to tear — suppress per line with a
// reason.
var AtomicWriteAnalyzer = &Analyzer{
	Name: "atomicwrite",
	Doc:  "forbid raw os.WriteFile/os.Create/os.Rename outside internal/atomicio",
	Run:  runAtomicWrite,
}

var rawWriteFns = [...]string{"WriteFile", "Create", "Rename"}

func runAtomicWrite(m *Module, cfg Config) []Diagnostic {
	var out []Diagnostic
	for _, pkg := range m.Packages {
		if pkg.Dir == cfg.AtomicIODir {
			continue
		}
		for _, f := range pkg.Files {
			ast.Inspect(f.AST, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				for _, fn := range rawWriteFns {
					if pkg.PkgCall(f, call, "os", fn) {
						out = append(out, diagAt(m, call.Pos(), "atomicwrite",
							fmt.Sprintf("raw os.%s: durable artifacts must go through %s (atomic rename + fsync + checksum trailer)", fn, cfg.AtomicIODir)))
					}
				}
				return true
			})
		}
	}
	return out
}
