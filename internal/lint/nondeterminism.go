package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// NondeterminismAnalyzer enforces the reproducibility contract of the
// deterministic packages (Config.DeterministicDirs): a characterization
// must be bit-identical for every worker count, backend and resume point,
// so nothing on those paths may consult ambient nondeterminism.
//
// Flagged in non-test files of the deterministic packages:
//
//   - time.Now and time.Since calls — wall-clock input. Observability
//     code that only timestamps manifests suppresses per line with a
//     reason.
//   - calls to the global math/rand generator (rand.Intn, rand.Float64,
//     rand.Shuffle, ...) — process-global, seed-shared state. Seeded
//     instances via rand.New(rand.NewSource(seed)) remain the sanctioned
//     pattern and are not flagged.
//   - range over a map — Go randomizes map iteration order per run, so
//     any map walk that feeds ordered output (merges, serialization,
//     accumulation in float arithmetic) breaks bit-identical results.
//     Order-insensitive walks suppress per line with a reason.
var NondeterminismAnalyzer = &Analyzer{
	Name: "nondeterminism",
	Doc:  "forbid wall-clock, global math/rand and map-iteration order in the deterministic packages",
	Run:  runNondeterminism,
}

// globalRandFns are the math/rand top-level functions backed by the
// process-global generator. Constructors (New, NewSource, NewZipf) are
// fine: they are how deterministic seeded streams are built.
var globalRandFns = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "NormFloat64": true, "ExpFloat64": true,
	"Perm": true, "Shuffle": true, "Seed": true, "Read": true,
}

func runNondeterminism(m *Module, cfg Config) []Diagnostic {
	var out []Diagnostic
	for _, pkg := range m.Packages {
		if !dirCovered(pkg.Dir, cfg.DeterministicDirs) {
			continue
		}
		for _, f := range pkg.Files {
			ast.Inspect(f.AST, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.CallExpr:
					for _, fn := range [...]string{"Now", "Since"} {
						if pkg.PkgCall(f, n, "time", fn) {
							out = append(out, diagAt(m, n.Pos(), "nondeterminism",
								fmt.Sprintf("time.%s in deterministic package %s: results must not depend on wall time", fn, pkg.Dir)))
						}
					}
					if sel, ok := n.Fun.(*ast.SelectorExpr); ok && globalRandFns[sel.Sel.Name] &&
						pkg.pkgQualifier(f, sel, "math/rand") {
						out = append(out, diagAt(m, n.Pos(), "nondeterminism",
							fmt.Sprintf("global math/rand.%s in deterministic package %s: use a seeded rand.New(rand.NewSource(seed)) instance", sel.Sel.Name, pkg.Dir)))
					}
				case *ast.RangeStmt:
					if isMapType(pkg, n.X) {
						out = append(out, diagAt(m, n.Pos(), "nondeterminism",
							fmt.Sprintf("range over map in deterministic package %s: iteration order is randomized; iterate sorted keys or an ordered slice", pkg.Dir)))
					}
				}
				return true
			})
		}
	}
	return out
}

// isMapType reports whether expr's (best-effort) static type is a map.
// With stub imports only locally inferable types resolve; unresolved
// types are conservatively not flagged.
func isMapType(pkg *Package, expr ast.Expr) bool {
	if pkg.Info == nil {
		return false
	}
	t := pkg.Info.TypeOf(expr)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// dirCovered reports whether dir is one of the listed dirs or nested
// inside one.
func dirCovered(dir string, roots []string) bool {
	for _, r := range roots {
		if dir == r || strings.HasPrefix(dir, r+"/") {
			return true
		}
	}
	return false
}
