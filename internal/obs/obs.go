// Package obs is the dependency-free observability toolkit for the
// hdpower services, in three self-consistent halves:
//
//   - metrics: atomic counters and gauges, log-bucketed latency
//     histograms, and a registry that renders everything in the Prometheus
//     text exposition format (version 0.0.4);
//   - tracing (trace.go): spans with parent links, monotonic durations and
//     attributes, collected in a bounded ring of recent spans and dumped as
//     JSON by /debug/traces — with the tracer's own counters exposed back
//     through the metrics registry;
//   - structured logging (log.go): log/slog constructors plus trace- and
//     request-ID context plumbing so access logs join up with spans.
//
// It exists so the serving layer can expose first-class observability
// without pulling an external client library into a module that otherwise
// has no dependencies.
//
// All metric operations are safe for concurrent use and allocation-free on
// the hot path; rendering takes a snapshot under the registry lock.
package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing counter.
type Counter struct {
	v atomic.Uint64
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n; negative deltas panic (counters only go up).
func (c *Counter) Add(n int64) {
	if n < 0 {
		panic("obs: negative counter delta")
	}
	c.v.Add(uint64(n))
}

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a value that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adds n (n may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket histogram with exponentially growing bucket
// bounds, intended for latencies in seconds. Observations are counted into
// the first bucket whose upper bound is >= the value; the rendered output
// is cumulative, Prometheus-style.
type Histogram struct {
	bounds []float64 // sorted upper bounds; implicit +Inf bucket follows
	counts []atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-updated
	count  atomic.Uint64
}

// LatencyBounds returns the default log-spaced latency bounds: 100µs
// doubling through ~52s (20 buckets), wide enough to cover both
// sub-millisecond lookups and multi-second model builds.
func LatencyBounds() []float64 {
	bounds := make([]float64, 20)
	b := 100e-6
	for i := range bounds {
		bounds[i] = b
		b *= 2
	}
	return bounds
}

func newHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = LatencyBounds()
	}
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	return &Histogram{bounds: bs, counts: make([]atomic.Uint64, len(bs)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) {
		return
	}
	idx := sort.SearchFloat64s(h.bounds, v)
	h.counts[idx].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Quantile estimates the q-quantile (q in [0,1]) of the observed values by
// linear interpolation inside the winning bucket. Returns 0 when the
// histogram is empty. The overflow bucket has no finite upper bound, so a
// quantile that lands there is clamped to the largest finite bound instead
// of being reported as +Inf; callers needing the true tail should widen the
// bucket bounds.
func (h *Histogram) Quantile(q float64) float64 {
	counts := make([]uint64, len(h.counts))
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
	}
	return BucketQuantile(h.bounds, counts, q)
}

// BucketQuantile estimates the q-quantile from raw histogram bucket counts:
// counts[i] is the number of observations at or below bounds[i], and the
// final element counts[len(bounds)] is the unbounded overflow bucket. The
// estimate interpolates linearly within the winning bucket (the first
// bucket's lower edge is taken as 0). Quantiles landing in the overflow
// bucket are clamped to the last finite bound rather than +Inf. Returns 0
// for empty counts, and panics if len(counts) != len(bounds)+1.
func BucketQuantile(bounds []float64, counts []uint64, q float64) float64 {
	if len(counts) != len(bounds)+1 {
		panic("obs: BucketQuantile needs len(counts) == len(bounds)+1")
	}
	total := uint64(0)
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	cum := uint64(0)
	for i, c := range counts {
		prev := cum
		cum += c
		if float64(cum) < rank || c == 0 {
			continue
		}
		if i >= len(bounds) {
			// Overflow bucket: no finite upper bound to interpolate
			// toward, so clamp.
			if len(bounds) == 0 {
				return 0
			}
			return bounds[len(bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = bounds[i-1]
		}
		frac := (rank - float64(prev)) / float64(c)
		if frac < 0 {
			frac = 0
		} else if frac > 1 {
			frac = 1
		}
		return lo + (bounds[i]-lo)*frac
	}
	return bounds[len(bounds)-1]
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// metric is one registered family member: a concrete series with
// pre-rendered labels.
type series struct {
	labels string // rendered `k="v",...` or ""
	c      *Counter
	g      *Gauge
	h      *Histogram
	fn     func() uint64 // read-on-render counter (CounterFunc)
}

// family is one metric name with HELP/TYPE and its label series.
type family struct {
	name string
	help string
	typ  string
	// series in registration order; families without labels hold exactly
	// one entry with empty labels.
	series []*series
	byKey  map[string]*series
}

// Registry holds metric families and renders them.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

func (r *Registry) family(name, help, typ string) *family {
	f, ok := r.byName[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ, byKey: make(map[string]*series)}
		r.byName[name] = f
		r.families = append(r.families, f)
		return f
	}
	if f.typ != typ {
		panic(fmt.Sprintf("obs: metric %q re-registered as %s, was %s", name, typ, f.typ))
	}
	return f
}

func (f *family) get(labels string) *series {
	s, ok := f.byKey[labels]
	if !ok {
		s = &series{labels: labels}
		switch f.typ {
		case "counter":
			s.c = &Counter{}
		case "gauge":
			s.g = &Gauge{}
		}
		f.byKey[labels] = s
		f.series = append(f.series, s)
	}
	return s
}

// Counter registers (or returns the existing) unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	return r.CounterL(name, help, nil)
}

// CounterL registers (or returns) a counter with the given label pairs.
func (r *Registry) CounterL(name, help string, labels []Label) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.family(name, help, "counter").get(renderLabels(labels)).c
}

// CounterFunc registers a counter whose value is read from fn at render
// time, for instruments that keep their own atomics (e.g. the tracer's
// span counters). Re-registering a name keeps the first function.
func (r *Registry) CounterFunc(name, help string, fn func() uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.family(name, help, "counter").get("")
	if s.fn == nil {
		s.fn = fn
	}
}

// Gauge registers (or returns the existing) unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.family(name, help, "gauge").get("").g
}

// Histogram registers (or returns) an unlabeled histogram. Nil or empty
// bounds select LatencyBounds.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	return r.HistogramL(name, help, nil, bounds)
}

// HistogramL registers (or returns) a histogram with the given label pairs.
func (r *Registry) HistogramL(name, help string, labels []Label, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.family(name, help, "histogram")
	s := f.get(renderLabels(labels))
	if s.h == nil {
		s.h = newHistogram(bounds)
	}
	return s.h
}

// Label is one metric label pair.
type Label struct {
	Key, Value string
}

// L is shorthand for a single-label slice.
func L(key, value string) []Label { return []Label{{Key: key, Value: value}} }

func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Key, escapeLabel(l.Value))
	}
	return b.String()
}

// escapeLabel escapes a label value per the exposition format. %q above
// already escapes backslashes and quotes; newlines are the remaining case.
func escapeLabel(v string) string {
	return strings.ReplaceAll(v, "\n", "\\n")
}

// WritePrometheus renders every registered metric in the Prometheus text
// exposition format.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	bw := bufio.NewWriter(w)
	for _, f := range r.families {
		fmt.Fprintf(bw, "# HELP %s %s\n", f.name, f.help)
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.typ)
		for _, s := range f.series {
			switch f.typ {
			case "counter":
				v := uint64(0)
				if s.fn != nil {
					v = s.fn()
				} else {
					v = s.c.Value()
				}
				fmt.Fprintf(bw, "%s %d\n", seriesName(f.name, s.labels), v)
			case "gauge":
				fmt.Fprintf(bw, "%s %d\n", seriesName(f.name, s.labels), s.g.Value())
			case "histogram":
				writeHistogram(bw, f.name, s)
			}
		}
	}
	return bw.Flush()
}

func seriesName(name, labels string) string {
	if labels == "" {
		return name
	}
	return name + "{" + labels + "}"
}

func writeHistogram(w io.Writer, name string, s *series) {
	h := s.h
	cum := uint64(0)
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket{%s} %d\n", name, bucketLabels(s.labels, formatBound(bound)), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(w, "%s_bucket{%s} %d\n", name, bucketLabels(s.labels, "+Inf"), cum)
	fmt.Fprintf(w, "%s %g\n", seriesName(name+"_sum", s.labels), h.Sum())
	fmt.Fprintf(w, "%s %d\n", seriesName(name+"_count", s.labels), h.Count())
}

func bucketLabels(labels, le string) string {
	if labels == "" {
		return fmt.Sprintf("le=%q", le)
	}
	return labels + fmt.Sprintf(",le=%q", le)
}

func formatBound(b float64) string {
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.6f", b), "0"), ".")
}
