package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("reqs_total", "requests")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if same := r.Counter("reqs_total", "requests"); same != c {
		t.Fatalf("re-registering a counter must return the same instance")
	}

	g := r.Gauge("depth", "queue depth")
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}
}

func TestCounterNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("Add(-1) must panic")
		}
	}()
	(&Counter{}).Add(-1)
}

func TestLabeledCounters(t *testing.T) {
	r := NewRegistry()
	ok := r.CounterL("http_total", "by code", []Label{{"path", "/x"}, {"code", "200"}})
	bad := r.CounterL("http_total", "by code", []Label{{"path", "/x"}, {"code", "500"}})
	ok.Add(3)
	bad.Inc()

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE http_total counter",
		`http_total{path="/x",code="200"} 3`,
		`http_total{path="/x",code="500"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "latency", []float64{0.001, 0.01, 0.1})
	for _, v := range []float64{0.0005, 0.005, 0.005, 0.05, 5} {
		h.Observe(v)
	}
	h.Observe(math.NaN()) // ignored
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if got, want := h.Sum(), 0.0005+0.005+0.005+0.05+5; math.Abs(got-want) > 1e-12 {
		t.Fatalf("sum = %v, want %v", got, want)
	}

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE lat_seconds histogram",
		`lat_seconds_bucket{le="0.001"} 1`,
		`lat_seconds_bucket{le="0.01"} 3`,
		`lat_seconds_bucket{le="0.1"} 4`,
		`lat_seconds_bucket{le="+Inf"} 5`,
		"lat_seconds_count 5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestHistogramQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("q_seconds", "latency", []float64{0.001, 0.01, 0.1})

	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("empty histogram quantile = %v, want 0", got)
	}

	// 10 observations in (0.001, 0.01]: the median interpolates inside
	// that bucket.
	for i := 0; i < 10; i++ {
		h.Observe(0.005)
	}
	got := h.Quantile(0.5)
	if got <= 0.001 || got > 0.01 {
		t.Fatalf("p50 = %v, want within (0.001, 0.01]", got)
	}
	// q outside [0,1] clamps instead of extrapolating.
	if lo, hi := h.Quantile(-1), h.Quantile(2); lo < 0 || hi > 0.01+1e-12 {
		t.Fatalf("clamped quantiles out of range: q=-1 -> %v, q=2 -> %v", lo, hi)
	}
}

// TestHistogramQuantileOverflowClamp is the regression test for the +Inf
// edge case: every observation beyond the last finite bound lands in the
// unbounded overflow bucket, where naive interpolation would report +Inf.
// The estimate must clamp to the last finite bound instead.
func TestHistogramQuantileOverflowClamp(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("of_seconds", "latency", []float64{0.001, 0.01, 0.1})
	for i := 0; i < 100; i++ {
		h.Observe(5) // > 0.1: overflow bucket
	}
	for _, q := range []float64{0.5, 0.99, 0.999, 1} {
		got := h.Quantile(q)
		if math.IsInf(got, 1) {
			t.Fatalf("Quantile(%v) = +Inf, want clamp to last finite bound", q)
		}
		if got != 0.1 {
			t.Fatalf("Quantile(%v) = %v, want 0.1 (last finite bound)", q, got)
		}
	}
}

func TestBucketQuantile(t *testing.T) {
	bounds := []float64{1, 2, 4}
	// 4 observations <=1, 4 in (1,2], none in (2,4], 2 overflow.
	counts := []uint64{4, 4, 0, 2}
	if got := BucketQuantile(bounds, counts, 0.25); got != 0.625 {
		t.Fatalf("p25 = %v, want 0.625", got)
	}
	if got := BucketQuantile(bounds, counts, 0.8); got != 2 {
		t.Fatalf("p80 = %v, want 2", got)
	}
	if got := BucketQuantile(bounds, counts, 1); got != 4 {
		t.Fatalf("p100 = %v, want clamp to 4", got)
	}
	if got := BucketQuantile(nil, []uint64{7}, 0.9); got != 0 {
		t.Fatalf("no finite bounds: got %v, want 0", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatalf("mismatched counts length must panic")
		}
	}()
	BucketQuantile(bounds, []uint64{1, 2}, 0.5)
}

func TestLatencyBoundsShape(t *testing.T) {
	bs := LatencyBounds()
	if len(bs) != 20 {
		t.Fatalf("got %d bounds", len(bs))
	}
	for i := 1; i < len(bs); i++ {
		if bs[i] <= bs[i-1] {
			t.Fatalf("bounds not increasing at %d", i)
		}
	}
	if bs[0] != 100e-6 {
		t.Fatalf("first bound = %v", bs[0])
	}
}

// TestConcurrency exercises every metric type from many goroutines; run
// with -race.
func TestConcurrency(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c", "c")
	g := r.Gauge("g", "g")
	h := r.Histogram("h", "h", nil)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(0.001)
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 || g.Value() != 8000 || h.Count() != 8000 {
		t.Fatalf("lost updates: c=%d g=%d h=%d", c.Value(), g.Value(), h.Count())
	}
	if math.Abs(h.Sum()-8) > 1e-9 {
		t.Fatalf("histogram sum drifted: %v", h.Sum())
	}
}
