package obs

// trace.go is the dependency-free tracing half of the obs toolkit: spans
// with parent links, monotonic durations and string attributes, collected
// into a bounded in-memory ring of recently finished spans. It is built
// for the characterization pipeline — a model build produces a root span
// with one child per phase and per merged shard — and renders its ring as
// JSON for the /debug/traces admin endpoint.
//
// The tracer is nil-safe throughout: a nil *Tracer starts nil spans, and
// every Span method is a no-op on nil, so instrumented code needs no
// "tracing enabled?" branches.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"time"
)

// defaultTraceCapacity bounds the recent-span ring when NewTracer is
// given a non-positive capacity.
const defaultTraceCapacity = 512

// SpanRecord is one finished span as stored in the ring and rendered by
// the /debug/traces dump. All fields are immutable after End.
type SpanRecord struct {
	TraceID  string    `json:"trace_id"`
	SpanID   string    `json:"span_id"`
	ParentID string    `json:"parent_id,omitempty"`
	Name     string    `json:"name"`
	Start    time.Time `json:"start"`
	// DurationSeconds is measured on the monotonic clock.
	DurationSeconds float64           `json:"duration_seconds"`
	Attrs           map[string]string `json:"attrs,omitempty"`
}

// Span is one in-flight traced operation. Create spans with Tracer.Start
// (or StartAt) and finish them with End; a span records into its tracer's
// ring exactly once, no matter how often End is called.
type Span struct {
	t     *Tracer
	start time.Time

	mu    sync.Mutex
	rec   SpanRecord
	ended bool
}

// Tracer collects finished spans into a bounded ring, newest evicting
// oldest. All methods are safe for concurrent use.
type Tracer struct {
	mu       sync.Mutex
	ring     []SpanRecord // circular buffer, next is the write position
	next     int
	size     int
	capacity int

	started atomic.Uint64
	dropped atomic.Uint64
}

// NewTracer returns a tracer whose ring keeps the most recent `capacity`
// finished spans (<= 0 selects the default of 512).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = defaultTraceCapacity
	}
	return &Tracer{ring: make([]SpanRecord, capacity), capacity: capacity}
}

// SpansStarted returns the number of spans started over the tracer's
// lifetime.
func (t *Tracer) SpansStarted() uint64 {
	if t == nil {
		return 0
	}
	return t.started.Load()
}

// SpansDropped returns the number of finished spans evicted from the ring
// to make room for newer ones.
func (t *Tracer) SpansDropped() uint64 {
	if t == nil {
		return 0
	}
	return t.dropped.Load()
}

// RegisterMetrics wires the tracer's span counters into a metrics
// registry under the given name prefix (e.g. "hdserve"), keeping the obs
// package's two halves self-consistent: trace activity is visible on
// /metrics like every other instrument.
func (t *Tracer) RegisterMetrics(r *Registry, prefix string) {
	r.CounterFunc(prefix+"_trace_spans_started_total",
		"trace spans started", t.SpansStarted)
	r.CounterFunc(prefix+"_trace_spans_dropped_total",
		"finished trace spans evicted from the bounded recent-span ring", t.SpansDropped)
}

// spanCtxKey carries the active span through a context.
type spanCtxKey struct{}

// ContextWithSpan returns ctx carrying the span.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	return context.WithValue(ctx, spanCtxKey{}, s)
}

// SpanFromContext returns the active span, or nil.
func SpanFromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(spanCtxKey{}).(*Span)
	return s
}

// TraceIDFromContext returns the active trace ID, or "".
func TraceIDFromContext(ctx context.Context) string {
	return SpanFromContext(ctx).TraceID()
}

// Start begins a span as a child of the span in ctx (or as a new root
// with a fresh trace ID) and returns a context carrying it. On a nil
// tracer both return values degrade gracefully: the input context and a
// nil span.
func (t *Tracer) Start(ctx context.Context, name string) (context.Context, *Span) {
	return t.StartAt(ctx, name, time.Now())
}

// StartAt is Start with an explicit start time, for callers that detect a
// unit of work only at its end (e.g. a merged shard spans the time since
// the previous merge).
func (t *Tracer) StartAt(ctx context.Context, name string, at time.Time) (context.Context, *Span) {
	if t == nil {
		return ctx, nil
	}
	t.started.Add(1)
	s := &Span{t: t, start: at}
	s.rec.Name = name
	s.rec.Start = at
	s.rec.SpanID = newID()
	if parent := SpanFromContext(ctx); parent != nil {
		s.rec.TraceID = parent.TraceID()
		s.rec.ParentID = parent.SpanID()
	} else {
		s.rec.TraceID = newID() + newID()
	}
	return ContextWithSpan(ctx, s), s
}

// newID returns 8 random bytes as 16 hex digits.
func newID() string {
	return fmt.Sprintf("%016x", rand.Uint64())
}

// TraceID returns the span's trace ID ("" on nil).
func (s *Span) TraceID() string {
	if s == nil {
		return ""
	}
	return s.rec.TraceID
}

// SpanID returns the span's ID ("" on nil).
func (s *Span) SpanID() string {
	if s == nil {
		return ""
	}
	return s.rec.SpanID
}

// SetAttr attaches a string attribute. Later values win on key reuse;
// calls after End are ignored.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ended {
		return
	}
	if s.rec.Attrs == nil {
		s.rec.Attrs = make(map[string]string, 4)
	}
	s.rec.Attrs[key] = value
}

// End finishes the span, stamps its monotonic duration, and records it in
// the tracer's ring. Only the first End has any effect.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	s.rec.DurationSeconds = time.Since(s.start).Seconds()
	rec := s.rec
	s.mu.Unlock()
	s.t.record(rec)
}

func (t *Tracer) record(rec SpanRecord) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.size == t.capacity {
		t.dropped.Add(1)
	} else {
		t.size++
	}
	t.ring[t.next] = rec
	t.next = (t.next + 1) % t.capacity
}

// Snapshot returns the finished spans currently in the ring, newest
// first. The slice is a copy; mutating it does not affect the tracer.
func (t *Tracer) Snapshot() []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SpanRecord, 0, t.size)
	for i := 1; i <= t.size; i++ {
		out = append(out, t.ring[(t.next-i+t.capacity)%t.capacity])
	}
	return out
}

// TraceDump is the JSON shape of the /debug/traces endpoint.
type TraceDump struct {
	SpansStarted uint64       `json:"spans_started"`
	SpansDropped uint64       `json:"spans_dropped"`
	Spans        []SpanRecord `json:"spans"`
}

// Dump returns the tracer's state for serialization.
func (t *Tracer) Dump() TraceDump {
	return TraceDump{
		SpansStarted: t.SpansStarted(),
		SpansDropped: t.SpansDropped(),
		Spans:        t.Snapshot(),
	}
}

// WriteJSON writes the recent-span dump as indented JSON.
func (t *Tracer) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t.Dump())
}
