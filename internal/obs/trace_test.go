package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSpanParentChild(t *testing.T) {
	tr := NewTracer(16)
	ctx, root := tr.Start(context.Background(), "request")
	if root.TraceID() == "" || root.SpanID() == "" {
		t.Fatalf("root span lacks IDs: %+v", root.rec)
	}
	_, child := tr.Start(ctx, "characterize")
	if child.TraceID() != root.TraceID() {
		t.Errorf("child trace %s != root trace %s", child.TraceID(), root.TraceID())
	}
	if child.rec.ParentID != root.SpanID() {
		t.Errorf("child parent %s != root span %s", child.rec.ParentID, root.SpanID())
	}
	child.SetAttr("shard", "3")
	child.End()
	root.End()

	spans := tr.Snapshot()
	if len(spans) != 2 {
		t.Fatalf("snapshot has %d spans, want 2", len(spans))
	}
	// Newest first: root ended last.
	if spans[0].Name != "request" || spans[1].Name != "characterize" {
		t.Errorf("snapshot order/names wrong: %q, %q", spans[0].Name, spans[1].Name)
	}
	if spans[1].Attrs["shard"] != "3" {
		t.Errorf("attr lost: %v", spans[1].Attrs)
	}
	if got := tr.SpansStarted(); got != 2 {
		t.Errorf("started = %d, want 2", got)
	}
}

func TestSpanEndIsIdempotent(t *testing.T) {
	tr := NewTracer(8)
	_, s := tr.Start(context.Background(), "once")
	s.End()
	s.End()
	s.End()
	if got := len(tr.Snapshot()); got != 1 {
		t.Fatalf("span recorded %d times, want 1", got)
	}
	s.SetAttr("late", "x") // after End: ignored, not racy
	if attrs := tr.Snapshot()[0].Attrs; attrs != nil {
		t.Errorf("post-End attr leaked into record: %v", attrs)
	}
}

func TestRingBoundsAndDropCounter(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 10; i++ {
		_, s := tr.Start(context.Background(), "s")
		s.End()
	}
	if got := len(tr.Snapshot()); got != 4 {
		t.Fatalf("ring holds %d spans, want 4", got)
	}
	if got := tr.SpansDropped(); got != 6 {
		t.Errorf("dropped = %d, want 6", got)
	}
	if got := tr.SpansStarted(); got != 10 {
		t.Errorf("started = %d, want 10", got)
	}
}

func TestNilTracerAndSpanAreSafe(t *testing.T) {
	var tr *Tracer
	ctx, s := tr.Start(context.Background(), "noop")
	if s != nil {
		t.Fatalf("nil tracer returned a span")
	}
	s.SetAttr("k", "v")
	s.End()
	if s.TraceID() != "" || s.SpanID() != "" {
		t.Errorf("nil span has IDs")
	}
	if got := SpanFromContext(ctx); got != nil {
		t.Errorf("nil tracer stored a span in ctx")
	}
	if tr.Snapshot() != nil || tr.SpansStarted() != 0 || tr.SpansDropped() != 0 {
		t.Errorf("nil tracer reports state")
	}
}

func TestStartAtBackdatesDuration(t *testing.T) {
	tr := NewTracer(4)
	_, s := tr.StartAt(context.Background(), "shard", time.Now().Add(-time.Second))
	s.End()
	if d := tr.Snapshot()[0].DurationSeconds; d < 0.9 {
		t.Errorf("backdated span duration %.3fs, want ~1s", d)
	}
}

func TestTracerMetricsRegistration(t *testing.T) {
	tr := NewTracer(2)
	for i := 0; i < 3; i++ {
		_, s := tr.Start(context.Background(), "s")
		s.End()
	}
	reg := NewRegistry()
	tr.RegisterMetrics(reg, "hdserve")
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"hdserve_trace_spans_started_total 3",
		"hdserve_trace_spans_dropped_total 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestTraceDumpJSON(t *testing.T) {
	tr := NewTracer(8)
	ctx, root := tr.Start(context.Background(), "build")
	_, child := tr.Start(ctx, "phase")
	child.End()
	root.End()
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var dump TraceDump
	if err := json.Unmarshal(buf.Bytes(), &dump); err != nil {
		t.Fatalf("dump is not valid JSON: %v\n%s", err, buf.String())
	}
	if dump.SpansStarted != 2 || len(dump.Spans) != 2 {
		t.Fatalf("dump = %+v", dump)
	}
	if dump.Spans[1].ParentID != dump.Spans[0].SpanID {
		t.Errorf("parent link lost in dump")
	}
}

// TestTracerConcurrency hammers the ring from many goroutines; run with
// -race.
func TestTracerConcurrency(t *testing.T) {
	tr := NewTracer(32)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx := context.Background()
			for i := 0; i < 500; i++ {
				c, s := tr.Start(ctx, "op")
				_, inner := tr.Start(c, "inner")
				inner.SetAttr("i", "1")
				inner.End()
				s.End()
			}
		}()
	}
	wg.Wait()
	if got := tr.SpansStarted(); got != 8000 {
		t.Fatalf("started = %d, want 8000", got)
	}
	if got := len(tr.Snapshot()); got != 32 {
		t.Fatalf("ring size = %d, want 32", got)
	}
	if got := tr.SpansDropped(); got != 8000-32 {
		t.Fatalf("dropped = %d, want %d", got, 8000-32)
	}
}

func TestLoggerFormats(t *testing.T) {
	var buf bytes.Buffer
	lg := NewLogger(&buf, "json", slog.LevelInfo)
	lg.Info("hello", "k", "v")
	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("json logger output not JSON: %v\n%s", err, buf.String())
	}
	if rec["msg"] != "hello" || rec["k"] != "v" {
		t.Errorf("json record = %v", rec)
	}

	buf.Reset()
	NewLogger(&buf, "text", slog.LevelInfo).Info("hello")
	if !strings.Contains(buf.String(), "msg=hello") {
		t.Errorf("text logger output: %s", buf.String())
	}

	buf.Reset()
	NewLogger(&buf, "bogus", slog.LevelInfo).Info("fallback")
	if !strings.Contains(buf.String(), "msg=fallback") {
		t.Errorf("unknown format must fall back to text, got: %s", buf.String())
	}

	for format, ok := range map[string]bool{"": true, "text": true, "json": true, "yaml": false} {
		if got := ValidLogFormat(format); got != ok {
			t.Errorf("ValidLogFormat(%q) = %v, want %v", format, got, ok)
		}
	}
}

func TestNopLoggerDiscards(t *testing.T) {
	lg := NopLogger()
	lg.Info("nothing happens")
	if lg.Enabled(context.Background(), slog.LevelError) {
		t.Errorf("nop logger claims to be enabled")
	}
}

func TestTraceAttrs(t *testing.T) {
	tr := NewTracer(4)
	ctx, s := tr.Start(context.Background(), "req")
	ctx = ContextWithRequestID(ctx, "req-1")
	attrs := TraceAttrs(ctx)
	got := map[string]string{}
	for _, a := range attrs {
		got[a.Key] = a.Value.String()
	}
	if got["trace_id"] != s.TraceID() || got["span_id"] != s.SpanID() || got["request_id"] != "req-1" {
		t.Errorf("TraceAttrs = %v", got)
	}
	if RequestIDFromContext(ctx) != "req-1" {
		t.Errorf("request id lost")
	}
	if len(TraceAttrs(context.Background())) != 0 {
		t.Errorf("bare context produced attrs")
	}
	if id := NewRequestID(); len(id) != 16 {
		t.Errorf("NewRequestID() = %q", id)
	}
}
