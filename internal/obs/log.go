package obs

// log.go is the structured-logging half of the obs toolkit: thin
// constructors over log/slog so every binary picks its output format the
// same way (-log-format text|json), plus helpers that stitch trace and
// request IDs into log records.

import (
	"context"
	"io"
	"log/slog"
)

// NewLogger returns a slog logger writing to w in the given format:
// "json" selects slog.JSONHandler, "text" (or "") slog.TextHandler.
// Unknown formats fall back to text — a logging flag typo must not take
// down a serving binary.
func NewLogger(w io.Writer, format string, level slog.Level) *slog.Logger {
	opts := &slog.HandlerOptions{Level: level}
	switch format {
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts))
	default:
		return slog.New(slog.NewTextHandler(w, opts))
	}
}

// ValidLogFormat reports whether a -log-format flag value is recognized.
func ValidLogFormat(format string) bool {
	switch format {
	case "", "text", "json":
		return true
	}
	return false
}

// NopLogger returns a logger that discards every record (used when no
// logger is configured, so call sites never nil-check).
func NopLogger() *slog.Logger { return slog.New(nopHandler{}) }

// nopHandler drops everything. slog.DiscardHandler only exists from Go
// 1.24, and this module supports 1.22.
type nopHandler struct{}

func (nopHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (nopHandler) Handle(context.Context, slog.Record) error { return nil }
func (nopHandler) WithAttrs([]slog.Attr) slog.Handler        { return nopHandler{} }
func (nopHandler) WithGroup(string) slog.Handler             { return nopHandler{} }

// requestIDKey carries a request ID through a context.
type requestIDKey struct{}

// ContextWithRequestID returns ctx carrying the request ID.
func ContextWithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, requestIDKey{}, id)
}

// RequestIDFromContext returns the request ID, or "".
func RequestIDFromContext(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey{}).(string)
	return id
}

// NewRequestID mints a fresh 16-hex-digit request ID.
func NewRequestID() string { return newID() }

// TraceAttrs returns the log attributes identifying the context's trace
// and request, omitting absent ones. Append them to access-log records so
// a log line can be joined with its span in /debug/traces.
func TraceAttrs(ctx context.Context) []slog.Attr {
	var attrs []slog.Attr
	if s := SpanFromContext(ctx); s != nil {
		attrs = append(attrs,
			slog.String("trace_id", s.TraceID()),
			slog.String("span_id", s.SpanID()))
	}
	if id := RequestIDFromContext(ctx); id != "" {
		attrs = append(attrs, slog.String("request_id", id))
	}
	return attrs
}
