package bdd

import (
	"testing"

	"hdpower/internal/dwlib"
	"hdpower/internal/netlist"
)

func TestEquivalentAdderArchitectures(t *testing.T) {
	// Ripple, CLA and carry-select adders implement the same function;
	// prove it formally at several widths.
	for _, w := range []int{4, 8, 12} {
		ripple := dwlib.RippleAdder(w)
		for _, other := range []*netlist.Netlist{dwlib.CLAAdder(w), dwlib.CarrySelectAdder(w)} {
			eq, cex, err := Equivalent(ripple, other)
			if err != nil {
				t.Fatal(err)
			}
			if !eq {
				t.Errorf("width %d: %s differs from ripple at %+v", w, other.Name, cex)
			}
		}
	}
}

func TestEquivalentDetectsDifference(t *testing.T) {
	// An adder and a subtractor share port structure but differ; the
	// checker must find a concrete counterexample. Rename the output bus
	// so the comparison reaches the function check.
	a := dwlib.RippleAdder(4)
	b := buildSubtractorWithAdderPorts(4)
	eq, cex, err := Equivalent(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if eq {
		t.Fatal("adder and subtractor reported equivalent")
	}
	if cex == nil {
		t.Fatal("no counterexample returned")
	}
	if len(cex.Assignment) != 8 {
		t.Errorf("counterexample width %d", len(cex.Assignment))
	}
}

// buildSubtractorWithAdderPorts builds a - b but labels the outputs like
// the adder so only the logic differs.
func buildSubtractorWithAdderPorts(m int) *netlist.Netlist {
	n := netlist.New("sub_as_add")
	a := n.AddInputBus("a", m)
	b := n.AddInputBus("b", m)
	nb := make([]netlist.NetID, m)
	for i, id := range b.Nets {
		nb[i] = n.Not(id)
	}
	sum := make([]netlist.NetID, m)
	carry := n.Const(true)
	for i := 0; i < m; i++ {
		sum[i], carry = n.FullAdder(a.Nets[i], nb[i], carry)
	}
	n.MarkOutputBus("sum", sum)
	n.MarkOutputBus("cout", []netlist.NetID{carry})
	return n
}

func TestEquivalentRejectsMismatchedPorts(t *testing.T) {
	if _, _, err := Equivalent(dwlib.RippleAdder(4), dwlib.RippleAdder(5)); err == nil {
		t.Error("width mismatch accepted")
	}
	if _, _, err := Equivalent(dwlib.RippleAdder(4), dwlib.Comparator(4)); err == nil {
		t.Error("bus name mismatch accepted")
	}
}

func TestSweepProvedEquivalent(t *testing.T) {
	// Formal proof that Sweep preserves function on a constant-laden
	// circuit (beyond the sampled checks in the netlist package).
	n := netlist.New("laden")
	a := n.AddInputBus("a", 3)
	one := n.Const(true)
	zero := n.Const(false)
	y0 := n.And(a.Nets[0], one)
	y1 := n.Xor(n.Or(a.Nets[1], zero), a.Nets[2])
	y2 := n.Mux(a.Nets[0], a.Nets[1], a.Nets[2])
	n.MarkOutputBus("y", []netlist.NetID{y0, y1, y2})

	swept, err := n.Sweep()
	if err != nil {
		t.Fatal(err)
	}
	eq, cex, err := Equivalent(n, swept)
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Errorf("sweep changed function at %+v", cex)
	}
}

func TestMultiplierEquivalenceSmall(t *testing.T) {
	// Squarer(a) must equal CSAMult(a, a) with both ports tied — proved
	// by constructing a wrapper feeding one input to both multiplier
	// ports.
	const m = 4
	squarer := dwlib.Squarer(m)

	wrapper := netlist.New("mult_as_squarer")
	a := wrapper.AddInputBus("a", m)
	// Re-instantiate the multiplier structure inline: partial products
	// with both ports = a. Easiest faithful route: build CSAMult-like
	// inline via dwlib is not composable, so check against direct BDD of
	// the square function instead.
	_ = a
	mgr := New(m)
	fs, err := FromNetlist(mgr, squarer)
	if err != nil {
		t.Fatal(err)
	}
	bits := fs["y"]
	for v := uint64(0); v < 1<<m; v++ {
		in := make([]bool, m)
		for i := range in {
			in[i] = v>>uint(i)&1 == 1
		}
		want := v * v
		for i, f := range bits {
			if mgr.Eval(f, in) != (want>>uint(i)&1 == 1) {
				t.Fatalf("square(%d) bit %d wrong in BDD", v, i)
			}
		}
	}
}
