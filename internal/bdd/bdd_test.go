package bdd

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTerminals(t *testing.T) {
	m := New(2)
	if m.Not(True) != False || m.Not(False) != True {
		t.Error("terminal negation broken")
	}
	if m.And(True, False) != False || m.Or(True, False) != True {
		t.Error("terminal connectives broken")
	}
}

func TestVarRange(t *testing.T) {
	m := New(2)
	defer func() {
		if recover() == nil {
			t.Fatal("Var(2) accepted")
		}
	}()
	m.Var(2)
}

func TestCanonicityIdenticalFunctions(t *testing.T) {
	// (a ∧ b) built two ways must be the same node.
	m := New(2)
	a, b := m.Var(0), m.Var(1)
	f1 := m.And(a, b)
	f2 := m.Not(m.Or(m.Not(a), m.Not(b))) // De Morgan
	if f1 != f2 {
		t.Errorf("canonical forms differ: %d vs %d", f1, f2)
	}
	// a ⊕ b == (a ∧ ¬b) ∨ (¬a ∧ b)
	x1 := m.Xor(a, b)
	x2 := m.Or(m.And(a, m.Not(b)), m.And(m.Not(a), b))
	if x1 != x2 {
		t.Errorf("xor forms differ")
	}
}

func TestEvalTruthTable(t *testing.T) {
	m := New(3)
	a, b, c := m.Var(0), m.Var(1), m.Var(2)
	maj := m.Or(m.Or(m.And(a, b), m.And(a, c)), m.And(b, c))
	for v := 0; v < 8; v++ {
		in := []bool{v&1 == 1, v&2 == 2, v&4 == 4}
		want := (btoi(in[0]) + btoi(in[1]) + btoi(in[2])) >= 2
		if got := m.Eval(maj, in); got != want {
			t.Errorf("maj(%v) = %v", in, got)
		}
	}
}

func btoi(b bool) int {
	if b {
		return 1
	}
	return 0
}

func TestSatCount(t *testing.T) {
	m := New(4)
	a, b := m.Var(0), m.Var(1)
	cases := []struct {
		f    Ref
		want float64
	}{
		{True, 16},
		{False, 0},
		{a, 8},
		{m.And(a, b), 4},
		{m.Or(a, b), 12},
		{m.Xor(a, b), 8},
		{m.Var(3), 8},
	}
	for i, c := range cases {
		if got := m.SatCount(c.f); got != c.want {
			t.Errorf("case %d: SatCount = %v, want %v", i, got, c.want)
		}
	}
}

func TestAnySat(t *testing.T) {
	m := New(3)
	f := m.And(m.Var(0), m.Not(m.Var(2)))
	asg, ok := m.AnySat(f)
	if !ok {
		t.Fatal("satisfiable function reported unsat")
	}
	if !m.Eval(f, asg) {
		t.Errorf("AnySat returned non-satisfying %v", asg)
	}
	if _, ok := m.AnySat(False); ok {
		t.Error("False reported satisfiable")
	}
}

func TestMux(t *testing.T) {
	m := New(3)
	lo, hi, sel := m.Var(0), m.Var(1), m.Var(2)
	f := m.Mux(lo, hi, sel)
	for v := 0; v < 8; v++ {
		in := []bool{v&1 == 1, v&2 == 2, v&4 == 4}
		want := in[0]
		if in[2] {
			want = in[1]
		}
		if m.Eval(f, in) != want {
			t.Errorf("mux(%v) wrong", in)
		}
	}
}

// Property: random expression pairs built identically in two managers
// yield structurally identical evaluation behavior; and ITE respects its
// defining identity.
func TestITEDefinition(t *testing.T) {
	m := New(6)
	rng := rand.New(rand.NewSource(5))
	randFunc := func() Ref {
		f := m.Var(rng.Intn(6))
		for i := 0; i < 5; i++ {
			g := m.Var(rng.Intn(6))
			switch rng.Intn(4) {
			case 0:
				f = m.And(f, g)
			case 1:
				f = m.Or(f, g)
			case 2:
				f = m.Xor(f, g)
			case 3:
				f = m.Not(f)
			}
		}
		return f
	}
	check := func(seed int64) bool {
		f, g, h := randFunc(), randFunc(), randFunc()
		ite := m.ITE(f, g, h)
		expect := m.Or(m.And(f, g), m.And(m.Not(f), h))
		return ite == expect
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestNodeTableGrowsModestly(t *testing.T) {
	// A 16-variable parity function has a linear-size BDD.
	m := New(16)
	f := m.Var(0)
	for i := 1; i < 16; i++ {
		f = m.Xor(f, m.Var(i))
	}
	// The node table retains intermediate results (no GC); the reachable
	// parity BDD itself is ~2 nodes per level. Bound the total table to
	// catch exponential blowup, not garbage.
	if m.NumNodes() > 1000 {
		t.Errorf("parity BDD table used %d nodes", m.NumNodes())
	}
	if got := m.SatCount(f); got != 32768 {
		t.Errorf("parity SatCount = %v", got)
	}
}
