// Package bdd implements reduced ordered binary decision diagrams
// (ROBDDs) with hash-consing and an ITE-based apply algorithm — the
// classic canonical representation for combinational logic. The
// repository uses it to *prove* functional equivalence of netlists
// (generator vs generator, original vs swept) instead of sampling them;
// see the Equiv helper in this package.
package bdd

import (
	"fmt"
)

// Ref references a BDD node within one Manager. The constants False and
// True are the terminal nodes; all other refs are indices into the
// manager's node table.
type Ref int32

// Terminal nodes.
const (
	False Ref = 0
	True  Ref = 1
)

type node struct {
	level  int32 // variable index; terminals use a sentinel level
	lo, hi Ref
}

const terminalLevel = int32(1) << 30

// Manager owns a node table and computed-table for one variable order.
// Not safe for concurrent use.
type Manager struct {
	numVars int
	nodes   []node
	unique  map[node]Ref
	iteMemo map[[3]Ref]Ref
}

// New creates a manager for the given number of input variables.
// Variable i (0-based) is tested at level i: lower indices are closer to
// the root.
func New(numVars int) *Manager {
	if numVars < 0 {
		panic(fmt.Sprintf("bdd: negative variable count %d", numVars))
	}
	m := &Manager{
		numVars: numVars,
		nodes: []node{
			{level: terminalLevel}, // False
			{level: terminalLevel}, // True
		},
		unique:  make(map[node]Ref),
		iteMemo: make(map[[3]Ref]Ref),
	}
	return m
}

// NumVars returns the number of declared variables.
func (m *Manager) NumVars() int { return m.numVars }

// NumNodes returns the size of the node table (including terminals).
func (m *Manager) NumNodes() int { return len(m.nodes) }

// Var returns the BDD of input variable i.
func (m *Manager) Var(i int) Ref {
	if i < 0 || i >= m.numVars {
		panic(fmt.Sprintf("bdd: variable %d out of range [0,%d)", i, m.numVars))
	}
	return m.mk(int32(i), False, True)
}

// mk returns the canonical node (level, lo, hi), applying the ROBDD
// reduction rules.
func (m *Manager) mk(level int32, lo, hi Ref) Ref {
	if lo == hi {
		return lo
	}
	key := node{level: level, lo: lo, hi: hi}
	if r, ok := m.unique[key]; ok {
		return r
	}
	m.nodes = append(m.nodes, key)
	r := Ref(len(m.nodes) - 1)
	m.unique[key] = r
	return r
}

func (m *Manager) level(r Ref) int32 { return m.nodes[r].level }

// ITE computes if-then-else(f, g, h) — the universal connective all
// boolean operators reduce to.
func (m *Manager) ITE(f, g, h Ref) Ref {
	// Terminal cases.
	switch {
	case f == True:
		return g
	case f == False:
		return h
	case g == h:
		return g
	case g == True && h == False:
		return f
	}
	key := [3]Ref{f, g, h}
	if r, ok := m.iteMemo[key]; ok {
		return r
	}
	top := m.level(f)
	if l := m.level(g); l < top {
		top = l
	}
	if l := m.level(h); l < top {
		top = l
	}
	f0, f1 := m.cofactors(f, top)
	g0, g1 := m.cofactors(g, top)
	h0, h1 := m.cofactors(h, top)
	lo := m.ITE(f0, g0, h0)
	hi := m.ITE(f1, g1, h1)
	r := m.mk(top, lo, hi)
	m.iteMemo[key] = r
	return r
}

func (m *Manager) cofactors(r Ref, level int32) (lo, hi Ref) {
	n := m.nodes[r]
	if n.level != level {
		return r, r
	}
	return n.lo, n.hi
}

// Not returns ¬f.
func (m *Manager) Not(f Ref) Ref { return m.ITE(f, False, True) }

// And returns f ∧ g.
func (m *Manager) And(f, g Ref) Ref { return m.ITE(f, g, False) }

// Or returns f ∨ g.
func (m *Manager) Or(f, g Ref) Ref { return m.ITE(f, True, g) }

// Xor returns f ⊕ g.
func (m *Manager) Xor(f, g Ref) Ref { return m.ITE(f, m.Not(g), g) }

// Xnor returns ¬(f ⊕ g).
func (m *Manager) Xnor(f, g Ref) Ref { return m.ITE(f, g, m.Not(g)) }

// Mux returns sel ? hi : lo.
func (m *Manager) Mux(lo, hi, sel Ref) Ref { return m.ITE(sel, hi, lo) }

// Eval evaluates f under a complete variable assignment.
func (m *Manager) Eval(f Ref, assignment []bool) bool {
	if len(assignment) != m.numVars {
		panic(fmt.Sprintf("bdd: assignment has %d vars, want %d", len(assignment), m.numVars))
	}
	for f != True && f != False {
		n := m.nodes[f]
		if assignment[n.level] {
			f = n.hi
		} else {
			f = n.lo
		}
	}
	return f == True
}

// SatCount returns the number of satisfying assignments of f over all
// declared variables.
func (m *Manager) SatCount(f Ref) float64 {
	// memo[r] counts assignments over variables [level(r), numVars).
	memo := make(map[Ref]float64)
	pow2 := func(k int32) float64 {
		s := 1.0
		for ; k > 0; k-- {
			s *= 2
		}
		return s
	}
	var count func(r Ref, level int32) float64
	count = func(r Ref, level int32) float64 {
		if r == False {
			return 0
		}
		if r == True {
			return pow2(int32(m.numVars) - level)
		}
		n := m.nodes[r]
		scale := pow2(n.level - level) // variables skipped between levels are free
		if c, ok := memo[r]; ok {
			return scale * c
		}
		c := count(n.lo, n.level+1) + count(n.hi, n.level+1)
		memo[r] = c
		return scale * c
	}
	return count(f, 0)
}

// AnySat returns one satisfying assignment of f, or ok=false for the
// constant-false function. Unconstrained variables are reported false.
func (m *Manager) AnySat(f Ref) (assignment []bool, ok bool) {
	if f == False {
		return nil, false
	}
	assignment = make([]bool, m.numVars)
	for f != True {
		n := m.nodes[f]
		if n.lo != False {
			f = n.lo
		} else {
			assignment[n.level] = true
			f = n.hi
		}
	}
	return assignment, true
}
