package bdd

import (
	"fmt"

	"hdpower/internal/cells"
	"hdpower/internal/netlist"
)

// FromNetlist builds the BDDs of every output bus of a combinational
// netlist. Input variable i of the manager corresponds to bit i of the
// netlist's flattened input vector (nl.InputNets() order), so two
// netlists with identical port layout share a variable space. The
// returned map is keyed by output bus name; each slice is LSB first.
func FromNetlist(m *Manager, nl *netlist.Netlist) (map[string][]Ref, error) {
	if err := nl.Finalize(); err != nil {
		return nil, err
	}
	if nl.NumInputBits() != m.NumVars() {
		return nil, fmt.Errorf("bdd: netlist has %d input bits, manager %d vars",
			nl.NumInputBits(), m.NumVars())
	}
	refs := make([]Ref, nl.NumNets())
	assigned := make([]bool, nl.NumNets())
	for i, id := range nl.InputNets() {
		refs[id] = m.Var(i)
		assigned[id] = true
	}
	for id := 0; id < nl.NumNets(); id++ {
		if v, isC := nl.IsConst(netlist.NetID(id)); isC {
			if v {
				refs[id] = True
			} else {
				refs[id] = False
			}
			assigned[id] = true
		}
	}
	for _, g := range nl.TopoOrder() {
		ins := nl.GateInputs(g)
		for _, in := range ins {
			if !assigned[in] {
				return nil, fmt.Errorf("bdd: gate %d input net %d unassigned", g, in)
			}
		}
		out := nl.GateOutput(g)
		refs[out] = m.gate(nl.GateKind(g), ins, refs)
		assigned[out] = true
	}
	result := make(map[string][]Ref)
	for _, b := range nl.Outputs() {
		row := make([]Ref, b.Width())
		for i, id := range b.Nets {
			if !assigned[id] {
				return nil, fmt.Errorf("bdd: output net %d unassigned", id)
			}
			row[i] = refs[id]
		}
		result[b.Name] = row
	}
	return result, nil
}

// gate builds the BDD of one gate from its input BDDs.
func (m *Manager) gate(kind cells.Kind, ins []netlist.NetID, refs []Ref) Ref {
	a := func(i int) Ref { return refs[ins[i]] }
	switch kind {
	case cells.Buf:
		return a(0)
	case cells.Inv:
		return m.Not(a(0))
	case cells.And2:
		return m.And(a(0), a(1))
	case cells.And3:
		return m.And(m.And(a(0), a(1)), a(2))
	case cells.Or2:
		return m.Or(a(0), a(1))
	case cells.Or3:
		return m.Or(m.Or(a(0), a(1)), a(2))
	case cells.Nand2:
		return m.Not(m.And(a(0), a(1)))
	case cells.Nand3:
		return m.Not(m.And(m.And(a(0), a(1)), a(2)))
	case cells.Nor2:
		return m.Not(m.Or(a(0), a(1)))
	case cells.Nor3:
		return m.Not(m.Or(m.Or(a(0), a(1)), a(2)))
	case cells.Xor2:
		return m.Xor(a(0), a(1))
	case cells.Xor3:
		return m.Xor(m.Xor(a(0), a(1)), a(2))
	case cells.Xnor2:
		return m.Xnor(a(0), a(1))
	case cells.Mux2:
		return m.Mux(a(0), a(1), a(2))
	case cells.Aoi21:
		return m.Not(m.Or(m.And(a(0), a(1)), a(2)))
	case cells.Oai21:
		return m.Not(m.And(m.Or(a(0), a(1)), a(2)))
	}
	panic(fmt.Sprintf("bdd: unhandled gate kind %v", kind))
}

// Counterexample is a distinguishing input found by Equivalent.
type Counterexample struct {
	// Assignment is the input vector (flattened input-bit order).
	Assignment []bool
	// Bus and Bit locate the differing output.
	Bus string
	Bit int
}

// Equivalent formally checks that two netlists with identical port
// structure compute identical functions on every output bus. On
// inequivalence it returns a concrete distinguishing input.
func Equivalent(a, b *netlist.Netlist) (bool, *Counterexample, error) {
	if a.NumInputBits() != b.NumInputBits() {
		return false, nil, fmt.Errorf("bdd: input widths differ: %d vs %d",
			a.NumInputBits(), b.NumInputBits())
	}
	m := New(a.NumInputBits())
	fa, err := FromNetlist(m, a)
	if err != nil {
		return false, nil, err
	}
	fb, err := FromNetlist(m, b)
	if err != nil {
		return false, nil, err
	}
	if len(fa) != len(fb) {
		return false, nil, fmt.Errorf("bdd: output bus counts differ: %d vs %d", len(fa), len(fb))
	}
	for name, rowA := range fa {
		rowB, ok := fb[name]
		if !ok {
			return false, nil, fmt.Errorf("bdd: output bus %q missing in second netlist", name)
		}
		if len(rowA) != len(rowB) {
			return false, nil, fmt.Errorf("bdd: output bus %q widths differ: %d vs %d",
				name, len(rowA), len(rowB))
		}
		for i := range rowA {
			diff := m.Xor(rowA[i], rowB[i])
			if diff == False {
				continue
			}
			assignment, _ := m.AnySat(diff)
			return false, &Counterexample{Assignment: assignment, Bus: name, Bit: i}, nil
		}
	}
	return true, nil, nil
}
