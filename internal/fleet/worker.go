package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"net/http"
	"time"

	"hdpower/internal/atomicio"
	"hdpower/internal/core"
	"hdpower/internal/faultpoint"
	"hdpower/internal/obs"
	"hdpower/internal/power"
)

// Worker defaults.
const (
	defaultRetryBase    = 100 * time.Millisecond
	defaultRetryCap     = 3 * time.Second
	defaultPollInterval = 250 * time.Millisecond
	maxUploadAttempts   = 6
)

// WorkerConfig shapes a fleet worker.
type WorkerConfig struct {
	// Coordinator is the coordinator's base URL, e.g. "http://host:8080".
	Coordinator string
	// Name identifies this worker in leases and logs; it must be unique
	// within the fleet (two workers sharing a name can fence each other's
	// leases).
	Name string
	// Workers is the local shard parallelism per range (default: core's
	// worker default).
	Workers int
	// RetryBase/RetryCap bound the capped-jitter backoff on failed RPCs
	// (defaults 100ms / 3s).
	RetryBase time.Duration
	RetryCap  time.Duration
	// PollInterval is the idle re-poll cadence when the coordinator has
	// nothing to lease (default 250ms).
	PollInterval time.Duration
	// Client is the HTTP client for coordinator RPCs (default: a client
	// with a 30s timeout).
	Client *http.Client
	// Logger receives lease lifecycle events (default: discard).
	Logger *slog.Logger
}

func (c *WorkerConfig) setDefaults() error {
	if c.Coordinator == "" {
		return fmt.Errorf("fleet: worker needs a coordinator URL")
	}
	if c.Name == "" {
		return fmt.Errorf("fleet: worker needs a name")
	}
	if c.RetryBase <= 0 {
		c.RetryBase = defaultRetryBase
	}
	if c.RetryCap <= 0 {
		c.RetryCap = defaultRetryCap
	}
	if c.PollInterval <= 0 {
		c.PollInterval = defaultPollInterval
	}
	if c.Client == nil {
		c.Client = &http.Client{Timeout: 30 * time.Second}
	}
	if c.Logger == nil {
		c.Logger = obs.NopLogger()
	}
	return nil
}

// jobRuntime caches the rebuilt simulation engine for one job
// fingerprint, so every lease of the same build reuses the netlist.
type jobRuntime struct {
	name  string
	meter *power.Meter
	opt   core.CharacterizeOptions
}

// Worker pulls shard-range leases from a coordinator, computes them with
// core.CharacterizeShardRange, and uploads checksummed partial
// accumulators. It is crash-only by design: killing a worker at any
// point loses at most the ranges it held, which the coordinator
// re-leases after their TTL.
type Worker struct {
	cfg  WorkerConfig
	log  *slog.Logger
	jobs map[string]*jobRuntime // fingerprint -> cached engine
}

// NewWorker validates the config and returns a worker ready to Run.
func NewWorker(cfg WorkerConfig) (*Worker, error) {
	if err := cfg.setDefaults(); err != nil {
		return nil, err
	}
	return &Worker{cfg: cfg, log: cfg.Logger, jobs: make(map[string]*jobRuntime)}, nil
}

// Run is the worker's main loop: lease, compute, upload, repeat, until
// ctx is cancelled. Transient coordinator failures (refused dials, 5xx,
// torn responses) are retried with capped-jitter backoff; Run only
// returns ctx.Err().
func (w *Worker) Run(ctx context.Context) error {
	attempt := 0
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		resp, err := w.lease(ctx)
		if err != nil {
			w.log.Debug("lease RPC failed; backing off", "err", err, "attempt", attempt)
			if !sleepCtx(ctx, backoff(w.cfg.RetryBase, w.cfg.RetryCap, attempt)) {
				return ctx.Err()
			}
			attempt++
			continue
		}
		attempt = 0
		switch resp.Status {
		case statusLease:
			if resp.Job == nil || resp.Lease == nil {
				w.log.Warn("malformed lease response; ignoring")
				continue
			}
			w.execute(ctx, *resp.Job, *resp.Lease)
		default: // wait, idle
			d := time.Duration(resp.RetryMs) * time.Millisecond
			if d <= 0 {
				d = w.cfg.PollInterval
			}
			// Jitter the poll so a fleet of workers doesn't thundering-herd
			// the coordinator.
			if !sleepCtx(ctx, d/2+time.Duration(rand.Int63n(int64(d)))) {
				return ctx.Err()
			}
		}
	}
}

// execute computes one lease and uploads the results. Failures are
// absorbed: a revoked or expired lease is simply abandoned (the
// coordinator has already re-leased it), and an unuploadable one expires
// on its own.
func (w *Worker) execute(ctx context.Context, job JobSpec, ls Lease) {
	rt, err := w.runtime(job)
	if err != nil {
		w.log.Error("lease refused: cannot reconstruct job", "job", job.ID, "err", err)
		sleepCtx(ctx, w.cfg.PollInterval)
		return
	}
	w.log.Debug("lease accepted", "job", job.ID, "phase", ls.Phase,
		"start", ls.Start, "end", ls.End, "epoch", ls.Epoch)

	// Heartbeat for the duration of the compute; a revocation (the
	// coordinator re-leased this range) cancels the compute so the worker
	// moves on instead of burning CPU on fenced-off work.
	computeCtx, cancel := context.WithCancel(ctx)
	hbDone := make(chan struct{})
	go w.heartbeatLoop(computeCtx, cancel, ls, hbDone)

	opt := rt.opt
	opt.Interrupt = computeCtx.Err
	results, err := core.CharacterizeShardRange(rt.meter, rt.name, opt, ls.Phase, ls.Start, ls.End)
	cancel()
	<-hbDone
	if err != nil {
		w.log.Debug("lease abandoned mid-compute", "job", job.ID, "start", ls.Start, "err", err)
		return
	}
	w.upload(ctx, ls, results)
}

// heartbeatLoop extends the lease every TTL/3 until the compute ends or
// the coordinator revokes the lease. RPC errors are tolerated — the TTL
// absorbs a few dropped beats — and only an explicit revocation cancels.
func (w *Worker) heartbeatLoop(ctx context.Context, cancel context.CancelFunc, ls Lease, done chan<- struct{}) {
	defer close(done)
	interval := time.Duration(ls.TTLMs) * time.Millisecond / 3
	if interval <= 0 {
		interval = time.Second
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
		}
		var resp statusResponse
		err := w.post(ctx, PathHeartbeat, mustJSON(heartbeatRequest{
			Worker: w.cfg.Name, JobID: ls.JobID, Phase: ls.Phase, Start: ls.Start, Epoch: ls.Epoch,
		}), &resp)
		if err != nil {
			w.log.Debug("heartbeat dropped", "job", ls.JobID, "start", ls.Start, "err", err)
			continue
		}
		if resp.Status == statusRevoked {
			w.log.Debug("lease revoked; abandoning compute", "job", ls.JobID, "start", ls.Start)
			cancel()
			return
		}
	}
}

// upload sends the sealed results, retrying transient failures with
// backoff. A fencing rejection (409/410) abandons the lease — the work
// now belongs to someone else. The fleet.upload fault point tears the
// sealed payload in half before the POST, mirroring the torn-write idiom
// of atomicio.WriteFile, so chaos runs exercise the coordinator's
// checksum rejection and the retry path here.
func (w *Worker) upload(ctx context.Context, ls Lease, results []core.ShardResult) {
	body := mustJSON(uploadPayload{
		Worker: w.cfg.Name, JobID: ls.JobID, Phase: ls.Phase,
		Start: ls.Start, End: ls.End, Epoch: ls.Epoch, Results: results,
	})
	for attempt := 0; attempt < maxUploadAttempts; attempt++ {
		sealed := atomicio.Seal(body)
		if err := faultpoint.Hit("fleet.upload"); err != nil {
			w.log.Warn("upload torn by fault injection", "job", ls.JobID, "start", ls.Start)
			sealed = sealed[:len(sealed)/2]
		}
		code, err := w.postRaw(ctx, PathUpload, sealed)
		switch {
		case err == nil && code == http.StatusOK:
			w.log.Debug("upload accepted", "job", ls.JobID, "start", ls.Start, "end", ls.End)
			return
		case err == nil && (code == http.StatusConflict || code == http.StatusGone):
			w.log.Debug("upload fenced off; abandoning", "job", ls.JobID, "start", ls.Start, "code", code)
			return
		}
		w.log.Debug("upload failed; retrying", "job", ls.JobID, "start", ls.Start,
			"code", code, "err", err, "attempt", attempt)
		if !sleepCtx(ctx, backoff(w.cfg.RetryBase, w.cfg.RetryCap, attempt)) {
			return
		}
	}
	w.log.Warn("upload abandoned after retries; lease will expire and re-lease",
		"job", ls.JobID, "start", ls.Start)
}

// runtime reconstructs (or recalls) the simulation engine for a job and
// verifies its fingerprint: the worker recomputes the run identity from
// first principles and refuses to contribute shards to a build it would
// not reproduce bit-exactly.
func (w *Worker) runtime(job JobSpec) (*jobRuntime, error) {
	if rt, ok := w.jobs[job.Fingerprint]; ok {
		return rt, nil
	}
	meter, err := job.buildMeter()
	if err != nil {
		return nil, err
	}
	if got := meter.NumInputBits(); got != job.InputBits {
		return nil, fmt.Errorf("fleet: %s rebuilds to %d input bits, job says %d",
			job.moduleName(), got, job.InputBits)
	}
	opt := job.options()
	opt.Workers = w.cfg.Workers
	if fp := core.Fingerprint(job.moduleName(), job.InputBits, opt); fp != job.Fingerprint {
		return nil, fmt.Errorf("fleet: fingerprint mismatch for %s: coordinator %s, local %s (version skew?)",
			job.moduleName(), job.Fingerprint, fp)
	}
	rt := &jobRuntime{name: job.moduleName(), meter: meter, opt: opt}
	w.jobs[job.Fingerprint] = rt
	return rt, nil
}

// --- RPC plumbing --------------------------------------------------

func (w *Worker) lease(ctx context.Context) (*leaseResponse, error) {
	var resp leaseResponse
	if err := w.post(ctx, PathLease, mustJSON(leaseRequest{Worker: w.cfg.Name}), &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// post sends a JSON request and decodes a JSON response, treating any
// non-2xx status as an error (the retry loops above own the policy).
func (w *Worker) post(ctx context.Context, path string, body []byte, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.cfg.Coordinator+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := w.cfg.Client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("fleet: %s returned %s", path, resp.Status)
	}
	return json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(out)
}

// postRaw sends an opaque (sealed) body and returns the status code;
// 4xx fencing responses are data, not errors.
func (w *Worker) postRaw(ctx context.Context, path string, body []byte) (int, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.cfg.Coordinator+path, bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := w.cfg.Client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	return resp.StatusCode, nil
}

func mustJSON(v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		panic(err) // all payload types marshal by construction
	}
	return b
}

// sleepCtx sleeps for d or until ctx is cancelled; it reports whether
// the full sleep elapsed.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}
