package fleet

import (
	"context"
	"fmt"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"hdpower/internal/core"
	"hdpower/internal/faultpoint"
)

// TestFleetChaos is the acceptance test for the distributed
// characterization fleet: a 3-worker build survives armed fleet.* fault
// points (failed lease grants, torn uploads, dropped heartbeats, merge
// stalls), two worker kills mid-lease, AND a coordinator crash with
// restart from the lease ledger — and the converged model is still
// bit-identical to a single-node core.Characterize of the same spec.
//
// The CI chaos job re-runs this test with the fleet.* points armed in
// slow mode via HDPOWER_FAULTPOINTS on top of the error modes armed
// here (Arm replaces the env arming for the process, so the run below
// stays deterministic either way).
func TestFleetChaos(t *testing.T) {
	spec := JobSpec{Module: "ripple-adder", Width: 4, Seed: 13, Patterns: 6000,
		Enhanced: true, ZClusters: 3}
	want := singleNode(t, spec)
	ledgerPath := filepath.Join(t.TempDir(), "chaos.fleet.json")

	// Error-mode chaos on every fleet point. Seeded so the schedule of
	// injected failures is reproducible; the lease/retry machinery must
	// absorb all of them.
	// core.shard in slow mode stretches range compute past the heartbeat
	// interval (TTL/3), so the heartbeat path — including its injected
	// drops — is actually exercised rather than outrun.
	faultpoint.Seed(1)
	if err := faultpoint.Arm("fleet.lease=error:p=0.15;fleet.upload=error:p=0.25;" +
		"fleet.heartbeat=error:p=0.2;fleet.merge=error:p=0.1;" +
		"core.shard=slow:p=1.0:delay=50ms"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(faultpoint.Disarm)

	cfg := Config{
		LeaseShards: 4,
		LeaseTTL:    250 * time.Millisecond, // short: dead workers re-lease fast
		Tick:        5 * time.Millisecond,
	}
	f := newTestFleet(t, cfg)

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	var merged atomic.Int64
	hooks := &core.Hooks{ShardMerged: func() { merged.Add(1) }}

	// Round 1: three workers, a coordinator that will be "crashed"
	// (context-cancelled after the ledger has real progress).
	kills := startWorkers(t, ctx, f.ts.URL, 3)
	runCtx, crash := context.WithCancel(ctx)
	defer crash()
	done := make(chan error, 1)
	go func() {
		_, err := f.coordinator().RunJob(runCtx, spec, RunOptions{Hooks: hooks, LedgerPath: ledgerPath})
		done <- err
	}()

	waitMerged := func(n int64) {
		t.Helper()
		for deadline := time.Now().Add(60 * time.Second); merged.Load() < n; {
			if time.Now().After(deadline) {
				t.Fatalf("stuck at %d merged shards waiting for %d", merged.Load(), n)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}

	// Kill workers mid-build: their in-flight leases die with them and
	// must expire and re-lease to the survivors.
	waitMerged(4)
	kills[0]()
	waitMerged(8)
	kills[1]()

	// Crash the coordinator once there is meaningful ledger state.
	waitMerged(12)
	crash()
	if err := <-done; err == nil {
		t.Fatal("crashed coordinator returned a nil error")
	}

	// Round 2: a brand-new coordinator process-equivalent resumes from
	// the ledger at the same URL; the surviving worker plus one
	// replacement finish the build under the same chaos.
	c2 := NewCoordinator(cfg)
	f.cur.Store(c2)
	startWorkers(t, ctx, f.ts.URL, 1)

	var resumedFrom atomic.Int64
	got, err := c2.RunJob(ctx, spec, RunOptions{
		Hooks: &core.Hooks{
			Resumed: func(phase string, shards, pb, pbias int) { resumedFrom.Store(int64(shards)) },
		},
		LedgerPath: ledgerPath,
		Resume:     true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if resumedFrom.Load() == 0 {
		t.Fatal("restarted coordinator built from scratch instead of resuming the ledger")
	}
	assertSameModel(t, got, want, "post-chaos fleet model")

	// The chaos actually happened: every armed point fired, and the
	// recovery paths it exercises left their marks.
	for _, p := range []string{"fleet.lease", "fleet.upload", "fleet.heartbeat", "fleet.merge"} {
		if faultpoint.Hits(p) == 0 {
			t.Errorf("fault point %s never hit", p)
		}
	}
	t.Logf("chaos summary: lease_hits=%d upload_hits=%d heartbeat_hits=%d merge_hits=%d resumed_from=%d",
		faultpoint.Hits("fleet.lease"), faultpoint.Hits("fleet.upload"),
		faultpoint.Hits("fleet.heartbeat"), faultpoint.Hits("fleet.merge"), resumedFrom.Load())
}

// TestFleetChaosWorkerChurn hammers the re-lease path specifically:
// workers are killed and replaced continuously while the build runs, with
// no coordinator restart, so every range is likely to be leased more than
// once. The model must still come out bit-identical.
func TestFleetChaosWorkerChurn(t *testing.T) {
	if testing.Short() {
		t.Skip("churn loop is slow under -short")
	}
	spec := JobSpec{Module: "ripple-adder", Width: 4, Seed: 21, Patterns: 5000, Enhanced: true}
	want := singleNode(t, spec)

	faultpoint.Seed(2)
	if err := faultpoint.Arm("fleet.upload=error:p=0.2;fleet.heartbeat=error:p=0.3"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(faultpoint.Disarm)

	f := newTestFleet(t, Config{
		LeaseShards: 2,
		LeaseTTL:    150 * time.Millisecond,
		Tick:        5 * time.Millisecond,
	})
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	done := make(chan struct{})
	go func() { // churn: kill a worker and start a fresh one every 100ms
		defer close(done)
		gen := 0
		for {
			wctx, wcancel := context.WithCancel(ctx)
			w, err := NewWorker(WorkerConfig{
				Coordinator: f.ts.URL, Name: fmt.Sprintf("churn%d", gen), Workers: 2,
				RetryBase: 5 * time.Millisecond, PollInterval: 10 * time.Millisecond,
			})
			if err != nil {
				panic(err)
			}
			go w.Run(wctx)
			gen++
			select {
			case <-ctx.Done():
				wcancel()
				return
			case <-time.After(100 * time.Millisecond):
			}
			wcancel()
		}
	}()

	got, err := f.coordinator().RunJob(ctx, spec, RunOptions{})
	cancel()
	<-done
	if err != nil {
		t.Fatal(err)
	}
	assertSameModel(t, got, want, "churned fleet model")
	if f.coordinator().met.leasesExpired.Value() == 0 {
		t.Log("note: churn run completed without any lease expiry (fast machine)")
	}
}
