package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"sync"
	"time"

	"hdpower/internal/atomicio"
	"hdpower/internal/core"
	"hdpower/internal/faultpoint"
	"hdpower/internal/obs"
	"hdpower/internal/power"
)

// Coordinator defaults.
const (
	defaultLeaseShards = 8
	defaultLeaseTTL    = 10 * time.Second
	defaultTick        = 50 * time.Millisecond
	maxUploadBytes     = 64 << 20
)

// ledgerFormat tags the coordinator's persisted lease ledger.
const ledgerFormat = "hdpower-fleet-ledger-v1"

// Config shapes a Coordinator. The zero value is usable: every field has
// a serving-grade default.
type Config struct {
	// LeaseShards is the number of plan shards per lease (default 8).
	// Smaller leases re-lease faster after a worker death; larger ones
	// amortize RPC overhead.
	LeaseShards int
	// LeaseTTL is how long a lease lives without a heartbeat (default
	// 10s). Heartbeats extend the deadline by one TTL.
	LeaseTTL time.Duration
	// WorkerTTL is how long after its last RPC a worker counts as alive
	// (default 2×LeaseTTL). With no live workers the coordinator computes
	// ranges itself.
	WorkerTTL time.Duration
	// Tick is the driver poll interval for expiry and merge progress
	// (default 50ms); uploads kick the driver immediately.
	Tick time.Duration
	// LocalWorkers is the shard parallelism of locally-computed ranges
	// (default: core's worker default).
	LocalWorkers int
	// Logger receives lease lifecycle events (default: discard).
	Logger *slog.Logger
}

func (c *Config) setDefaults() {
	if c.LeaseShards <= 0 {
		c.LeaseShards = defaultLeaseShards
	}
	if c.LeaseTTL <= 0 {
		c.LeaseTTL = defaultLeaseTTL
	}
	if c.WorkerTTL <= 0 {
		c.WorkerTTL = 2 * c.LeaseTTL
	}
	if c.Tick <= 0 {
		c.Tick = defaultTick
	}
	if c.Logger == nil {
		c.Logger = obs.NopLogger()
	}
}

// metrics is the coordinator's observability bundle (hdfleet_* families).
type metrics struct {
	leasesGranted  *obs.Counter
	leasesExpired  *obs.Counter
	zombieRejected *obs.Counter
	tornUploads    *obs.Counter
	uploadsOK      *obs.Counter
	heartbeats     *obs.Counter
	localRanges    *obs.Counter
	rangesMerged   *obs.Counter
	workersAlive   *obs.Gauge
}

func newMetrics(reg *obs.Registry) *metrics {
	return &metrics{
		leasesGranted:  reg.Counter("hdfleet_leases_granted_total", "Shard-range leases granted to workers."),
		leasesExpired:  reg.Counter("hdfleet_leases_expired_total", "Leases expired without an upload and re-leased."),
		zombieRejected: reg.Counter("hdfleet_zombie_uploads_rejected_total", "Uploads rejected by epoch fencing."),
		tornUploads:    reg.Counter("hdfleet_torn_uploads_total", "Uploads rejected by checksum verification."),
		uploadsOK:      reg.Counter("hdfleet_uploads_accepted_total", "Uploads accepted into the merge ledger."),
		heartbeats:     reg.Counter("hdfleet_heartbeats_total", "Lease heartbeats accepted."),
		localRanges:    reg.Counter("hdfleet_local_ranges_total", "Ranges computed locally for lack of live workers."),
		rangesMerged:   reg.Counter("hdfleet_ranges_merged_total", "Uploaded ranges merged into the model."),
		workersAlive:   reg.Gauge("hdfleet_workers_alive", "Workers seen within the liveness window."),
	}
}

// Lease lifecycle states.
const (
	rangePending  = iota // waiting for a worker (or the local fallback)
	rangeLeased          // held by one worker under an epoch + deadline
	rangeUploaded        // results received and verified, awaiting merge
	rangeMerged          // folded into the merge session
)

// rangeLease is one work unit of the active job.
type rangeLease struct {
	phase      string
	start, end int
	state      int
	epoch      int64
	worker     string
	deadline   time.Time
}

// jobState is the coordinator's view of the active build.
type jobState struct {
	spec        JobSpec
	opt         core.CharacterizeOptions // merge-side options (hooks attached)
	computeOpt  core.CharacterizeOptions // local-fallback compute options
	hooks       *core.Hooks
	sess        *core.MergeSession
	meter       *power.Meter // local-fallback compute engine
	leaseShards int
	ranges      []*rangeLease
	// uploads holds verified results keyed by range start, awaiting
	// in-order merge.
	uploads    map[int][]core.ShardResult
	nextEpoch  int64
	ledgerPath string
	localBusy  bool
	resumed    bool
}

// ledger is the coordinator's crash-safety record: the merge session
// snapshot (the same Checkpoint encoding single-node builds persist) plus
// the fencing epoch floor. Leases themselves are deliberately not
// persisted — a restarted coordinator re-leases everything unmerged, and
// the epoch floor fences off uploads from leases granted before the
// crash.
type ledger struct {
	Format     string           `json:"format"`
	Job        JobSpec          `json:"job"`
	NextEpoch  int64            `json:"next_epoch"`
	Checkpoint *core.Checkpoint `json:"checkpoint"`
}

// Coordinator owns the lease ledger of at most one distributed build at
// a time and serves the fleet HTTP API. Create with NewCoordinator, mount
// the Handle* methods, then RunJob per build (concurrent RunJob calls
// queue).
type Coordinator struct {
	cfg    Config
	log    *slog.Logger
	met    *metrics
	tracer *obs.Tracer

	jobSem chan struct{} // capacity 1: serializes RunJob
	kick   chan struct{} // nudges the driver on upload/lease events

	mu      sync.Mutex
	workers map[string]time.Time // worker name -> last RPC
	job     *jobState
}

// NewCoordinator returns a coordinator with private observability;
// RegisterObs rebinds it to a shared registry/tracer.
func NewCoordinator(cfg Config) *Coordinator {
	cfg.setDefaults()
	return &Coordinator{
		cfg:     cfg,
		log:     cfg.Logger,
		met:     newMetrics(obs.NewRegistry()),
		jobSem:  make(chan struct{}, 1),
		kick:    make(chan struct{}, 1),
		workers: make(map[string]time.Time),
	}
}

// RegisterObs publishes the coordinator's metrics into reg (hdfleet_*
// families) and emits fleet spans through tracer. Call before the first
// RunJob; either argument may be nil to keep the current sink.
func (c *Coordinator) RegisterObs(reg *obs.Registry, tracer *obs.Tracer) {
	if reg != nil {
		c.met = newMetrics(reg)
	}
	if tracer != nil {
		c.tracer = tracer
	}
}

// LiveWorkers returns how many workers have made an RPC within the
// liveness window. internal/serve uses it to decide between fleet and
// local dispatch.
func (c *Coordinator) LiveWorkers() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.pruneWorkersLocked(time.Now())
}

// pruneWorkersLocked drops workers outside the liveness window and
// returns (and publishes) the live count.
func (c *Coordinator) pruneWorkersLocked(now time.Time) int {
	for name, seen := range c.workers {
		if now.Sub(seen) > c.cfg.WorkerTTL {
			delete(c.workers, name)
		}
	}
	c.met.workersAlive.Set(int64(len(c.workers)))
	return len(c.workers)
}

func (c *Coordinator) touchWorkerLocked(name string, now time.Time) {
	if name == "" {
		return
	}
	c.workers[name] = now
	c.met.workersAlive.Set(int64(len(c.workers)))
}

func (c *Coordinator) nudge() {
	select {
	case c.kick <- struct{}{}:
	default:
	}
}

// RunOptions shape one RunJob call.
type RunOptions struct {
	// Hooks observe the merge exactly as a single-node Characterize
	// would: same callbacks, same order.
	Hooks *core.Hooks
	// LedgerPath, when set, persists the lease ledger there after every
	// merged range; with Resume, an existing ledger at that path resumes
	// the build mid-plan.
	LedgerPath string
	Resume     bool
}

// RunJob executes one distributed build to completion and returns the
// fitted model, bit-identical to core.Characterize with the job's
// options. It blocks until the build converges, ctx is cancelled (the
// ledger is saved first, so a later RunJob with Resume continues where
// this one stopped), or the merge fails.
func (c *Coordinator) RunJob(ctx context.Context, spec JobSpec, opts RunOptions) (*core.Model, error) {
	select {
	case c.jobSem <- struct{}{}:
		defer func() { <-c.jobSem }()
	case <-ctx.Done():
		return nil, ctx.Err()
	}

	js, err := c.prepareJob(spec, opts)
	if err != nil {
		return nil, err
	}
	if c.tracer != nil {
		var span *obs.Span
		ctx, span = c.tracer.Start(ctx, "fleet.build")
		span.SetAttr("job", js.spec.ID)
		span.SetAttr("fingerprint", js.spec.Fingerprint)
		defer span.End()
	}

	c.mu.Lock()
	c.job = js
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		c.job = nil
		c.mu.Unlock()
		js.sess.Close()
	}()

	c.log.Info("fleet build started", "job", js.spec.ID, "module", js.spec.Module,
		"width", js.spec.Width, "resumed", js.resumed, "ranges", len(js.ranges))

	ticker := time.NewTicker(c.cfg.Tick)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			c.mu.Lock()
			c.saveLedgerLocked(js)
			c.mu.Unlock()
			return nil, ctx.Err()
		case <-c.kick:
		case <-ticker.C:
		}

		c.mu.Lock()
		now := time.Now()
		c.pruneWorkersLocked(now)
		c.expireLocked(js, now)
		if err := c.mergeReadyLocked(js); err != nil {
			c.mu.Unlock()
			return nil, err
		}
		if js.sess.Done() {
			c.mu.Unlock()
			model, err := js.sess.Finish()
			if err == nil && js.ledgerPath != "" {
				_ = os.Remove(js.ledgerPath)
			}
			c.log.Info("fleet build finished", "job", js.spec.ID, "err", err)
			return model, err
		}
		local := c.claimLocalLocked(js, now)
		c.mu.Unlock()
		if local != nil {
			c.runLocalRange(ctx, js, local)
		}
	}
}

// prepareJob builds the meter and merge session for a run, resuming from
// the ledger when asked and possible.
func (c *Coordinator) prepareJob(spec JobSpec, opts RunOptions) (*jobState, error) {
	meter, err := spec.buildMeter()
	if err != nil {
		return nil, err
	}
	spec.InputBits = meter.NumInputBits()
	opt := spec.options()
	spec.Fingerprint = core.Fingerprint(spec.moduleName(), spec.InputBits, opt)
	if spec.ID == "" {
		spec.ID = spec.Fingerprint
	}
	opt.Hooks = opts.Hooks
	opt.Workers = c.cfg.LocalWorkers

	computeOpt := opt
	computeOpt.Hooks = nil
	js := &jobState{
		spec:        spec,
		opt:         opt,
		computeOpt:  computeOpt,
		hooks:       opts.Hooks,
		meter:       meter,
		leaseShards: c.cfg.LeaseShards,
		uploads:     make(map[int][]core.ShardResult),
		ledgerPath:  opts.LedgerPath,
	}
	if opts.Resume && opts.LedgerPath != "" {
		if sess, next, ok := c.loadLedger(spec, opt, opts.LedgerPath); ok {
			js.sess, js.nextEpoch, js.resumed = sess, next, true
		}
	}
	if js.sess == nil {
		sess, err := core.NewMergeSession(spec.moduleName(), spec.InputBits, opt)
		if err != nil {
			return nil, err
		}
		js.sess = sess
	}
	js.rebuildRanges()
	return js, nil
}

// loadLedger resumes a merge session from the persisted ledger. Any
// failure — unreadable, torn (quarantined by atomicio), wrong job,
// mismatched options — degrades to a fresh build; resuming is an
// optimization, never a correctness requirement.
func (c *Coordinator) loadLedger(spec JobSpec, opt core.CharacterizeOptions, path string) (*core.MergeSession, int64, bool) {
	var led ledger
	if err := atomicio.ReadJSON(path, &led); err != nil {
		if !errors.Is(err, os.ErrNotExist) {
			c.log.Warn("fleet ledger unreadable; building fresh", "path", path, "err", err)
		}
		return nil, 0, false
	}
	if led.Format != ledgerFormat || led.Checkpoint == nil || led.Job.Fingerprint != spec.Fingerprint {
		c.log.Warn("fleet ledger does not match job; building fresh",
			"path", path, "ledger_fp", led.Job.Fingerprint, "job_fp", spec.Fingerprint)
		return nil, 0, false
	}
	sess, err := core.ResumeMergeSession(spec.moduleName(), spec.InputBits, opt, led.Checkpoint)
	if err != nil {
		c.log.Warn("fleet ledger rejected by merge session; building fresh", "err", err)
		return nil, 0, false
	}
	return sess, led.NextEpoch, true
}

// rebuildRanges regenerates the lease table for the session's current
// phase, from the merge cursor to the end of the phase. Called at job
// start and at every phase transition; anything previously leased is
// fenced off because its (phase, start) no longer resolves to a range.
func (js *jobState) rebuildRanges() {
	js.ranges = js.ranges[:0]
	for start := js.sess.MergedShards(); start < js.sess.PhaseShards(); start += js.leaseShards {
		end := start + js.leaseShards
		if end > js.sess.PhaseShards() {
			end = js.sess.PhaseShards()
		}
		js.ranges = append(js.ranges, &rangeLease{
			phase: js.sess.Phase(), start: start, end: end, state: rangePending,
		})
	}
	js.uploads = make(map[int][]core.ShardResult)
}

// expireLocked returns timed-out leases to the pending pool.
func (c *Coordinator) expireLocked(js *jobState, now time.Time) {
	for _, r := range js.ranges {
		if r.state == rangeLeased && now.After(r.deadline) {
			c.met.leasesExpired.Inc()
			c.log.Warn("lease expired; re-leasing", "job", js.spec.ID, "phase", r.phase,
				"start", r.start, "end", r.end, "worker", r.worker, "epoch", r.epoch)
			r.state = rangePending
			r.worker = ""
		}
	}
}

// mergeReadyLocked folds every uploaded range that has reached the merge
// cursor into the session, strictly in shard order. An early stop or
// phase transition mid-range discards the tail of that range and rebuilds
// the lease table for the new phase.
func (c *Coordinator) mergeReadyLocked(js *jobState) error {
	for !js.sess.Done() {
		r := js.rangeAtCursorLocked()
		if r == nil || r.state != rangeUploaded {
			return nil
		}
		if err := faultpoint.Hit("fleet.merge"); err != nil {
			// Injected merge stall: leave the range uploaded and retry on
			// the next driver tick. Nothing is lost — merging is
			// idempotent-by-order, not time-sensitive.
			c.log.Warn("merge deferred by fault injection", "job", js.spec.ID, "start", r.start)
			return nil
		}
		phase := js.sess.Phase()
		for _, res := range js.uploads[r.start] {
			if err := js.sess.Merge(res); err != nil {
				// A checksum-valid but semantically wrong payload (foreign
				// build, wrong geometry). Discard and recompute the range.
				c.met.zombieRejected.Inc()
				c.log.Warn("upload failed merge validation; re-leasing range",
					"job", js.spec.ID, "start", r.start, "err", err)
				delete(js.uploads, r.start)
				r.state = rangePending
				r.worker = ""
				return nil
			}
			if js.sess.Done() || js.sess.Phase() != phase {
				break // early stop truncated the phase mid-range
			}
		}
		delete(js.uploads, r.start)
		r.state = rangeMerged
		c.met.rangesMerged.Inc()
		if js.sess.Phase() != phase && !js.sess.Done() {
			js.rebuildRanges()
		}
		c.saveLedgerLocked(js)
	}
	return nil
}

// rangeAtCursorLocked returns the range whose start sits at the merge
// cursor of the current phase, or nil.
func (js *jobState) rangeAtCursorLocked() *rangeLease {
	cursor := js.sess.MergedShards()
	phase := js.sess.Phase()
	for _, r := range js.ranges {
		if r.phase == phase && r.start == cursor {
			return r
		}
	}
	return nil
}

// claimLocalLocked grabs a pending range for local computation when the
// fleet has no live workers. One local range runs at a time; workers that
// appear mid-build take the rest.
func (c *Coordinator) claimLocalLocked(js *jobState, now time.Time) *rangeLease {
	if js.localBusy || len(c.workers) > 0 {
		return nil
	}
	for _, r := range js.ranges {
		if r.state == rangePending {
			js.nextEpoch++
			r.state = rangeLeased
			r.epoch = js.nextEpoch
			r.worker = "(local)"
			// The local runner is in-process and cancels with the job;
			// park the deadline far out so the expiry sweep ignores it.
			r.deadline = now.Add(24 * time.Hour)
			js.localBusy = true
			c.met.localRanges.Inc()
			return r
		}
	}
	return nil
}

// runLocalRange computes a claimed range on the coordinator's own meter
// and injects the results as if a worker had uploaded them. Runs outside
// the coordinator lock (simulation is the expensive part); ctx
// cancellation interrupts the range and returns it to the pending pool.
func (c *Coordinator) runLocalRange(ctx context.Context, js *jobState, r *rangeLease) {
	opt := js.computeOpt
	opt.Interrupt = ctx.Err
	results, err := core.CharacterizeShardRange(js.meter, js.spec.moduleName(), opt,
		r.phase, r.start, r.end)
	c.mu.Lock()
	defer c.mu.Unlock()
	js.localBusy = false
	if err != nil {
		c.log.Warn("local range failed; re-leasing", "job", js.spec.ID, "start", r.start, "err", err)
		r.state = rangePending
		r.worker = ""
		return
	}
	r.state = rangeUploaded
	js.uploads[r.start] = results
	c.nudge()
}

// saveLedgerLocked persists the merge snapshot; failures are reported to
// the CheckpointSaved hook (and the log) but never fail the build —
// losing a checkpoint costs recompute time, not correctness.
func (c *Coordinator) saveLedgerLocked(js *jobState) {
	if js.ledgerPath == "" {
		return
	}
	err := atomicio.WriteJSON(js.ledgerPath, ledger{
		Format:     ledgerFormat,
		Job:        js.spec,
		NextEpoch:  js.nextEpoch,
		Checkpoint: js.sess.Snapshot(),
	})
	if err != nil {
		c.log.Warn("fleet ledger save failed", "path", js.ledgerPath, "err", err)
	}
	if js.hooks != nil && js.hooks.CheckpointSaved != nil {
		js.hooks.CheckpointSaved(err)
	}
}

// --- HTTP API ------------------------------------------------------

// HandleLease serves POST /fleet/v1/lease: grant the first pending range
// of the active job, or tell the worker to poll again.
func (c *Coordinator) HandleLease(w http.ResponseWriter, r *http.Request) {
	var req leaseRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<16)).Decode(&req); err != nil || req.Worker == "" {
		writeJSON(w, http.StatusBadRequest, statusResponse{Status: "error", Error: "bad lease request"})
		return
	}
	if err := faultpoint.Hit("fleet.lease"); err != nil {
		writeJSON(w, http.StatusServiceUnavailable, statusResponse{Status: "error", Error: err.Error()})
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	now := time.Now()
	c.touchWorkerLocked(req.Worker, now)
	js := c.job
	if js == nil {
		writeJSON(w, http.StatusOK, leaseResponse{Status: statusIdle, RetryMs: c.cfg.Tick.Milliseconds() * 4})
		return
	}
	for _, rg := range js.ranges {
		if rg.state != rangePending {
			continue
		}
		js.nextEpoch++
		rg.state = rangeLeased
		rg.epoch = js.nextEpoch
		rg.worker = req.Worker
		rg.deadline = now.Add(c.cfg.LeaseTTL)
		c.met.leasesGranted.Inc()
		c.log.Debug("lease granted", "job", js.spec.ID, "worker", req.Worker,
			"phase", rg.phase, "start", rg.start, "end", rg.end, "epoch", rg.epoch)
		spec := js.spec
		writeJSON(w, http.StatusOK, leaseResponse{
			Status: statusLease,
			Job:    &spec,
			Lease: &Lease{
				JobID: js.spec.ID, Phase: rg.phase, Start: rg.start, End: rg.end,
				Epoch: rg.epoch, TTLMs: c.cfg.LeaseTTL.Milliseconds(),
			},
		})
		return
	}
	writeJSON(w, http.StatusOK, leaseResponse{Status: statusWait, RetryMs: c.cfg.Tick.Milliseconds() * 4})
}

// HandleHeartbeat serves POST /fleet/v1/heartbeat: extend a live lease's
// deadline, or tell a fenced-off worker to stop computing.
func (c *Coordinator) HandleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req heartbeatRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<16)).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, statusResponse{Status: "error", Error: "bad heartbeat"})
		return
	}
	if err := faultpoint.Hit("fleet.heartbeat"); err != nil {
		// A dropped heartbeat is exactly the failure the lease TTL
		// tolerates: the worker retries on its next tick, and only a
		// sustained drop expires the lease.
		writeJSON(w, http.StatusServiceUnavailable, statusResponse{Status: "error", Error: err.Error()})
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	now := time.Now()
	c.touchWorkerLocked(req.Worker, now)
	js := c.job
	if js == nil || js.spec.ID != req.JobID {
		writeJSON(w, http.StatusOK, statusResponse{Status: statusRevoked})
		return
	}
	for _, rg := range js.ranges {
		if rg.phase == req.Phase && rg.start == req.Start &&
			rg.state == rangeLeased && rg.epoch == req.Epoch {
			rg.deadline = now.Add(c.cfg.LeaseTTL)
			c.met.heartbeats.Inc()
			writeJSON(w, http.StatusOK, statusResponse{Status: statusOK})
			return
		}
	}
	writeJSON(w, http.StatusOK, statusResponse{Status: statusRevoked})
}

// HandleUpload serves POST /fleet/v1/upload: verify the checksum trailer,
// check the epoch fence, and stage the results for in-order merge.
func (c *Coordinator) HandleUpload(w http.ResponseWriter, r *http.Request) {
	raw, err := io.ReadAll(io.LimitReader(r.Body, maxUploadBytes))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, statusResponse{Status: "error", Error: "short read"})
		return
	}
	body, err := atomicio.Unseal(raw)
	if err != nil {
		c.met.tornUploads.Inc()
		c.log.Warn("torn upload rejected", "bytes", len(raw), "err", err)
		writeJSON(w, http.StatusBadRequest, statusResponse{Status: "error", Error: "payload failed checksum verification"})
		return
	}
	var up uploadPayload
	if err := json.Unmarshal(body, &up); err != nil {
		c.met.tornUploads.Inc()
		writeJSON(w, http.StatusBadRequest, statusResponse{Status: "error", Error: "bad upload payload"})
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	now := time.Now()
	c.touchWorkerLocked(up.Worker, now)
	js := c.job
	if js == nil || js.spec.ID != up.JobID {
		writeJSON(w, http.StatusGone, statusResponse{Status: statusGone})
		return
	}
	for _, rg := range js.ranges {
		if rg.phase != up.Phase || rg.start != up.Start || rg.end != up.End {
			continue
		}
		if rg.state != rangeLeased || rg.epoch != up.Epoch {
			break // fenced: expired and re-leased, or already uploaded
		}
		if len(up.Results) != rg.end-rg.start {
			c.met.tornUploads.Inc()
			writeJSON(w, http.StatusBadRequest, statusResponse{Status: "error",
				Error: fmt.Sprintf("%d results for a %d-shard range", len(up.Results), rg.end-rg.start)})
			return
		}
		rg.state = rangeUploaded
		js.uploads[rg.start] = up.Results
		c.met.uploadsOK.Inc()
		c.nudge()
		writeJSON(w, http.StatusOK, statusResponse{Status: statusAccepted})
		return
	}
	c.met.zombieRejected.Inc()
	c.log.Warn("zombie upload rejected", "job", up.JobID, "worker", up.Worker,
		"phase", up.Phase, "start", up.Start, "epoch", up.Epoch)
	writeJSON(w, http.StatusConflict, statusResponse{Status: statusStale})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}
