// Package fleet distributes characterization builds over a pool of
// worker processes while preserving the single-node bit-identity
// contract.
//
// The unit of work is a contiguous shard-range lease: the coordinator
// (see Coordinator) decomposes a build's deterministic shard plan into
// ranges, leases each range to exactly one worker at a time (lease =
// range + fencing epoch + deadline), and merges the returned partial
// accumulators strictly in shard order through a core.MergeSession —
// so the fitted model is bit-identical to core.Characterize with the
// same options, no matter how many workers computed it, in what order
// ranges arrived, or how many leases died along the way.
//
// Robustness model, in one place:
//
//   - Workers heartbeat their active lease; a lease whose deadline
//     passes without one is expired and re-leased to a live worker.
//   - Every lease grant carries a fresh monotonic epoch. An upload must
//     quote the epoch of a currently-leased range; a zombie worker
//     finishing a range that was re-leased after its lease expired is
//     rejected (HTTP 409) and its bytes discarded.
//   - Upload bodies carry the atomicio checksum trailer (Seal/Unseal);
//     a torn or bit-flipped body is rejected (HTTP 400) and the range
//     stays leased for the worker to retry, or expires and is re-leased.
//   - Worker RPCs retry transient failures with capped-jitter backoff.
//   - The coordinator checkpoints its lease ledger (a core.Checkpoint
//     snapshot of the merge session plus the fencing epoch) through
//     atomicio, so a restarted coordinator resumes the build mid-plan.
//   - With no live workers the coordinator degrades to computing ranges
//     locally, so a fleet-configured server with no fleet still builds.
//
// Chaos coverage arms the fleet.lease / fleet.upload / fleet.heartbeat /
// fleet.merge fault points (see internal/faultpoint) and asserts the
// converged model is still bit-identical to single-node.
package fleet

import (
	"fmt"
	"math/rand"
	"time"

	"hdpower/internal/core"
	"hdpower/internal/power"
	"hdpower/internal/sim"

	"hdpower/internal/dwlib"
)

// JobSpec is the self-contained description of one distributed build: a
// worker that receives it can reconstruct the exact characterization
// stream the coordinator is merging. Fingerprint pins the identity
// (core.Fingerprint over the derived options); workers refuse leases
// whose fingerprint does not match what they recompute locally, so a
// version-skewed worker can never contribute shards.
type JobSpec struct {
	ID          string  `json:"id"`
	Module      string  `json:"module"`
	Width       int     `json:"width"`
	InputBits   int     `json:"input_bits"`
	Seed        int64   `json:"seed"`
	Patterns    int     `json:"patterns"`
	Enhanced    bool    `json:"enhanced,omitempty"`
	ZClusters   int     `json:"z_clusters,omitempty"`
	CheckEvery  int     `json:"check_every,omitempty"`
	ConvergeTol float64 `json:"converge_tol,omitempty"`
	Backend     string  `json:"backend,omitempty"`
	Fingerprint string  `json:"fingerprint"`
}

// moduleName is the characterization run name shared by coordinator and
// workers — it feeds the fingerprint, so both sides must derive it the
// same way (and the same way internal/serve names its builds).
func (j *JobSpec) moduleName() string {
	return fmt.Sprintf("%s-w%d", j.Module, j.Width)
}

// options derives the characterization options a job implies. Workers
// and Hooks are deliberately absent: parallelism is a per-process choice
// and hooks are a coordinator concern, and neither shapes the pattern
// stream (nor, therefore, the fingerprint).
func (j *JobSpec) options() core.CharacterizeOptions {
	return core.CharacterizeOptions{
		Patterns:    j.Patterns,
		Seed:        j.Seed,
		Enhanced:    j.Enhanced,
		ZClusters:   j.ZClusters,
		CheckEvery:  j.CheckEvery,
		ConvergeTol: j.ConvergeTol,
		Backend:     core.BackendKind(j.Backend),
	}
}

// buildMeter reconstructs the job's netlist and reference meter from the
// catalog — the same path internal/serve takes for a local build.
func (j *JobSpec) buildMeter() (*power.Meter, error) {
	mod, err := dwlib.Lookup(j.Module)
	if err != nil {
		return nil, err
	}
	nl := mod.Build(j.Width)
	if err := nl.Finalize(); err != nil {
		return nil, err
	}
	return power.NewMeter(nl, sim.EventDriven)
}

// Lease is one granted work unit: the phase-relative shard range
// [Start, End) of Phase, fenced by Epoch, expiring TTLMs milliseconds
// after the grant unless heartbeated.
type Lease struct {
	JobID string `json:"job_id"`
	Phase string `json:"phase"`
	Start int    `json:"start"`
	End   int    `json:"end"`
	Epoch int64  `json:"epoch"`
	TTLMs int64  `json:"ttl_ms"`
}

// Lease RPC statuses.
const (
	statusLease    = "lease"    // a lease was granted
	statusWait     = "wait"     // job active, nothing pending right now
	statusIdle     = "idle"     // no job active
	statusOK       = "ok"       // heartbeat extended the lease
	statusRevoked  = "revoked"  // lease no longer held; stop computing
	statusAccepted = "accepted" // upload merged into the ledger
	statusStale    = "stale"    // upload fenced off by epoch or re-lease
	statusGone     = "gone"     // job no longer active
)

type leaseRequest struct {
	Worker string `json:"worker"`
}

type leaseResponse struct {
	Status  string   `json:"status"`
	RetryMs int64    `json:"retry_ms,omitempty"`
	Job     *JobSpec `json:"job,omitempty"`
	Lease   *Lease   `json:"lease,omitempty"`
}

type heartbeatRequest struct {
	Worker string `json:"worker"`
	JobID  string `json:"job_id"`
	Phase  string `json:"phase"`
	Start  int    `json:"start"`
	Epoch  int64  `json:"epoch"`
}

type statusResponse struct {
	Status string `json:"status"`
	Error  string `json:"error,omitempty"`
}

// uploadPayload is the JSON body of an upload, wrapped in the atomicio
// checksum trailer by the sender (atomicio.Seal) and verified by the
// coordinator (atomicio.Unseal) before it is even parsed.
type uploadPayload struct {
	Worker  string             `json:"worker"`
	JobID   string             `json:"job_id"`
	Phase   string             `json:"phase"`
	Start   int                `json:"start"`
	End     int                `json:"end"`
	Epoch   int64              `json:"epoch"`
	Results []core.ShardResult `json:"results"`
}

// Fleet endpoints, mounted by internal/serve (coordinator mode) and
// dialed by Worker.
const (
	PathLease     = "/fleet/v1/lease"
	PathHeartbeat = "/fleet/v1/heartbeat"
	PathUpload    = "/fleet/v1/upload"
)

// backoff returns the capped full-jitter delay for the given retry
// attempt (0-based): uniform over (0, min(base<<attempt, cap)]. The same
// discipline internal/serve applies to build retries.
func backoff(base, max time.Duration, attempt int) time.Duration {
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	if max <= 0 {
		max = 3 * time.Second
	}
	limit := base
	for i := 0; i < attempt && limit < max; i++ {
		limit *= 2
	}
	if limit > max {
		limit = max
	}
	return time.Duration(rand.Int63n(int64(limit))) + time.Millisecond
}
