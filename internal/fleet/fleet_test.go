package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"hdpower/internal/atomicio"
	"hdpower/internal/core"
)

// testFleet is a coordinator behind a real HTTP server whose handlers
// dereference an atomic pointer, so chaos tests can swap in a restarted
// coordinator without moving the URL workers dial.
type testFleet struct {
	cur atomic.Pointer[Coordinator]
	ts  *httptest.Server
}

func newTestFleet(t *testing.T, cfg Config) *testFleet {
	t.Helper()
	f := &testFleet{}
	f.cur.Store(NewCoordinator(cfg))
	mux := http.NewServeMux()
	mux.HandleFunc("POST "+PathLease, func(w http.ResponseWriter, r *http.Request) {
		f.cur.Load().HandleLease(w, r)
	})
	mux.HandleFunc("POST "+PathHeartbeat, func(w http.ResponseWriter, r *http.Request) {
		f.cur.Load().HandleHeartbeat(w, r)
	})
	mux.HandleFunc("POST "+PathUpload, func(w http.ResponseWriter, r *http.Request) {
		f.cur.Load().HandleUpload(w, r)
	})
	f.ts = httptest.NewServer(mux)
	t.Cleanup(f.ts.Close)
	return f
}

func (f *testFleet) coordinator() *Coordinator { return f.cur.Load() }

// startWorkers launches n workers against the fleet URL and returns
// their cancel funcs (for mid-build kills).
func startWorkers(t *testing.T, ctx context.Context, url string, n int) []context.CancelFunc {
	t.Helper()
	cancels := make([]context.CancelFunc, n)
	for i := range cancels {
		wctx, cancel := context.WithCancel(ctx)
		cancels[i] = cancel
		w, err := NewWorker(WorkerConfig{
			Coordinator:  url,
			Name:         fmt.Sprintf("w%d", i),
			Workers:      2,
			RetryBase:    5 * time.Millisecond,
			RetryCap:     100 * time.Millisecond,
			PollInterval: 10 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		go w.Run(wctx)
	}
	t.Cleanup(func() {
		for _, c := range cancels {
			c()
		}
	})
	return cancels
}

func singleNode(t *testing.T, spec JobSpec) *core.Model {
	t.Helper()
	meter, err := spec.buildMeter()
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.Characterize(meter, spec.moduleName(), spec.options())
	if err != nil {
		t.Fatal(err)
	}
	return want
}

func assertSameModel(t *testing.T, got, want *core.Model, label string) {
	t.Helper()
	if !reflect.DeepEqual(got, want) {
		gj, _ := json.Marshal(got)
		wj, _ := json.Marshal(want)
		t.Fatalf("%s diverges from single-node:\n got %s\nwant %s", label, gj, wj)
	}
}

func TestFleetBitIdentical(t *testing.T) {
	specs := []JobSpec{
		{Module: "ripple-adder", Width: 4, Seed: 7, Patterns: 3000},
		{Module: "ripple-adder", Width: 4, Seed: 7, Patterns: 3000, Enhanced: true, ZClusters: 3},
		{Module: "ripple-adder", Width: 4, Seed: 3, Patterns: 6000, Enhanced: true,
			ConvergeTol: 0.2, CheckEvery: 500},
	}
	for i, spec := range specs {
		t.Run(fmt.Sprintf("spec%d", i), func(t *testing.T) {
			want := singleNode(t, spec)
			f := newTestFleet(t, Config{
				LeaseShards: 4,
				LeaseTTL:    2 * time.Second,
				Tick:        5 * time.Millisecond,
			})
			ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
			defer cancel()
			startWorkers(t, ctx, f.ts.URL, 3)
			got, err := f.coordinator().RunJob(ctx, spec, RunOptions{})
			if err != nil {
				t.Fatal(err)
			}
			assertSameModel(t, got, want, "fleet model")
		})
	}
}

func TestFleetLocalDegradation(t *testing.T) {
	// No workers ever register: the coordinator must compute every range
	// itself and still match single-node bit-exactly.
	spec := JobSpec{Module: "ripple-adder", Width: 4, Seed: 11, Patterns: 2000, Enhanced: true}
	want := singleNode(t, spec)
	c := NewCoordinator(Config{LeaseShards: 4, Tick: time.Millisecond, LocalWorkers: 2})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	got, err := c.RunJob(ctx, spec, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	assertSameModel(t, got, want, "worker-less fleet model")
	if c.met.localRanges.Value() == 0 {
		t.Fatal("no ranges were computed locally")
	}
	if c.met.leasesGranted.Value() != 0 {
		t.Fatal("leases granted with no workers registered")
	}
}

// leaseByHand drives the HTTP API directly, so fencing semantics are
// pinned deterministically rather than via worker timing.
func leaseByHand(t *testing.T, url, worker string) leaseResponse {
	t.Helper()
	body, _ := json.Marshal(leaseRequest{Worker: worker})
	resp, err := http.Post(url+PathLease, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var lr leaseResponse
	if err := json.NewDecoder(resp.Body).Decode(&lr); err != nil {
		t.Fatal(err)
	}
	return lr
}

func uploadByHand(t *testing.T, url string, payload uploadPayload, seal bool) int {
	t.Helper()
	body, _ := json.Marshal(payload)
	if seal {
		body = atomicio.Seal(body)
	}
	resp, err := http.Post(url+PathUpload, "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp.StatusCode
}

func TestFleetEpochFencingAndTornUploads(t *testing.T) {
	spec := JobSpec{Module: "ripple-adder", Width: 4, Seed: 5, Patterns: 3000}
	want := singleNode(t, spec)

	const leaseTTL = 120 * time.Millisecond
	f := newTestFleet(t, Config{
		LeaseShards: 8,
		LeaseTTL:    leaseTTL,
		WorkerTTL:   time.Hour, // keep the hand-driven worker "alive" so no local fallback
		Tick:        5 * time.Millisecond,
	})
	c := f.coordinator()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	type result struct {
		model *core.Model
		err   error
	}
	done := make(chan result, 1)
	go func() {
		m, err := c.RunJob(ctx, spec, RunOptions{})
		done <- result{m, err}
	}()

	// Take the first lease and sit on it past its TTL.
	var first leaseResponse
	for deadline := time.Now().Add(10 * time.Second); ; {
		first = leaseByHand(t, f.ts.URL, "zombie")
		if first.Status == statusLease {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("never got a lease")
		}
		time.Sleep(5 * time.Millisecond)
	}
	job, ls := *first.Job, *first.Lease
	meter, err := job.buildMeter()
	if err != nil {
		t.Fatal(err)
	}
	results, err := core.CharacterizeShardRange(meter, job.moduleName(), job.options(),
		ls.Phase, ls.Start, ls.End)
	if err != nil {
		t.Fatal(err)
	}

	// A torn upload (no checksum trailer survives truncation) is rejected
	// outright and never staged.
	sealed := atomicio.Seal(mustJSON(uploadPayload{
		Worker: "zombie", JobID: ls.JobID, Phase: ls.Phase,
		Start: ls.Start, End: ls.End, Epoch: ls.Epoch, Results: results,
	}))
	resp, err := http.Post(f.ts.URL+PathUpload, "application/octet-stream",
		bytes.NewReader(sealed[:len(sealed)/2]))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("torn upload got %d, want 400", resp.StatusCode)
	}
	if c.met.tornUploads.Value() == 0 {
		t.Fatal("torn upload not counted")
	}

	// Let the lease expire, then have a second worker re-lease the range.
	time.Sleep(leaseTTL + 50*time.Millisecond)
	var second leaseResponse
	for deadline := time.Now().Add(10 * time.Second); ; {
		second = leaseByHand(t, f.ts.URL, "fresh")
		if second.Status == statusLease && second.Lease.Start == ls.Start {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("range %d never re-leased (last: %+v)", ls.Start, second)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if second.Lease.Epoch <= ls.Epoch {
		t.Fatalf("re-lease epoch %d not above expired epoch %d", second.Lease.Epoch, ls.Epoch)
	}

	// The zombie's late (intact) upload quotes the dead epoch: fenced.
	if code := uploadByHand(t, f.ts.URL, uploadPayload{
		Worker: "zombie", JobID: ls.JobID, Phase: ls.Phase,
		Start: ls.Start, End: ls.End, Epoch: ls.Epoch, Results: results,
	}, true); code != http.StatusConflict {
		t.Fatalf("zombie upload got %d, want 409", code)
	}
	if c.met.zombieRejected.Value() == 0 {
		t.Fatal("zombie upload not counted")
	}

	// The fresh holder's upload lands, and the build completes: drain the
	// remaining leases by hand with the fresh worker.
	if code := uploadByHand(t, f.ts.URL, uploadPayload{
		Worker: "fresh", JobID: ls.JobID, Phase: ls.Phase,
		Start: ls.Start, End: ls.End, Epoch: second.Lease.Epoch, Results: results,
	}, true); code != http.StatusOK {
		t.Fatalf("fresh upload got %d, want 200", code)
	}
	for {
		select {
		case res := <-done:
			if res.err != nil {
				t.Fatal(res.err)
			}
			assertSameModel(t, res.model, want, "fenced fleet model")
			return
		default:
		}
		lr := leaseByHand(t, f.ts.URL, "fresh")
		if lr.Status != statusLease {
			time.Sleep(5 * time.Millisecond)
			continue
		}
		ls := *lr.Lease
		rs, err := core.CharacterizeShardRange(meter, job.moduleName(), job.options(),
			ls.Phase, ls.Start, ls.End)
		if err != nil {
			t.Fatal(err)
		}
		if code := uploadByHand(t, f.ts.URL, uploadPayload{
			Worker: "fresh", JobID: ls.JobID, Phase: ls.Phase,
			Start: ls.Start, End: ls.End, Epoch: ls.Epoch, Results: rs,
		}, true); code != http.StatusOK {
			t.Fatalf("drain upload got %d, want 200", code)
		}
	}
}

func TestFleetLedgerResume(t *testing.T) {
	// Cancel a fleet build mid-plan, then resume it on a brand-new
	// coordinator from the persisted ledger: the final model must still be
	// bit-identical, and the resumed session must not restart from shard 0.
	spec := JobSpec{Module: "ripple-adder", Width: 4, Seed: 9, Patterns: 4000, Enhanced: true}
	want := singleNode(t, spec)
	ledgerPath := filepath.Join(t.TempDir(), "job.fleet.json")

	var merged atomic.Int64
	hooks := &core.Hooks{ShardMerged: func() { merged.Add(1) }}

	c1 := NewCoordinator(Config{LeaseShards: 2, Tick: time.Millisecond, LocalWorkers: 2})
	ctx1, cancel1 := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := c1.RunJob(ctx1, spec, RunOptions{Hooks: hooks, LedgerPath: ledgerPath})
		done <- err
	}()
	for deadline := time.Now().Add(30 * time.Second); merged.Load() < 4; {
		if time.Now().After(deadline) {
			t.Fatal("build made no progress")
		}
		time.Sleep(time.Millisecond)
	}
	cancel1()
	if err := <-done; err == nil {
		t.Fatal("cancelled build returned nil error")
	}

	var resumed atomic.Bool
	c2 := NewCoordinator(Config{LeaseShards: 2, Tick: time.Millisecond, LocalWorkers: 2})
	got, err := c2.RunJob(context.Background(), spec, RunOptions{
		Hooks: &core.Hooks{
			Resumed: func(phase string, shards, pb, pbia int) {
				if shards > 0 {
					resumed.Store(true)
				}
			},
		},
		LedgerPath: ledgerPath,
		Resume:     true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !resumed.Load() {
		t.Fatal("restarted coordinator did not resume from the ledger")
	}
	assertSameModel(t, got, want, "resumed fleet model")
}

func TestFleetRefusesFingerprintSkew(t *testing.T) {
	spec := JobSpec{Module: "ripple-adder", Width: 4, Seed: 1, Patterns: 2000}
	w, err := NewWorker(WorkerConfig{Coordinator: "http://unused", Name: "w0"})
	if err != nil {
		t.Fatal(err)
	}
	good := spec
	good.InputBits = 8
	good.Fingerprint = core.Fingerprint(good.moduleName(), good.InputBits, good.options())
	if _, err := w.runtime(good); err != nil {
		t.Fatalf("matching fingerprint refused: %v", err)
	}
	bad := good
	bad.Fingerprint = "deadbeefdeadbeefdeadbeef"
	bad.Seed = 2 // runtime cache is keyed by fingerprint; change identity too
	if _, err := w.runtime(bad); err == nil {
		t.Fatal("fingerprint skew accepted")
	}
	// A self-consistent fingerprint over a lie about the geometry: the
	// rebuilt meter's input width exposes it.
	short := good
	short.InputBits = 4
	short.Fingerprint = core.Fingerprint(short.moduleName(), short.InputBits, short.options())
	if _, err := w.runtime(short); err == nil {
		t.Fatal("geometry skew accepted")
	}
}
