package textplot

import (
	"math"
	"strings"
	"testing"
)

func TestChartBasics(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	out := Chart("test chart", "Hd", xs, []Series{
		{Name: "alpha", Y: []float64{1, 2, 3, 4}},
		{Name: "beta", Y: []float64{4, 3, 2, 1}},
	}, 40, 10)
	for _, want := range []string{"test chart", "alpha", "beta", "Hd", "*", "o"} {
		if !strings.Contains(out, want) {
			t.Errorf("chart missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) < 12 {
		t.Errorf("chart too short: %d lines", len(lines))
	}
}

func TestChartHandlesDegenerateInput(t *testing.T) {
	if out := Chart("empty", "x", nil, nil, 20, 5); !strings.Contains(out, "no data") {
		t.Errorf("empty chart = %q", out)
	}
	out := Chart("mismatch", "x", []float64{1, 2}, []Series{{Name: "s", Y: []float64{1}}}, 20, 5)
	if !strings.Contains(out, "length") {
		t.Errorf("mismatch chart = %q", out)
	}
	// constant series must not divide by zero
	out = Chart("flat", "x", []float64{1, 2}, []Series{{Name: "s", Y: []float64{5, 5}}}, 20, 5)
	if !strings.Contains(out, "flat") {
		t.Errorf("flat chart = %q", out)
	}
	// NaN values skipped
	out = Chart("nan", "x", []float64{1, 2}, []Series{{Name: "s", Y: []float64{math.NaN(), 1}}}, 20, 5)
	if !strings.Contains(out, "nan") {
		t.Errorf("nan chart = %q", out)
	}
}

func TestErrorBars(t *testing.T) {
	out := ErrorBars("coefficients", []int{1, 2, 3}, []float64{10, 20, 30}, []float64{0.2, 0.1, 0.05}, 30)
	if !strings.Contains(out, "±") || !strings.Contains(out, "20.0%") {
		t.Errorf("errorbars output:\n%s", out)
	}
	// the largest value gets the longest bar
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if c1, c3 := strings.Count(lines[1], "="), strings.Count(lines[3], "="); c3 <= c1 {
		t.Errorf("bar lengths not increasing: %d vs %d", c1, c3)
	}
}

func TestBars(t *testing.T) {
	out := Bars("sizes", []string{"small", "large"}, []float64{1, 10}, 20)
	if !strings.Contains(out, "small") || !strings.Contains(out, "large") {
		t.Errorf("bars output:\n%s", out)
	}
}
