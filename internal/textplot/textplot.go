// Package textplot renders small ASCII charts for the experiment drivers:
// the repository regenerates the paper's figures as text plots so that
// `cmd/repro` works in any terminal with no plotting dependencies.
package textplot

import (
	"fmt"
	"math"
	"strings"
)

// Series is one named data series sampled at shared x positions.
type Series struct {
	Name string
	Y    []float64
}

var markers = []byte{'*', 'o', '+', 'x', '#', '@', '%', '&'}

// Chart renders an XY chart of one or more series over shared x values.
// Width and height are the plot-area dimensions in characters; NaN values
// are skipped.
func Chart(title, xlabel string, xs []float64, series []Series, width, height int) string {
	if width < 8 {
		width = 8
	}
	if height < 4 {
		height = 4
	}
	if len(xs) == 0 || len(series) == 0 {
		return title + ": (no data)\n"
	}
	for _, s := range series {
		if len(s.Y) != len(xs) {
			return fmt.Sprintf("%s: (series %q length %d != %d x values)\n",
				title, s.Name, len(s.Y), len(xs))
		}
	}
	xmin, xmax := minMax(xs)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		lo, hi := minMax(s.Y)
		ymin = math.Min(ymin, lo)
		ymax = math.Max(ymax, hi)
	}
	if math.IsInf(ymin, 1) {
		return title + ": (no finite data)\n"
	}
	if ymin > 0 && ymin < 0.25*ymax {
		ymin = 0 // anchor near-origin charts at zero, easier to read
	}
	if ymax == ymin {
		ymax = ymin + 1
	}
	if xmax == xmin {
		xmax = xmin + 1
	}

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range series {
		mk := markers[si%len(markers)]
		for i, y := range s.Y {
			if math.IsNaN(y) {
				continue
			}
			c := int(math.Round((xs[i] - xmin) / (xmax - xmin) * float64(width-1)))
			r := height - 1 - int(math.Round((y-ymin)/(ymax-ymin)*float64(height-1)))
			if r >= 0 && r < height && c >= 0 && c < width {
				grid[r][c] = mk
			}
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	for r, row := range grid {
		yTick := ymax - (ymax-ymin)*float64(r)/float64(height-1)
		fmt.Fprintf(&b, "%10.3g |%s|\n", yTick, string(row))
	}
	fmt.Fprintf(&b, "%10s  %s\n", "", strings.Repeat("-", width))
	fmt.Fprintf(&b, "%10s  %-*.4g%*.4g  (%s)\n", "", width/2, xmin, width-width/2, xmax, xlabel)
	for si, s := range series {
		fmt.Fprintf(&b, "%10s  %c %s\n", "", markers[si%len(markers)], s.Name)
	}
	return b.String()
}

// ErrorBars renders a value series with symmetric relative deviations as
// "value (+/- dev%)" rows plus a bar visualization — the textual analogue
// of the paper's Figure 1 error-bar plot.
func ErrorBars(title string, xs []int, y, relDev []float64, width int) string {
	if width < 10 {
		width = 10
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	_, ymax := minMax(y)
	if ymax <= 0 {
		ymax = 1
	}
	for i := range xs {
		bar := int(math.Round(y[i] / ymax * float64(width)))
		if bar < 0 {
			bar = 0
		}
		fmt.Fprintf(&b, "%4d | %-*s %10.3f ±%5.1f%%\n",
			xs[i], width, strings.Repeat("=", bar), y[i], relDev[i]*100)
	}
	return b.String()
}

// Bars renders labelled horizontal bars.
func Bars(title string, labels []string, values []float64, width int) string {
	if width < 10 {
		width = 10
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	_, vmax := minMax(values)
	if vmax <= 0 {
		vmax = 1
	}
	wl := 0
	for _, l := range labels {
		if len(l) > wl {
			wl = len(l)
		}
	}
	for i, l := range labels {
		bar := int(math.Round(values[i] / vmax * float64(width)))
		if bar < 0 {
			bar = 0
		}
		fmt.Fprintf(&b, "%-*s | %-*s %10.4g\n", wl, l, width, strings.Repeat("=", bar), values[i])
	}
	return b.String()
}

func minMax(xs []float64) (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, x := range xs {
		if math.IsNaN(x) {
			continue
		}
		lo = math.Min(lo, x)
		hi = math.Max(hi, x)
	}
	return lo, hi
}
