package dwlib

import (
	"fmt"

	"hdpower/internal/netlist"
)

// BoothWallaceMult generates a signed (two's-complement) m x m multiplier
// built from a radix-4 (modified) Booth encoder, a Wallace reduction tree
// of full/half adders, and a final ripple carry-propagate adder — the
// "booth-cod. wallace-tree mult." of the paper's Table 1.
// Ports: a[m], b[m] -> prod[2m]. m must be even and >= 4.
func BoothWallaceMult(m int) *netlist.Netlist {
	checkWidth("booth-wallace-multiplier", m, 4)
	if m%2 != 0 {
		panic(fmt.Sprintf("dwlib: booth-wallace-multiplier requires even width, got %d", m))
	}
	n := netlist.New(fmt.Sprintf("booth_wallace_mult_%dx%d", m, m))
	a := n.AddInputBus("a", m)
	b := n.AddInputBus("b", m)
	p := 2 * m
	zero := n.Const(false)

	// cols[k] collects all partial-product bits of absolute weight k.
	cols := make([][]netlist.NetID, p)
	addBit := func(k int, id netlist.NetID) {
		if k < p { // weight 2^p and above vanish mod 2^p
			cols[k] = append(cols[k], id)
		}
	}

	bit := func(bus netlist.Bus, i int) netlist.NetID {
		if i < 0 {
			return zero
		}
		return bus.Nets[i]
	}

	rows := m / 2
	for r := 0; r < rows; r++ {
		// Booth digit r is encoded from bits (b[2r+1], b[2r], b[2r-1]).
		x2 := bit(b, 2*r+1)
		x1 := bit(b, 2*r)
		x0 := bit(b, 2*r-1)

		neg := x2            // digit is negative (-1 or -2)
		one := n.Xor(x1, x0) // |digit| == 1
		// |digit| == 2: (1,0,0) or (0,1,1).
		nx1 := n.Not(x1)
		nx0 := n.Not(x0)
		nx2 := n.Not(x2)
		two := n.Or(n.And(x2, n.And(nx1, nx0)), n.And(nx2, n.And(x1, x0)))

		// Partial-product row: m+1 magnitude bits (x2 shifts left by one),
		// conditionally inverted by neg. Bit j of the row has absolute
		// weight 2r+j.
		var rowSign netlist.NetID
		for j := 0; j <= m; j++ {
			var aj, ajm1 netlist.NetID
			if j < m {
				aj = a.Nets[j]
			} else {
				aj = a.Nets[m-1] // sign extension of a for the x1 case
			}
			if j-1 >= 0 && j-1 < m {
				ajm1 = a.Nets[j-1]
			} else if j-1 >= m {
				ajm1 = a.Nets[m-1]
			} else {
				ajm1 = zero
			}
			mag := n.Or(n.And(one, aj), n.And(two, ajm1))
			ppBit := n.Xor(mag, neg)
			addBit(2*r+j, ppBit)
			if j == m {
				rowSign = ppBit
			}
		}
		// Naive sign extension: replicate the row's top bit up to 2m-1.
		for k := 2*r + m + 1; k < p; k++ {
			addBit(k, rowSign)
		}
		// Two's-complement correction: +neg at the row LSB weight.
		addBit(2*r, neg)
	}

	// Wallace reduction: compress every column to at most two bits.
	for maxHeight(cols) > 2 {
		next := make([][]netlist.NetID, p)
		for k, col := range cols {
			i := 0
			for len(col)-i >= 3 {
				s, c := n.FullAdder(col[i], col[i+1], col[i+2])
				next[k] = append(next[k], s)
				if k+1 < p {
					next[k+1] = append(next[k+1], c)
				}
				i += 3
			}
			if len(col)-i == 2 {
				s, c := n.HalfAdder(col[i], col[i+1])
				next[k] = append(next[k], s)
				if k+1 < p {
					next[k+1] = append(next[k+1], c)
				}
			} else if len(col)-i == 1 {
				next[k] = append(next[k], col[i])
			}
		}
		cols = next
	}

	// Final carry-propagate adder over the two remaining rows.
	prod := make([]netlist.NetID, p)
	carry := zero
	for k := 0; k < p; k++ {
		x, y := zero, zero
		if len(cols[k]) > 0 {
			x = cols[k][0]
		}
		if len(cols[k]) > 1 {
			y = cols[k][1]
		}
		prod[k], carry = add3(n, x, y, carry)
	}
	n.MarkOutputBus("prod", prod)
	return n
}

func maxHeight(cols [][]netlist.NetID) int {
	h := 0
	for _, col := range cols {
		if len(col) > h {
			h = len(col)
		}
	}
	return h
}
