package dwlib

import (
	"fmt"

	"hdpower/internal/netlist"
)

// prefixCell combines two (generate, propagate) pairs: the fundamental
// associative operator of parallel-prefix adders:
//
//	(g, p) ∘ (g', p') = (g ∨ (p ∧ g'), p ∧ p')
func prefixCell(n *netlist.Netlist, g, p, gPrev, pPrev netlist.NetID) (netlist.NetID, netlist.NetID) {
	return n.Or(g, n.And(p, gPrev)), n.And(p, pPrev)
}

// prefixAdder builds an adder from per-bit (g, p) signals and a prefix
// network strategy that fills carries[1..m] given the per-bit pairs.
func prefixAdder(name string, m int, network func(n *netlist.Netlist, g, p []netlist.NetID) []netlist.NetID) *netlist.Netlist {
	n := netlist.New(name)
	a := n.AddInputBus("a", m)
	b := n.AddInputBus("b", m)
	p := make([]netlist.NetID, m)
	g := make([]netlist.NetID, m)
	for i := 0; i < m; i++ {
		p[i] = n.Xor(a.Nets[i], b.Nets[i])
		g[i] = n.And(a.Nets[i], b.Nets[i])
	}
	carries := network(n, g, p) // carries[i] = carry INTO bit i+1 (group G of bits 0..i)
	sum := make([]netlist.NetID, m)
	sum[0] = p[0] // carry-in is zero
	for i := 1; i < m; i++ {
		sum[i] = n.Xor(p[i], carries[i-1])
	}
	n.MarkOutputBus("sum", sum)
	n.MarkOutputBus("cout", []netlist.NetID{carries[m-1]})
	return n
}

// KoggeStoneAdder generates an m-bit Kogge-Stone parallel-prefix adder:
// log2(m) levels, minimal depth, maximal wiring — the "fast, power-hungry"
// end of the adder design space. Ports: a[m], b[m] -> sum[m], cout[1].
func KoggeStoneAdder(m int) *netlist.Netlist {
	checkWidth("kogge-stone-adder", m, 1)
	return prefixAdder(fmt.Sprintf("kogge_stone_adder_%d", m), m,
		func(n *netlist.Netlist, g, p []netlist.NetID) []netlist.NetID {
			gg := append([]netlist.NetID(nil), g...)
			pp := append([]netlist.NetID(nil), p...)
			for d := 1; d < m; d <<= 1 {
				ng := append([]netlist.NetID(nil), gg...)
				np := append([]netlist.NetID(nil), pp...)
				for i := d; i < m; i++ {
					ng[i], np[i] = prefixCell(n, gg[i], pp[i], gg[i-d], pp[i-d])
				}
				gg, pp = ng, np
			}
			return gg // gg[i] = generate of group 0..i = carry out of bit i
		})
}

// BrentKungAdder generates an m-bit Brent-Kung parallel-prefix adder:
// ~2·log2(m) levels with minimal cell count — the "lean" prefix network.
// Ports: a[m], b[m] -> sum[m], cout[1].
func BrentKungAdder(m int) *netlist.Netlist {
	checkWidth("brent-kung-adder", m, 1)
	return prefixAdder(fmt.Sprintf("brent_kung_adder_%d", m), m,
		func(n *netlist.Netlist, g, p []netlist.NetID) []netlist.NetID {
			gg := append([]netlist.NetID(nil), g...)
			pp := append([]netlist.NetID(nil), p...)
			// Up-sweep: combine at strides 1, 2, 4, ...
			for d := 1; d < m; d <<= 1 {
				for i := 2*d - 1; i < m; i += 2 * d {
					gg[i], pp[i] = prefixCell(n, gg[i], pp[i], gg[i-d], pp[i-d])
				}
			}
			// Down-sweep: fill in the remaining prefixes.
			for d := largestPow2Below(m); d >= 1; d >>= 1 {
				for i := 3*d - 1; i < m; i += 2 * d {
					gg[i], pp[i] = prefixCell(n, gg[i], pp[i], gg[i-d], pp[i-d])
				}
			}
			return gg
		})
}

// largestPow2Below returns the starting stride of the Brent-Kung
// down-sweep: half the largest power of two below m.
func largestPow2Below(m int) int {
	d := 1
	for d*2 < m {
		d *= 2
	}
	return d / 2
}

// DaddaMult generates an unsigned m x m multiplier with Dadda column
// reduction: the partial-product matrix is compressed just enough at each
// stage to meet the Dadda height sequence (2, 3, 4, 6, 9, 13, …), which
// minimizes full-adder count compared to Wallace's eager reduction.
// Ports: a[m], b[m] -> prod[2m].
func DaddaMult(m int) *netlist.Netlist {
	checkWidth("dadda-multiplier", m, 2)
	n := netlist.New(fmt.Sprintf("dadda_mult_%dx%d", m, m))
	a := n.AddInputBus("a", m)
	b := n.AddInputBus("b", m)
	p := 2 * m
	zero := n.Const(false)

	cols := make([][]netlist.NetID, p)
	for i := 0; i < m; i++ {
		for j := 0; j < m; j++ {
			cols[i+j] = append(cols[i+j], n.And(a.Nets[j], b.Nets[i]))
		}
	}
	// Dadda height sequence below the current maximum height.
	target := 2
	for {
		next := target * 3 / 2
		if next >= maxHeight(cols) {
			break
		}
		target = next
	}
	for maxHeight(cols) > 2 {
		next := make([][]netlist.NetID, p)
		carryIn := make([][]netlist.NetID, p)
		for k := 0; k < p; k++ {
			// Columns are processed LSB-first, so carries generated into
			// column k (from k-1, this stage) are already present; they
			// count toward this stage's height, per Dadda's algorithm.
			col := append(append([]netlist.NetID(nil), cols[k]...), carryIn[k]...)
			carryIn[k] = nil
			// Reduce only as much as needed to reach the target height.
			for len(col) > target {
				if len(col) == target+1 {
					s, c := n.HalfAdder(col[len(col)-2], col[len(col)-1])
					col = append(col[:len(col)-2], s)
					if k+1 < p {
						carryIn[k+1] = append(carryIn[k+1], c)
					}
				} else {
					s, c := n.FullAdder(col[len(col)-3], col[len(col)-2], col[len(col)-1])
					col = append(col[:len(col)-3], s)
					if k+1 < p {
						carryIn[k+1] = append(carryIn[k+1], c)
					}
				}
			}
			next[k] = col
		}
		cols = next
		if target > 2 {
			target = (target*2 + 2) / 3
			if target < 2 {
				target = 2
			}
		}
	}
	prod := make([]netlist.NetID, p)
	carry := zero
	for k := 0; k < p; k++ {
		x, y := zero, zero
		if len(cols[k]) > 0 {
			x = cols[k][0]
		}
		if len(cols[k]) > 1 {
			y = cols[k][1]
		}
		prod[k], carry = add3(n, x, y, carry)
	}
	n.MarkOutputBus("prod", prod)
	return n
}
