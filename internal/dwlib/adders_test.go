package dwlib

import (
	"math/rand"
	"testing"

	"hdpower/internal/logic"
	"hdpower/internal/netlist"
	"hdpower/internal/sim"
)

// evalBus settles the module on the concatenated operand word and returns
// the named output bus.
func evalBus(t *testing.T, nl *netlist.Netlist, in logic.Word, out string) logic.Word {
	t.Helper()
	s, err := sim.New(nl, sim.ZeroDelay)
	if err != nil {
		t.Fatal(err)
	}
	w, err := s.Eval(in, out)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// evalTwoOp packs (a, b) for a two-operand module of operand width m.
func twoOp(a, b uint64, m int) logic.Word {
	return logic.FromUint(a, m).Concat(logic.FromUint(b, m))
}

func TestRippleAdderExhaustiveSmall(t *testing.T) {
	for _, m := range []int{1, 2, 3, 4} {
		nl := RippleAdder(m)
		s, err := sim.New(nl, sim.ZeroDelay)
		if err != nil {
			t.Fatal(err)
		}
		for a := uint64(0); a < 1<<uint(m); a++ {
			for b := uint64(0); b < 1<<uint(m); b++ {
				sum, _ := s.Eval(twoOp(a, b, m), "sum")
				cout, _ := s.Eval(twoOp(a, b, m), "cout")
				total := a + b
				if sum.Uint() != total&(1<<uint(m)-1) {
					t.Fatalf("m=%d: %d+%d sum = %d", m, a, b, sum.Uint())
				}
				if cout.Uint() != total>>uint(m) {
					t.Fatalf("m=%d: %d+%d cout = %d", m, a, b, cout.Uint())
				}
			}
		}
	}
}

func randomAdderCheck(t *testing.T, build func(int) *netlist.Netlist, name string) {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	for _, m := range []int{8, 12, 16, 17, 20} {
		nl := build(m)
		s, err := sim.New(nl, sim.ZeroDelay)
		if err != nil {
			t.Fatal(err)
		}
		mask := uint64(1)<<uint(m) - 1
		for i := 0; i < 200; i++ {
			a := rng.Uint64() & mask
			b := rng.Uint64() & mask
			sum, _ := s.Eval(twoOp(a, b, m), "sum")
			cout, _ := s.Eval(twoOp(a, b, m), "cout")
			total := a + b
			if sum.Uint() != total&mask || cout.Uint() != (total>>uint(m))&1 {
				t.Fatalf("%s m=%d: %d+%d = sum %d cout %d", name, m, a, b, sum.Uint(), cout.Uint())
			}
		}
	}
}

func TestRippleAdderRandom(t *testing.T) { randomAdderCheck(t, RippleAdder, "ripple") }

func TestCLAAdderExhaustiveSmall(t *testing.T) {
	for _, m := range []int{1, 2, 4, 5} {
		nl := CLAAdder(m)
		s, _ := sim.New(nl, sim.ZeroDelay)
		for a := uint64(0); a < 1<<uint(m); a++ {
			for b := uint64(0); b < 1<<uint(m); b++ {
				sum, _ := s.Eval(twoOp(a, b, m), "sum")
				cout, _ := s.Eval(twoOp(a, b, m), "cout")
				total := a + b
				if sum.Uint() != total&(1<<uint(m)-1) || cout.Uint() != total>>uint(m) {
					t.Fatalf("m=%d: %d+%d = sum %d cout %d", m, a, b, sum.Uint(), cout.Uint())
				}
			}
		}
	}
}

func TestCLAAdderRandom(t *testing.T) { randomAdderCheck(t, CLAAdder, "cla") }

func TestCarrySelectAdderRandom(t *testing.T) {
	randomAdderCheck(t, CarrySelectAdder, "carry-select")
}

func TestCarrySelectExhaustiveSmall(t *testing.T) {
	for _, m := range []int{1, 4, 6} {
		nl := CarrySelectAdder(m)
		s, _ := sim.New(nl, sim.ZeroDelay)
		for a := uint64(0); a < 1<<uint(m); a++ {
			for b := uint64(0); b < 1<<uint(m); b++ {
				sum, _ := s.Eval(twoOp(a, b, m), "sum")
				total := a + b
				if sum.Uint() != total&(1<<uint(m)-1) {
					t.Fatalf("m=%d: %d+%d = %d", m, a, b, sum.Uint())
				}
			}
		}
	}
}

func TestRippleSubtractorExhaustive(t *testing.T) {
	m := 4
	nl := RippleSubtractor(m)
	s, _ := sim.New(nl, sim.ZeroDelay)
	for a := uint64(0); a < 16; a++ {
		for b := uint64(0); b < 16; b++ {
			diff, _ := s.Eval(twoOp(a, b, m), "diff")
			want := (a - b) & 0xf
			if diff.Uint() != want {
				t.Fatalf("%d-%d = %d, want %d", a, b, diff.Uint(), want)
			}
			bout, _ := s.Eval(twoOp(a, b, m), "bout")
			wantNoBorrow := uint64(0)
			if a >= b {
				wantNoBorrow = 1
			}
			if bout.Uint() != wantNoBorrow {
				t.Fatalf("%d-%d bout = %d, want %d", a, b, bout.Uint(), wantNoBorrow)
			}
		}
	}
}

func TestIncrementerExhaustive(t *testing.T) {
	m := 5
	nl := Incrementer(m)
	s, _ := sim.New(nl, sim.ZeroDelay)
	for a := uint64(0); a < 32; a++ {
		y, _ := s.Eval(logic.FromUint(a, m), "y")
		if y.Uint() != (a+1)&31 {
			t.Fatalf("inc(%d) = %d", a, y.Uint())
		}
		cout, _ := s.Eval(logic.FromUint(a, m), "cout")
		want := uint64(0)
		if a == 31 {
			want = 1
		}
		if cout.Uint() != want {
			t.Fatalf("inc(%d) cout = %d", a, cout.Uint())
		}
	}
}

func TestAdderComplexityScalesLinearly(t *testing.T) {
	// The Section 5 regression for the ripple adder assumes linear gate
	// complexity; verify the generator delivers it exactly.
	g8 := RippleAdder(8).Stats().Gates
	g16 := RippleAdder(16).Stats().Gates
	g24 := RippleAdder(24).Stats().Gates
	if g16-g8 != g24-g16 {
		t.Errorf("ripple adder gate growth not linear: %d, %d, %d", g8, g16, g24)
	}
}

func TestCLAFasterThanRipple(t *testing.T) {
	// Lookahead must reduce logic depth versus the ripple chain.
	if CLAAdder(16).Depth() >= RippleAdder(16).Depth() {
		t.Errorf("CLA depth %d !< ripple depth %d",
			CLAAdder(16).Depth(), RippleAdder(16).Depth())
	}
}

func TestWidthValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("RippleAdder(0) did not panic")
		}
	}()
	RippleAdder(0)
}
