// Package dwlib generates gate-level netlists for the datapath components
// the paper evaluates. It stands in for the Synopsys DesignWare library:
// every module is built from scratch out of the primitive gates in
// internal/cells, following the standard textbook architecture its name
// implies, and is parameterizable in its input bit-width — the property
// Section 5 of the paper exploits.
//
// Port conventions: two-operand modules expose input buses "a" and "b"
// (LSB first) and single-operand modules just "a". The main result bus is
// named per module ("sum", "diff", "prod", "y", …); carry/borrow outputs
// are separate 1-bit buses.
package dwlib

import (
	"fmt"
	"sort"

	"hdpower/internal/netlist"
)

// Module describes one catalog entry: a named generator parameterizable in
// the operand bit-width.
type Module struct {
	// Name is the catalog key, e.g. "ripple-adder".
	Name string
	// Description is a one-line human-readable summary.
	Description string
	// TwoOperand reports whether Build(m) creates a module with two m-bit
	// operands (total input bits 2m) or a single m-bit operand.
	TwoOperand bool
	// MinWidth is the smallest operand width the generator supports.
	MinWidth int
	// Build generates the netlist for operand width m.
	Build func(m int) *netlist.Netlist
}

// TotalInputBits returns the total number of input bits of the module at
// operand width m — the m of the paper's Hd model equations.
func (mod Module) TotalInputBits(m int) int {
	if mod.TwoOperand {
		return 2 * m
	}
	return m
}

var catalog = map[string]Module{
	"ripple-adder": {
		Name:        "ripple-adder",
		Description: "ripple-carry adder, two m-bit operands, m-bit sum + carry out",
		TwoOperand:  true,
		MinWidth:    1,
		Build:       RippleAdder,
	},
	"cla-adder": {
		Name:        "cla-adder",
		Description: "carry-lookahead adder with 4-bit lookahead blocks",
		TwoOperand:  true,
		MinWidth:    1,
		Build:       CLAAdder,
	},
	"absval": {
		Name:        "absval",
		Description: "two's-complement absolute value of an m-bit operand",
		TwoOperand:  false,
		MinWidth:    2,
		Build:       AbsVal,
	},
	"csa-multiplier": {
		Name:        "csa-multiplier",
		Description: "unsigned carry-save array multiplier, m x m bits",
		TwoOperand:  true,
		MinWidth:    2,
		Build:       func(m int) *netlist.Netlist { return CSAMult(m, m) },
	},
	"booth-wallace-multiplier": {
		Name:        "booth-wallace-multiplier",
		Description: "radix-4 Booth-coded Wallace-tree multiplier, signed m x m bits",
		TwoOperand:  true,
		MinWidth:    4,
		Build:       func(m int) *netlist.Netlist { return BoothWallaceMult(m) },
	},
	"ripple-subtractor": {
		Name:        "ripple-subtractor",
		Description: "two's-complement ripple-borrow subtractor a - b",
		TwoOperand:  true,
		MinWidth:    1,
		Build:       RippleSubtractor,
	},
	"incrementer": {
		Name:        "incrementer",
		Description: "a + 1 half-adder chain",
		TwoOperand:  false,
		MinWidth:    1,
		Build:       Incrementer,
	},
	"comparator": {
		Name:        "comparator",
		Description: "unsigned magnitude comparator: eq, lt outputs",
		TwoOperand:  true,
		MinWidth:    1,
		Build:       Comparator,
	},
	"parity-tree": {
		Name:        "parity-tree",
		Description: "XOR reduction tree over an m-bit operand",
		TwoOperand:  false,
		MinWidth:    2,
		Build:       ParityTree,
	},
	"barrel-shifter": {
		Name:        "barrel-shifter",
		Description: "logarithmic logical left shifter, m-bit data + log2(m)-bit shamt",
		TwoOperand:  false, // irregular ports; total input bits = m + ceil(log2 m)
		MinWidth:    2,
		Build:       BarrelShifter,
	},
	"carry-select-adder": {
		Name:        "carry-select-adder",
		Description: "carry-select adder with 4-bit groups",
		TwoOperand:  true,
		MinWidth:    1,
		Build:       CarrySelectAdder,
	},
	"mac": {
		Name:        "mac",
		Description: "fused multiply-accumulate a*b + c, m-bit factors, 2m-bit addend",
		TwoOperand:  false, // irregular ports: m + m + 2m input bits
		MinWidth:    2,
		Build:       MAC,
	},
	"squarer": {
		Name:        "squarer",
		Description: "unsigned squarer y = a^2 with folded partial-product array",
		TwoOperand:  false,
		MinWidth:    2,
		Build:       Squarer,
	},
	"gray-encoder": {
		Name:        "gray-encoder",
		Description: "binary to Gray code converter",
		TwoOperand:  false,
		MinWidth:    2,
		Build:       GrayEncoder,
	},
	"gray-decoder": {
		Name:        "gray-decoder",
		Description: "Gray code to binary converter",
		TwoOperand:  false,
		MinWidth:    2,
		Build:       GrayDecoder,
	},
	"leading-zeros": {
		Name:        "leading-zeros",
		Description: "leading-zero counter with popcount reduction",
		TwoOperand:  false,
		MinWidth:    2,
		Build:       LeadingZeros,
	},
	"min-max": {
		Name:        "min-max",
		Description: "two-output unsigned sorter: lo = min(a,b), hi = max(a,b)",
		TwoOperand:  true,
		MinWidth:    1,
		Build:       MinMax,
	},
	"saturating-adder": {
		Name:        "saturating-adder",
		Description: "two's-complement adder with overflow saturation",
		TwoOperand:  true,
		MinWidth:    2,
		Build:       SaturatingAdder,
	},
	"kogge-stone-adder": {
		Name:        "kogge-stone-adder",
		Description: "Kogge-Stone parallel-prefix adder (minimal depth)",
		TwoOperand:  true,
		MinWidth:    1,
		Build:       KoggeStoneAdder,
	},
	"brent-kung-adder": {
		Name:        "brent-kung-adder",
		Description: "Brent-Kung parallel-prefix adder (minimal cell count)",
		TwoOperand:  true,
		MinWidth:    1,
		Build:       BrentKungAdder,
	},
	"dadda-multiplier": {
		Name:        "dadda-multiplier",
		Description: "unsigned m x m multiplier with Dadda column reduction",
		TwoOperand:  true,
		MinWidth:    2,
		Build:       DaddaMult,
	},
}

// Lookup returns a catalog module by name.
func Lookup(name string) (Module, error) {
	mod, ok := catalog[name]
	if !ok {
		return Module{}, fmt.Errorf("dwlib: unknown module %q (have %v)", name, Names())
	}
	return mod, nil
}

// Names returns all catalog module names, sorted.
func Names() []string {
	out := make([]string, 0, len(catalog))
	for name := range catalog {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// PaperModules returns the five module types evaluated in the paper's
// Table 1, in the paper's row order.
func PaperModules() []Module {
	names := []string{
		"ripple-adder", "cla-adder", "absval", "csa-multiplier",
		"booth-wallace-multiplier",
	}
	out := make([]Module, len(names))
	for i, n := range names {
		mod, err := Lookup(n)
		if err != nil {
			panic(err) // catalog is static; a miss is a programming error
		}
		out[i] = mod
	}
	return out
}

func checkWidth(module string, m, min int) {
	if m < min {
		panic(fmt.Sprintf("dwlib: %s requires width >= %d, got %d", module, min, m))
	}
}

// rippleSum wires a ripple-carry adder over existing nets inside n and
// returns the m sum nets plus the carry-out net. cin may be a constant
// net. It is the shared vector-merge primitive of the multipliers and
// absval.
func rippleSum(n *netlist.Netlist, a, b []netlist.NetID, cin netlist.NetID) (sum []netlist.NetID, cout netlist.NetID) {
	if len(a) != len(b) {
		panic(fmt.Sprintf("dwlib: rippleSum width mismatch %d vs %d", len(a), len(b)))
	}
	sum = make([]netlist.NetID, len(a))
	carry := cin
	for i := range a {
		sum[i], carry = n.FullAdder(a[i], b[i], carry)
	}
	return sum, carry
}
