package dwlib

import (
	"fmt"

	"hdpower/internal/netlist"
)

// add3 sums three bits into (sum, carry), strength-reducing full adders
// whose inputs include constant-zero nets. Constant-one inputs are left to
// the generic full adder; generators only ever feed const0 padding here.
func add3(n *netlist.Netlist, x, y, z netlist.NetID) (sum, carry netlist.NetID) {
	isZero := func(id netlist.NetID) bool {
		v, c := n.IsConst(id)
		return c && !v
	}
	// Sort the zero inputs to the front (order of addition is irrelevant).
	in := []netlist.NetID{x, y, z}
	zeros := 0
	for i := 0; i < 3; i++ {
		if isZero(in[i]) {
			in[zeros], in[i] = in[i], in[zeros]
			zeros++
		}
	}
	switch zeros {
	case 3:
		return in[0], in[0] // both const0
	case 2:
		return in[2], in[0] // pass through, no carry
	case 1:
		return n.HalfAdder(in[1], in[2])
	default:
		return n.FullAdder(in[0], in[1], in[2])
	}
}

// CSAMult generates an unsigned m1 x m2 carry-save array multiplier:
// an AND-gate partial-product plane, m2-1 carry-save adder rows in series,
// and a final ripple vector-merge adder. Ports: a[m1], b[m2] ->
// prod[m1+m2].
//
// The array part has m1·m2 complexity and the merge adder m1+m2 — the two
// complexity terms of the paper's eq. (7)/(8) regression for this module.
func CSAMult(m1, m2 int) *netlist.Netlist {
	checkWidth("csa-multiplier", m1, 2)
	checkWidth("csa-multiplier", m2, 2)
	n := netlist.New(fmt.Sprintf("csa_mult_%dx%d", m1, m2))
	a := n.AddInputBus("a", m1)
	b := n.AddInputBus("b", m2)
	p := m1 + m2
	zero := n.Const(false)

	// S[k] and C[k] hold the carry-save accumulator at absolute bit k.
	s := make([]netlist.NetID, p)
	c := make([]netlist.NetID, p)
	for k := range s {
		s[k], c[k] = zero, zero
	}
	// Row 0 is just the first partial product.
	for j := 0; j < m1; j++ {
		s[j] = n.And(a.Nets[j], b.Nets[0])
	}
	// Rows 1..m2-1: absorb partial product i at positions i..i+m1-1.
	for i := 1; i < m2; i++ {
		pending := make([]netlist.NetID, 0, m1)
		for j := 0; j < m1; j++ {
			k := i + j
			pp := n.And(a.Nets[j], b.Nets[i])
			sum, carry := add3(n, s[k], c[k], pp)
			s[k] = sum
			c[k] = zero // consumed; carry is deferred to the next row
			pending = append(pending, carry)
		}
		for j, carry := range pending {
			c[i+j+1] = carry
		}
	}
	// Vector-merge: positions below m2 are final, the rest ripple.
	prod := make([]netlist.NetID, p)
	copy(prod, s[:m2])
	carry := zero
	for k := m2; k < p; k++ {
		var sum netlist.NetID
		sum, carry = add3(n, s[k], c[k], carry)
		prod[k] = sum
	}
	// The final carry out of bit p-1 is always 0 for unsigned operands
	// (the product fits in m1+m2 bits), so it is intentionally dropped.
	n.MarkOutputBus("prod", prod)
	return n
}
