package dwlib

import (
	"fmt"

	"hdpower/internal/netlist"
)

// AbsVal generates the two's-complement absolute value of an m-bit
// operand: y = a < 0 ? -a : a, implemented as the classic
// conditional-invert-and-increment: y = (a XOR sign) + sign.
// Ports: a[m] -> y[m]. The most negative value wraps to itself, as in
// hardware.
func AbsVal(m int) *netlist.Netlist {
	checkWidth("absval", m, 2)
	n := netlist.New(fmt.Sprintf("absval_%d", m))
	a := n.AddInputBus("a", m)
	sign := a.Nets[m-1]

	inv := make([]netlist.NetID, m)
	for i, id := range a.Nets {
		inv[i] = n.Xor(id, sign)
	}
	// Add the sign bit at the LSB with a half-adder chain.
	y := make([]netlist.NetID, m)
	carry := sign
	for i := 0; i < m; i++ {
		y[i], carry = n.HalfAdder(inv[i], carry)
	}
	n.MarkOutputBus("y", y)
	return n
}
