package dwlib

import (
	"fmt"

	"hdpower/internal/netlist"
)

// Comparator generates an m-bit unsigned magnitude comparator.
// Ports: a[m], b[m] -> eq[1], lt[1] (lt means a < b).
// Equality is an XNOR/AND tree; less-than is the borrow chain of a - b.
func Comparator(m int) *netlist.Netlist {
	checkWidth("comparator", m, 1)
	n := netlist.New(fmt.Sprintf("comparator_%d", m))
	a := n.AddInputBus("a", m)
	b := n.AddInputBus("b", m)

	// eq = AND over XNOR(a_i, b_i), balanced tree.
	eqs := make([]netlist.NetID, m)
	for i := 0; i < m; i++ {
		eqs[i] = n.Xnor(a.Nets[i], b.Nets[i])
	}
	for len(eqs) > 1 {
		var nxt []netlist.NetID
		for i := 0; i+1 < len(eqs); i += 2 {
			nxt = append(nxt, n.And(eqs[i], eqs[i+1]))
		}
		if len(eqs)%2 == 1 {
			nxt = append(nxt, eqs[len(eqs)-1])
		}
		eqs = nxt
	}

	// borrow chain: borrow_{i+1} = (~a_i & b_i) | (~(a_i ^ b_i) & borrow_i)
	borrow := n.Const(false)
	for i := 0; i < m; i++ {
		notA := n.Not(a.Nets[i])
		gen := n.And(notA, b.Nets[i])
		propagate := n.Xnor(a.Nets[i], b.Nets[i])
		borrow = n.Or(gen, n.And(propagate, borrow))
	}
	n.MarkOutputBus("eq", []netlist.NetID{eqs[0]})
	n.MarkOutputBus("lt", []netlist.NetID{borrow})
	return n
}

// ParityTree generates a balanced XOR reduction over an m-bit operand.
// Ports: a[m] -> y[1].
func ParityTree(m int) *netlist.Netlist {
	checkWidth("parity-tree", m, 2)
	n := netlist.New(fmt.Sprintf("parity_tree_%d", m))
	a := n.AddInputBus("a", m)
	level := append([]netlist.NetID(nil), a.Nets...)
	for len(level) > 1 {
		var nxt []netlist.NetID
		for i := 0; i+1 < len(level); i += 2 {
			nxt = append(nxt, n.Xor(level[i], level[i+1]))
		}
		if len(level)%2 == 1 {
			nxt = append(nxt, level[len(level)-1])
		}
		level = nxt
	}
	n.MarkOutputBus("y", []netlist.NetID{level[0]})
	return n
}

// shamtBits returns the number of shift-amount bits for an m-bit shifter:
// the smallest s with 2^s >= m.
func shamtBits(m int) int {
	s := 0
	for 1<<uint(s) < m {
		s++
	}
	return s
}

// BarrelShifter generates a logarithmic logical left shifter: stage k
// shifts by 2^k when shift-amount bit k is set; zeros fill vacated
// positions. Shift amounts >= m produce zero. Ports: a[m], sh[ceil(log2 m)]
// -> y[m].
func BarrelShifter(m int) *netlist.Netlist {
	checkWidth("barrel-shifter", m, 2)
	n := netlist.New(fmt.Sprintf("barrel_shifter_%d", m))
	a := n.AddInputBus("a", m)
	sh := n.AddInputBus("sh", shamtBits(m))
	zero := n.Const(false)

	cur := append([]netlist.NetID(nil), a.Nets...)
	for k := 0; k < sh.Width(); k++ {
		step := 1 << uint(k)
		nxt := make([]netlist.NetID, m)
		for i := 0; i < m; i++ {
			shifted := zero
			if i-step >= 0 {
				shifted = cur[i-step]
			}
			nxt[i] = n.Mux(cur[i], shifted, sh.Nets[k])
		}
		cur = nxt
	}
	n.MarkOutputBus("y", cur)
	return n
}
