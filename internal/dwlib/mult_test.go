package dwlib

import (
	"math/rand"
	"testing"

	"hdpower/internal/logic"
	"hdpower/internal/sim"
)

func TestCSAMultExhaustive4x4(t *testing.T) {
	nl := CSAMult(4, 4)
	s, err := sim.New(nl, sim.ZeroDelay)
	if err != nil {
		t.Fatal(err)
	}
	for a := uint64(0); a < 16; a++ {
		for b := uint64(0); b < 16; b++ {
			in := logic.FromUint(a, 4).Concat(logic.FromUint(b, 4))
			prod, _ := s.Eval(in, "prod")
			if prod.Uint() != a*b {
				t.Fatalf("%d*%d = %d, want %d", a, b, prod.Uint(), a*b)
			}
		}
	}
}

func TestCSAMultRectangular(t *testing.T) {
	// Non-square arrays exercise the differing complexity terms of
	// eq. (8): 6x4, 3x7, etc.
	cases := [][2]int{{6, 4}, {3, 7}, {2, 5}, {5, 2}}
	rng := rand.New(rand.NewSource(9))
	for _, c := range cases {
		m1, m2 := c[0], c[1]
		nl := CSAMult(m1, m2)
		s, _ := sim.New(nl, sim.ZeroDelay)
		for i := 0; i < 100; i++ {
			a := rng.Uint64() & (1<<uint(m1) - 1)
			b := rng.Uint64() & (1<<uint(m2) - 1)
			in := logic.FromUint(a, m1).Concat(logic.FromUint(b, m2))
			prod, _ := s.Eval(in, "prod")
			if prod.Uint() != a*b {
				t.Fatalf("%dx%d: %d*%d = %d", m1, m2, a, b, prod.Uint())
			}
		}
	}
}

func TestCSAMultRandomLarge(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for _, m := range []int{8, 12, 16} {
		nl := CSAMult(m, m)
		s, _ := sim.New(nl, sim.ZeroDelay)
		for i := 0; i < 100; i++ {
			a := rng.Uint64() & (1<<uint(m) - 1)
			b := rng.Uint64() & (1<<uint(m) - 1)
			in := logic.FromUint(a, m).Concat(logic.FromUint(b, m))
			prod, _ := s.Eval(in, "prod")
			if prod.Uint() != a*b {
				t.Fatalf("m=%d: %d*%d = %d", m, a, b, prod.Uint())
			}
		}
	}
}

func TestBoothWallaceExhaustive4x4Signed(t *testing.T) {
	nl := BoothWallaceMult(4)
	s, err := sim.New(nl, sim.ZeroDelay)
	if err != nil {
		t.Fatal(err)
	}
	for a := int64(-8); a < 8; a++ {
		for b := int64(-8); b < 8; b++ {
			in := logic.FromInt(a, 4).Concat(logic.FromInt(b, 4))
			prod, _ := s.Eval(in, "prod")
			if prod.Int() != a*b {
				t.Fatalf("%d*%d = %d, want %d", a, b, prod.Int(), a*b)
			}
		}
	}
}

func TestBoothWallaceExhaustive6x6Signed(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive 6x6 in -short mode")
	}
	nl := BoothWallaceMult(6)
	s, _ := sim.New(nl, sim.ZeroDelay)
	for a := int64(-32); a < 32; a++ {
		for b := int64(-32); b < 32; b++ {
			in := logic.FromInt(a, 6).Concat(logic.FromInt(b, 6))
			prod, _ := s.Eval(in, "prod")
			if prod.Int() != a*b {
				t.Fatalf("%d*%d = %d, want %d", a, b, prod.Int(), a*b)
			}
		}
	}
}

func TestBoothWallaceRandomLarge(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, m := range []int{8, 12, 16} {
		nl := BoothWallaceMult(m)
		s, _ := sim.New(nl, sim.ZeroDelay)
		half := int64(1) << uint(m-1)
		for i := 0; i < 100; i++ {
			a := rng.Int63n(2*half) - half
			b := rng.Int63n(2*half) - half
			in := logic.FromInt(a, m).Concat(logic.FromInt(b, m))
			prod, _ := s.Eval(in, "prod")
			if prod.Int() != a*b {
				t.Fatalf("m=%d: %d*%d = %d, want %d", m, a, b, prod.Int(), a*b)
			}
		}
	}
}

func TestBoothWallaceOddWidthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("odd width accepted")
		}
	}()
	BoothWallaceMult(5)
}

func TestAbsValExhaustive(t *testing.T) {
	for _, m := range []int{2, 4, 8} {
		nl := AbsVal(m)
		s, _ := sim.New(nl, sim.ZeroDelay)
		half := int64(1) << uint(m-1)
		for v := -half; v < half; v++ {
			in := logic.FromInt(v, m)
			y, _ := s.Eval(in, "y")
			want := v
			if want < 0 {
				want = -want
			}
			// The most negative value wraps to itself.
			want &= 1<<uint(m) - 1
			if y.Uint() != uint64(want) {
				t.Fatalf("m=%d: abs(%d) = %d, want %d", m, v, y.Uint(), want)
			}
		}
	}
}

func TestMultiplierComplexityQuadratic(t *testing.T) {
	// The Section 5 regression for the CSA multiplier assumes m^2 array
	// complexity: second differences of gate counts must be constant.
	g := make([]int, 4)
	widths := []int{4, 8, 12, 16}
	for i, m := range widths {
		g[i] = CSAMult(m, m).Stats().Gates
	}
	d1 := []int{g[1] - g[0], g[2] - g[1], g[3] - g[2]}
	d2a := d1[1] - d1[0]
	d2b := d1[2] - d1[1]
	if d2a != d2b {
		t.Errorf("CSA mult gate growth not quadratic: counts %v, second diffs %d vs %d",
			g, d2a, d2b)
	}
}

func TestWallaceShallowerThanArray(t *testing.T) {
	// The Wallace tree must beat the linear CSA array in depth at 16 bits.
	wallace := BoothWallaceMult(16).Depth()
	array := CSAMult(16, 16).Depth()
	if wallace >= array {
		t.Errorf("wallace depth %d !< array depth %d", wallace, array)
	}
}
