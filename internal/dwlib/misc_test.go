package dwlib

import (
	"math/bits"
	"math/rand"
	"testing"

	"hdpower/internal/logic"
	"hdpower/internal/sim"
)

func TestComparatorExhaustive(t *testing.T) {
	m := 4
	nl := Comparator(m)
	s, _ := sim.New(nl, sim.ZeroDelay)
	for a := uint64(0); a < 16; a++ {
		for b := uint64(0); b < 16; b++ {
			in := logic.FromUint(a, m).Concat(logic.FromUint(b, m))
			eq, _ := s.Eval(in, "eq")
			lt, _ := s.Eval(in, "lt")
			if (eq.Uint() == 1) != (a == b) {
				t.Fatalf("eq(%d,%d) = %d", a, b, eq.Uint())
			}
			if (lt.Uint() == 1) != (a < b) {
				t.Fatalf("lt(%d,%d) = %d", a, b, lt.Uint())
			}
		}
	}
}

func TestParityTreeExhaustive(t *testing.T) {
	for _, m := range []int{2, 3, 8} {
		nl := ParityTree(m)
		s, _ := sim.New(nl, sim.ZeroDelay)
		for a := uint64(0); a < 1<<uint(m); a++ {
			y, _ := s.Eval(logic.FromUint(a, m), "y")
			want := uint64(bits.OnesCount64(a) % 2)
			if y.Uint() != want {
				t.Fatalf("m=%d parity(%b) = %d, want %d", m, a, y.Uint(), want)
			}
		}
	}
}

func TestBarrelShifterExhaustive(t *testing.T) {
	m := 8
	nl := BarrelShifter(m)
	s, _ := sim.New(nl, sim.ZeroDelay)
	shBits := shamtBits(m)
	for a := uint64(0); a < 256; a += 7 {
		for sh := uint64(0); sh < 1<<uint(shBits); sh++ {
			in := logic.FromUint(a, m).Concat(logic.FromUint(sh, shBits))
			y, _ := s.Eval(in, "y")
			want := (a << sh) & 0xff
			if y.Uint() != want {
				t.Fatalf("%d<<%d = %d, want %d", a, sh, y.Uint(), want)
			}
		}
	}
}

func TestBarrelShifterNonPow2(t *testing.T) {
	m := 6
	nl := BarrelShifter(m)
	s, _ := sim.New(nl, sim.ZeroDelay)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 200; i++ {
		a := rng.Uint64() & 63
		sh := rng.Uint64() & 7
		in := logic.FromUint(a, m).Concat(logic.FromUint(sh, 3))
		y, _ := s.Eval(in, "y")
		want := (a << sh) & 63
		if y.Uint() != want {
			t.Fatalf("%d<<%d = %d, want %d", a, sh, y.Uint(), want)
		}
	}
}

func TestShamtBits(t *testing.T) {
	cases := map[int]int{2: 1, 3: 2, 4: 2, 5: 3, 8: 3, 9: 4, 16: 4, 32: 5}
	for m, want := range cases {
		if got := shamtBits(m); got != want {
			t.Errorf("shamtBits(%d) = %d, want %d", m, got, want)
		}
	}
}

func TestCatalogComplete(t *testing.T) {
	names := Names()
	if len(names) < 10 {
		t.Fatalf("catalog has only %d modules", len(names))
	}
	for _, name := range names {
		mod, err := Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		if mod.Name != name {
			t.Errorf("catalog key %q holds module named %q", name, mod.Name)
		}
		if mod.Build == nil || mod.Description == "" {
			t.Errorf("%s: incomplete catalog entry", name)
		}
		// Every generator must produce a valid (finalizable) netlist at a
		// representative width.
		w := mod.MinWidth
		if w < 4 {
			w = 4
		}
		nl := mod.Build(w)
		if err := nl.Finalize(); err != nil {
			t.Errorf("%s(%d): %v", name, w, err)
		}
		if nl.NumGates() == 0 {
			t.Errorf("%s(%d): empty netlist", name, w)
		}
	}
}

func TestLookupUnknown(t *testing.T) {
	if _, err := Lookup("flux-capacitor"); err == nil {
		t.Fatal("unknown module accepted")
	}
}

func TestPaperModules(t *testing.T) {
	mods := PaperModules()
	if len(mods) != 5 {
		t.Fatalf("paper modules = %d, want 5", len(mods))
	}
	want := []string{"ripple-adder", "cla-adder", "absval", "csa-multiplier",
		"booth-wallace-multiplier"}
	for i, mod := range mods {
		if mod.Name != want[i] {
			t.Errorf("paper module %d = %s, want %s", i, mod.Name, want[i])
		}
	}
}

func TestTotalInputBits(t *testing.T) {
	add, _ := Lookup("ripple-adder")
	if add.TotalInputBits(8) != 16 {
		t.Errorf("adder total input bits = %d", add.TotalInputBits(8))
	}
	abs, _ := Lookup("absval")
	if abs.TotalInputBits(8) != 8 {
		t.Errorf("absval total input bits = %d", abs.TotalInputBits(8))
	}
}
