package dwlib

import (
	"math/bits"
	"math/rand"
	"testing"

	"hdpower/internal/logic"
	"hdpower/internal/sim"
)

func TestMACExhaustiveSmall(t *testing.T) {
	m := 3
	nl := MAC(m)
	s, err := sim.New(nl, sim.ZeroDelay)
	if err != nil {
		t.Fatal(err)
	}
	for a := uint64(0); a < 8; a++ {
		for b := uint64(0); b < 8; b++ {
			for c := uint64(0); c < 64; c += 5 {
				in := logic.FromUint(a, m).
					Concat(logic.FromUint(b, m)).
					Concat(logic.FromUint(c, 2*m))
				acc, _ := s.Eval(in, "acc")
				if acc.Uint() != a*b+c {
					t.Fatalf("%d*%d+%d = %d, want %d", a, b, c, acc.Uint(), a*b+c)
				}
			}
		}
	}
}

func TestMACRandomLarge(t *testing.T) {
	m := 8
	nl := MAC(m)
	s, _ := sim.New(nl, sim.ZeroDelay)
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 200; i++ {
		a := rng.Uint64() & 0xff
		b := rng.Uint64() & 0xff
		c := rng.Uint64() & 0xffff
		in := logic.FromUint(a, m).
			Concat(logic.FromUint(b, m)).
			Concat(logic.FromUint(c, 2*m))
		acc, _ := s.Eval(in, "acc")
		if acc.Uint() != a*b+c {
			t.Fatalf("%d*%d+%d = %d", a, b, c, acc.Uint())
		}
	}
}

func TestSquarerExhaustive(t *testing.T) {
	for _, m := range []int{2, 4, 6, 8} {
		nl := Squarer(m)
		s, _ := sim.New(nl, sim.ZeroDelay)
		for a := uint64(0); a < 1<<uint(m); a++ {
			y, _ := s.Eval(logic.FromUint(a, m), "y")
			if y.Uint() != a*a {
				t.Fatalf("m=%d: %d^2 = %d, want %d", m, a, y.Uint(), a*a)
			}
		}
	}
}

func TestSquarerSmallerThanMultiplier(t *testing.T) {
	// The folded array must beat the general multiplier in gate count.
	if Squarer(8).Stats().Gates >= CSAMult(8, 8).Stats().Gates {
		t.Errorf("squarer gates %d !< multiplier gates %d",
			Squarer(8).Stats().Gates, CSAMult(8, 8).Stats().Gates)
	}
}

func TestGrayRoundTrip(t *testing.T) {
	m := 6
	enc, _ := sim.New(GrayEncoder(m), sim.ZeroDelay)
	dec, _ := sim.New(GrayDecoder(m), sim.ZeroDelay)
	for a := uint64(0); a < 64; a++ {
		g, _ := enc.Eval(logic.FromUint(a, m), "g")
		want := a ^ (a >> 1)
		if g.Uint() != want {
			t.Fatalf("gray(%d) = %d, want %d", a, g.Uint(), want)
		}
		back, _ := dec.Eval(g, "b")
		if back.Uint() != a {
			t.Fatalf("decode(encode(%d)) = %d", a, back.Uint())
		}
	}
}

func TestGrayAdjacency(t *testing.T) {
	// Gray property: consecutive encodings differ in exactly one bit —
	// the property that makes Gray counters the textbook low-Hd encoding
	// for the Hd power model.
	m := 8
	enc, _ := sim.New(GrayEncoder(m), sim.ZeroDelay)
	prev, _ := enc.Eval(logic.FromUint(0, m), "g")
	for a := uint64(1); a < 256; a++ {
		cur, _ := enc.Eval(logic.FromUint(a, m), "g")
		if logic.Hd(prev, cur) != 1 {
			t.Fatalf("gray(%d) -> gray(%d) has Hd %d", a-1, a, logic.Hd(prev, cur))
		}
		prev = cur
	}
}

func TestLeadingZerosExhaustive(t *testing.T) {
	for _, m := range []int{4, 8, 11} {
		nl := LeadingZeros(m)
		s, _ := sim.New(nl, sim.ZeroDelay)
		for a := uint64(0); a < 1<<uint(m); a++ {
			y, _ := s.Eval(logic.FromUint(a, m), "y")
			want := uint64(m)
			if a != 0 {
				want = uint64(m - bits.Len64(a))
			}
			if y.Uint() != want {
				t.Fatalf("m=%d: lz(%b) = %d, want %d", m, a, y.Uint(), want)
			}
		}
	}
}

func TestMinMaxExhaustive(t *testing.T) {
	m := 4
	nl := MinMax(m)
	s, _ := sim.New(nl, sim.ZeroDelay)
	for a := uint64(0); a < 16; a++ {
		for b := uint64(0); b < 16; b++ {
			in := logic.FromUint(a, m).Concat(logic.FromUint(b, m))
			lo, _ := s.Eval(in, "lo")
			hi, _ := s.Eval(in, "hi")
			wantLo, wantHi := a, b
			if b < a {
				wantLo, wantHi = b, a
			}
			if lo.Uint() != wantLo || hi.Uint() != wantHi {
				t.Fatalf("minmax(%d,%d) = %d,%d", a, b, lo.Uint(), hi.Uint())
			}
		}
	}
}

func TestSaturatingAdderExhaustive(t *testing.T) {
	m := 5
	nl := SaturatingAdder(m)
	s, _ := sim.New(nl, sim.ZeroDelay)
	minV, maxV := int64(-16), int64(15)
	for a := minV; a <= maxV; a++ {
		for b := minV; b <= maxV; b++ {
			in := logic.FromInt(a, m).Concat(logic.FromInt(b, m))
			sum, _ := s.Eval(in, "sum")
			sat, _ := s.Eval(in, "sat")
			want := a + b
			wantSat := uint64(0)
			if want > maxV {
				want = maxV
				wantSat = 1
			}
			if want < minV {
				want = minV
				wantSat = 1
			}
			if sum.Int() != want {
				t.Fatalf("satadd(%d,%d) = %d, want %d", a, b, sum.Int(), want)
			}
			if sat.Uint() != wantSat {
				t.Fatalf("satadd(%d,%d) sat = %d, want %d", a, b, sat.Uint(), wantSat)
			}
		}
	}
}
