package dwlib

import (
	"math/rand"
	"testing"

	"hdpower/internal/bdd"
	"hdpower/internal/logic"
	"hdpower/internal/sim"
)

func TestKoggeStoneExhaustiveSmall(t *testing.T) {
	for _, m := range []int{1, 2, 3, 4, 5} {
		nl := KoggeStoneAdder(m)
		s, _ := sim.New(nl, sim.ZeroDelay)
		for a := uint64(0); a < 1<<uint(m); a++ {
			for b := uint64(0); b < 1<<uint(m); b++ {
				sum, _ := s.Eval(twoOp(a, b, m), "sum")
				cout, _ := s.Eval(twoOp(a, b, m), "cout")
				total := a + b
				if sum.Uint() != total&(1<<uint(m)-1) || cout.Uint() != total>>uint(m) {
					t.Fatalf("m=%d: %d+%d = sum %d cout %d", m, a, b, sum.Uint(), cout.Uint())
				}
			}
		}
	}
}

func TestKoggeStoneRandom(t *testing.T) { randomAdderCheck(t, KoggeStoneAdder, "kogge-stone") }

func TestBrentKungRandom(t *testing.T) { randomAdderCheck(t, BrentKungAdder, "brent-kung") }

func TestPrefixAddersFormallyEquivalentToRipple(t *testing.T) {
	// BDD proof across awkward (non-power-of-two) widths.
	for _, m := range []int{5, 6, 7, 8, 12, 13} {
		ripple := RippleAdder(m)
		eq, cex, err := bdd.Equivalent(ripple, KoggeStoneAdder(m))
		if err != nil {
			t.Fatal(err)
		}
		if !eq {
			t.Errorf("kogge-stone width %d differs at %+v", m, cex)
		}
		eq, cex, err = bdd.Equivalent(ripple, BrentKungAdder(m))
		if err != nil {
			t.Fatal(err)
		}
		if !eq {
			t.Errorf("brent-kung width %d differs at %+v", m, cex)
		}
	}
}

func TestPrefixAdderDepths(t *testing.T) {
	// Kogge-Stone must be the shallowest adder in the catalog at 32 bits;
	// Brent-Kung must use fewer gates than Kogge-Stone.
	ks := KoggeStoneAdder(32)
	bk := BrentKungAdder(32)
	ripple := RippleAdder(32)
	if ks.Depth() >= ripple.Depth() {
		t.Errorf("kogge-stone depth %d !< ripple depth %d", ks.Depth(), ripple.Depth())
	}
	if bk.Stats().Gates >= ks.Stats().Gates {
		t.Errorf("brent-kung gates %d !< kogge-stone gates %d",
			bk.Stats().Gates, ks.Stats().Gates)
	}
	if ks.Depth() > bk.Depth() {
		t.Errorf("kogge-stone depth %d > brent-kung depth %d", ks.Depth(), bk.Depth())
	}
}

func TestDaddaExhaustive4x4(t *testing.T) {
	nl := DaddaMult(4)
	s, _ := sim.New(nl, sim.ZeroDelay)
	for a := uint64(0); a < 16; a++ {
		for b := uint64(0); b < 16; b++ {
			in := logic.FromUint(a, 4).Concat(logic.FromUint(b, 4))
			prod, _ := s.Eval(in, "prod")
			if prod.Uint() != a*b {
				t.Fatalf("%d*%d = %d", a, b, prod.Uint())
			}
		}
	}
}

func TestDaddaRandomLarge(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for _, m := range []int{8, 12, 16} {
		nl := DaddaMult(m)
		s, _ := sim.New(nl, sim.ZeroDelay)
		for i := 0; i < 150; i++ {
			a := rng.Uint64() & (1<<uint(m) - 1)
			b := rng.Uint64() & (1<<uint(m) - 1)
			in := logic.FromUint(a, m).Concat(logic.FromUint(b, m))
			prod, _ := s.Eval(in, "prod")
			if prod.Uint() != a*b {
				t.Fatalf("m=%d: %d*%d = %d", m, a, b, prod.Uint())
			}
		}
	}
}

func TestDaddaMatchesCSAFormally(t *testing.T) {
	eq, cex, err := bdd.Equivalent(CSAMult(4, 4), DaddaMult(4))
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Errorf("dadda differs from CSA array at %+v", cex)
	}
}
