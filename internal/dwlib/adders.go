package dwlib

import (
	"fmt"

	"hdpower/internal/netlist"
)

// RippleAdder generates an m-bit ripple-carry adder. Ports: a[m], b[m] ->
// sum[m], cout[1]. Complexity is linear in m, the property eq. (6) of the
// paper builds its regression on.
func RippleAdder(m int) *netlist.Netlist {
	checkWidth("ripple-adder", m, 1)
	n := netlist.New(fmt.Sprintf("ripple_adder_%d", m))
	a := n.AddInputBus("a", m)
	b := n.AddInputBus("b", m)
	sum, cout := rippleSum(n, a.Nets, b.Nets, n.Const(false))
	n.MarkOutputBus("sum", sum)
	n.MarkOutputBus("cout", []netlist.NetID{cout})
	return n
}

// CLAAdder generates an m-bit carry-lookahead adder built from 4-bit
// lookahead blocks whose block carries ripple — the classic DesignWare
// `csa`-style architecture. Ports: a[m], b[m] -> sum[m], cout[1].
func CLAAdder(m int) *netlist.Netlist {
	checkWidth("cla-adder", m, 1)
	n := netlist.New(fmt.Sprintf("cla_adder_%d", m))
	a := n.AddInputBus("a", m)
	b := n.AddInputBus("b", m)

	sum := make([]netlist.NetID, m)
	carry := n.Const(false)
	for lo := 0; lo < m; lo += 4 {
		hi := lo + 4
		if hi > m {
			hi = m
		}
		blockSum, blockCout := claBlock(n, a.Nets[lo:hi], b.Nets[lo:hi], carry)
		copy(sum[lo:hi], blockSum)
		carry = blockCout
	}
	n.MarkOutputBus("sum", sum)
	n.MarkOutputBus("cout", []netlist.NetID{carry})
	return n
}

// claBlock builds one lookahead block of up to 4 bits. Per-bit propagate
// p_i = a^b and generate g_i = a&b feed group signals
//
//	G_i = g_{i-1} | p_{i-1}·G_{i-1}   (carry generated within bits 0..i-1)
//	P_i = p_{i-1}·P_{i-1}             (carry propagated across bits 0..i-1)
//
// that are independent of the block carry-in, so each carry is only two
// gate levels away from cin: c_i = G_i | P_i·cin. This is what makes the
// cin-to-cout path of a block constant-depth and the whole adder faster
// than the ripple chain.
func claBlock(n *netlist.Netlist, a, b []netlist.NetID, cin netlist.NetID) (sum []netlist.NetID, cout netlist.NetID) {
	k := len(a)
	p := make([]netlist.NetID, k)
	g := make([]netlist.NetID, k)
	for i := 0; i < k; i++ {
		p[i] = n.Xor(a[i], b[i])
		g[i] = n.And(a[i], b[i])
	}
	// carries[i] is the carry INTO bit i; carries[k] is the block cout.
	carries := make([]netlist.NetID, k+1)
	carries[0] = cin
	var groupG, groupP netlist.NetID
	for i := 1; i <= k; i++ {
		if i == 1 {
			groupG, groupP = g[0], p[0]
		} else {
			groupG = n.Or(g[i-1], n.And(p[i-1], groupG))
			groupP = n.And(p[i-1], groupP)
		}
		carries[i] = n.Or(groupG, n.And(groupP, cin))
	}
	sum = make([]netlist.NetID, k)
	for i := 0; i < k; i++ {
		sum[i] = n.Xor(p[i], carries[i])
	}
	return sum, carries[k]
}

// RippleSubtractor generates an m-bit two's-complement subtractor
// diff = a - b implemented as a + ~b + 1. Ports: a[m], b[m] ->
// diff[m], bout[1] (carry out of the adder; 1 means no borrow).
func RippleSubtractor(m int) *netlist.Netlist {
	checkWidth("ripple-subtractor", m, 1)
	n := netlist.New(fmt.Sprintf("ripple_subtractor_%d", m))
	a := n.AddInputBus("a", m)
	b := n.AddInputBus("b", m)
	nb := make([]netlist.NetID, m)
	for i, id := range b.Nets {
		nb[i] = n.Not(id)
	}
	diff, cout := rippleSum(n, a.Nets, nb, n.Const(true))
	n.MarkOutputBus("diff", diff)
	n.MarkOutputBus("bout", []netlist.NetID{cout})
	return n
}

// Incrementer generates y = a + 1 as a half-adder chain. Ports: a[m] ->
// y[m], cout[1].
func Incrementer(m int) *netlist.Netlist {
	checkWidth("incrementer", m, 1)
	n := netlist.New(fmt.Sprintf("incrementer_%d", m))
	a := n.AddInputBus("a", m)
	y := make([]netlist.NetID, m)
	carry := n.Const(true)
	for i := 0; i < m; i++ {
		y[i], carry = n.HalfAdder(a.Nets[i], carry)
	}
	n.MarkOutputBus("y", y)
	n.MarkOutputBus("cout", []netlist.NetID{carry})
	return n
}

// CarrySelectAdder generates an m-bit carry-select adder with 4-bit
// groups: each group computes both carry-in hypotheses with two ripple
// chains and selects with muxes. Ports: a[m], b[m] -> sum[m], cout[1].
func CarrySelectAdder(m int) *netlist.Netlist {
	checkWidth("carry-select-adder", m, 1)
	n := netlist.New(fmt.Sprintf("carry_select_adder_%d", m))
	a := n.AddInputBus("a", m)
	b := n.AddInputBus("b", m)

	sum := make([]netlist.NetID, m)
	carry := n.Const(false)
	for lo := 0; lo < m; lo += 4 {
		hi := lo + 4
		if hi > m {
			hi = m
		}
		if lo == 0 {
			// First group: carry-in is known (0), single ripple chain.
			s, c := rippleSum(n, a.Nets[lo:hi], b.Nets[lo:hi], carry)
			copy(sum[lo:hi], s)
			carry = c
			continue
		}
		s0, c0 := rippleSum(n, a.Nets[lo:hi], b.Nets[lo:hi], n.Const(false))
		s1, c1 := rippleSum(n, a.Nets[lo:hi], b.Nets[lo:hi], n.Const(true))
		for i := range s0 {
			sum[lo+i] = n.Mux(s0[i], s1[i], carry)
		}
		carry = n.Mux(c0, c1, carry)
	}
	n.MarkOutputBus("sum", sum)
	n.MarkOutputBus("cout", []netlist.NetID{carry})
	return n
}
