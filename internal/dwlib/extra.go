package dwlib

import (
	"fmt"

	"hdpower/internal/cells"
	"hdpower/internal/netlist"
)

// MAC generates an unsigned multiply-accumulate unit: acc = a·b + c with
// m-bit factors and a 2m-bit addend. The addend is folded into the
// multiplier's carry-save reduction, the classic fused-MAC structure.
// Ports: a[m], b[m], c[2m] -> acc[2m+1].
func MAC(m int) *netlist.Netlist {
	checkWidth("mac", m, 2)
	n := netlist.New(fmt.Sprintf("mac_%d", m))
	a := n.AddInputBus("a", m)
	b := n.AddInputBus("b", m)
	c := n.AddInputBus("c", 2*m)
	p := 2*m + 1
	zero := n.Const(false)

	cols := make([][]netlist.NetID, p)
	for i := 0; i < m; i++ {
		for j := 0; j < m; j++ {
			cols[i+j] = append(cols[i+j], n.And(a.Nets[j], b.Nets[i]))
		}
	}
	for k := 0; k < 2*m; k++ {
		cols[k] = append(cols[k], c.Nets[k])
	}
	acc := reduceAndMerge(n, cols, zero)
	n.MarkOutputBus("acc", acc)
	return n
}

// Squarer generates y = a² for an unsigned m-bit operand, exploiting the
// partial-product symmetry a_i·a_j + a_j·a_i = 2·a_i·a_j (one AND gate at
// the next column up) and a_i·a_i = a_i (no gate at all) — roughly half
// the array of a general multiplier. Ports: a[m] -> y[2m].
func Squarer(m int) *netlist.Netlist {
	checkWidth("squarer", m, 2)
	n := netlist.New(fmt.Sprintf("squarer_%d", m))
	a := n.AddInputBus("a", m)
	p := 2 * m
	zero := n.Const(false)

	cols := make([][]netlist.NetID, p)
	for i := 0; i < m; i++ {
		cols[2*i] = append(cols[2*i], a.Nets[i]) // diagonal term
		for j := i + 1; j < m; j++ {
			if i+j+1 < p {
				cols[i+j+1] = append(cols[i+j+1], n.And(a.Nets[i], a.Nets[j]))
			}
		}
	}
	y := reduceAndMerge(n, cols, zero)
	n.MarkOutputBus("y", y[:p])
	return n
}

// reduceAndMerge Wallace-reduces bit columns to two rows and merges them
// with a ripple carry-propagate adder. Carries out of the top column are
// dropped (callers size the column array to the full result width).
func reduceAndMerge(n *netlist.Netlist, cols [][]netlist.NetID, zero netlist.NetID) []netlist.NetID {
	p := len(cols)
	for maxHeight(cols) > 2 {
		next := make([][]netlist.NetID, p)
		for k, col := range cols {
			i := 0
			for len(col)-i >= 3 {
				s, c := n.FullAdder(col[i], col[i+1], col[i+2])
				next[k] = append(next[k], s)
				if k+1 < p {
					next[k+1] = append(next[k+1], c)
				}
				i += 3
			}
			if len(col)-i == 2 {
				s, c := n.HalfAdder(col[i], col[i+1])
				next[k] = append(next[k], s)
				if k+1 < p {
					next[k+1] = append(next[k+1], c)
				}
			} else if len(col)-i == 1 {
				next[k] = append(next[k], col[i])
			}
		}
		cols = next
	}
	out := make([]netlist.NetID, p)
	carry := zero
	for k := 0; k < p; k++ {
		x, y := zero, zero
		if len(cols[k]) > 0 {
			x = cols[k][0]
		}
		if len(cols[k]) > 1 {
			y = cols[k][1]
		}
		out[k], carry = add3(n, x, y, carry)
	}
	return out
}

// GrayEncoder generates the binary-to-Gray converter g = b ^ (b >> 1).
// Ports: a[m] -> g[m].
func GrayEncoder(m int) *netlist.Netlist {
	checkWidth("gray-encoder", m, 2)
	n := netlist.New(fmt.Sprintf("gray_encoder_%d", m))
	a := n.AddInputBus("a", m)
	g := make([]netlist.NetID, m)
	for i := 0; i < m-1; i++ {
		g[i] = n.Xor(a.Nets[i], a.Nets[i+1])
	}
	g[m-1] = n.AddGate(cells.Buf, a.Nets[m-1])
	n.MarkOutputBus("g", g)
	return n
}

// GrayDecoder generates the Gray-to-binary converter b_i = ⊕_{j>=i} g_j,
// built as the XOR suffix chain from the MSB. Ports: a[m] -> b[m].
func GrayDecoder(m int) *netlist.Netlist {
	checkWidth("gray-decoder", m, 2)
	n := netlist.New(fmt.Sprintf("gray_decoder_%d", m))
	a := n.AddInputBus("a", m)
	b := make([]netlist.NetID, m)
	b[m-1] = n.AddGate(cells.Buf, a.Nets[m-1])
	for i := m - 2; i >= 0; i-- {
		b[i] = n.Xor(a.Nets[i], b[i+1])
	}
	n.MarkOutputBus("b", b)
	return n
}

// LeadingZeros generates a leading-zero counter: y = number of zero bits
// above the most significant one of a (y = m for a = 0). The prefix
// "still all zero" chain feeds a population counter built from half/full
// adders. Ports: a[m] -> y[ceil(log2(m+1))].
func LeadingZeros(m int) *netlist.Netlist {
	checkWidth("leading-zeros", m, 2)
	n := netlist.New(fmt.Sprintf("leading_zeros_%d", m))
	a := n.AddInputBus("a", m)

	// nf[i] = 1 when bits m-1..i are all zero; the count of leading
	// zeros is Σ nf[i].
	nf := make([]netlist.NetID, m)
	nf[m-1] = n.Not(a.Nets[m-1])
	for i := m - 2; i >= 0; i-- {
		nf[i] = n.And(nf[i+1], n.Not(a.Nets[i]))
	}
	// Population count of the prefix flags via column reduction.
	outBits := 1
	for 1<<uint(outBits) < m+1 {
		outBits++
	}
	cols := make([][]netlist.NetID, outBits)
	cols[0] = append(cols[0], nf...)
	y := reduceAndMerge(n, cols, n.Const(false))
	n.MarkOutputBus("y", y)
	return n
}

// MinMax generates a two-output unsigned sorter: lo = min(a,b),
// hi = max(a,b), using the comparator borrow chain and a mux rank.
// Ports: a[m], b[m] -> lo[m], hi[m].
func MinMax(m int) *netlist.Netlist {
	checkWidth("min-max", m, 1)
	n := netlist.New(fmt.Sprintf("min_max_%d", m))
	a := n.AddInputBus("a", m)
	b := n.AddInputBus("b", m)

	// borrow of a-b: 1 when a < b
	borrow := n.Const(false)
	for i := 0; i < m; i++ {
		gen := n.And(n.Not(a.Nets[i]), b.Nets[i])
		propagate := n.Xnor(a.Nets[i], b.Nets[i])
		borrow = n.Or(gen, n.And(propagate, borrow))
	}
	lo := make([]netlist.NetID, m)
	hi := make([]netlist.NetID, m)
	for i := 0; i < m; i++ {
		lo[i] = n.Mux(b.Nets[i], a.Nets[i], borrow) // a<b ? a : b
		hi[i] = n.Mux(a.Nets[i], b.Nets[i], borrow) // a<b ? b : a
	}
	n.MarkOutputBus("lo", lo)
	n.MarkOutputBus("hi", hi)
	return n
}

// SaturatingAdder generates a two's-complement adder that clamps on
// overflow: sum = clamp(a + b, MIN, MAX). Overflow occurs when the
// operands share a sign the result does not. Ports: a[m], b[m] -> sum[m],
// sat[1] (saturation indicator).
func SaturatingAdder(m int) *netlist.Netlist {
	checkWidth("saturating-adder", m, 2)
	n := netlist.New(fmt.Sprintf("saturating_adder_%d", m))
	a := n.AddInputBus("a", m)
	b := n.AddInputBus("b", m)
	raw, _ := rippleSum(n, a.Nets, b.Nets, n.Const(false))

	as, bs, ss := a.Nets[m-1], b.Nets[m-1], raw[m-1]
	sameSign := n.Xnor(as, bs)
	flipped := n.Xor(as, ss)
	sat := n.And(sameSign, flipped)

	// Saturation value: sign of a decides MIN (10..0) or MAX (01..1).
	out := make([]netlist.NetID, m)
	for i := 0; i < m-1; i++ {
		out[i] = n.Mux(raw[i], n.Not(as), sat) // MAX bits are ~sign below MSB
	}
	out[m-1] = n.Mux(raw[m-1], as, sat)
	n.MarkOutputBus("sum", out)
	n.MarkOutputBus("sat", []netlist.NetID{sat})
	return n
}
