// Package cells defines the primitive gate library used by all generated
// datapath netlists: the available gate kinds, their logic functions, and
// the electrical data (input capacitance, output drive capacitance,
// intrinsic delay) the charge-based power simulator needs.
//
// The library plays the role of the standard-cell library underneath the
// Synopsys DesignWare components in the paper. Capacitances are expressed
// in arbitrary charge units (a net transition deposits the net's total
// capacitance of charge, with the supply voltage normalized to 1), so all
// power figures produced on top of it are meaningful relatively — which is
// all the paper's error metrics require.
package cells

import "fmt"

// Kind identifies a primitive gate.
type Kind int

// The primitive gate kinds. All are single-output.
const (
	Buf Kind = iota
	Inv
	And2
	And3
	Or2
	Or3
	Nand2
	Nand3
	Nor2
	Nor3
	Xor2
	Xor3
	Xnor2
	Mux2  // inputs: d0, d1, sel; output: sel ? d1 : d0
	Aoi21 // inputs: a, b, c; output: !((a&b)|c)
	Oai21 // inputs: a, b, c; output: !((a|b)&c)
	numKinds
)

var kindNames = [...]string{
	Buf:   "BUF",
	Inv:   "INV",
	And2:  "AND2",
	And3:  "AND3",
	Or2:   "OR2",
	Or3:   "OR3",
	Nand2: "NAND2",
	Nand3: "NAND3",
	Nor2:  "NOR2",
	Nor3:  "NOR3",
	Xor2:  "XOR2",
	Xor3:  "XOR3",
	Xnor2: "XNOR2",
	Mux2:  "MUX2",
	Aoi21: "AOI21",
	Oai21: "OAI21",
}

// String returns the conventional library name of the gate kind.
func (k Kind) String() string {
	if k < 0 || int(k) >= len(kindNames) {
		return fmt.Sprintf("Kind(%d)", int(k))
	}
	return kindNames[k]
}

// Valid reports whether k is a defined gate kind.
func (k Kind) Valid() bool { return k >= 0 && k < numKinds }

// Cell carries the per-kind library data.
type Cell struct {
	Kind Kind
	// NumInputs is the pin count of the gate.
	NumInputs int
	// InputCap is the capacitance presented by each input pin, in charge
	// units. Larger, more complex gates load their drivers more.
	InputCap float64
	// OutputCap is the intrinsic capacitance of the gate's output node
	// (drain/diffusion capacitance), added to the fanout load.
	OutputCap float64
	// Delay is the intrinsic propagation delay in integer time units used
	// by the event-driven simulator. Different delays per kind are what
	// make glitches (and thus data-dependent power) appear.
	Delay int
}

// table is indexed by Kind. The relative magnitudes follow typical
// standard-cell libraries: an XOR costs roughly twice a NAND in both load
// and delay; inverting gates are cheapest.
var table = [numKinds]Cell{
	Buf:   {Buf, 1, 1.0, 1.0, 1},
	Inv:   {Inv, 1, 1.0, 0.8, 1},
	And2:  {And2, 2, 1.2, 1.4, 2},
	And3:  {And3, 3, 1.3, 1.7, 2},
	Or2:   {Or2, 2, 1.2, 1.4, 2},
	Or3:   {Or3, 3, 1.3, 1.7, 2},
	Nand2: {Nand2, 2, 1.1, 1.1, 1},
	Nand3: {Nand3, 3, 1.2, 1.4, 2},
	Nor2:  {Nor2, 2, 1.1, 1.2, 1},
	Nor3:  {Nor3, 3, 1.2, 1.5, 2},
	Xor2:  {Xor2, 2, 1.8, 2.2, 3},
	Xor3:  {Xor3, 3, 2.2, 3.0, 3},
	Xnor2: {Xnor2, 2, 1.8, 2.2, 3},
	Mux2:  {Mux2, 3, 1.4, 1.8, 2},
	Aoi21: {Aoi21, 3, 1.2, 1.5, 2},
	Oai21: {Oai21, 3, 1.2, 1.5, 2},
}

// Lookup returns the library data for a gate kind.
// It panics if k is not a defined kind.
func Lookup(k Kind) Cell {
	if !k.Valid() {
		panic(fmt.Sprintf("cells: unknown gate kind %d", int(k)))
	}
	return table[k]
}

// Kinds returns all defined gate kinds in a stable order.
func Kinds() []Kind {
	out := make([]Kind, numKinds)
	for i := range out {
		out[i] = Kind(i)
	}
	return out
}

// Eval computes the gate's boolean function on the given inputs.
// It panics if the input count does not match the kind's pin count.
func Eval(k Kind, in []bool) bool {
	c := Lookup(k)
	if len(in) != c.NumInputs {
		panic(fmt.Sprintf("cells: %s expects %d inputs, got %d", k, c.NumInputs, len(in)))
	}
	switch k {
	case Buf:
		return in[0]
	case Inv:
		return !in[0]
	case And2:
		return in[0] && in[1]
	case And3:
		return in[0] && in[1] && in[2]
	case Or2:
		return in[0] || in[1]
	case Or3:
		return in[0] || in[1] || in[2]
	case Nand2:
		return !(in[0] && in[1])
	case Nand3:
		return !(in[0] && in[1] && in[2])
	case Nor2:
		return !(in[0] || in[1])
	case Nor3:
		return !(in[0] || in[1] || in[2])
	case Xor2:
		return in[0] != in[1]
	case Xor3:
		return (in[0] != in[1]) != in[2]
	case Xnor2:
		return in[0] == in[1]
	case Mux2:
		if in[2] {
			return in[1]
		}
		return in[0]
	case Aoi21:
		return !((in[0] && in[1]) || in[2])
	case Oai21:
		return !((in[0] || in[1]) && in[2])
	}
	panic("cells: unreachable")
}
