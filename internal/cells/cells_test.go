package cells

import (
	"testing"
	"testing/quick"
)

func TestLookupAllKinds(t *testing.T) {
	for _, k := range Kinds() {
		c := Lookup(k)
		if c.Kind != k {
			t.Errorf("%s: table kind mismatch %v", k, c.Kind)
		}
		if c.NumInputs < 1 || c.NumInputs > 3 {
			t.Errorf("%s: unreasonable pin count %d", k, c.NumInputs)
		}
		if c.InputCap <= 0 || c.OutputCap <= 0 {
			t.Errorf("%s: non-positive capacitance %+v", k, c)
		}
		if c.Delay < 1 {
			t.Errorf("%s: delay %d < 1", k, c.Delay)
		}
	}
}

func TestLookupInvalidPanics(t *testing.T) {
	for _, k := range []Kind{-1, numKinds, 1000} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Lookup(%d) did not panic", int(k))
				}
			}()
			Lookup(k)
		}()
	}
}

func TestKindString(t *testing.T) {
	if Nand2.String() != "NAND2" {
		t.Errorf("Nand2.String() = %q", Nand2)
	}
	if Kind(99).String() != "Kind(99)" {
		t.Errorf("invalid kind string = %q", Kind(99))
	}
}

// exhaustive truth tables for every kind.
func TestEvalTruthTables(t *testing.T) {
	type tt struct {
		kind Kind
		want []bool // indexed by input bits as binary number, in[0] is bit 0
	}
	cases := []tt{
		{Buf, []bool{false, true}},
		{Inv, []bool{true, false}},
		{And2, []bool{false, false, false, true}},
		{Or2, []bool{false, true, true, true}},
		{Nand2, []bool{true, true, true, false}},
		{Nor2, []bool{true, false, false, false}},
		{Xor2, []bool{false, true, true, false}},
		{Xnor2, []bool{true, false, false, true}},
		{And3, []bool{false, false, false, false, false, false, false, true}},
		{Or3, []bool{false, true, true, true, true, true, true, true}},
		{Nand3, []bool{true, true, true, true, true, true, true, false}},
		{Nor3, []bool{true, false, false, false, false, false, false, false}},
		{Xor3, []bool{false, true, true, false, true, false, false, true}},
		// Mux2: in = d0, d1, sel
		{Mux2, []bool{false, true, false, true, false, false, true, true}},
		// Aoi21: !((a&b)|c)
		{Aoi21, []bool{true, true, true, false, false, false, false, false}},
		// Oai21: !((a|b)&c)
		{Oai21, []bool{true, true, true, true, true, false, false, false}},
	}
	for _, c := range cases {
		n := Lookup(c.kind).NumInputs
		if len(c.want) != 1<<uint(n) {
			t.Fatalf("%s: truth table has %d rows, want %d", c.kind, len(c.want), 1<<uint(n))
		}
		for row := 0; row < len(c.want); row++ {
			in := make([]bool, n)
			for b := 0; b < n; b++ {
				in[b] = row>>uint(b)&1 == 1
			}
			if got := Eval(c.kind, in); got != c.want[row] {
				t.Errorf("%s(%v) = %v, want %v", c.kind, in, got, c.want[row])
			}
		}
	}
}

func TestEvalArityMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Eval with wrong arity did not panic")
		}
	}()
	Eval(And2, []bool{true})
}

// Property: De Morgan — NAND2(a,b) == OR2(!a,!b), NOR2(a,b) == AND2(!a,!b).
func TestDeMorgan(t *testing.T) {
	f := func(a, b bool) bool {
		nand := Eval(Nand2, []bool{a, b}) == Eval(Or2, []bool{!a, !b})
		nor := Eval(Nor2, []bool{a, b}) == Eval(And2, []bool{!a, !b})
		return nand && nor
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: XOR3 is associative in the sense of chained XOR2.
func TestXor3Decomposition(t *testing.T) {
	f := func(a, b, c bool) bool {
		chained := Eval(Xor2, []bool{Eval(Xor2, []bool{a, b}), c})
		return Eval(Xor3, []bool{a, b, c}) == chained
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: AOI21 is the complement of (a&b)|c; OAI21 of (a|b)&c.
func TestComplexGateComplements(t *testing.T) {
	f := func(a, b, c bool) bool {
		aoi := Eval(Aoi21, []bool{a, b, c}) == !(a && b || c)
		oai := Eval(Oai21, []bool{a, b, c}) == !((a || b) && c)
		return aoi && oai
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestXorCostsMoreThanNand(t *testing.T) {
	// The charge model depends on XOR being the expensive gate; pin this
	// library property down so a cell-table edit can't silently flatten
	// the power profiles.
	if Lookup(Xor2).InputCap <= Lookup(Nand2).InputCap {
		t.Error("XOR2 input cap should exceed NAND2")
	}
	if Lookup(Xor2).OutputCap <= Lookup(Nand2).OutputCap {
		t.Error("XOR2 output cap should exceed NAND2")
	}
}
