// Package verilog writes and reads gate-level structural Verilog for the
// repository's netlists, so generated datapath components can be inspected
// with standard EDA tooling (or imported from it).
//
// The writer emits only Verilog built-in primitives (and, or, nand, nor,
// xor, xnor, not, buf) — complex cells (MUX2, AOI21, OAI21) are
// decomposed — plus `assign` statements for constants and output
// aliases. The reader accepts exactly that subset, so Write → Parse is a
// supported round trip (functionally equivalent, provable with
// internal/bdd; gate-identical except for the decomposed complex cells).
package verilog

import (
	"fmt"
	"io"
	"strings"

	"hdpower/internal/cells"
	"hdpower/internal/netlist"
)

// Write emits the netlist as structural Verilog.
func Write(w io.Writer, nl *netlist.Netlist) error {
	if err := nl.Finalize(); err != nil {
		return err
	}
	names, aliases := netNames(nl)

	var ports []string
	for _, b := range nl.Inputs() {
		ports = append(ports, b.Name)
	}
	for _, b := range nl.Outputs() {
		ports = append(ports, b.Name)
	}
	if _, err := fmt.Fprintf(w, "module %s (%s);\n", ident(nl.Name), strings.Join(ports, ", ")); err != nil {
		return err
	}
	for _, b := range nl.Inputs() {
		if _, err := fmt.Fprintf(w, "  input [%d:0] %s;\n", b.Width()-1, b.Name); err != nil {
			return err
		}
	}
	for _, b := range nl.Outputs() {
		if _, err := fmt.Fprintf(w, "  output [%d:0] %s;\n", b.Width()-1, b.Name); err != nil {
			return err
		}
	}
	// Wire declarations for internal nets (anything not named after an
	// input or output bit).
	for id := 0; id < nl.NumNets(); id++ {
		name := names[id]
		if strings.ContainsRune(name, '[') {
			continue // bus bits are declared by their bus
		}
		if _, err := fmt.Fprintf(w, "  wire %s;\n", name); err != nil {
			return err
		}
	}

	// Constants.
	for id := 0; id < nl.NumNets(); id++ {
		if v, isC := nl.IsConst(netlist.NetID(id)); isC {
			bit := "1'b0"
			if v {
				bit = "1'b1"
			}
			if _, err := fmt.Fprintf(w, "  assign %s = %s;\n", names[id], bit); err != nil {
				return err
			}
		}
	}

	// Gates.
	gateIdx := 0
	emit := func(prim string, out string, ins ...string) error {
		_, err := fmt.Fprintf(w, "  %s g%d (%s, %s);\n", prim, gateIdx, out, strings.Join(ins, ", "))
		gateIdx++
		return err
	}
	tmpIdx := 0
	tmp := func() (string, error) {
		name := fmt.Sprintf("t%d", tmpIdx)
		tmpIdx++
		_, err := fmt.Fprintf(w, "  wire %s;\n", name)
		return name, err
	}
	for _, g := range nl.TopoOrder() {
		ins := nl.GateInputs(g)
		in := make([]string, len(ins))
		for i, id := range ins {
			in[i] = names[id]
		}
		out := names[nl.GateOutput(g)]
		var err error
		switch kind := nl.GateKind(g); kind {
		case cells.Buf:
			err = emit("buf", out, in[0])
		case cells.Inv:
			err = emit("not", out, in[0])
		case cells.And2, cells.And3:
			err = emit("and", out, in...)
		case cells.Or2, cells.Or3:
			err = emit("or", out, in...)
		case cells.Nand2, cells.Nand3:
			err = emit("nand", out, in...)
		case cells.Nor2, cells.Nor3:
			err = emit("nor", out, in...)
		case cells.Xor2, cells.Xor3:
			err = emit("xor", out, in...)
		case cells.Xnor2:
			err = emit("xnor", out, in...)
		case cells.Mux2:
			// out = sel ? d1 : d0 decomposed into primitives.
			var nsel, t0, t1 string
			if nsel, err = tmp(); err != nil {
				return err
			}
			if err = emit("not", nsel, in[2]); err != nil {
				return err
			}
			if t0, err = tmp(); err != nil {
				return err
			}
			if err = emit("and", t0, in[0], nsel); err != nil {
				return err
			}
			if t1, err = tmp(); err != nil {
				return err
			}
			if err = emit("and", t1, in[1], in[2]); err != nil {
				return err
			}
			err = emit("or", out, t0, t1)
		case cells.Aoi21:
			var t string
			if t, err = tmp(); err != nil {
				return err
			}
			if err = emit("and", t, in[0], in[1]); err != nil {
				return err
			}
			err = emit("nor", out, t, in[2])
		case cells.Oai21:
			var t string
			if t, err = tmp(); err != nil {
				return err
			}
			if err = emit("or", t, in[0], in[1]); err != nil {
				return err
			}
			err = emit("nand", out, t, in[2])
		default:
			err = fmt.Errorf("verilog: unhandled gate kind %v", kind)
		}
		if err != nil {
			return err
		}
	}

	// Output aliases: an output bit whose net is primarily named
	// something else (another bus bit or an input).
	for _, a := range aliases {
		if _, err := fmt.Fprintf(w, "  assign %s = %s;\n", a[0], a[1]); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w, "endmodule")
	return err
}

// netNames assigns each net a primary Verilog name and collects alias
// assignments for output bits whose nets already carry another name.
func netNames(nl *netlist.Netlist) (names []string, aliases [][2]string) {
	names = make([]string, nl.NumNets())
	for _, b := range nl.Inputs() {
		for i, id := range b.Nets {
			names[id] = fmt.Sprintf("%s[%d]", b.Name, i)
		}
	}
	for _, b := range nl.Outputs() {
		for i, id := range b.Nets {
			bit := fmt.Sprintf("%s[%d]", b.Name, i)
			if names[id] == "" {
				names[id] = bit
			} else {
				aliases = append(aliases, [2]string{bit, names[id]})
			}
		}
	}
	for id := range names {
		if names[id] == "" {
			names[id] = fmt.Sprintf("n%d", id)
		}
	}
	return names, aliases
}

// ident sanitizes a module name into a Verilog identifier.
func ident(name string) string {
	if name == "" {
		return "top"
	}
	b := []byte(name)
	for i, c := range b {
		ok := c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			b[i] = '_'
		}
	}
	return string(b)
}
