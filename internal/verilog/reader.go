package verilog

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"hdpower/internal/cells"
	"hdpower/internal/netlist"
)

// Parse reads the structural Verilog subset produced by Write and
// rebuilds a netlist. Supported constructs: one module; `input`/`output`
// bus declarations; `wire` declarations; the built-in primitives and,
// or, nand, nor, xor (2 or 3 inputs), xnor (2), not, buf; and `assign`
// of a constant (1'b0/1'b1) or of another net (alias).
func Parse(r io.Reader) (*netlist.Netlist, error) {
	type gateDecl struct {
		prim string
		out  string
		ins  []string
		line int
	}
	type busDecl struct {
		name  string
		width int
	}
	var (
		moduleName string
		inputs     []busDecl
		outputs    []busDecl
		gates      []gateDecl
		assigns    [][2]string // lhs, rhs (rhs may be 1'b0/1'b1)
	)

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if i := strings.Index(line, "//"); i >= 0 {
			line = strings.TrimSpace(line[:i])
		}
		if line == "" || line == "endmodule" {
			continue
		}
		if !strings.HasSuffix(line, ";") {
			if strings.HasPrefix(line, "module ") {
				// handled below
			} else {
				return nil, fmt.Errorf("verilog: line %d: missing semicolon: %q", lineNo, line)
			}
		}
		stmt := strings.TrimSuffix(line, ";")
		fields := strings.Fields(stmt)
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "module":
			rest := strings.TrimPrefix(stmt, "module")
			if i := strings.Index(rest, "("); i >= 0 {
				rest = rest[:i]
			}
			moduleName = strings.TrimSpace(rest)
		case "input", "output":
			name, width, err := parseBusDecl(stmt)
			if err != nil {
				return nil, fmt.Errorf("verilog: line %d: %w", lineNo, err)
			}
			if fields[0] == "input" {
				inputs = append(inputs, busDecl{name, width})
			} else {
				outputs = append(outputs, busDecl{name, width})
			}
		case "wire":
			// declarations carry no connectivity; ignore
		case "assign":
			rest := strings.TrimPrefix(stmt, "assign")
			parts := strings.SplitN(rest, "=", 2)
			if len(parts) != 2 {
				return nil, fmt.Errorf("verilog: line %d: bad assign %q", lineNo, stmt)
			}
			assigns = append(assigns, [2]string{
				strings.TrimSpace(parts[0]), strings.TrimSpace(parts[1]),
			})
		case "and", "or", "nand", "nor", "xor", "xnor", "not", "buf":
			open := strings.Index(stmt, "(")
			closeIdx := strings.LastIndex(stmt, ")")
			if open < 0 || closeIdx < open {
				return nil, fmt.Errorf("verilog: line %d: bad primitive %q", lineNo, stmt)
			}
			var conns []string
			for _, c := range strings.Split(stmt[open+1:closeIdx], ",") {
				conns = append(conns, strings.TrimSpace(c))
			}
			if len(conns) < 2 {
				return nil, fmt.Errorf("verilog: line %d: primitive needs output and inputs", lineNo)
			}
			gates = append(gates, gateDecl{
				prim: fields[0], out: conns[0], ins: conns[1:], line: lineNo,
			})
		default:
			return nil, fmt.Errorf("verilog: line %d: unsupported statement %q", lineNo, stmt)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if moduleName == "" {
		return nil, fmt.Errorf("verilog: no module declaration")
	}
	if len(inputs) == 0 {
		return nil, fmt.Errorf("verilog: module %s has no inputs", moduleName)
	}

	nl := netlist.New(moduleName)
	nets := make(map[string]netlist.NetID)
	for _, in := range inputs {
		bus := nl.AddInputBus(in.name, in.width)
		for i, id := range bus.Nets {
			nets[fmt.Sprintf("%s[%d]", in.name, i)] = id
		}
	}

	// Resolve constants first, then iterate gates and aliases to a fixed
	// point (the netlist is acyclic, so every pass resolves at least one
	// declaration until done).
	pendingGates := gates
	pendingAssigns := assigns
	for {
		progress := false
		var nextGates []gateDecl
		for _, g := range pendingGates {
			ins := make([]netlist.NetID, 0, len(g.ins))
			ready := true
			for _, name := range g.ins {
				id, ok := nets[name]
				if !ok {
					ready = false
					break
				}
				ins = append(ins, id)
			}
			if !ready {
				nextGates = append(nextGates, g)
				continue
			}
			kind, err := primKind(g.prim, len(ins))
			if err != nil {
				return nil, fmt.Errorf("verilog: line %d: %w", g.line, err)
			}
			if _, dup := nets[g.out]; dup {
				return nil, fmt.Errorf("verilog: line %d: net %q driven twice", g.line, g.out)
			}
			nets[g.out] = nl.AddGate(kind, ins...)
			progress = true
		}
		var nextAssigns [][2]string
		for _, a := range pendingAssigns {
			switch a[1] {
			case "1'b0":
				nets[a[0]] = nl.Const(false)
				progress = true
			case "1'b1":
				nets[a[0]] = nl.Const(true)
				progress = true
			default:
				if id, ok := nets[a[1]]; ok {
					if _, dup := nets[a[0]]; dup {
						return nil, fmt.Errorf("verilog: net %q driven twice", a[0])
					}
					nets[a[0]] = id
					progress = true
				} else {
					nextAssigns = append(nextAssigns, a)
				}
			}
		}
		pendingGates = nextGates
		pendingAssigns = nextAssigns
		if len(pendingGates) == 0 && len(pendingAssigns) == 0 {
			break
		}
		if !progress {
			first := ""
			if len(pendingGates) > 0 {
				first = pendingGates[0].out
			} else if len(pendingAssigns) > 0 {
				first = pendingAssigns[0][0]
			}
			return nil, fmt.Errorf("verilog: %d gates / %d assigns reference undriven nets (first: %q)",
				len(pendingGates), len(pendingAssigns), first)
		}
	}

	for _, out := range outputs {
		ids := make([]netlist.NetID, out.width)
		for i := range ids {
			name := fmt.Sprintf("%s[%d]", out.name, i)
			id, ok := nets[name]
			if !ok {
				return nil, fmt.Errorf("verilog: output bit %s undriven", name)
			}
			ids[i] = id
		}
		nl.MarkOutputBus(out.name, ids)
	}
	if err := nl.Finalize(); err != nil {
		return nil, err
	}
	return nl, nil
}

// parseBusDecl parses `input [7:0] a` / `output [0:0] y`.
func parseBusDecl(stmt string) (name string, width int, err error) {
	fields := strings.Fields(stmt)
	if len(fields) != 3 {
		return "", 0, fmt.Errorf("bad bus declaration %q (want e.g. `input [7:0] a`)", stmt)
	}
	r := fields[1]
	if !strings.HasPrefix(r, "[") || !strings.HasSuffix(r, "]") {
		return "", 0, fmt.Errorf("bad range %q", r)
	}
	parts := strings.Split(r[1:len(r)-1], ":")
	if len(parts) != 2 || parts[1] != "0" {
		return "", 0, fmt.Errorf("bad range %q (want [msb:0])", r)
	}
	msb, err := strconv.Atoi(parts[0])
	if err != nil || msb < 0 {
		return "", 0, fmt.Errorf("bad msb in %q", r)
	}
	return fields[2], msb + 1, nil
}

// primKind maps a Verilog primitive name and input count to a cell kind.
func primKind(prim string, inputs int) (cells.Kind, error) {
	type key struct {
		prim string
		n    int
	}
	kinds := map[key]cells.Kind{
		{"buf", 1}:  cells.Buf,
		{"not", 1}:  cells.Inv,
		{"and", 2}:  cells.And2,
		{"and", 3}:  cells.And3,
		{"or", 2}:   cells.Or2,
		{"or", 3}:   cells.Or3,
		{"nand", 2}: cells.Nand2,
		{"nand", 3}: cells.Nand3,
		{"nor", 2}:  cells.Nor2,
		{"nor", 3}:  cells.Nor3,
		{"xor", 2}:  cells.Xor2,
		{"xor", 3}:  cells.Xor3,
		{"xnor", 2}: cells.Xnor2,
	}
	k, ok := kinds[key{prim, inputs}]
	if !ok {
		return 0, fmt.Errorf("unsupported primitive %s with %d inputs", prim, inputs)
	}
	return k, nil
}
