package verilog

import (
	"strings"
	"testing"

	"hdpower/internal/dwlib"
	"hdpower/internal/logic"
)

func TestWriteTestbench(t *testing.T) {
	nl := dwlib.RippleAdder(4)
	vectors := []logic.Word{
		logic.FromUint(0x00, 8),
		logic.FromUint(0x35, 8), // a = 0101, b = 0011
		logic.FromUint(0xff, 8),
	}
	var sb strings.Builder
	if err := WriteTestbench(&sb, nl, vectors, 50); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"module ripple_adder_4_tb;",
		"reg [3:0] a;",
		"reg [3:0] b;",
		"wire [3:0] sum;",
		".a(a)", ".sum(sum)",
		"$dumpfile", "$dumpvars",
		"a = 4'b0101;", // vector 0x35, low nibble
		"b = 4'b0011;",
		"#50;",
		"$finish;",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("testbench missing %q:\n%s", want, out)
		}
	}
	// Two cycle advances plus the final one.
	if got := strings.Count(out, "#50;"); got != 3 {
		t.Errorf("cycle delays = %d, want 3", got)
	}
}

func TestWriteTestbenchValidation(t *testing.T) {
	nl := dwlib.RippleAdder(4)
	var sb strings.Builder
	if err := WriteTestbench(&sb, nl, nil, 0); err == nil {
		t.Error("empty vector list accepted")
	}
	if err := WriteTestbench(&sb, nl, []logic.Word{logic.NewWord(5)}, 0); err == nil {
		t.Error("width mismatch accepted")
	}
}

func TestWriteTestbenchAutoCycleTime(t *testing.T) {
	nl := dwlib.RippleAdder(2)
	var sb strings.Builder
	if err := WriteTestbench(&sb, nl, []logic.Word{logic.NewWord(4)}, 0); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "#") {
		t.Error("no delay emitted")
	}
}
