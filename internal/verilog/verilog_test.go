package verilog

import (
	"strings"
	"testing"

	"hdpower/internal/bdd"
	"hdpower/internal/dwlib"
	"hdpower/internal/netlist"
)

func TestWriteBasicStructure(t *testing.T) {
	var sb strings.Builder
	if err := Write(&sb, dwlib.RippleAdder(4)); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"module ripple_adder_4 (a, b, sum, cout);",
		"input [3:0] a;",
		"output [3:0] sum;",
		"output [0:0] cout;",
		"xor", "and", "or",
		"endmodule",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestRoundTripEquivalence(t *testing.T) {
	// Write then Parse must preserve function — proven with BDDs.
	builds := map[string]*netlist.Netlist{
		"ripple-adder":   dwlib.RippleAdder(6),
		"cla-adder":      dwlib.CLAAdder(5),
		"absval":         dwlib.AbsVal(6),
		"csa-multiplier": dwlib.CSAMult(4, 4),
		"comparator":     dwlib.Comparator(5),
		"barrel-shifter": dwlib.BarrelShifter(4), // exercises MUX2 decomposition
		"incrementer":    dwlib.Incrementer(6),   // exercises const inputs
	}
	for name, nl := range builds {
		var sb strings.Builder
		if err := Write(&sb, nl); err != nil {
			t.Fatalf("%s: write: %v", name, err)
		}
		back, err := Parse(strings.NewReader(sb.String()))
		if err != nil {
			t.Fatalf("%s: parse: %v\n%s", name, err, sb.String())
		}
		eq, cex, err := bdd.Equivalent(nl, back)
		if err != nil {
			t.Fatalf("%s: equivalence check: %v", name, err)
		}
		if !eq {
			t.Errorf("%s: round trip changed function at %+v", name, cex)
		}
	}
}

func TestRoundTripPreservesPorts(t *testing.T) {
	var sb strings.Builder
	if err := Write(&sb, dwlib.MinMax(3)); err != nil {
		t.Fatal(err)
	}
	back, err := Parse(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if back.NumInputBits() != 6 {
		t.Errorf("input bits = %d", back.NumInputBits())
	}
	outs := back.Outputs()
	if len(outs) != 2 || outs[0].Name != "lo" || outs[1].Name != "hi" {
		t.Errorf("outputs = %+v", outs)
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	cases := map[string]string{
		"no module":     "input [1:0] a;\nendmodule\n",
		"bad statement": "module m (a);\ninput [0:0] a;\nfrobnicate x;\nendmodule\n",
		"bad range":     "module m (a);\ninput [1:1] a;\nendmodule\n",
		"double driver": "module m (a, y);\ninput [0:0] a;\noutput [0:0] y;\nnot g0 (y[0], a[0]);\nbuf g1 (y[0], a[0]);\nendmodule\n",
		"undriven loop": "module m (a, y);\ninput [0:0] a;\noutput [0:0] y;\nnot g0 (y[0], q);\nnot g1 (q, y[0]);\nendmodule\n",
		"missing semi":  "module m (a);\ninput [0:0] a\nendmodule\n",
	}
	for name, src := range cases {
		if _, err := Parse(strings.NewReader(src)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestParseMinimalHandwritten(t *testing.T) {
	src := `
// a hand-written majority gate
module maj (a, y);
  input [2:0] a;
  output [0:0] y;
  wire t0;
  wire t1;
  wire t2;
  and g0 (t0, a[0], a[1]);
  and g1 (t1, a[0], a[2]);
  and g2 (t2, a[1], a[2]);
  or g3 (y[0], t0, t1, t2);
endmodule
`
	nl, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if nl.NumGates() != 4 {
		t.Errorf("gates = %d", nl.NumGates())
	}
	if nl.Name != "maj" {
		t.Errorf("name = %q", nl.Name)
	}
}

func TestIdent(t *testing.T) {
	if ident("csa_mult_8x8") != "csa_mult_8x8" {
		t.Error("valid name mangled")
	}
	if got := ident("8bad name!"); got != "_bad_name_" {
		t.Errorf("ident = %q", got)
	}
	if ident("") != "top" {
		t.Error("empty name")
	}
}
