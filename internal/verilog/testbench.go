package verilog

import (
	"fmt"
	"io"

	"hdpower/internal/logic"
	"hdpower/internal/netlist"
)

// WriteTestbench emits a self-checking-free stimulus testbench for the
// netlist: it instantiates the module (as written by Write), drives the
// input buses with the given vectors at fixed intervals, dumps a VCD, and
// finishes. Useful for replaying the exact streams of an experiment in an
// external Verilog simulator and comparing waveforms against the built-in
// engine's DumpVCD.
func WriteTestbench(w io.Writer, nl *netlist.Netlist, vectors []logic.Word, cycleTime int) error {
	if err := nl.Finalize(); err != nil {
		return err
	}
	if len(vectors) == 0 {
		return fmt.Errorf("verilog: testbench needs at least one vector")
	}
	m := nl.NumInputBits()
	for i, v := range vectors {
		if v.Width() != m {
			return fmt.Errorf("verilog: vector %d has width %d, module has %d input bits",
				i, v.Width(), m)
		}
	}
	if cycleTime <= 0 {
		cycleTime = 4*nl.Depth() + 8
	}
	name := ident(nl.Name)
	if _, err := fmt.Fprintf(w, "module %s_tb;\n", name); err != nil {
		return err
	}
	for _, b := range nl.Inputs() {
		if _, err := fmt.Fprintf(w, "  reg [%d:0] %s;\n", b.Width()-1, b.Name); err != nil {
			return err
		}
	}
	for _, b := range nl.Outputs() {
		if _, err := fmt.Fprintf(w, "  wire [%d:0] %s;\n", b.Width()-1, b.Name); err != nil {
			return err
		}
	}
	// Instantiation with named connections.
	if _, err := fmt.Fprintf(w, "  %s dut (", name); err != nil {
		return err
	}
	first := true
	for _, buses := range [][]netlist.Bus{nl.Inputs(), nl.Outputs()} {
		for _, b := range buses {
			if !first {
				if _, err := fmt.Fprint(w, ", "); err != nil {
					return err
				}
			}
			first = false
			if _, err := fmt.Fprintf(w, ".%s(%s)", b.Name, b.Name); err != nil {
				return err
			}
		}
	}
	if _, err := fmt.Fprintln(w, ");"); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "  initial begin\n    $dumpfile(\"%s_tb.vcd\");\n    $dumpvars(0, %s_tb);\n", name, name); err != nil {
		return err
	}
	// Drive the vectors.
	for i, v := range vectors {
		if i > 0 {
			if _, err := fmt.Fprintf(w, "    #%d;\n", cycleTime); err != nil {
				return err
			}
		}
		offset := 0
		for _, b := range nl.Inputs() {
			bits := v.Slice(offset, offset+b.Width())
			if _, err := fmt.Fprintf(w, "    %s = %d'b%s;\n", b.Name, b.Width(), bits); err != nil {
				return err
			}
			offset += b.Width()
		}
	}
	_, err := fmt.Fprintf(w, "    #%d;\n    $finish;\n  end\nendmodule\n", cycleTime)
	return err
}
