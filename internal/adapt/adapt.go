// Package adapt implements online coefficient adaptation for the Hd
// macro-model — the remedy the paper proposes (Section 4.2, citing
// Bogliolo/Benini/De Micheli's adaptive least-mean-square behavioral power
// modeling) for input streams whose statistics differ strongly from the
// characterization patterns, such as the binary-counter stream of data
// type V.
//
// The adapter keeps a working copy of a characterized model and refines
// the coefficient of each observed switching-event class with a
// normalized LMS update:
//
//	p_i ← p_i + μ·(Q_observed − p_i)
//
// so the model tracks the class-conditional mean of the actual stream
// while unobserved classes retain their characterized values.
package adapt

import (
	"fmt"

	"hdpower/internal/core"
)

// Adapter refines a model online. Not safe for concurrent use.
type Adapter struct {
	model *core.Model
	mu    float64
	seen  []int // per basic class: observation count
	seenE [][]int
}

// New returns an adapter over a deep copy of the base model; the base is
// never modified. The learning rate mu must lie in (0, 1]; 0.05 is a
// reasonable default for 10³-cycle adaptation windows.
func New(base *core.Model, mu float64) (*Adapter, error) {
	if err := base.Validate(); err != nil {
		return nil, err
	}
	if mu <= 0 || mu > 1 {
		return nil, fmt.Errorf("adapt: learning rate %v outside (0,1]", mu)
	}
	clone := &core.Model{
		Module:    base.Module + "(adapted)",
		InputBits: base.InputBits,
		Basic:     append([]core.Coef(nil), base.Basic...),
		ZClusters: base.ZClusters,
	}
	a := &Adapter{model: clone, mu: mu, seen: make([]int, base.InputBits)}
	if base.Enhanced != nil {
		clone.Enhanced = make([][]core.Coef, len(base.Enhanced))
		a.seenE = make([][]int, len(base.Enhanced))
		for i, row := range base.Enhanced {
			clone.Enhanced[i] = append([]core.Coef(nil), row...)
			a.seenE[i] = make([]int, len(row))
		}
	}
	return a, nil
}

// Model returns the adapted model. The returned pointer stays live: later
// Observe calls keep refining it.
func (a *Adapter) Model() *core.Model { return a.model }

// Observations returns the total number of observed cycles.
func (a *Adapter) Observations() int {
	n := 0
	for _, c := range a.seen {
		n += c
	}
	return n
}

// Observe feeds one measured cycle (input Hamming-distance and reference
// charge) into the LMS update. Cycles with hd = 0 carry no information
// about any coefficient and are ignored.
func (a *Adapter) Observe(hd int, q float64) {
	if hd == 0 {
		return
	}
	if hd < 0 || hd > a.model.InputBits {
		panic(fmt.Sprintf("adapt: Hd %d out of range [0,%d]", hd, a.model.InputBits))
	}
	c := &a.model.Basic[hd-1]
	if c.Count == 0 {
		// Unobserved during characterization: adopt the measured value.
		c.P = q
		c.Count = 1
	} else {
		c.P += a.mu * (q - c.P)
	}
	a.seen[hd-1]++
}

// ObserveEnhanced additionally adapts the enhanced class (hd, z). It is a
// no-op on models without an enhanced table.
func (a *Adapter) ObserveEnhanced(hd, z int, q float64) {
	a.Observe(hd, q)
	if hd == 0 || a.model.Enhanced == nil {
		return
	}
	zb := a.model.ZBucket(hd, z)
	c := &a.model.Enhanced[hd-1][zb]
	if c.Count == 0 {
		c.P = q
		c.Count = 1
	} else {
		c.P += a.mu * (q - c.P)
	}
	a.seenE[hd-1][zb]++
}
