package adapt

import (
	"math"
	"testing"

	"hdpower/internal/core"
	"hdpower/internal/dwlib"
	"hdpower/internal/power"
	"hdpower/internal/sim"
	"hdpower/internal/stimuli"
)

func baseModel() *core.Model {
	m := &core.Model{Module: "hand", InputBits: 4, Basic: make([]core.Coef, 4)}
	for i := 1; i <= 4; i++ {
		m.Basic[i-1] = core.Coef{P: float64(10 * i), Count: 100}
	}
	return m
}

func TestNewValidates(t *testing.T) {
	if _, err := New(baseModel(), 0); err == nil {
		t.Error("mu=0 accepted")
	}
	if _, err := New(baseModel(), 1.5); err == nil {
		t.Error("mu>1 accepted")
	}
	bad := &core.Model{Module: "x", InputBits: 2}
	if _, err := New(bad, 0.1); err == nil {
		t.Error("invalid base model accepted")
	}
}

func TestBaseModelNotMutated(t *testing.T) {
	base := baseModel()
	a, err := New(base, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	a.Observe(2, 1000)
	if base.P(2) != 20 {
		t.Errorf("base model mutated: p2 = %v", base.P(2))
	}
	if a.Model().P(2) == 20 {
		t.Error("adapted model unchanged")
	}
}

func TestLMSConvergesToStreamMean(t *testing.T) {
	a, _ := New(baseModel(), 0.1)
	for i := 0; i < 500; i++ {
		a.Observe(3, 90) // true class mean of this stream is 90, not 30
	}
	if got := a.Model().P(3); math.Abs(got-90) > 1 {
		t.Errorf("p3 after adaptation = %v, want ~90", got)
	}
	// untouched classes keep their characterized values
	if a.Model().P(1) != 10 {
		t.Errorf("p1 = %v", a.Model().P(1))
	}
	if a.Observations() != 500 {
		t.Errorf("observations = %d", a.Observations())
	}
}

func TestObserveZeroHdIgnored(t *testing.T) {
	a, _ := New(baseModel(), 0.5)
	a.Observe(0, 123)
	if a.Observations() != 0 {
		t.Error("Hd=0 counted")
	}
}

func TestObserveOutOfRangePanics(t *testing.T) {
	a, _ := New(baseModel(), 0.5)
	defer func() {
		if recover() == nil {
			t.Fatal("Hd out of range accepted")
		}
	}()
	a.Observe(5, 1)
}

func TestUnobservedClassAdoptsFirstSample(t *testing.T) {
	base := baseModel()
	base.Basic[3] = core.Coef{} // class 4 never characterized
	a, _ := New(base, 0.1)
	a.Observe(4, 77)
	if got := a.Model().P(4); got != 77 {
		t.Errorf("p4 = %v, want 77", got)
	}
}

func TestObserveEnhanced(t *testing.T) {
	base := baseModel()
	base.Enhanced = make([][]core.Coef, 4)
	for i := 1; i <= 4; i++ {
		base.Enhanced[i-1] = make([]core.Coef, base.NumZBuckets(i))
	}
	a, _ := New(base, 0.2)
	for i := 0; i < 200; i++ {
		a.ObserveEnhanced(2, 1, 55)
	}
	if got := a.Model().PEnhanced(2, 1); math.Abs(got-55) > 0.5 {
		t.Errorf("enhanced p(2,1) = %v, want ~55", got)
	}
	// enhanced observation also adapts the basic class
	if got := a.Model().P(2); math.Abs(got-55) > 0.5 {
		t.Errorf("basic p2 = %v, want ~55", got)
	}
}

// Integration: adaptation on the counter stream (the paper's data type V
// stress case) must substantially reduce the basic model's average error
// on held-out cycles.
func TestAdaptationFixesCounterStream(t *testing.T) {
	nl := dwlib.CSAMult(4, 4)
	meter, err := power.NewMeter(nl, sim.EventDriven)
	if err != nil {
		t.Fatal(err)
	}
	model, err := core.Characterize(meter, "csa4", core.CharacterizeOptions{
		Patterns: 4000, Seed: 21,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Counter stream on both ports.
	src := stimuli.Concat(
		stimuli.NewStream(stimuli.TypeCounter, 4, 0),
		stimuli.NewStream(stimuli.TypeCounter, 4, 1),
	)
	eval, err := power.NewMeter(dwlib.CSAMult(4, 4), sim.EventDriven)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := eval.Run(stimuli.Take(src, 3001))
	if err != nil {
		t.Fatal(err)
	}
	const split = 1000 // adapt on the first cycles, evaluate on the rest
	a, err := New(model, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < split; j++ {
		a.Observe(tr.Hd[j], tr.Q[j])
	}
	before := model.EstimateBasic(tr.Hd[split:])
	after := a.Model().EstimateBasic(tr.Hd[split:])
	errBefore, err := power.AvgError(before, tr.Q[split:])
	if err != nil {
		t.Fatal(err)
	}
	errAfter, err := power.AvgError(after, tr.Q[split:])
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(errAfter) >= math.Abs(errBefore)/2 {
		t.Errorf("adaptation: error only improved from %.1f%% to %.1f%%",
			errBefore, errAfter)
	}
}
