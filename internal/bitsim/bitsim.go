// Package bitsim provides bit-parallel (parallel-pattern) gate-level
// simulation: 64 independent pattern pairs are packed into one uint64 per
// net, and every gate evaluates all 64 patterns with a handful of bitwise
// ops derived from the internal/cells truth tables. It is the software
// analogue of FPGA power-emulation — the lanes of a machine word play the
// role of the replicated hardware — and exists to make the paper's
// Hd-class characterization fast: per-net toggle counts come out of
// bits.OnesCount64 instead of per-pattern event queues.
//
// Two activity modes are available:
//
//   - ZeroDelay reproduces the scalar zero-delay engine exactly: gates are
//     swept once in topological order and every net toggles at most once
//     per applied pair. Toggle counts are bit-identical to
//     sim.ZeroDelay's, which the cross-validation suite asserts.
//   - UnitDelay approximates glitch activity with a levelized unit-delay
//     wavefront: after the input edge, dirty gates are re-evaluated in
//     synchronous steps (all gates whose inputs changed in step t produce
//     their new outputs in step t+1), and every inter-step output change
//     counts as a toggle. Path-length imbalance therefore produces
//     glitches just as in the event-driven reference, but all gates share
//     one unit delay instead of their per-kind intrinsic delays, so
//     per-net glitch counts agree only statistically — the event-driven
//     engine in internal/sim remains the golden reference, and
//     characterization cross-validates the two on sampled patterns.
//
// A Meter weights toggles with the same per-net switched capacitances as
// power.Meter (netlist.NetCap), accumulating charge per lane, so a batch
// returns the per-pair charges the macro-model characterizer consumes.
//
// # Concurrency
//
// A Meter is not safe for concurrent use, but Clone returns an
// independent meter sharing the immutable topology (flattened gate table,
// fanout lists, capacitances), so one meter per goroutine may simulate
// concurrently — the same pooling contract as sim.Simulator.
package bitsim

import (
	"fmt"
	"math/bits"

	"hdpower/internal/cells"
	"hdpower/internal/faultpoint"
	"hdpower/internal/logic"
	"hdpower/internal/netlist"
)

// Lanes is the number of pattern pairs processed per batch: one per bit
// of the packed uint64 net values.
const Lanes = 64

// Mode selects how switching activity is counted.
type Mode int

const (
	// ZeroDelay sweeps the gates once in topological order; every net
	// toggles at most once per pair. Matches sim.ZeroDelay bit-exactly.
	ZeroDelay Mode = iota
	// UnitDelay re-evaluates dirty gates in synchronous unit-delay steps,
	// accumulating the inter-step toggles as approximate glitch activity.
	UnitDelay
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case ZeroDelay:
		return "zero-delay"
	case UnitDelay:
		return "unit-delay"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// gateRec is the flattened per-gate record the hot loops walk: kind plus
// up to three input net ids and the output net id, all int32 to keep the
// table compact and cache-friendly. Unused input slots are 0 and never
// read (evalPacked dispatches on kind).
type gateRec struct {
	kind cells.Kind
	in   [3]int32
	out  int32
}

// Meter simulates one netlist 64 pattern pairs at a time and weights the
// resulting activity with per-net capacitances. Not safe for concurrent
// use; see Clone.
type Meter struct {
	nl   *netlist.Netlist
	mode Mode

	// Immutable after New; shared between clones.
	inputNets []netlist.NetID
	gates     []gateRec // in topological order
	fanout    [][]int32 // per-net indices into gates
	caps      []float64
	depth     int

	// Mutable per-batch state.
	val     []uint64 // packed net values, bit l = lane l
	toggles []int64  // per-net toggles of the last batch
	qacc    [Lanes]float64

	// Packing scratch.
	uPack, vPack []uint64

	// Unit-delay wavefront scratch.
	mark    []int32  // per gate: step at which it was last marked dirty
	dirty   []int32  // gate indices to re-evaluate this step
	pending []uint64 // new outputs of the dirty gates (two-phase commit)
	changed []int32  // nets that changed in the current step
}

// New builds a bit-parallel meter for the netlist. The netlist is
// finalized (validated) as a side effect.
func New(nl *netlist.Netlist, mode Mode) (*Meter, error) {
	if err := nl.Finalize(); err != nil {
		return nil, fmt.Errorf("bitsim: %w", err)
	}
	if mode != ZeroDelay && mode != UnitDelay {
		return nil, fmt.Errorf("bitsim: unknown mode %d", int(mode))
	}
	m := &Meter{
		nl:        nl,
		mode:      mode,
		inputNets: nl.InputNets(),
		depth:     nl.Depth(),
		caps:      make([]float64, nl.NumNets()),
		val:       make([]uint64, nl.NumNets()),
		toggles:   make([]int64, nl.NumNets()),
		uPack:     make([]uint64, len(nl.InputNets())),
		vPack:     make([]uint64, len(nl.InputNets())),
		mark:      make([]int32, nl.NumGates()),
	}
	for id := range m.caps {
		m.caps[id] = nl.NetCap(netlist.NetID(id))
	}
	// Flatten the gate table in topological order so the settle sweep is
	// one linear pass, and remember each gate's position for the fanout
	// lists the wavefront walks.
	order := nl.TopoOrder()
	m.gates = make([]gateRec, len(order))
	pos := make([]int32, nl.NumGates())
	for i, g := range order {
		rec := gateRec{kind: nl.GateKind(g), out: int32(nl.GateOutput(g))}
		for k, in := range nl.GateInputs(g) {
			rec.in[k] = int32(in)
		}
		m.gates[i] = rec
		pos[g] = int32(i)
	}
	m.fanout = make([][]int32, nl.NumNets())
	for id := 0; id < nl.NumNets(); id++ {
		pins := nl.FanoutPins(netlist.NetID(id))
		if len(pins) == 0 {
			continue
		}
		out := make([]int32, 0, len(pins))
		for _, p := range pins {
			out = append(out, pos[p.Gate])
		}
		m.fanout[id] = out
	}
	m.initConsts()
	return m, nil
}

// initConsts ties constant nets across all lanes; they are never touched
// again (settle and apply only write input nets and gate outputs).
func (m *Meter) initConsts() {
	for id := 0; id < m.nl.NumNets(); id++ {
		if v, isConst := m.nl.IsConst(netlist.NetID(id)); isConst {
			if v {
				m.val[id] = ^uint64(0)
			} else {
				m.val[id] = 0
			}
		}
	}
}

// Clone returns an independent meter over the same finalized netlist,
// sharing the immutable topology and owning fresh value/toggle/scratch
// state, for use on another goroutine.
func (m *Meter) Clone() *Meter {
	c := &Meter{
		nl:        m.nl,
		mode:      m.mode,
		inputNets: m.inputNets,
		gates:     m.gates,
		fanout:    m.fanout,
		caps:      m.caps,
		depth:     m.depth,
		val:       make([]uint64, len(m.val)),
		toggles:   make([]int64, len(m.toggles)),
		uPack:     make([]uint64, len(m.uPack)),
		vPack:     make([]uint64, len(m.vPack)),
		mark:      make([]int32, len(m.mark)),
	}
	c.initConsts()
	return c
}

// Netlist returns the simulated netlist.
func (m *Meter) Netlist() *netlist.Netlist { return m.nl }

// ModeKind returns the configured activity mode.
func (m *Meter) ModeKind() Mode { return m.mode }

// NumInputBits returns the input vector width expected by CycleBatch.
func (m *Meter) NumInputBits() int { return len(m.inputNets) }

// evalPacked computes a gate's packed output from the current net values.
// Each case is the bitwise form of the cells.Eval truth table, applied to
// all 64 lanes at once. Inverting kinds also invert the padding lanes of
// a partial batch; that is harmless, because padded lanes carry u == v
// and therefore never change after the settle sweep.
func (m *Meter) evalPacked(g *gateRec) uint64 {
	a := m.val[g.in[0]]
	switch g.kind {
	case cells.Buf:
		return a
	case cells.Inv:
		return ^a
	case cells.And2:
		return a & m.val[g.in[1]]
	case cells.And3:
		return a & m.val[g.in[1]] & m.val[g.in[2]]
	case cells.Or2:
		return a | m.val[g.in[1]]
	case cells.Or3:
		return a | m.val[g.in[1]] | m.val[g.in[2]]
	case cells.Nand2:
		return ^(a & m.val[g.in[1]])
	case cells.Nand3:
		return ^(a & m.val[g.in[1]] & m.val[g.in[2]])
	case cells.Nor2:
		return ^(a | m.val[g.in[1]])
	case cells.Nor3:
		return ^(a | m.val[g.in[1]] | m.val[g.in[2]])
	case cells.Xor2:
		return a ^ m.val[g.in[1]]
	case cells.Xor3:
		return a ^ m.val[g.in[1]] ^ m.val[g.in[2]]
	case cells.Xnor2:
		return ^(a ^ m.val[g.in[1]])
	case cells.Mux2:
		sel := m.val[g.in[2]]
		return (a &^ sel) | (m.val[g.in[1]] & sel)
	case cells.Aoi21:
		return ^((a & m.val[g.in[1]]) | m.val[g.in[2]])
	case cells.Oai21:
		return ^((a | m.val[g.in[1]]) & m.val[g.in[2]])
	}
	panic(fmt.Sprintf("bitsim: unhandled gate kind %v", g.kind))
}

// bump records a packed change mask on one net: per-net toggles via
// popcount, per-lane charge via a bit-scan over the set lanes.
func (m *Meter) bump(id int32, changed uint64) {
	m.toggles[id] += int64(bits.OnesCount64(changed))
	c := m.caps[id]
	for msk := changed; msk != 0; msk &= msk - 1 {
		m.qacc[bits.TrailingZeros64(msk)] += c
	}
}

// CycleBatch simulates up to Lanes pattern pairs: lane l settles on us[l]
// without recording activity, then switches to vs[l] and accumulates the
// transient. The per-pair charges are written into q[:len(us)], and the
// per-net toggle counts aggregated over the whole batch are returned (the
// slice is reused by the next CycleBatch; callers that retain it must
// copy). Within a batch, lane charges are summed in deterministic
// net-change order, so identical batches produce bit-identical charges.
func (m *Meter) CycleBatch(us, vs []logic.Word, q []float64) []int64 {
	if len(us) != len(vs) {
		panic(fmt.Sprintf("bitsim: batch of %d u-vectors but %d v-vectors", len(us), len(vs)))
	}
	if len(us) == 0 || len(us) > Lanes {
		panic(fmt.Sprintf("bitsim: batch size %d outside [1, %d]", len(us), Lanes))
	}
	if len(q) < len(us) {
		panic(fmt.Sprintf("bitsim: charge buffer of %d for %d pairs", len(q), len(us)))
	}
	faultpoint.Delay("bitsim.batch") // chaos: slow batches must not change results
	w := len(m.inputNets)
	for i := 0; i < w; i++ {
		m.uPack[i], m.vPack[i] = 0, 0
	}
	for l, u := range us {
		v := vs[l]
		if u.Width() != w || v.Width() != w {
			panic(fmt.Sprintf("bitsim: input vector widths %d/%d, netlist has %d input bits",
				u.Width(), v.Width(), w))
		}
		bit := uint64(1) << uint(l)
		for i := 0; i < w; i++ {
			if u.Bit(i) {
				m.uPack[i] |= bit
			}
			if v.Bit(i) {
				m.vPack[i] |= bit
			}
		}
	}
	for i := range m.toggles {
		m.toggles[i] = 0
	}
	for l := range us {
		m.qacc[l] = 0
	}
	// Settle on u: steady state is mode-independent, one topological sweep.
	for i, id := range m.inputNets {
		m.val[id] = m.uPack[i]
	}
	for gi := range m.gates {
		g := &m.gates[gi]
		m.val[g.out] = m.evalPacked(g)
	}
	switch m.mode {
	case ZeroDelay:
		m.applyZeroDelay()
	case UnitDelay:
		m.applyUnitDelay()
	}
	for l := range us {
		q[l] = m.qacc[l]
	}
	return m.toggles
}

// applyZeroDelay switches the inputs to v and sweeps the gates once in
// topological order, counting at most one toggle per net — the exact
// semantics of sim.ZeroDelay, 64 lanes at a time.
func (m *Meter) applyZeroDelay() {
	for i, id := range m.inputNets {
		nv := m.vPack[i]
		if c := m.val[id] ^ nv; c != 0 {
			m.val[id] = nv
			m.bump(int32(id), c)
		}
	}
	for gi := range m.gates {
		g := &m.gates[gi]
		nv := m.evalPacked(g)
		if c := m.val[g.out] ^ nv; c != 0 {
			m.val[g.out] = nv
			m.bump(g.out, c)
		}
	}
}

// applyUnitDelay switches the inputs to v and propagates the edge as a
// synchronous unit-delay wavefront: every step collects the gates fed by
// nets that changed in the previous step, evaluates them all against the
// pre-step values (two-phase, so within-step order is irrelevant), then
// commits the changes, counting each as a toggle. Outputs converge to the
// settle(v) steady state in at most Depth() steps because a gate at logic
// level L has final inputs after step L-1; every extra change on the way
// is an (approximate, unit-delay) glitch.
func (m *Meter) applyUnitDelay() {
	for i := range m.mark {
		m.mark[i] = -1
	}
	m.changed = m.changed[:0]
	for i, id := range m.inputNets {
		nv := m.vPack[i]
		if c := m.val[id] ^ nv; c != 0 {
			m.val[id] = nv
			m.bump(int32(id), c)
			m.changed = append(m.changed, int32(id))
		}
	}
	for step := int32(0); len(m.changed) > 0; step++ {
		m.dirty = m.dirty[:0]
		for _, id := range m.changed {
			for _, gi := range m.fanout[id] {
				if m.mark[gi] != step {
					m.mark[gi] = step
					m.dirty = append(m.dirty, gi)
				}
			}
		}
		m.pending = m.pending[:0]
		for _, gi := range m.dirty {
			m.pending = append(m.pending, m.evalPacked(&m.gates[gi]))
		}
		m.changed = m.changed[:0]
		for k, gi := range m.dirty {
			out := m.gates[gi].out
			nv := m.pending[k]
			if c := m.val[out] ^ nv; c != 0 {
				m.val[out] = nv
				m.bump(out, c)
				m.changed = append(m.changed, out)
			}
		}
	}
}
