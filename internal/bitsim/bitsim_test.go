package bitsim_test

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"hdpower/internal/bitsim"
	"hdpower/internal/cells"
	"hdpower/internal/dwlib"
	"hdpower/internal/faultpoint"
	"hdpower/internal/logic"
	"hdpower/internal/netlist"
	"hdpower/internal/power"
	"hdpower/internal/sim"
)

// Glitch tolerances bound the relative disagreement in total switching
// activity between the unit-delay bit-parallel engine and the golden
// event-driven engine (per-gate transport delays 1–3). The two glitch
// models differ by construction — unit delay collapses every gate to one
// step — so activity totals drift: ~a few percent on adder/tree
// structures, up to ~32% on deep multiplier arrays where transport-delay
// spread filters hazards that unit delay keeps. The per-case tolerances
// pin the empirical drift so a regression that breaks glitch propagation
// (e.g. losing a wavefront) fails loudly.
const (
	glitchTolAdder      = 0.15
	glitchTolMultiplier = 0.40
)

func buildModule(t testing.TB, name string, width int) *netlist.Netlist {
	t.Helper()
	mod, err := dwlib.Lookup(name)
	if err != nil {
		t.Fatalf("lookup %s: %v", name, err)
	}
	nl := mod.Build(width)
	if err := nl.Finalize(); err != nil {
		t.Fatalf("finalize %s-%d: %v", name, width, err)
	}
	return nl
}

func randWord(rng *rand.Rand, m int) logic.Word {
	w := logic.NewWord(m)
	for i := 0; i < m; i++ {
		if rng.Int63()&1 == 1 {
			w.Set(i, true)
		}
	}
	return w
}

func randPairs(rng *rand.Rand, m, n int) (us, vs []logic.Word) {
	us = make([]logic.Word, n)
	vs = make([]logic.Word, n)
	for j := 0; j < n; j++ {
		us[j] = randWord(rng, m)
		vs[j] = randWord(rng, m)
	}
	return us, vs
}

// scalarReference prices every pair on the scalar engine and accumulates
// per-net toggles plus per-pair charge — the ground truth the bit-parallel
// engine must reproduce (exactly for ZeroDelay, approximately for glitches).
func scalarReference(t testing.TB, nl *netlist.Netlist, engine sim.Engine,
	us, vs []logic.Word) ([]int64, []float64) {
	t.Helper()
	s, err := sim.New(nl, engine)
	if err != nil {
		t.Fatal(err)
	}
	meter, err := power.NewMeter(nl, engine)
	if err != nil {
		t.Fatal(err)
	}
	toggles := make([]int64, nl.NumNets())
	q := make([]float64, len(us))
	for j := range us {
		s.Settle(us[j])
		for id, n := range s.Apply(vs[j]) {
			toggles[id] += n
		}
		meter.Reset(us[j])
		q[j] = meter.Cycle(vs[j])
	}
	return toggles, q
}

// batchAll runs pairs through one bit-parallel meter in Lanes-sized
// batches, accumulating per-net toggles and per-pair charges.
func batchAll(t testing.TB, m *bitsim.Meter, us, vs []logic.Word) ([]int64, []float64) {
	t.Helper()
	toggles := make([]int64, m.Netlist().NumNets())
	q := make([]float64, len(us))
	for off := 0; off < len(us); off += bitsim.Lanes {
		end := off + bitsim.Lanes
		if end > len(us) {
			end = len(us)
		}
		for id, n := range m.CycleBatch(us[off:end], vs[off:end], q[off:end]) {
			toggles[id] += n
		}
	}
	return toggles, q
}

func relDiff(a, b float64) float64 {
	if a == b {
		return 0
	}
	den := math.Max(math.Abs(a), math.Abs(b))
	return math.Abs(a-b) / den
}

// TestZeroDelayMatchesScalar checks the bit-identity contract on the whole
// module catalog at 8 and 16 bits: in ZeroDelay mode the 64-lane engine
// must report exactly the per-net toggle counts of the scalar zero-delay
// simulator, and per-pair charges equal up to float summation order.
func TestZeroDelayMatchesScalar(t *testing.T) {
	for _, name := range dwlib.Names() {
		for _, width := range []int{8, 16} {
			nl := buildModule(t, name, width)
			t.Run(nl.Name, func(t *testing.T) {
				m, err := bitsim.New(nl, bitsim.ZeroDelay)
				if err != nil {
					t.Fatal(err)
				}
				rng := rand.New(rand.NewSource(int64(width)*1000 + int64(len(name))))
				us, vs := randPairs(rng, m.NumInputBits(), 160) // 2.5 batches: exercises a ragged tail
				got, gotQ := batchAll(t, m, us, vs)
				want, wantQ := scalarReference(t, nl, sim.ZeroDelay, us, vs)
				for id := range want {
					if got[id] != want[id] {
						t.Fatalf("net %d: toggles %d, scalar %d", id, got[id], want[id])
					}
				}
				for j := range wantQ {
					if relDiff(gotQ[j], wantQ[j]) > 1e-9 {
						t.Fatalf("pair %d: charge %g, scalar %g", j, gotQ[j], wantQ[j])
					}
				}
			})
		}
	}
}

// TestUnitDelayInvariants checks the glitch-approximation mode against the
// zero-delay baseline on the catalog: per-net toggle parity must match
// (both engines settle to the same steady state) and unit-delay activity
// can only add hazard pairs, never remove transitions.
func TestUnitDelayInvariants(t *testing.T) {
	for _, name := range dwlib.Names() {
		nl := buildModule(t, name, 8)
		t.Run(nl.Name, func(t *testing.T) {
			ud, err := bitsim.New(nl, bitsim.UnitDelay)
			if err != nil {
				t.Fatal(err)
			}
			zd, err := bitsim.New(nl, bitsim.ZeroDelay)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(42))
			us, vs := randPairs(rng, ud.NumInputBits(), 128)
			unit, _ := batchAll(t, ud, us, vs)
			zero, _ := batchAll(t, zd, us, vs)
			for id := range unit {
				if unit[id]%2 != zero[id]%2 {
					t.Fatalf("net %d: toggle parity %d vs zero-delay %d (steady states diverge)",
						id, unit[id], zero[id])
				}
				if unit[id] < zero[id] {
					t.Fatalf("net %d: unit-delay toggles %d below zero-delay %d",
						id, unit[id], zero[id])
				}
			}
		})
	}
}

// TestUnitDelayTracksEventGlitches samples catalog modules and compares
// total switching activity between the unit-delay approximation and the
// event-driven golden engine; the drift must stay within glitchTolerance.
func TestUnitDelayTracksEventGlitches(t *testing.T) {
	cases := []struct {
		module string
		width  int
		tol    float64
	}{
		{"ripple-adder", 16, glitchTolAdder},
		{"cla-adder", 16, glitchTolAdder},
		{"csa-multiplier", 8, glitchTolMultiplier},
		{"booth-wallace-multiplier", 8, glitchTolMultiplier},
		{"parity-tree", 16, glitchTolAdder},
	}
	for _, tc := range cases {
		nl := buildModule(t, tc.module, tc.width)
		t.Run(nl.Name, func(t *testing.T) {
			m, err := bitsim.New(nl, bitsim.UnitDelay)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(7))
			us, vs := randPairs(rng, m.NumInputBits(), 256)
			unit, _ := batchAll(t, m, us, vs)
			event, _ := scalarReference(t, nl, sim.EventDriven, us, vs)
			zero, _ := scalarReference(t, nl, sim.ZeroDelay, us, vs)
			var unitTotal, eventTotal, zeroTotal int64
			for id := range unit {
				unitTotal += unit[id]
				eventTotal += event[id]
				zeroTotal += zero[id]
			}
			if unitTotal < zeroTotal {
				t.Fatalf("unit-delay total %d below zero-delay %d", unitTotal, zeroTotal)
			}
			drift := relDiff(float64(unitTotal), float64(eventTotal))
			t.Logf("%s: toggles unit=%d event=%d zero=%d drift=%.3f",
				nl.Name, unitTotal, eventTotal, zeroTotal, drift)
			if drift > tc.tol {
				t.Fatalf("glitch drift %.3f exceeds tolerance %.2f (unit %d vs event %d)",
					drift, tc.tol, unitTotal, eventTotal)
			}
		})
	}
}

// TestCycleBatchValidation pins the panic contract on malformed batches.
func TestCycleBatchValidation(t *testing.T) {
	nl := buildModule(t, "ripple-adder", 4)
	m, err := bitsim.New(nl, bitsim.ZeroDelay)
	if err != nil {
		t.Fatal(err)
	}
	bits := m.NumInputBits()
	ok := make([]logic.Word, 1)
	ok[0] = logic.NewWord(bits)
	q := make([]float64, 1)
	mustPanic := func(name string, f func()) {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic", name)
				}
			}()
			f()
		})
	}
	mustPanic("len-mismatch", func() { m.CycleBatch(ok, nil, q) })
	mustPanic("empty", func() { m.CycleBatch(nil, nil, nil) })
	big := make([]logic.Word, bitsim.Lanes+1)
	for i := range big {
		big[i] = logic.NewWord(bits)
	}
	mustPanic("over-lanes", func() { m.CycleBatch(big, big, make([]float64, len(big))) })
	mustPanic("short-q", func() { m.CycleBatch(ok, ok, nil) })
	bad := []logic.Word{logic.NewWord(bits + 1)}
	mustPanic("width-mismatch", func() { m.CycleBatch(bad, bad, q) })
}

// TestPartialBatchMatchesSingles checks pad-lane inertness: a ragged batch
// of k < Lanes pairs must price exactly like k single-pair batches — the
// unused lanes contribute no toggles and no charge.
func TestPartialBatchMatchesSingles(t *testing.T) {
	nl := buildModule(t, "csa-multiplier", 4)
	m, err := bitsim.New(nl, bitsim.UnitDelay)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	us, vs := randPairs(rng, m.NumInputBits(), 5)
	qBatch := make([]float64, 8)
	for i := range qBatch {
		qBatch[i] = math.NaN() // sentinel: lanes beyond the batch stay untouched
	}
	batchToggles := append([]int64(nil), m.CycleBatch(us, vs, qBatch)...)

	single := m.Clone()
	q1 := make([]float64, 1)
	sumToggles := make([]int64, len(batchToggles))
	for j := range us {
		for id, n := range single.CycleBatch(us[j:j+1], vs[j:j+1], q1) {
			sumToggles[id] += n
		}
		// Charges agree up to float summation order: the unit-delay
		// wavefront visits nets in an order that depends on which lanes
		// are active, so the same per-lane additions land in a different
		// sequence.
		if relDiff(qBatch[j], q1[0]) > 1e-9 {
			t.Fatalf("pair %d: batched charge %g, single %g", j, qBatch[j], q1[0])
		}
	}
	for id := range batchToggles {
		if batchToggles[id] != sumToggles[id] {
			t.Fatalf("net %d: batched toggles %d, singles %d", id, batchToggles[id], sumToggles[id])
		}
	}
	for j := len(us); j < len(qBatch); j++ {
		if !math.IsNaN(qBatch[j]) {
			t.Fatalf("q[%d] overwritten to %g beyond the batch", j, qBatch[j])
		}
	}
}

// TestCloneConcurrent drives clones from concurrent goroutines (the worker
// pool contract); under -race this doubles as the data-race check, and the
// results must match a sequential run exactly.
func TestCloneConcurrent(t *testing.T) {
	nl := buildModule(t, "cla-adder", 8)
	base, err := bitsim.New(nl, bitsim.UnitDelay)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	const workers = 4
	type job struct{ us, vs []logic.Word }
	jobs := make([]job, workers)
	wantQ := make([][]float64, workers)
	for w := range jobs {
		jobs[w].us, jobs[w].vs = randPairs(rng, base.NumInputBits(), bitsim.Lanes)
		wantQ[w] = make([]float64, bitsim.Lanes)
		base.CycleBatch(jobs[w].us, jobs[w].vs, wantQ[w])
	}
	var wg sync.WaitGroup
	gotQ := make([][]float64, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			m := base.Clone()
			gotQ[w] = make([]float64, bitsim.Lanes)
			m.CycleBatch(jobs[w].us, jobs[w].vs, gotQ[w])
		}(w)
	}
	wg.Wait()
	for w := range gotQ {
		for j := range gotQ[w] {
			if gotQ[w][j] != wantQ[w][j] {
				t.Fatalf("worker %d pair %d: clone charge %g, base %g", w, j, gotQ[w][j], wantQ[w][j])
			}
		}
	}
}

func TestModeString(t *testing.T) {
	if bitsim.ZeroDelay.String() != "zero-delay" || bitsim.UnitDelay.String() != "unit-delay" {
		t.Fatalf("mode names: %q, %q", bitsim.ZeroDelay, bitsim.UnitDelay)
	}
	if got := bitsim.Mode(99).String(); got == "" {
		t.Fatalf("unknown mode stringer returned empty")
	}
}

// randomCircuit mirrors internal/sim's fuzz helper: a random combinational
// DAG whose gate inputs are drawn from earlier nets (guaranteeing
// acyclicity), with the last few gate outputs marked as the output bus.
func randomCircuit(rng *rand.Rand, inputs, gates int) *netlist.Netlist {
	n := netlist.New("fuzz")
	bus := n.AddInputBus("a", inputs)
	pool := append([]netlist.NetID(nil), bus.Nets...)
	pool = append(pool, n.Const(false), n.Const(true))
	kinds := cells.Kinds()
	var outs []netlist.NetID
	for g := 0; g < gates; g++ {
		kind := kinds[rng.Intn(len(kinds))]
		c := cells.Lookup(kind)
		in := make([]netlist.NetID, c.NumInputs)
		for i := range in {
			in[i] = pool[rng.Intn(len(pool))]
		}
		out := n.AddGate(kind, in...)
		pool = append(pool, out)
		outs = append(outs, out)
	}
	k := len(outs)
	if k > 4 {
		k = 4
	}
	if k > 0 {
		n.MarkOutputBus("y", outs[len(outs)-k:])
	} else {
		n.MarkOutputBus("y", []netlist.NetID{bus.Nets[0]})
	}
	return n
}

// FuzzEnginesAgree mirrors internal/sim's engine-agreement fuzz target for
// the bit-parallel engine: on random DAGs and random batches, ZeroDelay
// lanes must match the scalar simulator net-for-net, and UnitDelay must
// preserve steady-state parity while only ever adding activity.
func FuzzEnginesAgree(f *testing.F) {
	f.Add(int64(1), uint8(6), uint8(40))
	f.Add(int64(99), uint8(2), uint8(5))
	f.Add(int64(-7), uint8(12), uint8(120))
	f.Fuzz(func(t *testing.T, seed int64, inputs, gates uint8) {
		ni := 1 + int(inputs)%16
		ng := 1 + int(gates)%150
		build := func() *netlist.Netlist {
			return randomCircuit(rand.New(rand.NewSource(seed)), ni, ng)
		}
		nlA, nlB := build(), build()
		if err := nlA.Finalize(); err != nil {
			t.Fatal(err)
		}
		if err := nlB.Finalize(); err != nil {
			t.Fatal(err)
		}
		zd, err := bitsim.New(nlA, bitsim.ZeroDelay)
		if err != nil {
			t.Fatal(err)
		}
		ud, err := bitsim.New(nlA, bitsim.UnitDelay)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(seed ^ 0x5f3759df))
		us, vs := randPairs(rng, zd.NumInputBits(), 32)
		zero, zeroQ := batchAll(t, zd, us, vs)
		unit, _ := batchAll(t, ud, us, vs)
		want, wantQ := scalarReference(t, nlB, sim.ZeroDelay, us, vs)
		for id := range want {
			if zero[id] != want[id] {
				t.Fatalf("net %d: zero-delay toggles %d, scalar %d", id, zero[id], want[id])
			}
			if unit[id]%2 != zero[id]%2 || unit[id] < zero[id] {
				t.Fatalf("net %d: unit-delay toggles %d vs zero-delay %d", id, unit[id], zero[id])
			}
		}
		for j := range wantQ {
			if relDiff(zeroQ[j], wantQ[j]) > 1e-9 {
				t.Fatalf("pair %d: charge %g, scalar %g", j, zeroQ[j], wantQ[j])
			}
		}
	})
}

// TestBatchFaultpointArmed pins the chaos-engineering hook: the batch
// path runs under the bitsim.batch fault point, so the chaos suite can
// stretch its timing while checkpoint kill-point tests run on the
// bit-parallel backend.
func TestBatchFaultpointArmed(t *testing.T) {
	faultpoint.Disarm()
	if err := faultpoint.Arm("bitsim.batch=slow:p=1:delay=0ms"); err != nil {
		t.Fatal(err)
	}
	defer faultpoint.Disarm()
	nl := buildModule(t, "ripple-adder", 4)
	m, err := bitsim.New(nl, bitsim.UnitDelay)
	if err != nil {
		t.Fatal(err)
	}
	before := faultpoint.Hits("bitsim.batch")
	us, vs := randPairs(rand.New(rand.NewSource(1)), m.NumInputBits(), 8)
	m.CycleBatch(us, vs, make([]float64, len(us)))
	if faultpoint.Hits("bitsim.batch") != before+1 {
		t.Fatal("bitsim.batch fault point did not fire in CycleBatch")
	}
}
