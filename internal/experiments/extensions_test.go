package experiments

import (
	"math"
	"strings"
	"testing"

	"hdpower/internal/stimuli"
)

func TestEstimatorStudy(t *testing.T) {
	res, err := quickSuite().EstimatorStudy()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 10 { // 2 modules x 5 data types
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.SimAvg <= 0 {
			t.Errorf("%s/%s: sim avg %v", row.Module, row.DataType, row.SimAvg)
		}
		for _, v := range []float64{row.ErrCycle, row.ErrDist, row.ErrAvgHd, row.ErrDBT} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Errorf("%s/%s: non-finite error %v", row.Module, row.DataType, v)
			}
		}
		// The cycle-resolved estimator has the most information; on the
		// zero-mean streams it must stay within reasonable bounds. (The
		// video stream's positive mean freezes sign bits at one and the
		// counter freezes them at zero — both bias the basic model, cf.
		// Table 1.)
		switch row.DataType {
		case stimuli.TypeRandom, stimuli.TypeMusic, stimuli.TypeSpeech:
			if abs(row.ErrCycle) > 25 {
				t.Errorf("%s/%s: cycle estimator err %.1f%%", row.Module, row.DataType, row.ErrCycle)
			}
		}
	}
	if !strings.Contains(res.String(), "Estimator study") {
		t.Error("String() missing title")
	}
}

func TestEngineAblationShowsGlitchPower(t *testing.T) {
	res, err := quickSuite().EngineAblation()
	if err != nil {
		t.Fatal(err)
	}
	// The event-driven reference must contain real glitch charge...
	if res.GlitchShare <= 0.02 {
		t.Errorf("glitch share = %.3f, expected positive", res.GlitchShare)
	}
	// ...the zero-delay model must underestimate it by roughly that
	// share, and the event-driven model must be much closer.
	if res.ErrZeroDelayModel >= 0 {
		t.Errorf("zero-delay model should underestimate, got %+.1f%%", res.ErrZeroDelayModel)
	}
	if math.Abs(res.ErrEventModel) >= math.Abs(res.ErrZeroDelayModel) {
		t.Errorf("event model err %.1f%% not better than zero-delay %.1f%%",
			res.ErrEventModel, res.ErrZeroDelayModel)
	}
	if !strings.Contains(res.String(), "Engine ablation") {
		t.Error("String() missing title")
	}
}

func TestZClusterAblationTradeoff(t *testing.T) {
	res, err := quickSuite().ZClusterAblation()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// Coefficient counts must strictly shrink with coarser clustering.
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i].Coefficients >= res.Rows[i-1].Coefficients {
			t.Errorf("clustering level %d does not shrink the model: %d -> %d",
				res.Rows[i].ZClusters, res.Rows[i-1].Coefficients, res.Rows[i].Coefficients)
		}
	}
	// Full resolution row matches the paper's (m^2+m)/2.
	if res.Rows[0].Coefficients != (16*16+16)/2 {
		t.Errorf("full-resolution coefficients = %d", res.Rows[0].Coefficients)
	}
	if !strings.Contains(res.String(), "Z-cluster") {
		t.Error("String() missing title")
	}
}

func TestAdaptationStudyImproves(t *testing.T) {
	res, err := quickSuite().AdaptationStudy()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.ErrAfter) >= math.Abs(res.ErrBefore) {
		t.Errorf("adaptation did not improve: %.1f%% -> %.1f%%",
			res.ErrBefore, res.ErrAfter)
	}
	if math.Abs(res.ErrAfter) > 20 {
		t.Errorf("adapted error still %.1f%%", res.ErrAfter)
	}
	if !strings.Contains(res.String(), "adaptation") {
		t.Error("String() missing title")
	}
}

func TestPortStudy(t *testing.T) {
	res, err := quickSuite().PortStudy()
	if err != nil {
		t.Fatal(err)
	}
	if res.PortCoefficients != (8+1)*(8+1)-1 { // (widthA+1)(widthB+1)−1
		t.Errorf("port coefficients = %d", res.PortCoefficients)
	}
	// The port model's whole value proposition: much better on the
	// frozen-coefficient stream.
	if abs(res.PortFrozen) >= abs(res.BasicFrozen) {
		t.Errorf("port model |%.1f%%| not better than basic |%.1f%%| on frozen port",
			res.PortFrozen, res.BasicFrozen)
	}
	// And no collapse on the symmetric stream.
	if abs(res.PortRandom) > 12 {
		t.Errorf("port model random-stream error %.1f%%", res.PortRandom)
	}
	if !strings.Contains(res.String(), "Port-resolved") {
		t.Error("String() missing title")
	}
}

func TestBudgetStudyConverges(t *testing.T) {
	res, err := quickSuite().BudgetStudy()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 6 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	first, last := res.Rows[0], res.Rows[len(res.Rows)-1]
	if last.MaxCoefDrift != 0 {
		t.Errorf("reference model drifts from itself: %v", last.MaxCoefDrift)
	}
	if first.MaxCoefDrift <= res.Rows[4].MaxCoefDrift {
		t.Errorf("drift not shrinking: %v -> %v", first.MaxCoefDrift, res.Rows[4].MaxCoefDrift)
	}
	if abs(last.AvgErrRandom) > 6 {
		t.Errorf("converged model error %.1f%%", last.AvgErrRandom)
	}
	if !strings.Contains(res.String(), "budget study") {
		t.Error("String() missing title")
	}
}

func TestRectStudy(t *testing.T) {
	res, err := quickSuite().RectStudy()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Classes) < 8 {
		t.Fatalf("only %d classes compared", len(res.Classes))
	}
	if res.AvgRelErr > 20 {
		t.Errorf("mean rect regression error %.1f%%", res.AvgRelErr)
	}
	if !strings.Contains(res.String(), "eq. 8") {
		t.Error("String() missing title")
	}
}

func TestEngineAblationInertialShare(t *testing.T) {
	res, err := quickSuite().EngineAblation()
	if err != nil {
		t.Fatal(err)
	}
	// Inertial filtering removes part — not all — of the glitch charge.
	if res.FilterableShare <= 0 {
		t.Errorf("filterable share %.3f, want positive", res.FilterableShare)
	}
	if res.FilterableShare >= res.GlitchShare {
		t.Errorf("filterable share %.3f not below total glitch share %.3f",
			res.FilterableShare, res.GlitchShare)
	}
}
