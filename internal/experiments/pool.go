package experiments

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// forEachIndexed runs fn(i) for every i in [0, n) on up to workers
// goroutines (0 means NumCPU) and returns the error of the lowest failing
// index. All indices run even after a failure: experiment tables are
// assembled by index, so the deterministic error choice matters more than
// early cancellation at these job counts.
func forEachIndexed(n, workers int, fn func(i int) error) error {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > n {
		workers = n
	}
	errs := make([]error, n)
	if workers <= 1 {
		for i := 0; i < n; i++ {
			errs[i] = fn(i)
		}
	} else {
		var next int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(atomic.AddInt64(&next, 1)) - 1
					if i >= n {
						return
					}
					errs[i] = fn(i)
				}
			}()
		}
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
