package experiments

import (
	"reflect"
	"testing"
)

func TestRecommendBudgets(t *testing.T) {
	traffic := []uint64{0, 100, 100, 10}
	eps := []float64{0.5, 0.02, 0.10, 0.10}
	// weights: 0, 2, 10, 1 (sum 13); shares of 1300: 0, 200, 1000, 100.
	got := RecommendBudgets(1300, traffic, eps)
	want := []int{0, 200, 1000, 100}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("budgets = %v, want %v", got, want)
	}
	if sum(got) != 1300 {
		t.Fatalf("sum = %d, want 1300", sum(got))
	}
}

func TestRecommendBudgetsLargestRemainder(t *testing.T) {
	// weights 1,1,1 over total 10: shares 3.333 each; the remainder goes
	// to the lowest indices (deterministic tie-break).
	got := RecommendBudgets(10, []uint64{1, 1, 1}, []float64{1, 1, 1})
	if !reflect.DeepEqual(got, []int{4, 3, 3}) {
		t.Fatalf("budgets = %v, want [4 3 3]", got)
	}
	// Determinism: identical input, identical output, every time.
	for i := 0; i < 50; i++ {
		if again := RecommendBudgets(10, []uint64{1, 1, 1}, []float64{1, 1, 1}); !reflect.DeepEqual(again, got) {
			t.Fatalf("nondeterministic apportionment: %v then %v", got, again)
		}
	}
}

func TestRecommendBudgetsUniformFallback(t *testing.T) {
	// No traffic at all: uniform split, first total%n classes get +1.
	got := RecommendBudgets(11, []uint64{0, 0, 0, 0}, []float64{1, 1, 1, 1})
	if !reflect.DeepEqual(got, []int{3, 3, 3, 2}) {
		t.Fatalf("uniform fallback = %v, want [3 3 3 2]", got)
	}
	// Negative epsilon is clamped, not propagated.
	got = RecommendBudgets(4, []uint64{5, 5}, []float64{-1, 1})
	if !reflect.DeepEqual(got, []int{0, 4}) {
		t.Fatalf("negative eps = %v, want [0 4]", got)
	}
}

func TestRecommendBudgetsEdges(t *testing.T) {
	if got := RecommendBudgets(0, []uint64{1}, []float64{1}); got[0] != 0 {
		t.Fatalf("zero total: %v", got)
	}
	if got := RecommendBudgets(5, nil, nil); len(got) != 0 {
		t.Fatalf("empty classes: %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched lengths must panic")
		}
	}()
	RecommendBudgets(5, []uint64{1, 2}, []float64{1})
}

func sum(xs []int) int {
	t := 0
	for _, x := range xs {
		t += x
	}
	return t
}
