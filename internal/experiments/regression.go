package experiments

import (
	"fmt"
	"strings"

	"hdpower/internal/dwlib"
	"hdpower/internal/power"
	"hdpower/internal/regress"
	"hdpower/internal/stimuli"
	"hdpower/internal/textplot"
)

// regressionModules are the two families Section 5 studies.
func regressionModules() []string { return []string{"csa-multiplier", "ripple-adder"} }

// fitSets characterizes the full prototype set 4..16 step 2 for a module
// family and fits one parameterized model per reduction level.
func (s *Suite) fitSets(name string) (map[regress.PrototypeSet]*regress.ParamModel, []regress.Prototype, error) {
	mod, err := dwlib.Lookup(name)
	if err != nil {
		return nil, nil, err
	}
	basis := regress.BasisFor(name)
	widths := regress.SetAll.Widths()
	all := make([]regress.Prototype, len(widths))
	if err := forEachIndexed(len(widths), s.cfg.Workers, func(i int) error {
		model, err := s.Model(name, widths[i], false)
		if err != nil {
			return err
		}
		all[i] = regress.Prototype{Width: widths[i], Model: model}
		return nil
	}); err != nil {
		return nil, nil, err
	}
	byWidth := make(map[int]regress.Prototype, len(all))
	for _, p := range all {
		byWidth[p.Width] = p
	}
	fits := make(map[regress.PrototypeSet]*regress.ParamModel)
	for _, set := range regress.AllSets() {
		var protos []regress.Prototype
		for _, w := range set.Widths() {
			protos = append(protos, byWidth[w])
		}
		factor := 1
		if mod.TwoOperand {
			factor = 2
		}
		pm, err := regress.Fit(name, protos, basis, factor)
		if err != nil {
			return nil, nil, fmt.Errorf("fit %s/%s: %w", name, set, err)
		}
		fits[set] = pm
	}
	return fits, all, nil
}

// Figure4Series is the instance-vs-regression comparison for one
// coefficient index of one module family.
type Figure4Series struct {
	Module string
	Class  int       // Hd class i
	Widths []int     // prototype operand widths
	Inst   []float64 // instance-characterized p_i per width
	RegAll []float64 // regression p_i per width, ALL set
	RegThi []float64 // regression p_i per width, THI set
}

// Figure4Result reproduces Figure 4: coefficients from instance
// characterization vs from the regression equations.
type Figure4Result struct {
	Series []Figure4Series
}

// Figure4 compares instance and regression coefficients for
// representative classes of the csa-multiplier and ripple-adder families.
func (s *Suite) Figure4() (*Figure4Result, error) {
	res := &Figure4Result{}
	for _, name := range regressionModules() {
		fits, protos, err := s.fitSets(name)
		if err != nil {
			return nil, err
		}
		for _, class := range []int{1, 5, 8} {
			ser := Figure4Series{Module: name, Class: class}
			for _, p := range protos {
				if class > p.Model.InputBits {
					continue
				}
				ser.Widths = append(ser.Widths, p.Width)
				ser.Inst = append(ser.Inst, p.Model.P(class))
				pAll, _ := fits[regress.SetAll].Coefficient(class, p.Width)
				pThi, _ := fits[regress.SetThi].Coefficient(class, p.Width)
				ser.RegAll = append(ser.RegAll, pAll)
				ser.RegThi = append(ser.RegThi, pThi)
			}
			res.Series = append(res.Series, ser)
		}
	}
	return res, nil
}

// String renders one chart per series.
func (r *Figure4Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 4: coefficients from instance characterization vs regression\n\n")
	for _, ser := range r.Series {
		xs := make([]float64, len(ser.Widths))
		for i, w := range ser.Widths {
			xs[i] = float64(w)
		}
		b.WriteString(textplot.Chart(
			fmt.Sprintf("%s p_%d over operand width", ser.Module, ser.Class),
			"operand width", xs, []textplot.Series{
				{Name: "instance characterization", Y: ser.Inst},
				{Name: "regression (ALL)", Y: ser.RegAll},
				{Name: "regression (THI)", Y: ser.RegThi},
			}, 56, 12))
		b.WriteByte('\n')
	}
	return b.String()
}

// Table3Row is one row of Table 3: where the Hd-model parameters came
// from, the resulting coefficient errors, and the average-power
// estimation errors for data types I, III and V.
type Table3Row struct {
	Module string
	Source string // "instance", "ALL", "SEC", "THI"
	// ParamErr holds the relative coefficient error (%) vs the instance
	// characterization for p_1, p_5, p_8 and the average over all classes.
	ParamErrP1, ParamErrP5, ParamErrP8, ParamErrAvg float64
	// EstErr maps data type -> average-power estimation error (%).
	EstErr map[stimuli.DataType]float64
}

// Table3Result reproduces Table 3 for the 8x8 csa-multiplier and the
// 8-bit ripple-adder.
type Table3Result struct {
	Rows []Table3Row
}

// Table3 evaluates instance-characterized and regression-synthesized
// models of the width-8 instances on data types I, III and V.
func (s *Suite) Table3() (*Table3Result, error) {
	const evalWidth = 8
	dts := []stimuli.DataType{stimuli.TypeRandom, stimuli.TypeSpeech, stimuli.TypeCounter}
	res := &Table3Result{}
	for _, name := range regressionModules() {
		fits, _, err := s.fitSets(name)
		if err != nil {
			return nil, err
		}
		instModel, err := s.Model(name, evalWidth, false)
		if err != nil {
			return nil, err
		}
		// Reference traces per data type, shared by all rows.
		traces := make(map[stimuli.DataType]power.Trace)
		for _, dt := range dts {
			tr, err := s.runEval(name, evalWidth, dt)
			if err != nil {
				return nil, err
			}
			traces[dt] = tr
		}

		evalRow := func(source string, model interface{ P(int) float64 }) Table3Row {
			row := Table3Row{Module: name, Source: source, EstErr: make(map[stimuli.DataType]float64)}
			relErr := func(i int) float64 {
				inst := instModel.P(i)
				if inst == 0 {
					return 0
				}
				return abs(model.P(i)-inst) / inst * 100
			}
			row.ParamErrP1 = relErr(1)
			row.ParamErrP5 = relErr(5)
			row.ParamErrP8 = relErr(8)
			var sum float64
			n := 0
			for i := 1; i <= instModel.InputBits; i++ {
				sum += relErr(i)
				n++
			}
			row.ParamErrAvg = sum / float64(n)
			for _, dt := range dts {
				tr := traces[dt]
				est := make([]float64, len(tr.Hd))
				for j, h := range tr.Hd {
					est[j] = model.P(h)
				}
				e, _ := power.AvgError(est, tr.Q)
				row.EstErr[dt] = e
			}
			return row
		}

		res.Rows = append(res.Rows, evalRow("instance", instModel))
		for _, set := range regress.AllSets() {
			res.Rows = append(res.Rows, evalRow(string(set), fits[set].Synthesize(evalWidth)))
		}
	}
	return res, nil
}

// String renders the table in the paper's layout.
func (r *Table3Result) String() string {
	var b strings.Builder
	b.WriteString("Table 3: coefficient and estimation errors (in %) for regression tasks\n\n")
	fmt.Fprintf(&b, "%-16s %-9s | %6s %6s %6s %8s | %6s %6s %6s\n",
		"module", "params", "p1", "p5", "p8", "avg(pi)", "I", "III", "V")
	b.WriteString(strings.Repeat("-", 78) + "\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-16s %-9s | %6.0f %6.0f %6.0f %8.0f | %6.0f %6.0f %6.0f\n",
			row.Module, row.Source,
			row.ParamErrP1, row.ParamErrP5, row.ParamErrP8, row.ParamErrAvg,
			abs(row.EstErr[stimuli.TypeRandom]),
			abs(row.EstErr[stimuli.TypeSpeech]),
			abs(row.EstErr[stimuli.TypeCounter]))
	}
	return b.String()
}
