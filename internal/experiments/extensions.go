package experiments

import (
	"fmt"
	"strings"

	"hdpower/internal/adapt"
	"hdpower/internal/core"
	"hdpower/internal/dbt"
	"hdpower/internal/dwlib"
	"hdpower/internal/hddist"
	"hdpower/internal/power"
	"hdpower/internal/sim"
	"hdpower/internal/stats"
	"hdpower/internal/stimuli"
)

// ---------------------------------------------------------------------------
// Estimator comparison (extension: operationalizes Section 6 beyond Fig. 6)

// EstimatorRow compares all average-power estimators of the repository on
// one (module, data type) pair. All errors are signed percent vs the
// event-driven simulation reference.
type EstimatorRow struct {
	Module   string
	Width    int
	DataType stimuli.DataType
	// SimAvg is the reference average charge.
	SimAvg float64
	// ErrCycle uses the per-cycle basic Hd model (needs bit-level Hd).
	ErrCycle float64
	// ErrDist uses the analytic Hd distribution from word stats (eq. 18).
	ErrDist float64
	// ErrAvgHd interpolates the coefficients at the average Hd (Sec. 6.2).
	ErrAvgHd float64
	// ErrDBT uses the dual-bit-type baseline macro-model.
	ErrDBT float64
}

// EstimatorStudyResult is the estimator comparison table.
type EstimatorStudyResult struct {
	Rows []EstimatorRow
}

// EstimatorStudy compares the per-cycle Hd model, the distribution-based
// estimator, the average-Hd estimator and the DBT baseline across data
// types on the 8-bit paper instances.
func (s *Suite) EstimatorStudy() (*EstimatorStudyResult, error) {
	res := &EstimatorStudyResult{}
	for _, name := range []string{"csa-multiplier", "ripple-adder"} {
		const width = 8
		mod, err := dwlib.Lookup(name)
		if err != nil {
			return nil, err
		}
		model, err := s.Model(name, width, false)
		if err != nil {
			return nil, err
		}
		meter, _, err := s.meter(name, width)
		if err != nil {
			return nil, err
		}
		dbtModel, err := dbt.Characterize(meter, name, s.cfg.CharPatterns/2, s.cfg.Seed+55)
		if err != nil {
			return nil, err
		}
		for _, dt := range stimuli.AllDataTypes() {
			row, err := s.estimatorRow(mod, model, dbtModel, width, dt)
			if err != nil {
				return nil, err
			}
			res.Rows = append(res.Rows, row)
		}
	}
	return res, nil
}

func (s *Suite) estimatorRow(mod dwlib.Module, model *core.Model, dbtModel *dbt.Model,
	width int, dt stimuli.DataType) (EstimatorRow, error) {
	tr, err := s.runEval(mod.Name, width, dt)
	if err != nil {
		return EstimatorRow{}, err
	}
	row := EstimatorRow{Module: mod.Name, Width: width, DataType: dt, SimAvg: tr.Mean()}

	// (a) per-cycle basic model
	est := model.EstimateBasic(tr.Hd)
	if row.ErrCycle, err = power.AvgError(est, tr.Q); err != nil {
		return EstimatorRow{}, err
	}

	// (b)+(c): word-stats route. Per-port statistics from the same
	// canonical streams the trace used.
	ports := 1
	if mod.TwoOperand {
		ports = 2
	}
	var dist hddist.Dist
	var regions []stats.RegionActivity
	for p := 0; p < ports; p++ {
		words := stimuli.Take(s.Stream(dwlib.Module{Name: mod.Name, TwoOperand: false}, width, dt),
			s.cfg.EvalPatterns)
		ws, err := stats.FromWords(words)
		if err != nil {
			return EstimatorRow{}, err
		}
		pd := hddist.FromWordStats(ws, width)
		if dist == nil {
			dist = pd
		} else {
			dist = hddist.Convolve(dist, pd)
		}
		regions = append(regions, stats.Regions(ws, width))
	}
	pDist, err := model.AvgFromDist(dist)
	if err != nil {
		return EstimatorRow{}, err
	}
	row.ErrDist = (pDist - tr.Mean()) / tr.Mean() * 100
	pAvgHd := model.InterpP(dist.Mean())
	row.ErrAvgHd = (pAvgHd - tr.Mean()) / tr.Mean() * 100

	// (d) DBT baseline
	pDBT, err := dbtModel.EstimateAvg(regions)
	if err != nil {
		return EstimatorRow{}, err
	}
	row.ErrDBT = (pDBT - tr.Mean()) / tr.Mean() * 100
	return row, nil
}

// String renders the comparison table.
func (r *EstimatorStudyResult) String() string {
	var b strings.Builder
	b.WriteString("Estimator study: signed avg-power errors (%) vs event-driven simulation\n")
	b.WriteString("(cycle = per-cycle Hd model; dist = eq.18 distribution; avgHd = interp at\n")
	b.WriteString(" mean Hd; DBT = dual-bit-type baseline. Word-stats estimators assume\n")
	b.WriteString(" Gaussian AR(1) streams and are expected to break on the counter type V.)\n\n")
	fmt.Fprintf(&b, "%-16s %5s %4s | %10s | %7s %7s %7s %7s\n",
		"module", "width", "dt", "sim avg", "cycle", "dist", "avgHd", "DBT")
	b.WriteString(strings.Repeat("-", 78) + "\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-16s %5d %4s | %10.1f | %+7.1f %+7.1f %+7.1f %+7.1f\n",
			row.Module, row.Width, row.DataType, row.SimAvg,
			row.ErrCycle, row.ErrDist, row.ErrAvgHd, row.ErrDBT)
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// Engine ablation: what glitch modeling contributes

// EngineAblationResult quantifies the glitch contribution of the
// event-driven reference: the zero-delay simulator misses hazard power,
// so a model characterized on it systematically underestimates.
type EngineAblationResult struct {
	Module string
	Width  int
	// GlitchShare is the fraction of event-driven charge that zero-delay
	// simulation misses on a random stream.
	GlitchShare float64
	// FilterableShare is the fraction of event-driven charge removed by
	// inertial pulse filtering — glitch power a real gate would swallow.
	FilterableShare float64
	// ErrZeroDelayModel is the avg error (%) of a zero-delay-characterized
	// model against the event-driven reference on a random stream.
	ErrZeroDelayModel float64
	// ErrEventModel is the same for the event-driven-characterized model.
	ErrEventModel float64
}

// EngineAblation runs the study on the 8x8 CSA multiplier.
func (s *Suite) EngineAblation() (*EngineAblationResult, error) {
	const name = "csa-multiplier"
	const width = 8
	mod, err := dwlib.Lookup(name)
	if err != nil {
		return nil, err
	}
	res := &EngineAblationResult{Module: name, Width: width}

	// Reference trace (event-driven) and zero-delay trace on the same
	// stream.
	edMeter, err := power.NewMeter(mod.Build(width), sim.EventDriven)
	if err != nil {
		return nil, err
	}
	zdMeter, err := power.NewMeter(mod.Build(width), sim.ZeroDelay)
	if err != nil {
		return nil, err
	}
	inMeter, err := power.NewMeter(mod.Build(width), sim.Inertial)
	if err != nil {
		return nil, err
	}
	vecs := stimuli.Take(s.Stream(mod, width, stimuli.TypeRandom), s.cfg.EvalPatterns+1)
	edTrace, err := edMeter.Run(vecs)
	if err != nil {
		return nil, err
	}
	zdTrace, err := zdMeter.Run(vecs)
	if err != nil {
		return nil, err
	}
	inTrace, err := inMeter.Run(vecs)
	if err != nil {
		return nil, err
	}
	res.GlitchShare = (edTrace.Total() - zdTrace.Total()) / edTrace.Total()
	res.FilterableShare = (edTrace.Total() - inTrace.Total()) / edTrace.Total()

	charAndScore := func(engine sim.Engine) (float64, error) {
		meter, err := power.NewMeter(mod.Build(width), engine)
		if err != nil {
			return 0, err
		}
		model, err := core.Characterize(meter, name, core.CharacterizeOptions{
			Patterns: s.cfg.CharPatterns, Seed: s.cfg.Seed + 5,
		})
		if err != nil {
			return 0, err
		}
		est := model.EstimateBasic(edTrace.Hd)
		return power.AvgError(est, edTrace.Q)
	}
	if res.ErrZeroDelayModel, err = charAndScore(sim.ZeroDelay); err != nil {
		return nil, err
	}
	if res.ErrEventModel, err = charAndScore(sim.EventDriven); err != nil {
		return nil, err
	}
	return res, nil
}

// String renders the ablation.
func (r *EngineAblationResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Engine ablation, %s %dx%d:\n", r.Module, r.Width, r.Width)
	fmt.Fprintf(&b, "  glitch share of reference charge     : %6.1f%%\n", r.GlitchShare*100)
	fmt.Fprintf(&b, "  inertially filterable share          : %6.1f%%\n", r.FilterableShare*100)
	fmt.Fprintf(&b, "  avg err, zero-delay-characterized    : %+6.1f%%\n", r.ErrZeroDelayModel)
	fmt.Fprintf(&b, "  avg err, event-driven-characterized  : %+6.1f%%\n", r.ErrEventModel)
	return b.String()
}

// ---------------------------------------------------------------------------
// Z-cluster ablation: enhanced-model size/accuracy trade-off

// ZClusterRow is one clustering level of the ablation.
type ZClusterRow struct {
	ZClusters    int // 0 = full resolution
	Coefficients int // enhanced coefficient count
	// AvgErrCounter is the enhanced model's avg error (%) on the counter
	// stream (type V, the case the enhancement exists for).
	AvgErrCounter   float64
	CycleErrCounter float64
}

// ZClusterAblationResult is the clustering study (paper Section 3's
// "cluster event classes within a certain range of the number of zeros").
type ZClusterAblationResult struct {
	Module string
	Width  int
	Rows   []ZClusterRow
}

// ZClusterAblation sweeps the stable-zero clustering granularity on the
// 8x8 CSA multiplier and scores each model on the counter stream.
func (s *Suite) ZClusterAblation() (*ZClusterAblationResult, error) {
	const name = "csa-multiplier"
	const width = 8
	mod, err := dwlib.Lookup(name)
	if err != nil {
		return nil, err
	}
	tr, err := s.runEval(name, width, stimuli.TypeCounter)
	if err != nil {
		return nil, err
	}
	res := &ZClusterAblationResult{Module: name, Width: width}
	for _, zc := range []int{0, 8, 4, 2} {
		meter, err := power.NewMeter(mod.Build(width), s.cfg.Engine)
		if err != nil {
			return nil, err
		}
		model, err := core.Characterize(meter, name, core.CharacterizeOptions{
			Patterns: s.cfg.CharPatterns, Enhanced: true, ZClusters: zc,
			Seed: s.cfg.Seed + int64(width),
		})
		if err != nil {
			return nil, err
		}
		est, err := model.EstimateEnhanced(tr.Hd, tr.StableZeros)
		if err != nil {
			return nil, err
		}
		avgErr, err := power.AvgError(est, tr.Q)
		if err != nil {
			return nil, err
		}
		cycErr, err := power.AvgAbsCycleError(est, tr.Q)
		if err != nil {
			return nil, err
		}
		_, enhCount := model.NumCoefficients()
		res.Rows = append(res.Rows, ZClusterRow{
			ZClusters:       zc,
			Coefficients:    enhCount,
			AvgErrCounter:   avgErr,
			CycleErrCounter: cycErr,
		})
	}
	return res, nil
}

// String renders the ablation table.
func (r *ZClusterAblationResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Z-cluster ablation, %s %dx%d, counter stream (type V):\n\n",
		r.Module, r.Width, r.Width)
	fmt.Fprintf(&b, "%10s %14s %14s %14s\n", "z-clusters", "coefficients",
		"avg err %", "cycle err %")
	for _, row := range r.Rows {
		label := fmt.Sprint(row.ZClusters)
		if row.ZClusters == 0 {
			label = "full"
		}
		fmt.Fprintf(&b, "%10s %14d %14.1f %14.1f\n",
			label, row.Coefficients, abs(row.AvgErrCounter), row.CycleErrCounter)
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// Adaptation study (paper ref. [4])

// AdaptationResult quantifies online LMS adaptation on the counter stream.
type AdaptationResult struct {
	Module string
	Width  int
	// AdaptCycles is the number of observed cycles before evaluation.
	AdaptCycles int
	// ErrBefore/ErrAfter are avg errors (%) on held-out cycles.
	ErrBefore float64
	ErrAfter  float64
}

// AdaptationStudy adapts a randomly characterized model of the 8x8 CSA
// multiplier to the counter stream and evaluates on held-out cycles.
func (s *Suite) AdaptationStudy() (*AdaptationResult, error) {
	const name = "csa-multiplier"
	const width = 8
	model, err := s.Model(name, width, false)
	if err != nil {
		return nil, err
	}
	tr, err := s.runEval(name, width, stimuli.TypeCounter)
	if err != nil {
		return nil, err
	}
	split := tr.Len() / 3
	a, err := adapt.New(model, 0.05)
	if err != nil {
		return nil, err
	}
	for j := 0; j < split; j++ {
		a.Observe(tr.Hd[j], tr.Q[j])
	}
	before := model.EstimateBasic(tr.Hd[split:])
	after := a.Model().EstimateBasic(tr.Hd[split:])
	res := &AdaptationResult{Module: name, Width: width, AdaptCycles: split}
	if res.ErrBefore, err = power.AvgError(before, tr.Q[split:]); err != nil {
		return nil, err
	}
	if res.ErrAfter, err = power.AvgError(after, tr.Q[split:]); err != nil {
		return nil, err
	}
	return res, nil
}

// String renders the study.
func (r *AdaptationResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "LMS adaptation (ref. [4]), %s %dx%d, counter stream:\n",
		r.Module, r.Width, r.Width)
	fmt.Fprintf(&b, "  adaptation window : %d cycles\n", r.AdaptCycles)
	fmt.Fprintf(&b, "  avg err before    : %+6.1f%%\n", r.ErrBefore)
	fmt.Fprintf(&b, "  avg err after     : %+6.1f%%\n", r.ErrAfter)
	return b.String()
}
