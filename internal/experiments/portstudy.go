package experiments

import (
	"fmt"
	"strings"

	"hdpower/internal/core"
	"hdpower/internal/logic"
	"hdpower/internal/power"
	"hdpower/internal/stimuli"
)

// PortStudyResult evaluates the port-resolved Hd model (an enhancement in
// the spirit of the paper's "additional bit level information") against
// the basic total-Hd model on the 8x8 CSA multiplier, for a symmetric
// random stream and for the asymmetric live-data-vs-frozen-coefficient
// stream of a constant-coefficient multiplier.
type PortStudyResult struct {
	Module string
	Width  int
	// Coefficient counts of the two models.
	BasicCoefficients int
	PortCoefficients  int
	// Signed avg errors (%) per scenario.
	BasicRandom, PortRandom float64
	BasicFrozen, PortFrozen float64
}

// PortStudy runs the comparison.
func (s *Suite) PortStudy() (*PortStudyResult, error) {
	const name = "csa-multiplier"
	const width = 8
	basic, err := s.Model(name, width, false)
	if err != nil {
		return nil, err
	}
	meter, _, err := s.meter(name, width)
	if err != nil {
		return nil, err
	}
	port, err := core.CharacterizePorts(meter, name, width, width, core.CharacterizeOptions{
		Patterns: s.cfg.CharPatterns * 2, // the 2-D table has ~5x the classes
		Seed:     s.cfg.Seed + 77,
		Workers:  s.cfg.Workers,
	})
	if err != nil {
		return nil, err
	}
	res := &PortStudyResult{Module: name, Width: width, PortCoefficients: port.NumCoefficients()}
	res.BasicCoefficients, _ = basic.NumCoefficients()

	score := func(words []logic.Word) (basicErr, portErr float64, err error) {
		evalMeter, _, err := s.meter(name, width)
		if err != nil {
			return 0, 0, err
		}
		tr, err := evalMeter.Run(words)
		if err != nil {
			return 0, 0, err
		}
		hdA := make([]int, tr.Len())
		hdB := make([]int, tr.Len())
		for j := 1; j < len(words); j++ {
			hdA[j-1] = logic.Hd(words[j-1].Slice(0, width), words[j].Slice(0, width))
			hdB[j-1] = logic.Hd(words[j-1].Slice(width, 2*width), words[j].Slice(width, 2*width))
		}
		bEst := basic.EstimateBasic(tr.Hd)
		pEst, err := port.Estimate(hdA, hdB)
		if err != nil {
			return 0, 0, err
		}
		if basicErr, err = power.AvgError(bEst, tr.Q); err != nil {
			return 0, 0, err
		}
		if portErr, err = power.AvgError(pEst, tr.Q); err != nil {
			return 0, 0, err
		}
		return basicErr, portErr, nil
	}

	// Scenario 1: symmetric random streams on both ports.
	randWords := stimuli.Take(stimuli.Concat(
		stimuli.Random(width, s.cfg.Seed+1),
		stimuli.Random(width, s.cfg.Seed+2),
	), s.cfg.EvalPatterns+1)
	if res.BasicRandom, res.PortRandom, err = score(randWords); err != nil {
		return nil, err
	}

	// Scenario 2: live data against a frozen coefficient port.
	constB := logic.FromUint(0x5a&(1<<uint(width)-1), width)
	src := stimuli.Random(width, s.cfg.Seed+3)
	frozen := make([]logic.Word, s.cfg.EvalPatterns+1)
	for i := range frozen {
		frozen[i] = src.Next().Concat(constB)
	}
	if res.BasicFrozen, res.PortFrozen, err = score(frozen); err != nil {
		return nil, err
	}
	return res, nil
}

// String renders the study.
func (r *PortStudyResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Port-resolved Hd model study, %s %dx%d:\n\n", r.Module, r.Width, r.Width)
	fmt.Fprintf(&b, "  coefficients: basic %d, port-resolved %d\n\n",
		r.BasicCoefficients, r.PortCoefficients)
	fmt.Fprintf(&b, "  %-34s %10s %10s\n", "stream", "basic", "port")
	fmt.Fprintf(&b, "  %-34s %+9.1f%% %+9.1f%%\n", "random on both ports",
		r.BasicRandom, r.PortRandom)
	fmt.Fprintf(&b, "  %-34s %+9.1f%% %+9.1f%%\n", "random data vs frozen coefficient",
		r.BasicFrozen, r.PortFrozen)
	return b.String()
}
