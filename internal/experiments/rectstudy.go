package experiments

import (
	"fmt"
	"strings"

	"hdpower/internal/core"
	"hdpower/internal/dwlib"
	"hdpower/internal/power"
	"hdpower/internal/regress"
)

// RectStudyResult reproduces the eq. (8) claim: coefficients of a
// rectangular m1 x m0 multiplier (the paper's Figure 3 example is 6x4)
// predicted from prototypes of OTHER shapes, compared against direct
// instance characterization.
type RectStudyResult struct {
	Module     string
	Prototypes [][2]int
	Target     [2]int
	// Classes compared, instance vs regression coefficients, and the
	// relative error per class (%).
	Classes []int
	Inst    []float64
	Reg     []float64
	RelErr  []float64
	// AvgRelErr is the mean |relative error| over the compared classes.
	AvgRelErr float64
}

// RectStudy fits the rectangular basis on square and rectangular CSA
// multiplier prototypes and predicts the unseen 6x4 instance.
func (s *Suite) RectStudy() (*RectStudyResult, error) {
	const name = "csa-multiplier"
	shapes := [][2]int{{4, 4}, {8, 4}, {4, 8}, {8, 8}, {6, 6}}
	target := [2]int{6, 4}

	characterize := func(w1, w0 int) (*core.Model, error) {
		meter, err := power.NewMeter(dwlib.CSAMult(w1, w0), s.cfg.Engine)
		if err != nil {
			return nil, err
		}
		return core.Characterize(meter, fmt.Sprintf("%s-%dx%d", name, w1, w0),
			core.CharacterizeOptions{
				Patterns: s.cfg.CharPatterns,
				Seed:     s.cfg.Seed + int64(100*w1+w0),
			})
	}

	protos := make([]regress.RectPrototype, len(shapes))
	for k, sh := range shapes {
		model, err := characterize(sh[0], sh[1])
		if err != nil {
			return nil, err
		}
		protos[k] = regress.RectPrototype{W1: sh[0], W0: sh[1], Model: model}
	}
	pm, err := regress.FitRect(name, protos)
	if err != nil {
		return nil, err
	}
	inst, err := characterize(target[0], target[1])
	if err != nil {
		return nil, err
	}

	res := &RectStudyResult{Module: name, Prototypes: shapes, Target: target}
	var sum float64
	for i := 1; i <= target[0]+target[1]; i++ {
		reg, ok := pm.Coefficient(i, target[0], target[1])
		if !ok || inst.P(i) == 0 {
			continue
		}
		rel := (reg - inst.P(i)) / inst.P(i) * 100
		res.Classes = append(res.Classes, i)
		res.Inst = append(res.Inst, inst.P(i))
		res.Reg = append(res.Reg, reg)
		res.RelErr = append(res.RelErr, rel)
		sum += abs(rel)
	}
	if len(res.Classes) > 0 {
		res.AvgRelErr = sum / float64(len(res.Classes))
	}
	return res, nil
}

// String renders the comparison.
func (r *RectStudyResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Rectangular regression (eq. 8), %s: predict %dx%d from %v\n\n",
		r.Module, r.Target[0], r.Target[1], r.Prototypes)
	fmt.Fprintf(&b, "%4s %12s %12s %8s\n", "Hd", "instance", "regression", "err %")
	for k, i := range r.Classes {
		fmt.Fprintf(&b, "%4d %12.2f %12.2f %+8.1f\n", i, r.Inst[k], r.Reg[k], r.RelErr[k])
	}
	fmt.Fprintf(&b, "\nmean |error|: %.1f%%\n", r.AvgRelErr)
	return b.String()
}
