package experiments

import (
	"strings"
	"testing"

	"hdpower/internal/stimuli"
)

func TestFigure4RegressionTracksInstances(t *testing.T) {
	if testing.Short() {
		t.Skip("regression study characterizes 14 prototypes")
	}
	res, err := quickSuite().Figure4()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 6 { // 2 modules x 3 classes
		t.Fatalf("series = %d", len(res.Series))
	}
	for _, ser := range res.Series {
		if len(ser.Widths) == 0 {
			t.Fatalf("%s p_%d: no points", ser.Module, ser.Class)
		}
		for k := range ser.Widths {
			inst := ser.Inst[k]
			if inst == 0 {
				continue
			}
			rel := abs(ser.RegAll[k]-inst) / inst
			// Paper: differences below 5-10% in most cases; allow more
			// slack at the quick characterization budget.
			if rel > 0.30 {
				t.Errorf("%s p_%d at width %d: ALL regression off by %.0f%%",
					ser.Module, ser.Class, ser.Widths[k], rel*100)
			}
		}
	}
	if !strings.Contains(res.String(), "Figure 4") {
		t.Error("String() missing title")
	}
}

func TestTable3RegressionPreservesAccuracy(t *testing.T) {
	if testing.Short() {
		t.Skip("regression study characterizes 14 prototypes")
	}
	res, err := quickSuite().Table3()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 8 { // 2 modules x (instance + 3 sets)
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.Source == "instance" {
			if row.ParamErrP1 != 0 || row.ParamErrAvg != 0 {
				t.Errorf("%s instance row has nonzero param errors: %+v", row.Module, row)
			}
			continue
		}
		// Paper Table 3: regression coefficient errors stay small even
		// for THI, and estimation errors stay in the same range as the
		// instance row.
		if row.ParamErrAvg > 35 {
			t.Errorf("%s/%s: avg param error %.0f%%", row.Module, row.Source, row.ParamErrAvg)
		}
		if e := abs(row.EstErr[stimuli.TypeRandom]); e > 20 {
			t.Errorf("%s/%s: estimation error on type I %.0f%%", row.Module, row.Source, e)
		}
	}
	if !strings.Contains(res.String(), "Table 3") {
		t.Error("String() missing title")
	}
}
