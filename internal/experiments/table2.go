package experiments

import (
	"fmt"
	"strings"

	"hdpower/internal/power"
	"hdpower/internal/stimuli"
)

// Table2Row compares basic and enhanced model errors for one data type.
type Table2Row struct {
	DataType      stimuli.DataType
	CycleBasic    float64 // ε_a, %
	CycleEnhanced float64
	AvgBasic      float64 // ε, signed %
	AvgEnhanced   float64
}

// Table2Result reproduces Table 2: basic vs enhanced Hd-model for a CSA
// multiplier on data types I, III and V.
type Table2Result struct {
	Module string
	Width  int
	Rows   []Table2Row
}

// Table2 runs the comparison on the 8x8 CSA multiplier (the paper's
// instance).
func (s *Suite) Table2() (*Table2Result, error) {
	const name = "csa-multiplier"
	const width = 8
	model, err := s.Model(name, width, true)
	if err != nil {
		return nil, err
	}
	res := &Table2Result{Module: name, Width: width}
	for _, dt := range []stimuli.DataType{stimuli.TypeRandom, stimuli.TypeSpeech, stimuli.TypeCounter} {
		tr, err := s.runEval(name, width, dt)
		if err != nil {
			return nil, err
		}
		basicEst := model.EstimateBasic(tr.Hd)
		enhEst, err := model.EstimateEnhanced(tr.Hd, tr.StableZeros)
		if err != nil {
			return nil, err
		}
		row := Table2Row{DataType: dt}
		if row.CycleBasic, err = power.AvgAbsCycleError(basicEst, tr.Q); err != nil {
			return nil, err
		}
		if row.CycleEnhanced, err = power.AvgAbsCycleError(enhEst, tr.Q); err != nil {
			return nil, err
		}
		if row.AvgBasic, err = power.AvgError(basicEst, tr.Q); err != nil {
			return nil, err
		}
		if row.AvgEnhanced, err = power.AvgError(enhEst, tr.Q); err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// String renders the table in the paper's layout.
func (r *Table2Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 2: basic vs enhanced Hd-model, %s %dx%d (errors in %%)\n\n",
		r.Module, r.Width, r.Width)
	fmt.Fprintf(&b, "%-10s | %22s | %22s\n", "data type",
		"cycle avg.abs. error", "average charge error")
	fmt.Fprintf(&b, "%-10s | %10s %11s | %10s %11s\n", "",
		"basic", "enhanced", "basic", "enhanced")
	b.WriteString(strings.Repeat("-", 62) + "\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-10s | %10.0f %11.0f | %10.1f %11.1f\n",
			row.DataType, row.CycleBasic, row.CycleEnhanced,
			abs(row.AvgBasic), abs(row.AvgEnhanced))
	}
	return b.String()
}
