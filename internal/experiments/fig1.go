package experiments

import (
	"fmt"
	"strings"

	"hdpower/internal/textplot"
)

// Figure1Module holds the characterized coefficient profile of one
// 16-input-bit module prototype: p_i with its per-class average deviation
// ε_i, i = 1..16.
type Figure1Module struct {
	Module string
	// OperandWidth is the width passed to the generator (8 for
	// two-operand modules, 16 for absval) so that every prototype has 16
	// total input bits, making the figure's x axis comparable.
	OperandWidth int
	P            []float64 // P[i-1] = p_i
	Epsilon      []float64 // Epsilon[i-1] = ε_i (fraction)
	TotalEps     float64   // (1/m)·Σ ε_i
}

// Figure1Result reproduces Figure 1: model coefficients and deviations for
// the 16-input-bit variants of the analyzed modules.
type Figure1Result struct {
	Modules []Figure1Module
}

// Figure1 characterizes the 16-input-bit prototype of each paper module
// concurrently and collects the basic coefficient profiles in the fixed
// prototype order.
func (s *Suite) Figure1() (*Figure1Result, error) {
	protos := figure1Prototypes()
	modules := make([]Figure1Module, len(protos))
	err := forEachIndexed(len(protos), s.cfg.Workers, func(i int) error {
		mod := protos[i]
		model, err := s.Model(mod.name, mod.width, false)
		if err != nil {
			return err
		}
		fm := Figure1Module{Module: mod.name, OperandWidth: mod.width, TotalEps: model.TotalDeviation()}
		for k := 1; k <= model.InputBits; k++ {
			fm.P = append(fm.P, model.P(k))
			fm.Epsilon = append(fm.Epsilon, model.Basic[k-1].Epsilon)
		}
		modules[i] = fm
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &Figure1Result{Modules: modules}, nil
}

type proto struct {
	name  string
	width int
}

// figure1Prototypes selects widths so every module has 16 input bits.
func figure1Prototypes() []proto {
	return []proto{
		{"ripple-adder", 8},
		{"cla-adder", 8},
		{"absval", 16},
		{"csa-multiplier", 8},
		{"booth-wallace-multiplier", 8},
	}
}

// String renders the figure as error-bar plots plus a combined chart.
func (r *Figure1Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 1: coefficients p_i for 16-input-bit module variants\n\n")
	var xs []float64
	series := make([]textplot.Series, 0, len(r.Modules))
	for _, m := range r.Modules {
		ints := make([]int, len(m.P))
		fs := make([]float64, len(m.P))
		for i := range m.P {
			ints[i] = i + 1
			fs[i] = float64(i + 1)
		}
		if xs == nil {
			xs = fs
		}
		b.WriteString(textplot.ErrorBars(
			fmt.Sprintf("%s (operand width %d, total eps %.1f%%)",
				m.Module, m.OperandWidth, m.TotalEps*100),
			ints, m.P, m.Epsilon, 40))
		b.WriteByte('\n')
		series = append(series, textplot.Series{Name: m.Module, Y: m.P})
	}
	b.WriteString(textplot.Chart("all modules: p_i vs Hamming-distance", "Hd",
		xs, series, 64, 16))
	return b.String()
}
