package experiments

import (
	"fmt"
	"strings"

	"hdpower/internal/dwlib"
	"hdpower/internal/power"
	"hdpower/internal/stimuli"
)

// Table1Row is one (module, operand width) row of Table 1: the basic
// Hd-model's per-cycle (ε_a) and average (ε) estimation errors against
// the reference simulation, per data type I–V, in percent.
type Table1Row struct {
	Module     string
	Width      int
	CycleErr   map[stimuli.DataType]float64 // ε_a, absolute %
	AverageErr map[stimuli.DataType]float64 // ε, signed %
}

// Table1Result reproduces Table 1.
type Table1Result struct {
	Rows []Table1Row
	// AvgCycle and AvgAverage are the per-data-type column means of
	// |error| — the paper's "average" row.
	AvgCycle   map[stimuli.DataType]float64
	AvgAverage map[stimuli.DataType]float64
}

// Table1 characterizes every paper module at every configured width and
// evaluates the basic model on the five data-type streams. The
// (module, width) instances are independent, so they run concurrently on
// the suite's worker pool; the row order stays the sequential one.
func (s *Suite) Table1() (*Table1Result, error) {
	type job struct {
		mod   dwlib.Module
		width int
	}
	var jobs []job
	for _, mod := range dwlib.PaperModules() {
		for _, width := range s.cfg.Widths {
			jobs = append(jobs, job{mod: mod, width: width})
		}
	}
	rows := make([]Table1Row, len(jobs))
	err := forEachIndexed(len(jobs), s.cfg.Workers, func(i int) error {
		row, err := s.table1Row(jobs[i].mod, jobs[i].width)
		if err != nil {
			return fmt.Errorf("table1 %s/%d: %w", jobs[i].mod.Name, jobs[i].width, err)
		}
		rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	res := &Table1Result{
		Rows:       rows,
		AvgCycle:   make(map[stimuli.DataType]float64),
		AvgAverage: make(map[stimuli.DataType]float64),
	}
	for _, dt := range stimuli.AllDataTypes() {
		var sc, sa float64
		for _, row := range res.Rows {
			sc += abs(row.CycleErr[dt])
			sa += abs(row.AverageErr[dt])
		}
		res.AvgCycle[dt] = sc / float64(len(res.Rows))
		res.AvgAverage[dt] = sa / float64(len(res.Rows))
	}
	return res, nil
}

func (s *Suite) table1Row(mod dwlib.Module, width int) (Table1Row, error) {
	model, err := s.Model(mod.Name, width, false)
	if err != nil {
		return Table1Row{}, err
	}
	row := Table1Row{
		Module:     mod.Name,
		Width:      width,
		CycleErr:   make(map[stimuli.DataType]float64),
		AverageErr: make(map[stimuli.DataType]float64),
	}
	for _, dt := range stimuli.AllDataTypes() {
		tr, err := s.runEval(mod.Name, width, dt)
		if err != nil {
			return Table1Row{}, err
		}
		est := model.EstimateBasic(tr.Hd)
		cyc, err := power.AvgAbsCycleError(est, tr.Q)
		if err != nil {
			return Table1Row{}, err
		}
		avg, err := power.AvgError(est, tr.Q)
		if err != nil {
			return Table1Row{}, err
		}
		row.CycleErr[dt] = cyc
		row.AverageErr[dt] = avg
	}
	return row, nil
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// String renders the table in the paper's layout.
func (r *Table1Result) String() string {
	var b strings.Builder
	b.WriteString("Table 1: estimation error of the basic Hd-model (in %)\n\n")
	b.WriteString(fmt.Sprintf("%-26s %5s | %27s | %27s\n", "module", "width",
		"cycle charge eps_a", "avg charge eps"))
	b.WriteString(fmt.Sprintf("%-26s %5s | %5s %5s %5s %5s %5s | %5s %5s %5s %5s %5s\n",
		"", "", "I", "II", "III", "IV", "V", "I", "II", "III", "IV", "V"))
	line := strings.Repeat("-", 92) + "\n"
	b.WriteString(line)
	for _, row := range r.Rows {
		b.WriteString(fmt.Sprintf("%-26s %5d |", row.Module, row.Width))
		for _, dt := range stimuli.AllDataTypes() {
			b.WriteString(fmt.Sprintf(" %5.0f", row.CycleErr[dt]))
		}
		b.WriteString(" |")
		for _, dt := range stimuli.AllDataTypes() {
			b.WriteString(fmt.Sprintf(" %5.0f", abs(row.AverageErr[dt])))
		}
		b.WriteByte('\n')
	}
	b.WriteString(line)
	b.WriteString(fmt.Sprintf("%-26s %5s |", "average", ""))
	for _, dt := range stimuli.AllDataTypes() {
		b.WriteString(fmt.Sprintf(" %5.0f", r.AvgCycle[dt]))
	}
	b.WriteString(" |")
	for _, dt := range stimuli.AllDataTypes() {
		b.WriteString(fmt.Sprintf(" %5.0f", r.AvgAverage[dt]))
	}
	b.WriteByte('\n')
	return b.String()
}
