package experiments

import (
	"strings"

	"hdpower/internal/textplot"
)

// Figure2Result reproduces Figure 2: basic vs enhanced Hd-model
// coefficients for an 8x8-bit CSA multiplier. The enhanced curves are the
// two extreme stable-zero classes: all non-switching bits zero
// (z = m − i) and none zero (z = 0).
type Figure2Result struct {
	InputBits int
	Basic     []float64 // Basic[i-1] = p_i
	AllZero   []float64 // p_{i, z=m-i}; NaN-free: 0 marks unobserved
	NoneZero  []float64 // p_{i, z=0}
}

// Figure2 characterizes the 8x8 CSA multiplier with the enhanced model
// at full stable-zero resolution and extracts the extreme classes.
func (s *Suite) Figure2() (*Figure2Result, error) {
	model, err := s.Model("csa-multiplier", 8, true)
	if err != nil {
		return nil, err
	}
	m := model.InputBits
	res := &Figure2Result{InputBits: m}
	for i := 1; i <= m; i++ {
		res.Basic = append(res.Basic, model.P(i))
		res.AllZero = append(res.AllZero, model.PEnhanced(i, m-i))
		res.NoneZero = append(res.NoneZero, model.PEnhanced(i, 0))
	}
	return res, nil
}

// Spread returns the relative gap between the none-zero and all-zero
// curves at Hd class i (1-based) — the resolution gain of the enhanced
// model, largest at small i in the paper.
func (r *Figure2Result) Spread(i int) float64 {
	b := r.Basic[i-1]
	if b == 0 {
		return 0
	}
	return (r.NoneZero[i-1] - r.AllZero[i-1]) / b
}

// String renders the three curves.
func (r *Figure2Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 2: basic vs enhanced Hd-model coefficients, 8x8 csa-multiplier\n\n")
	xs := make([]float64, r.InputBits)
	for i := range xs {
		xs[i] = float64(i + 1)
	}
	b.WriteString(textplot.Chart("coefficients vs Hd", "Hd", xs, []textplot.Series{
		{Name: "basic p_i", Y: r.Basic},
		{Name: "enhanced, all stable bits zero", Y: r.AllZero},
		{Name: "enhanced, no stable bit zero", Y: r.NoneZero},
	}, 64, 16))
	return b.String()
}
