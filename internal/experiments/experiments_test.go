package experiments

import (
	"encoding/json"
	"math"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"

	"hdpower/internal/atomicio"
	"hdpower/internal/core"
	"hdpower/internal/stimuli"
)

// sharedSuite is characterized once and reused across tests in this
// package; experiments cache models internally.
var (
	sharedOnce  sync.Once
	sharedSuite *Suite
)

func quickSuite() *Suite {
	sharedOnce.Do(func() { sharedSuite = New(Quick()) })
	return sharedSuite
}

func TestFigure1Shapes(t *testing.T) {
	res, err := quickSuite().Figure1()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Modules) != 5 {
		t.Fatalf("modules = %d", len(res.Modules))
	}
	byName := make(map[string]Figure1Module)
	for _, m := range res.Modules {
		byName[m.Module] = m
		if len(m.P) != 16 {
			t.Fatalf("%s: %d classes, want 16", m.Module, len(m.P))
		}
		// Global trend: p grows with Hd over the lower half for every
		// module, and through the top for all but absval. (Flipping all
		// bits of a two's-complement word maps x to -x-1, which leaves
		// |x| almost unchanged — so the absval unit genuinely switches
		// less at Hd = m than at Hd = m/2.)
		if !(m.P[7] > m.P[0] && m.P[15] > m.P[0]) {
			t.Errorf("%s: coefficients not increasing: p1=%v p8=%v p16=%v",
				m.Module, m.P[0], m.P[7], m.P[15])
		}
		if m.Module != "absval" && m.P[15] <= m.P[7] {
			t.Errorf("%s: top coefficients not increasing: p8=%v p16=%v",
				m.Module, m.P[7], m.P[15])
		}
		for i, p := range m.P {
			if p <= 0 || math.IsNaN(p) {
				t.Errorf("%s: p_%d = %v", m.Module, i+1, p)
			}
		}
	}
	// Multipliers burn more charge than adders at full input activity.
	if byName["csa-multiplier"].P[15] <= byName["ripple-adder"].P[15] {
		t.Errorf("csa-multiplier p16 %v not above ripple-adder p16 %v",
			byName["csa-multiplier"].P[15], byName["ripple-adder"].P[15])
	}
	// Paper: relative deviations decrease for larger Hd.
	for _, m := range res.Modules {
		if m.Epsilon[15] >= m.Epsilon[0] {
			t.Errorf("%s: eps_16 %.3f not below eps_1 %.3f",
				m.Module, m.Epsilon[15], m.Epsilon[0])
		}
	}
	if !strings.Contains(res.String(), "Figure 1") {
		t.Error("String() missing title")
	}
}

func TestFigure2Shapes(t *testing.T) {
	res, err := quickSuite().Figure2()
	if err != nil {
		t.Fatal(err)
	}
	if res.InputBits != 16 {
		t.Fatalf("input bits = %d", res.InputBits)
	}
	// The enhanced model must split the basic curve at small Hd: the
	// all-stable-zeros class below the none-zero class.
	splitClasses := 0
	for i := 2; i <= 6; i++ {
		if res.AllZero[i-1] < res.NoneZero[i-1] {
			splitClasses++
		}
	}
	if splitClasses < 3 {
		t.Errorf("enhanced model split only %d of 5 low-Hd classes", splitClasses)
	}
	if res.Spread(3) <= 0 {
		t.Errorf("spread at Hd=3 is %v", res.Spread(3))
	}
	if !strings.Contains(res.String(), "Figure 2") {
		t.Error("String() missing title")
	}
}

func TestTable1Shapes(t *testing.T) {
	res, err := quickSuite().Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 { // 5 modules x 1 quick width
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		for _, dt := range stimuli.AllDataTypes() {
			if math.IsNaN(row.CycleErr[dt]) || math.IsInf(row.CycleErr[dt], 0) {
				t.Errorf("%s: cycle err for %s = %v", row.Module, dt, row.CycleErr[dt])
			}
			// The central Table 1 observation: cycle errors are much
			// larger than average errors.
			if row.CycleErr[dt] < abs(row.AverageErr[dt]) {
				t.Errorf("%s/%s: cycle err %.1f below avg err %.1f",
					row.Module, dt, row.CycleErr[dt], abs(row.AverageErr[dt]))
			}
		}
		// Random data (characterization statistics) gives small average
		// errors; the counter stream is the stress case.
		if abs(row.AverageErr[stimuli.TypeRandom]) > 12 {
			t.Errorf("%s: avg err on random stream %.1f%%", row.Module,
				row.AverageErr[stimuli.TypeRandom])
		}
	}
	// Column means echo the paper's ordering: data type I easiest, V hardest
	// for the average-power estimate.
	if res.AvgAverage[stimuli.TypeRandom] >= res.AvgAverage[stimuli.TypeCounter] {
		t.Errorf("avg |eps| I %.1f not below V %.1f",
			res.AvgAverage[stimuli.TypeRandom], res.AvgAverage[stimuli.TypeCounter])
	}
	out := res.String()
	if !strings.Contains(out, "Table 1") || !strings.Contains(out, "average") {
		t.Error("String() incomplete")
	}
}

func TestTable2EnhancedWins(t *testing.T) {
	res, err := quickSuite().Table2()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	var counter Table2Row
	found := false
	for _, row := range res.Rows {
		if row.DataType == stimuli.TypeCounter {
			counter = row
			found = true
		}
	}
	if !found {
		t.Fatal("no counter row")
	}
	// The paper's headline: for data type V the enhanced model slashes
	// the average-charge error.
	if abs(counter.AvgEnhanced) >= abs(counter.AvgBasic) {
		t.Errorf("enhanced avg err %.1f not below basic %.1f on counter stream",
			counter.AvgEnhanced, counter.AvgBasic)
	}
	if !strings.Contains(res.String(), "Table 2") {
		t.Error("String() missing title")
	}
}

func TestFigure9AnalyticTracksExtracted(t *testing.T) {
	res, err := quickSuite().Figure9()
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalVariation > 0.35 {
		t.Errorf("total variation = %.3f", res.TotalVariation)
	}
	if math.Abs(res.Extracted.Sum()-1) > 1e-9 || math.Abs(res.Estimated.Sum()-1) > 1e-9 {
		t.Error("distributions not normalized")
	}
	if !strings.Contains(res.String(), "Figure 9") {
		t.Error("String() missing title")
	}
}

func TestFigure6DistributionBeatsAverage(t *testing.T) {
	res, err := quickSuite().Figure6()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Dist.Sum()-1) > 1e-9 {
		t.Errorf("distribution sum = %v", res.Dist.Sum())
	}
	// The multiplier's coefficients are nonlinear and the audio
	// distribution is skewed, so reading power at the average Hd must
	// differ measurably from the distribution-weighted power. (The
	// paper's transistor-level coefficients grow nearly quadratically
	// and yield a ~30% gap; our gate-level substrate saturates instead,
	// giving a small but still directional gap — about 1.4% with the
	// sharded characterization streams — see EXPERIMENTS.md.)
	if math.Abs(res.AvgHdError()) < 1.0 {
		t.Errorf("avg-Hd error only %.1f%%, expected a material gap", res.AvgHdError())
	}
	// And the distribution estimate must be the better one relative to
	// simulation.
	dDist := math.Abs(res.PowerDist - res.SimulatedAvg)
	dAvg := math.Abs(res.PowerAvgHd - res.SimulatedAvg)
	if dDist >= dAvg {
		t.Errorf("distribution estimate (off by %.2f) not better than avg-Hd (off by %.2f)",
			dDist, dAvg)
	}
	if !strings.Contains(res.String(), "Figure 6") {
		t.Error("String() missing title")
	}
}

// TestSuiteWorkerCountIndependent pins the suite-level determinism
// contract: the same configuration produces bit-identical models no
// matter how many workers characterize them.
func TestSuiteWorkerCountIndependent(t *testing.T) {
	cfg := Quick()
	cfg.CharPatterns = 600
	cfg.Workers = 1
	ref, err := New(cfg).Model("csa-multiplier", 4, true)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 5} {
		cfg.Workers = workers
		got, err := New(cfg).Model("csa-multiplier", 4, true)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(ref.Basic, got.Basic) || !reflect.DeepEqual(ref.Enhanced, got.Enhanced) {
			t.Fatalf("workers=%d: model differs from sequential run", workers)
		}
	}
}

// TestModelSingleflight checks that concurrent requests for the same
// instance share one characterization (and exercises the cache under the
// race detector).
func TestModelSingleflight(t *testing.T) {
	cfg := Quick()
	cfg.CharPatterns = 400
	s := New(cfg)
	const callers = 8
	models := make([]*core.Model, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			m, err := s.Model("absval", 6, false)
			if err != nil {
				t.Error(err)
				return
			}
			models[i] = m
		}(i)
	}
	wg.Wait()
	for i := 1; i < callers; i++ {
		if models[i] != models[0] {
			t.Fatalf("caller %d got a distinct model instance", i)
		}
	}
}

func TestNewRejectsBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero config accepted")
		}
	}()
	New(Config{})
}

// TestSuiteManifests verifies a ManifestDir-configured suite records one
// flight-recorder manifest per characterized instance.
func TestSuiteManifests(t *testing.T) {
	cfg := Quick()
	cfg.ManifestDir = t.TempDir()
	s := New(cfg)
	if _, err := s.Model("ripple-adder", 8, false); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Model("ripple-adder", 8, true); err != nil {
		t.Fatal(err)
	}
	for _, file := range []string{
		"ripple-adder-w8.manifest.json",
		"ripple-adder-w8-enh.manifest.json",
	} {
		// Manifests are written through atomicio and carry its checksum
		// trailer; ReadFile verifies and strips it.
		raw, err := atomicio.ReadFile(filepath.Join(cfg.ManifestDir, file))
		if err != nil {
			t.Fatalf("manifest %s: %v", file, err)
		}
		var man core.RunManifest
		if err := json.Unmarshal(raw, &man); err != nil {
			t.Fatalf("manifest %s decode: %v", file, err)
		}
		if man.Module != "ripple-adder-8" || man.Width != 8 ||
			man.PatternsBasic != cfg.CharPatterns || len(man.Coefficients) == 0 {
			t.Errorf("manifest %s content: %+v", file, man)
		}
	}
}
