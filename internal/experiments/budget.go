package experiments

import (
	"fmt"
	"sort"
	"strings"

	"hdpower/internal/core"
	"hdpower/internal/power"
	"hdpower/internal/stimuli"
)

// BudgetRow is one characterization-budget level.
type BudgetRow struct {
	Patterns int
	// TotalEps is the model's aggregate coefficient deviation (fraction).
	TotalEps float64
	// AvgErrRandom is the avg estimation error (%) on the random stream.
	AvgErrRandom float64
	// MaxCoefDrift is the largest relative difference of any p_i against
	// the largest-budget reference model (fraction).
	MaxCoefDrift float64
}

// BudgetStudyResult quantifies Section 4.1's "characterization can be
// finished after the coefficient values have converged": how coefficient
// stability and estimation accuracy improve with the characterization
// pattern budget.
type BudgetStudyResult struct {
	Module string
	Width  int
	Rows   []BudgetRow
}

// BudgetStudy sweeps the characterization budget on the 8x8 CSA
// multiplier.
func (s *Suite) BudgetStudy() (*BudgetStudyResult, error) {
	const name = "csa-multiplier"
	const width = 8
	budgets := []int{250, 500, 1000, 2000, 4000, 8000}

	models := make([]*core.Model, len(budgets))
	for k, n := range budgets {
		meter, _, err := s.meter(name, width)
		if err != nil {
			return nil, err
		}
		// Same seed: smaller budgets are prefixes of the same stream, so
		// drift isolates convergence rather than stream differences.
		models[k], err = core.Characterize(meter, name, core.CharacterizeOptions{
			Patterns: n, Seed: s.cfg.Seed,
		})
		if err != nil {
			return nil, err
		}
	}
	ref := models[len(models)-1]
	tr, err := s.runEval(name, width, stimuli.TypeRandom)
	if err != nil {
		return nil, err
	}
	res := &BudgetStudyResult{Module: name, Width: width}
	for k, n := range budgets {
		row := BudgetRow{Patterns: n, TotalEps: models[k].TotalDeviation()}
		est := models[k].EstimateBasic(tr.Hd)
		if row.AvgErrRandom, err = power.AvgError(est, tr.Q); err != nil {
			return nil, err
		}
		for i := 1; i <= ref.InputBits; i++ {
			if rp := ref.P(i); rp > 0 {
				d := abs(models[k].P(i)-rp) / rp
				if d > row.MaxCoefDrift {
					row.MaxCoefDrift = d
				}
			}
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// RecommendBudgets apportions a total characterization-pattern budget
// across Hd classes in proportion to traffic[i] * eps[i]: classes that
// live traffic actually hits AND whose coefficient still shows deviation
// (the classAcc epsilon reservoirs) deserve the patterns. It is the
// telemetry hotset's allocation rule — the online-refinement counterpart
// of BudgetStudy's offline convergence sweep.
//
// The apportionment is by largest remainder (Hamilton's method) so the
// result sums exactly to total and is deterministic for a given input:
// remainder ties break toward the lower class index. Classes with zero
// weight get nothing. When every weight is zero (no traffic yet, or a
// fully converged model) the budget is spread uniformly, matching the
// offline default.
func RecommendBudgets(total int, traffic []uint64, eps []float64) []int {
	n := len(traffic)
	if len(eps) != n {
		panic("experiments: RecommendBudgets needs len(traffic) == len(eps)")
	}
	out := make([]int, n)
	if total <= 0 || n == 0 {
		return out
	}
	weights := make([]float64, n)
	sum := 0.0
	for i := range weights {
		e := eps[i]
		if e < 0 {
			e = 0
		}
		weights[i] = float64(traffic[i]) * e
		sum += weights[i]
	}
	if sum <= 0 {
		// Uniform fallback, largest-remainder over equal weights: the
		// first total%n classes get the extra pattern.
		base, extra := total/n, total%n
		for i := range out {
			out[i] = base
			if i < extra {
				out[i]++
			}
		}
		return out
	}
	type rem struct {
		idx  int
		frac float64
	}
	rems := make([]rem, n)
	assigned := 0
	for i, w := range weights {
		share := float64(total) * w / sum
		fl := int(share)
		out[i] = fl
		assigned += fl
		rems[i] = rem{idx: i, frac: share - float64(fl)}
	}
	sort.Slice(rems, func(a, b int) bool {
		if rems[a].frac != rems[b].frac {
			return rems[a].frac > rems[b].frac
		}
		return rems[a].idx < rems[b].idx
	})
	for k := 0; assigned < total; k++ {
		out[rems[k%n].idx]++
		assigned++
	}
	return out
}

// String renders the sweep.
func (r *BudgetStudyResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Characterization budget study, %s %dx%d:\n\n", r.Module, r.Width, r.Width)
	fmt.Fprintf(&b, "%10s %14s %16s %18s\n", "patterns", "total eps %", "avg err (I) %",
		"max coef drift %")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%10d %14.1f %16.1f %18.1f\n",
			row.Patterns, row.TotalEps*100, abs(row.AvgErrRandom), row.MaxCoefDrift*100)
	}
	b.WriteString("\n(drift is measured against the largest-budget model; the paper ends\n")
	b.WriteString(" characterization once coefficients converge)\n")
	return b.String()
}
