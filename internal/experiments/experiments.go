// Package experiments contains one driver per table and figure of the
// paper's evaluation, wired to the reproduction's own substrates: the
// dwlib module generators stand in for DesignWare, the event-driven
// charge simulator for PowerMill, and seeded synthetic streams for the
// recorded signals. Absolute charge units differ from the paper's; every
// reported metric is relative, so the drivers reproduce the paper's
// qualitative shape (see DESIGN.md for the per-experiment criteria).
package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"hdpower/internal/atomicio"
	"hdpower/internal/core"
	"hdpower/internal/dwlib"
	"hdpower/internal/power"
	"hdpower/internal/sim"
	"hdpower/internal/stimuli"
)

// Config scales the experiments. The defaults reproduce the paper's
// stream lengths; Quick shrinks everything for tests and smoke runs.
type Config struct {
	// CharPatterns is the number of characterization pairs per module
	// instance.
	CharPatterns int
	// EvalPatterns is the length of each evaluation stream (the paper
	// uses 5000–10000).
	EvalPatterns int
	// Widths are the operand widths of Table 1 (paper: 8, 12, 16).
	Widths []int
	// Seed anchors all pseudo-random streams.
	Seed int64
	// Engine is the reference simulation engine (EventDriven unless an
	// ablation says otherwise).
	Engine sim.Engine
	// Workers bounds the goroutines used at both parallelism levels: the
	// suite characterizes distinct module instances concurrently, and each
	// characterization fans its sharded pattern stream out over the same
	// number of meter clones. 0 means runtime.NumCPU(). Results are
	// independent of the value (see core.Characterize).
	Workers int
	// ManifestDir, when set, persists one flight-recorder manifest per
	// characterized instance as <dir>/<module>-w<width>[-enh].manifest.json,
	// making reproduction runs auditable (seed, patterns, convergence,
	// coefficients).
	ManifestDir string
}

// Default returns the full-scale configuration used for EXPERIMENTS.md.
func Default() Config {
	return Config{
		CharPatterns: 8000,
		EvalPatterns: 5000,
		Widths:       []int{8, 12, 16},
		Seed:         1999, // DATE 1999
		Engine:       sim.EventDriven,
	}
}

// Quick returns a reduced configuration for unit tests and -short runs.
func Quick() Config {
	return Config{
		CharPatterns: 1500,
		EvalPatterns: 800,
		Widths:       []int{8},
		Seed:         1999,
		Engine:       sim.EventDriven,
	}
}

// Suite runs experiments and caches characterized models so that tables
// sharing instances (Table 1/2, Figure 1/2) characterize each only once.
// All methods are safe for concurrent use; the cache is singleflight, so
// concurrent requests for the same instance block on one characterization
// instead of duplicating it.
type Suite struct {
	cfg Config

	mu     sync.Mutex
	models map[string]*modelEntry
}

// modelEntry is one singleflight cache slot.
type modelEntry struct {
	once  sync.Once
	model *core.Model
	err   error
}

// New creates a Suite for a configuration.
func New(cfg Config) *Suite {
	if cfg.CharPatterns <= 0 || cfg.EvalPatterns <= 0 || len(cfg.Widths) == 0 {
		panic("experiments: incomplete config")
	}
	return &Suite{cfg: cfg, models: make(map[string]*modelEntry)}
}

// Config returns the suite configuration.
func (s *Suite) Config() Config { return s.cfg }

// meter builds a fresh charge meter for a module instance.
func (s *Suite) meter(name string, width int) (*power.Meter, dwlib.Module, error) {
	mod, err := dwlib.Lookup(name)
	if err != nil {
		return nil, dwlib.Module{}, err
	}
	meter, err := power.NewMeter(mod.Build(width), s.cfg.Engine)
	if err != nil {
		return nil, dwlib.Module{}, err
	}
	return meter, mod, nil
}

// Model characterizes (or returns the cached) Hd model for a module
// instance. Enhanced models always embed the basic table too.
func (s *Suite) Model(name string, width int, enhanced bool) (*core.Model, error) {
	key := fmt.Sprintf("%s/%d/%v", name, width, enhanced)
	s.mu.Lock()
	e, ok := s.models[key]
	if !ok {
		e = &modelEntry{}
		s.models[key] = e
	}
	s.mu.Unlock()

	e.once.Do(func() {
		meter, _, err := s.meter(name, width)
		if err != nil {
			e.err = err
			return
		}
		opt := core.CharacterizeOptions{
			Patterns: s.cfg.CharPatterns,
			Enhanced: enhanced,
			Seed:     s.cfg.Seed + int64(width),
			Workers:  s.cfg.Workers,
		}
		var rec *core.RunRecorder
		if s.cfg.ManifestDir != "" {
			rec = core.NewRunRecorder(fmt.Sprintf("%s-%d", name, width), opt)
			opt.Hooks = rec.Hooks()
		}
		e.model, e.err = core.Characterize(meter, fmt.Sprintf("%s-%d", name, width), opt)
		if rec != nil {
			man := rec.Finish(e.model, e.err)
			man.Width = width
			s.writeManifest(name, width, enhanced, man)
		}
	})
	return e.model, e.err
}

// writeManifest persists one characterization manifest; failures are
// reported on stderr but never fail the experiment.
func (s *Suite) writeManifest(name string, width int, enhanced bool, man *core.RunManifest) {
	file := fmt.Sprintf("%s-w%d.manifest.json", name, width)
	if enhanced {
		file = fmt.Sprintf("%s-w%d-enh.manifest.json", name, width)
	}
	data, err := json.MarshalIndent(man, "", "  ")
	if err == nil {
		err = atomicio.WriteFile(filepath.Join(s.cfg.ManifestDir, file), append(data, '\n'), 0o644)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiments: manifest %s: %v\n", file, err)
	}
}

// Stream builds the canonical input stream for a module instance and data
// type: two-operand modules get two independently seeded operand streams
// concatenated (paper Section 6.3 treats multi-input streams as
// uncorrelated); the counter streams use phase-shifted starts so the two
// ports are not identical.
func (s *Suite) Stream(mod dwlib.Module, width int, dt stimuli.DataType) stimuli.Source {
	base := s.cfg.Seed*1000 + int64(dt)*100 + int64(width)
	if !mod.TwoOperand {
		return stimuli.NewStream(dt, width, base)
	}
	a := stimuli.NewStream(dt, width, base)
	b := stimuli.NewStream(dt, width, base+7)
	if dt == stimuli.TypeCounter {
		// Both counters advance together but from different phases.
		b = phaseShiftedCounter(width, 1<<uint(width-2))
	}
	return stimuli.Concat(a, b)
}

func phaseShiftedCounter(width int, phase uint64) stimuli.Source {
	src := stimuli.NewStream(stimuli.TypeCounter, width, 0)
	for i := uint64(0); i < phase; i++ {
		src.Next()
	}
	return src
}

// runEval plays the canonical stream for (module, width, dt) through a
// fresh meter and returns the reference trace.
func (s *Suite) runEval(name string, width int, dt stimuli.DataType) (power.Trace, error) {
	meter, mod, err := s.meter(name, width)
	if err != nil {
		return power.Trace{}, err
	}
	src := s.Stream(mod, width, dt)
	vecs := stimuli.Take(src, s.cfg.EvalPatterns+1)
	return meter.Run(vecs)
}
