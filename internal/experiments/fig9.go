package experiments

import (
	"fmt"
	"strings"

	"hdpower/internal/hddist"
	"hdpower/internal/stats"
	"hdpower/internal/stimuli"
	"hdpower/internal/textplot"
)

// Figure9Result reproduces Figure 9: the Hamming-distance distribution of
// a typical speech signal, extracted from the stream versus calculated
// from word-level statistics with eq. (18).
type Figure9Result struct {
	WordBits  int
	Extracted hddist.Dist
	Estimated hddist.Dist
	// TotalVariation is ½ Σ|extracted − estimated| ∈ [0,1]; small values
	// mean the curves "fit well" in the paper's words.
	TotalVariation float64
	// Stats are the measured word-level statistics the estimate used.
	Stats stats.WordStats
	// Breakpoints derived from Stats.
	Breakpoints stats.Breakpoints
}

// Figure9 extracts and estimates the distribution of the 16-bit speech
// stream.
func (s *Suite) Figure9() (*Figure9Result, error) {
	const m = 16
	words := stimuli.Take(stimuli.NewStream(stimuli.TypeSpeech, m, s.cfg.Seed),
		s.cfg.EvalPatterns*4)
	extracted, err := hddist.FromWords(words)
	if err != nil {
		return nil, err
	}
	ws, err := stats.FromWords(words)
	if err != nil {
		return nil, err
	}
	estimated := hddist.FromWordStats(ws, m)
	tv, err := extracted.TotalVariation(estimated)
	if err != nil {
		return nil, err
	}
	return &Figure9Result{
		WordBits:       m,
		Extracted:      extracted,
		Estimated:      estimated,
		TotalVariation: tv,
		Stats:          ws,
		Breakpoints:    stats.ComputeBreakpoints(ws, m),
	}, nil
}

// String renders both distributions on one chart.
func (r *Figure9Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 9: extracted vs estimated Hd distribution, 16-bit speech signal\n\n")
	xs := make([]float64, r.WordBits+1)
	for i := range xs {
		xs[i] = float64(i)
	}
	b.WriteString(textplot.Chart("p(Hd=i)", "Hd", xs, []textplot.Series{
		{Name: "extracted from stream", Y: r.Extracted},
		{Name: "estimated from word stats (eq. 18)", Y: r.Estimated},
	}, 64, 14))
	b.WriteByte('\n')
	fmt.Fprintf(&b, "word stats: mean %.1f, std %.1f, rho %.3f; BP0 %d, BP1 %d\n",
		r.Stats.Mean, r.Stats.Std, r.Stats.Rho, r.Breakpoints.BP0, r.Breakpoints.BP1)
	fmt.Fprintf(&b, "total variation distance: %.3f\n", r.TotalVariation)
	return b.String()
}
