package experiments

import (
	"fmt"
	"strings"

	"hdpower/internal/dwlib"
	"hdpower/internal/hddist"
	"hdpower/internal/stats"
	"hdpower/internal/stimuli"
	"hdpower/internal/textplot"
)

// Figure6Result reproduces Figure 6: why the full Hamming-distance
// distribution beats the plain average Hd for power estimation. Field I is
// the Hd distribution of an audio-stimulated multiplier input, field II
// the model coefficients, field III their product; the comparison is the
// distribution-weighted power vs the power read off at the average Hd.
type Figure6Result struct {
	Module    string
	InputBits int
	Dist      hddist.Dist // field I: p(Hd = i), analytic from word stats
	Coeffs    []float64   // field II: p_i, including p_0 = 0
	Product   []float64   // field III: Dist[i]·p_i
	AvgHd     float64     // mean of Dist
	// PowerDist is the distribution-weighted average power (Section 6.3).
	PowerDist float64
	// PowerAvgHd is the power interpolated at the average Hd (Section 6.2).
	PowerAvgHd float64
	// SimulatedAvg is the reference mean charge from simulation.
	SimulatedAvg float64
}

// AvgHdError returns the relative deviation (in %) of the avg-Hd estimate
// from the distribution estimate — the paper quotes ≈30% for audio on a
// multiplier.
func (r *Figure6Result) AvgHdError() float64 {
	if r.PowerDist == 0 {
		return 0
	}
	return (r.PowerAvgHd - r.PowerDist) / r.PowerDist * 100
}

// Figure6 stimulates the 8x8 CSA multiplier ("field multiplier") with a
// music/audio signal on both ports and compares the two Section 6
// estimators, plus the simulated reference.
func (s *Suite) Figure6() (*Figure6Result, error) {
	const name = "csa-multiplier"
	const width = 8
	model, err := s.Model(name, width, false)
	if err != nil {
		return nil, err
	}
	mod, err := dwlib.Lookup(name)
	if err != nil {
		return nil, err
	}
	// Word-level statistics of one operand stream.
	words := stimuli.Take(stimuli.NewStream(stimuli.TypeMusic, width, s.cfg.Seed), s.cfg.EvalPatterns)
	ws, err := stats.FromWords(words)
	if err != nil {
		return nil, err
	}
	// Per-port analytic distribution, convolved for the two uncorrelated
	// operand ports (Section 6.3 closing remark).
	portDist := hddist.FromWordStats(ws, width)
	dist := hddist.Convolve(portDist, portDist)

	res := &Figure6Result{
		Module:    fmt.Sprintf("%s-%dx%d", name, width, width),
		InputBits: model.InputBits,
		Dist:      dist,
		AvgHd:     dist.Mean(),
	}
	for i := 0; i <= model.InputBits; i++ {
		p := model.P(i)
		res.Coeffs = append(res.Coeffs, p)
		res.Product = append(res.Product, dist[i]*p)
	}
	if res.PowerDist, err = model.AvgFromDist(dist); err != nil {
		return nil, err
	}
	res.PowerAvgHd = model.InterpP(res.AvgHd)

	// Simulated reference for context.
	tr, err := s.runEval(name, width, stimuli.TypeMusic)
	if err != nil {
		return nil, err
	}
	res.SimulatedAvg = tr.Mean()
	_ = mod
	return res, nil
}

// String renders the three fields and the estimator comparison.
func (r *Figure6Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 6: estimation error from using average Hd instead of the distribution\n\n")
	xs := make([]float64, r.InputBits+1)
	for i := range xs {
		xs[i] = float64(i)
	}
	b.WriteString(textplot.Chart("field I: Hd distribution p(Hd=i)", "Hd", xs,
		[]textplot.Series{{Name: "p(Hd=i)", Y: r.Dist}}, 56, 10))
	b.WriteByte('\n')
	b.WriteString(textplot.Chart("field II: model coefficients p_i", "Hd", xs,
		[]textplot.Series{{Name: "p_i", Y: r.Coeffs}}, 56, 10))
	b.WriteByte('\n')
	b.WriteString(textplot.Chart("field III: p(Hd=i)*p_i", "Hd", xs,
		[]textplot.Series{{Name: "product", Y: r.Product}}, 56, 10))
	b.WriteByte('\n')
	fmt.Fprintf(&b, "average Hd                 : %8.3f\n", r.AvgHd)
	fmt.Fprintf(&b, "power via distribution     : %8.3f\n", r.PowerDist)
	fmt.Fprintf(&b, "power via avg-Hd interp    : %8.3f\n", r.PowerAvgHd)
	fmt.Fprintf(&b, "avg-Hd additional error    : %8.1f%%\n", r.AvgHdError())
	fmt.Fprintf(&b, "simulated reference average: %8.3f\n", r.SimulatedAvg)
	return b.String()
}
