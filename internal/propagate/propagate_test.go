package propagate

import (
	"math"
	"testing"

	"hdpower/internal/stats"
	"hdpower/internal/stimuli"
)

func TestInputStatsPassThrough(t *testing.T) {
	g := New()
	in := g.Input("x", stats.WordStats{Mean: 5, Std: 10, Rho: 0.7})
	ws := g.Stats(in)
	if ws.Mean != 5 || math.Abs(ws.Std-10) > 1e-12 || math.Abs(ws.Rho-0.7) > 1e-12 {
		t.Errorf("input stats = %+v", ws)
	}
}

func TestConstNode(t *testing.T) {
	g := New()
	c := g.Const(42)
	ws := g.Stats(c)
	if ws.Mean != 42 || ws.Std != 0 || ws.Rho != 0 {
		t.Errorf("const stats = %+v", ws)
	}
}

func TestGainScalesMoments(t *testing.T) {
	g := New()
	x := g.Input("x", stats.WordStats{Mean: 2, Std: 3, Rho: 0.5})
	y := g.Gain(x, -4)
	ws := g.Stats(y)
	if ws.Mean != -8 {
		t.Errorf("mean = %v", ws.Mean)
	}
	if math.Abs(ws.Std-12) > 1e-9 {
		t.Errorf("std = %v", ws.Std)
	}
	if math.Abs(ws.Rho-0.5) > 1e-12 {
		t.Errorf("rho = %v (gain must not change correlation)", ws.Rho)
	}
}

func TestDelayPreservesStats(t *testing.T) {
	g := New()
	x := g.Input("x", stats.WordStats{Mean: 1, Std: 2, Rho: 0.9})
	d := g.Delay(x, 3)
	ws := g.Stats(d)
	if ws.Mean != 1 || math.Abs(ws.Std-2) > 1e-12 || math.Abs(ws.Rho-0.9) > 1e-12 {
		t.Errorf("delayed stats = %+v", ws)
	}
}

func TestAddIndependentInputs(t *testing.T) {
	g := New()
	a := g.Input("a", stats.WordStats{Mean: 1, Std: 3, Rho: 0.8})
	b := g.Input("b", stats.WordStats{Mean: 2, Std: 4, Rho: 0.2})
	sum := g.Add(a, b)
	ws := g.Stats(sum)
	if ws.Mean != 3 {
		t.Errorf("mean = %v", ws.Mean)
	}
	if math.Abs(ws.Std-5) > 1e-9 { // sqrt(9+16)
		t.Errorf("std = %v", ws.Std)
	}
	// rho = (0.8*9 + 0.2*16)/25
	want := (0.8*9 + 0.2*16) / 25
	if math.Abs(ws.Rho-want) > 1e-9 {
		t.Errorf("rho = %v, want %v", ws.Rho, want)
	}
}

func TestCorrelatedPathsAreExact(t *testing.T) {
	// y = x − x[n−1]: a first difference. Var = 2σ²(1−ρ); the naive
	// independence assumption would give 2σ². This is the case that
	// motivates the lag-polynomial representation.
	g := New()
	x := g.Input("x", stats.WordStats{Mean: 10, Std: 2, Rho: 0.75})
	y := g.Sub(x, g.Delay(x, 1))
	ws := g.Stats(y)
	if ws.Mean != 0 {
		t.Errorf("mean = %v", ws.Mean)
	}
	want := math.Sqrt(2 * 4 * (1 - 0.75))
	if math.Abs(ws.Std-want) > 1e-9 {
		t.Errorf("std = %v, want %v", ws.Std, want)
	}
}

func TestCancellationIsExact(t *testing.T) {
	// x + (−x) must vanish entirely.
	g := New()
	x := g.Input("x", stats.WordStats{Mean: 7, Std: 3, Rho: 0.5})
	z := g.Add(x, g.Neg(x))
	ws := g.Stats(z)
	if ws.Mean != 0 || ws.Std != 0 {
		t.Errorf("cancelled stats = %+v", ws)
	}
}

func TestNegativeDelayPanics(t *testing.T) {
	g := New()
	x := g.Input("x", stats.WordStats{Std: 1})
	defer func() {
		if recover() == nil {
			t.Fatal("negative delay accepted")
		}
	}()
	g.Delay(x, -1)
}

func TestBadNodePanics(t *testing.T) {
	g := New()
	defer func() {
		if recover() == nil {
			t.Fatal("bogus node accepted")
		}
	}()
	g.Stats(NodeID(3))
}

func TestInputNames(t *testing.T) {
	g := New()
	g.Input("a", stats.WordStats{Std: 1})
	g.Input("b", stats.WordStats{Std: 1})
	names := g.InputNames()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Errorf("names = %v", names)
	}
}

// Integration: propagate a 3-tap FIR y[n] = x[n] + 2x[n-1] + x[n-2] and
// compare every moment against a word-level simulation of the same graph
// on an AR(1) stream.
func TestFIRPropagationMatchesSimulation(t *testing.T) {
	const (
		rho = 0.9
		std = 500.0
		n   = 60000
	)
	// Analytic side.
	g := New()
	x := g.Input("x", stats.WordStats{Mean: 0, Std: std, Rho: rho})
	y := g.Add(g.Add(x, g.Gain(g.Delay(x, 1), 2)), g.Delay(x, 2))
	pred := g.Stats(y)

	// Simulation side: run the same filter on a quantized AR(1) stream.
	xs := stimuli.TakeInts(stimuli.AR1(16, 0, std, rho, 77), n)
	ys := make([]int64, 0, n-2)
	for i := 2; i < n; i++ {
		ys = append(ys, xs[i]+2*xs[i-1]+xs[i-2])
	}
	got, err := stats.FromInts(ys)
	if err != nil {
		t.Fatal(err)
	}
	// The sample mean of a strongly correlated stream has standard error
	// σ·√((1+ρ)/((1−ρ)n)) ≈ 0.018σ here; allow 3 of those.
	if math.Abs(got.Mean-pred.Mean) > 0.055*pred.Std {
		t.Errorf("mean: simulated %v vs predicted %v", got.Mean, pred.Mean)
	}
	if math.Abs(got.Std-pred.Std)/pred.Std > 0.03 {
		t.Errorf("std: simulated %v vs predicted %v", got.Std, pred.Std)
	}
	if math.Abs(got.Rho-pred.Rho) > 0.02 {
		t.Errorf("rho: simulated %v vs predicted %v", got.Rho, pred.Rho)
	}
}

// Integration: the propagated stats drive the Section 6 pipeline — the
// resulting analytic Hd distribution of the filter output must track the
// distribution extracted from simulating the filter.
func TestPropagationFeedsHdPipeline(t *testing.T) {
	const (
		rho = 0.95
		std = 800.0
		m   = 16
		n   = 40000
	)
	g := New()
	x := g.Input("x", stats.WordStats{Mean: 0, Std: std, Rho: rho})
	y := g.Sub(x, g.Gain(g.Delay(x, 1), 0.5))
	pred := g.Stats(y)

	xs := stimuli.TakeInts(stimuli.AR1(m, 0, std, rho, 99), n)
	ys := make([]int64, 0, n-1)
	for i := 1; i < n; i++ {
		ys = append(ys, xs[i]-xs[i-1]/2)
	}
	got, err := stats.FromInts(ys)
	if err != nil {
		t.Fatal(err)
	}
	// The propagated word stats must be close enough that the derived
	// breakpoints agree within one bit position.
	bpPred := stats.ComputeBreakpoints(pred, m)
	bpGot := stats.ComputeBreakpoints(got, m)
	if d := bpPred.BP0 - bpGot.BP0; d < -1 || d > 1 {
		t.Errorf("BP0 predicted %d vs measured %d", bpPred.BP0, bpGot.BP0)
	}
	if d := bpPred.BP1 - bpGot.BP1; d < -1 || d > 1 {
		t.Errorf("BP1 predicted %d vs measured %d", bpPred.BP1, bpGot.BP1)
	}
}
