// Package propagate computes word-level signal statistics (mean, variance,
// lag-1 autocorrelation) at every node of a linear dataflow graph from the
// statistics of its input streams — the capability the paper's Section 6
// leans on (refs. [9, 10]: Landman's and Ramprasad's propagation of
// word-level statistics through adders, constant multipliers and delays).
//
// Combined with internal/stats (breakpoints) and internal/hddist (analytic
// Hd distribution) this enables power estimation of a whole datapath with
// no bit-level simulation at all: propagate → distribution → Σ p(Hd=i)·p_i.
//
// The implementation is exact for linear operators over AR(1) Gaussian
// inputs: every node is represented as a lag polynomial over the primary
// inputs, y[n] = c0 + Σ_i Σ_k a_{i,k}·x_i[n−k], and second-order statistics
// follow from the AR(1) autocovariance cov(x[n], x[n−k]) = σ²ρ^|k|.
// Distinct primary inputs are assumed mutually independent. This subsumes
// FIR filters, IIR-free accumulator trees, delays and constant gains —
// the DSP kernels the paper's introduction targets.
package propagate

import (
	"fmt"
	"math"

	"hdpower/internal/stats"
)

// NodeID identifies a node within one Graph.
type NodeID int

type input struct {
	name string
	ws   stats.WordStats
}

// node is a lag polynomial: coeff[inputIdx][lag] plus a constant offset.
type node struct {
	coeffs []map[int]float64 // indexed by input index
	offset float64
}

// Graph is a linear dataflow graph under construction. The zero value is
// not usable; create one with New.
type Graph struct {
	inputs []input
	nodes  []node
}

// New returns an empty dataflow graph.
func New() *Graph { return &Graph{} }

func (g *Graph) newNode() (NodeID, *node) {
	n := node{coeffs: make([]map[int]float64, len(g.inputs))}
	for i := range n.coeffs {
		n.coeffs[i] = map[int]float64{}
	}
	g.nodes = append(g.nodes, n)
	return NodeID(len(g.nodes) - 1), &g.nodes[len(g.nodes)-1]
}

func (g *Graph) check(id NodeID) {
	if id < 0 || int(id) >= len(g.nodes) {
		panic(fmt.Sprintf("propagate: node %d out of range", id))
	}
}

// grow extends every node's coefficient table after a new input is added.
func (g *Graph) grow() {
	for i := range g.nodes {
		g.nodes[i].coeffs = append(g.nodes[i].coeffs, map[int]float64{})
	}
}

// Input declares a primary input stream modeled as a stationary AR(1)
// Gaussian process with the given word-level statistics.
func (g *Graph) Input(name string, ws stats.WordStats) NodeID {
	if ws.Std < 0 {
		panic(fmt.Sprintf("propagate: negative std for input %q", name))
	}
	g.inputs = append(g.inputs, input{name: name, ws: ws})
	g.grow()
	id, n := g.newNode()
	n.coeffs[len(g.inputs)-1][0] = 1
	return id
}

// Const declares a constant-valued node.
func (g *Graph) Const(v float64) NodeID {
	id, n := g.newNode()
	n.offset = v
	return id
}

// Delay returns a[n−k]. k must be non-negative.
func (g *Graph) Delay(a NodeID, k int) NodeID {
	g.check(a)
	if k < 0 {
		panic(fmt.Sprintf("propagate: negative delay %d", k))
	}
	src := g.nodes[a]
	id, n := g.newNode()
	n.offset = src.offset
	for i, lags := range src.coeffs {
		for lag, c := range lags {
			n.coeffs[i][lag+k] = c
		}
	}
	return id
}

// Gain returns c·a.
func (g *Graph) Gain(a NodeID, c float64) NodeID {
	g.check(a)
	src := g.nodes[a]
	id, n := g.newNode()
	n.offset = c * src.offset
	for i, lags := range src.coeffs {
		for lag, v := range lags {
			n.coeffs[i][lag] = c * v
		}
	}
	return id
}

// Neg returns −a.
func (g *Graph) Neg(a NodeID) NodeID { return g.Gain(a, -1) }

// Add returns a + b.
func (g *Graph) Add(a, b NodeID) NodeID { return g.linComb(a, b, 1) }

// Sub returns a − b.
func (g *Graph) Sub(a, b NodeID) NodeID { return g.linComb(a, b, -1) }

func (g *Graph) linComb(a, b NodeID, sign float64) NodeID {
	g.check(a)
	g.check(b)
	na, nb := g.nodes[a], g.nodes[b]
	id, n := g.newNode()
	n.offset = na.offset + sign*nb.offset
	for i, lags := range na.coeffs {
		for lag, v := range lags {
			n.coeffs[i][lag] += v
		}
	}
	for i, lags := range nb.coeffs {
		for lag, v := range lags {
			n.coeffs[i][lag] += sign * v
		}
	}
	return id
}

// Stats returns the exact word-level statistics of a node under the AR(1)
// input model: mean, standard deviation and lag-1 autocorrelation.
func (g *Graph) Stats(id NodeID) stats.WordStats {
	g.check(id)
	n := g.nodes[id]
	mean := n.offset
	var variance, lag1 float64
	for i, lags := range n.coeffs {
		ws := g.inputs[i].ws
		var coefSum float64
		for _, c := range lags {
			coefSum += c
		}
		mean += coefSum * ws.Mean
		// Autocovariance of input i at integer lag k.
		cov := func(k int) float64 {
			return ws.Std * ws.Std * math.Pow(clampRho(ws.Rho), math.Abs(float64(k)))
		}
		for l1, c1 := range lags {
			for l2, c2 := range lags {
				variance += c1 * c2 * cov(l1-l2)
				lag1 += c1 * c2 * cov(l2+1-l1)
			}
		}
	}
	ws := stats.WordStats{Mean: mean}
	if variance > 0 {
		ws.Std = math.Sqrt(variance)
		ws.Rho = lag1 / variance
	}
	return ws
}

// InputNames returns the declared primary input names in order.
func (g *Graph) InputNames() []string {
	out := make([]string, len(g.inputs))
	for i, in := range g.inputs {
		out[i] = in.name
	}
	return out
}

func clampRho(r float64) float64 {
	if r > 1 {
		return 1
	}
	if r < -1 {
		return -1
	}
	return r
}
