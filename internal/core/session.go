package core

// session.go exports the characterization merge state machine for
// distributed builds (internal/fleet). A single-node Characterize owns
// three jobs at once: simulating shards, merging their partial
// accumulators in shard order, and deciding convergence. A fleet splits
// the first job across worker processes — CharacterizeShardRange computes
// any contiguous range of the deterministic shard plan — while the
// coordinator replays the other two through a MergeSession, one
// ShardResult at a time, exactly as Characterize would have: same
// accumulator arithmetic, same per-shard convergence-check cadence, same
// early-stop boundary, same hook order. That is what makes a fleet build
// bit-identical to a single-node run of the same options (pinned by
// TestFleetBitIdentical in internal/fleet).
//
// Sessions snapshot to and resume from the same Checkpoint encoding the
// crash-safe single-node path uses, so a coordinator's lease ledger
// inherits the checkpoint's bit-exact float64 round-trip guarantees for
// free.

import (
	"fmt"

	"hdpower/internal/power"
)

// ShardResult is the wire form of one shard's partial accumulators: what
// runCharShard computes, serialized with the checkpoint's AccState
// encoding. Index is phase-relative (the shard's position in the phase's
// plan, which for both phases equals its shard-plan index), so a
// MergeSession can check arrival order without knowing which worker
// computed it.
type ShardResult struct {
	Index    int `json:"index"`
	Patterns int `json:"patterns"`
	// Basic holds the basic-class partials; present only for basic-phase
	// shards.
	Basic []AccState `json:"basic,omitempty"`
	// Enhanced holds the stable-zero-refined partials; present only when
	// the run fits the enhanced table.
	Enhanced [][]AccState `json:"enhanced,omitempty"`
}

// result converts a computed shard partial to its wire form.
func (p *charPartial) result(index int) ShardResult {
	r := ShardResult{Index: index, Patterns: p.patterns}
	if p.basic != nil {
		r.Basic = make([]AccState, len(p.basic))
		for i := range p.basic {
			r.Basic[i] = p.basic[i].state()
		}
	}
	if p.enhanced != nil {
		r.Enhanced = make([][]AccState, len(p.enhanced))
		for i := range p.enhanced {
			row := make([]AccState, len(p.enhanced[i]))
			for z := range p.enhanced[i] {
				row[z] = p.enhanced[i][z].state()
			}
			r.Enhanced[i] = row
		}
	}
	return r
}

// Fingerprint pins the full identity of a characterization stream —
// module, geometry, every option that shapes the pattern stream, the
// backend, and the package's structural constants — as a short hex
// string. A fleet worker recomputes it from the job spec it was handed
// and refuses work whose fingerprint differs from the coordinator's, so
// two builds of this package with different internals (or two mismatched
// specs) can never mix shards.
func Fingerprint(module string, inputBits int, opt CharacterizeOptions) string {
	opt.setDefaults()
	return charTopoHash(module, inputBits, &opt)
}

// NumShards returns the number of shards a pattern budget decomposes
// into — the index space CharacterizeShardRange and MergeSession operate
// on. A non-positive budget means the Characterize default.
func NumShards(patterns int) int {
	opt := CharacterizeOptions{Patterns: patterns}
	opt.setDefaults()
	return len(shardPlan(opt.Patterns))
}

// CharacterizeShardRange simulates the contiguous phase-relative shard
// range [start, end) of phase on the caller's meter and returns one
// ShardResult per shard, in index order. It is the worker half of a
// distributed characterization: the shard plan, seeds and accumulator
// arithmetic are identical to the ones Characterize uses internally, so
// merging the results through a MergeSession reproduces a single-node run
// bit-exactly. opt.Interrupt is polled between shards; opt's convergence
// and checkpoint options are ignored here (both are coordinator
// concerns).
func CharacterizeShardRange(meter *power.Meter, moduleName string, opt CharacterizeOptions,
	phase string, start, end int) ([]ShardResult, error) {
	opt.setDefaults()
	if err := verifyNetlist(meter, moduleName); err != nil {
		return nil, err
	}
	m := meter.NumInputBits()
	if m <= 0 {
		return nil, fmt.Errorf("core: module %s has no inputs", moduleName)
	}
	plan := shardPlan(opt.Patterns)
	if start < 0 || end > len(plan) || start >= end {
		return nil, fmt.Errorf("core: shard range [%d,%d) outside the %d-shard plan of %s",
			start, end, len(plan), moduleName)
	}
	var biased, enhanced bool
	switch phase {
	case PhaseBasic:
		enhanced = opt.Enhanced
	case PhaseBiased:
		if !opt.Enhanced {
			return nil, fmt.Errorf("core: biased-phase shards requested for the non-enhanced run of %s", moduleName)
		}
		biased, enhanced = true, true
	default:
		return nil, fmt.Errorf("core: unknown characterization phase %q", phase)
	}
	// Only the bucket geometry of the model is read during simulation.
	model := &Model{Module: moduleName, InputBits: m, Basic: make([]Coef, m), ZClusters: opt.ZClusters}

	n := end - start
	workers := opt.workerCount()
	if workers > n {
		workers = n
	}
	backend, err := opt.resolveBackend(meter)
	if err != nil {
		return nil, err
	}
	backends := backendPool(backend, workers)

	results := make([]ShardResult, 0, n)
	var interrupted error
	runShardsOrdered(n, workers,
		func(w, idx int) *charPartial {
			return runCharShard(backends[w], model, plan[start+idx], opt.Seed, biased, enhanced)
		},
		func(idx int, part *charPartial) bool {
			if opt.Interrupt != nil {
				if err := opt.Interrupt(); err != nil {
					interrupted = err
					return false
				}
			}
			results = append(results, part.result(start+idx))
			return true
		})
	if interrupted != nil {
		return nil, fmt.Errorf("core: shard range [%d,%d) of %s interrupted: %w",
			start, end, moduleName, interrupted)
	}
	return results, nil
}

// MergeSession replays the merge/convergence/early-stop state machine of
// Characterize one ShardResult at a time, for callers that obtain shard
// partials from elsewhere (a worker fleet) instead of computing them
// inline. Feeding it every shard of the plan in order yields the same
// model, the same early-stop decision, and the same hook sequence as
// Characterize with the same options — the bit-identity contract
// distributed builds rest on.
//
// A session is not safe for concurrent use; the fleet coordinator drives
// it under its own lock.
type MergeSession struct {
	module string
	opt    CharacterizeOptions
	model  *Model
	plan   []shard

	basic    []classAcc
	enhanced [][]classAcc
	conv     *convTracker
	checks   bool

	phase          string
	merged         int // shards merged within the current phase
	usedShards     int // basic phase's final shard count (biased budget)
	patternsBasic  int
	patternsBiased int
	stopped        bool
	earlyStopAt    int
	phaseOpen      bool
	done           bool
}

// newSession builds the session skeleton without opening a phase.
func newSession(module string, inputBits int, opt CharacterizeOptions) (*MergeSession, error) {
	opt.setDefaults()
	if inputBits <= 0 {
		return nil, fmt.Errorf("core: module %s has no inputs", module)
	}
	model := &Model{
		Module:    module,
		InputBits: inputBits,
		Basic:     make([]Coef, inputBits),
		ZClusters: opt.ZClusters,
	}
	s := &MergeSession{
		module: module,
		opt:    opt,
		model:  model,
		plan:   shardPlan(opt.Patterns),
		basic:  make([]classAcc, inputBits),
		conv:   newConvTracker(inputBits, opt.ConvergeTol, opt.CheckEvery),
		checks: opt.ConvergeTol > 0 || opt.Hooks.wantsConvergence(),
		phase:  PhaseBasic,
	}
	if opt.Enhanced {
		s.enhanced = make([][]classAcc, inputBits)
		for i := 1; i <= inputBits; i++ {
			s.enhanced[i-1] = make([]classAcc, model.NumZBuckets(i))
		}
	}
	return s, nil
}

// NewMergeSession starts a fresh merge session for a run of the given
// module geometry and options, firing the PhaseStart hook for the basic
// phase. The caller must either drive the session to completion (Merge
// until Done, then Finish) or Close it, so phase hooks stay balanced.
func NewMergeSession(module string, inputBits int, opt CharacterizeOptions) (*MergeSession, error) {
	s, err := newSession(module, inputBits, opt)
	if err != nil {
		return nil, err
	}
	s.openPhase(len(s.plan), s.opt.Patterns)
	return s, nil
}

// ResumeMergeSession restores a session from a Checkpoint snapshot (its
// own Snapshot, or a file checkpoint of the same run). The checkpoint's
// identity must match the requested run — a mismatch returns a
// *CheckpointMismatchError, exactly like a single-node resume — and its
// structure is sanity-checked before anything is trusted. Hook replay
// mirrors Characterize: Resumed fires first, then the phase hooks of any
// already-finished phases, so observers see balanced pairs.
func ResumeMergeSession(module string, inputBits int, opt CharacterizeOptions, cp *Checkpoint) (*MergeSession, error) {
	s, err := newSession(module, inputBits, opt)
	if err != nil {
		return nil, err
	}
	if cp == nil {
		return nil, fmt.Errorf("core: resume of %s without a checkpoint snapshot", module)
	}
	if err := cp.matches("(snapshot)", module, inputBits, &s.opt); err != nil {
		return nil, err
	}
	if err := cp.sanity(s.model, len(s.plan)); err != nil {
		return nil, fmt.Errorf("core: snapshot of %s fails sanity: %w", module, err)
	}
	cp.restore(s.basic, s.enhanced, s.conv)
	s.patternsBasic = cp.PatternsBasic
	s.patternsBiased = cp.PatternsBiased
	s.stopped = cp.EarlyStopped
	s.earlyStopAt = cp.EarlyStopAt
	s.opt.Hooks.resumed(cp.Phase, cp.totalShardsMerged(), cp.PatternsBasic, cp.PatternsBiased)
	s.openPhase(len(s.plan), s.opt.Patterns)
	if cp.Phase == PhaseBiased {
		s.merged = cp.UsedShards
		s.completeBasic()
		s.merged = cp.ShardsMerged
		if !s.done && s.merged == s.usedShards {
			s.completeBiased()
		}
	} else {
		s.merged = cp.ShardsMerged
		if s.merged == len(s.plan) {
			s.completeBasic()
		}
	}
	return s, nil
}

// openPhase fires the PhaseStart hook for the session's current phase and
// records it as open; closePhase is its balance, reached from Merge on
// phase completion or from Close on abandonment.
func (s *MergeSession) openPhase(shards, patterns int) {
	s.phaseOpen = true
	//hdlint:allow hookbalance session phases span Merge calls; closePhase fires the balancing end on completion and Close covers abandonment
	s.opt.Hooks.phaseStart(s.phase, shards, patterns)
}

func (s *MergeSession) closePhase() {
	if !s.phaseOpen {
		return
	}
	s.phaseOpen = false
	s.opt.Hooks.phaseEnd(s.phase)
}

// completeBasic closes the basic phase at the current merge point and
// either finishes the session (basic-only run) or opens the biased phase
// over the shards the basic phase actually consumed — the same budget
// rule Characterize applies after an early stop.
func (s *MergeSession) completeBasic() {
	s.usedShards = s.merged
	s.closePhase()
	if !s.opt.Enhanced {
		s.done = true
		return
	}
	s.phase = PhaseBiased
	s.merged = 0
	s.openPhase(s.usedShards, s.patternsBasic)
	if s.usedShards == 0 {
		s.completeBiased()
	}
}

func (s *MergeSession) completeBiased() {
	s.closePhase()
	s.done = true
}

// Phase returns the phase the session is currently merging (PhaseBasic or
// PhaseBiased).
func (s *MergeSession) Phase() string { return s.phase }

// MergedShards returns the number of shards merged within the current
// phase — equivalently, the phase-relative index the next ShardResult
// must carry.
func (s *MergeSession) MergedShards() int { return s.merged }

// PhaseShards returns the number of shards the current phase will merge
// at most: the full plan for the basic phase, the basic phase's consumed
// shard count for the biased phase.
func (s *MergeSession) PhaseShards() int {
	if s.phase == PhaseBiased {
		return s.usedShards
	}
	return len(s.plan)
}

// Done reports whether every phase has completed and Finish may be
// called.
func (s *MergeSession) Done() bool { return s.done }

// EarlyStopped reports whether the basic phase converged before its full
// pattern budget, and at how many patterns.
func (s *MergeSession) EarlyStopped() (bool, int) { return s.stopped, s.earlyStopAt }

// validate rejects a ShardResult that cannot be merged at the session's
// current position, before any state is touched — a rejected result
// leaves the session unchanged, so the caller can discard the payload and
// have the shard recomputed.
func (s *MergeSession) validate(r ShardResult) error {
	if s.done {
		return fmt.Errorf("core: merge session for %s is already complete", s.module)
	}
	if r.Index != s.merged {
		return fmt.Errorf("core: shard %d out of order in the %s phase of %s (next is %d)",
			r.Index, s.phase, s.module, s.merged)
	}
	if want := s.plan[s.merged].patterns; r.Patterns != want {
		return fmt.Errorf("core: shard %d of %s carries %d patterns, plan says %d",
			r.Index, s.module, r.Patterns, want)
	}
	m := s.model.InputBits
	if s.phase == PhaseBasic {
		if len(r.Basic) != m {
			return fmt.Errorf("core: basic-phase shard %d of %s has %d basic accumulators, want %d",
				r.Index, s.module, len(r.Basic), m)
		}
	} else if len(r.Basic) != 0 {
		return fmt.Errorf("core: biased-phase shard %d of %s carries basic accumulators", r.Index, s.module)
	}
	if s.opt.Enhanced {
		if len(r.Enhanced) != m {
			return fmt.Errorf("core: shard %d of %s has %d enhanced rows, want %d",
				r.Index, s.module, len(r.Enhanced), m)
		}
		for i := 1; i <= m; i++ {
			if len(r.Enhanced[i-1]) != s.model.NumZBuckets(i) {
				return fmt.Errorf("core: shard %d of %s: enhanced row %d has %d buckets, want %d",
					r.Index, s.module, i, len(r.Enhanced[i-1]), s.model.NumZBuckets(i))
			}
		}
	} else if len(r.Enhanced) != 0 {
		return fmt.Errorf("core: shard %d of %s carries enhanced accumulators in a basic-only run",
			r.Index, s.module)
	}
	return nil
}

// Merge folds the next shard's partial accumulators into the session.
// Results must arrive in phase-relative index order (r.Index ==
// MergedShards()); anything else is rejected without mutating the
// session. Merging the shard that completes a phase advances the session
// — possibly to Done — and merging the shard that satisfies the
// convergence tolerance truncates the basic phase exactly where
// Characterize would have stopped.
func (s *MergeSession) Merge(r ShardResult) error {
	if err := s.validate(r); err != nil {
		return err
	}
	switch s.phase {
	case PhaseBasic:
		for k := range s.basic {
			acc := r.Basic[k].acc()
			s.basic[k].merge(&acc)
		}
		if s.opt.Enhanced {
			s.mergeEnhanced(r.Enhanced)
		}
		s.patternsBasic += r.Patterns
		s.merged++
		s.opt.Hooks.patterns(r.Patterns)
		s.opt.Hooks.shardMerged()
		if s.checks {
			if worst, checked, stop := s.conv.check(s.basic, s.patternsBasic); checked {
				s.opt.Hooks.convergence(s.patternsBasic, worst)
				if stop {
					s.stopped = true
					s.earlyStopAt = s.patternsBasic
					s.opt.Hooks.earlyStop(s.patternsBasic)
					s.completeBasic()
					return nil
				}
			}
		}
		if s.merged == len(s.plan) {
			s.completeBasic()
		}
	case PhaseBiased:
		s.mergeEnhanced(r.Enhanced)
		s.patternsBiased += r.Patterns
		s.merged++
		s.opt.Hooks.patterns(r.Patterns)
		s.opt.Hooks.shardMerged()
		if s.merged == s.usedShards {
			s.completeBiased()
		}
	}
	return nil
}

func (s *MergeSession) mergeEnhanced(rows [][]AccState) {
	for i := range rows {
		for z := range rows[i] {
			acc := rows[i][z].acc()
			s.enhanced[i][z].merge(&acc)
		}
	}
}

// Snapshot captures the session as a Checkpoint — the same encoding the
// single-node crash-safety path writes — suitable for embedding in a
// coordinator's lease ledger and for ResumeMergeSession. The snapshot
// owns its slices; later Merges do not mutate it.
func (s *MergeSession) Snapshot() *Checkpoint {
	cp := baseCheckpoint(s.module, s.model.InputBits, &s.opt)
	cp.Phase = s.phase
	cp.ShardsMerged = s.merged
	cp.UsedShards = s.usedShards
	cp.PatternsBasic = s.patternsBasic
	cp.PatternsBiased = s.patternsBiased
	cp.EarlyStopped = s.stopped
	cp.EarlyStopAt = s.earlyStopAt
	cp.Basic = make([]AccState, len(s.basic))
	for i := range s.basic {
		cp.Basic[i] = s.basic[i].state()
	}
	if s.enhanced != nil {
		cp.EnhancedAcc = make([][]AccState, len(s.enhanced))
		for i := range s.enhanced {
			row := make([]AccState, len(s.enhanced[i]))
			for z := range s.enhanced[i] {
				row[z] = s.enhanced[i][z].state()
			}
			cp.EnhancedAcc[i] = row
		}
	}
	// The tracker mutates prev/prevCount in place at every check; the
	// snapshot must keep its own copies.
	cp.ConvNext = s.conv.nextCheck
	cp.ConvPrev = append([]float64(nil), s.conv.prev...)
	cp.ConvPrevCount = append([]int64(nil), s.conv.prevCount...)
	return &cp
}

// Finish extracts the fitted model from a completed session, exactly as
// Characterize does after its final merge.
func (s *MergeSession) Finish() (*Model, error) {
	if !s.done {
		return nil, fmt.Errorf("core: merge session for %s is not complete (%s phase, %d/%d shards)",
			s.module, s.phase, s.merged, s.PhaseShards())
	}
	m := s.model.InputBits
	for k := range s.basic {
		s.model.Basic[k] = s.basic[k].coef()
	}
	if s.opt.Enhanced {
		s.model.Enhanced = make([][]Coef, m)
		for i := 1; i <= m; i++ {
			row := make([]Coef, len(s.enhanced[i-1]))
			for zb := range row {
				row[zb] = s.enhanced[i-1][zb].coef()
			}
			s.model.Enhanced[i-1] = row
		}
	}
	return s.model, s.model.Validate()
}

// Close fires the balancing PhaseEnd for a phase the session still holds
// open, so abandoning an unfinished session (coordinator shutdown, job
// cancellation) does not leak a span in observers. Closing a finished
// session is a no-op; a closed session must not be merged into again.
func (s *MergeSession) Close() { s.closePhase() }
