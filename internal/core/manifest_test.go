package core

import (
	"encoding/json"
	"errors"
	"testing"
)

// TestRunRecorderCompleteRun verifies a successful run's manifest:
// budgets, phase pattern splits, shard counts, convergence trajectory and
// the final coefficient table all land in the record.
func TestRunRecorderCompleteRun(t *testing.T) {
	meter := meterFor(t, "ripple-adder", 4)
	opt := CharacterizeOptions{Patterns: 1000, Seed: 7, Workers: 2, Enhanced: true}
	rec := NewRunRecorder("ripple-adder", opt)
	opt.Hooks = rec.Hooks()
	model, err := Characterize(meter, "ripple-adder", opt)
	if err != nil {
		t.Fatal(err)
	}
	man := rec.Finish(model, nil)

	if man.Module != "ripple-adder" || man.Seed != 7 || man.Workers != 2 {
		t.Errorf("identity fields wrong: %+v", man)
	}
	if man.PatternsBudget != 1000 || man.PatternsBasic != 1000 {
		t.Errorf("patterns: budget %d basic %d, want 1000/1000", man.PatternsBudget, man.PatternsBasic)
	}
	if man.PatternsBiased != 1000 {
		t.Errorf("biased phase mirrors the basic budget, got %d", man.PatternsBiased)
	}
	wantShards := len(shardPlan(1000))
	if man.ShardsPlanned != wantShards || man.ShardsMerged != 2*wantShards {
		t.Errorf("shards: planned %d merged %d, want %d/%d",
			man.ShardsPlanned, man.ShardsMerged, wantShards, 2*wantShards)
	}
	// Convergence checkpoints fire for the hook even without a tolerance.
	if len(man.Convergence) == 0 {
		t.Errorf("no convergence snapshots recorded")
	}
	if man.EarlyStop {
		t.Errorf("unexpected early stop")
	}
	if len(man.Coefficients) != model.InputBits {
		t.Errorf("coefficients: %d entries, want %d", len(man.Coefficients), model.InputBits)
	}
	var total int
	for _, c := range man.Coefficients {
		total += c.Count
	}
	if total != 1000 {
		t.Errorf("per-class counts sum to %d, want 1000", total)
	}
	if man.EnhancedCoefficients == 0 {
		t.Errorf("enhanced coefficient count missing")
	}
	if man.WallSeconds <= 0 {
		t.Errorf("wall time not stamped: %v", man.WallSeconds)
	}

	// The manifest must round-trip through JSON (no Inf/NaN leaks).
	raw, err := json.Marshal(man)
	if err != nil {
		t.Fatalf("manifest does not marshal: %v", err)
	}
	var back RunManifest
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatalf("manifest does not unmarshal: %v", err)
	}
	if back.PatternsBasic != man.PatternsBasic || len(back.Coefficients) != len(man.Coefficients) {
		t.Errorf("round-trip lost fields")
	}
}

// TestRunRecorderDefaultsAndBudget pins that the recorder reflects the
// effective (defaulted) option values, not the zero ones.
func TestRunRecorderDefaultsAndBudget(t *testing.T) {
	rec := NewRunRecorder("m", CharacterizeOptions{})
	man := rec.Finish(nil, nil)
	if man.PatternsBudget != 5000 {
		t.Errorf("defaulted budget = %d, want 5000", man.PatternsBudget)
	}
	if man.Workers < 1 {
		t.Errorf("workers = %d", man.Workers)
	}
}

// TestRunRecorderEarlyStop verifies the early-stop fields and that the
// convergence trajectory ends at the stop point.
func TestRunRecorderEarlyStop(t *testing.T) {
	meter := meterFor(t, "ripple-adder", 2)
	opt := CharacterizeOptions{
		Patterns: 20000, Seed: 1, Workers: 1, ConvergeTol: 0.5, CheckEvery: 200,
	}
	rec := NewRunRecorder("ripple-adder", opt)
	opt.Hooks = rec.Hooks()
	model, err := Characterize(meter, "ripple-adder", opt)
	if err != nil {
		t.Fatal(err)
	}
	man := rec.Finish(model, nil)
	if !man.EarlyStop || man.EarlyStopAtPatterns == 0 {
		t.Fatalf("early stop not recorded: %+v", man)
	}
	if man.PatternsBasic != man.EarlyStopAtPatterns {
		t.Errorf("basic patterns %d != early-stop point %d", man.PatternsBasic, man.EarlyStopAtPatterns)
	}
	if man.PatternsBasic >= 20000 {
		t.Errorf("run consumed the whole budget despite early stop")
	}
	last := man.Convergence[len(man.Convergence)-1]
	if last.Patterns != man.EarlyStopAtPatterns {
		t.Errorf("last checkpoint at %d patterns, stop at %d", last.Patterns, man.EarlyStopAtPatterns)
	}
	if last.WorstChange < 0 || last.WorstChange >= 0.5 {
		t.Errorf("stopping checkpoint worst change %v outside [0, tol)", last.WorstChange)
	}
}

// TestRunRecorderFailedRun verifies the error path: the manifest carries
// the failure and partial progress, with no coefficients.
func TestRunRecorderFailedRun(t *testing.T) {
	cause := errors.New("canceled")
	meter := meterFor(t, "ripple-adder", 4)
	opt := CharacterizeOptions{Patterns: 2000, Seed: 1, Workers: 2}
	rec := NewRunRecorder("ripple-adder", opt)
	merged := 0
	opt.Hooks = JoinHooks(rec.Hooks(), &Hooks{ShardMerged: func() { merged++ }})
	opt.Interrupt = func() error {
		if merged >= 2 {
			return cause
		}
		return nil
	}
	model, err := Characterize(meter, "ripple-adder", opt)
	if model != nil {
		t.Fatalf("interrupted run returned a model")
	}
	man := rec.Finish(model, err)
	if man.Error == "" {
		t.Errorf("manifest lost the failure")
	}
	if man.ShardsMerged == 0 || man.ShardsMerged >= man.ShardsPlanned {
		t.Errorf("partial progress not recorded: merged %d of %d", man.ShardsMerged, man.ShardsPlanned)
	}
	if len(man.Coefficients) != 0 {
		t.Errorf("failed run recorded coefficients")
	}

	// Finish is idempotent.
	again := rec.Finish(nil, nil)
	if again.Error != man.Error || again.WallSeconds != man.WallSeconds {
		t.Errorf("second Finish diverged: %+v vs %+v", again, man)
	}
}

// TestJoinHooks verifies fan-out to every member and the nil handling.
func TestJoinHooks(t *testing.T) {
	if JoinHooks(nil, nil) != nil {
		t.Errorf("all-nil join must be nil")
	}
	single := &Hooks{}
	if JoinHooks(nil, single) != single {
		t.Errorf("single live hook set must pass through")
	}

	var aPatterns, bPatterns, phases int
	a := &Hooks{PatternsSimulated: func(n int) { aPatterns += n }}
	b := &Hooks{
		PatternsSimulated: func(n int) { bPatterns += n },
		PhaseStart:        func(string, int, int) { phases++ },
		PhaseEnd:          func(string) { phases++ },
	}
	j := JoinHooks(a, b)
	j.patterns(128)
	j.phaseStart(PhaseBasic, 4, 512)
	j.phaseEnd(PhaseBasic)
	j.shardMerged() // no listener: must not panic
	if aPatterns != 128 || bPatterns != 128 || phases != 2 {
		t.Errorf("fan-out wrong: a=%d b=%d phases=%d", aPatterns, bPatterns, phases)
	}
	// Neither member listens to Convergence, so the join must not force
	// checkpoint evaluation.
	if j.wantsConvergence() {
		t.Errorf("join invented a Convergence listener")
	}
	j2 := JoinHooks(a, &Hooks{Convergence: func(int, float64) {}})
	if !j2.wantsConvergence() {
		t.Errorf("join dropped the Convergence listener")
	}
}
