package core

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hdpower/internal/faultpoint"
)

// ckOpts is the shared run shape of the resume tests: enhanced fit over
// 10 shards per phase, so kills land in both phases.
func ckOpts(workers int) CharacterizeOptions {
	return CharacterizeOptions{
		Patterns: 1280,
		Enhanced: true,
		Seed:     11,
		Workers:  workers,
	}
}

func marshal(t *testing.T, m *Model) []byte {
	t.Helper()
	data, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// killAt arms the core.merge fault point to fail the k-th merged shard,
// runs Characterize, and requires the injected failure to surface.
func killAt(t *testing.T, k int, opt CharacterizeOptions) {
	t.Helper()
	faultpoint.Disarm()
	if err := faultpoint.Arm(fmt.Sprintf("core.merge=error:after=%d", k)); err != nil {
		t.Fatal(err)
	}
	defer faultpoint.Disarm()
	_, err := Characterize(meterFor(t, "ripple-adder", 4), "ripple-adder", opt)
	if !errors.Is(err, faultpoint.ErrInjected) {
		t.Fatalf("kill at merge %d: want injected fault, got %v", k, err)
	}
}

// TestCheckpointResumeBitIdentical is the crash-safety contract: a run
// killed at ANY merged-shard boundary — basic phase, phase transition,
// biased phase — and resumed from its checkpoint produces byte-identical
// coefficients to an uninterrupted run, for every worker count.
func TestCheckpointResumeBitIdentical(t *testing.T) {
	base, err := Characterize(meterFor(t, "ripple-adder", 4), "ripple-adder", ckOpts(2))
	if err != nil {
		t.Fatal(err)
	}
	want := marshal(t, base)
	const totalMerges = 20 // 10 basic shards + 10 biased shards

	for _, workers := range []int{1, 2, 4} {
		kills := []int{1, 4, 9, 10, 11, 16, 20}
		if workers == 2 {
			kills = nil
			for k := 1; k <= totalMerges; k++ {
				kills = append(kills, k)
			}
		}
		for _, k := range kills {
			path := filepath.Join(t.TempDir(), "ck.json")
			opt := ckOpts(workers)
			opt.Checkpoint = CheckpointOptions{Path: path, Resume: true, EveryShards: 4}

			killAt(t, k, opt)
			if _, err := os.Stat(path); err != nil {
				t.Fatalf("workers=%d kill=%d: no checkpoint after kill: %v", workers, k, err)
			}

			got, err := Characterize(meterFor(t, "ripple-adder", 4), "ripple-adder", opt)
			if err != nil {
				t.Fatalf("workers=%d kill=%d: resume failed: %v", workers, k, err)
			}
			if !bytes.Equal(marshal(t, got), want) {
				t.Errorf("workers=%d kill=%d: resumed model differs from uninterrupted run", workers, k)
			}
			if _, err := os.Stat(path); !os.IsNotExist(err) {
				t.Errorf("workers=%d kill=%d: checkpoint not removed after success", workers, k)
			}
		}
	}
}

// TestCheckpointResumeAfterSecondCrash chains two crashes: kill, resume,
// kill again later, resume again — still bit-identical.
func TestCheckpointResumeAfterSecondCrash(t *testing.T) {
	base, err := Characterize(meterFor(t, "ripple-adder", 4), "ripple-adder", ckOpts(2))
	if err != nil {
		t.Fatal(err)
	}
	opt := ckOpts(2)
	opt.Checkpoint = CheckpointOptions{
		Path: filepath.Join(t.TempDir(), "ck.json"), Resume: true, EveryShards: 3,
	}
	killAt(t, 5, opt) // first crash mid-basic
	killAt(t, 8, opt) // resumed run crashes again, mid-biased this time
	got, err := Characterize(meterFor(t, "ripple-adder", 4), "ripple-adder", opt)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(marshal(t, got), marshal(t, base)) {
		t.Error("doubly-resumed model differs from uninterrupted run")
	}
}

// TestCheckpointResumePreservesEarlyStop kills the run in the biased
// phase of an early-stopped fit: the resumed run must not replay (or
// re-decide) the convergence stop, and the model must match.
func TestCheckpointResumePreservesEarlyStop(t *testing.T) {
	opts := func() CharacterizeOptions {
		return CharacterizeOptions{
			Patterns:    2560,
			Enhanced:    true,
			Seed:        5,
			Workers:     2,
			ConvergeTol: 0.9,
			CheckEvery:  256,
		}
	}
	var stoppedAt, merges int
	opt := opts()
	opt.Hooks = &Hooks{
		EarlyStop:   func(used int) { stoppedAt = used },
		ShardMerged: func() { merges++ },
	}
	base, err := Characterize(meterFor(t, "ripple-adder", 4), "ripple-adder", opt)
	if err != nil {
		t.Fatal(err)
	}
	if stoppedAt == 0 {
		t.Fatalf("baseline did not early-stop; got %d merges", merges)
	}
	kill := merges - 1 // inside the biased phase (its last shard but one)
	if kill <= stoppedAt/shardPatterns {
		t.Fatalf("kill point %d not in the biased phase", kill)
	}

	opt = opts()
	opt.Checkpoint = CheckpointOptions{
		Path: filepath.Join(t.TempDir(), "ck.json"), Resume: true,
	}
	killAt(t, kill, opt)

	var resumedPhase string
	var resumedStop bool
	opt.Hooks = &Hooks{
		Resumed:   func(phase string, _, _, _ int) { resumedPhase = phase },
		EarlyStop: func(int) { resumedStop = true },
	}
	got, err := Characterize(meterFor(t, "ripple-adder", 4), "ripple-adder", opt)
	if err != nil {
		t.Fatal(err)
	}
	if resumedPhase != PhaseBiased {
		t.Errorf("resumed phase %q, want %q", resumedPhase, PhaseBiased)
	}
	if resumedStop {
		t.Error("resumed run re-fired the early stop")
	}
	if !bytes.Equal(marshal(t, got), marshal(t, base)) {
		t.Error("resumed early-stopped model differs from uninterrupted run")
	}
}

// TestCheckpointMismatch refuses to resume a checkpoint from a different
// run, naming the differing fields.
func TestCheckpointMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.json")
	opt := ckOpts(2)
	opt.Checkpoint = CheckpointOptions{Path: path, Resume: true}
	killAt(t, 3, opt)

	opt.Seed = 12
	_, err := Characterize(meterFor(t, "ripple-adder", 4), "ripple-adder", opt)
	if !IsCheckpointMismatch(err) {
		t.Fatalf("want checkpoint mismatch, got %v", err)
	}
	if !strings.Contains(err.Error(), "seed") {
		t.Errorf("mismatch error does not name the seed: %v", err)
	}
	if _, statErr := os.Stat(path); statErr != nil {
		t.Errorf("mismatched checkpoint must be left in place: %v", statErr)
	}
}

// TestCorruptCheckpointStartsFresh flips a byte in the checkpoint: the
// resume must quarantine it and fall back to a full — still correct — run.
func TestCorruptCheckpointStartsFresh(t *testing.T) {
	base, err := Characterize(meterFor(t, "ripple-adder", 4), "ripple-adder", ckOpts(2))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "ck.json")
	opt := ckOpts(2)
	opt.Checkpoint = CheckpointOptions{Path: path, Resume: true}
	killAt(t, 4, opt)

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/3] ^= 0x20
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	got, err := Characterize(meterFor(t, "ripple-adder", 4), "ripple-adder", opt)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(marshal(t, got), marshal(t, base)) {
		t.Error("fresh run after corrupt checkpoint differs from baseline")
	}
	if _, err := os.Stat(path + ".corrupt"); err != nil {
		t.Errorf("corrupt checkpoint not quarantined: %v", err)
	}
}

// TestResumeManifestTotals checks that a resumed run's flight-recorder
// manifest reports whole-run totals, not just the resumed segment.
func TestResumeManifestTotals(t *testing.T) {
	opt := ckOpts(2)
	opt.Checkpoint = CheckpointOptions{
		Path: filepath.Join(t.TempDir(), "ck.json"), Resume: true, EveryShards: 4,
	}
	saves := 0
	opt.Hooks = &Hooks{CheckpointSaved: func(err error) {
		if err != nil {
			t.Errorf("checkpoint save failed: %v", err)
		}
		saves++
	}}
	killAt(t, 7, opt)
	if saves == 0 {
		t.Fatal("no checkpoint saves observed before the kill")
	}

	rec := NewRunRecorder("ripple-adder", opt)
	opt.Hooks = rec.Hooks()
	model, err := Characterize(meterFor(t, "ripple-adder", 4), "ripple-adder", opt)
	man := rec.Finish(model, err)
	if err != nil {
		t.Fatal(err)
	}
	if !man.Resumed || man.ResumedFromPhase != PhaseBasic {
		t.Errorf("manifest resumed=%v phase=%q", man.Resumed, man.ResumedFromPhase)
	}
	if man.PatternsBasic != 1280 || man.PatternsBiased != 1280 {
		t.Errorf("manifest patterns %d/%d, want 1280/1280", man.PatternsBasic, man.PatternsBiased)
	}
	if man.ShardsMerged != 20 {
		t.Errorf("manifest shards merged %d, want 20", man.ShardsMerged)
	}
}

// TestLoadCheckpointMissing keeps the os sentinel contract.
func TestLoadCheckpointMissing(t *testing.T) {
	_, err := LoadCheckpoint(filepath.Join(t.TempDir(), "nope.json"))
	if !os.IsNotExist(err) {
		t.Fatalf("want IsNotExist, got %v", err)
	}
}
