package core

import (
	"errors"
	"testing"
)

// TestHooksObserveRun verifies the observability callbacks fire with
// totals consistent with the run: patterns sum to the budget, shard counts
// match the plan, and no early stop is reported without convergence.
func TestHooksObserveRun(t *testing.T) {
	meter := meterFor(t, "ripple-adder", 4)
	patterns, shards, earlyStops := 0, 0, 0
	hooks := &Hooks{
		PatternsSimulated: func(n int) { patterns += n },
		ShardMerged:       func() { shards++ },
		EarlyStop:         func(int) { earlyStops++ },
	}
	const budget = 600
	if _, err := Characterize(meter, "hooked", CharacterizeOptions{
		Patterns: budget, Seed: 3, Workers: 2, Hooks: hooks,
	}); err != nil {
		t.Fatal(err)
	}
	if patterns != budget {
		t.Errorf("hooks saw %d patterns, want %d", patterns, budget)
	}
	if want := len(shardPlan(budget)); shards != want {
		t.Errorf("hooks saw %d shards, want %d", shards, want)
	}
	if earlyStops != 0 {
		t.Errorf("unexpected early stop report")
	}
}

// TestHooksEarlyStop verifies EarlyStop fires when convergence ends the
// run before the budget, and that the reported pattern count matches what
// PatternsSimulated accumulated.
func TestHooksEarlyStop(t *testing.T) {
	meter := meterFor(t, "ripple-adder", 2)
	patterns, stopAt := 0, 0
	hooks := &Hooks{
		PatternsSimulated: func(n int) { patterns += n },
		EarlyStop:         func(used int) { stopAt = used },
	}
	if _, err := Characterize(meter, "hooked", CharacterizeOptions{
		Patterns: 20000, Seed: 1, Workers: 1,
		ConvergeTol: 0.5, CheckEvery: 200, Hooks: hooks,
	}); err != nil {
		t.Fatal(err)
	}
	if stopAt == 0 {
		t.Fatalf("loose tolerance did not trigger an early stop")
	}
	if stopAt != patterns {
		t.Errorf("EarlyStop reported %d patterns, hooks accumulated %d", stopAt, patterns)
	}
	if patterns >= 20000 {
		t.Errorf("early stop consumed the whole budget (%d)", patterns)
	}
}

// TestInterruptAbortsRun verifies the Interrupt poll cancels a run at a
// shard boundary and surfaces the cause, for every worker mode.
func TestInterruptAbortsRun(t *testing.T) {
	cause := errors.New("deadline exceeded")
	for _, workers := range []int{1, 4} {
		meter := meterFor(t, "ripple-adder", 4)
		merged := 0
		_, err := Characterize(meter, "interrupted", CharacterizeOptions{
			Patterns: 2000, Seed: 1, Workers: workers,
			Hooks: &Hooks{ShardMerged: func() { merged++ }},
			Interrupt: func() error {
				if merged >= 2 {
					return cause
				}
				return nil
			},
		})
		if !errors.Is(err, cause) {
			t.Fatalf("workers=%d: err = %v, want wrapped %v", workers, err, cause)
		}
		if merged > 3 {
			t.Errorf("workers=%d: run continued for %d shards after interrupt", workers, merged)
		}
	}
}

// TestInterruptNilIsNoop pins that runs without an Interrupt behave as
// before (guards the nil-check fast path).
func TestInterruptNilIsNoop(t *testing.T) {
	meter := meterFor(t, "incrementer", 3)
	model, err := Characterize(meter, "plain", CharacterizeOptions{Patterns: 300, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if err := model.Validate(); err != nil {
		t.Fatal(err)
	}
}
