package core

import (
	"errors"
	"testing"
)

// TestHooksObserveRun verifies the observability callbacks fire with
// totals consistent with the run: patterns sum to the budget, shard counts
// match the plan, and no early stop is reported without convergence.
func TestHooksObserveRun(t *testing.T) {
	meter := meterFor(t, "ripple-adder", 4)
	patterns, shards, earlyStops := 0, 0, 0
	hooks := &Hooks{
		PatternsSimulated: func(n int) { patterns += n },
		ShardMerged:       func() { shards++ },
		EarlyStop:         func(int) { earlyStops++ },
	}
	const budget = 600
	if _, err := Characterize(meter, "hooked", CharacterizeOptions{
		Patterns: budget, Seed: 3, Workers: 2, Hooks: hooks,
	}); err != nil {
		t.Fatal(err)
	}
	if patterns != budget {
		t.Errorf("hooks saw %d patterns, want %d", patterns, budget)
	}
	if want := len(shardPlan(budget)); shards != want {
		t.Errorf("hooks saw %d shards, want %d", shards, want)
	}
	if earlyStops != 0 {
		t.Errorf("unexpected early stop report")
	}
}

// TestHooksEarlyStop verifies EarlyStop fires when convergence ends the
// run before the budget, and that the reported pattern count matches what
// PatternsSimulated accumulated.
func TestHooksEarlyStop(t *testing.T) {
	meter := meterFor(t, "ripple-adder", 2)
	patterns, stopAt := 0, 0
	hooks := &Hooks{
		PatternsSimulated: func(n int) { patterns += n },
		EarlyStop:         func(used int) { stopAt = used },
	}
	if _, err := Characterize(meter, "hooked", CharacterizeOptions{
		Patterns: 20000, Seed: 1, Workers: 1,
		ConvergeTol: 0.5, CheckEvery: 200, Hooks: hooks,
	}); err != nil {
		t.Fatal(err)
	}
	if stopAt == 0 {
		t.Fatalf("loose tolerance did not trigger an early stop")
	}
	if stopAt != patterns {
		t.Errorf("EarlyStop reported %d patterns, hooks accumulated %d", stopAt, patterns)
	}
	if patterns >= 20000 {
		t.Errorf("early stop consumed the whole budget (%d)", patterns)
	}
}

// TestInterruptAbortsRun verifies the Interrupt poll cancels a run at a
// shard boundary and surfaces the cause, for every worker mode.
func TestInterruptAbortsRun(t *testing.T) {
	cause := errors.New("deadline exceeded")
	for _, workers := range []int{1, 4} {
		meter := meterFor(t, "ripple-adder", 4)
		merged := 0
		_, err := Characterize(meter, "interrupted", CharacterizeOptions{
			Patterns: 2000, Seed: 1, Workers: workers,
			Hooks: &Hooks{ShardMerged: func() { merged++ }},
			Interrupt: func() error {
				if merged >= 2 {
					return cause
				}
				return nil
			},
		})
		if !errors.Is(err, cause) {
			t.Fatalf("workers=%d: err = %v, want wrapped %v", workers, err, cause)
		}
		if merged > 3 {
			t.Errorf("workers=%d: run continued for %d shards after interrupt", workers, merged)
		}
	}
}

// TestInterruptParallelClosesHooksOnce covers the interrupt firing mid-run
// under the multi-worker path, between shard merges: the run must surface
// the wrapped cause instead of a partial model, and the phase lifecycle
// hooks must balance — PhaseStart/PhaseEnd for "basic" exactly once each,
// and the biased phase never started even though Enhanced was requested.
// Span-producing observers key child spans off these callbacks, so an
// unbalanced or duplicated pair would leak or double-close spans.
func TestInterruptParallelClosesHooksOnce(t *testing.T) {
	cause := errors.New("client went away")
	meter := meterFor(t, "ripple-adder", 4)
	merged := 0
	starts := map[string]int{}
	ends := map[string]int{}
	model, err := Characterize(meter, "interrupted", CharacterizeOptions{
		Patterns: 4000, Seed: 2, Workers: 4, Enhanced: true,
		Hooks: &Hooks{
			PhaseStart: func(phase string, shards, patterns int) {
				starts[phase]++
				if phase == PhaseBasic {
					if want := len(shardPlan(4000)); shards != want {
						t.Errorf("PhaseStart(basic) reported %d shards, want %d", shards, want)
					}
					if patterns != 4000 {
						t.Errorf("PhaseStart(basic) reported %d patterns, want 4000", patterns)
					}
				}
			},
			PhaseEnd:    func(phase string) { ends[phase]++ },
			ShardMerged: func() { merged++ },
		},
		Interrupt: func() error {
			if merged >= 3 {
				return cause
			}
			return nil
		},
	})
	if model != nil {
		t.Fatalf("interrupted run returned a partial model")
	}
	if !errors.Is(err, cause) {
		t.Fatalf("err = %v, want wrapped %v", err, cause)
	}
	if starts[PhaseBasic] != 1 || ends[PhaseBasic] != 1 {
		t.Errorf("basic phase hooks unbalanced: %d starts, %d ends",
			starts[PhaseBasic], ends[PhaseBasic])
	}
	if starts[PhaseBiased] != 0 || ends[PhaseBiased] != 0 {
		t.Errorf("biased phase ran after a phase-1 interrupt: %d starts, %d ends",
			starts[PhaseBiased], ends[PhaseBiased])
	}
}

// TestPhaseHooksBalanceOnSuccess pins the phase lifecycle on the happy
// path: both phases of an enhanced run open and close exactly once, in
// order, and the biased PhaseStart reports the basic phase's results as
// its inputs.
func TestPhaseHooksBalanceOnSuccess(t *testing.T) {
	meter := meterFor(t, "ripple-adder", 4)
	var order []string
	if _, err := Characterize(meter, "phased", CharacterizeOptions{
		Patterns: 600, Seed: 4, Workers: 2, Enhanced: true,
		Hooks: &Hooks{
			PhaseStart: func(phase string, shards, patterns int) {
				order = append(order, "start:"+phase)
				if phase == PhaseBiased && patterns != 600 {
					t.Errorf("PhaseStart(biased) saw %d basic patterns, want 600", patterns)
				}
			},
			PhaseEnd: func(phase string) { order = append(order, "end:"+phase) },
		},
	}); err != nil {
		t.Fatal(err)
	}
	want := []string{"start:basic", "end:basic", "start:biased", "end:biased"}
	if len(order) != len(want) {
		t.Fatalf("phase events %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("phase events %v, want %v", order, want)
		}
	}
}

// TestInterruptNilIsNoop pins that runs without an Interrupt behave as
// before (guards the nil-check fast path).
func TestInterruptNilIsNoop(t *testing.T) {
	meter := meterFor(t, "incrementer", 3)
	model, err := Characterize(meter, "plain", CharacterizeOptions{Patterns: 300, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if err := model.Validate(); err != nil {
		t.Fatal(err)
	}
}
