package core

import (
	"math"
	"reflect"
	"sync/atomic"
	"testing"
)

func TestShardPlanCoversBudgetExactly(t *testing.T) {
	for _, patterns := range []int{1, 127, 128, 129, 500, 5000} {
		plan := shardPlan(patterns)
		total, off := 0, 0
		for i, sh := range plan {
			if sh.index != i {
				t.Fatalf("patterns %d: shard %d has index %d", patterns, i, sh.index)
			}
			if sh.offset != off {
				t.Fatalf("patterns %d: shard %d offset %d, want %d", patterns, i, sh.offset, off)
			}
			if sh.patterns <= 0 || sh.patterns > shardPatterns {
				t.Fatalf("patterns %d: shard %d size %d", patterns, i, sh.patterns)
			}
			total += sh.patterns
			off += sh.patterns
		}
		if total != patterns {
			t.Fatalf("plan for %d covers %d patterns", patterns, total)
		}
	}
}

func TestShardPlanPrefixProperty(t *testing.T) {
	// Smaller budgets must be shard-prefixes of larger ones (identical
	// indices and offsets, with only the final shard truncated), which the
	// budget-convergence experiments rely on.
	small, large := shardPlan(500), shardPlan(8000)
	for i, sh := range small {
		ref := large[i]
		if sh.index != ref.index || sh.offset != ref.offset {
			t.Fatalf("shard %d: (%d,%d) vs (%d,%d)", i, sh.index, sh.offset, ref.index, ref.offset)
		}
		if i < len(small)-1 && sh.patterns != ref.patterns {
			t.Fatalf("non-final shard %d truncated: %d vs %d", i, sh.patterns, ref.patterns)
		}
	}
}

func TestShardSeedsDistinct(t *testing.T) {
	seen := make(map[int64]string)
	for stream := 0; stream < 4; stream++ {
		for idx := 0; idx < 256; idx++ {
			s := shardSeed(1999, stream, idx)
			if prev, dup := seen[s]; dup {
				t.Fatalf("seed collision: stream %d idx %d vs %s", stream, idx, prev)
			}
			seen[s] = ""
		}
	}
}

// TestRunShardsOrderedMergesInOrder checks that merge always observes
// shard results in index order regardless of worker count, and that the
// merged value is identical across worker counts.
func TestRunShardsOrderedMergesInOrder(t *testing.T) {
	const n = 37
	var ref []int
	for _, workers := range []int{1, 2, 5, 16} {
		var got []int
		merged := runShardsOrdered(n, workers,
			func(w, idx int) int { return idx * idx },
			func(idx int, r int) bool {
				got = append(got, r)
				return true
			})
		if merged != n {
			t.Fatalf("workers %d: merged %d of %d", workers, merged, n)
		}
		if ref == nil {
			ref = got
			continue
		}
		if !reflect.DeepEqual(ref, got) {
			t.Fatalf("workers %d: merge order differs: %v vs %v", workers, got, ref)
		}
	}
}

// TestRunShardsOrderedEarlyStopDeterministic checks that an early stop
// decided on the merged prefix cuts at the same shard for every worker
// count, and that no shard past the cut is ever merged.
func TestRunShardsOrderedEarlyStopDeterministic(t *testing.T) {
	const n, stopAt = 64, 23
	for _, workers := range []int{1, 3, 8} {
		var ran int32
		var mergedIdx []int
		merged := runShardsOrdered(n, workers,
			func(w, idx int) int {
				atomic.AddInt32(&ran, 1)
				return idx
			},
			func(idx int, r int) bool {
				mergedIdx = append(mergedIdx, idx)
				return idx < stopAt
			})
		if merged != stopAt+1 {
			t.Fatalf("workers %d: merged %d shards, want %d", workers, merged, stopAt+1)
		}
		for i, idx := range mergedIdx {
			if idx != i {
				t.Fatalf("workers %d: merged shard %d at position %d", workers, idx, i)
			}
		}
		if int(ran) < stopAt+1 {
			t.Fatalf("workers %d: only %d shards ran", workers, ran)
		}
	}
}

func TestClassAccReservoirBounded(t *testing.T) {
	var a classAcc
	const n = 7 * 700 // whole periods of 0..6, so the true mean is exactly 3
	for i := 0; i < n; i++ {
		a.add(float64(i % 7))
	}
	if len(a.dev) != epsilonReservoir {
		t.Fatalf("reservoir holds %d samples, want %d", len(a.dev), epsilonReservoir)
	}
	c := a.coef()
	if c.Count != n {
		t.Fatalf("count %d, want %d", c.Count, n)
	}
	if c.P != 3 { // mean of 0..6 repeated
		t.Fatalf("mean %v, want 3", c.P)
	}
	if c.Epsilon <= 0 {
		t.Fatalf("epsilon %v", c.Epsilon)
	}
}

func TestClassAccMergeMatchesSequential(t *testing.T) {
	samples := make([]float64, 2000)
	for i := range samples {
		samples[i] = float64((i*37)%101) / 10
	}
	var seq classAcc
	for _, q := range samples {
		seq.add(q)
	}
	// Shard the same stream and merge in order.
	var merged classAcc
	for off := 0; off < len(samples); off += 300 {
		end := off + 300
		if end > len(samples) {
			end = len(samples)
		}
		var part classAcc
		for _, q := range samples[off:end] {
			part.add(q)
		}
		merged.merge(&part)
	}
	// Counts and reservoirs are exact; the sum is merged from per-shard
	// partial sums, so it matches the single-stream sum only up to float
	// regrouping error. (Bit-identity across worker counts holds because
	// every worker count uses the SAME shard partition and merge order —
	// see TestCharacterizeWorkerCountIndependent.)
	if seq.count != merged.count {
		t.Fatalf("merged count %d != sequential %d", merged.count, seq.count)
	}
	if math.Abs(seq.sum-merged.sum) > 1e-9*math.Abs(seq.sum) {
		t.Fatalf("merged sum %v far from sequential %v", merged.sum, seq.sum)
	}
	if !reflect.DeepEqual(seq.dev, merged.dev) {
		t.Fatal("merged reservoir differs from sequential reservoir")
	}
}

// TestConvergenceZeroMeanClassConverges covers the fixed semantics: a
// class whose running mean is legitimately zero (or which received no new
// samples since the previous checkpoint) must not report an infinite
// relative change and block convergence forever.
func TestConvergenceZeroMeanClassConverges(t *testing.T) {
	basic := []classAcc{
		{count: 200, sum: 100}, // mean 0.5, stable
		{count: 80, sum: 0},    // legitimately zero-mean class
	}
	prev := []float64{0.5, 0}
	prevCount := []int64{150, 40}
	worst := convergenceWorst(basic, prev, prevCount)
	if math.IsInf(worst, 1) {
		t.Fatal("zero-mean class reported +Inf change")
	}
	if worst != 0 {
		t.Fatalf("worst change %v, want 0", worst)
	}
	// A class that first turns nonzero must still defer convergence.
	basic[1].count = 90
	basic[1].sum = 4
	worst = convergenceWorst(basic, prev, prevCount)
	if !math.IsInf(worst, 1) {
		t.Fatalf("newly nonzero class reported %v, want +Inf", worst)
	}
	// ... but only once: with a baseline established the next checkpoint
	// sees a finite relative change again.
	basic[1].count += 10
	worst = convergenceWorst(basic, prev, prevCount)
	if math.IsInf(worst, 1) {
		t.Fatal("settled class still reports +Inf")
	}
}
