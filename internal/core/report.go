package core

import (
	"fmt"
	"strings"
)

// Report renders a human-readable summary of a characterized model: the
// coefficient table with per-class deviations and sample counts, plus the
// aggregate statistics the paper reports for Figure 1.
func (m *Model) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Hd power macro-model %q (%d input bits)\n", m.Module, m.InputBits)
	basic, enhanced := m.NumCoefficients()
	fmt.Fprintf(&b, "coefficients: %d basic", basic)
	if m.HasEnhanced() {
		fmt.Fprintf(&b, ", %d enhanced (z-clusters: %s)", enhanced, zClusterLabel(m.ZClusters))
	}
	fmt.Fprintf(&b, "\ntotal avg deviation eps: %.1f%%\n\n", m.TotalDeviation()*100)

	fmt.Fprintf(&b, "%4s %12s %10s %8s\n", "Hd", "p_i", "eps_i %", "samples")
	maxP := 0.0
	for i := 1; i <= m.InputBits; i++ {
		if p := m.P(i); p > maxP {
			maxP = p
		}
	}
	for i := 1; i <= m.InputBits; i++ {
		c := m.Basic[i-1]
		bar := ""
		if maxP > 0 {
			bar = strings.Repeat("=", int(m.P(i)/maxP*24+0.5))
		}
		note := ""
		if c.Count == 0 {
			note = " (interpolated)"
		}
		fmt.Fprintf(&b, "%4d %12.3f %10.1f %8d  %s%s\n",
			i, m.P(i), c.Epsilon*100, c.Count, bar, note)
	}
	return b.String()
}

func zClusterLabel(z int) string {
	if z <= 0 {
		return "full resolution"
	}
	return fmt.Sprint(z)
}
