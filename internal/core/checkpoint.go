package core

// checkpoint.go makes characterization crash-safe. The expensive phase of
// the paper's flow is simulating millions of pattern pairs; a crash, OOM
// kill, or SIGTERM used to throw every merged shard away. A Checkpoint is
// a versioned, checksummed snapshot of the merged state — the per-class
// accumulators, the convergence tracker, and the shard cursor — written
// atomically (internal/atomicio) at merged-shard boundaries. Because the
// pattern stream is sharded deterministically by (Seed, stream, shard
// index), no RNG state needs saving: the shard cursor alone pins the
// stream, and a resumed run replays the remaining shards into the
// restored accumulators, producing bit-identical coefficients to an
// uninterrupted run.

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"strings"

	"hdpower/internal/atomicio"
)

// checkpointFormat versions the checkpoint schema; bump on layout change.
const checkpointFormat = "hdpower-checkpoint-v1"

// defaultCheckpointEvery is the periodic snapshot interval in merged
// shards (16 shards = 2048 patterns at the fixed shard size).
const defaultCheckpointEvery = 16

// CheckpointOptions configures crash-safe snapshots of a characterization
// run; the zero value disables them.
type CheckpointOptions struct {
	// Path is the checkpoint file; empty disables checkpointing.
	Path string
	// EveryShards is the snapshot interval in merged shards (default 16).
	// Snapshots are also written when the run is interrupted, so resuming
	// loses at most the work since the last merged shard boundary.
	EveryShards int
	// Resume loads an existing checkpoint at Path and continues from its
	// shard cursor. A checkpoint whose identity (module, seed, budget,
	// topology hash) does not match returns a *CheckpointMismatchError; a
	// corrupted checkpoint is quarantined and the run starts fresh. The
	// resumed run's model is bit-identical to an uninterrupted run.
	Resume bool
}

func (c *CheckpointOptions) every() int {
	if c.EveryShards > 0 {
		return c.EveryShards
	}
	return defaultCheckpointEvery
}

// AccState is the serialized form of one classAcc, shared by checkpoints
// and the fleet's partial-accumulator wire format (ShardResult). Sums and
// deviation samples are float64 and survive the JSON round trip bit-
// exactly (Go encodes the shortest representation that parses back to the
// same value), which the bit-identical resume guarantee rests on.
type AccState struct {
	Count int64     `json:"count"`
	Sum   float64   `json:"sum"`
	Dev   []float64 `json:"dev,omitempty"`
}

func (a *classAcc) state() AccState {
	return AccState{Count: a.count, Sum: a.sum, Dev: a.dev}
}

func (s AccState) acc() classAcc {
	return classAcc{count: s.Count, sum: s.Sum, dev: s.Dev}
}

// Checkpoint is one crash-safe snapshot of a characterization run at a
// merged-shard boundary.
type Checkpoint struct {
	// Format is checkpointFormat; other values are rejected on resume.
	Format string `json:"format"`

	// Identity: a resume must match all of these (see matches).
	Module      string  `json:"module"`
	InputBits   int     `json:"input_bits"`
	Seed        int64   `json:"seed"`
	Patterns    int     `json:"patterns"`
	Enhanced    bool    `json:"enhanced"`
	ZClusters   int     `json:"z_clusters"`
	CheckEvery  int     `json:"check_every"`
	ConvergeTol float64 `json:"converge_tol"`
	// Backend is the resolved simulation backend name ("event",
	// "bitparallel"). Charges accumulated under one backend must never be
	// merged with charges from another, so a resume under a different
	// backend is an identity mismatch.
	Backend string `json:"backend"`
	// TopoHash additionally pins the structural constants the stream
	// depends on (shard size, reservoir bound, seed mixing), so a build
	// of this package with different internals refuses the checkpoint
	// instead of resuming into a subtly different stream.
	TopoHash string `json:"topo_hash"`

	// Cursor: where the run stood when the snapshot was taken.
	Phase        string `json:"phase"`         // PhaseBasic or PhaseBiased
	ShardsMerged int    `json:"shards_merged"` // merged shards within Phase
	// UsedShards is the basic phase's final shard count (== the biased
	// phase's shard budget); meaningful once Phase == PhaseBiased.
	UsedShards     int  `json:"used_shards"`
	PatternsBasic  int  `json:"patterns_basic"`
	PatternsBiased int  `json:"patterns_biased"`
	EarlyStopped   bool `json:"early_stopped,omitempty"`
	EarlyStopAt    int  `json:"early_stop_at,omitempty"`

	// Merged accumulator state.
	Basic       []AccState   `json:"basic"`
	EnhancedAcc [][]AccState `json:"enhanced_acc,omitempty"`

	// Convergence tracker state.
	ConvNext      int       `json:"conv_next"`
	ConvPrev      []float64 `json:"conv_prev"`
	ConvPrevCount []int64   `json:"conv_prev_count"`
}

// CheckpointMismatchError reports a checkpoint that cannot resume the
// requested run because its identity differs.
type CheckpointMismatchError struct {
	// Path is the checkpoint file.
	Path string
	// Diffs lists the mismatched fields, "field: checkpoint has X, run wants Y".
	Diffs []string
}

func (e *CheckpointMismatchError) Error() string {
	return fmt.Sprintf("core: checkpoint %s does not match the requested run (%s); "+
		"characterize with matching options or delete the checkpoint",
		e.Path, strings.Join(e.Diffs, "; "))
}

// IsCheckpointMismatch reports whether err wraps a CheckpointMismatchError.
func IsCheckpointMismatch(err error) bool {
	var me *CheckpointMismatchError
	return errors.As(err, &me)
}

// charTopoHash pins the structural constants of the deterministic stream.
func charTopoHash(module string, inputBits int, opt *CharacterizeOptions) string {
	h := sha256.Sum256([]byte(fmt.Sprintf("%s|%s|%d|%d|%d|%v|%d|%d|%g|backend=%s|shard=%d|res=%d",
		checkpointFormat, module, inputBits, opt.Seed, opt.Patterns, opt.Enhanced,
		opt.ZClusters, opt.CheckEvery, opt.ConvergeTol, opt.Backend.Name(),
		shardPatterns, epsilonReservoir)))
	return hex.EncodeToString(h[:12])
}

// matches validates a loaded checkpoint against the requested run.
func (c *Checkpoint) matches(path, module string, inputBits int, opt *CharacterizeOptions) error {
	var diffs []string
	add := func(field string, got, want any) {
		diffs = append(diffs, fmt.Sprintf("%s: checkpoint has %v, run wants %v", field, got, want))
	}
	if c.Format != checkpointFormat {
		add("format", c.Format, checkpointFormat)
	}
	if c.Module != module {
		add("module", c.Module, module)
	}
	if c.InputBits != inputBits {
		add("input bits", c.InputBits, inputBits)
	}
	if c.Seed != opt.Seed {
		add("seed", c.Seed, opt.Seed)
	}
	if c.Patterns != opt.Patterns {
		add("patterns", c.Patterns, opt.Patterns)
	}
	if c.Enhanced != opt.Enhanced {
		add("enhanced", c.Enhanced, opt.Enhanced)
	}
	if c.ZClusters != opt.ZClusters {
		add("z_clusters", c.ZClusters, opt.ZClusters)
	}
	if c.CheckEvery != opt.CheckEvery {
		add("check_every", c.CheckEvery, opt.CheckEvery)
	}
	if c.ConvergeTol != opt.ConvergeTol {
		add("converge_tol", c.ConvergeTol, opt.ConvergeTol)
	}
	if c.Backend != opt.Backend.Name() {
		add("backend", c.Backend, opt.Backend.Name())
	}
	if want := charTopoHash(module, inputBits, opt); len(diffs) == 0 && c.TopoHash != want {
		add("topology hash", c.TopoHash, want)
	}
	if len(diffs) == 0 {
		return nil
	}
	return &CheckpointMismatchError{Path: path, Diffs: diffs}
}

// sanity checks the structural integrity of a checkpoint that already
// passed the checksum and identity checks; a violation means the file was
// produced by a buggy or foreign writer and must not be trusted.
func (c *Checkpoint) sanity(model *Model, shards int) error {
	switch c.Phase {
	case PhaseBasic:
		if c.ShardsMerged < 0 || c.ShardsMerged > shards {
			return fmt.Errorf("basic shard cursor %d outside [0, %d]", c.ShardsMerged, shards)
		}
	case PhaseBiased:
		if !c.Enhanced {
			return fmt.Errorf("biased phase in a non-enhanced run")
		}
		if c.UsedShards < 0 || c.UsedShards > shards {
			return fmt.Errorf("used shards %d outside [0, %d]", c.UsedShards, shards)
		}
		if c.ShardsMerged < 0 || c.ShardsMerged > c.UsedShards {
			return fmt.Errorf("biased shard cursor %d outside [0, %d]", c.ShardsMerged, c.UsedShards)
		}
	default:
		return fmt.Errorf("unknown phase %q", c.Phase)
	}
	if len(c.Basic) != model.InputBits {
		return fmt.Errorf("%d basic accumulators, want %d", len(c.Basic), model.InputBits)
	}
	if c.Enhanced {
		if len(c.EnhancedAcc) != model.InputBits {
			return fmt.Errorf("%d enhanced rows, want %d", len(c.EnhancedAcc), model.InputBits)
		}
		for i := 1; i <= model.InputBits; i++ {
			if len(c.EnhancedAcc[i-1]) != model.NumZBuckets(i) {
				return fmt.Errorf("enhanced row %d has %d buckets, want %d",
					i, len(c.EnhancedAcc[i-1]), model.NumZBuckets(i))
			}
		}
	}
	if len(c.ConvPrev) != model.InputBits || len(c.ConvPrevCount) != model.InputBits {
		return fmt.Errorf("convergence state sized %d/%d, want %d",
			len(c.ConvPrev), len(c.ConvPrevCount), model.InputBits)
	}
	return nil
}

// LoadCheckpoint reads and checksum-verifies a checkpoint file. Corrupted
// files (bad checksum, missing trailer, invalid JSON) are quarantined to
// <path>.corrupt and reported via *atomicio.CorruptError; a missing file
// returns an error satisfying os.IsNotExist.
func LoadCheckpoint(path string) (*Checkpoint, error) {
	cp := new(Checkpoint)
	err := atomicio.ReadJSON(path, cp)
	switch {
	case err == nil:
		return cp, nil
	case errors.Is(err, atomicio.ErrNoChecksum):
		// Checkpoints are always written with a trailer; a file without
		// one was truncated before the trailer landed, or hand-edited.
		return nil, atomicio.MarkCorrupt(path, "missing checksum trailer")
	default:
		return nil, err
	}
}

// checkpointer owns the snapshot lifecycle of one Characterize call.
type checkpointer struct {
	path  string
	every int
	base  Checkpoint // identity fields, filled once
	hooks *Hooks
	since int // shards merged since the last snapshot
}

func newCheckpointer(opt *CharacterizeOptions, module string, inputBits int) *checkpointer {
	return &checkpointer{
		path:  opt.Checkpoint.Path,
		every: opt.Checkpoint.every(),
		hooks: opt.Hooks,
		base:  baseCheckpoint(module, inputBits, opt),
	}
}

// baseCheckpoint fills the identity fields shared by every snapshot of a
// run — file checkpoints and fleet ledger snapshots alike.
func baseCheckpoint(module string, inputBits int, opt *CharacterizeOptions) Checkpoint {
	return Checkpoint{
		Format:      checkpointFormat,
		Module:      module,
		InputBits:   inputBits,
		Seed:        opt.Seed,
		Patterns:    opt.Patterns,
		Enhanced:    opt.Enhanced,
		ZClusters:   opt.ZClusters,
		CheckEvery:  opt.CheckEvery,
		ConvergeTol: opt.ConvergeTol,
		Backend:     opt.Backend.Name(),
		TopoHash:    charTopoHash(module, inputBits, opt),
	}
}

// cursor is the save-time position of the run.
type cursor struct {
	phase          string
	shardsMerged   int
	usedShards     int
	patternsBasic  int
	patternsBiased int
	earlyStopped   bool
	earlyStopAt    int
}

// save snapshots the merged state at a shard boundary. Failures are
// reported through the CheckpointSaved hook and never fail the run: a
// characterization with a broken checkpoint disk still produces a model.
func (ck *checkpointer) save(cur cursor, basic []classAcc, enhanced [][]classAcc, conv *convTracker) {
	if ck == nil {
		return
	}
	cp := ck.base
	cp.Phase = cur.phase
	cp.ShardsMerged = cur.shardsMerged
	cp.UsedShards = cur.usedShards
	cp.PatternsBasic = cur.patternsBasic
	cp.PatternsBiased = cur.patternsBiased
	cp.EarlyStopped = cur.earlyStopped
	cp.EarlyStopAt = cur.earlyStopAt
	cp.Basic = make([]AccState, len(basic))
	for i := range basic {
		cp.Basic[i] = basic[i].state()
	}
	if enhanced != nil {
		cp.EnhancedAcc = make([][]AccState, len(enhanced))
		for i := range enhanced {
			row := make([]AccState, len(enhanced[i]))
			for z := range enhanced[i] {
				row[z] = enhanced[i][z].state()
			}
			cp.EnhancedAcc[i] = row
		}
	}
	cp.ConvNext = conv.nextCheck
	cp.ConvPrev = conv.prev
	cp.ConvPrevCount = conv.prevCount
	err := atomicio.WriteJSON(ck.path, &cp)
	ck.since = 0
	ck.hooks.checkpointSaved(err)
}

// maybeSave counts a merged shard and snapshots at the periodic interval.
func (ck *checkpointer) maybeSave(cur cursor, basic []classAcc, enhanced [][]classAcc, conv *convTracker) {
	if ck == nil {
		return
	}
	ck.since++
	if ck.since >= ck.every {
		ck.save(cur, basic, enhanced, conv)
	}
}

// remove deletes the checkpoint after a successful run, so the next run
// of the same spec starts clean instead of resuming into a finished state.
func (ck *checkpointer) remove() {
	if ck == nil {
		return
	}
	_ = os.Remove(ck.path)
}

// restore rehydrates the merged state from a checkpoint.
func (c *Checkpoint) restore(basic []classAcc, enhanced [][]classAcc, conv *convTracker) {
	for i := range basic {
		basic[i] = c.Basic[i].acc()
	}
	if enhanced != nil {
		for i := range enhanced {
			for z := range enhanced[i] {
				enhanced[i][z] = c.EnhancedAcc[i][z].acc()
			}
		}
	}
	conv.nextCheck = c.ConvNext
	copy(conv.prev, c.ConvPrev)
	copy(conv.prevCount, c.ConvPrevCount)
}

// totalShardsMerged is the checkpoint's merged-shard total across phases.
func (c *Checkpoint) totalShardsMerged() int {
	if c.Phase == PhaseBiased {
		return c.UsedShards + c.ShardsMerged
	}
	return c.ShardsMerged
}

// loadResume resolves the Resume option: it returns the checkpoint to
// continue from, nil for a fresh start (no file, or a quarantined corrupt
// file), or an error for an identity mismatch or unreadable file.
func loadResume(opt *CharacterizeOptions, module string, inputBits int, model *Model, shards int) (*Checkpoint, error) {
	co := opt.Checkpoint
	if co.Path == "" || !co.Resume {
		return nil, nil
	}
	cp, err := LoadCheckpoint(co.Path)
	switch {
	case err == nil:
	case os.IsNotExist(err):
		return nil, nil
	case atomicio.IsCorrupt(err):
		// Quarantined by the loader; the checkpoint was an optimization,
		// so degrade to a fresh (slower, still correct) run.
		return nil, nil
	default:
		return nil, fmt.Errorf("core: checkpoint %s: %w", co.Path, err)
	}
	if err := cp.matches(co.Path, module, inputBits, opt); err != nil {
		return nil, err
	}
	if err := cp.sanity(model, shards); err != nil {
		// Checksum and identity passed but the structure is impossible:
		// quarantine and start fresh rather than resuming into garbage.
		_ = atomicio.MarkCorrupt(co.Path, err.Error())
		return nil, nil
	}
	return cp, nil
}
