package core

import (
	"sync"
)

// Characterization parallelism works by sharding the pattern stream, not
// by sharing one stream between workers: the run is split into fixed-size
// shards, shard i draws its patterns from an independent PairSource seeded
// by mix(seed, stream, i), and every shard carries its own partial
// accumulators. Workers claim shards in any order, but partials are merged
// strictly in shard-index order, so the merged sums, bounded deviation
// reservoirs, and any early-stop decision are byte-identical for every
// worker count — Workers only changes wall-clock time, never the model.

// shardPatterns is the fixed shard size in characterization pairs. It is
// deliberately independent of the worker count (that is what makes results
// worker-count-invariant) and small enough that modest pattern budgets
// still fan out over several workers, yet large enough that per-shard
// bookkeeping is negligible against thousands of gate evaluations per
// pattern.
const shardPatterns = 128

// shard is one deterministic slice of the characterization stream.
type shard struct {
	index    int // shard index; seeds the shard's PairSource
	offset   int // absolute pattern offset of the shard's first pair
	patterns int // number of pairs in this shard
}

// shardPlan splits a pattern budget into fixed-size shards. Smaller
// budgets are prefixes of larger ones (in shards, with an identically
// seeded but truncated final shard), which the budget-convergence
// experiments rely on.
func shardPlan(patterns int) []shard {
	plan := make([]shard, 0, (patterns+shardPatterns-1)/shardPatterns)
	for off := 0; off < patterns; off += shardPatterns {
		n := shardPatterns
		if off+n > patterns {
			n = patterns - off
		}
		plan = append(plan, shard{index: len(plan), offset: off, patterns: n})
	}
	return plan
}

// shardSeed derives the PairSource seed of one shard from the run seed, a
// stream discriminator (basic, biased, port A/B, …), and the shard index.
// Chaining the splitmix64 finalizer per component keeps neighboring
// (seed, stream, index) triples uncorrelated and collision-free.
func shardSeed(seed int64, stream, index int) int64 {
	const golden = 0x9e3779b97f4a7c15
	x := mix64(uint64(seed) + golden*uint64(stream+1))
	return int64(mix64(x + golden*uint64(index+1)))
}

// mix64 is the splitmix64 finalizer.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// runShardsOrdered executes run(worker, idx) for every shard index in
// [0, n) on up to `workers` goroutines and feeds the results to merge in
// strict shard-index order. merge returning false stops the run early:
// later shards are discarded even if already computed, so the merged
// prefix — and with it the early-stop point — is a pure function of the
// shard contents, independent of the worker count and of scheduling.
// It returns the number of shards merged.
func runShardsOrdered[T any](n, workers int, run func(worker, idx int) T, merge func(idx int, r T) bool) int {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if !merge(i, run(0, i)) {
				return i + 1
			}
		}
		return n
	}

	type item struct {
		idx int
		res T
	}
	jobs := make(chan int, n)
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	out := make(chan item, workers)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for idx := range jobs {
				select {
				case <-stop:
					return
				default:
				}
				select {
				case out <- item{idx: idx, res: run(w, idx)}:
				case <-stop:
					return
				}
			}
		}(w)
	}
	go func() {
		wg.Wait()
		close(out)
	}()

	pending := make(map[int]T)
	next := 0
	stopped := false
	for it := range out {
		if stopped {
			continue // drain in-flight results after an early stop
		}
		pending[it.idx] = it.res
		for {
			res, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			cont := merge(next, res)
			next++
			if !cont {
				stopped = true
				close(stop)
				break
			}
		}
	}
	return next
}
