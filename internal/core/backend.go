package core

// backend.go abstracts the simulation engine characterization drives.
// The characterizer only ever needs one operation — simulate a batch of
// (u, v) transition pairs and report the charge each pair consumed — so
// that is the whole Backend interface. Two implementations exist: the
// event-driven power.Meter (the golden reference, with per-gate transport
// delays and exact glitch activity) and the bit-parallel internal/bitsim
// engine (64 pairs per machine word, unit-delay glitch approximation,
// an order of magnitude faster). Because the deterministic shard plan,
// ordered merge, checkpoints and bit-identical-resume guarantees live
// above this interface, they hold unchanged for every backend; switching
// backends changes the reference charges (and therefore the fitted
// coefficients), never the determinism contract.

import (
	"fmt"

	"hdpower/internal/bitsim"
	"hdpower/internal/logic"
	"hdpower/internal/netlist"
	"hdpower/internal/power"
)

// BackendKind selects the characterization simulation backend.
type BackendKind string

const (
	// BackendAuto (the zero value) keeps the caller's meter: existing
	// callers that hand Characterize an event-driven meter keep getting
	// event-driven reference charges, bit-identical to prior releases.
	BackendAuto BackendKind = ""
	// BackendEvent characterizes through the scalar event-driven engine:
	// per-gate transport delays, exact glitch counting. The golden
	// reference, and the slowest.
	BackendEvent BackendKind = "event"
	// BackendBitParallel characterizes through internal/bitsim: 64
	// patterns per machine word with unit-delay glitch approximation.
	// The fast default for bulk characterization.
	BackendBitParallel BackendKind = "bitparallel"
)

// ParseBackendKind validates a user-supplied backend name (CLI flags,
// serve configs). The empty string parses to BackendAuto.
func ParseBackendKind(s string) (BackendKind, error) {
	switch k := BackendKind(s); k {
	case BackendAuto, BackendEvent, BackendBitParallel:
		return k, nil
	default:
		return BackendAuto, fmt.Errorf("core: unknown backend %q (want %q or %q)",
			s, BackendEvent, BackendBitParallel)
	}
}

// Name resolves the kind to the concrete backend name recorded in
// checkpoints, manifests and metric labels; BackendAuto resolves to the
// event reference.
func (k BackendKind) Name() string {
	if k == BackendAuto {
		return string(BackendEvent)
	}
	return string(k)
}

// Backend is a simulation engine the characterizer can drive: it owns
// settled circuit state and prices transition pairs. Implementations are
// not safe for concurrent use; Clone returns an independent backend over
// the same immutable topology for use on another goroutine (the worker
// pool contract shared with power.Meter and sim.Simulator).
type Backend interface {
	// NumInputBits is the input vector width of the underlying module.
	NumInputBits() int
	// Charges simulates each pair (us[j], vs[j]) independently — settle
	// on u, switch to v — and writes the consumed charge into q[j].
	Charges(us, vs []logic.Word, q []float64)
	// Clone returns an independent backend for another goroutine.
	Clone() Backend
	// Name returns the stable backend name ("event", "bitparallel").
	Name() string
}

// meterBackend adapts the scalar power.Meter (event-driven or any other
// sim engine) to the batch interface. Pairs run in order through the
// meter exactly as the pre-Backend characterizer did, so models fitted
// through it are bit-identical to prior releases.
type meterBackend struct {
	m *power.Meter
}

// NewMeterBackend wraps a charge meter as a characterization backend.
func NewMeterBackend(m *power.Meter) Backend { return meterBackend{m: m} }

func (b meterBackend) NumInputBits() int { return b.m.NumInputBits() }

func (b meterBackend) Charges(us, vs []logic.Word, q []float64) {
	for j := range us {
		b.m.Reset(us[j])
		q[j] = b.m.Cycle(vs[j])
	}
}

func (b meterBackend) Clone() Backend { return meterBackend{m: b.m.Clone()} }

func (b meterBackend) Name() string { return string(BackendEvent) }

// bitsimBackend adapts the 64-lane bit-parallel meter: shard-sized pair
// batches are chunked into full machine words. The shard size (128) is a
// multiple of bitsim.Lanes, so full shards split into exactly two full
// batches with no ragged remainder on the hot path.
type bitsimBackend struct {
	m *bitsim.Meter
}

// NewBitParallelBackend builds a bit-parallel characterization backend
// over the netlist, with unit-delay glitch approximation.
func NewBitParallelBackend(nl *netlist.Netlist) (Backend, error) {
	m, err := bitsim.New(nl, bitsim.UnitDelay)
	if err != nil {
		return nil, err
	}
	return bitsimBackend{m: m}, nil
}

func (b bitsimBackend) NumInputBits() int { return b.m.NumInputBits() }

func (b bitsimBackend) Charges(us, vs []logic.Word, q []float64) {
	for off := 0; off < len(us); off += bitsim.Lanes {
		end := off + bitsim.Lanes
		if end > len(us) {
			end = len(us)
		}
		b.m.CycleBatch(us[off:end], vs[off:end], q[off:end])
	}
}

func (b bitsimBackend) Clone() Backend { return bitsimBackend{m: b.m.Clone()} }

func (b bitsimBackend) Name() string { return string(BackendBitParallel) }

// resolveBackend turns the Backend option plus the caller's meter into a
// concrete engine. BackendAuto and BackendEvent wrap the meter itself —
// whatever sim engine it was built with — so the caller's engine choice
// stays authoritative; BackendBitParallel builds a bit-parallel meter
// over the same netlist.
func (o *CharacterizeOptions) resolveBackend(meter *power.Meter) (Backend, error) {
	switch o.Backend {
	case BackendAuto, BackendEvent:
		return meterBackend{m: meter}, nil
	case BackendBitParallel:
		return NewBitParallelBackend(meter.Simulator().Netlist())
	default:
		return nil, fmt.Errorf("core: unknown backend %q (want %q or %q)",
			o.Backend, BackendEvent, BackendBitParallel)
	}
}

// backendPool returns per-worker backends: slot 0 is the resolved
// backend, the rest are clones sharing its immutable topology.
func backendPool(b Backend, workers int) []Backend {
	pool := make([]Backend, workers)
	pool[0] = b
	for w := 1; w < workers; w++ {
		pool[w] = b.Clone()
	}
	return pool
}
