package core

import (
	"encoding/json"
	"math"
	"testing"

	"hdpower/internal/logic"
	"hdpower/internal/power"
	"hdpower/internal/stimuli"
)

func handPortModel() *PortModel {
	pm := &PortModel{Module: "hand", WidthA: 2, WidthB: 2}
	pm.Coeffs = make([][]Coef, 3)
	for ia := range pm.Coeffs {
		pm.Coeffs[ia] = make([]Coef, 3)
		for ib := range pm.Coeffs[ia] {
			if ia == 0 && ib == 0 {
				continue
			}
			pm.Coeffs[ia][ib] = Coef{P: float64(10*ia + ib), Count: 5}
		}
	}
	return pm
}

func TestPortModelP(t *testing.T) {
	pm := handPortModel()
	if pm.P(0, 0) != 0 {
		t.Error("P(0,0) != 0")
	}
	if pm.P(1, 2) != 12 {
		t.Errorf("P(1,2) = %v", pm.P(1, 2))
	}
	if pm.P(2, 0) != 20 {
		t.Errorf("P(2,0) = %v", pm.P(2, 0))
	}
}

func TestPortModelFallbackRing(t *testing.T) {
	pm := handPortModel()
	pm.Coeffs[1][1] = Coef{} // unobserved; ring-1 neighbors: (0,1)=1, (2,1)=21, (1,0)=10, (1,2)=12
	want := (1.0 + 21 + 10 + 12) / 4
	if got := pm.P(1, 1); math.Abs(got-want) > 1e-12 {
		t.Errorf("fallback P(1,1) = %v, want %v", got, want)
	}
}

func TestPortModelPOutOfRangePanics(t *testing.T) {
	pm := handPortModel()
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range accepted")
		}
	}()
	pm.P(3, 0)
}

func TestPortModelEstimate(t *testing.T) {
	pm := handPortModel()
	got, err := pm.Estimate([]int{0, 1, 2}, []int{0, 2, 1})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0, 12, 21}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("estimate[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if _, err := pm.Estimate([]int{1}, []int{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestPortModelJSONRoundTrip(t *testing.T) {
	pm := handPortModel()
	data, err := json.Marshal(pm)
	if err != nil {
		t.Fatal(err)
	}
	back, err := LoadPortModel(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.P(2, 1) != pm.P(2, 1) {
		t.Error("round trip lost coefficients")
	}
	if _, err := LoadPortModel([]byte(`{"width_a":0}`)); err == nil {
		t.Error("invalid port model accepted")
	}
}

func TestCharacterizePortsCoverage(t *testing.T) {
	meter := meterFor(t, "csa-multiplier", 4) // ports 4+4
	pm, err := CharacterizePorts(meter, "csa4", 4, 4, CharacterizeOptions{
		Patterns: 6000, Seed: 31,
	})
	if err != nil {
		t.Fatal(err)
	}
	if pm.NumCoefficients() != 24 {
		t.Errorf("coefficient count = %d", pm.NumCoefficients())
	}
	covered := 0
	for ia := 0; ia <= 4; ia++ {
		for ib := 0; ib <= 4; ib++ {
			if ia == 0 && ib == 0 {
				continue
			}
			if pm.Coeffs[ia][ib].Count > 0 {
				covered++
			}
		}
	}
	if covered < 20 {
		t.Errorf("only %d of 24 port classes covered", covered)
	}
	// Edge classes (one port frozen) must be covered — they're the whole
	// point of the port model.
	if pm.Coeffs[4][0].Count == 0 || pm.Coeffs[0][4].Count == 0 {
		t.Error("edge classes uncovered")
	}
}

func TestCharacterizePortsWidthValidation(t *testing.T) {
	meter := meterFor(t, "csa-multiplier", 4)
	if _, err := CharacterizePorts(meter, "x", 3, 4, CharacterizeOptions{Patterns: 10}); err == nil {
		t.Error("mismatched port widths accepted")
	}
}

// The port model must beat the total-Hd model when the two ports carry
// asymmetric streams — here a live data port against a frozen
// coefficient port, the FIR situation from examples/firfilter.
func TestPortModelBeatsBasicOnFrozenPort(t *testing.T) {
	width := 4
	basic, err := Characterize(meterFor(t, "csa-multiplier", width), "csa4",
		CharacterizeOptions{Patterns: 6000, Seed: 41})
	if err != nil {
		t.Fatal(err)
	}
	pm, err := CharacterizePorts(meterFor(t, "csa-multiplier", width), "csa4",
		width, width, CharacterizeOptions{Patterns: 6000, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}

	// Evaluation stream: random data on port A, constant 0b0101 on B.
	eval := meterFor(t, "csa-multiplier", width)
	constB := logic.FromUint(5, width)
	var words []logic.Word
	src := stimuli.Random(width, 77)
	for i := 0; i < 2001; i++ {
		words = append(words, src.Next().Concat(constB))
	}
	tr, err := eval.Run(words)
	if err != nil {
		t.Fatal(err)
	}
	hdA := make([]int, tr.Len())
	hdB := make([]int, tr.Len())
	for j := 1; j < len(words); j++ {
		hdA[j-1] = logic.Hd(words[j-1].Slice(0, width), words[j].Slice(0, width))
		hdB[j-1] = logic.Hd(words[j-1].Slice(width, 2*width), words[j].Slice(width, 2*width))
	}
	basicEst := basic.EstimateBasic(tr.Hd)
	portEst, err := pm.Estimate(hdA, hdB)
	if err != nil {
		t.Fatal(err)
	}
	basicErr, err := power.AvgError(basicEst, tr.Q)
	if err != nil {
		t.Fatal(err)
	}
	portErr, err := power.AvgError(portEst, tr.Q)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(portErr) >= math.Abs(basicErr) {
		t.Errorf("port model |%.1f%%| not better than basic |%.1f%%| with frozen port",
			portErr, basicErr)
	}
	if math.Abs(portErr) > 12 {
		t.Errorf("port model error %.1f%% too large", portErr)
	}
}
