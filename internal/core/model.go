// Package core implements the paper's contribution: the Hamming-distance
// power macro-model for datapath components.
//
// The basic model (paper eq. 2) assigns one charge coefficient p_i to each
// switching-event class E_i, where i is the Hamming-distance of the two
// consecutive input vectors of a cycle. The enhanced model (eq. 3) refines
// each class by the number of stable-zero input bits z, giving classes
// E_{i,z} and up to (m²+m)/2 coefficients, optionally clustered along the
// z axis. Coefficients come from a characterization run against the
// reference charge simulator (internal/power); estimation then needs only
// the (Hd, stable-zeros) pair of each cycle — never the netlist.
package core

import (
	"encoding/json"
	"fmt"
	"math"
)

// Coef is one characterized coefficient: the average charge of its
// switching-event class and the average absolute deviation within the
// class (paper eq. 4 and 5).
type Coef struct {
	// P is the average charge of the class (eq. 4); 0 if unobserved.
	P float64 `json:"p"`
	// Epsilon is the average absolute relative deviation of class members
	// from P (eq. 5), as a fraction (0.15 = 15%). 0 if unobserved.
	Epsilon float64 `json:"epsilon"`
	// Count is the number of characterization samples in the class.
	Count int `json:"count"`
}

// Model is a characterized Hd power macro-model for one module instance.
type Model struct {
	// Module names the characterized module, e.g. "csa-multiplier-8x8".
	Module string `json:"module"`
	// InputBits is m, the total number of module input bits.
	InputBits int `json:"input_bits"`
	// Basic holds the basic-model coefficients; Basic[i-1] is p_i for
	// Hamming-distance i in 1..m.
	Basic []Coef `json:"basic"`
	// Enhanced, if non-nil, holds the enhanced-model coefficients:
	// Enhanced[i-1][zb] is p_{i,zb} for Hd i and z-bucket zb.
	Enhanced [][]Coef `json:"enhanced,omitempty"`
	// ZClusters is the number of stable-zero buckets per Hd class used by
	// the enhanced model; 0 means full resolution (one bucket per exact
	// stable-zero count, giving the paper's (m²+m)/2 classes).
	ZClusters int `json:"z_clusters,omitempty"`
}

// HasEnhanced reports whether enhanced coefficients are available.
func (m *Model) HasEnhanced() bool { return m.Enhanced != nil }

// NumZBuckets returns the number of stable-zero buckets for Hd class i.
// For Hd = i the stable-zero count ranges over 0..m-i, so full resolution
// needs m-i+1 buckets.
func (m *Model) NumZBuckets(i int) int {
	full := m.InputBits - i + 1
	if m.ZClusters <= 0 || m.ZClusters >= full {
		return full
	}
	return m.ZClusters
}

// ZBucket maps an exact stable-zero count z to its bucket index for Hd
// class i.
func (m *Model) ZBucket(i, z int) int {
	full := m.InputBits - i + 1
	nb := m.NumZBuckets(i)
	if nb == full {
		return z
	}
	b := z * nb / full
	if b >= nb {
		b = nb - 1
	}
	return b
}

// NumCoefficients returns the coefficient counts (basic, enhanced). For
// full z resolution the enhanced count is (m²+m)/2, matching the paper.
func (m *Model) NumCoefficients() (basic, enhanced int) {
	basic = len(m.Basic)
	if m.Enhanced != nil {
		for i := 1; i <= m.InputBits; i++ {
			enhanced += m.NumZBuckets(i)
		}
	}
	return basic, enhanced
}

func (m *Model) checkHd(i int) {
	if i < 0 || i > m.InputBits {
		panic(fmt.Sprintf("core: Hd %d out of range [0,%d]", i, m.InputBits))
	}
}

// P returns the basic coefficient for Hamming-distance i (p_i). For i = 0
// it returns 0 (no input activity, no switching in a combinational
// module). Unobserved classes are filled by linear interpolation between
// the nearest observed neighbors (constant extrapolation at the ends).
func (m *Model) P(i int) float64 {
	m.checkHd(i)
	if i == 0 {
		return 0
	}
	c := m.Basic[i-1]
	if c.Count > 0 {
		return c.P
	}
	// Walk outwards to the nearest observed classes.
	lo, hi := -1, -1
	for j := i - 1; j >= 1; j-- {
		if m.Basic[j-1].Count > 0 {
			lo = j
			break
		}
	}
	for j := i + 1; j <= m.InputBits; j++ {
		if m.Basic[j-1].Count > 0 {
			hi = j
			break
		}
	}
	switch {
	case lo == -1 && hi == -1:
		return 0
	case lo == -1:
		// interpolate towards p_0 = 0
		return m.Basic[hi-1].P * float64(i) / float64(hi)
	case hi == -1:
		return m.Basic[lo-1].P
	default:
		f := float64(i-lo) / float64(hi-lo)
		return m.Basic[lo-1].P*(1-f) + m.Basic[hi-1].P*f
	}
}

// PEnhanced returns the enhanced coefficient for Hd i and exact
// stable-zero count z, falling back to the basic coefficient when the
// class was not observed during characterization or the model has no
// enhanced table.
func (m *Model) PEnhanced(i, z int) float64 {
	m.checkHd(i)
	if i == 0 {
		return 0
	}
	if z < 0 || z > m.InputBits-i {
		panic(fmt.Sprintf("core: stable-zero count %d out of range [0,%d] for Hd %d",
			z, m.InputBits-i, i))
	}
	if m.Enhanced == nil {
		return m.P(i)
	}
	c := m.Enhanced[i-1][m.ZBucket(i, z)]
	if c.Count == 0 {
		return m.P(i)
	}
	return c.P
}

// InterpP evaluates the basic coefficient table at a real-valued
// Hamming-distance by piecewise-linear interpolation through the points
// (0, 0), (1, p_1), …, (m, p_m) — the interpolation Section 6.2 of the
// paper calls for when estimating from the average Hamming-distance.
// Values outside [0, m] are clamped.
func (m *Model) InterpP(x float64) float64 {
	if x <= 0 {
		return 0
	}
	if x >= float64(m.InputBits) {
		return m.P(m.InputBits)
	}
	lo := int(math.Floor(x))
	f := x - float64(lo)
	return m.P(lo)*(1-f) + m.P(lo+1)*f
}

// EstimateBasic predicts the per-cycle charges for a series of cycle
// Hamming-distances using the basic model (eq. 2).
func (m *Model) EstimateBasic(hds []int) []float64 {
	out := make([]float64, len(hds))
	for j, i := range hds {
		out[j] = m.P(i)
	}
	return out
}

// EstimateEnhanced predicts per-cycle charges from (Hd, stable-zeros)
// pairs using the enhanced model (eq. 3), falling back per class to the
// basic model.
func (m *Model) EstimateEnhanced(hds, stableZeros []int) ([]float64, error) {
	if len(hds) != len(stableZeros) {
		return nil, fmt.Errorf("core: series length mismatch %d vs %d", len(hds), len(stableZeros))
	}
	out := make([]float64, len(hds))
	for j := range hds {
		out[j] = m.PEnhanced(hds[j], stableZeros[j])
	}
	return out, nil
}

// AvgFromDist returns the expected per-cycle charge under an Hd
// distribution: Σ_i p(Hd=i)·p_i, the Section 6.3 estimator. dist[i] is
// the probability of Hamming-distance i and must have m+1 entries.
func (m *Model) AvgFromDist(dist []float64) (float64, error) {
	if len(dist) != m.InputBits+1 {
		return 0, fmt.Errorf("core: distribution has %d entries, want %d",
			len(dist), m.InputBits+1)
	}
	var s float64
	for i, p := range dist {
		s += p * m.P(i)
	}
	return s, nil
}

// TotalDeviation returns the paper's aggregate coefficient deviation
// ε = (1/m)·Σ ε_i over the observed basic classes, as a fraction.
func (m *Model) TotalDeviation() float64 {
	var s float64
	n := 0
	for _, c := range m.Basic {
		if c.Count > 0 {
			s += c.Epsilon
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return s / float64(n)
}

// Validate checks structural invariants of a (possibly deserialized)
// model.
func (m *Model) Validate() error {
	if m.InputBits <= 0 {
		return fmt.Errorf("core: model %q has input bits %d", m.Module, m.InputBits)
	}
	if len(m.Basic) != m.InputBits {
		return fmt.Errorf("core: model %q has %d basic coefficients, want %d",
			m.Module, len(m.Basic), m.InputBits)
	}
	for i, c := range m.Basic {
		if c.Count < 0 || c.P < 0 || math.IsNaN(c.P) || math.IsInf(c.P, 0) {
			return fmt.Errorf("core: model %q basic class %d invalid: %+v", m.Module, i+1, c)
		}
	}
	if m.Enhanced != nil {
		if len(m.Enhanced) != m.InputBits {
			return fmt.Errorf("core: model %q has %d enhanced rows, want %d",
				m.Module, len(m.Enhanced), m.InputBits)
		}
		for i := 1; i <= m.InputBits; i++ {
			if len(m.Enhanced[i-1]) != m.NumZBuckets(i) {
				return fmt.Errorf("core: model %q enhanced row %d has %d buckets, want %d",
					m.Module, i, len(m.Enhanced[i-1]), m.NumZBuckets(i))
			}
		}
	}
	return nil
}

// MarshalJSON includes a format marker for forward compatibility.
func (m *Model) MarshalJSON() ([]byte, error) {
	type alias Model
	return json.Marshal(struct {
		Format string `json:"format"`
		*alias
	}{Format: "hdpower-model-v1", alias: (*alias)(m)})
}

// LoadModel deserializes and validates a model produced by MarshalJSON
// (or plain JSON with the same shape).
func LoadModel(data []byte) (*Model, error) {
	var m Model
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return &m, nil
}
