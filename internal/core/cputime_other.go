//go:build !unix

package core

// processCPUSeconds is unavailable without rusage; manifests report 0.
func processCPUSeconds() float64 { return 0 }
