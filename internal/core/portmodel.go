package core

import (
	"encoding/json"
	"fmt"

	"hdpower/internal/logic"
	"hdpower/internal/power"
)

// PortModel is a port-resolved refinement of the Hd macro-model for
// two-operand modules: instead of one class per total Hamming-distance it
// keeps one coefficient per (Hd_A, Hd_B) pair of per-port distances. The
// paper notes that the basic model can be "enhanced by increasing the
// number of switching event classes … considering word level statistics
// or additional bit level information"; port resolution is exactly such
// an enhancement, and it captures modules whose two operands drive
// asymmetric logic (e.g. the multiplicand vs multiplier ports of an
// array multiplier, or a datapath port against a near-constant
// coefficient port).
type PortModel struct {
	// Module names the characterized module.
	Module string `json:"module"`
	// WidthA and WidthB are the two port widths; port A occupies the low
	// bits of the packed input vector.
	WidthA int `json:"width_a"`
	WidthB int `json:"width_b"`
	// Coeffs[ia][ib] is the coefficient for Hd_A = ia, Hd_B = ib.
	Coeffs [][]Coef `json:"coeffs"`
}

// NumCoefficients returns the size of the class table, excluding the
// trivial (0,0) class.
func (pm *PortModel) NumCoefficients() int {
	return (pm.WidthA+1)*(pm.WidthB+1) - 1
}

// Validate checks structural invariants.
func (pm *PortModel) Validate() error {
	if pm.WidthA <= 0 || pm.WidthB <= 0 {
		return fmt.Errorf("core: port model %q widths %dx%d", pm.Module, pm.WidthA, pm.WidthB)
	}
	if len(pm.Coeffs) != pm.WidthA+1 {
		return fmt.Errorf("core: port model %q has %d rows, want %d",
			pm.Module, len(pm.Coeffs), pm.WidthA+1)
	}
	for ia, row := range pm.Coeffs {
		if len(row) != pm.WidthB+1 {
			return fmt.Errorf("core: port model %q row %d has %d cols, want %d",
				pm.Module, ia, len(row), pm.WidthB+1)
		}
	}
	return nil
}

// P returns the coefficient for per-port distances (ia, ib). The (0,0)
// class is 0 by definition. Unobserved classes fall back to the nearest
// observed class by expanding Manhattan-ring search (deterministic scan
// order), which keeps estimates defined everywhere.
func (pm *PortModel) P(ia, ib int) float64 {
	if ia < 0 || ia > pm.WidthA || ib < 0 || ib > pm.WidthB {
		panic(fmt.Sprintf("core: port Hd (%d,%d) out of range %dx%d", ia, ib, pm.WidthA, pm.WidthB))
	}
	if ia == 0 && ib == 0 {
		return 0
	}
	if c := pm.Coeffs[ia][ib]; c.Count > 0 {
		return c.P
	}
	maxR := pm.WidthA + pm.WidthB
	for r := 1; r <= maxR; r++ {
		var sum float64
		n := 0
		for da := -r; da <= r; da++ {
			db := r - abs(da)
			for _, d := range [2]int{db, -db} {
				ja, jb := ia+da, ib+d
				if ja < 0 || ja > pm.WidthA || jb < 0 || jb > pm.WidthB {
					continue
				}
				if ja == 0 && jb == 0 {
					continue
				}
				if c := pm.Coeffs[ja][jb]; c.Count > 0 {
					sum += c.P
					n++
				}
				if db == 0 {
					break // avoid double-counting the db == -db point
				}
			}
		}
		if n > 0 {
			return sum / float64(n)
		}
	}
	return 0
}

// Estimate predicts per-cycle charges from per-port Hamming-distance
// series.
func (pm *PortModel) Estimate(hdA, hdB []int) ([]float64, error) {
	if len(hdA) != len(hdB) {
		return nil, fmt.Errorf("core: port series length mismatch %d vs %d", len(hdA), len(hdB))
	}
	out := make([]float64, len(hdA))
	for j := range hdA {
		out[j] = pm.P(hdA[j], hdB[j])
	}
	return out, nil
}

// MarshalJSON includes a format marker.
func (pm *PortModel) MarshalJSON() ([]byte, error) {
	type alias PortModel
	return json.Marshal(struct {
		Format string `json:"format"`
		*alias
	}{Format: "hdpower-portmodel-v1", alias: (*alias)(pm)})
}

// LoadPortModel deserializes and validates a port model.
func LoadPortModel(data []byte) (*PortModel, error) {
	var pm PortModel
	if err := json.Unmarshal(data, &pm); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	if err := pm.Validate(); err != nil {
		return nil, err
	}
	return &pm, nil
}

// runPortShard simulates one shard of the port-characterization stream on
// the worker's own backend and returns its partial (Hd_A, Hd_B) grid.
func runPortShard(b Backend, widthA, widthB int, sh shard, seed int64) [][]classAcc {
	acc := make([][]classAcc, widthA+1)
	for ia := range acc {
		acc[ia] = make([]classAcc, widthB+1)
	}
	psA := newPairSource(widthA, shardSeed(seed, streamPortA, sh.index), false)
	psB := newPairSource(widthB, shardSeed(seed, streamPortB, sh.index), false)
	us := make([]logic.Word, sh.patterns)
	vs := make([]logic.Word, sh.patterns)
	q := make([]float64, sh.patterns)
	ias := make([]int, sh.patterns)
	ibs := make([]int, sh.patterns)
	for k := 0; k < sh.patterns; k++ {
		uA, vA := psA.Next()
		uB, vB := psB.Next()
		// The per-port sources always flip at least one bit; to cover the
		// (ia, 0) and (0, ib) edges, alternately freeze one port. The
		// freeze schedule follows the absolute pattern index so shard
		// boundaries do not disturb it.
		switch (sh.offset + k) % 4 {
		case 1:
			vB = uB
		case 3:
			vA = uA
		}
		us[k] = uA.Concat(uB)
		vs[k] = vA.Concat(vB)
		ias[k] = logic.Hd(uA, vA)
		ibs[k] = logic.Hd(uB, vB)
	}
	b.Charges(us, vs, q)
	for k := 0; k < sh.patterns; k++ {
		if ias[k] == 0 && ibs[k] == 0 {
			continue
		}
		acc[ias[k]][ibs[k]].add(q[k])
	}
	return acc
}

// CharacterizePorts fits a port-resolved model for a module whose packed
// input vector is port A (low widthA bits) followed by port B. Pairs are
// stratified over the (Hd_A, Hd_B) grid so every class receives samples.
// Like Characterize, the pattern stream is sharded deterministically and
// fanned out over Workers meter clones; the fitted model is bit-identical
// for every worker count.
func CharacterizePorts(meter *power.Meter, moduleName string, widthA, widthB int,
	opt CharacterizeOptions) (*PortModel, error) {
	opt.setDefaults()
	if err := verifyNetlist(meter, moduleName); err != nil {
		return nil, err
	}
	m := meter.NumInputBits()
	if widthA <= 0 || widthB <= 0 || widthA+widthB != m {
		return nil, fmt.Errorf("core: port widths %d+%d do not match %d input bits",
			widthA, widthB, m)
	}
	pm := &PortModel{Module: moduleName, WidthA: widthA, WidthB: widthB}
	acc := make([][]classAcc, widthA+1)
	for ia := range acc {
		acc[ia] = make([]classAcc, widthB+1)
	}

	plan := shardPlan(opt.Patterns)
	workers := opt.workerCount()
	if workers > len(plan) {
		workers = len(plan)
	}
	backend, err := opt.resolveBackend(meter)
	if err != nil {
		return nil, err
	}
	backends := backendPool(backend, workers)
	runShardsOrdered(len(plan), workers,
		func(w, idx int) [][]classAcc {
			return runPortShard(backends[w], widthA, widthB, plan[idx], opt.Seed)
		},
		func(idx int, part [][]classAcc) bool {
			for ia := range acc {
				for ib := range acc[ia] {
					acc[ia][ib].merge(&part[ia][ib])
				}
			}
			return true
		})

	pm.Coeffs = make([][]Coef, widthA+1)
	for ia := range pm.Coeffs {
		pm.Coeffs[ia] = make([]Coef, widthB+1)
		for ib := range pm.Coeffs[ia] {
			pm.Coeffs[ia][ib] = acc[ia][ib].coef()
		}
	}
	return pm, pm.Validate()
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
