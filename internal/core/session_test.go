package core

import (
	"encoding/json"
	"fmt"
	"reflect"
	"strings"
	"testing"
)

// sessionModel runs the distributed pipeline in-process: compute every
// shard of each phase via CharacterizeShardRange in ranges of the given
// width, then replay them through a MergeSession. The result must be
// bit-identical to Characterize with the same options.
func sessionModel(t *testing.T, module string, width, rangeShards int, opt CharacterizeOptions) *Model {
	t.Helper()
	meter := meterFor(t, module, width)
	name := fmt.Sprintf("%s-%d", module, width)
	s, err := NewMergeSession(name, meter.NumInputBits(), opt)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for !s.Done() {
		start := s.MergedShards()
		end := start + rangeShards
		if total := s.PhaseShards(); end > total {
			end = total
		}
		results, err := CharacterizeShardRange(meter, name, opt, s.Phase(), start, end)
		if err != nil {
			t.Fatal(err)
		}
		phase := s.Phase()
		for _, r := range results {
			if err := s.Merge(r); err != nil {
				t.Fatal(err)
			}
			if s.Done() || s.Phase() != phase {
				break // early stop truncates the phase mid-range
			}
		}
	}
	model, err := s.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return model
}

func TestMergeSessionBitIdentical(t *testing.T) {
	cases := []struct {
		name string
		opt  CharacterizeOptions
	}{
		{"basic", CharacterizeOptions{Patterns: 2000, Seed: 7}},
		{"enhanced", CharacterizeOptions{Patterns: 2000, Seed: 7, Enhanced: true, ZClusters: 3}},
		{"early-stop", CharacterizeOptions{Patterns: 6000, Seed: 3, Enhanced: true,
			ConvergeTol: 0.2, CheckEvery: 500}},
		{"parallel-workers", CharacterizeOptions{Patterns: 2000, Seed: 11, Enhanced: true, Workers: 4}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			want, err := Characterize(meterFor(t, "ripple-adder", 4), "ripple-adder-4", tc.opt)
			if err != nil {
				t.Fatal(err)
			}
			for _, rangeShards := range []int{1, 3, 128} {
				got := sessionModel(t, "ripple-adder", 4, rangeShards, tc.opt)
				if !reflect.DeepEqual(got, want) {
					gj, _ := json.Marshal(got)
					wj, _ := json.Marshal(want)
					t.Fatalf("range width %d diverges from Characterize:\n got %s\nwant %s",
						rangeShards, gj, wj)
				}
			}
		})
	}
}

// hookTrace records the observable hook sequence of a run so the session
// path can be pinned against the single-node path event for event.
func hookTrace(events *[]string) *Hooks {
	return &Hooks{
		PatternsSimulated: func(n int) { *events = append(*events, fmt.Sprintf("patterns:%d", n)) },
		ShardMerged:       func() { *events = append(*events, "shard") },
		EarlyStop:         func(p int) { *events = append(*events, fmt.Sprintf("stop:%d", p)) },
		PhaseStart: func(phase string, shards, patterns int) {
			*events = append(*events, fmt.Sprintf("start:%s:%d:%d", phase, shards, patterns))
		},
		PhaseEnd: func(phase string) { *events = append(*events, "end:"+phase) },
		Convergence: func(p int, worst float64) {
			*events = append(*events, fmt.Sprintf("conv:%d:%g", p, worst))
		},
	}
}

func TestMergeSessionHookParity(t *testing.T) {
	base := CharacterizeOptions{Patterns: 4000, Seed: 5, Enhanced: true, ConvergeTol: 0.2, CheckEvery: 500}

	var single []string
	opt := base
	opt.Hooks = hookTrace(&single)
	if _, err := Characterize(meterFor(t, "ripple-adder", 4), "ripple-adder-4", opt); err != nil {
		t.Fatal(err)
	}

	var fleet []string
	opt = base
	opt.Hooks = hookTrace(&fleet)
	sessionModel(t, "ripple-adder", 4, 4, opt)

	if !reflect.DeepEqual(single, fleet) {
		t.Fatalf("hook sequences diverge:\nsingle %v\nfleet  %v", single, fleet)
	}
}

func TestMergeSessionSnapshotResume(t *testing.T) {
	opt := CharacterizeOptions{Patterns: 3000, Seed: 9, Enhanced: true, ZClusters: 2}
	meter := meterFor(t, "ripple-adder", 4)
	want, err := Characterize(meterFor(t, "ripple-adder", 4), "ripple-adder-4", opt)
	if err != nil {
		t.Fatal(err)
	}

	// Drive a session partway through each phase, snapshot, resume into a
	// fresh session, and finish — at every possible cut point.
	bits := meter.NumInputBits()
	full, err := NewMergeSession("ripple-adder-4", bits, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer full.Close()
	type cut struct {
		phase string
		index int
	}
	var cuts []cut
	var replay []ShardResult // (phase, result) stream for re-feeding resumed sessions
	var phases []string
	for !full.Done() {
		cuts = append(cuts, cut{full.Phase(), full.MergedShards()})
		rs, err := CharacterizeShardRange(meter, "ripple-adder-4", opt, full.Phase(),
			full.MergedShards(), full.MergedShards()+1)
		if err != nil {
			t.Fatal(err)
		}
		phases = append(phases, full.Phase())
		replay = append(replay, rs[0])
		if err := full.Merge(rs[0]); err != nil {
			t.Fatal(err)
		}
	}
	got, err := full.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("uncut session diverges from Characterize")
	}

	for ci, c := range cuts {
		// Rebuild state up to the cut, snapshot, resume, finish.
		s, err := NewMergeSession("ripple-adder-4", bits, opt)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < ci; i++ {
			if err := s.Merge(replay[i]); err != nil {
				t.Fatal(err)
			}
		}
		snap := s.Snapshot()
		s.Close()
		if snap.Phase != c.phase || snap.ShardsMerged != c.index {
			t.Fatalf("cut %d: snapshot cursor %s/%d, want %s/%d",
				ci, snap.Phase, snap.ShardsMerged, c.phase, c.index)
		}
		// Round-trip through JSON the way a lease ledger would store it.
		raw, err := json.Marshal(snap)
		if err != nil {
			t.Fatal(err)
		}
		var restored Checkpoint
		if err := json.Unmarshal(raw, &restored); err != nil {
			t.Fatal(err)
		}
		r, err := ResumeMergeSession("ripple-adder-4", bits, opt, &restored)
		if err != nil {
			t.Fatalf("cut %d: resume: %v", ci, err)
		}
		for i := ci; i < len(replay); i++ {
			if phases[i] != r.Phase() || replay[i].Index != r.MergedShards() {
				t.Fatalf("cut %d: resumed cursor %s/%d, replay stream at %s/%d",
					ci, r.Phase(), r.MergedShards(), phases[i], replay[i].Index)
			}
			if err := r.Merge(replay[i]); err != nil {
				t.Fatalf("cut %d: merge after resume: %v", ci, err)
			}
		}
		m, err := r.Finish()
		if err != nil {
			t.Fatalf("cut %d: finish: %v", ci, err)
		}
		if !reflect.DeepEqual(m, want) {
			t.Fatalf("cut %d: resumed session diverges from Characterize", ci)
		}
	}
}

func TestMergeSessionRejectsBadResults(t *testing.T) {
	opt := CharacterizeOptions{Patterns: 2000, Seed: 2, Enhanced: true}
	meter := meterFor(t, "ripple-adder", 4)
	s, err := NewMergeSession("ripple-adder-4", meter.NumInputBits(), opt)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	rs, err := CharacterizeShardRange(meter, "ripple-adder-4", opt, PhaseBasic, 0, 2)
	if err != nil {
		t.Fatal(err)
	}

	if err := s.Merge(rs[1]); err == nil || !strings.Contains(err.Error(), "out of order") {
		t.Fatalf("out-of-order shard accepted: %v", err)
	}
	bad := rs[0]
	bad.Patterns++
	if err := s.Merge(bad); err == nil {
		t.Fatal("pattern-count mismatch accepted")
	}
	bad = rs[0]
	bad.Basic = bad.Basic[:1]
	if err := s.Merge(bad); err == nil {
		t.Fatal("truncated basic accumulators accepted")
	}
	bad = rs[0]
	bad.Enhanced = nil
	if err := s.Merge(bad); err == nil {
		t.Fatal("missing enhanced accumulators accepted")
	}

	// Rejections must not have mutated the session: the good stream still
	// merges from shard 0.
	if s.MergedShards() != 0 {
		t.Fatalf("rejected results advanced the session to %d", s.MergedShards())
	}
	if err := s.Merge(rs[0]); err != nil {
		t.Fatalf("clean shard rejected after bad ones: %v", err)
	}
	if err := s.Merge(rs[1]); err != nil {
		t.Fatal(err)
	}
}

func TestResumeMergeSessionRejectsMismatch(t *testing.T) {
	opt := CharacterizeOptions{Patterns: 2000, Seed: 4}
	meter := meterFor(t, "ripple-adder", 4)
	s, err := NewMergeSession("ripple-adder-4", meter.NumInputBits(), opt)
	if err != nil {
		t.Fatal(err)
	}
	snap := s.Snapshot()
	s.Close()

	other := opt
	other.Seed = 5
	if _, err := ResumeMergeSession("ripple-adder-4", meter.NumInputBits(), other, snap); !IsCheckpointMismatch(err) {
		t.Fatalf("seed mismatch not rejected: %v", err)
	}
	if _, err := ResumeMergeSession("csa-multiplier-4", meter.NumInputBits(), opt, snap); !IsCheckpointMismatch(err) {
		t.Fatalf("module mismatch not rejected: %v", err)
	}
}

func TestCharacterizeShardRangeValidation(t *testing.T) {
	meter := meterFor(t, "ripple-adder", 4)
	opt := CharacterizeOptions{Patterns: 2000, Seed: 1}
	if _, err := CharacterizeShardRange(meter, "ripple-adder-4", opt, PhaseBasic, 3, 2); err == nil {
		t.Fatal("inverted range accepted")
	}
	if _, err := CharacterizeShardRange(meter, "ripple-adder-4", opt, PhaseBasic, 0, 10_000); err == nil {
		t.Fatal("out-of-plan range accepted")
	}
	if _, err := CharacterizeShardRange(meter, "ripple-adder-4", opt, PhaseBiased, 0, 1); err == nil {
		t.Fatal("biased phase accepted for a non-enhanced run")
	}
	if _, err := CharacterizeShardRange(meter, "ripple-adder-4", opt, "warmup", 0, 1); err == nil {
		t.Fatal("unknown phase accepted")
	}
}

func TestFingerprintPinsRunIdentity(t *testing.T) {
	opt := CharacterizeOptions{Patterns: 2000, Seed: 1, Enhanced: true}
	fp := Fingerprint("ripple-adder-4", 8, opt)
	if fp == "" {
		t.Fatal("empty fingerprint")
	}
	if Fingerprint("ripple-adder-4", 8, opt) != fp {
		t.Fatal("fingerprint not deterministic")
	}
	seed := opt
	seed.Seed = 2
	if Fingerprint("ripple-adder-4", 8, seed) == fp {
		t.Fatal("seed change did not change fingerprint")
	}
	if Fingerprint("ripple-adder-4", 16, opt) == fp {
		t.Fatal("geometry change did not change fingerprint")
	}
}

func TestNumShardsMatchesPlan(t *testing.T) {
	if got, want := NumShards(2000), len(shardPlan(2000)); got != want {
		t.Fatalf("NumShards(2000) = %d, want %d", got, want)
	}
	def := CharacterizeOptions{}
	def.setDefaults()
	if got, want := NumShards(0), len(shardPlan(def.Patterns)); got != want {
		t.Fatalf("NumShards(0) = %d, want default-plan %d", got, want)
	}
}
