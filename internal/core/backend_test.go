package core

import (
	"bytes"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseBackendKind(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want BackendKind
	}{
		{"", BackendAuto},
		{"event", BackendEvent},
		{"bitparallel", BackendBitParallel},
	} {
		got, err := ParseBackendKind(tc.in)
		if err != nil || got != tc.want {
			t.Fatalf("ParseBackendKind(%q) = %q, %v; want %q", tc.in, got, err, tc.want)
		}
	}
	if _, err := ParseBackendKind("warp-drive"); err == nil {
		t.Fatal("unknown backend name accepted")
	}
	if BackendAuto.Name() != "event" || BackendBitParallel.Name() != "bitparallel" {
		t.Fatalf("backend names: auto=%q bitparallel=%q",
			BackendAuto.Name(), BackendBitParallel.Name())
	}
}

// TestBackendEventBitIdentical pins the refactor's compatibility contract:
// selecting BackendEvent explicitly (or leaving BackendAuto) routes pairs
// through the caller's meter in the exact legacy order, so the fitted
// model is byte-identical to a run that never heard of backends.
func TestBackendEventBitIdentical(t *testing.T) {
	opt := CharacterizeOptions{Patterns: 640, Seed: 3, Enhanced: true, Workers: 2}
	auto, err := Characterize(meterFor(t, "ripple-adder", 8), "add", opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.Backend = BackendEvent
	event, err := Characterize(meterFor(t, "ripple-adder", 8), "add", opt)
	if err != nil {
		t.Fatal(err)
	}
	modelsIdentical(t, auto, event, "auto vs explicit event")
}

// TestCharacterizeBitParallelWorkerCountIndependent extends the
// determinism contract to the bit-parallel backend: the shard plan and
// ordered merge live above the Backend interface, so Workers must not
// change a single bit of the fitted model there either.
func TestCharacterizeBitParallelWorkerCountIndependent(t *testing.T) {
	opt := CharacterizeOptions{
		Patterns: 1200, Seed: 9, Enhanced: true, Workers: 1,
		Backend: BackendBitParallel,
	}
	ref, err := Characterize(meterFor(t, "csa-multiplier", 4), "csa", opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 7} {
		opt.Workers = workers
		got, err := Characterize(meterFor(t, "csa-multiplier", 4), "csa", opt)
		if err != nil {
			t.Fatal(err)
		}
		modelsIdentical(t, ref, got, fmt.Sprintf("bitparallel workers=%d", workers))
	}
}

// TestCharacterizePortsBitParallel runs the port-resolved fit through the
// bit-parallel backend and checks worker-count invariance there too.
func TestCharacterizePortsBitParallel(t *testing.T) {
	opt := CharacterizeOptions{Patterns: 900, Seed: 5, Workers: 1, Backend: BackendBitParallel}
	ref, err := CharacterizePorts(meterFor(t, "csa-multiplier", 4), "csa", 4, 4, opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.Workers = 3
	got, err := CharacterizePorts(meterFor(t, "csa-multiplier", 4), "csa", 4, 4, opt)
	if err != nil {
		t.Fatal(err)
	}
	for ia := range ref.Coeffs {
		for ib := range ref.Coeffs[ia] {
			if ref.Coeffs[ia][ib] != got.Coeffs[ia][ib] {
				t.Fatalf("class (%d,%d): workers=3 coefficient differs", ia, ib)
			}
		}
	}
}

func TestUnknownBackendRejected(t *testing.T) {
	opt := CharacterizeOptions{Patterns: 128, Seed: 1, Backend: BackendKind("warp-drive")}
	if _, err := Characterize(meterFor(t, "ripple-adder", 4), "add", opt); err == nil ||
		!strings.Contains(err.Error(), "unknown backend") {
		t.Fatalf("want unknown-backend error, got %v", err)
	}
	if _, err := CharacterizePorts(meterFor(t, "csa-multiplier", 4), "csa", 4, 4, opt); err == nil ||
		!strings.Contains(err.Error(), "unknown backend") {
		t.Fatalf("ports: want unknown-backend error, got %v", err)
	}
}

// TestCheckpointResumeBitParallel is the crash-safety contract under the
// fast backend: a bit-parallel run killed at any merged-shard boundary and
// resumed produces byte-identical coefficients to an uninterrupted
// bit-parallel run, for several worker counts and kill points in both
// phases (10 basic + 10 biased shards).
func TestCheckpointResumeBitParallel(t *testing.T) {
	mkOpt := func(workers int) CharacterizeOptions {
		opt := ckOpts(workers)
		opt.Backend = BackendBitParallel
		return opt
	}
	base, err := Characterize(meterFor(t, "ripple-adder", 4), "ripple-adder", mkOpt(2))
	if err != nil {
		t.Fatal(err)
	}
	want := marshal(t, base)
	for _, workers := range []int{1, 2, 4} {
		for _, k := range []int{1, 5, 10, 11, 17, 20} {
			path := filepath.Join(t.TempDir(), "ck.json")
			opt := mkOpt(workers)
			opt.Checkpoint = CheckpointOptions{Path: path, Resume: true, EveryShards: 4}

			killAt(t, k, opt)
			if _, err := os.Stat(path); err != nil {
				t.Fatalf("workers=%d kill=%d: no checkpoint after kill: %v", workers, k, err)
			}
			got, err := Characterize(meterFor(t, "ripple-adder", 4), "ripple-adder", opt)
			if err != nil {
				t.Fatalf("workers=%d kill=%d: resume failed: %v", workers, k, err)
			}
			if !bytes.Equal(marshal(t, got), want) {
				t.Errorf("workers=%d kill=%d: resumed bitparallel model differs", workers, k)
			}
		}
	}
}

// TestCheckpointBackendMismatch: charges priced by one backend must never
// merge with another's. Resuming an interrupted bit-parallel run with the
// event backend has to surface a checkpoint mismatch naming the backend.
func TestCheckpointBackendMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.json")
	opt := ckOpts(2)
	opt.Backend = BackendBitParallel
	opt.Checkpoint = CheckpointOptions{Path: path, Resume: true}
	killAt(t, 3, opt)

	opt.Backend = BackendEvent
	_, err := Characterize(meterFor(t, "ripple-adder", 4), "ripple-adder", opt)
	if !IsCheckpointMismatch(err) {
		t.Fatalf("want checkpoint mismatch, got %v", err)
	}
	if !strings.Contains(err.Error(), "backend") {
		t.Errorf("mismatch error does not name the backend: %v", err)
	}
}

// TestManifestRecordsBackend: the flight recorder stamps which engine
// priced the run.
func TestManifestRecordsBackend(t *testing.T) {
	opt := CharacterizeOptions{Patterns: 256, Seed: 2, Backend: BackendBitParallel}
	rec := NewRunRecorder("add", opt)
	opt.Hooks = rec.Hooks()
	model, err := Characterize(meterFor(t, "ripple-adder", 4), "add", opt)
	man := rec.Finish(model, err)
	if err != nil {
		t.Fatal(err)
	}
	if man.Backend != "bitparallel" {
		t.Fatalf("manifest backend %q, want bitparallel", man.Backend)
	}
}

// TestBackendCoefficientDrift quantifies how far the unit-delay glitch
// approximation moves the fitted coefficients from the event-driven golden
// reference. The drift is the price of the speedup; it must stay small
// enough that the macro-model's own accuracy budget (the paper reports
// 10-15% estimation error) dominates. Run with -v to read the measured
// numbers (EXPERIMENTS.md quotes them).
func TestBackendCoefficientDrift(t *testing.T) {
	for _, mod := range []struct {
		name  string
		width int
		tol   float64
	}{
		{"ripple-adder", 8, 0.25},
		{"csa-multiplier", 8, 0.45},
	} {
		opt := CharacterizeOptions{Patterns: 2560, Seed: 7, Workers: 2, Backend: BackendEvent}
		event, err := Characterize(meterFor(t, mod.name, mod.width), mod.name, opt)
		if err != nil {
			t.Fatal(err)
		}
		opt.Backend = BackendBitParallel
		bitp, err := Characterize(meterFor(t, mod.name, mod.width), mod.name, opt)
		if err != nil {
			t.Fatal(err)
		}
		var worst, sum float64
		n := 0
		for i := range event.Basic {
			e, b := event.Basic[i], bitp.Basic[i]
			if e.Count == 0 || b.Count == 0 || e.P == 0 {
				continue
			}
			d := math.Abs(b.P-e.P) / e.P
			sum += d
			n++
			if d > worst {
				worst = d
			}
		}
		if n == 0 {
			t.Fatalf("%s: no populated classes to compare", mod.name)
		}
		t.Logf("%s-%d: coefficient drift bitparallel vs event: mean %.3f, worst %.3f (%d classes)",
			mod.name, mod.width, sum/float64(n), worst, n)
		if worst > mod.tol {
			t.Fatalf("%s: worst class drift %.3f exceeds %.2f", mod.name, worst, mod.tol)
		}
	}
}
