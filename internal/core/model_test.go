package core

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

// handModel builds a small model with known coefficients for estimator
// tests: p_i = 10·i for i in 1..4.
func handModel() *Model {
	m := &Model{Module: "hand", InputBits: 4, Basic: make([]Coef, 4)}
	for i := 1; i <= 4; i++ {
		m.Basic[i-1] = Coef{P: float64(10 * i), Epsilon: 0.1, Count: 100}
	}
	return m
}

func TestPBasic(t *testing.T) {
	m := handModel()
	if m.P(0) != 0 {
		t.Errorf("P(0) = %v", m.P(0))
	}
	for i := 1; i <= 4; i++ {
		if m.P(i) != float64(10*i) {
			t.Errorf("P(%d) = %v", i, m.P(i))
		}
	}
}

func TestPOutOfRangePanics(t *testing.T) {
	m := handModel()
	for _, i := range []int{-1, 5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("P(%d) did not panic", i)
				}
			}()
			m.P(i)
		}()
	}
}

func TestPInterpolatesUnobservedClasses(t *testing.T) {
	m := handModel()
	m.Basic[1] = Coef{} // drop p_2; neighbors p_1=10, p_3=30
	if got := m.P(2); got != 20 {
		t.Errorf("interpolated P(2) = %v, want 20", got)
	}
	// unobserved at the high end: constant extrapolation
	m = handModel()
	m.Basic[3] = Coef{}
	if got := m.P(4); got != 30 {
		t.Errorf("extrapolated P(4) = %v, want 30", got)
	}
	// unobserved at the low end: interpolate towards p_0 = 0
	m = handModel()
	m.Basic[0] = Coef{}
	if got := m.P(1); got != 10 {
		t.Errorf("extrapolated P(1) = %v, want 10 (20*1/2)", got)
	}
	// all empty
	m = &Model{Module: "empty", InputBits: 3, Basic: make([]Coef, 3)}
	if got := m.P(2); got != 0 {
		t.Errorf("P on empty model = %v", got)
	}
}

func TestInterpP(t *testing.T) {
	m := handModel()
	cases := []struct{ x, want float64 }{
		{-1, 0}, {0, 0}, {0.5, 5}, {1, 10}, {2.5, 25}, {4, 40}, {9, 40},
	}
	for _, c := range cases {
		if got := m.InterpP(c.x); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("InterpP(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestEstimateBasic(t *testing.T) {
	m := handModel()
	got := m.EstimateBasic([]int{0, 1, 4, 2})
	want := []float64{0, 10, 40, 20}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("estimate[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestEnhancedFallback(t *testing.T) {
	m := handModel()
	// No enhanced table: falls back to basic.
	if got := m.PEnhanced(2, 1); got != 20 {
		t.Errorf("fallback PEnhanced = %v", got)
	}
	// With a table: populated class wins, empty class falls back.
	m.Enhanced = make([][]Coef, 4)
	for i := 1; i <= 4; i++ {
		m.Enhanced[i-1] = make([]Coef, m.NumZBuckets(i))
	}
	m.Enhanced[1][0] = Coef{P: 99, Count: 5} // Hd=2, z=0
	if got := m.PEnhanced(2, 0); got != 99 {
		t.Errorf("enhanced coefficient = %v, want 99", got)
	}
	if got := m.PEnhanced(2, 1); got != 20 {
		t.Errorf("empty enhanced class fallback = %v, want 20", got)
	}
}

func TestPEnhancedRangeChecks(t *testing.T) {
	m := handModel()
	defer func() {
		if recover() == nil {
			t.Fatal("z out of range accepted")
		}
	}()
	m.PEnhanced(2, 3) // z may be at most m-i = 2
}

func TestEstimateEnhancedLengthMismatch(t *testing.T) {
	m := handModel()
	if _, err := m.EstimateEnhanced([]int{1, 2}, []int{0}); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestAvgFromDist(t *testing.T) {
	m := handModel()
	dist := []float64{0.1, 0.2, 0.3, 0.2, 0.2} // Hd 0..4
	got, err := m.AvgFromDist(dist)
	if err != nil {
		t.Fatal(err)
	}
	want := 0.2*10 + 0.3*20 + 0.2*30 + 0.2*40
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("AvgFromDist = %v, want %v", got, want)
	}
	if _, err := m.AvgFromDist([]float64{1}); err == nil {
		t.Error("short distribution accepted")
	}
}

func TestNumCoefficientsFullResolution(t *testing.T) {
	m := 8
	model := &Model{Module: "x", InputBits: m, Basic: make([]Coef, m)}
	model.Enhanced = make([][]Coef, m)
	for i := 1; i <= m; i++ {
		model.Enhanced[i-1] = make([]Coef, model.NumZBuckets(i))
	}
	b, e := model.NumCoefficients()
	if b != m {
		t.Errorf("basic count = %d", b)
	}
	if want := (m*m + m) / 2; e != want {
		t.Errorf("enhanced count = %d, want %d (paper's (m^2+m)/2)", e, want)
	}
}

func TestZBucketClustering(t *testing.T) {
	model := &Model{Module: "x", InputBits: 16, ZClusters: 4, Basic: make([]Coef, 16)}
	// Hd=1: z in 0..15, 4 buckets of 4.
	if model.NumZBuckets(1) != 4 {
		t.Fatalf("NumZBuckets(1) = %d", model.NumZBuckets(1))
	}
	if model.ZBucket(1, 0) != 0 || model.ZBucket(1, 15) != 3 {
		t.Errorf("bucket ends: %d, %d", model.ZBucket(1, 0), model.ZBucket(1, 15))
	}
	// monotone in z
	last := -1
	for z := 0; z <= 15; z++ {
		b := model.ZBucket(1, z)
		if b < last {
			t.Errorf("bucket not monotone at z=%d", z)
		}
		last = b
	}
	// Hd near m: fewer possible z values than clusters -> full resolution.
	if model.NumZBuckets(15) != 2 {
		t.Errorf("NumZBuckets(15) = %d, want 2", model.NumZBuckets(15))
	}
}

func TestValidate(t *testing.T) {
	good := handModel()
	if err := good.Validate(); err != nil {
		t.Errorf("valid model rejected: %v", err)
	}
	bad := handModel()
	bad.Basic = bad.Basic[:2]
	if err := bad.Validate(); err == nil {
		t.Error("short basic table accepted")
	}
	bad = handModel()
	bad.Basic[0].P = math.NaN()
	if err := bad.Validate(); err == nil {
		t.Error("NaN coefficient accepted")
	}
	bad = &Model{Module: "x", InputBits: 0}
	if err := bad.Validate(); err == nil {
		t.Error("zero-width model accepted")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	m := handModel()
	m.Enhanced = make([][]Coef, 4)
	for i := 1; i <= 4; i++ {
		m.Enhanced[i-1] = make([]Coef, m.NumZBuckets(i))
		for z := range m.Enhanced[i-1] {
			m.Enhanced[i-1][z] = Coef{P: float64(i*10 + z), Count: 3}
		}
	}
	data, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	back, err := LoadModel(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Module != m.Module || back.InputBits != m.InputBits {
		t.Errorf("round trip header mismatch: %+v", back)
	}
	for i := range m.Basic {
		if back.Basic[i] != m.Basic[i] {
			t.Errorf("basic[%d] = %+v, want %+v", i, back.Basic[i], m.Basic[i])
		}
	}
	if back.PEnhanced(2, 1) != m.PEnhanced(2, 1) {
		t.Error("enhanced table lost in round trip")
	}
}

func TestLoadModelRejectsGarbage(t *testing.T) {
	if _, err := LoadModel([]byte("not json")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := LoadModel([]byte(`{"module":"x","input_bits":2,"basic":[]}`)); err == nil {
		t.Error("inconsistent model accepted")
	}
}

// Property: InterpP is monotone for a monotone coefficient table.
func TestInterpPMonotone(t *testing.T) {
	m := handModel()
	f := func(a, b float64) bool {
		x := math.Abs(math.Mod(a, 5))
		y := math.Abs(math.Mod(b, 5))
		if x > y {
			x, y = y, x
		}
		return m.InterpP(x) <= m.InterpP(y)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTotalDeviation(t *testing.T) {
	m := handModel()
	if got := m.TotalDeviation(); math.Abs(got-0.1) > 1e-12 {
		t.Errorf("total deviation = %v", got)
	}
	empty := &Model{Module: "e", InputBits: 2, Basic: make([]Coef, 2)}
	if empty.TotalDeviation() != 0 {
		t.Error("empty model deviation nonzero")
	}
}

func TestReport(t *testing.T) {
	m := handModel()
	out := m.Report()
	for _, want := range []string{"hand", "4 input bits", "p_i", "eps_i", "="} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
	m.Basic[2] = Coef{} // unobserved class should be marked
	if !strings.Contains(m.Report(), "interpolated") {
		t.Error("report does not mark interpolated classes")
	}
	m.Enhanced = [][]Coef{}
	m.Enhanced = nil
	m.ZClusters = 4
	if !strings.Contains(m.Report(), "hand") {
		t.Error("report broken with z clusters set")
	}
}
