package core

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"

	"hdpower/internal/faultpoint"
	"hdpower/internal/logic"
	"hdpower/internal/power"
)

// CharacterizeOptions configures a characterization run.
type CharacterizeOptions struct {
	// Patterns is the number of transition pairs to simulate.
	// Defaults to 5000 (the lower end of the paper's 5000–10000 range).
	Patterns int
	// Enhanced additionally characterizes the stable-zero refined classes
	// of the enhanced model.
	Enhanced bool
	// ZClusters clusters the stable-zero axis of the enhanced model into
	// this many buckets per Hd class; 0 keeps full resolution.
	ZClusters int
	// Seed makes the characterization stream deterministic.
	Seed int64
	// ConvergeTol, if positive, ends the run early once the largest
	// relative change of any populated basic coefficient between
	// consecutive check intervals drops below this tolerance — the
	// paper's "characterization can be finished after the coefficient
	// values have converged".
	ConvergeTol float64
	// CheckEvery is the convergence check interval in patterns
	// (default 500). Checks run on merged shard boundaries, at the first
	// boundary at or past each multiple of CheckEvery.
	CheckEvery int
	// Workers is the number of concurrent characterization workers
	// sharing the pattern budget; 0 defaults to runtime.NumCPU(), 1
	// forces the fully sequential path. The pattern stream is sharded
	// deterministically by (Seed, shard index) and per-shard partial
	// accumulators are merged in shard order, so the fitted model is
	// bit-identical for every worker count.
	Workers int
	// Backend selects the simulation engine that prices the pattern
	// pairs. The zero value (BackendAuto) and BackendEvent use the
	// caller's meter — the scalar event-driven reference, bit-identical
	// to prior releases; BackendBitParallel builds a 64-lane bit-parallel
	// engine over the same netlist (see internal/bitsim), roughly an
	// order of magnitude faster with unit-delay glitch approximation.
	// The backend changes the reference charges (and so the fitted
	// coefficients), never the determinism or resume guarantees; a
	// checkpoint records its backend and refuses to resume under another.
	Backend BackendKind
	// Hooks receives progress callbacks during the run; nil disables
	// them. Callbacks never affect the fitted model.
	Hooks *Hooks
	// Interrupt, if non-nil, is polled at every merged shard boundary;
	// the first non-nil error aborts the run and Characterize returns it.
	// Serving layers use this to cancel an in-flight characterization
	// when its request context expires or the process drains. When
	// checkpointing is configured, the merged state is snapshotted before
	// the abort, so a later Resume continues where the interrupt landed.
	Interrupt func() error
	// Checkpoint configures crash-safe snapshots of the merged state and
	// resuming from them; the zero value disables both.
	Checkpoint CheckpointOptions
}

// Hooks observes characterization progress. All fields are optional.
// Callbacks run on the merging goroutine in deterministic shard order, so
// implementations need no internal ordering, only thread-safety against
// other runs.
type Hooks struct {
	// PatternsSimulated fires after each shard is merged with the
	// shard's pattern count.
	PatternsSimulated func(n int)
	// ShardMerged fires once per merged shard.
	ShardMerged func()
	// EarlyStop fires when the convergence check ends the run before the
	// full pattern budget, with the patterns actually consumed.
	EarlyStop func(patternsUsed int)
	// PhaseStart fires when a characterization phase begins, with the
	// phase name ("basic" or "biased"), the number of shards the phase
	// will merge at most, and its pattern budget. Serving layers use it to
	// size progress bars and open trace spans.
	PhaseStart func(phase string, shards, patterns int)
	// PhaseEnd fires exactly once per started phase, even when the phase
	// is cut short by convergence or an Interrupt, so span-style observers
	// can rely on balanced start/end pairs.
	PhaseEnd func(phase string)
	// Convergence fires at every convergence checkpoint with the merged
	// pattern count and the worst relative coefficient change since the
	// previous checkpoint (math.Inf(1) when a class first turned nonzero).
	// With ConvergeTol <= 0 checkpoints are still evaluated for this hook
	// — observability only, never an early stop.
	Convergence func(patterns int, worstChange float64)
	// Resumed fires once, before any phase starts, when the run restores
	// state from a checkpoint: the phase being resumed, plus the shard and
	// per-phase pattern totals already merged by earlier processes (which
	// the run's own Patterns/ShardMerged hooks will not replay).
	Resumed func(phase string, shardsMerged, patternsBasic, patternsBiased int)
	// CheckpointSaved fires after every checkpoint snapshot attempt with
	// its write error (nil on success). Snapshot failures never fail the
	// run — this hook is where they become observable.
	CheckpointSaved func(err error)
}

func (h *Hooks) patterns(n int) {
	if h != nil && h.PatternsSimulated != nil {
		h.PatternsSimulated(n)
	}
}

func (h *Hooks) shardMerged() {
	if h != nil && h.ShardMerged != nil {
		h.ShardMerged()
	}
}

func (h *Hooks) earlyStop(patternsUsed int) {
	if h != nil && h.EarlyStop != nil {
		h.EarlyStop(patternsUsed)
	}
}

func (h *Hooks) phaseStart(phase string, shards, patterns int) {
	if h != nil && h.PhaseStart != nil {
		h.PhaseStart(phase, shards, patterns)
	}
}

func (h *Hooks) phaseEnd(phase string) {
	if h != nil && h.PhaseEnd != nil {
		h.PhaseEnd(phase)
	}
}

func (h *Hooks) convergence(patterns int, worst float64) {
	if h != nil && h.Convergence != nil {
		h.Convergence(patterns, worst)
	}
}

func (h *Hooks) resumed(phase string, shards, patternsBasic, patternsBiased int) {
	if h != nil && h.Resumed != nil {
		h.Resumed(phase, shards, patternsBasic, patternsBiased)
	}
}

func (h *Hooks) checkpointSaved(err error) {
	if h != nil && h.CheckpointSaved != nil {
		h.CheckpointSaved(err)
	}
}

// wantsConvergence reports whether convergence checkpoints must run even
// without an early-stop tolerance.
func (h *Hooks) wantsConvergence() bool {
	return h != nil && h.Convergence != nil
}

// JoinHooks fans every callback out to all non-nil hook sets in order, so
// independent observers (metrics, tracing, a flight recorder, progress
// tracking) compose without knowing about each other.
func JoinHooks(hs ...*Hooks) *Hooks {
	var live []*Hooks
	for _, h := range hs {
		if h != nil {
			live = append(live, h)
		}
	}
	if len(live) == 0 {
		return nil
	}
	if len(live) == 1 {
		return live[0]
	}
	j := &Hooks{}
	j.PatternsSimulated = func(n int) {
		for _, h := range live {
			h.patterns(n)
		}
	}
	j.ShardMerged = func() {
		for _, h := range live {
			h.shardMerged()
		}
	}
	j.EarlyStop = func(used int) {
		for _, h := range live {
			h.earlyStop(used)
		}
	}
	j.PhaseStart = func(phase string, shards, patterns int) {
		for _, h := range live {
			h.phaseStart(phase, shards, patterns)
		}
	}
	j.PhaseEnd = func(phase string) {
		for _, h := range live {
			h.phaseEnd(phase)
		}
	}
	j.Resumed = func(phase string, shards, patternsBasic, patternsBiased int) {
		for _, h := range live {
			h.resumed(phase, shards, patternsBasic, patternsBiased)
		}
	}
	j.CheckpointSaved = func(err error) {
		for _, h := range live {
			h.checkpointSaved(err)
		}
	}
	// Only forward Convergence when someone listens: its presence alone
	// makes Characterize evaluate checkpoints (see wantsConvergence).
	for _, h := range live {
		if h.Convergence != nil {
			j.Convergence = func(patterns int, worst float64) {
				for _, h := range live {
					h.convergence(patterns, worst)
				}
			}
			break
		}
	}
	return j
}

func (o *CharacterizeOptions) setDefaults() {
	if o.Patterns <= 0 {
		o.Patterns = 5000
	}
	if o.CheckEvery <= 0 {
		o.CheckEvery = 500
	}
}

// workerCount resolves the Workers option against the host.
func (o *CharacterizeOptions) workerCount() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.NumCPU()
}

// PairSource generates characterization vector pairs (u, v) stratified
// over the Hamming-distance axis: the flip count i is drawn uniformly from
// [1, m], so every class E_i receives samples even for wide inputs, where
// a plain uniform stream essentially never produces Hd 1 or Hd m.
//
// In the default (unbiased) mode the base vector is uniform random, which
// makes the per-class conditional distribution identical to that of a
// uniform pattern pair conditioned on its Hamming-distance — so the
// resulting p_i are unbiased for random evaluation streams. The biased
// mode additionally stratifies the ones-density of the base vector to
// populate the extreme stable-zero classes of the enhanced model; it is
// only used for the enhanced coefficient table.
type PairSource struct {
	m       int
	rng     *rand.Rand
	idx     []int // scratch permutation
	density bool  // stratify base-vector ones-density
}

// NewPairSource returns an unbiased stratified characterization pair
// source for m-bit input vectors.
func NewPairSource(m int, seed int64) *PairSource {
	return newPairSource(m, seed, false)
}

// NewBiasedPairSource returns a pair source that additionally stratifies
// the base vector's ones-density over [0.05, 0.95], covering the
// stable-zero axis of the enhanced model.
func NewBiasedPairSource(m int, seed int64) *PairSource {
	return newPairSource(m, seed, true)
}

func newPairSource(m int, seed int64, density bool) *PairSource {
	if m <= 0 {
		panic(fmt.Sprintf("core: non-positive input width %d", m))
	}
	idx := make([]int, m)
	for i := range idx {
		idx[i] = i
	}
	return &PairSource{m: m, rng: rand.New(rand.NewSource(seed)), idx: idx, density: density}
}

// Next returns the next characterization pair.
func (ps *PairSource) Next() (u, v logic.Word) {
	density := 0.5
	if ps.density {
		density = 0.05 + 0.9*ps.rng.Float64()
	}
	u = logic.NewWord(ps.m)
	for b := 0; b < ps.m; b++ {
		if ps.rng.Float64() < density {
			u.Set(b, true)
		}
	}
	i := 1 + ps.rng.Intn(ps.m)
	// Partial Fisher-Yates for i distinct flip positions.
	for k := 0; k < i; k++ {
		j := k + ps.rng.Intn(ps.m-k)
		ps.idx[k], ps.idx[j] = ps.idx[j], ps.idx[k]
	}
	v = u.Clone()
	for k := 0; k < i; k++ {
		v.Set(ps.idx[k], !v.Bit(ps.idx[k]))
	}
	return u, v
}

// epsilonReservoir bounds the per-class deviation sample kept by classAcc.
// Classes keep their first epsilonReservoir charge samples in merged
// stream order: within a class the stream is i.i.d., so the prefix is an
// unbiased deviation sample, and — unlike a randomized reservoir — it
// stays byte-identical under ordered shard merging for any worker count.
const epsilonReservoir = 512

// classAcc accumulates the charge samples of one switching-event class as
// a streaming (count, sum) pair plus the bounded deviation reservoir, so
// memory per class is O(1) no matter how long the run is.
type classAcc struct {
	count int64
	sum   float64
	dev   []float64 // first epsilonReservoir samples, for ε_i
}

func (a *classAcc) add(q float64) {
	a.count++
	a.sum += q
	if len(a.dev) < epsilonReservoir {
		a.dev = append(a.dev, q)
	}
}

// merge folds a later shard's partial accumulator into a. Partials must be
// merged in shard-index order to keep sums and reservoirs deterministic.
func (a *classAcc) merge(b *classAcc) {
	a.count += b.count
	a.sum += b.sum
	if room := epsilonReservoir - len(a.dev); room > 0 {
		if room > len(b.dev) {
			room = len(b.dev)
		}
		a.dev = append(a.dev, b.dev[:room]...)
	}
}

func (a *classAcc) coef() Coef {
	if a.count == 0 {
		return Coef{}
	}
	p := a.sum / float64(a.count)
	var dev float64
	if p > 0 {
		for _, q := range a.dev {
			dev += math.Abs((q - p) / p)
		}
		dev /= float64(len(a.dev))
	}
	return Coef{P: p, Epsilon: dev, Count: int(a.count)}
}

// convTracker runs the convergence check of Section 4.1 on merged shard
// checkpoints: the first merged shard boundary at or past each multiple of
// CheckEvery patterns.
type convTracker struct {
	tol        float64
	checkEvery int
	nextCheck  int
	prev       []float64 // per-class mean at the previous checkpoint
	prevCount  []int64   // per-class sample count at the previous checkpoint
}

func newConvTracker(m int, tol float64, checkEvery int) *convTracker {
	return &convTracker{
		tol:        tol,
		checkEvery: checkEvery,
		nextCheck:  checkEvery,
		prev:       make([]float64, m),
		prevCount:  make([]int64, m),
	}
}

// check evaluates a convergence checkpoint at the current merged state of
// `patterns` characterization pairs. checked reports whether a checkpoint
// was due (and worst is meaningful); stop reports whether the run has
// converged under the tracker's tolerance.
func (c *convTracker) check(basic []classAcc, patterns int) (worst float64, checked, stop bool) {
	if patterns < c.nextCheck {
		return 0, false, false
	}
	c.nextCheck = patterns - patterns%c.checkEvery + c.checkEvery
	worst = convergenceWorst(basic, c.prev, c.prevCount)
	return worst, true, c.tol > 0 && worst < c.tol && patterns >= 2*c.checkEvery
}

// convergenceWorst returns the largest relative change of any populated
// basic coefficient against the previous checkpoint, updating prev and
// prevCount in place. A class whose running mean is zero contributes
// nothing as long as no samples contradict it: a legitimately zero-mean
// class (or one with zero samples-delta since the last checkpoint) counts
// as converged instead of pinning the worst change at +Inf forever. Only
// a class that first turns nonzero — new samples with no usable baseline —
// reports +Inf, deferring convergence to the next checkpoint.
func convergenceWorst(basic []classAcc, prev []float64, prevCount []int64) float64 {
	worst := 0.0
	for k := range basic {
		n := basic[k].count
		if n == 0 {
			continue
		}
		cur := basic[k].sum / float64(n)
		switch {
		case prev[k] > 0:
			if change := math.Abs(cur-prev[k]) / prev[k]; change > worst {
				worst = change
			}
		case cur > 0 && n > prevCount[k]:
			worst = math.Inf(1)
		}
		prev[k] = cur
		prevCount[k] = n
	}
	return worst
}

// charPartial holds one shard's partial accumulators.
type charPartial struct {
	patterns int
	basic    []classAcc   // nil for biased-phase shards
	enhanced [][]classAcc // nil unless the enhanced table is being fitted
}

// Phase names reported through Hooks.PhaseStart/PhaseEnd.
const (
	// PhaseBasic is the unbiased stratified phase that fills the basic
	// Hd classes.
	PhaseBasic = "basic"
	// PhaseBiased is the density-stratified phase that populates the
	// extreme stable-zero classes of the enhanced table.
	PhaseBiased = "biased"
)

// Stream discriminators for shardSeed.
const (
	streamBasic  = 0 // phase 1: unbiased stratified pairs
	streamBiased = 1 // phase 2: density-stratified pairs (enhanced table)
	streamPortA  = 2 // CharacterizePorts, port A
	streamPortB  = 3 // CharacterizePorts, port B
)

// runCharShard simulates one shard of the characterization stream on the
// worker's own backend and returns its partial accumulators. The shard's
// pairs are generated up front and priced as one batch — the event
// backend walks them in the same order the pre-Backend code did (so its
// models stay bit-identical), while the bit-parallel backend prices 64 at
// a time. The model is only read (immutable bucket geometry), so shards
// may run concurrently.
func runCharShard(b Backend, model *Model, sh shard, seed int64, biased, enhanced bool) *charPartial {
	faultpoint.Delay("core.shard") // chaos: stragglers must not change the model
	m := model.InputBits
	part := &charPartial{patterns: sh.patterns}
	var ps *PairSource
	if biased {
		ps = newPairSource(m, shardSeed(seed, streamBiased, sh.index), true)
	} else {
		ps = newPairSource(m, shardSeed(seed, streamBasic, sh.index), false)
		part.basic = make([]classAcc, m)
	}
	if enhanced {
		part.enhanced = make([][]classAcc, m)
		for i := 1; i <= m; i++ {
			part.enhanced[i-1] = make([]classAcc, model.NumZBuckets(i))
		}
	}
	us := make([]logic.Word, sh.patterns)
	vs := make([]logic.Word, sh.patterns)
	q := make([]float64, sh.patterns)
	for j := range us {
		us[j], vs[j] = ps.Next()
	}
	b.Charges(us, vs, q)
	for j := range us {
		i := logic.Hd(us[j], vs[j])
		if part.basic != nil {
			part.basic[i-1].add(q[j])
		}
		if part.enhanced != nil {
			z := logic.StableZeros(us[j], vs[j])
			part.enhanced[i-1][model.ZBucket(i, z)].add(q[j])
		}
	}
	return part
}

// mergeEnhanced folds a shard's enhanced partials into the totals.
func mergeEnhanced(total, part [][]classAcc) {
	for i := range part {
		for zb := range part[i] {
			total[i][zb].merge(&part[i][zb])
		}
	}
}

// verifyNetlist statically lints the meter's netlist before any pattern
// is simulated. Meter construction finalizes the netlist, but surgery
// (netlist.RewireGateInput/RedriveGateOutput) and corruption can happen
// after that, and Finalize trusts caches Verify recomputes — so every
// characterization re-checks from first principles and fails with the
// typed, net-naming *netlist.VerifyError instead of wedging an engine.
func verifyNetlist(meter *power.Meter, moduleName string) error {
	nl := meter.Simulator().Netlist()
	if nl == nil {
		return nil
	}
	if err := nl.VerifyErr(); err != nil {
		return fmt.Errorf("core: refusing to characterize %s: %w", moduleName, err)
	}
	return nil
}

// Characterize runs the characterization process of Section 4.1 against
// the reference charge meter and returns the fitted model. The meter's
// module must have at least one input bit. With Workers > 1 (or the
// runtime.NumCPU default on multi-core hosts) the pattern stream is
// characterized by a worker pool over clones of the meter; see
// CharacterizeOptions.Workers for the determinism contract.
func Characterize(meter *power.Meter, moduleName string, opt CharacterizeOptions) (*Model, error) {
	opt.setDefaults()
	if err := verifyNetlist(meter, moduleName); err != nil {
		return nil, err
	}
	m := meter.NumInputBits()
	if m <= 0 {
		return nil, fmt.Errorf("core: module %s has no inputs", moduleName)
	}

	model := &Model{
		Module:    moduleName,
		InputBits: m,
		Basic:     make([]Coef, m),
		ZClusters: opt.ZClusters,
	}
	basic := make([]classAcc, m)
	var enhanced [][]classAcc
	if opt.Enhanced {
		enhanced = make([][]classAcc, m)
		for i := 1; i <= m; i++ {
			enhanced[i-1] = make([]classAcc, model.NumZBuckets(i))
		}
	}

	plan := shardPlan(opt.Patterns)
	workers := opt.workerCount()
	if workers > len(plan) {
		workers = len(plan)
	}
	backend, err := opt.resolveBackend(meter)
	if err != nil {
		return nil, err
	}
	backends := backendPool(backend, workers)

	conv := newConvTracker(m, opt.ConvergeTol, opt.CheckEvery)
	checkpoints := opt.ConvergeTol > 0 || opt.Hooks.wantsConvergence()
	patternsUsed := 0
	patternsBiased := 0
	stopped := false
	earlyStopAt := 0

	// Crash safety: restore a prior run's merged state when resuming, and
	// snapshot at shard boundaries while running. Because the accumulators
	// at a merged-shard boundary are a pure function of the shard prefix,
	// a resumed run that replays the remaining shards lands on exactly the
	// accumulators — and therefore the model — of an uninterrupted run.
	var ck *checkpointer
	if opt.Checkpoint.Path != "" {
		ck = newCheckpointer(&opt, moduleName, m)
	}
	resume, err := loadResume(&opt, moduleName, m, model, len(plan))
	if err != nil {
		return nil, err
	}
	basicStart, biasedStart, usedShards := 0, 0, 0
	basicDone := false
	if resume != nil {
		resume.restore(basic, enhanced, conv)
		patternsUsed = resume.PatternsBasic
		patternsBiased = resume.PatternsBiased
		stopped = resume.EarlyStopped
		earlyStopAt = resume.EarlyStopAt
		if resume.Phase == PhaseBiased {
			basicDone = true
			usedShards = resume.UsedShards
			biasedStart = resume.ShardsMerged
		} else {
			basicStart = resume.ShardsMerged
		}
		opt.Hooks.resumed(resume.Phase, resume.totalShardsMerged(),
			resume.PatternsBasic, resume.PatternsBiased)
	}

	// Phase 1: unbiased stratified pairs fill the basic classes (and, when
	// fitting the enhanced table, its unbiased share of the E_{i,z}
	// classes). The convergence check runs on the merged prefix only, so
	// the early-stop point is worker-count-independent.
	var interrupted error
	opt.Hooks.phaseStart(PhaseBasic, len(plan), opt.Patterns)
	if !basicDone {
		merged := runShardsOrdered(len(plan)-basicStart, workers,
			func(w, idx int) *charPartial {
				return runCharShard(backends[w], model, plan[basicStart+idx], opt.Seed, false, opt.Enhanced)
			},
			func(idx int, part *charPartial) bool {
				abs := basicStart + idx + 1 // shards merged so far, this one included
				for k := range basic {
					basic[k].merge(&part.basic[k])
				}
				if opt.Enhanced {
					mergeEnhanced(enhanced, part.enhanced)
				}
				patternsUsed += part.patterns
				opt.Hooks.patterns(part.patterns)
				opt.Hooks.shardMerged()
				// The convergence check must precede any snapshot at this
				// boundary: a checkpoint taken with a due check still
				// pending would resume into a different check cadence and
				// break the bit-identical guarantee.
				if checkpoints {
					if worst, checked, stop := conv.check(basic, patternsUsed); checked {
						opt.Hooks.convergence(patternsUsed, worst)
						if stop {
							// The stop decision itself is persisted by the
							// phase-boundary snapshot below, so a crash in
							// the biased phase never replays the check.
							stopped = true
							earlyStopAt = patternsUsed
							opt.Hooks.earlyStop(patternsUsed)
							return false
						}
					}
				}
				cur := cursor{phase: PhaseBasic, shardsMerged: abs, patternsBasic: patternsUsed}
				if opt.Interrupt != nil {
					if err := opt.Interrupt(); err != nil {
						interrupted = err
						ck.save(cur, basic, enhanced, conv)
						return false
					}
				}
				if ferr := faultpoint.Hit("core.merge"); ferr != nil {
					interrupted = ferr
					ck.save(cur, basic, enhanced, conv)
					return false
				}
				ck.maybeSave(cur, basic, enhanced, conv)
				return true
			})
		usedShards = basicStart + merged
	}
	opt.Hooks.phaseEnd(PhaseBasic)
	if interrupted != nil {
		return nil, fmt.Errorf("core: characterization of %s interrupted: %w", moduleName, interrupted)
	}

	// Phase 2 for the enhanced table: density-stratified pairs populate
	// the extreme stable-zero classes that uniform vectors almost never
	// produce (all-stable-bits-zero / -one, paper Fig. 2). These samples
	// feed only the enhanced accumulators, keeping the basic coefficients
	// unbiased for uniform streams. The biased budget mirrors the shards
	// phase 1 actually consumed.
	if opt.Enhanced {
		if ck != nil && !basicDone {
			// Phase boundary snapshot: a crash during the biased phase must
			// not replay the basic phase.
			ck.save(cursor{
				phase: PhaseBiased, usedShards: usedShards,
				patternsBasic: patternsUsed,
				earlyStopped:  stopped, earlyStopAt: earlyStopAt,
			}, basic, enhanced, conv)
		}
		opt.Hooks.phaseStart(PhaseBiased, usedShards, patternsUsed)
		runShardsOrdered(usedShards-biasedStart, workers,
			func(w, idx int) *charPartial {
				return runCharShard(backends[w], model, plan[biasedStart+idx], opt.Seed, true, true)
			},
			func(idx int, part *charPartial) bool {
				abs := biasedStart + idx + 1
				mergeEnhanced(enhanced, part.enhanced)
				patternsBiased += part.patterns
				opt.Hooks.patterns(part.patterns)
				opt.Hooks.shardMerged()
				cur := cursor{
					phase: PhaseBiased, shardsMerged: abs, usedShards: usedShards,
					patternsBasic: patternsUsed, patternsBiased: patternsBiased,
					earlyStopped: stopped, earlyStopAt: earlyStopAt,
				}
				if opt.Interrupt != nil {
					if err := opt.Interrupt(); err != nil {
						interrupted = err
						ck.save(cur, basic, enhanced, conv)
						return false
					}
				}
				if ferr := faultpoint.Hit("core.merge"); ferr != nil {
					interrupted = ferr
					ck.save(cur, basic, enhanced, conv)
					return false
				}
				ck.maybeSave(cur, basic, enhanced, conv)
				return true
			})
		opt.Hooks.phaseEnd(PhaseBiased)
		if interrupted != nil {
			return nil, fmt.Errorf("core: characterization of %s interrupted: %w", moduleName, interrupted)
		}
	}
	// The run is complete; a leftover checkpoint would make the next run
	// of this spec resume into an already-finished state.
	ck.remove()

	for k := range basic {
		model.Basic[k] = basic[k].coef()
	}
	if opt.Enhanced {
		model.Enhanced = make([][]Coef, m)
		for i := 1; i <= m; i++ {
			row := make([]Coef, len(enhanced[i-1]))
			for zb := range row {
				row[zb] = enhanced[i-1][zb].coef()
			}
			model.Enhanced[i-1] = row
		}
	}
	return model, model.Validate()
}
