package core

import (
	"fmt"
	"math"
	"math/rand"

	"hdpower/internal/logic"
	"hdpower/internal/power"
)

// CharacterizeOptions configures a characterization run.
type CharacterizeOptions struct {
	// Patterns is the number of transition pairs to simulate.
	// Defaults to 5000 (the lower end of the paper's 5000–10000 range).
	Patterns int
	// Enhanced additionally characterizes the stable-zero refined classes
	// of the enhanced model.
	Enhanced bool
	// ZClusters clusters the stable-zero axis of the enhanced model into
	// this many buckets per Hd class; 0 keeps full resolution.
	ZClusters int
	// Seed makes the characterization stream deterministic.
	Seed int64
	// ConvergeTol, if positive, ends the run early once the largest
	// relative change of any populated basic coefficient between
	// consecutive check intervals drops below this tolerance — the
	// paper's "characterization can be finished after the coefficient
	// values have converged".
	ConvergeTol float64
	// CheckEvery is the convergence check interval in patterns
	// (default 500).
	CheckEvery int
}

func (o *CharacterizeOptions) setDefaults() {
	if o.Patterns <= 0 {
		o.Patterns = 5000
	}
	if o.CheckEvery <= 0 {
		o.CheckEvery = 500
	}
}

// PairSource generates characterization vector pairs (u, v) stratified
// over the Hamming-distance axis: the flip count i is drawn uniformly from
// [1, m], so every class E_i receives samples even for wide inputs, where
// a plain uniform stream essentially never produces Hd 1 or Hd m.
//
// In the default (unbiased) mode the base vector is uniform random, which
// makes the per-class conditional distribution identical to that of a
// uniform pattern pair conditioned on its Hamming-distance — so the
// resulting p_i are unbiased for random evaluation streams. The biased
// mode additionally stratifies the ones-density of the base vector to
// populate the extreme stable-zero classes of the enhanced model; it is
// only used for the enhanced coefficient table.
type PairSource struct {
	m       int
	rng     *rand.Rand
	idx     []int // scratch permutation
	density bool  // stratify base-vector ones-density
}

// NewPairSource returns an unbiased stratified characterization pair
// source for m-bit input vectors.
func NewPairSource(m int, seed int64) *PairSource {
	return newPairSource(m, seed, false)
}

// NewBiasedPairSource returns a pair source that additionally stratifies
// the base vector's ones-density over [0.05, 0.95], covering the
// stable-zero axis of the enhanced model.
func NewBiasedPairSource(m int, seed int64) *PairSource {
	return newPairSource(m, seed, true)
}

func newPairSource(m int, seed int64, density bool) *PairSource {
	if m <= 0 {
		panic(fmt.Sprintf("core: non-positive input width %d", m))
	}
	idx := make([]int, m)
	for i := range idx {
		idx[i] = i
	}
	return &PairSource{m: m, rng: rand.New(rand.NewSource(seed)), idx: idx, density: density}
}

// Next returns the next characterization pair.
func (ps *PairSource) Next() (u, v logic.Word) {
	density := 0.5
	if ps.density {
		density = 0.05 + 0.9*ps.rng.Float64()
	}
	u = logic.NewWord(ps.m)
	for b := 0; b < ps.m; b++ {
		if ps.rng.Float64() < density {
			u.Set(b, true)
		}
	}
	i := 1 + ps.rng.Intn(ps.m)
	// Partial Fisher-Yates for i distinct flip positions.
	for k := 0; k < i; k++ {
		j := k + ps.rng.Intn(ps.m-k)
		ps.idx[k], ps.idx[j] = ps.idx[j], ps.idx[k]
	}
	v = u.Clone()
	for k := 0; k < i; k++ {
		v.Set(ps.idx[k], !v.Bit(ps.idx[k]))
	}
	return u, v
}

// classAcc accumulates the charge samples of one switching-event class.
type classAcc struct {
	samples []float64
	sum     float64
}

func (a *classAcc) add(q float64) {
	a.samples = append(a.samples, q)
	a.sum += q
}

func (a *classAcc) coef() Coef {
	n := len(a.samples)
	if n == 0 {
		return Coef{}
	}
	p := a.sum / float64(n)
	var dev float64
	if p > 0 {
		for _, q := range a.samples {
			dev += math.Abs((q - p) / p)
		}
		dev /= float64(n)
	}
	return Coef{P: p, Epsilon: dev, Count: n}
}

// Characterize runs the characterization process of Section 4.1 against
// the reference charge meter and returns the fitted model. The meter's
// module must have at least one input bit.
func Characterize(meter *power.Meter, moduleName string, opt CharacterizeOptions) (*Model, error) {
	opt.setDefaults()
	m := meter.NumInputBits()
	if m <= 0 {
		return nil, fmt.Errorf("core: module %s has no inputs", moduleName)
	}

	model := &Model{
		Module:    moduleName,
		InputBits: m,
		Basic:     make([]Coef, m),
		ZClusters: opt.ZClusters,
	}
	basic := make([]classAcc, m)
	var enhanced [][]classAcc
	if opt.Enhanced {
		enhanced = make([][]classAcc, m)
		for i := 1; i <= m; i++ {
			enhanced[i-1] = make([]classAcc, model.NumZBuckets(i))
		}
	}

	ps := NewPairSource(m, opt.Seed)
	prev := make([]float64, m) // last checkpoint's coefficients
	patternsUsed := 0
	for j := 0; j < opt.Patterns; j++ {
		u, v := ps.Next()
		meter.Reset(u)
		q := meter.Cycle(v)
		i := logic.Hd(u, v)
		basic[i-1].add(q)
		patternsUsed++
		if opt.Enhanced {
			z := logic.StableZeros(u, v)
			enhanced[i-1][model.ZBucket(i, z)].add(q)
		}

		if opt.ConvergeTol > 0 && (j+1)%opt.CheckEvery == 0 {
			worst := 0.0
			for k := range basic {
				if len(basic[k].samples) == 0 {
					continue
				}
				cur := basic[k].sum / float64(len(basic[k].samples))
				if prev[k] > 0 {
					change := math.Abs(cur-prev[k]) / prev[k]
					if change > worst {
						worst = change
					}
				} else if cur > 0 {
					worst = math.Inf(1)
				}
				prev[k] = cur
			}
			if worst < opt.ConvergeTol && j+1 >= 2*opt.CheckEvery {
				break
			}
		}
	}

	// Second phase for the enhanced table: density-stratified pairs
	// populate the extreme stable-zero classes that uniform vectors
	// almost never produce (all-stable-bits-zero / -one, paper Fig. 2).
	// These samples feed only the enhanced accumulators, keeping the
	// basic coefficients unbiased for uniform streams.
	if opt.Enhanced {
		biased := NewBiasedPairSource(m, opt.Seed+1)
		for j := 0; j < patternsUsed; j++ {
			u, v := biased.Next()
			meter.Reset(u)
			q := meter.Cycle(v)
			i := logic.Hd(u, v)
			z := logic.StableZeros(u, v)
			enhanced[i-1][model.ZBucket(i, z)].add(q)
		}
	}

	for k := range basic {
		model.Basic[k] = basic[k].coef()
	}
	if opt.Enhanced {
		model.Enhanced = make([][]Coef, m)
		for i := 1; i <= m; i++ {
			row := make([]Coef, len(enhanced[i-1]))
			for zb := range row {
				row[zb] = enhanced[i-1][zb].coef()
			}
			model.Enhanced[i-1] = row
		}
	}
	return model, model.Validate()
}
