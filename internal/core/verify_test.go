package core

import (
	"errors"
	"strings"
	"testing"

	"hdpower/internal/dwlib"
	"hdpower/internal/netlist"
	"hdpower/internal/power"
	"hdpower/internal/sim"
)

// TestCharacterizeRejectsInjectedLoop proves the pre-characterization
// verify hook: a netlist that was valid when the meter was built, then
// broken by surgery behind the meter's back, is rejected with the typed
// *netlist.VerifyError naming the cyclic nets — before any pattern is
// simulated.
func TestCharacterizeRejectsInjectedLoop(t *testing.T) {
	mod, err := dwlib.Lookup("ripple-adder")
	if err != nil {
		t.Fatal(err)
	}
	nl := mod.Build(4)
	meter, err := power.NewMeter(nl, sim.EventDriven)
	if err != nil {
		t.Fatal(err)
	}
	opt := CharacterizeOptions{Patterns: 64, Seed: 1, Workers: 1}

	// The untouched netlist characterizes fine.
	if _, err := Characterize(meter, "ripple-adder", opt); err != nil {
		t.Fatalf("clean netlist rejected: %v", err)
	}

	// Feed gate 0 its own output: a combinational self-loop.
	nl.RewireGateInput(0, 0, nl.GateOutput(0))

	_, err = Characterize(meter, "ripple-adder", opt)
	if err == nil {
		t.Fatal("Characterize accepted a netlist with a combinational loop")
	}
	var verr *netlist.VerifyError
	if !errors.As(err, &verr) {
		t.Fatalf("error is not a *netlist.VerifyError: %v", err)
	}
	var loop *netlist.Diag
	for i := range verr.Diags {
		if verr.Diags[i].Code == netlist.DiagCombLoop {
			loop = &verr.Diags[i]
		}
	}
	if loop == nil {
		t.Fatalf("no comb-loop diagnostic in %v", err)
	}
	if len(loop.Nets) < 2 || loop.Nets[0] != loop.Nets[len(loop.Nets)-1] {
		t.Fatalf("comb-loop diagnostic does not name a closed cycle: %v", loop.Nets)
	}
	if !strings.Contains(err.Error(), loop.Nets[0]) {
		t.Fatalf("error message %q does not name the cyclic net %q", err, loop.Nets[0])
	}
}

// TestCharacterizePortsRejectsInjectedLoop covers the same hook on the
// two-port characterization path.
func TestCharacterizePortsRejectsInjectedLoop(t *testing.T) {
	mod, err := dwlib.Lookup("csa-multiplier")
	if err != nil {
		t.Fatal(err)
	}
	nl := mod.Build(4)
	meter, err := power.NewMeter(nl, sim.EventDriven)
	if err != nil {
		t.Fatal(err)
	}
	nl.RewireGateInput(0, 0, nl.GateOutput(0))
	_, err = CharacterizePorts(meter, "csa-multiplier", 4, 4,
		CharacterizeOptions{Patterns: 64, Seed: 1, Workers: 1})
	var verr *netlist.VerifyError
	if !errors.As(err, &verr) {
		t.Fatalf("CharacterizePorts did not return a *netlist.VerifyError: %v", err)
	}
}
