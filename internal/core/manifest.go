package core

// manifest.go is the characterization flight recorder: a RunRecorder
// listens to the Hooks stream of one Characterize run and assembles a
// RunManifest — the auditable record of what the run actually did (seed,
// worker count, patterns per phase and per Hd class, convergence
// trajectory, final coefficients, wall/CPU time). Serving layers persist
// manifests next to their models; the CLI writes them with -trace. The
// paper's prototype-set studies (ALL/SEC/THI) are only reproducible when
// exactly this information survives the run.

import (
	"math"
	"sync"
	"time"
)

// ConvergencePoint is one convergence checkpoint of a run.
type ConvergencePoint struct {
	// Patterns is the merged pattern count at the checkpoint.
	Patterns int `json:"patterns"`
	// WorstChange is the largest relative change of any populated basic
	// coefficient since the previous checkpoint. -1 encodes "no usable
	// baseline yet" (a class first turned nonzero), which the tracker
	// reports as +Inf — JSON cannot carry infinities.
	WorstChange float64 `json:"worst_change"`
}

// RunManifest is the JSON flight-recorder record of one characterization
// run.
type RunManifest struct {
	// Module is the characterized module name as passed to Characterize.
	Module string `json:"module"`
	// Width is the operand width per port; 0 when the caller did not
	// provide one (core only knows InputBits).
	Width int `json:"width,omitempty"`
	// InputBits is the module's total input vector width.
	InputBits int `json:"input_bits,omitempty"`
	// Seed anchors the deterministic sharded pattern stream.
	Seed int64 `json:"seed"`
	// Workers is the resolved worker count (informational only: the
	// fitted model is identical for every value).
	Workers int `json:"workers"`
	// Backend is the resolved simulation backend ("event",
	// "bitparallel") that priced the pattern pairs. Unlike Workers it is
	// not informational-only: coefficients from different backends differ
	// by the glitch-approximation drift, so the manifest records which
	// engine produced them.
	Backend string `json:"backend,omitempty"`
	// Enhanced and ZClusters mirror the options that shape the fit.
	Enhanced  bool `json:"enhanced,omitempty"`
	ZClusters int  `json:"z_clusters,omitempty"`
	// PatternsBudget is the requested pattern budget after defaulting.
	PatternsBudget int `json:"patterns_budget"`
	// PatternsBasic / PatternsBiased are the patterns actually simulated
	// per phase (basic < budget on an early stop or interrupt).
	PatternsBasic  int `json:"patterns_basic"`
	PatternsBiased int `json:"patterns_biased,omitempty"`
	// ShardsPlanned / ShardsMerged count deterministic stream shards.
	ShardsPlanned int `json:"shards_planned"`
	ShardsMerged  int `json:"shards_merged"`
	// EarlyStop records a convergence-triggered stop and the patterns it
	// consumed.
	EarlyStop           bool `json:"early_stop"`
	EarlyStopAtPatterns int  `json:"early_stop_at_patterns,omitempty"`
	// Resumed records that the run restored state from a checkpoint of an
	// earlier process; ResumedFromPhase is the phase it continued in. The
	// pattern and shard totals include the restored portion, but
	// WallSeconds/CPUSeconds cover only the resumed segment.
	Resumed          bool   `json:"resumed,omitempty"`
	ResumedFromPhase string `json:"resumed_from_phase,omitempty"`
	// Convergence is the checkpoint trajectory (needs either a positive
	// ConvergeTol or any Convergence hook listener).
	Convergence []ConvergencePoint `json:"convergence,omitempty"`
	// Coefficients is the final basic table: per Hd class the mean charge
	// (p), intra-class deviation (epsilon) and sample count — "patterns
	// per Hd class" in one place. Empty when the run failed.
	Coefficients []Coef `json:"coefficients,omitempty"`
	// EnhancedCoefficients counts the enhanced table entries (the table
	// itself lives in the model).
	EnhancedCoefficients int `json:"enhanced_coefficients,omitempty"`
	// StartedAt is the wall-clock start of the run.
	StartedAt time.Time `json:"started_at"`
	// WallSeconds is the monotonic run duration.
	WallSeconds float64 `json:"wall_seconds"`
	// CPUSeconds is the process CPU time (user+system) consumed during
	// the run. It is a process-wide delta, so concurrent builds overlap;
	// 0 on platforms without rusage support.
	CPUSeconds float64 `json:"cpu_seconds,omitempty"`
	// Error is the run's failure, if any (interrupt, validation).
	Error string `json:"error,omitempty"`
}

// RunRecorder assembles a RunManifest from the hook stream of one
// Characterize call. Create one per run, join Hooks() into the run's hook
// set, and call Finish once the run settles:
//
//	rec := core.NewRunRecorder(module, opt)
//	opt.Hooks = core.JoinHooks(opt.Hooks, rec.Hooks())
//	model, err := core.Characterize(meter, module, opt)
//	manifest := rec.Finish(model, err)
//
// The recorder is safe for use with the concurrent engine: hooks arrive
// on the merging goroutine, Finish may be called from any goroutine.
type RunRecorder struct {
	mu    sync.Mutex
	man   RunManifest
	phase string
	start time.Time
	cpu0  float64
	done  bool
}

// NewRunRecorder starts recording a run configured by opt (defaults are
// applied to a copy, so the manifest reflects the effective budget).
func NewRunRecorder(module string, opt CharacterizeOptions) *RunRecorder {
	eff := opt
	eff.setDefaults()
	return &RunRecorder{
		man: RunManifest{
			Module:         module,
			Seed:           eff.Seed,
			Workers:        eff.workerCount(),
			Backend:        eff.Backend.Name(),
			Enhanced:       eff.Enhanced,
			ZClusters:      eff.ZClusters,
			PatternsBudget: eff.Patterns,
			//hdlint:allow nondeterminism manifest timestamps are observability-only, never model inputs
			StartedAt: time.Now(),
		},
		//hdlint:allow nondeterminism wall-time span feeds the manifest, not the model
		start: time.Now(),
		cpu0:  processCPUSeconds(),
	}
}

// Hooks returns the recorder's hook set; join it with any other observers
// via JoinHooks.
func (r *RunRecorder) Hooks() *Hooks {
	return &Hooks{
		PhaseStart: func(phase string, shards, patterns int) {
			r.mu.Lock()
			defer r.mu.Unlock()
			r.phase = phase
			if phase == PhaseBasic {
				r.man.ShardsPlanned = shards
			}
		},
		PhaseEnd: func(phase string) {
			r.mu.Lock()
			defer r.mu.Unlock()
			r.phase = ""
		},
		PatternsSimulated: func(n int) {
			r.mu.Lock()
			defer r.mu.Unlock()
			if r.phase == PhaseBiased {
				r.man.PatternsBiased += n
			} else {
				r.man.PatternsBasic += n
			}
		},
		ShardMerged: func() {
			r.mu.Lock()
			defer r.mu.Unlock()
			r.man.ShardsMerged++
		},
		Convergence: func(patterns int, worst float64) {
			if math.IsInf(worst, 1) {
				worst = -1
			}
			r.mu.Lock()
			defer r.mu.Unlock()
			r.man.Convergence = append(r.man.Convergence,
				ConvergencePoint{Patterns: patterns, WorstChange: worst})
		},
		EarlyStop: func(used int) {
			r.mu.Lock()
			defer r.mu.Unlock()
			r.man.EarlyStop = true
			r.man.EarlyStopAtPatterns = used
		},
		Resumed: func(phase string, shards, patternsBasic, patternsBiased int) {
			r.mu.Lock()
			defer r.mu.Unlock()
			r.man.Resumed = true
			r.man.ResumedFromPhase = phase
			// Fold the restored progress in, so the manifest totals describe
			// the whole run, not just the resumed segment.
			r.man.ShardsMerged += shards
			r.man.PatternsBasic += patternsBasic
			r.man.PatternsBiased += patternsBiased
		},
	}
}

// Finish stamps timings and the fitted model's final state (nil on
// failure) and returns the completed manifest. Finish is idempotent:
// later calls return the manifest from the first.
func (r *RunRecorder) Finish(model *Model, err error) *RunManifest {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.done {
		man := r.man
		return &man
	}
	r.done = true
	//hdlint:allow nondeterminism wall-time span feeds the manifest, not the model
	r.man.WallSeconds = time.Since(r.start).Seconds()
	if cpu := processCPUSeconds(); cpu > 0 {
		r.man.CPUSeconds = cpu - r.cpu0
	}
	if err != nil {
		r.man.Error = err.Error()
	}
	if model != nil {
		r.man.InputBits = model.InputBits
		r.man.Coefficients = append([]Coef(nil), model.Basic...)
		_, r.man.EnhancedCoefficients = model.NumCoefficients()
	}
	man := r.man
	return &man
}
