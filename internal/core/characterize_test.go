package core

import (
	"fmt"
	"math"
	"reflect"
	"testing"

	"hdpower/internal/dwlib"
	"hdpower/internal/logic"
	"hdpower/internal/power"
	"hdpower/internal/sim"
	"hdpower/internal/stimuli"
)

func meterFor(t *testing.T, name string, width int) *power.Meter {
	t.Helper()
	mod, err := dwlib.Lookup(name)
	if err != nil {
		t.Fatal(err)
	}
	m, err := power.NewMeter(mod.Build(width), sim.EventDriven)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestPairSourceCoversAllClasses(t *testing.T) {
	const m = 16
	ps := NewPairSource(m, 1)
	seen := make(map[int]int)
	for k := 0; k < 4000; k++ {
		u, v := ps.Next()
		if u.Width() != m || v.Width() != m {
			t.Fatal("pair width wrong")
		}
		seen[logic.Hd(u, v)]++
	}
	for i := 1; i <= m; i++ {
		if seen[i] < 50 {
			t.Errorf("Hd class %d saw only %d samples", i, seen[i])
		}
	}
	if seen[0] != 0 {
		t.Error("pair source produced identical vectors")
	}
}

func TestPairSourceCoversStableZeroRange(t *testing.T) {
	const m = 12
	ps := NewPairSource(m, 2)
	lowZ, highZ := 0, 0
	for k := 0; k < 3000; k++ {
		u, v := ps.Next()
		if logic.Hd(u, v) != 1 {
			continue
		}
		z := logic.StableZeros(u, v)
		if z <= 2 {
			lowZ++
		}
		if z >= m-3 {
			highZ++
		}
	}
	if lowZ == 0 || highZ == 0 {
		t.Errorf("stable-zero coverage: low %d, high %d", lowZ, highZ)
	}
}

func TestCharacterizeRippleAdder(t *testing.T) {
	meter := meterFor(t, "ripple-adder", 4) // m = 8
	model, err := Characterize(meter, "ripple-adder-4", CharacterizeOptions{
		Patterns: 3000, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if model.InputBits != 8 {
		t.Fatalf("input bits = %d", model.InputBits)
	}
	// Every class should be populated at this width.
	for i := 1; i <= 8; i++ {
		if model.Basic[i-1].Count == 0 {
			t.Errorf("class %d unpopulated", i)
		}
	}
	// Figure 1 shape: coefficients grow with Hamming-distance. Allow
	// small non-monotonicity from sampling noise at adjacent classes but
	// demand the global trend.
	if !(model.P(8) > model.P(4) && model.P(4) > model.P(1)) {
		t.Errorf("coefficients not increasing: p1=%v p4=%v p8=%v",
			model.P(1), model.P(4), model.P(8))
	}
	if model.P(1) <= 0 {
		t.Errorf("p1 = %v", model.P(1))
	}
}

func TestCharacterizeDeterministicInSeed(t *testing.T) {
	a, err := Characterize(meterFor(t, "absval", 6), "absval-6",
		CharacterizeOptions{Patterns: 500, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Characterize(meterFor(t, "absval", 6), "absval-6",
		CharacterizeOptions{Patterns: 500, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Basic {
		if a.Basic[i] != b.Basic[i] {
			t.Fatalf("class %d differs across identical runs", i+1)
		}
	}
}

func TestCharacterizeEnhancedResolvesZeroBias(t *testing.T) {
	// Figure 2 shape: for the same Hd, transitions where the stable bits
	// are all zero must cost measurably less than transitions where the
	// stable bits are all ones (more of the multiplier array is active).
	meter := meterFor(t, "csa-multiplier", 4) // m = 8
	model, err := Characterize(meter, "csa-multiplier-4x4", CharacterizeOptions{
		Patterns: 8000, Enhanced: true, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	i := 2 // low-Hd class shows the effect most clearly (paper Fig. 2)
	allZero := model.Enhanced[i-1][model.ZBucket(i, 8-i)]
	noneZero := model.Enhanced[i-1][model.ZBucket(i, 0)]
	if allZero.Count == 0 || noneZero.Count == 0 {
		t.Skip("extreme classes not populated at this pattern budget")
	}
	if allZero.P >= noneZero.P {
		t.Errorf("all-stable-zero coefficient %v not below none-zero %v",
			allZero.P, noneZero.P)
	}
}

func TestCharacterizeConvergenceStopsEarly(t *testing.T) {
	meter := meterFor(t, "parity-tree", 8)
	model, err := Characterize(meter, "parity-8", CharacterizeOptions{
		Patterns: 100000, ConvergeTol: 0.02, CheckEvery: 250, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, c := range model.Basic {
		total += c.Count
	}
	if total >= 100000 {
		t.Errorf("convergence did not stop early (used %d patterns)", total)
	}
	if total < 500 {
		t.Errorf("stopped implausibly early (%d patterns)", total)
	}
}

func TestCharacterizedModelEstimatesRandomStreamWell(t *testing.T) {
	// End-to-end: the basic model's average-power estimate for a random
	// stream (same statistics as characterization) must be within a few
	// percent of the simulated reference — the paper's Table 1, data type
	// I, average charge column (errors of 1–4%).
	meter := meterFor(t, "csa-multiplier", 4)
	model, err := Characterize(meter, "csa-multiplier-4x4",
		CharacterizeOptions{Patterns: 6000, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	eval := meterFor(t, "csa-multiplier", 4)
	vecs := stimuli.Take(stimuli.Random(8, 77), 2001)
	tr, err := eval.Run(vecs)
	if err != nil {
		t.Fatal(err)
	}
	est := model.EstimateBasic(tr.Hd)
	eps, err := power.AvgError(est, tr.Q)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(eps) > 8 {
		t.Errorf("average-charge error on random stream = %.1f%%, want within 8%%", eps)
	}
}

func TestEnhancedBeatsBasicOnCounterStream(t *testing.T) {
	// The paper's headline Table 2 result: for the counter stream (sign
	// bits frozen at zero) the enhanced model's average error improves
	// substantially over the basic model.
	meter := meterFor(t, "csa-multiplier", 4)
	model, err := Characterize(meter, "csa-multiplier-4x4",
		CharacterizeOptions{Patterns: 10000, Enhanced: true, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	eval := meterFor(t, "csa-multiplier", 4)
	counter := stimuli.Concat(
		stimuli.NewStream(stimuli.TypeCounter, 4, 0),
		stimuli.NewStream(stimuli.TypeCounter, 4, 1),
	)
	tr, err := eval.Run(stimuli.Take(counter, 2001))
	if err != nil {
		t.Fatal(err)
	}
	basicEst := model.EstimateBasic(tr.Hd)
	enhEst, err := model.EstimateEnhanced(tr.Hd, tr.StableZeros)
	if err != nil {
		t.Fatal(err)
	}
	basicErr, _ := power.AvgError(basicEst, tr.Q)
	enhErr, _ := power.AvgError(enhEst, tr.Q)
	if math.Abs(enhErr) >= math.Abs(basicErr) {
		t.Errorf("enhanced |%.1f%%| not better than basic |%.1f%%| on counter stream",
			enhErr, basicErr)
	}
}

// modelsIdentical asserts bit-identical basic and enhanced tables.
func modelsIdentical(t *testing.T, ref, got *Model, label string) {
	t.Helper()
	if !reflect.DeepEqual(ref.Basic, got.Basic) {
		t.Fatalf("%s: basic coefficients differ", label)
	}
	if !reflect.DeepEqual(ref.Enhanced, got.Enhanced) {
		t.Fatalf("%s: enhanced coefficients differ", label)
	}
}

// TestCharacterizeWorkerCountIndependent is the engine's determinism
// contract: for a fixed seed, Workers ∈ {1, 2, 7} must produce
// bit-identical Basic and Enhanced coefficient tables.
func TestCharacterizeWorkerCountIndependent(t *testing.T) {
	for _, enhanced := range []bool{false, true} {
		opt := CharacterizeOptions{Patterns: 1200, Seed: 9, Enhanced: enhanced, Workers: 1}
		ref, err := Characterize(meterFor(t, "csa-multiplier", 4), "csa", opt)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 7} {
			opt.Workers = workers
			got, err := Characterize(meterFor(t, "csa-multiplier", 4), "csa", opt)
			if err != nil {
				t.Fatal(err)
			}
			modelsIdentical(t, ref, got,
				fmt.Sprintf("enhanced=%v workers=%d", enhanced, workers))
		}
	}
}

// TestCharacterizeConvergenceWorkerCountIndependent checks that the
// early-stop decision itself is worker-count-independent: the convergence
// check runs on merged shard prefixes, so every worker count must stop
// after the same number of patterns and produce the same model.
func TestCharacterizeConvergenceWorkerCountIndependent(t *testing.T) {
	opt := CharacterizeOptions{
		Patterns: 50000, ConvergeTol: 0.05, CheckEvery: 200, Seed: 17, Workers: 1,
	}
	ref, err := Characterize(meterFor(t, "ripple-adder", 4), "add", opt)
	if err != nil {
		t.Fatal(err)
	}
	refPatterns := 0
	for _, c := range ref.Basic {
		refPatterns += c.Count
	}
	if refPatterns >= 50000 {
		t.Fatalf("reference run did not stop early (%d patterns)", refPatterns)
	}
	for _, workers := range []int{2, 7} {
		opt.Workers = workers
		got, err := Characterize(meterFor(t, "ripple-adder", 4), "add", opt)
		if err != nil {
			t.Fatal(err)
		}
		gotPatterns := 0
		for _, c := range got.Basic {
			gotPatterns += c.Count
		}
		if gotPatterns != refPatterns {
			t.Fatalf("workers=%d stopped after %d patterns, want %d",
				workers, gotPatterns, refPatterns)
		}
		modelsIdentical(t, ref, got, fmt.Sprintf("converging workers=%d", workers))
	}
}

// TestCharacterizePortsWorkerCountIndependent extends the determinism
// contract to the port-resolved model.
func TestCharacterizePortsWorkerCountIndependent(t *testing.T) {
	opt := CharacterizeOptions{Patterns: 900, Seed: 5, Workers: 1}
	ref, err := CharacterizePorts(meterFor(t, "csa-multiplier", 4), "csa", 4, 4, opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 7} {
		opt.Workers = workers
		got, err := CharacterizePorts(meterFor(t, "csa-multiplier", 4), "csa", 4, 4, opt)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(ref.Coeffs, got.Coeffs) {
			t.Fatalf("workers=%d: port coefficients differ", workers)
		}
	}
}
