// Package sim provides gate-level logic simulation for netlists built with
// internal/netlist. Three engines are available:
//
//   - ZeroDelay: levelized two-valued simulation; every net toggles at most
//     once per applied vector. Fast, glitch-free reference.
//   - EventDriven: transport-delay event simulation with the per-gate
//     intrinsic delays from the cell library; hazards propagate, so a net
//     may toggle several times per cycle. This is the engine the charge
//     model uses to play the role of the paper's PowerMill reference
//     simulator, because glitch power is what makes module power a
//     nonlinear function of the input Hamming-distance.
//   - Inertial: like EventDriven, but pulses narrower than a gate's delay
//     are filtered (inertial delay); per-net activity lies between the
//     other two engines. Used for glitch-filterability ablations.
//
// The simulation protocol mirrors the paper's characterization procedure:
// Settle(u) establishes a quiescent state on vector u without recording
// activity, then Apply(v) switches the inputs to v and returns the per-net
// toggle counts of the resulting transient.
//
// # Concurrency
//
// A Simulator is not safe for concurrent use, but Clone returns an
// independent simulator over the same finalized netlist: clones share the
// immutable topology (netlist, input ordering, topological order, per-gate
// delays, fanout tables) and own all mutable value/toggle/event state, so
// one simulator per goroutine — the original and any number of clones —
// may run Settle/Apply concurrently. Cloning is O(nets), far cheaper than
// New, which is what makes worker pools over a shared netlist practical.
package sim

import (
	"fmt"

	"hdpower/internal/cells"
	"hdpower/internal/logic"
	"hdpower/internal/netlist"
)

// Engine selects the simulation algorithm.
type Engine int

const (
	// ZeroDelay evaluates gates in levelized order with no timing.
	ZeroDelay Engine = iota
	// EventDriven uses per-gate delays (transport-delay style) and counts
	// every glitch transition.
	EventDriven
	// Inertial uses per-gate delays with inertial filtering: pulses
	// narrower than a gate's delay are swallowed, as in real logic.
	Inertial
)

// String names the engine.
func (e Engine) String() string {
	switch e {
	case ZeroDelay:
		return "zero-delay"
	case EventDriven:
		return "event-driven"
	case Inertial:
		return "inertial"
	}
	return fmt.Sprintf("Engine(%d)", int(e))
}

// Simulator simulates one netlist. It is not safe for concurrent use;
// create one Simulator per goroutine (see Clone).
type Simulator struct {
	nl     *netlist.Netlist
	engine Engine

	// Immutable after New; shared between clones.
	inputNets []netlist.NetID
	order     []netlist.GateID
	fanout    [][]netlist.GateID // per-net fanout gates, precomputed
	delay     []int              // per-gate delay, precomputed

	value   []bool  // current value per net
	toggles []int64 // per-net toggle counts of the last Apply

	// event-driven state
	buckets   [][]netlist.GateID // time wheel, index = absolute time
	scheduled []int              // last time a gate was scheduled, -1 if never

	// inertial-engine state
	pending []*inertialEvent

	// value-change recording (used by DumpVCD)
	recording bool
	record    []event

	settled bool
}

// New creates a simulator for the netlist. The netlist is finalized
// (validated) as a side effect.
func New(nl *netlist.Netlist, engine Engine) (*Simulator, error) {
	if err := nl.Finalize(); err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	if engine != ZeroDelay && engine != EventDriven && engine != Inertial {
		return nil, fmt.Errorf("sim: unknown engine %d", int(engine))
	}
	s := &Simulator{
		nl:        nl,
		engine:    engine,
		inputNets: nl.InputNets(),
		order:     nl.TopoOrder(),
		value:     make([]bool, nl.NumNets()),
		toggles:   make([]int64, nl.NumNets()),
		scheduled: make([]int, nl.NumGates()),
		delay:     make([]int, nl.NumGates()),
	}
	for g := 0; g < nl.NumGates(); g++ {
		s.delay[g] = cells.Lookup(nl.GateKind(netlist.GateID(g))).Delay
	}
	// Flatten the fanout gate lists once; the event loops walk them on
	// every transition and must not allocate there.
	s.fanout = make([][]netlist.GateID, nl.NumNets())
	for id := 0; id < nl.NumNets(); id++ {
		pins := nl.FanoutPins(netlist.NetID(id))
		if len(pins) == 0 {
			continue
		}
		gates := make([]netlist.GateID, len(pins))
		for i, p := range pins {
			gates[i] = p.Gate
		}
		s.fanout[id] = gates
	}
	// Constants hold their value forever.
	for id := 0; id < nl.NumNets(); id++ {
		if v, isConst := nl.IsConst(netlist.NetID(id)); isConst {
			s.value[id] = v
		}
	}
	return s, nil
}

// Clone returns an independent simulator over the same finalized netlist.
// The clone shares the receiver's immutable topology — netlist, input
// ordering, topological order, per-gate delays, and fanout tables — and
// owns fresh value, toggle, and event state, so the clone and the receiver
// may simulate concurrently on different goroutines. The clone starts
// unsettled (Settle must be called before Apply) regardless of the
// receiver's state, and never inherits VCD recording.
func (s *Simulator) Clone() *Simulator {
	c := &Simulator{
		nl:        s.nl,
		engine:    s.engine,
		inputNets: s.inputNets,
		order:     s.order,
		fanout:    s.fanout,
		delay:     s.delay,
		value:     make([]bool, len(s.value)),
		toggles:   make([]int64, len(s.toggles)),
		scheduled: make([]int, len(s.scheduled)),
	}
	for id := 0; id < c.nl.NumNets(); id++ {
		if v, isConst := c.nl.IsConst(netlist.NetID(id)); isConst {
			c.value[id] = v
		}
	}
	return c
}

// Netlist returns the simulated netlist.
func (s *Simulator) Netlist() *netlist.Netlist { return s.nl }

// EngineKind returns the configured engine.
func (s *Simulator) EngineKind() Engine { return s.engine }

// NumInputBits returns the width of the input vector expected by Settle
// and Apply.
func (s *Simulator) NumInputBits() int { return len(s.inputNets) }

func (s *Simulator) checkWidth(v logic.Word) {
	if v.Width() != len(s.inputNets) {
		panic(fmt.Sprintf("sim: input vector width %d, netlist has %d input bits",
			v.Width(), len(s.inputNets)))
	}
}

// Settle forces the circuit into the steady state for input vector u
// without recording any switching activity. It must be called before the
// first Apply.
func (s *Simulator) Settle(u logic.Word) {
	s.checkWidth(u)
	for i, id := range s.inputNets {
		s.value[id] = u.Bit(i)
	}
	// Steady state is engine-independent: evaluate in topological order.
	for _, g := range s.order {
		s.value[s.nl.GateOutput(g)] = s.evalGate(g)
	}
	s.settled = true
}

func (s *Simulator) evalGate(g netlist.GateID) bool {
	ins := s.nl.GateInputs(g)
	switch s.nl.GateKind(g) {
	// Hot path: inline the common kinds to avoid slice allocation.
	case cells.Inv:
		return !s.value[ins[0]]
	case cells.Buf:
		return s.value[ins[0]]
	case cells.And2:
		return s.value[ins[0]] && s.value[ins[1]]
	case cells.Or2:
		return s.value[ins[0]] || s.value[ins[1]]
	case cells.Nand2:
		return !(s.value[ins[0]] && s.value[ins[1]])
	case cells.Nor2:
		return !(s.value[ins[0]] || s.value[ins[1]])
	case cells.Xor2:
		return s.value[ins[0]] != s.value[ins[1]]
	case cells.Xnor2:
		return s.value[ins[0]] == s.value[ins[1]]
	case cells.Mux2:
		if s.value[ins[2]] {
			return s.value[ins[1]]
		}
		return s.value[ins[0]]
	default:
		buf := make([]bool, len(ins))
		for i, id := range ins {
			buf[i] = s.value[id]
		}
		return cells.Eval(s.nl.GateKind(g), buf)
	}
}

// Apply switches the inputs to vector v, simulates the transient, and
// returns the per-net toggle counts. The returned slice is reused by the
// next Apply; callers that retain it must copy.
func (s *Simulator) Apply(v logic.Word) []int64 {
	s.checkWidth(v)
	if !s.settled {
		panic("sim: Apply before Settle")
	}
	for i := range s.toggles {
		s.toggles[i] = 0
	}
	switch s.engine {
	case ZeroDelay:
		s.applyZeroDelay(v)
	case EventDriven:
		s.applyEventDriven(v)
	case Inertial:
		s.applyInertial(v)
	}
	return s.toggles
}

func (s *Simulator) applyZeroDelay(v logic.Word) {
	for i, id := range s.inputNets {
		nv := v.Bit(i)
		if s.value[id] != nv {
			s.value[id] = nv
			s.toggles[id]++
		}
	}
	for _, g := range s.order {
		out := s.nl.GateOutput(g)
		nv := s.evalGate(g)
		if s.value[out] != nv {
			s.value[out] = nv
			s.toggles[out]++
		}
	}
}

func (s *Simulator) applyEventDriven(v logic.Word) {
	for i := range s.scheduled {
		s.scheduled[i] = -1
	}
	s.buckets = s.buckets[:0]

	// Input edges at t = 0 schedule their fanout gates.
	for i, id := range s.inputNets {
		nv := v.Bit(i)
		if s.value[id] != nv {
			s.value[id] = nv
			s.toggles[id]++
			if s.recording {
				s.record = append(s.record, event{time: 0, net: id, val: nv})
			}
			s.scheduleFanout(id, 0)
		}
	}
	for t := 0; t < len(s.buckets); t++ {
		bucket := s.buckets[t]
		for _, g := range bucket {
			out := s.nl.GateOutput(g)
			nv := s.evalGate(g)
			if s.value[out] != nv {
				s.value[out] = nv
				s.toggles[out]++
				if s.recording {
					s.record = append(s.record, event{time: t, net: out, val: nv})
				}
				s.scheduleFanout(out, t)
			}
		}
	}
}

// scheduleFanout schedules evaluation of every gate fed by net id, at
// time now + delay(gate). Duplicate same-time schedules are suppressed.
func (s *Simulator) scheduleFanout(id netlist.NetID, now int) {
	for _, g := range s.fanout[id] {
		t := now + s.delay[g]
		if s.scheduled[g] == t {
			continue
		}
		s.scheduled[g] = t
		for len(s.buckets) <= t {
			s.buckets = append(s.buckets, nil)
		}
		s.buckets[t] = append(s.buckets[t], g)
	}
}

// NetValue returns the current steady-state value of a net.
func (s *Simulator) NetValue(id netlist.NetID) bool { return s.value[id] }

// OutputWord reads an output bus as a word (LSB first).
func (s *Simulator) OutputWord(b netlist.Bus) logic.Word {
	w := logic.NewWord(b.Width())
	for i, id := range b.Nets {
		w.Set(i, s.value[id])
	}
	return w
}

// Eval is a convenience for functional verification: it settles on the
// vector and returns the value of the named output bus. Activity counters
// are left in an unspecified state.
func (s *Simulator) Eval(v logic.Word, output string) (logic.Word, error) {
	for _, b := range s.nl.Outputs() {
		if b.Name == output {
			s.Settle(v)
			return s.OutputWord(b), nil
		}
	}
	return logic.Word{}, fmt.Errorf("sim: netlist %s has no output bus %q", s.nl.Name, output)
}
