package sim

import (
	"fmt"
	"io"
	"sort"

	"hdpower/internal/logic"
	"hdpower/internal/netlist"
)

// event is one recorded value change during an event-driven transient.
type event struct {
	time int
	net  netlist.NetID
	val  bool
}

// DumpVCD simulates the vector stream on the event-driven engine and
// writes the resulting waveforms — including glitches — as a Value Change
// Dump (IEEE 1364 §18) to w. The first vector settles the circuit and
// defines the state at time 0; each subsequent vector starts a new cycle
// of cycleTime time units (pass 0 to size cycles automatically from the
// circuit depth). Useful for inspecting hazard activity with any VCD
// viewer.
func DumpVCD(w io.Writer, nl *netlist.Netlist, vectors []logic.Word, cycleTime int) error {
	if len(vectors) < 1 {
		return fmt.Errorf("sim: DumpVCD needs at least one vector")
	}
	s, err := New(nl, EventDriven)
	if err != nil {
		return err
	}
	if cycleTime <= 0 {
		// Longest path is bounded by depth x max cell delay (3); leave
		// slack so cycles never overlap.
		cycleTime = 4*nl.Depth() + 8
	}

	// Header and variable declarations.
	if _, err := fmt.Fprintf(w, "$timescale 1ns $end\n$scope module %s $end\n", nl.Name); err != nil {
		return err
	}
	ids := make([]string, nl.NumNets())
	for id := 0; id < nl.NumNets(); id++ {
		ids[id] = vcdID(id)
		if _, err := fmt.Fprintf(w, "$var wire 1 %s %s $end\n", ids[id],
			sanitize(nl.NetName(netlist.NetID(id)))); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprint(w, "$upscope $end\n$enddefinitions $end\n"); err != nil {
		return err
	}

	// Initial state at time 0.
	s.Settle(vectors[0])
	if _, err := fmt.Fprintln(w, "$dumpvars"); err != nil {
		return err
	}
	for id := 0; id < nl.NumNets(); id++ {
		if _, err := fmt.Fprintf(w, "%s%s\n", bit(s.NetValue(netlist.NetID(id))), ids[id]); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(w, "$end"); err != nil {
		return err
	}

	// Cycles.
	for c, v := range vectors[1:] {
		base := (c + 1) * cycleTime
		s.record = s.record[:0]
		s.recording = true
		s.Apply(v)
		s.recording = false
		evs := append([]event(nil), s.record...)
		sort.SliceStable(evs, func(a, b int) bool { return evs[a].time < evs[b].time })
		// Every cycle gets a start marker even if nothing switches.
		if _, err := fmt.Fprintf(w, "#%d\n", base); err != nil {
			return err
		}
		last := 0
		for _, e := range evs {
			if e.time != last {
				if _, err := fmt.Fprintf(w, "#%d\n", base+e.time); err != nil {
					return err
				}
				last = e.time
			}
			if _, err := fmt.Fprintf(w, "%s%s\n", bit(e.val), ids[e.net]); err != nil {
				return err
			}
		}
	}
	_, err = fmt.Fprintf(w, "#%d\n", len(vectors)*cycleTime)
	return err
}

func bit(v bool) string {
	if v {
		return "1"
	}
	return "0"
}

// vcdID maps a net index to a compact printable identifier (base-94 over
// the VCD identifier alphabet '!'..'~').
func vcdID(id int) string {
	const lo, hi = 33, 126
	n := hi - lo + 1
	out := []byte{}
	for {
		out = append(out, byte(lo+id%n))
		id /= n
		if id == 0 {
			break
		}
	}
	return string(out)
}

// sanitize makes a net name VCD-safe (no whitespace).
func sanitize(name string) string {
	b := []byte(name)
	for i, c := range b {
		if c == ' ' || c == '\t' {
			b[i] = '_'
		}
	}
	return string(b)
}
