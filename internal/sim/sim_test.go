package sim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hdpower/internal/logic"
	"hdpower/internal/netlist"
)

// fullAdderNetlist builds a 1-bit full adder with inputs a,b,cin and
// outputs s, co.
func fullAdderNetlist() *netlist.Netlist {
	n := netlist.New("fa")
	a := n.AddInputBus("a", 1)
	b := n.AddInputBus("b", 1)
	c := n.AddInputBus("cin", 1)
	s, co := n.FullAdder(a.Nets[0], b.Nets[0], c.Nets[0])
	n.MarkOutputBus("s", []netlist.NetID{s})
	n.MarkOutputBus("co", []netlist.NetID{co})
	return n
}

func TestFullAdderFunctionBothEngines(t *testing.T) {
	for _, engine := range []Engine{ZeroDelay, EventDriven} {
		s, err := New(fullAdderNetlist(), engine)
		if err != nil {
			t.Fatal(err)
		}
		for v := 0; v < 8; v++ {
			in := logic.FromUint(uint64(v), 3)
			sum, err := s.Eval(in, "s")
			if err != nil {
				t.Fatal(err)
			}
			co, err := s.Eval(in, "co")
			if err != nil {
				t.Fatal(err)
			}
			a, b, c := v&1, v>>1&1, v>>2&1
			wantSum := uint64((a + b + c) & 1)
			wantCo := uint64((a + b + c) >> 1)
			if sum.Uint() != wantSum || co.Uint() != wantCo {
				t.Errorf("%s: fa(%03b) = s%d co%d, want s%d co%d",
					engine, v, sum.Uint(), co.Uint(), wantSum, wantCo)
			}
		}
	}
}

func TestApplyBeforeSettlePanics(t *testing.T) {
	s, _ := New(fullAdderNetlist(), ZeroDelay)
	defer func() {
		if recover() == nil {
			t.Fatal("Apply before Settle did not panic")
		}
	}()
	s.Apply(logic.NewWord(3))
}

func TestWidthMismatchPanics(t *testing.T) {
	s, _ := New(fullAdderNetlist(), ZeroDelay)
	defer func() {
		if recover() == nil {
			t.Fatal("wrong-width Settle did not panic")
		}
	}()
	s.Settle(logic.NewWord(2))
}

func TestUnknownEngineRejected(t *testing.T) {
	if _, err := New(fullAdderNetlist(), Engine(7)); err == nil {
		t.Fatal("Engine(7) accepted")
	}
}

func TestZeroDelayTogglesAtMostOnce(t *testing.T) {
	s, _ := New(fullAdderNetlist(), ZeroDelay)
	rng := rand.New(rand.NewSource(7))
	s.Settle(logic.FromUint(uint64(rng.Intn(8)), 3))
	for i := 0; i < 100; i++ {
		tog := s.Apply(logic.FromUint(uint64(rng.Intn(8)), 3))
		for id, c := range tog {
			if c > 1 {
				t.Fatalf("net %d toggled %d times under zero delay", id, c)
			}
		}
	}
}

func TestIdenticalVectorNoActivity(t *testing.T) {
	for _, engine := range []Engine{ZeroDelay, EventDriven} {
		s, _ := New(fullAdderNetlist(), engine)
		v := logic.FromUint(5, 3)
		s.Settle(v)
		tog := s.Apply(v)
		for id, c := range tog {
			if c != 0 {
				t.Errorf("%s: net %d toggled %d times on identical vector", engine, id, c)
			}
		}
	}
}

// glitchCircuit: y = a XOR a' where a' is a delayed through a long buffer
// chain. A single input edge causes y to glitch under event-driven timing
// but y stays 0 in the steady state.
func glitchCircuit(chainLen int) *netlist.Netlist {
	n := netlist.New("glitch")
	a := n.AddInputBus("a", 1)
	cur := a.Nets[0]
	for i := 0; i < chainLen; i++ {
		cur = n.Not(n.Not(cur)) // two inverters keep polarity
	}
	y := n.Xor(a.Nets[0], cur)
	n.MarkOutputBus("y", []netlist.NetID{y})
	return n
}

func TestEventDrivenCountsGlitches(t *testing.T) {
	nl := glitchCircuit(4)
	yNet := nl.Outputs()[0].Nets[0]

	zd, _ := New(glitchCircuit(4), ZeroDelay)
	ed, _ := New(nl, EventDriven)

	zd.Settle(logic.FromUint(0, 1))
	ed.Settle(logic.FromUint(0, 1))
	zdTog := zd.Apply(logic.FromUint(1, 1))
	edTog := ed.Apply(logic.FromUint(1, 1))

	// Steady-state y is 0 before and after, so zero-delay sees no toggle.
	if zdTog[yNet] != 0 {
		t.Errorf("zero-delay toggled y %d times", zdTog[yNet])
	}
	// Event-driven must see the hazard pulse: an even, positive count.
	if edTog[yNet] == 0 {
		t.Error("event-driven saw no glitch on y")
	}
	if edTog[yNet]%2 != 0 {
		t.Errorf("glitch toggle count %d is odd though steady state is unchanged", edTog[yNet])
	}
	// Both engines agree on the final value.
	if zd.NetValue(yNet) != ed.NetValue(yNet) {
		t.Error("engines disagree on steady state")
	}
}

// Property: for random vector pairs the two engines always agree on the
// steady-state outputs, and each net's event-driven toggle count has the
// same parity as its zero-delay count (both start and end in the same
// states).
func TestEnginesAgreeOnSteadyState(t *testing.T) {
	nl1 := fullAdderNetlist()
	nl2 := fullAdderNetlist()
	zd, _ := New(nl1, ZeroDelay)
	ed, _ := New(nl2, EventDriven)
	f := func(u8, v8 uint8) bool {
		u := logic.FromUint(uint64(u8%8), 3)
		v := logic.FromUint(uint64(v8%8), 3)
		zd.Settle(u)
		ed.Settle(u)
		zt := zd.Apply(v)
		et := ed.Apply(v)
		for id := range zt {
			if zt[id]%2 != et[id]%2 {
				return false
			}
			if et[id] < zt[id] {
				return false // event-driven can only add activity
			}
		}
		for id := 0; id < nl1.NumNets(); id++ {
			if zd.NetValue(netlist.NetID(id)) != ed.NetValue(netlist.NetID(id)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestEvalUnknownOutput(t *testing.T) {
	s, _ := New(fullAdderNetlist(), ZeroDelay)
	if _, err := s.Eval(logic.NewWord(3), "nope"); err == nil {
		t.Fatal("Eval with unknown output bus succeeded")
	}
}

func TestApplyIsRepeatableAfterResettle(t *testing.T) {
	s, _ := New(fullAdderNetlist(), EventDriven)
	u := logic.FromUint(0, 3)
	v := logic.FromUint(7, 3)
	s.Settle(u)
	first := append([]int64(nil), s.Apply(v)...)
	s.Settle(u)
	second := append([]int64(nil), s.Apply(v)...)
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("net %d: toggle counts differ across identical runs: %d vs %d",
				i, first[i], second[i])
		}
	}
}

func TestEngineString(t *testing.T) {
	if ZeroDelay.String() != "zero-delay" || EventDriven.String() != "event-driven" {
		t.Error("engine names wrong")
	}
	if Engine(9).String() == "" {
		t.Error("unknown engine name empty")
	}
}

func TestInertialBetweenZeroDelayAndTransport(t *testing.T) {
	// Per-net: zero-delay <= inertial <= event-driven toggles, with all
	// three agreeing on steady state and toggle parity.
	mk := func(engine Engine) *Simulator {
		s, err := New(fullAdderNetlist(), engine)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	zd, in, ed := mk(ZeroDelay), mk(Inertial), mk(EventDriven)
	rng := rand.New(rand.NewSource(99))
	u := logic.FromUint(0, 3)
	zd.Settle(u)
	in.Settle(u)
	ed.Settle(u)
	for step := 0; step < 300; step++ {
		v := logic.FromUint(uint64(rng.Intn(8)), 3)
		zt := zd.Apply(v)
		it := in.Apply(v)
		et := ed.Apply(v)
		for id := range zt {
			if it[id] < zt[id] || it[id] > et[id] {
				t.Fatalf("step %d net %d: inertial %d outside [zero-delay %d, transport %d]",
					step, id, it[id], zt[id], et[id])
			}
			if it[id]%2 != zt[id]%2 {
				t.Fatalf("step %d net %d: inertial parity %d vs steady-state parity %d",
					step, id, it[id], zt[id])
			}
		}
		for id := 0; id < zd.Netlist().NumNets(); id++ {
			nid := netlist.NetID(id)
			if zd.NetValue(nid) != in.NetValue(nid) {
				t.Fatalf("step %d: inertial steady state differs on net %d", step, id)
			}
		}
	}
}

func TestInertialFiltersNarrowPulse(t *testing.T) {
	// In the glitch circuit, the XOR sees a hazard pulse; with inertial
	// filtering a sufficiently slow consumer would swallow it. The XOR
	// itself (delay 3) sees the pulse at its inputs: the pulse width is
	// the path-delay difference of the two branches. Build a wide skew so
	// the transport engine glitches, then check the inertial engine
	// produces no more activity than transport on every net.
	nlT := glitchCircuit(6)
	nlI := glitchCircuit(6)
	ed, _ := New(nlT, EventDriven)
	in, _ := New(nlI, Inertial)
	ed.Settle(logic.FromUint(0, 1))
	in.Settle(logic.FromUint(0, 1))
	et := ed.Apply(logic.FromUint(1, 1))
	it := in.Apply(logic.FromUint(1, 1))
	var edTotal, inTotal int64
	for id := range et {
		edTotal += et[id]
		inTotal += it[id]
	}
	if inTotal > edTotal {
		t.Errorf("inertial total toggles %d exceed transport %d", inTotal, edTotal)
	}
	if inTotal == 0 {
		t.Error("inertial engine saw no activity at all")
	}
}

func TestInertialEngineName(t *testing.T) {
	if Inertial.String() != "inertial" {
		t.Errorf("name = %q", Inertial)
	}
}
