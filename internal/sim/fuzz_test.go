package sim

import (
	"math/rand"
	"testing"

	"hdpower/internal/cells"
	"hdpower/internal/logic"
	"hdpower/internal/netlist"
)

// randomCircuit builds a random combinational DAG: `inputs` primary input
// bits and `gates` gates of random kinds whose inputs are drawn from all
// previously created nets (guaranteeing acyclicity).
func randomCircuit(rng *rand.Rand, inputs, gates int) *netlist.Netlist {
	n := netlist.New("fuzz")
	bus := n.AddInputBus("a", inputs)
	pool := append([]netlist.NetID(nil), bus.Nets...)
	pool = append(pool, n.Const(false), n.Const(true))
	kinds := cells.Kinds()
	var outs []netlist.NetID
	for g := 0; g < gates; g++ {
		kind := kinds[rng.Intn(len(kinds))]
		c := cells.Lookup(kind)
		in := make([]netlist.NetID, c.NumInputs)
		for i := range in {
			in[i] = pool[rng.Intn(len(pool))]
		}
		out := n.AddGate(kind, in...)
		pool = append(pool, out)
		outs = append(outs, out)
	}
	// Mark the last few gate outputs so the netlist has outputs.
	k := len(outs)
	if k > 4 {
		k = 4
	}
	if k > 0 {
		n.MarkOutputBus("y", outs[len(outs)-k:])
	} else {
		n.MarkOutputBus("y", []netlist.NetID{bus.Nets[0]})
	}
	return n
}

// TestFuzzEnginesAgree cross-checks the two simulation engines on random
// circuits and random vector pairs: identical steady states, matching
// per-net toggle parity, and event-driven activity never below
// zero-delay activity.
func TestFuzzEnginesAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(20240705))
	for trial := 0; trial < 30; trial++ {
		inputs := 2 + rng.Intn(10)
		gates := 5 + rng.Intn(120)
		seed := rng.Int63()

		// Build the same circuit twice from the same sub-seed so each
		// engine owns an identical netlist.
		build := func() *netlist.Netlist {
			return randomCircuit(rand.New(rand.NewSource(seed)), inputs, gates)
		}
		zd, err := New(build(), ZeroDelay)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		ed, err := New(build(), EventDriven)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		mask := uint64(1)<<uint(inputs) - 1
		u := logic.FromUint(rng.Uint64()&mask, inputs)
		zd.Settle(u)
		ed.Settle(u)
		for step := 0; step < 20; step++ {
			v := logic.FromUint(rng.Uint64()&mask, inputs)
			zt := zd.Apply(v)
			et := ed.Apply(v)
			for id := range zt {
				if zt[id]%2 != et[id]%2 {
					t.Fatalf("trial %d step %d: net %d toggle parity differs (%d vs %d)",
						trial, step, id, zt[id], et[id])
				}
				if et[id] < zt[id] {
					t.Fatalf("trial %d step %d: net %d event toggles %d < zero-delay %d",
						trial, step, id, et[id], zt[id])
				}
			}
			for id := 0; id < zd.Netlist().NumNets(); id++ {
				if zd.NetValue(netlist.NetID(id)) != ed.NetValue(netlist.NetID(id)) {
					t.Fatalf("trial %d step %d: net %d steady state differs", trial, step, id)
				}
			}
		}
	}
}

// TestFuzzZeroDelayMatchesDirectEvaluation checks the zero-delay engine
// against an independent recursive evaluation of the gate functions.
func TestFuzzZeroDelayMatchesDirectEvaluation(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		inputs := 2 + rng.Intn(8)
		gates := 5 + rng.Intn(60)
		nl := randomCircuit(rand.New(rand.NewSource(int64(trial))), inputs, gates)
		s, err := New(nl, ZeroDelay)
		if err != nil {
			t.Fatal(err)
		}
		mask := uint64(1)<<uint(inputs) - 1
		for step := 0; step < 10; step++ {
			vec := logic.FromUint(rng.Uint64()&mask, inputs)
			s.Settle(vec)

			// Independent evaluation: memoized recursion over drivers.
			memo := make(map[netlist.NetID]bool)
			var eval func(id netlist.NetID) bool
			eval = func(id netlist.NetID) bool {
				if v, ok := memo[id]; ok {
					return v
				}
				if v, isConst := nl.IsConst(id); isConst {
					return v
				}
				if nl.IsInput(id) {
					for i, inNet := range nl.InputNets() {
						if inNet == id {
							return vec.Bit(i)
						}
					}
					t.Fatalf("input net %d not found", id)
				}
				// find the driving gate
				for g := 0; g < nl.NumGates(); g++ {
					if nl.GateOutput(netlist.GateID(g)) == id {
						ins := nl.GateInputs(netlist.GateID(g))
						vals := make([]bool, len(ins))
						for i, in := range ins {
							vals[i] = eval(in)
						}
						v := cells.Eval(nl.GateKind(netlist.GateID(g)), vals)
						memo[id] = v
						return v
					}
				}
				t.Fatalf("net %d has no driver", id)
				return false
			}
			for id := 0; id < nl.NumNets(); id++ {
				if s.NetValue(netlist.NetID(id)) != eval(netlist.NetID(id)) {
					t.Fatalf("trial %d: net %d (%s) disagrees with direct evaluation",
						trial, id, nl.NetName(netlist.NetID(id)))
				}
			}
		}
	}
}
