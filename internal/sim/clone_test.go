package sim

import (
	"math/rand"
	"sync"
	"testing"

	"hdpower/internal/logic"
	"hdpower/internal/netlist"
)

// cloneTestNetlist builds a small reconvergent circuit with enough depth
// to produce glitches under the event-driven engine: a 4-bit ripple
// carry chain XORed against a parity tree of the same inputs.
func cloneTestNetlist(t testing.TB) *netlist.Netlist {
	t.Helper()
	nl := netlist.New("clone-test")
	a := nl.AddInputBus("a", 4)
	b := nl.AddInputBus("b", 4)
	carry := nl.Const(false)
	sums := make([]netlist.NetID, 4)
	for i := 0; i < 4; i++ {
		sums[i], carry = nl.FullAdder(a.Nets[i], b.Nets[i], carry)
	}
	par := nl.Xor(a.Nets[0], b.Nets[3])
	for i := 1; i < 4; i++ {
		par = nl.Xor(par, nl.Xor(a.Nets[i], b.Nets[i-1]))
	}
	outs := append(append([]netlist.NetID{}, sums...), carry, par)
	nl.MarkOutputBus("y", outs)
	if err := nl.Finalize(); err != nil {
		t.Fatal(err)
	}
	return nl
}

// runStream settles on the first vector and applies the rest, returning
// the summed per-net toggle counts.
func runStream(s *Simulator, vectors []logic.Word) []int64 {
	sum := make([]int64, s.Netlist().NumNets())
	s.Settle(vectors[0])
	for _, v := range vectors[1:] {
		for id, c := range s.Apply(v) {
			sum[id] += c
		}
	}
	return sum
}

func randomStream(width, n int, seed int64) []logic.Word {
	rng := rand.New(rand.NewSource(seed))
	out := make([]logic.Word, n)
	for i := range out {
		w := logic.NewWord(width)
		for b := 0; b < width; b++ {
			if rng.Intn(2) == 1 {
				w.Set(b, true)
			}
		}
		out[i] = w
	}
	return out
}

// TestCloneMatchesOriginal checks that a clone reproduces the original
// simulator's toggle counts exactly, for every engine.
func TestCloneMatchesOriginal(t *testing.T) {
	nl := cloneTestNetlist(t)
	stream := randomStream(8, 200, 42)
	for _, engine := range []Engine{ZeroDelay, EventDriven, Inertial} {
		ref, err := New(nl, engine)
		if err != nil {
			t.Fatal(err)
		}
		clone := ref.Clone()
		want := runStream(ref, stream)
		got := runStream(clone, stream)
		for id := range want {
			if want[id] != got[id] {
				t.Fatalf("%s: net %d toggles %d (clone) != %d (original)",
					engine, id, got[id], want[id])
			}
		}
	}
}

// TestCloneIsIndependent checks that mutating the original does not leak
// into a clone's results.
func TestCloneIsIndependent(t *testing.T) {
	nl := cloneTestNetlist(t)
	ref, err := New(nl, EventDriven)
	if err != nil {
		t.Fatal(err)
	}
	stream := randomStream(8, 100, 7)
	want := runStream(ref.Clone(), stream)

	clone := ref.Clone()
	// Drive the original through an unrelated stream between the clone's
	// cycles; the clone must not notice.
	noise := randomStream(8, 100, 99)
	clone.Settle(stream[0])
	ref.Settle(noise[0])
	sum := make([]int64, nl.NumNets())
	for i, v := range stream[1:] {
		ref.Apply(noise[1+i%99])
		for id, c := range clone.Apply(v) {
			sum[id] += c
		}
	}
	for id := range want {
		if want[id] != sum[id] {
			t.Fatalf("net %d toggles %d with interleaved original, want %d", id, sum[id], want[id])
		}
	}
}

// TestClonesRunConcurrently runs several clones (and the original) on
// different goroutines at once; each must produce exactly the toggle
// counts of a sequential run of the same stream. Run under -race this
// also proves the shared topology is never written after New.
func TestClonesRunConcurrently(t *testing.T) {
	nl := cloneTestNetlist(t)
	ref, err := New(nl, EventDriven)
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	streams := make([][]logic.Word, workers)
	want := make([][]int64, workers)
	for w := range streams {
		streams[w] = randomStream(8, 300, int64(1000+w))
		want[w] = runStream(ref.Clone(), streams[w])
	}

	sims := make([]*Simulator, workers)
	sims[0] = ref // the original participates too
	for w := 1; w < workers; w++ {
		sims[w] = ref.Clone()
	}
	got := make([][]int64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			got[w] = runStream(sims[w], streams[w])
		}(w)
	}
	wg.Wait()
	for w := 0; w < workers; w++ {
		for id := range want[w] {
			if want[w][id] != got[w][id] {
				t.Fatalf("worker %d: net %d toggles %d != %d", w, id, got[w][id], want[w][id])
			}
		}
	}
}
