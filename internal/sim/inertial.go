package sim

import (
	"container/heap"

	"hdpower/internal/logic"
	"hdpower/internal/netlist"
)

// The Inertial engine models inertial gate delay: a gate's output only
// changes if the new value persists at its inputs for the gate's full
// propagation delay. Pulses narrower than the delay are swallowed, as in
// real logic, so the Inertial engine counts FEWER glitch transitions than
// the transport-like EventDriven engine and at least as many as
// ZeroDelay. It exists for charge-model ablations (how much reported
// glitch power is filterable) and is selected with sim.Inertial.
//
// Implementation: input changes trigger immediate re-evaluation; the
// prospective output value is scheduled to appear after the gate delay.
// A newer evaluation that re-confirms the current output cancels any
// pending contrary transition (the inertial filter); one that contradicts
// the pending transition reschedules it.

// inertialEvent is a scheduled output change of one gate.
type inertialEvent struct {
	time int
	seq  int // tie-break for determinism
	gate netlist.GateID
	val  bool
}

type inertialQueue []*inertialEvent

func (q inertialQueue) Len() int { return len(q) }
func (q inertialQueue) Less(a, b int) bool {
	if q[a].time != q[b].time {
		return q[a].time < q[b].time
	}
	return q[a].seq < q[b].seq
}
func (q inertialQueue) Swap(a, b int) { q[a], q[b] = q[b], q[a] }
func (q *inertialQueue) Push(x interface{}) {
	*q = append(*q, x.(*inertialEvent))
}
func (q *inertialQueue) Pop() interface{} {
	old := *q
	n := len(old)
	e := old[n-1]
	*q = old[:n-1]
	return e
}

func (s *Simulator) applyInertial(v logic.Word) {
	// pending[g] points at the live scheduled transition of gate g, nil
	// if none. Cancelled events stay in the heap with gate = -1.
	if s.pending == nil {
		s.pending = make([]*inertialEvent, s.nl.NumGates())
	}
	for i := range s.pending {
		s.pending[i] = nil
	}
	var queue inertialQueue
	seq := 0

	// evaluate gate g at time t: schedule/cancel its output transition.
	evaluate := func(g netlist.GateID, t int) {
		newVal := s.evalGate(g)
		out := s.nl.GateOutput(g)
		if p := s.pending[g]; p != nil {
			if p.val == newVal {
				return // already heading there
			}
			// Contradicts the pending transition: the pulse that caused
			// it was narrower than the gate delay — cancel it.
			p.gate = -1
			s.pending[g] = nil
		}
		if s.value[out] == newVal {
			return // stable at the right value, nothing to schedule
		}
		e := &inertialEvent{time: t + s.delay[g], seq: seq, gate: g, val: newVal}
		seq++
		s.pending[g] = e
		heap.Push(&queue, e)
	}

	// Apply input edges at t = 0.
	for i, id := range s.inputNets {
		nv := v.Bit(i)
		if s.value[id] != nv {
			s.value[id] = nv
			s.toggles[id]++
			for _, g := range s.fanout[id] {
				evaluate(g, 0)
			}
		}
	}
	for queue.Len() > 0 {
		e := heap.Pop(&queue).(*inertialEvent)
		if e.gate < 0 {
			continue // cancelled
		}
		s.pending[e.gate] = nil
		out := s.nl.GateOutput(e.gate)
		if s.value[out] == e.val {
			continue
		}
		s.value[out] = e.val
		s.toggles[out]++
		if s.recording {
			s.record = append(s.record, event{time: e.time, net: out, val: e.val})
		}
		for _, g := range s.fanout[out] {
			evaluate(g, e.time)
		}
	}
}
