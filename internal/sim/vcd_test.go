package sim

import (
	"strings"
	"testing"

	"hdpower/internal/logic"
	"hdpower/internal/netlist"
)

func TestDumpVCDStructure(t *testing.T) {
	nl := fullAdderNetlist()
	var sb strings.Builder
	vectors := []logic.Word{
		logic.FromUint(0, 3),
		logic.FromUint(7, 3),
		logic.FromUint(5, 3),
	}
	if err := DumpVCD(&sb, nl, vectors, 0); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"$timescale", "$scope module fa", "$var wire 1", "$enddefinitions",
		"$dumpvars", "#", "a[0]",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("VCD missing %q", want)
		}
	}
	// Exactly one $var per net.
	if got := strings.Count(out, "$var wire 1"); got != nl.NumNets() {
		t.Errorf("vars = %d, want %d", got, nl.NumNets())
	}
	// Initial dump covers every net.
	dumpvars := out[strings.Index(out, "$dumpvars"):]
	dumpvars = dumpvars[:strings.Index(dumpvars, "$end")]
	if lines := strings.Count(dumpvars, "\n"); lines < nl.NumNets() {
		t.Errorf("initial dump has %d lines, want >= %d", lines, nl.NumNets())
	}
}

func TestDumpVCDRecordsTransitions(t *testing.T) {
	// Flipping all inputs of a full adder must produce value changes in
	// cycle 1 but none in the identical cycle 2.
	nl := fullAdderNetlist()
	var sb strings.Builder
	vectors := []logic.Word{
		logic.FromUint(0, 3),
		logic.FromUint(7, 3),
		logic.FromUint(7, 3),
	}
	if err := DumpVCD(&sb, nl, vectors, 100); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "#100") {
		t.Error("cycle 1 timestamp missing")
	}
	// No value changes between #200 and the final timestamp.
	i200 := strings.Index(out, "#200")
	if i200 == -1 {
		t.Fatal("no #200 marker")
	}
	tail := out[i200:]
	idx := strings.Index(tail[1:], "#")
	if idx == -1 {
		t.Fatal("no final timestamp")
	}
	between := tail[4 : idx+1]
	if strings.ContainsAny(between, "01") {
		t.Errorf("value changes in idle cycle: %q", between)
	}
}

func TestDumpVCDEmptyVectors(t *testing.T) {
	if err := DumpVCD(&strings.Builder{}, fullAdderNetlist(), nil, 0); err == nil {
		t.Fatal("empty vector stream accepted")
	}
}

func TestVcdIDUnique(t *testing.T) {
	seen := make(map[string]bool)
	for i := 0; i < 10000; i++ {
		id := vcdID(i)
		if seen[id] {
			t.Fatalf("duplicate VCD id %q at %d", id, i)
		}
		seen[id] = true
		for _, c := range id {
			if c < 33 || c > 126 {
				t.Fatalf("invalid VCD id char %q", c)
			}
		}
	}
}

func TestRecordingDoesNotPerturbSimulation(t *testing.T) {
	nl1 := fullAdderNetlist()
	nl2 := fullAdderNetlist()
	plain, _ := New(nl1, EventDriven)
	var sb strings.Builder
	vectors := []logic.Word{logic.FromUint(1, 3), logic.FromUint(6, 3)}
	if err := DumpVCD(&sb, nl2, vectors, 0); err != nil {
		t.Fatal(err)
	}
	plain.Settle(vectors[0])
	plain.Apply(vectors[1])
	// steady state must match what a non-recording simulator reaches
	rec, _ := New(fullAdderNetlist(), EventDriven)
	rec.Settle(vectors[0])
	rec.recording = true
	rec.Apply(vectors[1])
	for id := 0; id < nl1.NumNets(); id++ {
		if plain.NetValue(netlist.NetID(id)) != rec.NetValue(netlist.NetID(id)) {
			t.Fatalf("net %d differs with recording enabled", id)
		}
	}
	_ = sb
}
