package hddist

// memo.go memoizes the closed-form distribution pipeline for serving.
// Deriving a Dist from word statistics is pure — the same
// (N, μ, σ, ρ, width, ports) always yields the same distribution — and
// production estimate traffic clusters on a handful of stream profiles,
// so the stats endpoint would otherwise recompute identical binomials and
// convolutions millions of times. The cache is a bounded immutable
// open-addressing table published behind an atomic pointer: readers never
// lock, writers copy-insert-swap (RCU), and when the table fills it is
// reset rather than evicted entry-by-entry, keeping the structure free of
// maps (whose iteration order is forbidden in this deterministic package)
// and of any recency bookkeeping on the read path.

import (
	"math"
	"sync"
	"sync/atomic"

	"hdpower/internal/stats"
)

// MemoKey identifies one memoized distribution: the word-level statistics
// (paper Section 6's μ, σ, ρ plus the nominal sample count N), the
// per-port word width, and the number of convolved ports.
type MemoKey struct {
	N     int
	Mean  float64
	Std   float64
	Rho   float64
	Width int
	Ports int
}

// Hash folds the key into 64 bits with FNV-1a over the exact float bit
// patterns, so keys that differ in any ULP occupy distinct slots and the
// hash is deterministic across processes.
func (k MemoKey) Hash() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime64
			v >>= 8
		}
	}
	mix(uint64(k.N))
	mix(math.Float64bits(k.Mean))
	mix(math.Float64bits(k.Std))
	mix(math.Float64bits(k.Rho))
	mix(uint64(k.Width))
	mix(uint64(k.Ports))
	return h
}

// memoTable is one immutable open-addressing snapshot. Slots are probed
// linearly from Hash(key) % len; a nil dist marks an empty slot (every
// cached Dist has at least one entry).
type memoTable struct {
	keys []MemoKey
	dist []Dist
	used int
}

// Memo is a bounded concurrent cache of closed-form distributions.
// Lookups are lock-free; misses compute outside any lock and publish by
// copy-and-swap, so a burst of distinct profiles can never stall readers.
type Memo struct {
	p   atomic.Pointer[memoTable]
	mu  sync.Mutex // serializes writers (copy-insert-swap)
	cap int        // maximum cached entries before reset

	hits   atomic.Uint64
	misses atomic.Uint64
	resets atomic.Uint64
}

// DefaultMemoCapacity bounds a Memo built with capacity <= 0. 4096
// distinct (stats, width, ports) profiles is far beyond any observed
// traffic mix, and at ~1 KiB per cached distribution the worst case
// stays around 4 MiB.
const DefaultMemoCapacity = 4096

// NewMemo returns an empty memo bounded to capacity entries
// (DefaultMemoCapacity when capacity <= 0).
func NewMemo(capacity int) *Memo {
	if capacity <= 0 {
		capacity = DefaultMemoCapacity
	}
	m := &Memo{cap: capacity}
	m.p.Store(newMemoTable(capacity))
	return m
}

// newMemoTable sizes the slot array at 2x capacity so the probe chains
// stay short even at the fill bound.
func newMemoTable(capacity int) *memoTable {
	n := 2 * capacity
	return &memoTable{keys: make([]MemoKey, n), dist: make([]Dist, n)}
}

// lookup probes the snapshot for key.
func (t *memoTable) lookup(key MemoKey) (Dist, bool) {
	n := uint64(len(t.keys))
	for i, h := uint64(0), key.Hash(); i < n; i++ {
		slot := (h + i) % n
		if t.dist[slot] == nil {
			return nil, false
		}
		if t.keys[slot] == key {
			return t.dist[slot], true
		}
	}
	return nil, false
}

// insert places key into a table with free space (callers guarantee
// used < cap, and the slot array is 2x cap, so probing always finds room).
func (t *memoTable) insert(key MemoKey, d Dist) {
	n := uint64(len(t.keys))
	for i, h := uint64(0), key.Hash(); i < n; i++ {
		slot := (h + i) % n
		if t.dist[slot] == nil {
			t.keys[slot] = key
			t.dist[slot] = d
			t.used++
			return
		}
		if t.keys[slot] == key {
			return // racer published it first; keep the existing value
		}
	}
}

// Get returns the cached distribution for key, or computes it with fn and
// publishes the result. The returned Dist is shared: callers must treat
// it as read-only.
func (m *Memo) Get(key MemoKey, fn func() Dist) Dist {
	if d, ok := m.p.Load().lookup(key); ok {
		m.hits.Add(1)
		return d
	}
	m.misses.Add(1)
	d := fn()
	m.mu.Lock()
	cur := m.p.Load()
	if cached, ok := cur.lookup(key); ok {
		// Lost the race to another writer; their value is identical
		// (the computation is pure), keep it.
		m.mu.Unlock()
		return cached
	}
	next := newMemoTable(m.cap)
	if cur.used < m.cap {
		copy(next.keys, cur.keys)
		copy(next.dist, cur.dist)
		next.used = cur.used
	} else {
		// Bounded: at capacity the whole table resets instead of evicting
		// piecemeal, trading a warm-up burst for an O(1) decision with no
		// recency state on the read path.
		m.resets.Add(1)
	}
	next.insert(key, d)
	m.p.Store(next)
	m.mu.Unlock()
	return d
}

// FromWordStats returns the memoized analytic distribution of a single
// width-bit port with the given word statistics — FromWordStats with a
// cache in front.
func (m *Memo) FromWordStats(ws stats.WordStats, width int) Dist {
	key := MemoKey{N: ws.N, Mean: ws.Mean, Std: ws.Std, Rho: ws.Rho, Width: width, Ports: 1}
	return m.Get(key, func() Dist { return FromWordStats(ws, width) })
}

// FromWordStatsPorts returns the memoized distribution of ports
// independent width-bit streams with identical statistics feeding
// disjoint ports: the single-port distribution convolved ports-1 times
// (the multi-input extension of Section 6.3). Both the per-port and the
// fully convolved distributions are cached, so a profile that alternates
// port counts still reuses the expensive base computation.
func (m *Memo) FromWordStatsPorts(ws stats.WordStats, width, ports int) Dist {
	if ports <= 1 {
		return m.FromWordStats(ws, width)
	}
	key := MemoKey{N: ws.N, Mean: ws.Mean, Std: ws.Std, Rho: ws.Rho, Width: width, Ports: ports}
	return m.Get(key, func() Dist {
		port := m.FromWordStats(ws, width)
		dist := port
		for p := 1; p < ports; p++ {
			dist = Convolve(dist, port)
		}
		return dist
	})
}

// Stats reports cache effectiveness counters: hits, misses, and
// capacity-exhaustion resets.
func (m *Memo) Stats() (hits, misses, resets uint64) {
	return m.hits.Load(), m.misses.Load(), m.resets.Load()
}

// Len returns the number of currently cached distributions.
func (m *Memo) Len() int {
	return m.p.Load().used
}
