package hddist

import (
	"math"
	"testing"
	"testing/quick"

	"hdpower/internal/stats"
	"hdpower/internal/stimuli"
)

func TestBinomialKnown(t *testing.T) {
	d := Binomial(2, 0.5)
	want := []float64{0.25, 0.5, 0.25}
	for i := range want {
		if math.Abs(d[i]-want[i]) > 1e-12 {
			t.Errorf("binom(2,.5)[%d] = %v", i, d[i])
		}
	}
	d = Binomial(0, 0.5)
	if len(d) != 1 || d[0] != 1 {
		t.Errorf("binom(0) = %v", d)
	}
	d = Binomial(3, 0)
	if d[0] != 1 || d[1] != 0 {
		t.Errorf("binom(3,0) = %v", d)
	}
}

func TestBinomialSumsToOne(t *testing.T) {
	f := func(n8 uint8, p float64) bool {
		n := int(n8 % 40)
		p = math.Abs(math.Mod(p, 1))
		d := Binomial(n, p)
		return math.Abs(d.Sum()-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestBinomialMean(t *testing.T) {
	d := Binomial(20, 0.3)
	if math.Abs(d.Mean()-6) > 1e-9 {
		t.Errorf("mean = %v, want 6", d.Mean())
	}
}

func TestEmpirical(t *testing.T) {
	d, err := Empirical([]int{0, 1, 1, 2}, 4)
	if err != nil {
		t.Fatal(err)
	}
	want := Dist{0.25, 0.5, 0.25, 0, 0}
	for i := range want {
		if math.Abs(d[i]-want[i]) > 1e-12 {
			t.Errorf("empirical[%d] = %v", i, d[i])
		}
	}
	if _, err := Empirical(nil, 4); err == nil {
		t.Error("empty series accepted")
	}
	if _, err := Empirical([]int{5}, 4); err == nil {
		t.Error("out-of-range Hd accepted")
	}
}

func TestFromWordsMatchesManualCount(t *testing.T) {
	words := stimuli.Take(stimuli.Random(8, 3), 500)
	d, err := FromWords(words)
	if err != nil {
		t.Fatal(err)
	}
	if d.WordBits() != 8 {
		t.Fatalf("word bits = %d", d.WordBits())
	}
	if math.Abs(d.Sum()-1) > 1e-9 {
		t.Errorf("sum = %v", d.Sum())
	}
	// Random stream: mean Hd ~ m/2.
	if math.Abs(d.Mean()-4) > 0.3 {
		t.Errorf("mean Hd of random stream = %v, want ~4", d.Mean())
	}
}

func TestFromRegionsMatchesBruteConvolution(t *testing.T) {
	// eq. 18 must equal the explicit convolution of the two region
	// distributions (eq. 13).
	cases := []Regions{
		{NRand: 10, NSign: 6, TSign: 0.2},
		{NRand: 6, NSign: 10, TSign: 0.45}, // n_sign >= n_rand branch
		{NRand: 16, NSign: 0, TSign: 0.3},
		{NRand: 0, NSign: 8, TSign: 0.7},
		{NRand: 5, NSign: 5, TSign: 0},
	}
	for _, r := range cases {
		got := FromRegions(r)
		signDist := make(Dist, r.NSign+1)
		signDist[0] = 1 - r.TSign
		signDist[r.NSign] += r.TSign
		want := Convolve(Binomial(r.NRand, 0.5), signDist)
		if len(got) != len(want) {
			t.Fatalf("%+v: length %d vs %d", r, len(got), len(want))
		}
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-12 {
				t.Errorf("%+v: [%d] = %v, want %v", r, i, got[i], want[i])
			}
		}
	}
}

func TestFromRegionsSumsToOne(t *testing.T) {
	f := func(nr, ns uint8, ts float64) bool {
		r := Regions{NRand: int(nr % 20), NSign: int(ns % 20),
			TSign: math.Abs(math.Mod(ts, 1))}
		return math.Abs(FromRegions(r).Sum()-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestMergeRegionsPreservesBits(t *testing.T) {
	r := stats.RegionActivity{NRand: 5, NCorr: 4, NSign: 7, TSign: 0.3}
	merged := MergeRegions(r, 16)
	if merged.NRand+merged.NSign != 16 {
		t.Errorf("merged regions %+v don't cover the word", merged)
	}
	if merged.NRand != 7 { // 5 + 4/2
		t.Errorf("NRand = %d, want 7", merged.NRand)
	}
}

func TestAnalyticDistributionTracksEmpiricalSpeech(t *testing.T) {
	// Figure 9: the analytic distribution of a strongly correlated
	// (speech-like) stream must track the extracted one, including the
	// two-lobe structure from the sign region.
	const m = 16
	words := stimuli.Take(stimuli.NewStream(stimuli.TypeSpeech, m, 9), 30000)
	empirical, err := FromWords(words)
	if err != nil {
		t.Fatal(err)
	}
	ws, err := stats.FromWords(words)
	if err != nil {
		t.Fatal(err)
	}
	analytic := FromWordStats(ws, m)
	tv, err := empirical.TotalVariation(analytic)
	if err != nil {
		t.Fatal(err)
	}
	if tv > 0.35 {
		t.Errorf("total variation between analytic and empirical = %.3f", tv)
	}
	if math.Abs(analytic.Mean()-empirical.Mean()) > 1.5 {
		t.Errorf("means: analytic %.2f vs empirical %.2f",
			analytic.Mean(), empirical.Mean())
	}
}

func TestAnalyticDistributionSkewedForCorrelatedStream(t *testing.T) {
	// Strong correlation gives an asymmetric distribution (the condition
	// under which the paper's Section 6 claims the distribution approach
	// beats the plain average).
	ws := stats.WordStats{Mean: 0, Std: 6000, Rho: 0.97}
	d := FromWordStats(ws, 16)
	// Mass at 0 (no sign flip, few random flips) should far exceed the
	// mass at the top.
	if d[0] < 1e-6 {
		t.Errorf("p(Hd=0) = %v, want positive", d[0])
	}
	if d.Mean() >= 8 {
		t.Errorf("mean = %v, want below m/2 for a correlated stream", d.Mean())
	}
}

func TestConvolveTwoPorts(t *testing.T) {
	a := Dist{0.5, 0.5}        // 1-bit port
	b := Dist{0.25, 0.5, 0.25} // 2-bit port
	c := Convolve(a, b)
	if len(c) != 4 {
		t.Fatalf("convolved support = %d", len(c))
	}
	if math.Abs(c.Sum()-1) > 1e-12 {
		t.Errorf("sum = %v", c.Sum())
	}
	if math.Abs(c.Mean()-(a.Mean()+b.Mean())) > 1e-12 {
		t.Errorf("mean = %v, want %v", c.Mean(), a.Mean()+b.Mean())
	}
}

func TestTotalVariationBounds(t *testing.T) {
	a := Dist{1, 0}
	b := Dist{0, 1}
	tv, err := a.TotalVariation(b)
	if err != nil {
		t.Fatal(err)
	}
	if tv != 1 {
		t.Errorf("disjoint TV = %v", tv)
	}
	tv, _ = a.TotalVariation(a)
	if tv != 0 {
		t.Errorf("self TV = %v", tv)
	}
	if _, err := a.TotalVariation(Dist{1}); err == nil {
		t.Error("support mismatch accepted")
	}
}
