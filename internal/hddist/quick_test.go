package hddist

import (
	"math"
	"testing"
	"testing/quick"

	"hdpower/internal/stats"
)

// Property: the analytic distribution is a valid probability distribution
// with the right support for any plausible word statistics.
func TestFromWordStatsValidDistributionProperty(t *testing.T) {
	f := func(mean, std, rho float64, w8 uint8) bool {
		m := 1 + int(w8%48)
		ws := stats.WordStats{
			Mean: math.Mod(mean, 1e4),
			Std:  math.Abs(math.Mod(std, 3e4)),
			Rho:  math.Mod(rho, 0.999),
		}
		d := FromWordStats(ws, m)
		if len(d) != m+1 {
			return false
		}
		for _, p := range d {
			if p < -1e-12 || p > 1+1e-12 || math.IsNaN(p) {
				return false
			}
		}
		return math.Abs(d.Sum()-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: convolution preserves total mass and adds means.
func TestConvolveProperty(t *testing.T) {
	f := func(a8, b8 uint8, ta, tb float64) bool {
		ra := Regions{NRand: int(a8 % 12), NSign: int(a8 % 5), TSign: math.Abs(math.Mod(ta, 1))}
		rb := Regions{NRand: int(b8 % 12), NSign: int(b8 % 7), TSign: math.Abs(math.Mod(tb, 1))}
		da, db := FromRegions(ra), FromRegions(rb)
		c := Convolve(da, db)
		if math.Abs(c.Sum()-1) > 1e-9 {
			return false
		}
		return math.Abs(c.Mean()-(da.Mean()+db.Mean())) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: total variation is a bounded metric (symmetry + range).
func TestTotalVariationMetricProperty(t *testing.T) {
	f := func(a8, b8 uint8, ta, tb float64) bool {
		n := 1 + int(a8%10)
		da := FromRegions(Regions{NRand: n, NSign: int(b8 % 4), TSign: math.Abs(math.Mod(ta, 1))})
		db := FromRegions(Regions{NRand: n, NSign: int(b8 % 4), TSign: math.Abs(math.Mod(tb, 1))})
		ab, err1 := da.TotalVariation(db)
		ba, err2 := db.TotalVariation(da)
		if err1 != nil || err2 != nil {
			return false
		}
		return math.Abs(ab-ba) < 1e-12 && ab >= -1e-12 && ab <= 1+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
