package hddist

import (
	"sync"
	"testing"

	"hdpower/internal/stats"
)

func testWS(mean float64) stats.WordStats {
	return stats.WordStats{N: 1024, Mean: mean, Std: 42, Rho: 0.3}
}

func TestMemoReturnsSameDistribution(t *testing.T) {
	m := NewMemo(8)
	ws := testWS(10)
	want := FromWordStats(ws, 8)
	got := m.FromWordStats(ws, 8)
	if len(got) != len(want) {
		t.Fatalf("length %d != %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("dist[%d]: %v != %v", i, got[i], want[i])
		}
	}
	// Second call must be a hit returning the identical slice.
	again := m.FromWordStats(ws, 8)
	if &again[0] != &got[0] {
		t.Fatal("second lookup did not return the cached distribution")
	}
	hits, misses, _ := m.Stats()
	if hits != 1 || misses != 1 {
		t.Fatalf("hits/misses = %d/%d, want 1/1", hits, misses)
	}
}

func TestMemoPortsConvolution(t *testing.T) {
	m := NewMemo(8)
	ws := testWS(3)
	want := FromWordStats(ws, 4)
	for p := 1; p < 3; p++ {
		want = Convolve(want, FromWordStats(ws, 4))
	}
	got := m.FromWordStatsPorts(ws, 4, 3)
	if len(got) != len(want) {
		t.Fatalf("length %d != %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("dist[%d]: %v != %v", i, got[i], want[i])
		}
	}
	// The per-port base distribution was cached on the way.
	if m.Len() != 2 {
		t.Fatalf("Len = %d, want 2 (base + convolved)", m.Len())
	}
	// ports <= 1 routes through the single-port entry: still 2 cached.
	m.FromWordStatsPorts(ws, 4, 1)
	if m.Len() != 2 {
		t.Fatalf("Len after ports=1 = %d, want 2", m.Len())
	}
}

func TestMemoDistinctKeys(t *testing.T) {
	m := NewMemo(32)
	a := m.FromWordStats(testWS(1), 8)
	b := m.FromWordStats(testWS(2), 8)
	c := m.FromWordStats(testWS(1), 6)
	if &a[0] == &b[0] || len(c) == len(a) {
		t.Fatal("distinct keys collided")
	}
	if m.Len() != 3 {
		t.Fatalf("Len = %d, want 3", m.Len())
	}
}

// TestMemoBounded fills the cache past capacity and checks it resets
// instead of growing without bound.
func TestMemoBounded(t *testing.T) {
	m := NewMemo(4)
	for i := 0; i < 10; i++ {
		m.FromWordStats(testWS(float64(i)), 8)
	}
	if m.Len() > 4 {
		t.Fatalf("Len = %d exceeds capacity 4", m.Len())
	}
	_, _, resets := m.Stats()
	if resets == 0 {
		t.Fatal("cache never reset despite overflow")
	}
}

func TestMemoDefaultCapacity(t *testing.T) {
	m := NewMemo(0)
	if m.cap != DefaultMemoCapacity {
		t.Fatalf("cap = %d, want %d", m.cap, DefaultMemoCapacity)
	}
}

func TestMemoKeyHashDiffers(t *testing.T) {
	base := MemoKey{N: 1024, Mean: 1, Std: 2, Rho: 0.5, Width: 8, Ports: 1}
	variants := []MemoKey{
		{N: 1025, Mean: 1, Std: 2, Rho: 0.5, Width: 8, Ports: 1},
		{N: 1024, Mean: 1.0000001, Std: 2, Rho: 0.5, Width: 8, Ports: 1},
		{N: 1024, Mean: 1, Std: 2.5, Rho: 0.5, Width: 8, Ports: 1},
		{N: 1024, Mean: 1, Std: 2, Rho: -0.5, Width: 8, Ports: 1},
		{N: 1024, Mean: 1, Std: 2, Rho: 0.5, Width: 9, Ports: 1},
		{N: 1024, Mean: 1, Std: 2, Rho: 0.5, Width: 8, Ports: 2},
	}
	h := base.Hash()
	for _, v := range variants {
		if v.Hash() == h {
			t.Fatalf("key %+v hashes like the base key", v)
		}
	}
	if base.Hash() != h {
		t.Fatal("hash is not deterministic")
	}
}

// TestMemoConcurrent hammers one memo from many goroutines mixing hits,
// misses and resets; run under -race this pins the lock-free read path.
func TestMemoConcurrent(t *testing.T) {
	m := NewMemo(16)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				ws := testWS(float64(i % 24))
				d := m.FromWordStatsPorts(ws, 4, 1+i%3)
				if len(d) == 0 {
					t.Error("empty distribution")
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestMemoLookupAllocs pins the allocation-free read path: a warm cache
// hit must not allocate.
func TestMemoLookupAllocs(t *testing.T) {
	m := NewMemo(8)
	ws := testWS(5)
	m.FromWordStats(ws, 8) // warm
	allocs := testing.AllocsPerRun(200, func() {
		m.FromWordStats(ws, 8)
	})
	if allocs != 0 {
		t.Fatalf("warm memo hit allocated %v allocs/op, want 0", allocs)
	}
}
