// Package hddist implements Section 6 of the paper: computing the
// Hamming-distance distribution of a data stream — either extracted
// empirically or derived analytically from word-level statistics via the
// dual-bit-type data model (eqs. 12–18) — and using it for average power
// estimation together with an Hd macro-model.
package hddist

import (
	"fmt"
	"math"

	"hdpower/internal/logic"
	"hdpower/internal/stats"
)

// Dist is a probability distribution over Hamming-distances 0..m for an
// m-bit word; len(d) == m+1 and the entries sum to 1 (within rounding).
type Dist []float64

// WordBits returns the word width m the distribution describes.
func (d Dist) WordBits() int { return len(d) - 1 }

// Mean returns the expected Hamming-distance.
func (d Dist) Mean() float64 {
	var s float64
	for i, p := range d {
		s += float64(i) * p
	}
	return s
}

// Sum returns the total probability mass (1 up to rounding for a valid
// distribution).
func (d Dist) Sum() float64 {
	var s float64
	for _, p := range d {
		s += p
	}
	return s
}

// TotalVariation returns the total-variation distance to another
// distribution over the same support: ½·Σ|d_i − o_i| ∈ [0, 1].
func (d Dist) TotalVariation(o Dist) (float64, error) {
	if len(d) != len(o) {
		return 0, fmt.Errorf("hddist: support mismatch %d vs %d", len(d), len(o))
	}
	var s float64
	for i := range d {
		s += math.Abs(d[i] - o[i])
	}
	return s / 2, nil
}

// Empirical extracts the Hamming-distance distribution from a sequence of
// per-cycle Hamming-distances of an m-bit stream.
func Empirical(hds []int, m int) (Dist, error) {
	if len(hds) == 0 {
		return nil, fmt.Errorf("hddist: empty Hd series")
	}
	d := make(Dist, m+1)
	for _, h := range hds {
		if h < 0 || h > m {
			return nil, fmt.Errorf("hddist: Hd %d out of range [0,%d]", h, m)
		}
		d[h]++
	}
	for i := range d {
		d[i] /= float64(len(hds))
	}
	return d, nil
}

// FromWords extracts the empirical distribution directly from a word
// stream.
func FromWords(words []logic.Word) (Dist, error) {
	if len(words) < 2 {
		return nil, fmt.Errorf("hddist: need >= 2 words, got %d", len(words))
	}
	m := words[0].Width()
	hds := make([]int, len(words)-1)
	for j := 1; j < len(words); j++ {
		hds[j-1] = logic.Hd(words[j-1], words[j])
	}
	return Empirical(hds, m)
}

// Binomial returns the binomial(n, p) distribution over 0..n — the
// switching model of the uncorrelated region (eq. 12, with p = 1/2).
func Binomial(n int, p float64) Dist {
	if n < 0 {
		panic(fmt.Sprintf("hddist: negative n %d", n))
	}
	if p < 0 || p > 1 {
		panic(fmt.Sprintf("hddist: probability %v outside [0,1]", p))
	}
	d := make(Dist, n+1)
	// Iterative Pascal update keeps this exact enough for n <= 64.
	d[0] = 1
	for trial := 0; trial < n; trial++ {
		for i := trial + 1; i >= 1; i-- {
			d[i] = d[i]*(1-p) + d[i-1]*p
		}
		d[0] *= 1 - p
	}
	return d
}

// Regions holds the merged two-region decomposition of Section 6.3: the
// intermediate (correlated) bits are split evenly between the random and
// sign regions, which leaves a binomially switching part of NRand bits and
// an all-or-nothing sign part of NSign bits.
type Regions struct {
	NRand int
	NSign int
	TSign float64
}

// MergeRegions reduces the three-region data model to the paper's merged
// two-region form: half of the intermediate bits (rounded down) join the
// random region, the rest join the sign region, preserving the average
// activity.
func MergeRegions(r stats.RegionActivity, m int) Regions {
	nRand := r.NRand + r.NCorr/2
	if nRand > m {
		nRand = m
	}
	return Regions{NRand: nRand, NSign: m - nRand, TSign: r.TSign}
}

// FromRegions evaluates the unified closed form (eq. 18):
//
//	p(Hd = i) = δ_SS̄ · p_rand(i) · (1 − t_sign)
//	          + δ_SS · p_rand(i − n_sign) · t_sign
//
// where p_rand is binomial(n_rand, ½), δ_SS̄ cuts off above n_rand and
// δ_SS below n_sign. The result covers Hd 0..m with m = NRand + NSign.
func FromRegions(r Regions) Dist {
	m := r.NRand + r.NSign
	pRand := Binomial(r.NRand, 0.5)
	d := make(Dist, m+1)
	for i := 0; i <= m; i++ {
		if i <= r.NRand { // δ_SS̄: no sign-region event
			d[i] += pRand[i] * (1 - r.TSign)
		}
		if i >= r.NSign { // δ_SS: sign-region event
			if k := i - r.NSign; k <= r.NRand {
				d[i] += pRand[k] * r.TSign
			}
		}
	}
	return d
}

// FromWordStats computes the analytic Hamming-distance distribution of an
// m-bit stream from its word-level statistics — the paper's end-to-end
// recipe: breakpoints → region activities → merged regions → eq. 18.
func FromWordStats(ws stats.WordStats, m int) Dist {
	return FromRegions(MergeRegions(stats.Regions(ws, m), m))
}

// Convolve combines the distributions of two uncorrelated input streams
// feeding disjoint input ports into the distribution of the concatenated
// input vector (the multi-input extension the paper sketches at the end of
// Section 6.3).
func Convolve(a, b Dist) Dist {
	out := make(Dist, len(a)+len(b)-1)
	for i, pa := range a {
		if pa == 0 {
			continue
		}
		for j, pb := range b {
			out[i+j] += pa * pb
		}
	}
	return out
}
