package regress

import (
	"math"
	"testing"

	"hdpower/internal/core"
	"hdpower/internal/dwlib"
	"hdpower/internal/power"
	"hdpower/internal/sim"
)

// syntheticProtos builds prototype models whose coefficients follow an
// exact law p_i[m] = law(i, m) over total input bits 2*width.
func syntheticProtos(widths []int, law func(i, width int) float64) []Prototype {
	protos := make([]Prototype, len(widths))
	for k, w := range widths {
		m := 2 * w
		model := &core.Model{Module: "synthetic", InputBits: m, Basic: make([]core.Coef, m)}
		for i := 1; i <= m; i++ {
			model.Basic[i-1] = core.Coef{P: law(i, w), Count: 10}
		}
		protos[k] = Prototype{Width: w, Model: model}
	}
	return protos
}

const twoOpBits = 2

func TestFitRecoversLinearLaw(t *testing.T) {
	// p_i[m] = i·(3m + 5): linear in width for each class.
	law := func(i, w int) float64 { return float64(i) * (3*float64(w) + 5) }
	protos := syntheticProtos(SetAll.Widths(), law)
	pm, err := Fit("ripple-adder", protos, Linear, twoOpBits)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{4, 7, 16, 24} { // includes unseen and extrapolated widths
		for i := 1; i <= 8; i++ {
			got, ok := pm.Coefficient(i, w)
			if !ok {
				t.Fatalf("class %d unfitted", i)
			}
			want := law(i, w)
			if math.Abs(got-want) > 1e-6*want {
				t.Errorf("p_%d[%d] = %v, want %v", i, w, got, want)
			}
		}
	}
}

func TestFitRecoversQuadraticLaw(t *testing.T) {
	law := func(i, w int) float64 {
		fw := float64(w)
		return float64(i) * (0.7*fw*fw + 2*fw + 1)
	}
	protos := syntheticProtos(SetThi.Widths(), law) // minimum set: 3 points, 3 terms
	pm, err := Fit("csa-multiplier", protos, Quadratic, twoOpBits)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 8; i++ {
		got, ok := pm.Coefficient(i, 8)
		if !ok {
			t.Fatalf("class %d unfitted", i)
		}
		want := law(i, 8)
		if math.Abs(got-want) > 1e-6*want {
			t.Errorf("p_%d[8] = %v, want %v", i, got, want)
		}
	}
}

func TestFitResidualZeroForExactLaw(t *testing.T) {
	law := func(i, w int) float64 { return float64(i) * float64(w) }
	pm, err := Fit("x", syntheticProtos(SetSec.Widths(), law), Linear, twoOpBits)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 8; i++ {
		if pm.Residual[i-1] > 1e-9 {
			t.Errorf("class %d residual = %v", i, pm.Residual[i-1])
		}
	}
}

func TestFitHighClassesNeedEnoughPrototypes(t *testing.T) {
	// Class i = 2*16 = 32 exists only in the width-16 prototype: with a
	// 2-term basis it cannot be fitted and must be reported as such.
	law := func(i, w int) float64 { return float64(i + w) }
	pm, err := Fit("x", syntheticProtos(SetThi.Widths(), law), Linear, twoOpBits)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := pm.Coefficient(32, 16); ok {
		t.Error("class 32 fitted from a single prototype")
	}
	if _, ok := pm.Coefficient(8, 16); !ok {
		t.Error("class 8 unfitted despite full coverage")
	}
}

func TestSynthesizeProducesValidModel(t *testing.T) {
	law := func(i, w int) float64 { return float64(i) * float64(w) }
	pm, _ := Fit("x", syntheticProtos(SetAll.Widths(), law), Linear, twoOpBits)
	model := pm.Synthesize(8)
	if err := model.Validate(); err != nil {
		t.Fatal(err)
	}
	if model.InputBits != 16 {
		t.Errorf("input bits = %d", model.InputBits)
	}
	if got, want := model.P(5), 40.0; math.Abs(got-want) > 1e-9 {
		t.Errorf("synthesized P(5) = %v, want %v", got, want)
	}
}

func TestCoefficientClampsNegativeFits(t *testing.T) {
	law := func(i, w int) float64 { return 100 - 10*float64(w) } // goes negative
	pm, _ := Fit("x", syntheticProtos([]int{4, 6, 8}, law), Linear, twoOpBits)
	got, ok := pm.Coefficient(1, 16)
	if !ok {
		t.Fatal("class unfitted")
	}
	if got != 0 {
		t.Errorf("negative fit not clamped: %v", got)
	}
}

func TestFitValidation(t *testing.T) {
	law := func(i, w int) float64 { return 1 }
	protos := syntheticProtos([]int{4, 8}, law)
	if _, err := Fit("x", protos, Quadratic, twoOpBits); err == nil {
		t.Error("too few prototypes accepted for quadratic basis")
	}
	if _, err := Fit("x", protos, Linear, 0); err == nil {
		t.Error("nil bitsPerWidth accepted")
	}
	bad := []Prototype{{Width: 4, Model: nil}, {Width: 8, Model: nil}}
	if _, err := Fit("x", bad, Linear, twoOpBits); err == nil {
		t.Error("nil prototype model accepted")
	}
	// inconsistent bit count
	p := syntheticProtos([]int{4, 8}, law)
	p[0].Width = 5
	if _, err := Fit("x", p, Linear, twoOpBits); err == nil {
		t.Error("inconsistent prototype bits accepted")
	}
}

func TestPrototypeSetWidths(t *testing.T) {
	if got := SetAll.Widths(); len(got) != 7 || got[0] != 4 || got[6] != 16 {
		t.Errorf("ALL = %v", got)
	}
	if got := SetSec.Widths(); len(got) != 4 {
		t.Errorf("SEC = %v", got)
	}
	if got := SetThi.Widths(); len(got) != 3 {
		t.Errorf("THI = %v", got)
	}
	if PrototypeSet("nope").Widths() != nil {
		t.Error("unknown set returned widths")
	}
	if len(AllSets()) != 3 {
		t.Error("AllSets wrong")
	}
}

func TestBasisFor(t *testing.T) {
	if BasisFor("csa-multiplier").Name != "quadratic" {
		t.Error("multiplier basis")
	}
	if BasisFor("ripple-adder").Name != "linear" {
		t.Error("adder basis")
	}
}

func TestTermsRect(t *testing.T) {
	got := TermsRect(6, 4)
	want := []float64{24, 6, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("TermsRect = %v", got)
		}
	}
}

// Integration: regression over real characterized ripple-adder prototypes
// reproduces the instance coefficients within the tolerance the paper
// reports (5–10%) for mid-range classes.
func TestFitRealRippleAdderPrototypes(t *testing.T) {
	widths := []int{3, 4, 5, 6}
	protos := make([]Prototype, len(widths))
	for k, w := range widths {
		meter, err := power.NewMeter(dwlib.RippleAdder(w), sim.EventDriven)
		if err != nil {
			t.Fatal(err)
		}
		model, err := core.Characterize(meter, "ripple-adder", core.CharacterizeOptions{
			Patterns: 4000, Seed: int64(100 + w),
		})
		if err != nil {
			t.Fatal(err)
		}
		protos[k] = Prototype{Width: w, Model: model}
	}
	pm, err := Fit("ripple-adder", protos, Linear, twoOpBits)
	if err != nil {
		t.Fatal(err)
	}
	// Compare regression vs instance coefficients for the width-5 adder
	// (an interior prototype) on classes covered by all prototypes.
	inst := protos[2].Model
	for i := 1; i <= 6; i++ {
		reg, ok := pm.Coefficient(i, 5)
		if !ok {
			t.Fatalf("class %d unfitted", i)
		}
		instP := inst.P(i)
		if instP == 0 {
			continue
		}
		relErr := math.Abs(reg-instP) / instP
		if relErr > 0.15 {
			t.Errorf("class %d: regression %v vs instance %v (%.1f%% off)",
				i, reg, instP, relErr*100)
		}
	}
}
