package regress

import (
	"encoding/json"
	"fmt"
)

// BasisByName resolves a basis by its Name field; used when loading
// serialized parameterized models.
func BasisByName(name string) (Basis, error) {
	switch name {
	case Linear.Name:
		return Linear, nil
	case Quadratic.Name:
		return Quadratic, nil
	case Rectangular.Name:
		return Rectangular, nil
	}
	return Basis{}, fmt.Errorf("regress: unknown basis %q", name)
}

// paramModelJSON is the wire form of a ParamModel; the basis is recorded
// by name and resolved on load.
type paramModelJSON struct {
	Format      string      `json:"format"`
	Module      string      `json:"module"`
	Basis       string      `json:"basis"`
	WidthFactor int         `json:"width_factor"`
	R           [][]float64 `json:"r"`
	Residual    []float64   `json:"residual"`
}

// MarshalJSON serializes the parameterized model.
func (pm *ParamModel) MarshalJSON() ([]byte, error) {
	return json.Marshal(paramModelJSON{
		Format:      "hdpower-parammodel-v1",
		Module:      pm.Module,
		Basis:       pm.Basis.Name,
		WidthFactor: pm.WidthFactor,
		R:           pm.R,
		Residual:    pm.Residual,
	})
}

// LoadParamModel deserializes a parameterized model written by
// MarshalJSON.
func LoadParamModel(data []byte) (*ParamModel, error) {
	var w paramModelJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return nil, fmt.Errorf("regress: %w", err)
	}
	basis, err := BasisByName(w.Basis)
	if err != nil {
		return nil, err
	}
	if w.WidthFactor < 1 {
		return nil, fmt.Errorf("regress: width factor %d", w.WidthFactor)
	}
	if len(w.R) == 0 || len(w.Residual) != len(w.R) {
		return nil, fmt.Errorf("regress: inconsistent tables (%d vectors, %d residuals)",
			len(w.R), len(w.Residual))
	}
	for i, r := range w.R {
		if r != nil && len(r) != basis.Degree {
			return nil, fmt.Errorf("regress: class %d vector has %d terms, basis %q wants %d",
				i+1, len(r), basis.Name, basis.Degree)
		}
	}
	return &ParamModel{
		Module:      w.Module,
		Basis:       basis,
		WidthFactor: w.WidthFactor,
		R:           w.R,
		Residual:    w.Residual,
	}, nil
}
