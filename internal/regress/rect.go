package regress

import (
	"fmt"
	"math"
	"sort"

	"hdpower/internal/core"
	"hdpower/internal/linalg"
)

// RectPrototype is a characterized multiplier instance with distinct
// operand widths m1 x m0.
type RectPrototype struct {
	W1, W0 int
	Model  *core.Model
}

// RectParamModel parameterizes the Hd model over BOTH operand widths of a
// rectangular multiplier using the eq. (8) basis [m1·m0, m1, 1].
type RectParamModel struct {
	Module string
	// R[i-1] is the regression vector for p_i (nil when unfitted).
	R [][]float64
	// Residual[i-1] is the RMS relative fit residual of class i.
	Residual []float64
}

// FitRect performs the eq. (8)/(10) regression over rectangular
// prototypes. Each prototype must have Model.InputBits == W1 + W0.
func FitRect(module string, protos []RectPrototype) (*RectParamModel, error) {
	const degree = 3 // terms of eq. (8)
	if len(protos) < degree {
		return nil, fmt.Errorf("regress: %d rectangular prototypes cannot determine %d terms",
			len(protos), degree)
	}
	sorted := append([]RectPrototype(nil), protos...)
	sort.Slice(sorted, func(a, b int) bool {
		if sorted[a].W1 != sorted[b].W1 {
			return sorted[a].W1 < sorted[b].W1
		}
		return sorted[a].W0 < sorted[b].W0
	})
	maxBits := 0
	for _, p := range sorted {
		if p.Model == nil {
			return nil, fmt.Errorf("regress: prototype %dx%d has nil model", p.W1, p.W0)
		}
		if p.Model.InputBits != p.W1+p.W0 {
			return nil, fmt.Errorf("regress: prototype %dx%d has %d input bits, want %d",
				p.W1, p.W0, p.Model.InputBits, p.W1+p.W0)
		}
		if b := p.W1 + p.W0; b > maxBits {
			maxBits = b
		}
	}
	pm := &RectParamModel{
		Module:   module,
		R:        make([][]float64, maxBits),
		Residual: make([]float64, maxBits),
	}
	for i := 1; i <= maxBits; i++ {
		var rows [][]float64
		var rhs []float64
		var raw [][]float64
		var rawRhs []float64
		for _, p := range sorted {
			if i > p.Model.InputBits || p.Model.Basic[i-1].Count == 0 {
				continue
			}
			terms := TermsRect(p.W1, p.W0)
			pi := p.Model.Basic[i-1].P
			raw = append(raw, terms)
			rawRhs = append(rawRhs, pi)
			w := 1.0
			if pi > 0 {
				w = 1 / pi
			}
			scaled := make([]float64, len(terms))
			for k, tv := range terms {
				scaled[k] = tv * w
			}
			rows = append(rows, scaled)
			rhs = append(rhs, pi*w)
		}
		if len(rows) < degree {
			continue
		}
		x, err := linalg.LeastSquares(linalg.FromRows(rows), rhs)
		if err != nil {
			continue
		}
		pm.R[i-1] = x
		fit := linalg.FromRows(raw).MulVec(x)
		var s float64
		n := 0
		for j := range rawRhs {
			if rawRhs[j] != 0 {
				d := (fit[j] - rawRhs[j]) / rawRhs[j]
				s += d * d
				n++
			}
		}
		if n > 0 {
			pm.Residual[i-1] = math.Sqrt(s / float64(n))
		}
	}
	return pm, nil
}

// Coefficient evaluates p_i for operand widths m1 x m0 (eq. 8).
func (pm *RectParamModel) Coefficient(i, m1, m0 int) (float64, bool) {
	if i < 1 || i > len(pm.R) || pm.R[i-1] == nil {
		return 0, false
	}
	terms := TermsRect(m1, m0)
	var s float64
	for k, r := range pm.R[i-1] {
		s += r * terms[k]
	}
	if s < 0 {
		s = 0
	}
	return s, true
}

// Synthesize builds the Hd model of an m1 x m0 instance.
func (pm *RectParamModel) Synthesize(m1, m0 int) *core.Model {
	m := m1 + m0
	model := &core.Model{
		Module:    fmt.Sprintf("%s-%dx%d(regression-rect)", pm.Module, m1, m0),
		InputBits: m,
		Basic:     make([]core.Coef, m),
	}
	for i := 1; i <= m; i++ {
		if p, ok := pm.Coefficient(i, m1, m0); ok {
			model.Basic[i-1] = core.Coef{P: p, Count: 1}
		}
	}
	return model
}
