package regress

import (
	"math"
	"testing"

	"hdpower/internal/core"
	"hdpower/internal/dwlib"
	"hdpower/internal/power"
	"hdpower/internal/sim"
)

// syntheticRect builds rectangular prototypes following an exact eq. (8)
// law p_i = i·(2·m1·m0 + 3·m1 + 7).
func syntheticRect(shapes [][2]int) []RectPrototype {
	law := func(i, m1, m0 int) float64 {
		return float64(i) * (2*float64(m1)*float64(m0) + 3*float64(m1) + 7)
	}
	out := make([]RectPrototype, len(shapes))
	for k, sh := range shapes {
		m := sh[0] + sh[1]
		model := &core.Model{Module: "synthetic", InputBits: m, Basic: make([]core.Coef, m)}
		for i := 1; i <= m; i++ {
			model.Basic[i-1] = core.Coef{P: law(i, sh[0], sh[1]), Count: 5}
		}
		out[k] = RectPrototype{W1: sh[0], W0: sh[1], Model: model}
	}
	return out
}

func TestFitRectRecoversLaw(t *testing.T) {
	protos := syntheticRect([][2]int{{4, 4}, {8, 4}, {4, 8}, {8, 8}, {6, 6}})
	pm, err := FitRect("csa-multiplier", protos)
	if err != nil {
		t.Fatal(err)
	}
	law := func(i, m1, m0 int) float64 {
		return float64(i) * (2*float64(m1)*float64(m0) + 3*float64(m1) + 7)
	}
	for _, sh := range [][2]int{{6, 4}, {10, 6}, {12, 12}} { // unseen shapes
		for i := 1; i <= 8; i++ {
			got, ok := pm.Coefficient(i, sh[0], sh[1])
			if !ok {
				t.Fatalf("class %d unfitted", i)
			}
			want := law(i, sh[0], sh[1])
			if math.Abs(got-want) > 1e-6*want {
				t.Errorf("p_%d[%dx%d] = %v, want %v", i, sh[0], sh[1], got, want)
			}
		}
	}
}

func TestFitRectValidation(t *testing.T) {
	if _, err := FitRect("x", syntheticRect([][2]int{{4, 4}, {8, 4}})); err == nil {
		t.Error("two prototypes accepted for three terms")
	}
	bad := syntheticRect([][2]int{{4, 4}, {8, 4}, {4, 8}})
	bad[0].W1 = 5 // inconsistent with the model's input bits
	if _, err := FitRect("x", bad); err == nil {
		t.Error("inconsistent prototype accepted")
	}
	bad = syntheticRect([][2]int{{4, 4}, {8, 4}, {4, 8}})
	bad[1].Model = nil
	if _, err := FitRect("x", bad); err == nil {
		t.Error("nil model accepted")
	}
}

func TestRectSynthesize(t *testing.T) {
	protos := syntheticRect([][2]int{{4, 4}, {8, 4}, {4, 8}, {8, 8}})
	pm, err := FitRect("x", protos)
	if err != nil {
		t.Fatal(err)
	}
	model := pm.Synthesize(6, 4)
	if err := model.Validate(); err != nil {
		t.Fatal(err)
	}
	if model.InputBits != 10 {
		t.Errorf("input bits = %d", model.InputBits)
	}
}

// Integration: the paper's Figure 3 scenario — predict the coefficients
// of a 6x4 csa-multiplier from square and rectangular prototypes that do
// not include 6x4.
func TestFitRectRealMultiplier(t *testing.T) {
	if testing.Short() {
		t.Skip("characterizes five multiplier instances")
	}
	shapes := [][2]int{{4, 4}, {8, 4}, {4, 8}, {8, 8}, {6, 6}}
	protos := make([]RectPrototype, len(shapes))
	for k, sh := range shapes {
		meter, err := power.NewMeter(dwlib.CSAMult(sh[0], sh[1]), sim.EventDriven)
		if err != nil {
			t.Fatal(err)
		}
		model, err := core.Characterize(meter, "csa", core.CharacterizeOptions{
			Patterns: 4000, Seed: int64(10*sh[0] + sh[1]),
		})
		if err != nil {
			t.Fatal(err)
		}
		protos[k] = RectPrototype{W1: sh[0], W0: sh[1], Model: model}
	}
	pm, err := FitRect("csa-multiplier", protos)
	if err != nil {
		t.Fatal(err)
	}

	// Reference: direct characterization of the unseen 6x4 instance.
	meter, err := power.NewMeter(dwlib.CSAMult(6, 4), sim.EventDriven)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := core.Characterize(meter, "csa-6x4", core.CharacterizeOptions{
		Patterns: 4000, Seed: 99,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 10; i++ {
		reg, ok := pm.Coefficient(i, 6, 4)
		if !ok {
			t.Fatalf("class %d unfitted", i)
		}
		instP := inst.P(i)
		if instP == 0 {
			continue
		}
		rel := math.Abs(reg-instP) / instP
		// Paper: <5-10% "in most cases". Classes up to 8 are covered by
		// every prototype and fit tightly; the top classes sit near each
		// prototype's own saturation point, where a width-only basis
		// cannot distinguish shapes — allow them more slack.
		limit := 0.25
		if i > 8 {
			limit = 0.45
		}
		if rel > limit {
			t.Errorf("class %d: rect regression %v vs instance %v (%.0f%% off)",
				i, reg, instP, rel*100)
		}
	}
}
