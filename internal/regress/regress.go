// Package regress implements Section 5 of the paper: making the Hd model
// parameterizable in the input bit-width. Each coefficient p_i is fitted
// as a linear combination of module *complexity terms* — functions of the
// operand width that mirror how the module's structure grows (linear for a
// ripple adder, quadratic plus linear for an array multiplier). The fit
// uses least-squares over a small set of characterized prototype widths
// (eq. 10); the fitted regression vectors R_i then synthesize coefficient
// tables for any width (eq. 9).
package regress

import (
	"fmt"
	"math"
	"sort"

	"hdpower/internal/core"
	"hdpower/internal/linalg"
)

// Basis defines the complexity-parameter vector M(m) of eq. (9) for a
// module family.
type Basis struct {
	// Name identifies the basis, e.g. "linear".
	Name string
	// Terms evaluates the complexity parameters for operand width m. The
	// last term is conventionally the constant 1.
	Terms func(m int) []float64
	// Degree is the number of terms.
	Degree int
}

// Linear is the eq. (6) basis for modules whose structure grows linearly
// with the operand width (ripple adder, absval, subtractor).
var Linear = Basis{
	Name:   "linear",
	Terms:  func(m int) []float64 { return []float64{float64(m), 1} },
	Degree: 2,
}

// Quadratic is the eq. (7) basis for array multipliers: an m² array term,
// an m merge-adder term, and a constant.
var Quadratic = Basis{
	Name: "quadratic",
	Terms: func(m int) []float64 {
		fm := float64(m)
		return []float64{fm * fm, fm, 1}
	},
	Degree: 3,
}

// Rectangular is the eq. (8) basis for multipliers with differing operand
// widths m1 and m0; use with TermsRect.
var Rectangular = Basis{
	Name: "rectangular",
	Terms: func(m int) []float64 { // square instantiation m1 = m0 = m
		fm := float64(m)
		return []float64{fm * fm, fm, 1}
	},
	Degree: 3,
}

// TermsRect evaluates the rectangular basis for distinct operand widths
// (eq. 8): [m1·m0, m1, 1].
func TermsRect(m1, m0 int) []float64 {
	return []float64{float64(m1) * float64(m0), float64(m1), 1}
}

// BasisFor returns the conventional basis for a catalog module name.
func BasisFor(module string) Basis {
	switch module {
	case "csa-multiplier", "booth-wallace-multiplier":
		return Quadratic
	default:
		return Linear
	}
}

// Prototype pairs an operand width with the model characterized at that
// width — one member of the paper's "prototype set".
type Prototype struct {
	Width int
	Model *core.Model
}

// PrototypeSet names the reduction levels studied in the paper.
type PrototypeSet string

const (
	// SetAll uses every prototype width 4..16 in steps of 2.
	SetAll PrototypeSet = "ALL"
	// SetSec uses every second prototype (4, 8, 12, 16).
	SetSec PrototypeSet = "SEC"
	// SetThi uses every third prototype (4, 10, 16).
	SetThi PrototypeSet = "THI"
)

// Widths returns the operand widths of a prototype set.
func (s PrototypeSet) Widths() []int {
	switch s {
	case SetAll:
		return []int{4, 6, 8, 10, 12, 14, 16}
	case SetSec:
		return []int{4, 8, 12, 16}
	case SetThi:
		return []int{4, 10, 16}
	}
	return nil
}

// AllSets lists the three reduction levels in paper order.
func AllSets() []PrototypeSet { return []PrototypeSet{SetAll, SetSec, SetThi} }

// ParamModel is a width-parameterizable Hd model: one regression vector
// per Hamming-distance class.
type ParamModel struct {
	// Module names the module family.
	Module string
	// Basis is the complexity basis used for the fit.
	Basis Basis
	// WidthFactor maps an operand width to the module's total input bit
	// count: total = WidthFactor·width (2 for two-operand modules, 1 for
	// single-operand ones).
	WidthFactor int
	// R[i-1] is the regression vector for p_i, or nil when class i had
	// too few prototype observations to fit.
	R [][]float64
	// Residual[i-1] is the RMS relative fit residual of class i over the
	// prototype points (diagnostic).
	Residual []float64
}

// bitsPerWidth returns the total input bits at an operand width.
func (pm *ParamModel) bitsPerWidth(width int) int { return pm.WidthFactor * width }

// Fit performs the per-class least-squares regression of eq. (10) over a
// prototype set. Classes observed in fewer prototypes than the basis
// degree are left unfitted (nil regression vector). widthFactor is the
// total-input-bits-per-operand-width ratio (2 for two-operand modules).
func Fit(module string, protos []Prototype, basis Basis, widthFactor int) (*ParamModel, error) {
	if len(protos) < basis.Degree {
		return nil, fmt.Errorf("regress: %d prototypes cannot determine %d-term basis",
			len(protos), basis.Degree)
	}
	if widthFactor < 1 {
		return nil, fmt.Errorf("regress: width factor %d", widthFactor)
	}
	sorted := append([]Prototype(nil), protos...)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a].Width < sorted[b].Width })
	for _, p := range sorted {
		if p.Model == nil {
			return nil, fmt.Errorf("regress: prototype width %d has nil model", p.Width)
		}
		if want := widthFactor * p.Width; p.Model.InputBits != want {
			return nil, fmt.Errorf("regress: prototype width %d has %d input bits, want %d",
				p.Width, p.Model.InputBits, want)
		}
	}
	maxBits := widthFactor * sorted[len(sorted)-1].Width

	pm := &ParamModel{
		Module:      module,
		Basis:       basis,
		WidthFactor: widthFactor,
		R:           make([][]float64, maxBits),
		Residual:    make([]float64, maxBits),
	}
	for i := 1; i <= maxBits; i++ {
		var rows [][]float64
		var rhs []float64
		var raw [][]float64 // unweighted rows for residual reporting
		var rawRhs []float64
		for _, p := range sorted {
			if i > p.Model.InputBits {
				continue
			}
			if p.Model.Basic[i-1].Count == 0 {
				continue
			}
			terms := basis.Terms(p.Width)
			pi := p.Model.Basic[i-1].P
			raw = append(raw, terms)
			rawRhs = append(rawRhs, pi)
			// Weight each equation by 1/p_i so the fit minimizes
			// *relative* coefficient error — the paper quotes relative
			// errors, and without the weighting the large prototypes
			// dominate and the smallest width fits poorly.
			w := 1.0
			if pi > 0 {
				w = 1 / pi
			}
			scaled := make([]float64, len(terms))
			for k, tv := range terms {
				scaled[k] = tv * w
			}
			rows = append(rows, scaled)
			rhs = append(rhs, pi*w)
		}
		if len(rows) < basis.Degree {
			continue
		}
		x, err := linalg.LeastSquares(linalg.FromRows(rows), rhs)
		if err != nil {
			continue // collinear prototype points; leave class unfitted
		}
		pm.R[i-1] = x
		// RMS relative residual over the prototype points.
		fit := linalg.FromRows(raw).MulVec(x)
		var s float64
		n := 0
		for j := range rawRhs {
			if rawRhs[j] != 0 {
				d := (fit[j] - rawRhs[j]) / rawRhs[j]
				s += d * d
				n++
			}
		}
		if n > 0 {
			pm.Residual[i-1] = math.Sqrt(s / float64(n))
		}
	}
	return pm, nil
}

// Coefficient evaluates eq. (9): p_i at the given operand width.
// ok is false when class i was not fitted.
func (pm *ParamModel) Coefficient(i, width int) (p float64, ok bool) {
	if i < 1 || i > len(pm.R) || pm.R[i-1] == nil {
		return 0, false
	}
	terms := pm.Basis.Terms(width)
	var s float64
	for k, r := range pm.R[i-1] {
		s += r * terms[k]
	}
	if s < 0 {
		s = 0 // charge cannot be negative; clamp fit artifacts
	}
	return s, true
}

// Synthesize builds a ready-to-use Hd model for an arbitrary operand
// width from the regression vectors. Unfitted classes are left
// unobserved, where the core model's neighbor interpolation takes over.
func (pm *ParamModel) Synthesize(width int) *core.Model {
	m := pm.bitsPerWidth(width)
	model := &core.Model{
		Module:    fmt.Sprintf("%s-%d(regression-%s)", pm.Module, width, pm.Basis.Name),
		InputBits: m,
		Basic:     make([]core.Coef, m),
	}
	for i := 1; i <= m; i++ {
		if p, ok := pm.Coefficient(i, width); ok {
			model.Basic[i-1] = core.Coef{P: p, Count: 1}
		}
	}
	return model
}
