package regress

import (
	"encoding/json"
	"math"
	"testing"
)

func TestParamModelJSONRoundTrip(t *testing.T) {
	law := func(i, w int) float64 { return float64(i) * (3*float64(w) + 5) }
	pm, err := Fit("ripple-adder", syntheticProtos(SetAll.Widths(), law), Linear, twoOpBits)
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(pm)
	if err != nil {
		t.Fatal(err)
	}
	back, err := LoadParamModel(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Module != pm.Module || back.Basis.Name != pm.Basis.Name ||
		back.WidthFactor != pm.WidthFactor {
		t.Errorf("header mismatch: %+v", back)
	}
	// Coefficients evaluate identically, including at unseen widths.
	for _, w := range []int{4, 9, 20} {
		for i := 1; i <= 8; i++ {
			a, okA := pm.Coefficient(i, w)
			b, okB := back.Coefficient(i, w)
			if okA != okB || math.Abs(a-b) > 1e-12 {
				t.Errorf("p_%d[%d]: %v/%v vs %v/%v", i, w, a, okA, b, okB)
			}
		}
	}
	// Synthesized models match too.
	ma, mb := pm.Synthesize(10), back.Synthesize(10)
	for i := 1; i <= ma.InputBits; i++ {
		if math.Abs(ma.P(i)-mb.P(i)) > 1e-12 {
			t.Errorf("synthesized p_%d differs", i)
		}
	}
}

func TestLoadParamModelRejectsGarbage(t *testing.T) {
	cases := map[string]string{
		"not json":    "nope",
		"bad basis":   `{"module":"x","basis":"cubic","width_factor":2,"r":[[1,2]],"residual":[0]}`,
		"bad factor":  `{"module":"x","basis":"linear","width_factor":0,"r":[[1,2]],"residual":[0]}`,
		"empty table": `{"module":"x","basis":"linear","width_factor":2,"r":[],"residual":[]}`,
		"arity":       `{"module":"x","basis":"linear","width_factor":2,"r":[[1,2,3]],"residual":[0]}`,
		"mismatch":    `{"module":"x","basis":"linear","width_factor":2,"r":[[1,2]],"residual":[0,0]}`,
	}
	for name, src := range cases {
		if _, err := LoadParamModel([]byte(src)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestBasisByName(t *testing.T) {
	for _, b := range []Basis{Linear, Quadratic, Rectangular} {
		got, err := BasisByName(b.Name)
		if err != nil {
			t.Fatal(err)
		}
		if got.Degree != b.Degree {
			t.Errorf("%s: degree %d", b.Name, got.Degree)
		}
	}
	if _, err := BasisByName("septic"); err == nil {
		t.Error("unknown basis accepted")
	}
}
