// Package lut flattens fitted Hd macro-models (core.Model) into
// contiguous coefficient arrays for the serving hot path.
//
// A core.Model answers P(i) by walking the coefficient structs at call
// time — interpolating unobserved classes, falling back from enhanced to
// basic coefficients — which is fine for a characterization CLI but not
// for an endpoint fielding millions of estimates: every call repeats the
// same branches and pointer chases. A lut.Table performs that walk once,
// at model-load time, and stores the fully resolved answers in flat
// float64 slices: P(i) becomes one bounds check and one indexed load, and
// PEnhanced(i, z) one offset computation plus one load. Results are
// bit-identical to the Model methods by construction — each slot is
// literally filled by calling them.
//
// Tables are immutable after New, so they can be published behind an
// atomic pointer and read concurrently without locks (the RCU pattern
// internal/serve uses for its model cache).
package lut

import (
	"fmt"

	"hdpower/internal/core"
)

// Table is one fitted model flattened for estimation. All fields are
// read-only after New; a Table is safe for concurrent use.
type Table struct {
	// Module names the characterized module the table was built from.
	Module string
	// InputBits is m, the total number of module input bits.
	InputBits int

	// basic[i] is the fully resolved basic coefficient for Hamming-distance
	// i in 0..m: interpolation of unobserved classes has already happened,
	// so lookups never branch on Count.
	basic []float64

	// Enhanced-model storage, nil when the model has no enhanced table.
	// Row i-1 (Hd class i) occupies enhVals[enhOff[i-1] : enhOff[i-1]+enhNB[i-1]],
	// one slot per stable-zero bucket, each already resolved through the
	// enhanced→basic fallback.
	enhVals []float64
	enhOff  []int32
	enhNB   []int32
}

// New flattens a validated model. It returns an error instead of
// panicking because serve feeds it models deserialized from the durable
// library.
func New(m *core.Model) (*Table, error) {
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("lut: %w", err)
	}
	t := &Table{
		Module:    m.Module,
		InputBits: m.InputBits,
		basic:     make([]float64, m.InputBits+1),
	}
	for i := 0; i <= m.InputBits; i++ {
		t.basic[i] = m.P(i)
	}
	if m.HasEnhanced() {
		t.enhOff = make([]int32, m.InputBits)
		t.enhNB = make([]int32, m.InputBits)
		total := 0
		for i := 1; i <= m.InputBits; i++ {
			t.enhOff[i-1] = int32(total)
			t.enhNB[i-1] = int32(m.NumZBuckets(i))
			total += m.NumZBuckets(i)
		}
		t.enhVals = make([]float64, total)
		for i := 1; i <= m.InputBits; i++ {
			off := t.enhOff[i-1]
			for zb := 0; zb < int(t.enhNB[i-1]); zb++ {
				c := m.Enhanced[i-1][zb]
				if c.Count > 0 {
					t.enhVals[off+int32(zb)] = c.P
				} else {
					// Same fallback PEnhanced takes for an unobserved class.
					t.enhVals[off+int32(zb)] = t.basic[i]
				}
			}
		}
	}
	return t, nil
}

// MustNew is New for models known valid (tests, fixtures).
func MustNew(m *core.Model) *Table {
	t, err := New(m)
	if err != nil {
		panic(err)
	}
	return t
}

// HasEnhanced reports whether enhanced coefficients are available.
func (t *Table) HasEnhanced() bool { return t.enhVals != nil }

// P returns the basic coefficient for Hamming-distance i, bit-identical
// to core.Model.P. It panics on an out-of-range class, like the Model
// method; serving handlers validate ranges before calling.
func (t *Table) P(i int) float64 {
	if i < 0 || i > t.InputBits {
		panic(fmt.Sprintf("lut: Hd %d out of range [0,%d]", i, t.InputBits))
	}
	return t.basic[i]
}

// PEnhanced returns the enhanced coefficient for Hd i and exact
// stable-zero count z, bit-identical to core.Model.PEnhanced (including
// the fallback to the basic coefficient for unobserved classes and
// models without an enhanced table).
func (t *Table) PEnhanced(i, z int) float64 {
	if i < 0 || i > t.InputBits {
		panic(fmt.Sprintf("lut: Hd %d out of range [0,%d]", i, t.InputBits))
	}
	if z < 0 || z > t.InputBits-i {
		panic(fmt.Sprintf("lut: stable-zero count %d out of range [0,%d] for Hd %d",
			z, t.InputBits-i, i))
	}
	if i == 0 || t.enhVals == nil {
		return t.basic[i]
	}
	// Same bucket arithmetic as core.Model.ZBucket, inlined so the hot
	// path stays a handful of integer ops on table-local state.
	full := t.InputBits - i + 1
	nb := int(t.enhNB[i-1])
	zb := z
	if nb != full {
		zb = z * nb / full
		if zb >= nb {
			zb = nb - 1
		}
	}
	return t.enhVals[t.enhOff[i-1]+int32(zb)]
}

// EstimateBasicInto writes the per-cycle charges for hds into dst
// (len(dst) must equal len(hds)) and returns the total. It allocates
// nothing — the zero-allocation counterpart of core.Model.EstimateBasic
// for pooled serving buffers.
func (t *Table) EstimateBasicInto(dst []float64, hds []int) float64 {
	if len(dst) != len(hds) {
		panic(fmt.Sprintf("lut: dst length %d != hds length %d", len(dst), len(hds)))
	}
	var total float64
	for j, i := range hds {
		q := t.P(i)
		dst[j] = q
		total += q
	}
	return total
}

// EstimateEnhancedInto writes the per-cycle charges for (Hd, stable-zero)
// pairs into dst and returns the total, allocation-free.
func (t *Table) EstimateEnhancedInto(dst []float64, hds, stableZeros []int) float64 {
	if len(hds) != len(stableZeros) {
		panic(fmt.Sprintf("lut: series length mismatch %d vs %d", len(hds), len(stableZeros)))
	}
	if len(dst) != len(hds) {
		panic(fmt.Sprintf("lut: dst length %d != hds length %d", len(dst), len(hds)))
	}
	var total float64
	for j := range hds {
		q := t.PEnhanced(hds[j], stableZeros[j])
		dst[j] = q
		total += q
	}
	return total
}

// AvgFromDist returns the expected per-cycle charge under an Hd
// distribution, bit-identical to core.Model.AvgFromDist.
func (t *Table) AvgFromDist(dist []float64) (float64, error) {
	if len(dist) != t.InputBits+1 {
		return 0, fmt.Errorf("lut: distribution has %d entries, want %d",
			len(dist), t.InputBits+1)
	}
	var s float64
	for i, p := range dist {
		s += p * t.basic[i]
	}
	return s, nil
}
