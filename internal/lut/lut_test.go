package lut

import (
	"math"
	"testing"

	"hdpower/internal/core"
	"hdpower/internal/dwlib"
	"hdpower/internal/power"
	"hdpower/internal/sim"
)

// sparseModel builds a model with deliberate coefficient gaps so the
// flattening has to reproduce P's interpolation and PEnhanced's fallback.
func sparseModel(m int, enhanced bool) *core.Model {
	model := &core.Model{Module: "sparse", InputBits: m, Basic: make([]core.Coef, m)}
	for i := 1; i <= m; i++ {
		if i%2 == 1 { // observe odd classes only
			model.Basic[i-1] = core.Coef{P: float64(i) * 1.5, Epsilon: 0.1, Count: 7}
		}
	}
	if enhanced {
		model.Enhanced = make([][]core.Coef, m)
		for i := 1; i <= m; i++ {
			row := make([]core.Coef, model.NumZBuckets(i))
			for zb := range row {
				if (i+zb)%3 != 0 { // leave some classes unobserved
					row[zb] = core.Coef{P: float64(i) + float64(zb)/8, Count: 3}
				}
			}
			model.Enhanced[i-1] = row
		}
	}
	return model
}

// assertTableMatchesModel checks bit-identical agreement over every
// (Hd, stable-zeros) class plus the batch and distribution entry points.
func assertTableMatchesModel(t *testing.T, model *core.Model) {
	t.Helper()
	tab, err := New(model)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if tab.HasEnhanced() != model.HasEnhanced() {
		t.Fatalf("HasEnhanced: table %v, model %v", tab.HasEnhanced(), model.HasEnhanced())
	}
	m := model.InputBits
	for i := 0; i <= m; i++ {
		if got, want := tab.P(i), model.P(i); got != want {
			t.Fatalf("P(%d): table %v != model %v", i, got, want)
		}
		for z := 0; z <= m-i; z++ {
			if got, want := tab.PEnhanced(i, z), model.PEnhanced(i, z); got != want {
				t.Fatalf("PEnhanced(%d,%d): table %v != model %v", i, z, got, want)
			}
		}
	}

	hds := make([]int, 0, m+1)
	zeros := make([]int, 0, m+1)
	for i := 0; i <= m; i++ {
		hds = append(hds, i)
		zeros = append(zeros, (m-i)/2)
	}
	dst := make([]float64, len(hds))
	total := tab.EstimateBasicInto(dst, hds)
	want := model.EstimateBasic(hds)
	var wantTotal float64
	for j := range want {
		if dst[j] != want[j] {
			t.Fatalf("EstimateBasicInto[%d]: %v != %v", j, dst[j], want[j])
		}
		wantTotal += want[j]
	}
	if total != wantTotal {
		t.Fatalf("EstimateBasicInto total %v != %v", total, wantTotal)
	}

	totalEnh := tab.EstimateEnhancedInto(dst, hds, zeros)
	wantEnh, err := model.EstimateEnhanced(hds, zeros)
	if err != nil {
		t.Fatal(err)
	}
	wantTotal = 0
	for j := range wantEnh {
		if dst[j] != wantEnh[j] {
			t.Fatalf("EstimateEnhancedInto[%d]: %v != %v", j, dst[j], wantEnh[j])
		}
		wantTotal += wantEnh[j]
	}
	if totalEnh != wantTotal {
		t.Fatalf("EstimateEnhancedInto total %v != %v", totalEnh, wantTotal)
	}

	dist := make([]float64, m+1)
	for i := range dist {
		dist[i] = 1 / float64(m+1)
	}
	gotAvg, err := tab.AvgFromDist(dist)
	if err != nil {
		t.Fatal(err)
	}
	wantAvg, err := model.AvgFromDist(dist)
	if err != nil {
		t.Fatal(err)
	}
	if gotAvg != wantAvg {
		t.Fatalf("AvgFromDist: table %v != model %v", gotAvg, wantAvg)
	}
}

func TestTableMatchesSparseModel(t *testing.T) {
	for _, enhanced := range []bool{false, true} {
		assertTableMatchesModel(t, sparseModel(9, enhanced))
	}
}

func TestTableMatchesClusteredModel(t *testing.T) {
	model := sparseModel(10, true)
	model.ZClusters = 3
	// Rebuild rows to the clustered bucket counts.
	for i := 1; i <= 10; i++ {
		row := make([]core.Coef, model.NumZBuckets(i))
		for zb := range row {
			if zb%2 == 0 {
				row[zb] = core.Coef{P: float64(i*10 + zb), Count: 2}
			}
		}
		model.Enhanced[i-1] = row
	}
	assertTableMatchesModel(t, model)
}

// TestTableMatchesCharacterizedCatalog pins the equivalence on real
// fitted models: every dwlib catalog module is characterized (enhanced,
// clustered) at a small width and the flattened table must agree
// bit-for-bit with the struct-walking Model on every class. This is the
// whole-library guarantee the serving fast path rests on.
func TestTableMatchesCharacterizedCatalog(t *testing.T) {
	if testing.Short() {
		t.Skip("characterizes the whole catalog")
	}
	for _, name := range dwlib.Names() {
		mod, err := dwlib.Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		width := mod.MinWidth
		if width < 4 {
			width = 4
		}
		nl := mod.Build(width)
		if err := nl.Finalize(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		meter, err := power.NewMeter(nl, sim.EventDriven)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		model, err := core.Characterize(meter, name, core.CharacterizeOptions{
			Patterns: 400, Seed: 1, Enhanced: true, ZClusters: 4, Workers: 1,
			Backend: core.BackendBitParallel,
		})
		if err != nil {
			t.Fatalf("characterize %s: %v", name, err)
		}
		assertTableMatchesModel(t, model)
	}
}

func TestNewRejectsInvalidModel(t *testing.T) {
	if _, err := New(&core.Model{Module: "bad", InputBits: 0}); err == nil {
		t.Fatal("New accepted a model with 0 input bits")
	}
	if _, err := New(&core.Model{Module: "bad", InputBits: 4, Basic: make([]core.Coef, 2)}); err == nil {
		t.Fatal("New accepted a model with a short basic table")
	}
}

func TestMustNewPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew did not panic on an invalid model")
		}
	}()
	MustNew(&core.Model{Module: "bad", InputBits: 0})
}

func TestPanicsOnOutOfRange(t *testing.T) {
	tab := MustNew(sparseModel(4, true))
	for _, fn := range []func(){
		func() { tab.P(-1) },
		func() { tab.P(5) },
		func() { tab.PEnhanced(5, 0) },
		func() { tab.PEnhanced(2, 3) },
		func() { tab.PEnhanced(2, -1) },
		func() { tab.EstimateBasicInto(make([]float64, 1), []int{1, 2}) },
		func() { tab.EstimateEnhancedInto(make([]float64, 2), []int{1, 2}, []int{0}) },
		func() { tab.EstimateEnhancedInto(make([]float64, 1), []int{1, 2}, []int{0, 0}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestAvgFromDistLengthMismatch(t *testing.T) {
	tab := MustNew(sparseModel(4, false))
	if _, err := tab.AvgFromDist(make([]float64, 3)); err == nil {
		t.Fatal("AvgFromDist accepted a wrong-length distribution")
	}
}

// TestEstimateIntoAllocs pins the zero-allocation contract of the batch
// entry points the stream endpoint leans on.
func TestEstimateIntoAllocs(t *testing.T) {
	tab := MustNew(sparseModel(12, true))
	hds := []int{1, 5, 9, 12, 0, 3}
	zeros := []int{2, 4, 1, 0, 6, 5}
	dst := make([]float64, len(hds))
	allocs := testing.AllocsPerRun(200, func() {
		tab.EstimateBasicInto(dst, hds)
		tab.EstimateEnhancedInto(dst, hds, zeros)
	})
	if allocs != 0 {
		t.Fatalf("EstimateInto allocated %v allocs/op, want 0", allocs)
	}
}

func TestTableValuesFinite(t *testing.T) {
	tab := MustNew(sparseModel(8, true))
	for i := 0; i <= 8; i++ {
		if v := tab.P(i); math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("P(%d) = %v", i, v)
		}
	}
}
