package stats

import (
	"math"
	"testing"

	"hdpower/internal/logic"
	"hdpower/internal/stimuli"
)

func TestFromIntsKnown(t *testing.T) {
	ws, err := FromInts([]int64{1, 2, 3, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	if ws.Mean != 3 {
		t.Errorf("mean = %v", ws.Mean)
	}
	if math.Abs(ws.Std-math.Sqrt(2)) > 1e-12 {
		t.Errorf("std = %v, want sqrt(2)", ws.Std)
	}
	if ws.N != 5 {
		t.Errorf("n = %d", ws.N)
	}
}

func TestFromIntsConstantStream(t *testing.T) {
	ws, err := FromInts([]int64{7, 7, 7})
	if err != nil {
		t.Fatal(err)
	}
	if ws.Std != 0 || ws.Rho != 0 {
		t.Errorf("constant stream: std %v rho %v", ws.Std, ws.Rho)
	}
}

func TestFromIntsTooShort(t *testing.T) {
	if _, err := FromInts([]int64{1}); err == nil {
		t.Fatal("single sample accepted")
	}
}

func TestRhoRecoversARParameter(t *testing.T) {
	for _, rho := range []float64{0.0, 0.5, 0.9, -0.4} {
		src := stimuli.AR1(16, 0, 3000, rho, 17)
		ws, err := FromInts(stimuli.TakeInts(src, 40000))
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(ws.Rho-rho) > 0.04 {
			t.Errorf("rho = %v, want ~%v", ws.Rho, rho)
		}
	}
}

func TestExtractBitStatsRandom(t *testing.T) {
	words := stimuli.Take(stimuli.Random(8, 4), 4000)
	bs, err := ExtractBitStats(words)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if math.Abs(bs.Signal[i]-0.5) > 0.05 {
			t.Errorf("bit %d signal prob %v", i, bs.Signal[i])
		}
		if math.Abs(bs.Transition[i]-0.5) > 0.05 {
			t.Errorf("bit %d transition prob %v", i, bs.Transition[i])
		}
	}
}

func TestExtractBitStatsCounter(t *testing.T) {
	// A binary counter has exact transition activities: bit i toggles
	// every 2^i increments.
	words := stimuli.Take(stimuli.Counter(8, 0, 1), 1025)
	bs, err := ExtractBitStats(words)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		want := 1.0 / float64(int(1)<<uint(i))
		if math.Abs(bs.Transition[i]-want) > 0.01 {
			t.Errorf("counter bit %d transition %v, want %v", i, bs.Transition[i], want)
		}
	}
}

func TestExtractBitStatsValidation(t *testing.T) {
	if _, err := ExtractBitStats([]logic.Word{logic.NewWord(4)}); err == nil {
		t.Error("single word accepted")
	}
	if _, err := ExtractBitStats([]logic.Word{logic.NewWord(4), logic.NewWord(5)}); err == nil {
		t.Error("width mismatch accepted")
	}
}

func TestBreakpointsOrdering(t *testing.T) {
	cases := []WordStats{
		{Mean: 0, Std: 100, Rho: 0},
		{Mean: 0, Std: 100, Rho: 0.95},
		{Mean: 500, Std: 100, Rho: 0.5},
		{Mean: -300, Std: 50, Rho: 0.99},
		{Mean: 0, Std: 1, Rho: 0},
	}
	for _, ws := range cases {
		bp := ComputeBreakpoints(ws, 16)
		if bp.BP0 < 0 || bp.BP1 > 15 || bp.BP0 > bp.BP1 {
			t.Errorf("ws %+v: invalid breakpoints %+v", ws, bp)
		}
	}
}

func TestBreakpointsCorrelationShrinksRandomRegion(t *testing.T) {
	weak := ComputeBreakpoints(WordStats{Std: 1000, Rho: 0.1}, 16)
	strong := ComputeBreakpoints(WordStats{Std: 1000, Rho: 0.99}, 16)
	if strong.BP0 >= weak.BP0 {
		t.Errorf("BP0 with strong correlation (%d) not below weak (%d)",
			strong.BP0, weak.BP0)
	}
}

func TestBreakpointsMagnitudeRaisesBP1(t *testing.T) {
	small := ComputeBreakpoints(WordStats{Std: 100, Rho: 0}, 16)
	large := ComputeBreakpoints(WordStats{Std: 4000, Rho: 0}, 16)
	if large.BP1 <= small.BP1 {
		t.Errorf("BP1 for larger signal (%d) not above smaller (%d)",
			large.BP1, small.BP1)
	}
}

func TestBreakpointsDegenerate(t *testing.T) {
	bp := ComputeBreakpoints(WordStats{Std: 0}, 16)
	if bp.BP0 != 0 || bp.BP1 != 0 {
		t.Errorf("degenerate stream breakpoints %+v", bp)
	}
}

func TestSignActivityOrthant(t *testing.T) {
	// rho = 0, zero mean: sign flips with probability 1/2.
	if got := SignActivity(WordStats{Std: 1, Rho: 0}); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("sign activity at rho=0: %v", got)
	}
	// rho -> 1: flips vanish.
	if got := SignActivity(WordStats{Std: 1, Rho: 0.9999}); got > 0.01 {
		t.Errorf("sign activity at rho~1: %v", got)
	}
	// large mean: flips vanish.
	if got := SignActivity(WordStats{Mean: 100, Std: 10, Rho: 0}); got > 1e-6 {
		t.Errorf("sign activity with dominant mean: %v", got)
	}
	// degenerate
	if got := SignActivity(WordStats{}); got != 0 {
		t.Errorf("sign activity of empty stats: %v", got)
	}
}

func TestSignActivityMatchesEmpirical(t *testing.T) {
	for _, rho := range []float64{0, 0.5, 0.9} {
		xs := stimuli.TakeInts(stimuli.AR1(16, 0, 3000, rho, 23), 40000)
		flips := 0
		for i := 1; i < len(xs); i++ {
			if (xs[i] < 0) != (xs[i-1] < 0) {
				flips++
			}
		}
		empirical := float64(flips) / float64(len(xs)-1)
		ws, _ := FromInts(xs)
		model := SignActivity(ws)
		if math.Abs(model-empirical) > 0.03 {
			t.Errorf("rho=%v: model sign activity %v vs empirical %v", rho, model, empirical)
		}
	}
}

func TestRegionsPartitionWord(t *testing.T) {
	cases := []WordStats{
		{Mean: 0, Std: 1000, Rho: 0.9},
		{Mean: 0, Std: 30, Rho: 0.2},
		{Mean: 800, Std: 200, Rho: 0.95},
		{Mean: 0, Std: 30000, Rho: 0.99},
	}
	for _, ws := range cases {
		r := Regions(ws, 16)
		if r.NRand+r.NCorr+r.NSign != 16 {
			t.Errorf("ws %+v: regions %+v don't partition 16 bits", ws, r)
		}
		if r.NRand < 0 || r.NCorr < 0 || r.NSign < 0 {
			t.Errorf("ws %+v: negative region %+v", ws, r)
		}
	}
}

func TestAvgHdModelTracksEmpirical(t *testing.T) {
	// For AR(1) streams, eq. (11) should land within ~1.5 bits of the
	// measured average Hd at 16-bit width.
	type tc struct {
		name string
		rho  float64
		std  float64
	}
	for _, c := range []tc{
		{"weak", 0.3, 4000},
		{"strong", 0.95, 4000},
	} {
		words := stimuli.Take(stimuli.AR1(16, 0, c.std, c.rho, 31), 30000)
		ws, _ := FromWords(words)
		model := Regions(ws, 16).AvgHd()
		empirical, err := EmpiricalAvgHd(words)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(model-empirical) > 1.5 {
			t.Errorf("%s: model avg Hd %.2f vs empirical %.2f", c.name, model, empirical)
		}
	}
}

func TestEmpiricalAvgHdKnown(t *testing.T) {
	words := []logic.Word{
		logic.MustParseWord("0000"),
		logic.MustParseWord("1111"), // Hd 4
		logic.MustParseWord("1110"), // Hd 1
	}
	got, err := EmpiricalAvgHd(words)
	if err != nil {
		t.Fatal(err)
	}
	if got != 2.5 {
		t.Errorf("avg Hd = %v, want 2.5", got)
	}
	if _, err := EmpiricalAvgHd(words[:1]); err == nil {
		t.Error("single word accepted")
	}
}

func TestFromWordsSignedInterpretation(t *testing.T) {
	words := []logic.Word{logic.FromInt(-4, 8), logic.FromInt(4, 8)}
	ws, err := FromWords(words)
	if err != nil {
		t.Fatal(err)
	}
	if ws.Mean != 0 {
		t.Errorf("mean = %v, want 0 (signed interpretation)", ws.Mean)
	}
}
