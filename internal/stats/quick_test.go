package stats

import (
	"math"
	"testing"
	"testing/quick"
)

// boundWS maps arbitrary quick-generated floats into a plausible
// word-statistics range.
func boundWS(mean, std, rho float64) WordStats {
	return WordStats{
		Mean: math.Mod(mean, 1e4),
		Std:  math.Abs(math.Mod(std, 3e4)),
		Rho:  math.Mod(rho, 0.999),
	}
}

// Property: the three regions always partition the word, for any
// statistics and any width.
func TestRegionsPartitionProperty(t *testing.T) {
	f := func(mean, std, rho float64, w8 uint8) bool {
		m := 1 + int(w8%63)
		r := Regions(boundWS(mean, std, rho), m)
		return r.NRand >= 0 && r.NCorr >= 0 && r.NSign >= 0 &&
			r.NRand+r.NCorr+r.NSign == m
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: breakpoints are always ordered and in range.
func TestBreakpointsRangeProperty(t *testing.T) {
	f := func(mean, std, rho float64, w8 uint8) bool {
		m := 1 + int(w8%63)
		bp := ComputeBreakpoints(boundWS(mean, std, rho), m)
		return bp.BP0 >= 0 && bp.BP1 >= bp.BP0 && bp.BP1 <= m-1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: sign activity is a probability and decreases with |mean|.
func TestSignActivityProperty(t *testing.T) {
	f := func(mean, std, rho float64) bool {
		ws := boundWS(mean, std, rho)
		t1 := SignActivity(ws)
		if t1 < 0 || t1 > 1 || math.IsNaN(t1) {
			return false
		}
		far := ws
		far.Mean = ws.Mean * 10
		if math.Abs(far.Mean) > math.Abs(ws.Mean) {
			return SignActivity(far) <= t1+1e-12
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: AvgHd is bounded by the word width and non-negative.
func TestAvgHdBoundedProperty(t *testing.T) {
	f := func(mean, std, rho float64, w8 uint8) bool {
		m := 1 + int(w8%63)
		avg := Regions(boundWS(mean, std, rho), m).AvgHd()
		return avg >= 0 && avg <= float64(m)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
