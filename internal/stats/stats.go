// Package stats implements the word-level and bit-level signal statistics
// underlying Section 6 of the paper: estimation of mean, variance and
// lag-1 autocorrelation of a data stream; extraction of per-bit signal and
// transition probabilities; the dual-bit-type breakpoints BP0/BP1 that
// split a data word into an uncorrelated LSB region, a correlated middle
// region and a sign region (Landman's data model, paper Fig. 5); and the
// sign-region transition activity.
package stats

import (
	"fmt"
	"math"

	"hdpower/internal/logic"
)

// WordStats holds word-level statistics of a signed data stream.
type WordStats struct {
	N    int     // number of samples
	Mean float64 // sample mean μ
	Std  float64 // sample standard deviation σ
	Rho  float64 // lag-1 autocorrelation ρ
}

// FromInts estimates word statistics from a signed sample stream.
// It needs at least two samples.
func FromInts(xs []int64) (WordStats, error) {
	if len(xs) < 2 {
		return WordStats{}, fmt.Errorf("stats: need >= 2 samples, got %d", len(xs))
	}
	var mean float64
	for _, x := range xs {
		mean += float64(x)
	}
	mean /= float64(len(xs))
	var varSum, lagSum float64
	for i, x := range xs {
		d := float64(x) - mean
		varSum += d * d
		if i+1 < len(xs) {
			lagSum += d * (float64(xs[i+1]) - mean)
		}
	}
	variance := varSum / float64(len(xs))
	rho := 0.0
	if varSum > 0 {
		rho = lagSum / varSum
	}
	return WordStats{
		N:    len(xs),
		Mean: mean,
		Std:  math.Sqrt(variance),
		Rho:  rho,
	}, nil
}

// FromWords estimates word statistics from a stream of two's-complement
// words (all the same width, at most 64 bits).
func FromWords(words []logic.Word) (WordStats, error) {
	xs := make([]int64, len(words))
	for i, w := range words {
		xs[i] = w.Int()
	}
	return FromInts(xs)
}

// BitStats holds per-bit-position probabilities extracted from a stream.
type BitStats struct {
	// Signal[i] is the probability of bit i being 1.
	Signal []float64
	// Transition[i] is the probability of bit i differing between two
	// consecutive words.
	Transition []float64
}

// ExtractBitStats measures per-bit signal and transition probabilities
// from a word stream. It needs at least two words of equal width.
func ExtractBitStats(words []logic.Word) (BitStats, error) {
	if len(words) < 2 {
		return BitStats{}, fmt.Errorf("stats: need >= 2 words, got %d", len(words))
	}
	m := words[0].Width()
	ones := make([]int, m)
	trans := make([]int, m)
	for j, w := range words {
		if w.Width() != m {
			return BitStats{}, fmt.Errorf("stats: word %d has width %d, want %d", j, w.Width(), m)
		}
		for i := 0; i < m; i++ {
			if w.Bit(i) {
				ones[i]++
			}
			if j > 0 && w.Bit(i) != words[j-1].Bit(i) {
				trans[i]++
			}
		}
	}
	bs := BitStats{
		Signal:     make([]float64, m),
		Transition: make([]float64, m),
	}
	for i := 0; i < m; i++ {
		bs.Signal[i] = float64(ones[i]) / float64(len(words))
		bs.Transition[i] = float64(trans[i]) / float64(len(words)-1)
	}
	return bs, nil
}

// Breakpoints are the bit positions separating the three regions of
// Landman's data model: bits [0, BP0] behave as uncorrelated random bits
// (transition activity 1/2), bits [BP1, m-1] behave as sign bits
// (switching all together), and bits in between interpolate.
type Breakpoints struct {
	BP0 int
	BP1 int
}

// ComputeBreakpoints derives the breakpoints for an m-bit representation
// from word-level statistics:
//
//	BP1 = ⌈log2(|μ| + 3σ)⌉       — magnitude ceiling; bits above carry
//	                               only sign information.
//	BP0 = ⌊log2(σ·√(2(1−ρ)))⌋   — the standard deviation of the lag-1
//	                               difference process governs which LSBs
//	                               toggle like coin flips.
//
// Both are clamped into [0, m-1] with BP0 <= BP1. Degenerate streams
// (σ = 0) collapse both breakpoints to 0.
func ComputeBreakpoints(ws WordStats, m int) Breakpoints {
	if m <= 0 {
		panic(fmt.Sprintf("stats: non-positive width %d", m))
	}
	if ws.Std <= 0 {
		return Breakpoints{}
	}
	bp1 := int(math.Ceil(math.Log2(math.Abs(ws.Mean) + 3*ws.Std)))
	rho := clamp(ws.Rho, -0.999999, 0.999999)
	diffStd := ws.Std * math.Sqrt(2*(1-rho))
	bp0 := 0
	if diffStd >= 1 {
		bp0 = int(math.Floor(math.Log2(diffStd)))
	}
	bp0 = clampInt(bp0, 0, m-1)
	bp1 = clampInt(bp1, 0, m-1)
	if bp0 > bp1 {
		bp0 = bp1
	}
	return Breakpoints{BP0: bp0, BP1: bp1}
}

// SignActivity estimates the transition probability of the sign region.
// For a zero-mean stationary Gaussian process with lag-1 correlation ρ the
// probability that consecutive samples differ in sign is the Gaussian
// orthant probability arccos(ρ)/π; a nonzero mean suppresses sign changes,
// which is approximated by the Gaussian tail factor exp(−μ²/2σ²).
func SignActivity(ws WordStats) float64 {
	if ws.Std <= 0 {
		return 0
	}
	rho := clamp(ws.Rho, -1, 1)
	base := math.Acos(rho) / math.Pi
	ratio := ws.Mean / ws.Std
	return base * math.Exp(-0.5*ratio*ratio)
}

// RegionActivity summarizes the per-region transition activities and bit
// counts used by eq. (11) of the paper to compute the average
// Hamming-distance of a stream.
type RegionActivity struct {
	NRand, NCorr, NSign int     // bits per region
	TRand, TCorr, TSign float64 // transition activity per region
}

// Regions splits an m-bit word according to the breakpoints and assigns
// the model activities: 1/2 in the random region, t_sign in the sign
// region, and their mean in the linearly interpolated middle region.
func Regions(ws WordStats, m int) RegionActivity {
	bp := ComputeBreakpoints(ws, m)
	tSign := SignActivity(ws)
	nRand := bp.BP0 + 1
	if nRand > m {
		nRand = m
	}
	nSign := m - 1 - bp.BP1 + 1 // bits BP1..m-1
	if nSign < 0 {
		nSign = 0
	}
	nCorr := m - nRand - nSign
	if nCorr < 0 {
		// Regions overlap on narrow words; shrink the sign region, which
		// is the model's softest assumption.
		nSign += nCorr
		nCorr = 0
		if nSign < 0 {
			nSign = 0
		}
	}
	return RegionActivity{
		NRand: nRand,
		NCorr: nCorr,
		NSign: nSign,
		TRand: 0.5,
		TCorr: (0.5 + tSign) / 2,
		TSign: tSign,
	}
}

// AvgHd implements eq. (11): the expected Hamming-distance of consecutive
// words of the stream, from region bit counts and activities.
func (r RegionActivity) AvgHd() float64 {
	return r.TRand*float64(r.NRand) + r.TCorr*float64(r.NCorr) + r.TSign*float64(r.NSign)
}

// EmpiricalAvgHd measures the average Hamming-distance of a word stream
// directly — the reference the analytic model is judged against.
func EmpiricalAvgHd(words []logic.Word) (float64, error) {
	if len(words) < 2 {
		return 0, fmt.Errorf("stats: need >= 2 words, got %d", len(words))
	}
	total := 0
	for j := 1; j < len(words); j++ {
		total += logic.Hd(words[j-1], words[j])
	}
	return float64(total) / float64(len(words)-1), nil
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
