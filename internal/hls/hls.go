// Package hls applies the Hd power macro-model to the high-level
// synthesis task that motivates the paper (introduction, refs. [5–8]):
// binding a scheduled set of operations to a limited number of identical
// functional units so that the switching activity — and with the Hd model,
// the *predicted power* — of the unit inputs is minimized.
//
// The model of computation is the classic iterative schedule: every
// operation executes once per loop iteration, operations bound to the
// same unit execute back-to-back in schedule order, and the unit's power
// is the Hd-model estimate over its resulting input vector sequence.
// Because the model maps Hamming-distances to charge, the optimizer
// minimizes actual predicted energy rather than raw toggle counts.
package hls

import (
	"fmt"
	"math"

	"hdpower/internal/core"
	"hdpower/internal/logic"
)

// Operation is one scheduled operation: Steps[t] is the packed input
// vector it applies to its functional unit in iteration t.
type Operation struct {
	Name  string
	Steps []logic.Word
}

// Problem is a binding problem instance: operations to distribute over
// identical functional units characterized by Model.
type Problem struct {
	// Model is the Hd macro-model of the functional unit type.
	Model *core.Model
	// Ops are the operations in schedule order.
	Ops []Operation
	// Units is the number of available functional units.
	Units int
}

// Validate checks the problem for consistency.
func (p *Problem) Validate() error {
	if p.Model == nil {
		return fmt.Errorf("hls: nil model")
	}
	if err := p.Model.Validate(); err != nil {
		return err
	}
	if p.Units < 1 {
		return fmt.Errorf("hls: %d units", p.Units)
	}
	if len(p.Ops) == 0 {
		return fmt.Errorf("hls: no operations")
	}
	T := len(p.Ops[0].Steps)
	if T == 0 {
		return fmt.Errorf("hls: operation %q has no steps", p.Ops[0].Name)
	}
	for _, op := range p.Ops {
		if len(op.Steps) != T {
			return fmt.Errorf("hls: operation %q has %d steps, want %d", op.Name, len(op.Steps), T)
		}
		for t, w := range op.Steps {
			if w.Width() != p.Model.InputBits {
				return fmt.Errorf("hls: operation %q step %d width %d, model wants %d",
					op.Name, t, w.Width(), p.Model.InputBits)
			}
		}
	}
	return nil
}

// Cost returns the total predicted energy per iteration of a binding:
// binding[i] is the unit operation i is bound to. The unit input sequence
// interleaves its bound operations in schedule order across iterations
// (including the wrap from one iteration to the next), and each
// transition costs p(Hd) under the model.
func (p *Problem) Cost(binding []int) (float64, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	if len(binding) != len(p.Ops) {
		return 0, fmt.Errorf("hls: binding covers %d ops, want %d", len(binding), len(p.Ops))
	}
	for i, u := range binding {
		if u < 0 || u >= p.Units {
			return 0, fmt.Errorf("hls: op %d bound to unit %d of %d", i, u, p.Units)
		}
	}
	T := len(p.Ops[0].Steps)
	var total float64
	for u := 0; u < p.Units; u++ {
		var members []int
		for i, b := range binding {
			if b == u {
				members = append(members, i)
			}
		}
		if len(members) == 0 {
			continue
		}
		var prev logic.Word
		first := true
		for t := 0; t < T; t++ {
			for _, i := range members {
				cur := p.Ops[i].Steps[t]
				if !first {
					total += p.Model.P(logic.Hd(prev, cur))
				}
				prev = cur
				first = false
			}
		}
	}
	// Normalize per iteration so costs are comparable across T.
	return total / float64(T), nil
}

// Greedy assigns operations one at a time (in schedule order) to the unit
// with the smallest incremental cost, a standard low-power binding
// heuristic. Returns the binding and its cost.
func (p *Problem) Greedy() ([]int, float64, error) {
	if err := p.Validate(); err != nil {
		return nil, 0, err
	}
	binding := make([]int, 0, len(p.Ops))
	for i := range p.Ops {
		bestUnit, bestCost := 0, math.Inf(1)
		for u := 0; u < p.Units; u++ {
			trial := append(append([]int(nil), binding...), u)
			c, err := p.partialCost(trial, i+1)
			if err != nil {
				return nil, 0, err
			}
			if c < bestCost {
				bestUnit, bestCost = u, c
			}
		}
		binding = append(binding, bestUnit)
	}
	cost, err := p.Cost(binding)
	return binding, cost, err
}

// partialCost evaluates Cost over the first n operations only.
func (p *Problem) partialCost(binding []int, n int) (float64, error) {
	sub := &Problem{Model: p.Model, Ops: p.Ops[:n], Units: p.Units}
	return sub.Cost(binding)
}

// Optimal searches all unit assignments (with unit-symmetry pruning: the
// first operation on each fresh unit uses the lowest unused index) and
// returns the minimum-cost binding. Exponential; intended for problems
// with at most ~10 operations.
func (p *Problem) Optimal() ([]int, float64, error) {
	if err := p.Validate(); err != nil {
		return nil, 0, err
	}
	const maxOps = 12
	if len(p.Ops) > maxOps {
		return nil, 0, fmt.Errorf("hls: %d ops exceed exhaustive search limit %d (use Greedy)",
			len(p.Ops), maxOps)
	}
	best := make([]int, len(p.Ops))
	bestCost := math.Inf(1)
	cur := make([]int, len(p.Ops))
	var rec func(i, used int) error
	rec = func(i, used int) error {
		if i == len(p.Ops) {
			c, err := p.Cost(cur)
			if err != nil {
				return err
			}
			if c < bestCost {
				bestCost = c
				copy(best, cur)
			}
			return nil
		}
		limit := used + 1 // symmetry: a new unit must be the next index
		if limit > p.Units {
			limit = p.Units
		}
		for u := 0; u < limit; u++ {
			cur[i] = u
			nextUsed := used
			if u == used {
				nextUsed++
			}
			if err := rec(i+1, nextUsed); err != nil {
				return err
			}
		}
		return nil
	}
	if err := rec(0, 0); err != nil {
		return nil, 0, err
	}
	return best, bestCost, nil
}
