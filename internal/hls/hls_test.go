package hls

import (
	"math/rand"
	"testing"

	"hdpower/internal/core"
	"hdpower/internal/logic"
	"hdpower/internal/stimuli"
)

// linearModel returns a model with p_i = i over m input bits, so costs
// equal summed Hamming-distances — easy to reason about in tests.
func linearModel(m int) *core.Model {
	model := &core.Model{Module: "lin", InputBits: m, Basic: make([]core.Coef, m)}
	for i := 1; i <= m; i++ {
		model.Basic[i-1] = core.Coef{P: float64(i), Count: 1}
	}
	return model
}

func constOp(name string, w logic.Word, steps int) Operation {
	op := Operation{Name: name}
	for t := 0; t < steps; t++ {
		op.Steps = append(op.Steps, w)
	}
	return op
}

func TestValidate(t *testing.T) {
	m := linearModel(4)
	good := &Problem{Model: m, Units: 1, Ops: []Operation{
		constOp("a", logic.FromUint(1, 4), 3),
	}}
	if err := good.Validate(); err != nil {
		t.Errorf("valid problem rejected: %v", err)
	}
	cases := []*Problem{
		{Model: nil, Units: 1, Ops: good.Ops},
		{Model: m, Units: 0, Ops: good.Ops},
		{Model: m, Units: 1},
		{Model: m, Units: 1, Ops: []Operation{constOp("a", logic.FromUint(1, 5), 3)}},
		{Model: m, Units: 1, Ops: []Operation{
			constOp("a", logic.FromUint(1, 4), 3),
			constOp("b", logic.FromUint(1, 4), 2), // step mismatch
		}},
	}
	for i, p := range cases {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestCostConstantOpsIsZero(t *testing.T) {
	// One op repeating one vector: no transitions, no cost.
	p := &Problem{Model: linearModel(4), Units: 1, Ops: []Operation{
		constOp("a", logic.FromUint(5, 4), 10),
	}}
	c, err := p.Cost([]int{0})
	if err != nil {
		t.Fatal(err)
	}
	if c != 0 {
		t.Errorf("cost = %v", c)
	}
}

func TestCostKnownAlternation(t *testing.T) {
	// Two constant ops with Hd 4 between them sharing one unit: every
	// execution alternates 0000 <-> 1111, costing p(4) = 4 per
	// transition, 2 transitions per iteration (including wrap).
	p := &Problem{Model: linearModel(4), Units: 2, Ops: []Operation{
		constOp("a", logic.FromUint(0, 4), 8),
		constOp("b", logic.FromUint(0xf, 4), 8),
	}}
	shared, err := p.Cost([]int{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	// 8 iterations, 16 executions, 15 transitions of Hd 4, /8 iters
	if want := 4.0 * 15 / 8; shared != want {
		t.Errorf("shared cost = %v, want %v", shared, want)
	}
	split, err := p.Cost([]int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if split != 0 {
		t.Errorf("split cost = %v, want 0 (each unit sees a constant)", split)
	}
}

func TestCostValidation(t *testing.T) {
	p := &Problem{Model: linearModel(4), Units: 1, Ops: []Operation{
		constOp("a", logic.FromUint(0, 4), 2),
	}}
	if _, err := p.Cost([]int{0, 0}); err == nil {
		t.Error("wrong binding length accepted")
	}
	if _, err := p.Cost([]int{1}); err == nil {
		t.Error("out-of-range unit accepted")
	}
}

func TestOptimalFindsObviousSplit(t *testing.T) {
	p := &Problem{Model: linearModel(4), Units: 2, Ops: []Operation{
		constOp("a", logic.FromUint(0, 4), 4),
		constOp("b", logic.FromUint(0xf, 4), 4),
	}}
	binding, cost, err := p.Optimal()
	if err != nil {
		t.Fatal(err)
	}
	if cost != 0 {
		t.Errorf("optimal cost = %v", cost)
	}
	if binding[0] == binding[1] {
		t.Errorf("optimal binding shares a unit: %v", binding)
	}
}

func TestOptimalPrefersSharingCoherentOps(t *testing.T) {
	// Three ops: two identical streams and one alien stream; 2 units.
	// Optimum binds the twins together.
	rng := rand.New(rand.NewSource(3))
	var twinSteps, alienSteps []logic.Word
	for t := 0; t < 16; t++ {
		twinSteps = append(twinSteps, logic.FromUint(rng.Uint64()&0xff, 8))
		alienSteps = append(alienSteps, logic.FromUint(rng.Uint64()&0xff, 8))
	}
	p := &Problem{Model: linearModel(8), Units: 2, Ops: []Operation{
		{Name: "twin1", Steps: twinSteps},
		{Name: "alien", Steps: alienSteps},
		{Name: "twin2", Steps: twinSteps},
	}}
	binding, _, err := p.Optimal()
	if err != nil {
		t.Fatal(err)
	}
	if binding[0] != binding[2] {
		t.Errorf("twins split across units: %v", binding)
	}
	if binding[1] == binding[0] {
		t.Errorf("alien shares the twins' unit: %v", binding)
	}
}

func TestGreedyNeverBeatsOptimal(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 10; trial++ {
		nOps := 3 + rng.Intn(4)
		var ops []Operation
		for i := 0; i < nOps; i++ {
			src := stimuli.Random(8, rng.Int63())
			ops = append(ops, Operation{Name: "op", Steps: stimuli.Take(src, 12)})
		}
		p := &Problem{Model: linearModel(8), Units: 2, Ops: ops}
		_, gCost, err := p.Greedy()
		if err != nil {
			t.Fatal(err)
		}
		_, oCost, err := p.Optimal()
		if err != nil {
			t.Fatal(err)
		}
		if oCost > gCost+1e-9 {
			t.Errorf("trial %d: optimal %v worse than greedy %v", trial, oCost, gCost)
		}
	}
}

func TestOptimalRefusesHugeProblems(t *testing.T) {
	ops := make([]Operation, 13)
	for i := range ops {
		ops[i] = constOp("x", logic.FromUint(0, 4), 2)
	}
	p := &Problem{Model: linearModel(4), Units: 2, Ops: ops}
	if _, _, err := p.Optimal(); err == nil {
		t.Error("13-op exhaustive search accepted")
	}
}
