package dbt

import (
	"math"
	"testing"

	"hdpower/internal/dwlib"
	"hdpower/internal/power"
	"hdpower/internal/sim"
	"hdpower/internal/stats"
	"hdpower/internal/stimuli"
)

func adderMeter(t *testing.T, w int) *power.Meter {
	t.Helper()
	m, err := power.NewMeter(dwlib.RippleAdder(w), sim.EventDriven)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestCharacterizeProducesPositiveCaps(t *testing.T) {
	mdl, err := Characterize(adderMeter(t, 4), "ripple-adder-4", 1000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if mdl.CData <= 0 || mdl.CSign <= 0 {
		t.Errorf("capacitances not positive: %+v", mdl)
	}
	if mdl.InputBits != 8 {
		t.Errorf("input bits = %d", mdl.InputBits)
	}
}

func TestEstimateAvgRandomStream(t *testing.T) {
	// For a uniform random stream the DBT estimate must land near the
	// simulated average (it was characterized in exactly this regime).
	mdl, err := Characterize(adderMeter(t, 4), "ripple-adder-4", 3000, 2)
	if err != nil {
		t.Fatal(err)
	}
	eval := adderMeter(t, 4)
	vecs := stimuli.Take(stimuli.Random(8, 5), 2001)
	tr, err := eval.Run(vecs)
	if err != nil {
		t.Fatal(err)
	}
	// Two 4-bit ports of pure white noise.
	port := stats.RegionActivity{NRand: 4, TRand: 0.5, TCorr: 0.5, TSign: 0.5}
	est, err := mdl.EstimateAvg([]stats.RegionActivity{port, port})
	if err != nil {
		t.Fatal(err)
	}
	rel := math.Abs(est-tr.Mean()) / tr.Mean()
	if rel > 0.10 {
		t.Errorf("DBT estimate %.2f vs simulated %.2f (%.1f%% off)",
			est, tr.Mean(), rel*100)
	}
}

func TestEstimateAvgPortMismatch(t *testing.T) {
	mdl := &Model{Module: "x", InputBits: 8, CData: 1, CSign: 1}
	if _, err := mdl.EstimateAvg([]stats.RegionActivity{{NRand: 4}}); err == nil {
		t.Fatal("port bit mismatch accepted")
	}
}

func TestCharacterizeDefaultsAndValidation(t *testing.T) {
	if _, err := Characterize(adderMeter(t, 4), "x", 0, 3); err != nil {
		t.Errorf("default pattern count failed: %v", err)
	}
}
