// Package dbt implements a simplified dual-bit-type (DBT) power
// macro-model in the style of Landman & Rabaey — the only prior model the
// paper credits with bit-width parameterizability (Section 2). It serves
// as the baseline comparator for the Hd model in this reproduction.
//
// The module is summarized by two effective capacitances: charge per
// uniformly switching data bit (characterized with white-noise patterns)
// and charge per sign-region bit in an all-bits-flip event (characterized
// with full-word inversions). Average power for a stream then follows
// from the dual-bit-type region activities alone — no per-cycle
// simulation, but also no cycle resolution.
package dbt

import (
	"fmt"
	"math/rand"

	"hdpower/internal/logic"
	"hdpower/internal/power"
	"hdpower/internal/stats"
)

// Model is a characterized DBT-style macro-model.
type Model struct {
	// Module names the characterized module.
	Module string
	// InputBits is the total input width m.
	InputBits int
	// CData is the average charge contributed per switching input bit
	// under uniform white-noise stimulation.
	CData float64
	// CSign is the average charge per input bit of a full-word inversion
	// event, modeling correlated sign-region switching.
	CSign float64
}

// Characterize measures the two effective capacitances with the given
// number of patterns per phase.
func Characterize(meter *power.Meter, module string, patterns int, seed int64) (*Model, error) {
	m := meter.NumInputBits()
	if m <= 0 {
		return nil, fmt.Errorf("dbt: module %s has no inputs", module)
	}
	if patterns <= 0 {
		patterns = 2000
	}
	rng := rand.New(rand.NewSource(seed))
	randomWord := func() logic.Word {
		w := logic.NewWord(m)
		for b := 0; b < m; b++ {
			if rng.Intn(2) == 1 {
				w.Set(b, true)
			}
		}
		return w
	}

	// Phase 1: uniform white noise. Expected input activity is m/2
	// toggles per cycle.
	var qSum float64
	var hdSum int
	prev := randomWord()
	meter.Reset(prev)
	for j := 0; j < patterns; j++ {
		next := randomWord()
		qSum += meter.Cycle(next)
		hdSum += logic.Hd(prev, next)
		prev = next
	}
	if hdSum == 0 {
		return nil, fmt.Errorf("dbt: degenerate characterization stream")
	}
	cData := qSum / float64(hdSum)

	// Phase 2: full-word inversions u -> ~u, the all-sign-bits-switch
	// event at maximum correlation.
	var qFull float64
	for j := 0; j < patterns/4+1; j++ {
		u := randomWord()
		v := u.Clone()
		for b := 0; b < m; b++ {
			v.Set(b, !v.Bit(b))
		}
		meter.Reset(u)
		qFull += meter.Cycle(v)
	}
	cSign := qFull / float64(patterns/4+1) / float64(m)

	return &Model{Module: module, InputBits: m, CData: cData, CSign: cSign}, nil
}

// EstimateAvg predicts the average per-cycle charge of a module whose
// input ports carry streams with the given per-port region activities.
// The ports' bit counts must sum to the module's input width.
func (mdl *Model) EstimateAvg(ports []stats.RegionActivity) (float64, error) {
	total := 0
	var q float64
	for _, r := range ports {
		total += r.NRand + r.NCorr + r.NSign
		q += mdl.CData * (r.TRand*float64(r.NRand) + r.TCorr*float64(r.NCorr))
		q += mdl.CSign * r.TSign * float64(r.NSign)
	}
	if total != mdl.InputBits {
		return 0, fmt.Errorf("dbt: ports cover %d bits, module has %d", total, mdl.InputBits)
	}
	return q, nil
}
