// Package stimuli generates the input pattern streams the paper evaluates
// against (Section 4.2): random patterns, linearly quantized music and
// speech signals, video signals, and binary counter outputs.
//
// The original work used recorded signals; this reproduction synthesizes
// them as seeded Gaussian autoregressive processes whose word-level
// statistics (mean, variance, lag-1 correlation) match each class. The
// paper only consumes the streams through exactly those statistics and
// through the bit patterns they quantize to, so the synthetic equivalents
// exercise the same code paths (see DESIGN.md, substitutions).
package stimuli

import (
	"fmt"
	"math"
	"math/rand"

	"hdpower/internal/logic"
)

// Source produces an endless stream of fixed-width input words.
type Source interface {
	// Width returns the word width in bits.
	Width() int
	// Next returns the next word of the stream.
	Next() logic.Word
}

// Take materializes the next n words of a source.
func Take(src Source, n int) []logic.Word {
	out := make([]logic.Word, n)
	for i := range out {
		out[i] = src.Next()
	}
	return out
}

// TakeInts materializes the next n words interpreted as signed integers.
func TakeInts(src Source, n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = src.Next().Int()
	}
	return out
}

// randomSource emits uniformly random bit patterns — the characterization
// stream (data type I).
type randomSource struct {
	width int
	rng   *rand.Rand
}

// Random returns a uniform random pattern source of the given width.
func Random(width int, seed int64) Source {
	mustWidth(width)
	return &randomSource{width: width, rng: rand.New(rand.NewSource(seed))}
}

func (s *randomSource) Width() int { return s.width }

func (s *randomSource) Next() logic.Word {
	w := logic.NewWord(s.width)
	for i := 0; i < s.width; i += 32 {
		chunk := uint64(s.rng.Uint32())
		for b := 0; b < 32 && i+b < s.width; b++ {
			if chunk>>uint(b)&1 == 1 {
				w.Set(i+b, true)
			}
		}
	}
	return w
}

// counterSource emits successive values of a binary counter (data type V).
type counterSource struct {
	width int
	value uint64
	step  uint64
}

// Counter returns a binary up-counter source starting at start and
// advancing by step each sample. Widths above 64 are not supported.
func Counter(width int, start, step uint64) Source {
	mustWidth(width)
	if width > 64 {
		panic(fmt.Sprintf("stimuli: counter width %d > 64", width))
	}
	return &counterSource{width: width, value: start, step: step}
}

func (s *counterSource) Width() int { return s.width }

func (s *counterSource) Next() logic.Word {
	w := logic.FromUint(s.value, s.width)
	s.value += s.step
	return w
}

// arSource quantizes a Gaussian AR(1) process into two's-complement words.
// The marginal distribution is N(mean, std²) with lag-1 autocorrelation
// rho; samples are clamped to the representable range.
type arSource struct {
	width int
	rng   *rand.Rand
	mean  float64
	std   float64
	rho   float64
	state float64 // current deviation from mean
}

// AR1 returns a Gaussian first-order autoregressive source:
//
//	x[t] − μ = ρ·(x[t−1] − μ) + √(1−ρ²)·σ·w[t],  w ~ N(0,1)
//
// quantized to signed two's-complement words of the given width.
// rho must lie in (−1, 1).
func AR1(width int, mean, std, rho float64, seed int64) Source {
	mustWidth(width)
	if rho <= -1 || rho >= 1 {
		panic(fmt.Sprintf("stimuli: AR1 rho %v outside (-1,1)", rho))
	}
	if std < 0 {
		panic(fmt.Sprintf("stimuli: AR1 negative std %v", std))
	}
	rng := rand.New(rand.NewSource(seed))
	return &arSource{
		width: width,
		rng:   rng,
		mean:  mean,
		std:   std,
		rho:   rho,
		state: rng.NormFloat64() * std, // start in the stationary distribution
	}
}

func (s *arSource) Width() int { return s.width }

func (s *arSource) Next() logic.Word {
	s.state = s.rho*s.state + math.Sqrt(1-s.rho*s.rho)*s.std*s.rng.NormFloat64()
	return quantize(s.mean+s.state, s.width)
}

// quantize rounds v to the nearest integer and clamps it into the signed
// range of an m-bit two's-complement word.
func quantize(v float64, width int) logic.Word {
	hi := float64(int64(1)<<uint(width-1) - 1)
	lo := -float64(int64(1) << uint(width-1))
	r := math.Round(v)
	if r > hi {
		r = hi
	}
	if r < lo {
		r = lo
	}
	return logic.FromInt(int64(r), width)
}

// Replay returns a source that cycles through the given words forever.
func Replay(words []logic.Word) Source {
	if len(words) == 0 {
		panic("stimuli: Replay with no words")
	}
	w := words[0].Width()
	for _, word := range words {
		if word.Width() != w {
			panic("stimuli: Replay width mismatch")
		}
	}
	return &replaySource{words: words}
}

type replaySource struct {
	words []logic.Word
	pos   int
}

func (s *replaySource) Width() int { return s.words[0].Width() }

func (s *replaySource) Next() logic.Word {
	w := s.words[s.pos]
	s.pos = (s.pos + 1) % len(s.words)
	return w
}

// Concat glues several sources into one wide word per sample: the first
// source occupies the LSBs. Used to feed multi-operand modules, whose
// input vector is the concatenation of their input buses.
func Concat(srcs ...Source) Source {
	if len(srcs) == 0 {
		panic("stimuli: Concat with no sources")
	}
	total := 0
	for _, s := range srcs {
		total += s.Width()
	}
	return &concatSource{srcs: srcs, width: total}
}

type concatSource struct {
	srcs  []Source
	width int
}

func (s *concatSource) Width() int { return s.width }

func (s *concatSource) Next() logic.Word {
	w := s.srcs[0].Next()
	for _, src := range s.srcs[1:] {
		w = w.Concat(src.Next())
	}
	return w
}

func mustWidth(width int) {
	if width <= 0 {
		panic(fmt.Sprintf("stimuli: non-positive width %d", width))
	}
}
