package stimuli

import (
	"math"
	"testing"

	"hdpower/internal/logic"
)

func mean(xs []int64) float64 {
	var s float64
	for _, x := range xs {
		s += float64(x)
	}
	return s / float64(len(xs))
}

func stddev(xs []int64) float64 {
	m := mean(xs)
	var s float64
	for _, x := range xs {
		d := float64(x) - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}

func lag1(xs []int64) float64 {
	m := mean(xs)
	var num, den float64
	for i := 0; i < len(xs)-1; i++ {
		num += (float64(xs[i]) - m) * (float64(xs[i+1]) - m)
	}
	for _, x := range xs {
		d := float64(x) - m
		den += d * d
	}
	return num / den
}

func TestRandomBitBalance(t *testing.T) {
	src := Random(16, 1)
	const n = 4000
	ones := make([]int, 16)
	for i := 0; i < n; i++ {
		w := src.Next()
		for b := 0; b < 16; b++ {
			if w.Bit(b) {
				ones[b]++
			}
		}
	}
	for b, c := range ones {
		frac := float64(c) / n
		if frac < 0.45 || frac > 0.55 {
			t.Errorf("bit %d signal probability %.3f, want ~0.5", b, frac)
		}
	}
}

func TestRandomDeterministicPerSeed(t *testing.T) {
	a := Take(Random(8, 42), 20)
	b := Take(Random(8, 42), 20)
	for i := range a {
		if !a[i].Equal(b[i]) {
			t.Fatal("same seed produced different streams")
		}
	}
	c := Take(Random(8, 43), 20)
	same := true
	for i := range a {
		if !a[i].Equal(c[i]) {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical streams")
	}
}

func TestCounterSequence(t *testing.T) {
	src := Counter(4, 14, 1)
	want := []uint64{14, 15, 0, 1, 2}
	for i, w := range Take(src, 5) {
		if w.Uint() != want[i] {
			t.Errorf("counter[%d] = %d, want %d", i, w.Uint(), want[i])
		}
	}
}

func TestAR1Statistics(t *testing.T) {
	const n = 50000
	src := AR1(16, 0, 2000, 0.9, 7)
	xs := TakeInts(src, n)
	if m := mean(xs); math.Abs(m) > 100 {
		t.Errorf("AR1 mean = %v, want ~0", m)
	}
	if sd := stddev(xs); math.Abs(sd-2000) > 150 {
		t.Errorf("AR1 std = %v, want ~2000", sd)
	}
	if r := lag1(xs); math.Abs(r-0.9) > 0.03 {
		t.Errorf("AR1 rho = %v, want ~0.9", r)
	}
}

func TestAR1NonzeroMean(t *testing.T) {
	src := AR1(12, 500, 100, 0.5, 3)
	xs := TakeInts(src, 20000)
	if m := mean(xs); math.Abs(m-500) > 20 {
		t.Errorf("AR1 mean = %v, want ~500", m)
	}
}

func TestAR1Clamping(t *testing.T) {
	// A huge std must clamp, never wrap: all values stay in range.
	src := AR1(8, 0, 1e6, 0, 5)
	for _, v := range TakeInts(src, 1000) {
		if v < -128 || v > 127 {
			t.Fatalf("value %d out of 8-bit range", v)
		}
	}
}

func TestAR1BadRhoPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("rho=1 accepted")
		}
	}()
	AR1(8, 0, 1, 1.0, 1)
}

func TestQuantizeRounds(t *testing.T) {
	if got := quantize(3.4, 8).Int(); got != 3 {
		t.Errorf("quantize(3.4) = %d", got)
	}
	if got := quantize(-3.6, 8).Int(); got != -4 {
		t.Errorf("quantize(-3.6) = %d", got)
	}
	if got := quantize(1000, 8).Int(); got != 127 {
		t.Errorf("quantize(1000) = %d", got)
	}
	if got := quantize(-1000, 8).Int(); got != -128 {
		t.Errorf("quantize(-1000) = %d", got)
	}
}

func TestReplayCycles(t *testing.T) {
	words := []logic.Word{logic.FromUint(1, 4), logic.FromUint(2, 4)}
	src := Replay(words)
	got := Take(src, 5)
	want := []uint64{1, 2, 1, 2, 1}
	for i := range got {
		if got[i].Uint() != want[i] {
			t.Errorf("replay[%d] = %d, want %d", i, got[i].Uint(), want[i])
		}
	}
}

func TestConcatLayout(t *testing.T) {
	a := Replay([]logic.Word{logic.FromUint(0x3, 4)})
	b := Replay([]logic.Word{logic.FromUint(0x5, 4)})
	src := Concat(a, b)
	if src.Width() != 8 {
		t.Fatalf("concat width = %d", src.Width())
	}
	w := src.Next()
	if w.Uint() != 0x53 {
		t.Errorf("concat value = %#x, want 0x53", w.Uint())
	}
}

func TestDataTypeLabels(t *testing.T) {
	want := []string{"I", "II", "III", "IV", "V"}
	for i, dt := range AllDataTypes() {
		if dt.String() != want[i] {
			t.Errorf("data type %d label = %s, want %s", i, dt, want[i])
		}
		if dt.Description() == "" || dt.Description() == "unknown" {
			t.Errorf("data type %s has no description", dt)
		}
	}
}

func TestNewStreamAllTypes(t *testing.T) {
	for _, dt := range AllDataTypes() {
		src := NewStream(dt, 12, 99)
		if src.Width() != 12 {
			t.Errorf("%s: width %d", dt, src.Width())
		}
		words := Take(src, 100)
		if len(words) != 100 {
			t.Errorf("%s: short stream", dt)
		}
	}
}

func TestCounterStreamSignBitsStayZero(t *testing.T) {
	// The paper's type V property: only positive values, sign bit never
	// set — this is what breaks the basic model and what the enhanced
	// model fixes.
	src := NewStream(TypeCounter, 8, 0)
	for i, w := range Take(src, 400) {
		if w.Bit(7) {
			t.Fatalf("sample %d: counter stream set the sign bit (%s)", i, w)
		}
	}
}

func TestSpeechMoreCorrelatedThanMusic(t *testing.T) {
	const n = 30000
	music := TakeInts(NewStream(TypeMusic, 16, 1), n)
	speech := TakeInts(NewStream(TypeSpeech, 16, 1), n)
	rm, rs := lag1(music), lag1(speech)
	if rs <= rm {
		t.Errorf("speech rho %.3f not above music rho %.3f", rs, rm)
	}
	if rs < 0.9 {
		t.Errorf("speech rho %.3f, want strong (>0.9)", rs)
	}
	if rm > 0.8 {
		t.Errorf("music rho %.3f, want weak (<0.8)", rm)
	}
}

func TestVideoPositiveMean(t *testing.T) {
	xs := TakeInts(NewStream(TypeVideo, 12, 2), 20000)
	if m := mean(xs); m < 100 {
		t.Errorf("video mean = %v, want clearly positive", m)
	}
}

func TestConcatNoSourcesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Concat() accepted")
		}
	}()
	Concat()
}

func TestReplayEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Replay(nil) accepted")
		}
	}()
	Replay(nil)
}

func TestSinePeriodAndAmplitude(t *testing.T) {
	src := Sine(12, 1000, 0.01, 0, 1)
	xs := TakeInts(src, 300) // 3 full periods
	var lo, hi int64 = 1 << 20, -(1 << 20)
	for _, v := range xs {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if hi < 950 || hi > 1050 || lo > -950 || lo < -1050 {
		t.Errorf("sine range [%d, %d], want ~[-1000, 1000]", lo, hi)
	}
	// Period 100: sample 0 and sample 100 should match closely.
	if d := xs[0] - xs[100]; d > 2 || d < -2 {
		t.Errorf("periodicity violated: %d vs %d", xs[0], xs[100])
	}
}

func TestSineNoiseAddsVariance(t *testing.T) {
	clean := TakeInts(Sine(14, 500, 0.013, 0, 2), 5000)
	noisy := TakeInts(Sine(14, 500, 0.013, 200, 2), 5000)
	if stddev(noisy) <= stddev(clean) {
		t.Errorf("noise did not add variance: %v vs %v", stddev(noisy), stddev(clean))
	}
}

func TestSineValidation(t *testing.T) {
	for _, f := range []float64{0, 0.5, -0.1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Sine freq %v accepted", f)
				}
			}()
			Sine(8, 10, f, 0, 1)
		}()
	}
}

func TestChirpSweepsCorrelation(t *testing.T) {
	// Low-frequency segments are more correlated than high-frequency ones.
	src := Chirp(14, 2000, 0.005, 0.2, 4000, 3)
	xs := TakeInts(src, 4000)
	early := lag1(xs[:800]) // near f0: slow, highly correlated
	late := lag1(xs[3200:]) // near f1: fast, less correlated
	if early <= late {
		t.Errorf("chirp correlation did not fall: early %.3f, late %.3f", early, late)
	}
}

func TestChirpValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero period accepted")
		}
	}()
	Chirp(8, 10, 0.01, 0.1, 0, 1)
}
