package stimuli

import (
	"fmt"

	"hdpower/internal/logic"
)

// DataType enumerates the five input-pattern classes of the paper's
// Section 4.2.
type DataType int

const (
	// TypeRandom (I): uniform random patterns; same statistics as the
	// characterization stream.
	TypeRandom DataType = iota
	// TypeMusic (II): linearly quantized music signal, weak correlation.
	TypeMusic
	// TypeSpeech (III): linearly quantized speech signal, strong
	// correlation.
	TypeSpeech
	// TypeVideo (IV): video signal, strong correlation, nonzero mean.
	TypeVideo
	// TypeCounter (V): successive outputs of a binary counter restricted
	// to positive values (sign bit constantly zero), the stream that
	// breaks the basic Hd-model in the paper's Table 1.
	TypeCounter
	numDataTypes
)

// AllDataTypes lists the five paper data types in table order.
func AllDataTypes() []DataType {
	return []DataType{TypeRandom, TypeMusic, TypeSpeech, TypeVideo, TypeCounter}
}

// String returns the paper's roman-numeral label.
func (dt DataType) String() string {
	switch dt {
	case TypeRandom:
		return "I"
	case TypeMusic:
		return "II"
	case TypeSpeech:
		return "III"
	case TypeVideo:
		return "IV"
	case TypeCounter:
		return "V"
	}
	return fmt.Sprintf("DataType(%d)", int(dt))
}

// Description returns the paper's characterization of the data type.
func (dt DataType) Description() string {
	switch dt {
	case TypeRandom:
		return "random patterns (characterization statistics)"
	case TypeMusic:
		return "linear quantized music signal (weak correlation)"
	case TypeSpeech:
		return "linear quantized speech signal (strong correlation)"
	case TypeVideo:
		return "video signal (strong correlation)"
	case TypeCounter:
		return "binary counter outputs"
	}
	return "unknown"
}

// NewStream builds the canonical synthetic stream for a data type at the
// given word width. Streams are deterministic in (dt, width, seed).
//
// The AR(1) parameters are chosen to land each class where the paper
// places it: music weakly correlated at moderate amplitude, speech
// strongly correlated, video strongly correlated with a positive mean
// (luma-like), and the counter confined to non-negative values so its
// sign bits never switch.
func NewStream(dt DataType, width int, seed int64) Source {
	mustWidth(width)
	fs := float64(int64(1) << uint(width-1)) // full scale of the signed range
	switch dt {
	case TypeRandom:
		return Random(width, seed)
	case TypeMusic:
		return AR1(width, 0, 0.25*fs, 0.55, seed)
	case TypeSpeech:
		return AR1(width, 0, 0.20*fs, 0.97, seed)
	case TypeVideo:
		return AR1(width, 0.30*fs, 0.15*fs, 0.95, seed)
	case TypeCounter:
		return counterMod(width, 0, 1)
	}
	panic(fmt.Sprintf("stimuli: unknown data type %d", int(dt)))
}

// counterMod counts modulo 2^(width-1) so the value stays in the
// non-negative half of the two's-complement range.
func counterMod(width int, start, step uint64) Source {
	if width > 64 {
		panic(fmt.Sprintf("stimuli: counter width %d > 64", width))
	}
	return &counterModSource{width: width, value: start, step: step,
		mod: uint64(1) << uint(width-1)}
}

type counterModSource struct {
	width       int
	value, step uint64
	mod         uint64
}

func (s *counterModSource) Width() int { return s.width }

func (s *counterModSource) Next() logic.Word {
	w := logic.FromUint(s.value%s.mod, s.width)
	s.value += s.step
	return w
}
