package stimuli

import (
	"math"
	"math/rand"

	"hdpower/internal/logic"
)

// Sine returns a quantized sinusoid with additive Gaussian noise — a
// deterministic "tonal music" stimulus complementing the AR(1) classes.
// amp and noiseStd are in LSBs of the signed range; freq is in cycles per
// sample (0 < freq < 0.5 to stay below Nyquist).
func Sine(width int, amp, freq, noiseStd float64, seed int64) Source {
	mustWidth(width)
	if freq <= 0 || freq >= 0.5 {
		panic("stimuli: Sine frequency outside (0, 0.5)")
	}
	return &sineSource{
		width: width, amp: amp, freq: freq, noise: noiseStd,
		rng: rand.New(rand.NewSource(seed)),
	}
}

type sineSource struct {
	width int
	amp   float64
	freq  float64
	noise float64
	phase float64
	rng   *rand.Rand
}

func (s *sineSource) Width() int { return s.width }

func (s *sineSource) Next() logic.Word {
	v := s.amp * math.Sin(2*math.Pi*s.phase)
	if s.noise > 0 {
		v += s.rng.NormFloat64() * s.noise
	}
	s.phase += s.freq
	if s.phase >= 1 {
		s.phase -= 1
	}
	return quantize(v, s.width)
}

// Chirp returns a quantized linear frequency sweep from f0 to f1 over
// period samples, then repeating — a stimulus whose short-term
// correlation drifts, useful for stressing word-level statistics
// assumptions.
func Chirp(width int, amp, f0, f1 float64, period int, seed int64) Source {
	mustWidth(width)
	if period <= 0 {
		panic("stimuli: Chirp period must be positive")
	}
	if f0 <= 0 || f1 <= 0 || f0 >= 0.5 || f1 >= 0.5 {
		panic("stimuli: Chirp frequencies outside (0, 0.5)")
	}
	return &chirpSource{
		width: width, amp: amp, f0: f0, f1: f1, period: period,
		rng: rand.New(rand.NewSource(seed)),
	}
}

type chirpSource struct {
	width  int
	amp    float64
	f0, f1 float64
	period int
	n      int
	phase  float64
	rng    *rand.Rand
}

func (s *chirpSource) Width() int { return s.width }

func (s *chirpSource) Next() logic.Word {
	frac := float64(s.n%s.period) / float64(s.period)
	freq := s.f0 + (s.f1-s.f0)*frac
	v := s.amp * math.Sin(2*math.Pi*s.phase)
	s.phase += freq
	if s.phase >= 1 {
		s.phase -= 1
	}
	s.n++
	return quantize(v, s.width)
}
