package serve

// robust.go is the server's crash-safety and graceful-degradation layer:
// build-spec sidecars and startup recovery (a killed server re-enqueues
// and resumes its interrupted builds), and the estimate fallback chain
// that answers degraded instead of 404 when the requested model is not
// cached.

import (
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"

	"hdpower/internal/atomicio"
	"hdpower/internal/core"
)

// checkpointPath is where a build checkpoints its characterization state.
func (s *Server) checkpointPath(id string) string {
	return filepath.Join(s.cfg.CheckpointDir, id+".ckpt.json")
}

// specPath is the build-spec sidecar recording an accepted build for
// restart recovery.
func (s *Server) specPath(id string) string {
	return filepath.Join(s.cfg.CheckpointDir, id+".spec.json")
}

// writeBuildSpec records an accepted build durably, so a server killed
// before the build settles re-enqueues it on the next start. Failures
// are logged and tolerated: the build itself proceeds regardless.
func (s *Server) writeBuildSpec(ent *buildEntry) {
	if s.cfg.CheckpointDir == "" {
		return
	}
	if err := atomicio.WriteJSON(s.specPath(ent.id), ent.spec); err != nil {
		s.log.Warn("build spec not recorded; restart will not recover this build",
			"id", ent.id, "err", err)
	}
}

// clearBuildSpec removes the sidecar once a build settles (either way):
// only builds lost to a crash are recovered.
func (s *Server) clearBuildSpec(id string) {
	if s.cfg.CheckpointDir == "" {
		return
	}
	_ = os.Remove(s.specPath(id))
}

// recoverBuilds re-enqueues the builds an earlier process accepted but
// never settled — the *.spec.json sidecars left in the checkpoint
// directory. Each recovered build resumes from its checkpoint (if one
// survived) through the normal build path. Corrupted sidecars are
// quarantined and skipped; a full queue drops the recovery (the sidecar
// stays for the next restart).
func (s *Server) recoverBuilds() {
	if s.cfg.CheckpointDir == "" {
		return
	}
	paths, err := filepath.Glob(filepath.Join(s.cfg.CheckpointDir, "*.spec.json"))
	if err != nil {
		return
	}
	for _, path := range paths {
		var spec BuildSpec
		rerr := atomicio.ReadJSON(path, &spec)
		if rerr != nil && !errors.Is(rerr, atomicio.ErrNoChecksum) {
			s.log.Warn("unreadable build spec; skipping recovery", "path", path, "err", rerr)
			continue
		}
		if nerr := spec.normalize(); nerr != nil {
			s.log.Warn("recorded build spec no longer valid; dropping",
				"path", path, "err", nerr)
			_ = os.Remove(path)
			continue
		}
		ent, started := s.cache.begin(spec)
		if !started {
			continue
		}
		s.buildWG.Add(1)
		select {
		case s.queue <- ent:
			s.met.queueDepth.Add(1)
			s.met.buildsRecovered.Inc()
			s.log.Info("recovered interrupted build", "id", ent.id, "key", ent.key)
		default:
			s.buildWG.Done()
			s.cache.abandon(ent)
			s.log.Warn("build queue full; interrupted build left for next restart",
				"id", ent.id)
		}
	}
}

// Degradation rungs reported in estimate responses and the
// hdserve_estimate_degraded_total metric's fallback label.
const (
	fallbackSeed       = "seed"       // cached model, same module/width, different seed
	fallbackLibrary    = "library"    // instance model from the durable library
	fallbackRegression = "regression" // synthesized from the library's width regression
)

// resolveError is a model-resolution failure with the HTTP status it
// should map to: 400 for a bad spec, 404 for a missing model. The stream
// endpoint renders it as a per-line error instead of a status code.
type resolveError struct {
	code int
	msg  string
}

func (e *resolveError) Error() string { return e.msg }

// lookupModel resolves the model answering an estimate for spec: the
// exact cached model when available, otherwise the first rung of the
// degradation chain that can serve the request. The returned fallback
// string is empty for an exact answer. It performs all the metric
// accounting (per call — the stream endpoint calls it per line, so
// degraded batch items count item by item like unary requests).
func (s *Server) lookupModel(spec *BuildSpec) (*core.Model, string, *resolveError) {
	if err := spec.normalize(); err != nil {
		return nil, "", &resolveError{code: http.StatusBadRequest,
			msg: fmt.Sprintf("model spec: %v", err)}
	}
	if model, ok := s.cache.ready(spec.Key()); ok {
		s.met.cacheHits.Inc()
		return model, "", nil
	}
	// Degradation chain: trade fidelity for availability, most faithful
	// rung first. Characterization is deterministic per seed, so a
	// different-seed sibling differs only by sampling noise; a library
	// model survived a previous process; a regression synthesis is the
	// paper's parameterizable fallback for uncharacterized widths.
	if model, ok := s.cache.readySibling(spec.Module, spec.Width); ok {
		s.met.estimateDegraded(fallbackSeed).Inc()
		return model, fallbackSeed, nil
	}
	if s.lib != nil {
		if model, err := s.lib.GetModel(spec.Module, spec.Width, false); err == nil {
			s.met.estimateDegraded(fallbackLibrary).Inc()
			return model, fallbackLibrary, nil
		} else if atomicio.IsCorrupt(err) {
			s.log.Warn("library model corrupt; quarantined", "key", spec.Key(), "err", err)
		}
		if pm, err := s.lib.GetParam(spec.Module); err == nil {
			s.met.estimateDegraded(fallbackRegression).Inc()
			return pm.Synthesize(spec.Width), fallbackRegression, nil
		}
	}
	return nil, "", &resolveError{code: http.StatusNotFound,
		msg: fmt.Sprintf("model %s not built and no fallback available; POST /v1/models/build first", spec.Key())}
}

// resolveModel is lookupModel for the unary handlers: on failure the HTTP
// error has already been written.
func (s *Server) resolveModel(w http.ResponseWriter, spec *BuildSpec) (*core.Model, string, bool) {
	model, fallback, rerr := s.lookupModel(spec)
	if rerr != nil {
		writeError(w, rerr.code, "%s", rerr.msg)
		return nil, "", false
	}
	return model, fallback, true
}
