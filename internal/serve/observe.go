package serve

// observe.go is the server's observability surface beyond /metrics: span
// hooks that turn a characterization run into a trace, the live build
// progress and flight-recorder manifest endpoints, manifest persistence,
// and the admin handler (pprof + trace dump) meant for an operator-only
// listener.

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/pprof"
	"path/filepath"
	"strconv"
	"time"

	"hdpower/internal/atomicio"
	"hdpower/internal/core"
	"hdpower/internal/obs"
)

// spanHooks returns hooks that mirror one characterization run as child
// spans of the span in ctx: one span per phase, one per merged shard
// (spanning the time since the previous merge), and an instant span on an
// early stop. Hooks are delivered on the run's single merging goroutine,
// so the closure state needs no locking.
func (s *Server) spanHooks(ctx context.Context) *core.Hooks {
	var phaseCtx context.Context
	var phaseSpan *obs.Span
	var lastMerge time.Time
	return &core.Hooks{
		PhaseStart: func(phase string, shards, patterns int) {
			phaseCtx, phaseSpan = s.tracer.Start(ctx, "characterize."+phase)
			phaseSpan.SetAttr("shards", strconv.Itoa(shards))
			phaseSpan.SetAttr("patterns", strconv.Itoa(patterns))
			lastMerge = time.Now()
		},
		PhaseEnd: func(string) { phaseSpan.End() },
		ShardMerged: func() {
			now := time.Now()
			_, sp := s.tracer.StartAt(phaseCtx, "shard.merge", lastMerge)
			lastMerge = now
			sp.End()
		},
		EarlyStop: func(used int) {
			_, sp := s.tracer.Start(phaseCtx, "early_stop")
			sp.SetAttr("patterns", strconv.Itoa(used))
			sp.End()
		},
	}
}

// handleModelSub dispatches the two-segment model sub-resources that share
// one ServeMux pattern: /v1/models/build/{id} and /v1/models/{id}/manifest.
func (s *Server) handleModelSub(w http.ResponseWriter, r *http.Request) {
	a, b := r.PathValue("a"), r.PathValue("b")
	switch {
	case a == "build":
		s.handleBuildProgress(w, r, b)
	case b == "manifest":
		s.handleModelManifest(w, r, a)
	default:
		writeError(w, http.StatusNotFound, "unknown model resource %s/%s", a, b)
	}
}

// buildProgressResponse is the GET /v1/models/build/{id} payload. The
// counters are monotonic across a build's lifetime, so pollers can watch
// shards_merged approach shards_total.
type buildProgressResponse struct {
	ID                string `json:"id"`
	Key               string `json:"key"`
	Status            string `json:"status"`
	ShardsTotal       int64  `json:"shards_total"`
	ShardsMerged      int64  `json:"shards_merged"`
	PatternsSimulated int64  `json:"patterns_simulated"`
	Error             string `json:"error,omitempty"`
	// Retry diagnostics: how many attempts have started, and — when the
	// last attempt failed transiently — what it said and how long the
	// retry loop backed off before the next one. A build stuck in
	// building with attempts climbing is retrying; one with attempts == 1
	// is still on its first try.
	Attempts         int64  `json:"attempts,omitempty"`
	LastAttemptError string `json:"last_attempt_error,omitempty"`
	RetryBackoffMs   int64  `json:"retry_backoff_ms,omitempty"`
}

func (s *Server) handleBuildProgress(w http.ResponseWriter, r *http.Request, id string) {
	ent, ok := s.cache.lookupID(id)
	if !ok {
		writeError(w, http.StatusNotFound, "no build %q", id)
		return
	}
	status, err := s.entryResult(ent)
	resp := buildProgressResponse{
		ID:                ent.id,
		Key:               ent.key,
		Status:            status,
		ShardsTotal:       ent.shardsTotal.Load(),
		ShardsMerged:      ent.shardsMerged.Load(),
		PatternsSimulated: ent.patterns.Load(),
		Attempts:          ent.attempts.Load(),
	}
	if rs := ent.retry.Load(); rs != nil {
		resp.LastAttemptError = rs.lastErr
		resp.RetryBackoffMs = rs.backoff.Milliseconds()
	}
	if err != nil {
		resp.Error = err.Error()
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleModelManifest(w http.ResponseWriter, r *http.Request, id string) {
	ent, ok := s.cache.lookupID(id)
	if !ok {
		writeError(w, http.StatusNotFound, "no build %q", id)
		return
	}
	s.cache.mu.Lock()
	man := ent.manifest
	s.cache.mu.Unlock()
	if man == nil {
		writeError(w, http.StatusNotFound, "build %q has no manifest yet", id)
		return
	}
	writeJSON(w, http.StatusOK, man)
}

// AdminHandler serves the operator endpoints — Go pprof profiles, the
// recent-span trace dump, and a second copy of /metrics — for an opt-in
// admin listener (hdserve -admin-addr). They are deliberately not part of
// Handler: profiling endpoints on a public port are a denial-of-service
// invitation.
func (s *Server) AdminHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("GET /debug/traces", s.handleTraces)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

// handleTraces dumps the recent-span ring as JSON.
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if err := s.tracer.WriteJSON(w); err != nil {
		s.log.Error("trace dump write", "err", err)
	}
}

// persistManifest writes a build's flight-recorder manifest to the
// configured ManifestDir. Persistence failures are logged, never fatal:
// the manifest stays queryable over HTTP regardless.
func (s *Server) persistManifest(id string, man *core.RunManifest) {
	if s.cfg.ManifestDir == "" || man == nil {
		return
	}
	raw, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		s.log.Error("manifest encode", "id", id, "err", err)
		return
	}
	path := filepath.Join(s.cfg.ManifestDir, id+".manifest.json")
	if err := atomicio.WriteFile(path, append(raw, '\n'), 0o644); err != nil {
		s.log.Error("manifest write", "id", id, "err", err)
		return
	}
	s.log.Info("manifest written", "id", id, "path", path)
}

// dumpTraces persists the span ring on Close when a ManifestDir is
// configured, giving crashed-in-CI runs a post-mortem artifact. The dump
// is buffered and written atomically so an interrupted shutdown cannot
// leave a torn traces.json shadowing an earlier good one.
func (s *Server) dumpTraces() {
	if s.cfg.ManifestDir == "" {
		return
	}
	var buf bytes.Buffer
	if err := s.tracer.WriteJSON(&buf); err != nil {
		s.log.Error("trace dump encode", "err", err)
		return
	}
	path := filepath.Join(s.cfg.ManifestDir, "traces.json")
	if err := atomicio.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		s.log.Error("trace dump write", "err", err)
	}
}
