// Package serve is the HTTP front-end of the Hd power macro-model: a
// JSON API that separates slow characterization (model builds through the
// parallel engine, deduplicated and cached) from fast evaluation
// (per-cycle table lookups and the closed-form word-statistics estimator),
// the split the paper's Sections 4–6 make possible. The server is built
// for unattended operation: per-request timeouts, a bounded build queue
// with 429 backpressure, request body caps, panic recovery, Prometheus
// metrics via internal/obs, and a graceful drain that lets in-flight
// builds finish.
//
// Endpoints:
//
//	POST /v1/estimate                 per-cycle estimates from Hd classes or vectors
//	POST /v1/estimate/stream          NDJSON batch: one estimate request per line
//	POST /v1/estimate/stats           closed-form average from (μ, σ, ρ, width)
//	GET  /v1/models                   cached / in-flight model inventory
//	POST /v1/models/build             async characterize+fit (singleflight, LRU)
//	GET  /v1/models/build/{id}        live build progress (shards, patterns)
//	GET  /v1/models/{id}/manifest     flight-recorder manifest of a settled build
//	GET  /v1/telemetry                windowed latency/QPS/burn-rate + Hd-mix snapshot
//	GET  /v1/telemetry/hotset         traffic-weighted characterization-budget advice
//	GET  /healthz                     liveness
//	GET  /readyz                      readiness (503 while draining)
//	GET  /metrics                     Prometheus text exposition
//
// Every request runs under a root span (trace ID echoed in X-Trace-ID and
// the access log), model builds produce child spans per phase and merged
// shard, and AdminHandler serves /debug/pprof and /debug/traces on an
// operator-only listener.
package serve

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"math/rand"
	"net/http"
	"os"
	"runtime"
	"runtime/debug"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"hdpower/internal/core"
	"hdpower/internal/faultpoint"
	"hdpower/internal/fleet"
	"hdpower/internal/hddist"
	"hdpower/internal/modellib"
	"hdpower/internal/obs"
	"hdpower/internal/telemetry"
)

// Config tunes the server. Zero values select the documented defaults.
type Config struct {
	// MaxBodyBytes caps request bodies (default 1 MiB).
	MaxBodyBytes int64
	// RequestTimeout bounds each request's context (default 15s).
	RequestTimeout time.Duration
	// BuildTimeout bounds one model build (default 10m).
	BuildTimeout time.Duration
	// BuildWorkers sizes the build worker pool (default 1: builds are
	// CPU-bound and internally parallel via CharWorkers).
	BuildWorkers int
	// BuildQueue bounds the pending-build queue; a full queue answers
	// 429 (default 16).
	BuildQueue int
	// ModelCache is the LRU capacity in fitted models (default 64).
	ModelCache int
	// CharWorkers is passed to core.Characterize (0 = NumCPU).
	CharWorkers int
	// Backend selects the simulation engine behind characterization
	// (core.BackendBitParallel, core.BackendEvent). The zero value
	// BackendAuto resolves to the event-driven golden reference, which
	// keeps embedded servers bit-identical to earlier releases; cmd/hdserve
	// defaults the flag to bitparallel. Changing the backend changes the
	// build's checkpoint identity, so restarted servers discard checkpoints
	// from the other engine and rebuild instead of mixing charges.
	Backend core.BackendKind
	// BuildFunc overrides the characterization backend; tests inject
	// slow or failing builds here. nil selects the real engine.
	BuildFunc func(ctx context.Context, spec BuildSpec, hooks *core.Hooks) (*core.Model, error)
	// Logger receives access-log and build-lifecycle records; nil discards
	// them.
	Logger *slog.Logger
	// TraceCapacity bounds the recent-span ring (default 512).
	TraceCapacity int
	// ManifestDir, when set, persists one flight-recorder manifest per
	// build as <dir>/<build id>.manifest.json, and Close dumps the span
	// ring to <dir>/traces.json.
	ManifestDir string
	// CheckpointDir, when set, makes builds crash-safe: each build
	// checkpoints its merged characterization state to
	// <dir>/<build id>.ckpt.json and records its spec as
	// <dir>/<build id>.spec.json. A restarted server re-enqueues the
	// recorded builds and resumes them from their checkpoints, producing
	// bit-identical models to an uninterrupted build.
	CheckpointDir string
	// CheckpointEvery is the checkpoint interval in merged shards
	// (default 16).
	CheckpointEvery int
	// BuildRetries is how many times a transiently failed build attempt is
	// retried with capped exponential backoff before the build settles as
	// failed (default 2; negative disables retries). Context cancellation,
	// timeouts and checkpoint mismatches are never retried.
	BuildRetries int
	// BuildRetryBackoff is the base backoff before the first retry
	// (default 250ms), doubling per attempt with full jitter, capped at 5s.
	BuildRetryBackoff time.Duration
	// LibraryDir, when set, opens a durable model library (modellib): every
	// successful build is persisted there, and /v1/estimate degrades to
	// library models (or width-regression synthesis) when the requested
	// model is not cached — answers marked "degraded" instead of 404.
	LibraryDir string

	// TelemetryWindow is the width of one telemetry aggregation window
	// (default 10s); TelemetryWindows is how many the ring keeps
	// (default 30). Together they bound how far back /v1/telemetry looks.
	TelemetryWindow  time.Duration
	TelemetryWindows int
	// SLOLatencyUnary / SLOLatencyStream are the per-request latency
	// budgets of the two estimate planes (defaults 25ms and 80ms); a
	// request over budget or answered ≥500 counts against the SLO.
	SLOLatencyUnary  time.Duration
	SLOLatencyStream time.Duration
	// SLOObjective is the success-rate objective (default 0.999);
	// SLOBurnBreach is the burn-rate multiple on both the fast and slow
	// spans that declares a breach (default 2).
	SLOObjective  float64
	SLOBurnBreach float64
	// CaptureDir, when set, enables automatic pprof capture on SLO breach:
	// each breach writes a telemetry snapshot plus goroutine and heap
	// profiles there, rate-limited by CaptureMinInterval (default 1m) and
	// bounded at CaptureMax captures per process (default 8).
	CaptureDir         string
	CaptureMinInterval time.Duration
	CaptureMax         int
	// ProfiledModels caps the traffic profiler's model set (default 128);
	// traffic to models past the cap is counted only in aggregate.
	ProfiledModels int
	// RefineInterval, when positive, starts the refinement loop: every
	// interval the server converts the observed Hd mix into budget
	// recommendations and re-characterizes hot under-budgeted models at a
	// doubled pattern budget. RefineThreshold is the multiple of the
	// uniform per-class budget a class's recommendation must reach to be
	// hot (default 2); RefineMinEstimates is the traffic floor below which
	// a model is never refined (default 1024).
	RefineInterval     time.Duration
	RefineThreshold    float64
	RefineMinEstimates uint64

	// Fleet, when set, runs this server as a distributed-characterization
	// coordinator: the fleet endpoints (/fleet/v1/*) are mounted, the
	// coordinator's hdfleet_* metrics join the server registry, and model
	// builds dispatch to the worker fleet whenever at least one worker is
	// alive — degrading to the local engine otherwise. Build results are
	// bit-identical either way.
	Fleet *fleet.Coordinator
}

func (c *Config) setDefaults() {
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 15 * time.Second
	}
	if c.BuildTimeout <= 0 {
		c.BuildTimeout = 10 * time.Minute
	}
	if c.BuildWorkers <= 0 {
		c.BuildWorkers = 1
	}
	if c.BuildQueue <= 0 {
		c.BuildQueue = 16
	}
	if c.ModelCache <= 0 {
		c.ModelCache = 64
	}
	if c.BuildRetries == 0 {
		c.BuildRetries = 2
	}
	if c.BuildRetries < 0 {
		c.BuildRetries = 0
	}
	if c.BuildRetryBackoff <= 0 {
		c.BuildRetryBackoff = 250 * time.Millisecond
	}
	if c.CheckpointEvery <= 0 {
		c.CheckpointEvery = 16
	}
	if c.TelemetryWindow <= 0 {
		c.TelemetryWindow = 10 * time.Second
	}
	if c.TelemetryWindows <= 0 {
		c.TelemetryWindows = 30
	}
	if c.SLOLatencyUnary <= 0 {
		c.SLOLatencyUnary = 25 * time.Millisecond
	}
	if c.SLOLatencyStream <= 0 {
		c.SLOLatencyStream = 80 * time.Millisecond
	}
	if c.SLOObjective <= 0 || c.SLOObjective >= 1 {
		c.SLOObjective = 0.999
	}
	if c.SLOBurnBreach <= 0 {
		c.SLOBurnBreach = 2
	}
	if c.CaptureMinInterval <= 0 {
		c.CaptureMinInterval = time.Minute
	}
	if c.CaptureMax <= 0 {
		c.CaptureMax = 8
	}
	if c.ProfiledModels <= 0 {
		c.ProfiledModels = 128
	}
	if c.RefineThreshold <= 0 {
		c.RefineThreshold = 2
	}
	if c.RefineMinEstimates == 0 {
		c.RefineMinEstimates = 1024
	}
}

// metrics bundles every instrument the server exports.
type metrics struct {
	reg *obs.Registry

	inflight      *obs.Gauge
	panics        *obs.Counter
	buildsRun     *obs.Counter
	buildsFailed  *obs.Counter
	buildsDeduped *obs.Counter
	cacheHits     *obs.Counter
	cacheEvicted  *obs.Counter
	queueDepth    *obs.Gauge
	queueRejected *obs.Counter
	buildSeconds  *obs.Histogram
	estCycles     *obs.Counter
	lutSwaps      *obs.Gauge

	// The served-path counters are resolved once here: the labeled-counter
	// registry lookup locks and allocates, which the per-estimate hot path
	// must not.
	servedLUT    *obs.Counter
	servedLegacy *obs.Counter

	charPatterns   *obs.Counter
	charShards     *obs.Counter
	charEarlyStops *obs.Counter

	buildRetries    *obs.Counter
	buildsRecovered *obs.Counter
	buildsResumed   *obs.Counter
	ckptSaves       *obs.Counter
	ckptFailures    *obs.Counter

	refineBuilds       *obs.Counter
	sloCaptures        *obs.Counter
	sloCaptureFailures *obs.Counter
}

func newMetrics() *metrics {
	reg := obs.NewRegistry()
	m := &metrics{
		reg:           reg,
		inflight:      reg.Gauge("hdserve_inflight_requests", "HTTP requests currently being served"),
		panics:        reg.Counter("hdserve_panics_total", "handler panics recovered"),
		buildsRun:     reg.Counter("hdserve_model_builds_total", "model builds executed (post-singleflight)"),
		buildsFailed:  reg.Counter("hdserve_model_build_failures_total", "model builds that returned an error"),
		buildsDeduped: reg.Counter("hdserve_model_build_dedup_total", "build requests coalesced onto an in-flight build"),
		cacheHits:     reg.Counter("hdserve_model_cache_hits_total", "build or estimate requests served from the model cache"),
		cacheEvicted:  reg.Counter("hdserve_model_cache_evictions_total", "fitted models evicted by the LRU"),
		queueDepth:    reg.Gauge("hdserve_build_queue_depth", "builds waiting for a worker"),
		queueRejected: reg.Counter("hdserve_build_queue_rejected_total", "build requests rejected with 429 (queue full)"),
		buildSeconds:  reg.Histogram("hdserve_model_build_seconds", "model build latency", nil),
		estCycles:     reg.Counter("hdserve_estimate_cycles_total", "cycles estimated across all estimate requests"),
		lutSwaps:      reg.Gauge("hdserve_estimate_lut_swaps_total", "RCU publishes of the flattened-model LUT snapshot"),

		charPatterns:   reg.Counter("hdserve_char_patterns_total", "characterization pairs simulated"),
		charShards:     reg.Counter("hdserve_char_shards_merged_total", "characterization shards merged"),
		charEarlyStops: reg.Counter("hdserve_char_early_stops_total", "characterization runs ended early by convergence"),

		// The process allocation counter gives load generators (cmd/hdload)
		// a wire-visible allocs/op: scrape /metrics before and after a load
		// phase and divide the delta by the estimates served.
		buildRetries:    reg.Counter("hdserve_model_build_retries_total", "transiently failed build attempts retried"),
		buildsRecovered: reg.Counter("hdserve_builds_recovered_total", "interrupted builds re-enqueued at startup"),
		buildsResumed:   reg.Counter("hdserve_builds_resumed_total", "characterization runs resumed from a checkpoint"),
		ckptSaves:       reg.Counter("hdserve_checkpoint_saves_total", "characterization checkpoints written"),
		ckptFailures:    reg.Counter("hdserve_checkpoint_failures_total", "characterization checkpoint writes that failed"),

		refineBuilds:       reg.Counter("hdserve_refine_builds_total", "re-characterization builds enqueued by the refinement loop"),
		sloCaptures:        reg.Counter("hdserve_slo_captures_total", "SLO-breach diagnostic captures written"),
		sloCaptureFailures: reg.Counter("hdserve_slo_capture_failures_total", "SLO-breach diagnostic captures that failed to write"),
	}
	m.servedLUT = m.estimateServed(servedLUT)
	m.servedLegacy = m.estimateServed(servedLegacy)
	m.reg.CounterFunc("hdserve_go_mallocs_total",
		"cumulative heap objects allocated by the process (runtime.MemStats.Mallocs)",
		func() uint64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return ms.Mallocs
		})
	return m
}

// buildsByBackend counts model builds by the simulation backend that
// priced them, so operators can tell bitparallel and event (golden
// reference) build volume apart when comparing latency or drift.
func (m *metrics) buildsByBackend(backend string) *obs.Counter {
	return m.reg.CounterL("hdserve_model_builds_by_backend_total",
		"model builds executed, labeled by simulation backend",
		[]obs.Label{{Key: "backend", Value: backend}})
}

// estimateDegraded counts estimate answers served from a fallback model,
// labeled by which rung of the degradation chain answered. Counted per
// estimate — the stream endpoint increments it once per degraded line,
// not once per request, so unary and batch traffic read the same way.
func (m *metrics) estimateDegraded(fallback string) *obs.Counter {
	return m.reg.CounterL("hdserve_estimate_degraded_total",
		"estimates answered from a fallback model instead of the requested one",
		[]obs.Label{{Key: "fallback", Value: fallback}})
}

// estimateServed counts answered estimates by the code path that produced
// them: "lut" for the lock-free flattened-table fast path, "legacy" for
// the encoding/json + struct-walk fallback. Per item on the stream
// endpoint, like every other hdserve_estimate_* counter.
func (m *metrics) estimateServed(path string) *obs.Counter {
	return m.reg.CounterL("hdserve_estimate_served_total",
		"estimates answered, labeled by serving path (lut = lock-free fast path)",
		[]obs.Label{{Key: "path", Value: path}})
}

// sloBreaches counts SLO breach observations by plane. Incremented by the
// watcher once per breached check, never on the request path.
func (m *metrics) sloBreaches(plane string) *obs.Counter {
	return m.reg.CounterL("hdserve_slo_breaches_total",
		"SLO breach observations by the telemetry watcher, labeled by plane",
		[]obs.Label{{Key: "plane", Value: plane}})
}

func (m *metrics) request(path string, code int) *obs.Counter {
	return m.reg.CounterL("hdserve_requests_total", "HTTP requests by route and status code",
		[]obs.Label{{Key: "path", Value: path}, {Key: "code", Value: strconv.Itoa(code)}})
}

func (m *metrics) latency(path string) *obs.Histogram {
	return m.reg.HistogramL("hdserve_request_seconds", "HTTP request latency by route",
		obs.L("path", path), nil)
}

// Server is one hdserve instance.
type Server struct {
	cfg      Config
	mux      *http.ServeMux
	met      *metrics
	cache    *modelCache
	hooks    *core.Hooks
	tracer   *obs.Tracer
	log      *slog.Logger
	lib      *modellib.Library // nil unless LibraryDir is configured and opens
	distMemo *hddist.Memo      // closed-form Hd-distribution cache (stats endpoint)

	tel         *telemetry.Telemetry
	planeUnary  *telemetry.Plane
	planeStream *telemetry.Plane
	// SLO-capture state, touched only by the watcher goroutine (and tests
	// calling checkSLO directly), so it needs no lock.
	lastCapture  time.Time
	captureCount int

	queue     chan *buildEntry
	buildWG   sync.WaitGroup // queued + running builds
	workerWG  sync.WaitGroup // worker goroutines
	quit      chan struct{}
	closeOnce sync.Once
	draining  atomic.Bool

	buildFn func(ctx context.Context, spec BuildSpec, hooks *core.Hooks) (*core.Model, error)
}

// New constructs a server and starts its build worker pool. Callers must
// Close it (after an optional Drain) to stop the workers.
func New(cfg Config) *Server {
	cfg.setDefaults()
	met := newMetrics()
	s := &Server{
		cfg:      cfg,
		mux:      http.NewServeMux(),
		met:      met,
		cache:    newModelCache(cfg.ModelCache, met),
		queue:    make(chan *buildEntry, cfg.BuildQueue),
		quit:     make(chan struct{}),
		tracer:   obs.NewTracer(cfg.TraceCapacity),
		log:      cfg.Logger,
		distMemo: hddist.NewMemo(0),
	}
	if s.log == nil {
		s.log = obs.NopLogger()
	}
	s.tracer.RegisterMetrics(met.reg, "hdserve")
	if cfg.ManifestDir != "" {
		if err := os.MkdirAll(cfg.ManifestDir, 0o755); err != nil {
			s.log.Error("manifest dir unavailable; manifests disabled",
				"dir", cfg.ManifestDir, "err", err)
			s.cfg.ManifestDir = ""
		}
	}
	if cfg.CheckpointDir != "" {
		if err := os.MkdirAll(cfg.CheckpointDir, 0o755); err != nil {
			s.log.Error("checkpoint dir unavailable; crash-safe builds disabled",
				"dir", cfg.CheckpointDir, "err", err)
			s.cfg.CheckpointDir = ""
		}
	}
	if cfg.LibraryDir != "" {
		lib, err := modellib.Open(cfg.LibraryDir)
		if err != nil {
			s.log.Error("model library unavailable; degraded estimates disabled",
				"dir", cfg.LibraryDir, "err", err)
		} else {
			s.lib = lib
		}
	}
	s.hooks = &core.Hooks{
		PatternsSimulated: func(n int) { met.charPatterns.Add(int64(n)) },
		ShardMerged:       func() { met.charShards.Inc() },
		EarlyStop:         func(int) { met.charEarlyStops.Inc() },
		Resumed: func(phase string, shards, _, _ int) {
			met.buildsResumed.Inc()
			s.log.Info("characterization resumed from checkpoint",
				"phase", phase, "shards_restored", shards)
		},
		CheckpointSaved: func(err error) {
			if err != nil {
				met.ckptFailures.Inc()
				s.log.Warn("checkpoint write failed", "err", err)
				return
			}
			met.ckptSaves.Inc()
		},
	}
	s.buildFn = cfg.BuildFunc
	if s.buildFn == nil {
		s.buildFn = s.characterize
	}

	// The telemetry plane must exist before route registration: wrap
	// resolves each route's SLO plane once, at registration time.
	tel, err := telemetry.New(telemetry.Config{
		Now:       time.Now,
		Window:    s.cfg.TelemetryWindow,
		Windows:   s.cfg.TelemetryWindows,
		MaxModels: s.cfg.ProfiledModels,
	})
	if err != nil {
		panic("serve: telemetry init: " + err.Error()) // unreachable: Now is set
	}
	s.tel = tel
	s.planeUnary = tel.Plane("unary", telemetry.SLO{
		LatencyBudget: s.cfg.SLOLatencyUnary.Seconds(),
		Objective:     s.cfg.SLOObjective,
		BreachBurn:    s.cfg.SLOBurnBreach,
	})
	s.planeStream = tel.Plane("stream", telemetry.SLO{
		LatencyBudget: s.cfg.SLOLatencyStream.Seconds(),
		Objective:     s.cfg.SLOObjective,
		BreachBurn:    s.cfg.SLOBurnBreach,
	})
	if s.cfg.CaptureDir != "" {
		if err := os.MkdirAll(s.cfg.CaptureDir, 0o755); err != nil {
			s.log.Error("capture dir unavailable; SLO captures disabled",
				"dir", s.cfg.CaptureDir, "err", err)
			s.cfg.CaptureDir = ""
		}
	}

	s.handle("GET /healthz", s.handleHealthz)
	s.handle("GET /readyz", s.handleReadyz)
	s.handle("GET /metrics", s.handleMetrics)
	s.handle("POST /v1/estimate", s.handleEstimate)
	s.handle("POST /v1/estimate/stream", s.handleEstimateStream)
	s.handle("POST /v1/estimate/stats", s.handleEstimateStats)
	s.handle("GET /v1/models", s.handleModels)
	s.handle("POST /v1/models/build", s.handleModelBuild)
	// One pattern covers both two-segment model sub-resources —
	// /v1/models/build/{id} (progress) and /v1/models/{id}/manifest —
	// because as separate ServeMux patterns they would overlap on
	// /v1/models/build/manifest without either being more specific.
	s.handle("GET /v1/models/{a}/{b}", s.handleModelSub)
	s.handle("GET /v1/telemetry", s.handleTelemetry)
	s.handle("GET /v1/telemetry/hotset", s.handleTelemetryHotset)
	if s.cfg.Fleet != nil {
		s.cfg.Fleet.RegisterObs(met.reg, s.tracer)
		s.handle("POST "+fleet.PathLease, s.cfg.Fleet.HandleLease)
		s.handle("POST "+fleet.PathHeartbeat, s.cfg.Fleet.HandleHeartbeat)
		s.handle("POST "+fleet.PathUpload, s.cfg.Fleet.HandleUpload)
	}

	for w := 0; w < cfg.BuildWorkers; w++ {
		s.workerWG.Add(1)
		go s.buildWorker()
	}
	s.workerWG.Add(1)
	go s.sloWatcher()
	if s.cfg.RefineInterval > 0 {
		s.workerWG.Add(1)
		go s.refineLoop()
	}
	s.recoverBuilds()
	return s
}

// Handler returns the fully wrapped HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Registry exposes the metrics registry (tests and embedders).
func (s *Server) Registry() *obs.Registry { return s.met.reg }

// Tracer exposes the span ring (admin endpoints, tests, embedders).
func (s *Server) Tracer() *obs.Tracer { return s.tracer }

// handle registers a route behind the standard middleware stack. The
// route pattern doubles as the metric label, keeping cardinality fixed.
func (s *Server) handle(pattern string, h http.HandlerFunc) {
	s.mux.Handle(pattern, s.wrap(pattern, h))
}

// statusWriter records the response code and body size for metrics, the
// access log, and panic recovery.
type statusWriter struct {
	http.ResponseWriter
	code  int
	bytes int64
	wrote bool
}

func (w *statusWriter) WriteHeader(code int) {
	if !w.wrote {
		w.code = code
		w.wrote = true
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	w.wrote = true
	n, err := w.ResponseWriter.Write(b)
	w.bytes += int64(n)
	return n, err
}

// Flush forwards to the underlying writer so the streaming batch endpoint
// can push NDJSON lines as they are produced.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// wrap applies panic recovery, per-request timeout, the body size cap,
// a root span, request-ID propagation, request metrics and the access log
// to a handler.
func (s *Server) wrap(pattern string, h http.HandlerFunc) http.Handler {
	plane := s.planeFor(pattern) // resolved once, not per request
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		s.met.inflight.Add(1)
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}

		rid := r.Header.Get("X-Request-ID")
		if rid == "" {
			rid = obs.NewRequestID()
		}
		ctx := obs.ContextWithRequestID(r.Context(), rid)
		ctx, span := s.tracer.Start(ctx, pattern)
		span.SetAttr("method", r.Method)
		span.SetAttr("path", r.URL.Path)
		sw.Header().Set("X-Request-ID", rid)
		if id := span.TraceID(); id != "" {
			sw.Header().Set("X-Trace-ID", id)
		}

		defer func() {
			if p := recover(); p != nil {
				s.met.panics.Inc()
				fmt.Fprintf(os.Stderr, "hdserve: panic in %s: %v\n%s", pattern, p, debug.Stack())
				if !sw.wrote {
					writeError(sw, http.StatusInternalServerError, "internal error")
				} else {
					sw.code = http.StatusInternalServerError
				}
			}
			s.met.inflight.Add(-1)
			s.met.request(pattern, sw.code).Inc()
			s.met.latency(pattern).Observe(time.Since(start).Seconds())
			if plane != nil {
				plane.Observe(time.Now(), time.Since(start).Seconds(), sw.code >= 500)
			}
			span.SetAttr("status", strconv.Itoa(sw.code))
			span.End()
			s.accessLog(ctx, r, sw, time.Since(start))
		}()
		if r.Body != nil && !uncappedBody(pattern) {
			r.Body = http.MaxBytesReader(sw, r.Body, s.cfg.MaxBodyBytes)
		}
		ctx, cancel := context.WithTimeout(ctx, s.cfg.RequestTimeout)
		defer cancel()
		h(sw, r.WithContext(ctx))
	})
}

// uncappedBody exempts a route from the MaxBodyBytes cap. Fleet uploads
// carry whole shard-range accumulator sets — legitimately megabytes for
// wide enhanced builds — and enforce their own (much larger) bound plus a
// checksum trailer inside the handler.
func uncappedBody(pattern string) bool {
	return pattern == "POST "+fleet.PathUpload
}

// planeFor maps a route pattern to its SLO plane. Only the two estimate
// planes carry SLOs; probes, scrapes and the build API return nil.
func (s *Server) planeFor(pattern string) *telemetry.Plane {
	switch pattern {
	case "POST /v1/estimate", "POST /v1/estimate/stats":
		return s.planeUnary
	case "POST /v1/estimate/stream":
		return s.planeStream
	}
	return nil
}

// accessLog emits one structured record per request. Probe and scrape
// endpoints log at Debug so steady-state operation stays quiet at Info.
func (s *Server) accessLog(ctx context.Context, r *http.Request, sw *statusWriter, d time.Duration) {
	level := slog.LevelInfo
	switch r.URL.Path {
	case "/healthz", "/readyz", "/metrics":
		level = slog.LevelDebug
	}
	if !s.log.Enabled(ctx, level) {
		return
	}
	attrs := append([]slog.Attr{
		slog.String("method", r.Method),
		slog.String("path", r.URL.Path),
		slog.Int("status", sw.code),
		slog.Int64("bytes", sw.bytes),
		slog.Duration("duration", d),
	}, obs.TraceAttrs(ctx)...)
	s.log.LogAttrs(ctx, level, "request", attrs...)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ready")
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.met.reg.WritePrometheus(w); err != nil {
		// Headers are gone; nothing to do but record it.
		fmt.Fprintf(os.Stderr, "hdserve: metrics write: %v\n", err)
	}
}

// Drain flips readiness, refuses new builds, and waits until every queued
// and running build has completed (or ctx expires). It is the first half
// of graceful shutdown; pair it with Close.
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	done := make(chan struct{})
	go func() {
		s.buildWG.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("serve: drain: %w", ctx.Err())
	}
}

// errServerClosed fails builds still queued when the pool stops.
var errServerClosed = errors.New("serve: server closed")

// Close stops the worker pool and fails any builds still in the queue so
// their waiters unblock. Call Drain first for a graceful stop. With a
// ManifestDir configured, Close also flight-records the span ring to
// traces.json so post-mortems survive the process.
func (s *Server) Close() {
	s.closeOnce.Do(func() { close(s.quit) })
	s.workerWG.Wait()
	for {
		select {
		case ent := <-s.queue:
			s.met.queueDepth.Add(-1)
			s.cache.complete(ent, nil, errServerClosed, nil)
			s.buildWG.Done()
		default:
			s.dumpTraces()
			return
		}
	}
}

// buildWorker consumes the build queue until Close.
func (s *Server) buildWorker() {
	defer s.workerWG.Done()
	for {
		select {
		case <-s.quit:
			return
		case ent := <-s.queue:
			s.met.queueDepth.Add(-1)
			s.runBuild(ent)
			s.buildWG.Done()
		}
	}
}

// runBuild executes one deduplicated model build under a root span, with
// the flight recorder, span hooks and the entry's progress counters joined
// onto the server's metric hooks.
func (s *Server) runBuild(ent *buildEntry) {
	s.met.buildsRun.Inc()
	s.met.buildsByBackend(s.cfg.Backend.Name()).Inc()
	start := time.Now()
	ctx, cancel := context.WithTimeout(context.Background(), s.cfg.BuildTimeout)
	defer cancel()
	ctx, span := s.tracer.Start(ctx, "model.build")
	span.SetAttr("key", ent.key)
	span.SetAttr("module", ent.spec.Module)
	span.SetAttr("width", strconv.Itoa(ent.spec.Width))
	span.SetAttr("backend", s.cfg.Backend.Name())

	rec := core.NewRunRecorder(
		fmt.Sprintf("%s-w%d", ent.spec.Module, ent.spec.Width),
		core.CharacterizeOptions{
			Patterns:  ent.spec.Patterns,
			Seed:      ent.spec.Seed,
			Enhanced:  ent.spec.Enhanced,
			ZClusters: ent.spec.ZClusters,
			Workers:   s.cfg.CharWorkers,
			Backend:   s.cfg.Backend,
		})
	hooks := core.JoinHooks(s.hooks, rec.Hooks(), s.spanHooks(ctx), ent.progressHooks())

	s.log.Info("build started", "id", ent.id, "key", ent.key,
		"trace_id", span.TraceID())
	model, err := s.buildWithRetries(ctx, ent, hooks)
	man := rec.Finish(model, err)
	man.Width = ent.spec.Width
	dur := time.Since(start)
	s.met.buildSeconds.Observe(dur.Seconds())
	if err != nil {
		s.met.buildsFailed.Inc()
		model = nil
		span.SetAttr("error", err.Error())
		s.log.Warn("build failed", "id", ent.id, "key", ent.key,
			"duration", dur, "err", err)
	} else {
		s.log.Info("build finished", "id", ent.id, "key", ent.key,
			"duration", dur, "patterns", man.PatternsBasic+man.PatternsBiased)
	}
	span.End()
	// Durable side effects land before complete() unblocks waiters: a
	// client that saw the build settle can rely on the library entry, the
	// manifest file, and the sidecar being gone.
	if err == nil && s.lib != nil {
		if perr := s.lib.PutModel(ent.spec.Module, ent.spec.Width, model); perr != nil {
			s.log.Warn("model not persisted to library", "id", ent.id, "err", perr)
		}
	}
	s.persistManifest(ent.id, man)
	s.clearBuildSpec(ent.id)
	s.cache.complete(ent, model, err, man)
}

// buildWithRetries runs one build attempt plus up to BuildRetries retries
// with capped exponential backoff and full jitter. Only transient errors
// retry: a canceled or timed-out context and a checkpoint identity
// mismatch are permanent. With a CheckpointDir configured, each retry
// resumes from the previous attempt's checkpoint instead of starting over.
func (s *Server) buildWithRetries(ctx context.Context, ent *buildEntry, hooks *core.Hooks) (*core.Model, error) {
	var model *core.Model
	var err error
	for attempt := 0; ; attempt++ {
		ent.attempts.Add(1)
		if ferr := faultpoint.Hit("serve.build"); ferr != nil {
			err = ferr
		} else {
			model, err = s.buildFn(ctx, ent.spec, hooks)
		}
		if err == nil || attempt >= s.cfg.BuildRetries ||
			!isTransientBuildErr(err) || ctx.Err() != nil {
			return model, err
		}
		s.met.buildRetries.Inc()
		delay := s.retryDelay(attempt)
		// Publish the retry before sleeping, so pollers watching
		// GET /v1/models/build/{id} see why the build is stalled while it
		// is stalled.
		ent.retry.Store(&buildRetryState{attempt: attempt + 1, lastErr: err.Error(), backoff: delay})
		s.log.Warn("build attempt failed; retrying", "id", ent.id,
			"attempt", attempt+1, "backoff", delay, "err", err)
		select {
		case <-ctx.Done():
			return nil, err
		case <-s.quit:
			return nil, err
		case <-time.After(delay):
		}
	}
}

// isTransientBuildErr reports whether a failed attempt is worth retrying.
func isTransientBuildErr(err error) bool {
	return !errors.Is(err, context.Canceled) &&
		!errors.Is(err, context.DeadlineExceeded) &&
		!core.IsCheckpointMismatch(err)
}

// retryDelay is capped exponential backoff with full jitter: uniform in
// (0, base·2^attempt], never above 5s. Jitter keeps a fleet of restarted
// builds from thundering onto the same instant.
func (s *Server) retryDelay(attempt int) time.Duration {
	limit := s.cfg.BuildRetryBackoff << uint(attempt)
	if limit > 5*time.Second {
		limit = 5 * time.Second
	}
	return time.Duration(rand.Int63n(int64(limit))) + time.Millisecond
}
