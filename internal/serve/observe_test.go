package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hdpower/internal/atomicio"
	"hdpower/internal/core"
	"hdpower/internal/obs"
)

// manifestDir returns the directory serve tests persist manifests into:
// HDPOWER_MANIFEST_DIR when set (CI exports it so failed jobs can upload
// the manifests as artifacts), a per-test temp dir otherwise.
func manifestDir(t *testing.T) string {
	if dir := os.Getenv("HDPOWER_MANIFEST_DIR"); dir != "" {
		return dir
	}
	return t.TempDir()
}

// TestBuildProgressEndpoint steps a gated build shard by shard and polls
// GET /v1/models/build/{id} between steps: the reported merge count must
// increase monotonically and finish at shards_total.
func TestBuildProgressEndpoint(t *testing.T) {
	const shards = 4
	proceed := make(chan struct{})
	stepped := make(chan struct{})
	build := func(ctx context.Context, spec BuildSpec, hooks *core.Hooks) (*core.Model, error) {
		hooks.PhaseStart(core.PhaseBasic, shards, 512)
		for i := 0; i < shards; i++ {
			<-proceed
			hooks.PatternsSimulated(128)
			hooks.ShardMerged()
			stepped <- struct{}{}
		}
		hooks.PhaseEnd(core.PhaseBasic)
		return fakeModel(4), nil
	}
	_, ts := newTestServer(t, Config{BuildFunc: build})

	resp, data := postJSON(t, ts.URL+"/v1/models/build", json.RawMessage(tinySpecJSON))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("build: %d %s", resp.StatusCode, data)
	}
	br := decode[buildResponse](t, data)
	if br.ID != "ripple-adder-w2-s7" {
		t.Fatalf("build id = %q", br.ID)
	}

	poll := func() buildProgressResponse {
		resp, data := postGet(t, ts.URL+"/v1/models/build/"+br.ID)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("progress: %d %s", resp.StatusCode, data)
		}
		return decode[buildProgressResponse](t, data)
	}

	last := int64(-1)
	for i := 0; i < shards; i++ {
		proceed <- struct{}{}
		<-stepped
		p := poll()
		if p.ShardsMerged <= last {
			t.Fatalf("shards_merged not monotonic: %d after %d", p.ShardsMerged, last)
		}
		if p.ShardsMerged != int64(i+1) || p.ShardsTotal != shards {
			t.Fatalf("step %d: progress %+v", i, p)
		}
		if p.PatternsSimulated != int64(128*(i+1)) {
			t.Fatalf("step %d: patterns %d", i, p.PatternsSimulated)
		}
		last = p.ShardsMerged
	}

	// The build settles; the final poll reports ready with full progress.
	resp, data = postJSON(t, ts.URL+"/v1/models/build",
		map[string]any{"module": "ripple-adder", "width": 2, "seed": 7, "patterns": 512, "wait": true})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("wait: %d %s", resp.StatusCode, data)
	}
	p := poll()
	if p.Status != statusReady || p.ShardsMerged != shards || p.Key != tinySpec().Key() {
		t.Fatalf("final progress %+v", p)
	}

	// Unknown IDs are 404, as is the unknown sub-resource shape.
	if resp, _ := postGet(t, ts.URL+"/v1/models/build/nope"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown build id: %d, want 404", resp.StatusCode)
	}
	if resp, _ := postGet(t, ts.URL+"/v1/models/x/y"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown sub-resource: %d, want 404", resp.StatusCode)
	}
}

// TestManifestRoundTrip runs a real build and retrieves its flight
// recorder manifest over HTTP and from the manifest directory; both copies
// must describe the run the server actually executed.
func TestManifestRoundTrip(t *testing.T) {
	dir := manifestDir(t)
	s, ts := newTestServer(t, Config{CharWorkers: 2, ManifestDir: dir})

	resp, data := postJSON(t, ts.URL+"/v1/models/build",
		map[string]any{"module": "ripple-adder", "width": 2, "seed": 7, "patterns": 512, "wait": true})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("build: %d %s", resp.StatusCode, data)
	}
	id := decode[buildResponse](t, data).ID

	resp, data = postGet(t, ts.URL+"/v1/models/"+id+"/manifest")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("manifest: %d %s", resp.StatusCode, data)
	}
	man := decode[core.RunManifest](t, data)
	if man.Module != "ripple-adder-w2" || man.Width != 2 || man.Seed != 7 {
		t.Errorf("manifest identity: %+v", man)
	}
	if man.PatternsBudget != 512 || man.PatternsBasic != 512 {
		t.Errorf("manifest patterns: budget %d basic %d", man.PatternsBudget, man.PatternsBasic)
	}
	if man.ShardsMerged == 0 || man.ShardsMerged != man.ShardsPlanned {
		t.Errorf("manifest shards: %d of %d", man.ShardsMerged, man.ShardsPlanned)
	}
	if len(man.Coefficients) != 4 {
		t.Errorf("manifest coefficients: %d, want 4", len(man.Coefficients))
	}
	if man.Error != "" {
		t.Errorf("manifest error on success: %q", man.Error)
	}

	// The persisted copy matches the served one. It is checksummed on
	// disk, so it comes back through atomicio.
	raw, err := atomicio.ReadFile(filepath.Join(dir, id+".manifest.json"))
	if err != nil {
		t.Fatalf("persisted manifest: %v", err)
	}
	var disk core.RunManifest
	if err := json.Unmarshal(raw, &disk); err != nil {
		t.Fatalf("persisted manifest decode: %v", err)
	}
	if disk.PatternsBasic != man.PatternsBasic || disk.Module != man.Module {
		t.Errorf("disk manifest diverges: %+v vs %+v", disk, man)
	}

	// Closing the server dumps the span ring next to the manifests.
	s.Close()
	if _, err := os.Stat(filepath.Join(dir, "traces.json")); err != nil {
		t.Errorf("trace dump missing: %v", err)
	}
}

// TestFailedBuildManifest verifies the manifest of a failed build carries
// the error and stays retrievable while the failed entry lingers.
func TestFailedBuildManifest(t *testing.T) {
	_, ts := newTestServer(t, Config{
		BuildRetries: -1,
		BuildFunc: func(ctx context.Context, spec BuildSpec, hooks *core.Hooks) (*core.Model, error) {
			hooks.PhaseStart(core.PhaseBasic, 2, 256)
			hooks.PatternsSimulated(128)
			hooks.ShardMerged()
			hooks.PhaseEnd(core.PhaseBasic)
			return nil, fmt.Errorf("synthetic failure")
		},
	})
	resp, data := postJSON(t, ts.URL+"/v1/models/build",
		map[string]any{"module": "ripple-adder", "width": 2, "seed": 1, "wait": true})
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("failed build: %d %s", resp.StatusCode, data)
	}
	id := decode[buildResponse](t, data).ID
	resp, data = postGet(t, ts.URL+"/v1/models/"+id+"/manifest")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("failed manifest: %d %s", resp.StatusCode, data)
	}
	man := decode[core.RunManifest](t, data)
	if !strings.Contains(man.Error, "synthetic failure") {
		t.Errorf("manifest error = %q", man.Error)
	}
	if man.ShardsMerged != 1 || len(man.Coefficients) != 0 {
		t.Errorf("failed manifest progress: %+v", man)
	}
}

// TestRequestTracing checks the HTTP middleware's span plumbing: the trace
// ID surfaces in the X-Trace-ID header, the request ID round-trips, and
// the finished root span carries the route and status.
func TestRequestTracing(t *testing.T) {
	s, ts := newTestServer(t, Config{BuildFunc: instantBuilds(4)})

	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/healthz", nil)
	req.Header.Set("X-Request-ID", "req-123")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	traceID := resp.Header.Get("X-Trace-ID")
	if traceID == "" {
		t.Fatal("no X-Trace-ID on response")
	}
	if got := resp.Header.Get("X-Request-ID"); got != "req-123" {
		t.Errorf("request ID did not round-trip: %q", got)
	}

	var root *obs.SpanRecord
	for _, rec := range s.Tracer().Snapshot() {
		if rec.TraceID == traceID {
			rec := rec
			root = &rec
			break
		}
	}
	if root == nil {
		t.Fatalf("no span recorded for trace %s", traceID)
	}
	if root.Name != "GET /healthz" || root.Attrs["method"] != http.MethodGet || root.Attrs["status"] != "200" {
		t.Errorf("root span %+v", root)
	}
}

// TestBuildTraceSpans runs a real build and checks the trace tree: a
// model.build root with characterize.basic and shard.merge children, all
// under one trace ID, visible through /debug/traces on the admin handler.
func TestBuildTraceSpans(t *testing.T) {
	s, ts := newTestServer(t, Config{CharWorkers: 1})
	resp, data := postJSON(t, ts.URL+"/v1/models/build",
		map[string]any{"module": "ripple-adder", "width": 2, "seed": 1, "patterns": 384, "wait": true})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("build: %d %s", resp.StatusCode, data)
	}

	var build *obs.SpanRecord
	for _, rec := range s.Tracer().Snapshot() {
		if rec.Name == "model.build" {
			rec := rec
			build = &rec
			break
		}
	}
	if build == nil {
		t.Fatal("no model.build span")
	}
	if build.Attrs["key"] != "ripple-adder/w2/s1" {
		t.Errorf("build span key attr = %q", build.Attrs["key"])
	}

	phases, merges := 0, 0
	for _, rec := range s.Tracer().Snapshot() {
		if rec.TraceID != build.TraceID {
			continue
		}
		switch rec.Name {
		case "characterize.basic":
			phases++
			if rec.ParentID != build.SpanID {
				t.Errorf("phase span not a child of model.build")
			}
		case "shard.merge":
			merges++
		}
	}
	if phases != 1 {
		t.Errorf("characterize.basic spans = %d, want exactly 1", phases)
	}
	if merges != 3 {
		t.Errorf("shard.merge spans = %d, want 3", merges)
	}

	// The same tree is served by the admin trace dump.
	admin := httptest.NewServer(s.AdminHandler())
	defer admin.Close()
	resp, data = postGet(t, admin.URL+"/debug/traces")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/traces: %d", resp.StatusCode)
	}
	dump := decode[obs.TraceDump](t, data)
	if dump.SpansStarted == 0 || len(dump.Spans) == 0 {
		t.Fatalf("empty trace dump: %+v", dump)
	}
	if !strings.Contains(string(data), "model.build") {
		t.Error("trace dump missing the build span")
	}

	// pprof rides on the same admin mux.
	if resp, _ := postGet(t, admin.URL+"/debug/pprof/"); resp.StatusCode != http.StatusOK {
		t.Errorf("/debug/pprof/: %d", resp.StatusCode)
	}

	// Span counters surface on /metrics (satellite: tracer registration).
	_, metData := postGet(t, ts.URL+"/metrics")
	if !strings.Contains(string(metData), "hdserve_trace_spans_started_total") {
		t.Error("/metrics missing hdserve_trace_spans_started_total")
	}
}

// TestAccessLog drives requests through a JSON logger and checks the
// access-log records: fields, trace join keys, and the Debug demotion of
// probe endpoints.
func TestAccessLog(t *testing.T) {
	var buf bytes.Buffer
	logger := obs.NewLogger(&buf, "json", slog.LevelInfo)
	_, ts := newTestServer(t, Config{BuildFunc: instantBuilds(4), Logger: logger})

	resp, _ := postJSON(t, ts.URL+"/v1/models/build",
		map[string]any{"module": "ripple-adder", "width": 2, "seed": 7, "wait": true})
	wantTrace := resp.Header.Get("X-Trace-ID")
	postGet(t, ts.URL+"/healthz") // Debug-level: must not log at Info

	var found map[string]any
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("non-JSON log line %q: %v", line, err)
		}
		if rec["path"] == "/healthz" {
			t.Errorf("probe endpoint logged at Info: %q", line)
		}
		if rec["msg"] == "request" && rec["path"] == "/v1/models/build" {
			found = rec
		}
	}
	if found == nil {
		t.Fatalf("no access-log record for the build request; log:\n%s", buf.String())
	}
	if found["method"] != "POST" || found["status"] != float64(200) {
		t.Errorf("access log fields: %v", found)
	}
	if found["bytes"] == float64(0) {
		t.Errorf("access log bytes not counted: %v", found)
	}
	if found["trace_id"] != wantTrace {
		t.Errorf("access log trace_id %v != header %q", found["trace_id"], wantTrace)
	}
	if found["request_id"] == "" || found["request_id"] == nil {
		t.Errorf("access log missing request_id: %v", found)
	}
}
