package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"hdpower/internal/atomicio"
	"hdpower/internal/core"
	"hdpower/internal/faultpoint"
	"hdpower/internal/telemetry"
)

// epsModel is fakeModel with per-class deviation reservoirs filled in, so
// the hotset's traffic x epsilon apportionment has something to weigh.
func epsModel(m int, eps []float64) *core.Model {
	model := fakeModel(m)
	for i := range model.Basic {
		model.Basic[i].Epsilon = eps[i]
	}
	return model
}

func epsBuilds(m int, eps []float64) func(context.Context, BuildSpec, *core.Hooks) (*core.Model, error) {
	return func(context.Context, BuildSpec, *core.Hooks) (*core.Model, error) {
		return epsModel(m, eps), nil
	}
}

// TestTelemetryEndpoint drives traffic through the fast, legacy and
// stream paths and checks GET /v1/telemetry reflects all of it: both SLO
// planes observed their requests, and the profiler recorded the combined
// Hd mix under the model's key regardless of serving path.
func TestTelemetryEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{BuildFunc: instantBuilds(4)})
	buildReady(t, ts.URL, map[string]any{"module": "ripple-adder", "width": 2, "seed": 7})

	// Fast path: hd classes 0..4, five estimates.
	resp, _ := postRaw(t, ts.URL+"/v1/estimate",
		`{"model":{"module":"ripple-adder","width":2,"seed":7},"hd":[0,1,2,3,4]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fast estimate: status %d", resp.StatusCode)
	}
	// Legacy path: the patterns field in the model object leaves the hot
	// shape, so the struct-walk path serves (and must record) this one.
	resp, _ = postRaw(t, ts.URL+"/v1/estimate",
		`{"model":{"module":"ripple-adder","width":2,"seed":7,"patterns":512},"hd":[2,2]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("legacy estimate: status %d", resp.StatusCode)
	}
	// Stream plane: two fast lines.
	line := `{"model":{"module":"ripple-adder","width":2,"seed":7},"hd":[4]}`
	resp, _ = postRaw(t, ts.URL+"/v1/estimate/stream", line+"\n"+line+"\n")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream estimate: status %d", resp.StatusCode)
	}

	resp, data := postGet(t, ts.URL+"/v1/telemetry")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/telemetry: status %d, body %s", resp.StatusCode, data)
	}
	snap := decode[telemetry.Snapshot](t, data)

	planes := map[string]telemetry.PlaneSnapshot{}
	for _, p := range snap.Planes {
		planes[p.Plane] = p
	}
	if planes["unary"].Requests != 2 {
		t.Errorf("unary plane requests = %d, want 2", planes["unary"].Requests)
	}
	if planes["stream"].Requests != 1 {
		t.Errorf("stream plane requests = %d, want 1", planes["stream"].Requests)
	}
	if planes["unary"].Breached || planes["stream"].Breached {
		t.Error("healthy traffic must not breach the SLO")
	}

	if len(snap.Models) != 1 {
		t.Fatalf("models = %+v, want exactly one", snap.Models)
	}
	ms := snap.Models[0]
	if ms.Key != "ripple-adder/w2/s7" {
		t.Fatalf("model key = %q", ms.Key)
	}
	// 5 fast + 2 legacy + 2 stream estimates, mixed per class:
	// class 0,1,3: one each; class 2: 1 fast + 2 legacy; class 4: 1 + 2 stream.
	wantHits := []uint64{1, 1, 3, 1, 3}
	if !reflect.DeepEqual(ms.HdHits, wantHits) {
		t.Errorf("hd_hits = %v, want %v", ms.HdHits, wantHits)
	}
	if ms.Estimates != 9 {
		t.Errorf("estimates = %d, want 9", ms.Estimates)
	}
	if ms.Requests != 4 {
		t.Errorf("requests = %d, want 4 (unary x2 + stream lines x2)", ms.Requests)
	}
}

// TestTelemetryHotsetGolden pins the hotset recommendation for a fixed
// recorded traffic state: same traffic in, byte-for-byte same
// recommendation out, across repeated computations and over the wire.
func TestTelemetryHotsetGolden(t *testing.T) {
	// Per-class deviations for input bits 1..4 of the w2 ripple adder.
	eps := []float64{0.5, 0.02, 0.10, 0.10}
	s, ts := newTestServer(t, Config{BuildFunc: epsBuilds(4, eps)})
	buildReady(t, ts.URL, map[string]any{
		"module": "ripple-adder", "width": 2, "seed": 7, "patterns": 512})

	// Fixed traffic: Hd class 2 and 3 dominate, class 4 trails, class 1
	// is never hit (weights: 0, 2, 10, 1).
	mp := s.tel.Profiler().Model(telemetry.Key{Module: "ripple-adder", Width: 2, Seed: 7}, 5)
	for i := 0; i < 100; i++ {
		mp.RecordClass(0, 2)
		mp.RecordClass(0, 3)
	}
	for i := 0; i < 10; i++ {
		mp.RecordClass(0, 4)
	}
	mp.RecordRequest(0, 210, 0.001)

	want := hotsetResponse{
		Threshold: 2,
		Models: []hotsetModel{{
			Key:       "ripple-adder/w2/s7",
			Patterns:  512,
			Estimates: 210,
			Classes: []hotsetClass{
				{Hd: 1, Traffic: 0, Epsilon: 0.5, Uniform: 128, Recommended: 0},
				{Hd: 2, Traffic: 100, Epsilon: 0.02, Uniform: 128, Recommended: 79},
				{Hd: 3, Traffic: 100, Epsilon: 0.10, Uniform: 128, Recommended: 394},
				{Hd: 4, Traffic: 10, Epsilon: 0.10, Uniform: 128, Recommended: 39},
			},
			HotClasses:          []int{3},
			RecommendedPatterns: 1024,
			spec:                BuildSpec{Module: "ripple-adder", Width: 2, Seed: 7, Patterns: 512},
		}},
	}
	got := s.computeHotset()
	if !reflect.DeepEqual(got, want) {
		t.Errorf("hotset = %+v\nwant %+v", got, want)
	}
	if again := s.computeHotset(); !reflect.DeepEqual(again, got) {
		t.Errorf("hotset not deterministic: %+v then %+v", got, again)
	}

	resp, data := postGet(t, ts.URL+"/v1/telemetry/hotset")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/telemetry/hotset: status %d", resp.StatusCode)
	}
	var wire struct {
		Threshold float64 `json:"threshold"`
		Models    []struct {
			Key                 string `json:"key"`
			HotClasses          []int  `json:"hot_classes"`
			RecommendedPatterns int    `json:"recommended_patterns"`
		} `json:"models"`
	}
	if err := json.Unmarshal(data, &wire); err != nil {
		t.Fatalf("hotset decode: %v", err)
	}
	if len(wire.Models) != 1 || wire.Models[0].RecommendedPatterns != 1024 ||
		!reflect.DeepEqual(wire.Models[0].HotClasses, []int{3}) {
		t.Errorf("wire hotset = %+v", wire)
	}
}

// TestSLOBreachCapture drives the unary plane over an impossibly tight
// latency budget and checks the watcher's reaction: a breach is declared,
// exactly one bounded capture set lands in CaptureDir, and the rate limit
// swallows the immediately following breach.
func TestSLOBreachCapture(t *testing.T) {
	dir := t.TempDir()
	s, ts := newTestServer(t, Config{
		BuildFunc:          instantBuilds(4),
		SLOLatencyUnary:    time.Nanosecond, // everything is over budget
		CaptureDir:         dir,
		CaptureMinInterval: time.Hour,
		CaptureMax:         4,
	})
	buildReady(t, ts.URL, map[string]any{"module": "ripple-adder", "width": 2, "seed": 7})
	for i := 0; i < 8; i++ {
		resp, _ := postRaw(t, ts.URL+"/v1/estimate",
			`{"model":{"module":"ripple-adder","width":2,"seed":7},"hd":[1]}`)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("estimate: status %d", resp.StatusCode)
		}
	}

	s.checkSLO()
	if n := s.met.sloBreaches("unary").Value(); n != 1 {
		t.Fatalf("breach counter = %d, want 1", n)
	}
	for _, name := range []string{
		"slo-unary-001.telemetry.json",
		"slo-unary-001.goroutine.pb.gz",
		"slo-unary-001.heap.pb.gz",
	} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Errorf("capture file %s: %v", name, err)
		}
	}
	// Captures are durable atomicio files: checksum-verified reads.
	var snap telemetry.Snapshot
	data, err := atomicio.ReadFile(filepath.Join(dir, "slo-unary-001.telemetry.json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatalf("captured snapshot is not valid JSON: %v", err)
	}

	// The second breach is inside CaptureMinInterval: counted, not captured.
	s.checkSLO()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), "slo-unary-002") {
			t.Errorf("rate limit failed: %s written", e.Name())
		}
	}
	if n := s.met.sloCaptures.Value(); n != 3 {
		t.Errorf("capture counter = %d, want 3 (snapshot + two profiles)", n)
	}
}

// TestSLOCaptureFaultPoint arms the telemetry.capture fault point and
// checks a failing capture write is counted, not fatal.
func TestSLOCaptureFaultPoint(t *testing.T) {
	faultpoint.Disarm()
	if err := faultpoint.Arm("telemetry.capture=error"); err != nil {
		t.Fatal(err)
	}
	defer faultpoint.Disarm()

	dir := t.TempDir()
	s, ts := newTestServer(t, Config{
		BuildFunc:       instantBuilds(4),
		SLOLatencyUnary: time.Nanosecond,
		CaptureDir:      dir,
	})
	buildReady(t, ts.URL, map[string]any{"module": "ripple-adder", "width": 2, "seed": 7})
	for i := 0; i < 4; i++ {
		postRaw(t, ts.URL+"/v1/estimate",
			`{"model":{"module":"ripple-adder","width":2,"seed":7},"hd":[1]}`)
	}

	s.checkSLO()
	if n := s.met.sloCaptureFailures.Value(); n != 3 {
		t.Errorf("capture failure counter = %d, want 3", n)
	}
	if n := s.met.sloCaptures.Value(); n != 0 {
		t.Errorf("capture counter = %d, want 0 with the fault armed", n)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Errorf("no capture files should survive the fault, found %d", len(entries))
	}
}

// TestRefineOnce checks the refinement loop end to end: hot traffic on a
// model with residual deviation triggers a re-characterization at the
// doubled budget, the refreshed model swaps in without the key ever
// leaving the ready state, and a second pass does not re-enqueue.
func TestRefineOnce(t *testing.T) {
	eps := []float64{0.5, 0.02, 0.10, 0.10}
	s, ts := newTestServer(t, Config{
		BuildFunc:          epsBuilds(4, eps),
		RefineMinEstimates: 1,
	})
	buildReady(t, ts.URL, map[string]any{
		"module": "ripple-adder", "width": 2, "seed": 7, "patterns": 512})

	mp := s.tel.Profiler().Model(telemetry.Key{Module: "ripple-adder", Width: 2, Seed: 7}, 5)
	for i := 0; i < 100; i++ {
		mp.RecordClass(0, 3)
	}
	mp.RecordRequest(0, 100, 0.001)

	s.refineOnce()
	if n := s.met.refineBuilds.Value(); n != 1 {
		t.Fatalf("refine builds = %d, want 1", n)
	}

	key := "ripple-adder/w2/s7"
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, spec, ok := s.cache.readyEntrySpec(key); ok && spec.Patterns == 1024 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("refreshed model with boosted budget never swapped in")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Model stayed servable throughout, and still is.
	if _, ok := s.cache.ready(key); !ok {
		t.Fatal("model left the ready state during refresh")
	}

	// The apportionment is scale-free, so the mix stays hot after the
	// first doubling; each pass ratchets the budget exactly one step
	// (the refreshing flag blocks stacked rebuilds in between).
	s.refineOnce()
	deadline = time.Now().Add(5 * time.Second)
	for {
		if _, spec, ok := s.cache.readyEntrySpec(key); ok && spec.Patterns == 2048 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("second refinement pass did not ratchet the budget")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestRefineSkipsColdModels checks the traffic floor: a model below
// RefineMinEstimates is never rebuilt no matter how skewed its mix.
func TestRefineSkipsColdModels(t *testing.T) {
	eps := []float64{0.5, 0.02, 0.10, 0.10}
	s, ts := newTestServer(t, Config{
		BuildFunc:          epsBuilds(4, eps),
		RefineMinEstimates: 1000,
	})
	buildReady(t, ts.URL, map[string]any{
		"module": "ripple-adder", "width": 2, "seed": 7, "patterns": 512})
	mp := s.tel.Profiler().Model(telemetry.Key{Module: "ripple-adder", Width: 2, Seed: 7}, 5)
	for i := 0; i < 50; i++ {
		mp.RecordClass(0, 3)
	}
	mp.RecordRequest(0, 50, 0.001)

	s.refineOnce()
	if n := s.met.refineBuilds.Value(); n != 0 {
		t.Fatalf("refine builds = %d, want 0 below the traffic floor", n)
	}
}

// TestProfilerZeroAllocWithTraffic re-proves the fast path's zero-alloc
// invariant with the profiler hot: recording per-class hits and request
// latency into the sharded counters adds no allocations.
func TestProfilerZeroAllocWithTraffic(t *testing.T) {
	s, ts := newTestServer(t, Config{BuildFunc: instantBuilds(4)})
	buildReady(t, ts.URL, map[string]any{"module": "ripple-adder", "width": 2, "seed": 7})

	raw := []byte(`{"model":{"module":"ripple-adder","width":2,"seed":7},"hd":[0,1,2,3,4]}`)
	sc := getScratch()
	defer putScratch(sc)
	allocs := testing.AllocsPerRun(500, func() {
		if _, ok := s.estimateFastBytes(raw, sc, false); !ok {
			t.Fatal("fast path refused hot-shape request")
		}
	})
	if allocs != 0 {
		t.Fatalf("%v allocs/op with profiler recording, want 0", allocs)
	}
	// And the traffic actually landed.
	ms := s.tel.Profiler().SnapshotModels()
	if len(ms) != 1 || ms[0].Estimates == 0 {
		t.Fatalf("profiler recorded nothing: %+v", ms)
	}
}
