package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"hdpower/internal/atomicio"
	"hdpower/internal/core"
	"hdpower/internal/faultpoint"
	"hdpower/internal/modellib"
	"hdpower/internal/regress"
)

// buildWait POSTs a synchronous build for spec and returns the response.
func buildWait(t *testing.T, url string, spec BuildSpec) (*http.Response, []byte) {
	t.Helper()
	return postJSON(t, url+"/v1/models/build", map[string]any{
		"module": spec.Module, "width": spec.Width, "seed": spec.Seed,
		"patterns": spec.Patterns, "wait": true,
	})
}

// TestBuildRetryTransient: a backend that fails twice transiently still
// settles ready, with the retries counted.
func TestBuildRetryTransient(t *testing.T) {
	calls := 0
	var mu sync.Mutex
	s, ts := newTestServer(t, Config{
		BuildRetries:      2,
		BuildRetryBackoff: time.Millisecond,
		BuildFunc: func(ctx context.Context, spec BuildSpec, _ *core.Hooks) (*core.Model, error) {
			mu.Lock()
			defer mu.Unlock()
			calls++
			if calls <= 2 {
				return nil, fmt.Errorf("transient failure %d", calls)
			}
			return fakeModel(4), nil
		},
	})
	resp, data := buildWait(t, ts.URL, tinySpec())
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("build after transient failures: %d %s", resp.StatusCode, data)
	}
	if got := s.met.buildRetries.Value(); got != 2 {
		t.Errorf("retries = %d, want 2", got)
	}
	if got := s.met.buildsFailed.Value(); got != 0 {
		t.Errorf("failed builds = %d, want 0", got)
	}
}

// TestBuildNoRetryOnCancel: context errors are permanent; the backend runs
// exactly once.
func TestBuildNoRetryOnCancel(t *testing.T) {
	calls := 0
	var mu sync.Mutex
	s, ts := newTestServer(t, Config{
		BuildRetries:      3,
		BuildRetryBackoff: time.Millisecond,
		BuildFunc: func(ctx context.Context, spec BuildSpec, _ *core.Hooks) (*core.Model, error) {
			mu.Lock()
			defer mu.Unlock()
			calls++
			return nil, context.Canceled
		},
	})
	resp, data := buildWait(t, ts.URL, tinySpec())
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("canceled build: %d %s", resp.StatusCode, data)
	}
	mu.Lock()
	defer mu.Unlock()
	if calls != 1 {
		t.Errorf("backend ran %d times, want 1 (no retry on cancel)", calls)
	}
	if got := s.met.buildRetries.Value(); got != 0 {
		t.Errorf("retries = %d, want 0", got)
	}
}

// TestDegradedSiblingFallback: with the exact seed not cached, an
// estimate is answered by the cached same-module/width sibling, marked
// degraded, and counted in the metric.
func TestDegradedSiblingFallback(t *testing.T) {
	_, ts := newTestServer(t, Config{BuildFunc: instantBuilds(4)})
	if resp, data := buildWait(t, ts.URL, tinySpec()); resp.StatusCode != http.StatusOK {
		t.Fatalf("seed build: %d %s", resp.StatusCode, data)
	}

	resp, data := postJSON(t, ts.URL+"/v1/estimate", map[string]any{
		"model": map[string]any{"module": "ripple-adder", "width": 2, "seed": 99},
		"hd":    []int{1, 2},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("degraded estimate: %d %s", resp.StatusCode, data)
	}
	er := decode[estimateResponse](t, data)
	if !er.Degraded || er.Fallback != fallbackSeed {
		t.Errorf("degraded=%v fallback=%q, want true/%q", er.Degraded, er.Fallback, fallbackSeed)
	}

	respM, metricsText := postGet(t, ts.URL+"/metrics")
	if respM.StatusCode != http.StatusOK {
		t.Fatalf("metrics: %d", respM.StatusCode)
	}
	if !strings.Contains(string(metricsText),
		`hdserve_estimate_degraded_total{fallback="seed"} 1`) {
		t.Errorf("degraded metric missing:\n%s", metricsText)
	}
}

// TestDegradedLibraryFallback: a fresh server with an empty cache answers
// from the durable library left by a previous process.
func TestDegradedLibraryFallback(t *testing.T) {
	dir := t.TempDir()
	lib, err := modellib.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := lib.PutModel("ripple-adder", 2, fakeModel(4)); err != nil {
		t.Fatal(err)
	}

	_, ts := newTestServer(t, Config{BuildFunc: instantBuilds(4), LibraryDir: dir})
	resp, data := postJSON(t, ts.URL+"/v1/estimate", map[string]any{
		"model": map[string]any{"module": "ripple-adder", "width": 2, "seed": 7},
		"hd":    []int{1, 2, 3},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("library fallback: %d %s", resp.StatusCode, data)
	}
	er := decode[estimateResponse](t, data)
	if !er.Degraded || er.Fallback != fallbackLibrary {
		t.Errorf("degraded=%v fallback=%q, want true/%q", er.Degraded, er.Fallback, fallbackLibrary)
	}
}

// TestDegradedRegressionFallback: no instance model anywhere, but the
// library holds a fitted width regression — the last rung synthesizes one.
func TestDegradedRegressionFallback(t *testing.T) {
	dir := t.TempDir()
	lib, err := modellib.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	law := func(i, w int) float64 { return float64(i) * (2*float64(w) + 1) }
	var protos []regress.Prototype
	for _, w := range regress.SetThi.Widths() {
		m := 2 * w
		model := &core.Model{Module: "ripple-adder", InputBits: m, Basic: make([]core.Coef, m)}
		for i := 1; i <= m; i++ {
			model.Basic[i-1] = core.Coef{P: law(i, w), Count: 5}
		}
		protos = append(protos, regress.Prototype{Width: w, Model: model})
	}
	pm, err := regress.Fit("ripple-adder", protos, regress.Linear, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := lib.PutParam(pm); err != nil {
		t.Fatal(err)
	}

	_, ts := newTestServer(t, Config{BuildFunc: instantBuilds(4), LibraryDir: dir})
	resp, data := postJSON(t, ts.URL+"/v1/estimate/stats", map[string]any{
		"model": map[string]any{"module": "ripple-adder", "width": 3, "seed": 1},
		"mean":  3.0, "std": 1.5, "rho": 0.2, "width": 3,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("regression fallback: %d %s", resp.StatusCode, data)
	}
	sr := decode[statsResponse](t, data)
	if !sr.Degraded || sr.Fallback != fallbackRegression {
		t.Errorf("degraded=%v fallback=%q, want true/%q", sr.Degraded, sr.Fallback, fallbackRegression)
	}
	if sr.AvgCharge <= 0 {
		t.Errorf("synthesized estimate %v, want > 0", sr.AvgCharge)
	}
}

// TestNoFallbackStill404: with no cache, no siblings and no library the
// estimate still answers 404.
func TestNoFallbackStill404(t *testing.T) {
	_, ts := newTestServer(t, Config{BuildFunc: instantBuilds(4)})
	resp, _ := postJSON(t, ts.URL+"/v1/estimate", map[string]any{
		"model": map[string]any{"module": "ripple-adder", "width": 2, "seed": 7},
		"hd":    []int{1},
	})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("no-fallback estimate: %d, want 404", resp.StatusCode)
	}
}

// TestModelPersistedToLibrary: every successful build lands in the
// configured library directory.
func TestModelPersistedToLibrary(t *testing.T) {
	dir := t.TempDir()
	_, ts := newTestServer(t, Config{BuildFunc: instantBuilds(4), LibraryDir: dir})
	if resp, data := buildWait(t, ts.URL, tinySpec()); resp.StatusCode != http.StatusOK {
		t.Fatalf("build: %d %s", resp.StatusCode, data)
	}
	lib, err := modellib.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := lib.GetModel("ripple-adder", 2, false); err != nil {
		t.Errorf("built model not in library: %v", err)
	}
}

// TestRecoverBuilds: a spec sidecar left by a killed process is
// re-enqueued and built on the next start, then cleaned up.
func TestRecoverBuilds(t *testing.T) {
	dir := t.TempDir()
	spec := tinySpec()
	sidecar := filepath.Join(dir, buildID(spec.Key())+".spec.json")
	if err := atomicio.WriteJSON(sidecar, spec); err != nil {
		t.Fatal(err)
	}
	// A corrupt sidecar next to it must be skipped, not crash recovery.
	if err := os.WriteFile(filepath.Join(dir, "bogus.spec.json"),
		[]byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}

	s, _ := newTestServer(t, Config{BuildFunc: instantBuilds(4), CheckpointDir: dir})
	ent, ok := s.cache.lookupID(buildID(spec.Key()))
	if !ok {
		t.Fatal("recovered build not in cache")
	}
	select {
	case <-ent.done:
	case <-time.After(10 * time.Second):
		t.Fatal("recovered build did not settle")
	}
	if status := s.entryStatus(ent); status != statusReady {
		t.Fatalf("recovered build status %q", status)
	}
	if got := s.met.buildsRecovered.Value(); got != 1 {
		t.Errorf("recovered = %d, want 1", got)
	}
	if _, err := os.Stat(sidecar); !os.IsNotExist(err) {
		t.Errorf("sidecar not cleaned up after settle: %v", err)
	}
}

// TestResumeAcrossRestart is the end-to-end crash story: a real build dies
// mid-characterization (injected fault), the process "dies" before
// clearing its sidecar, and a new server over the same checkpoint
// directory recovers the build, resumes it from the checkpoint, and
// produces a model bit-identical to one built with no crash at all.
func TestResumeAcrossRestart(t *testing.T) {
	spec := BuildSpec{Module: "ripple-adder", Width: 2, Seed: 7, Patterns: 1280}
	cfg := func() Config { return Config{CharWorkers: 2, BuildRetries: -1} }

	// Clean baseline through the real engine, no checkpointing.
	clean, tsClean := newTestServer(t, cfg())
	if resp, data := buildWait(t, tsClean.URL, spec); resp.StatusCode != http.StatusOK {
		t.Fatalf("baseline build: %d %s", resp.StatusCode, data)
	}
	baseModel, ok := clean.cache.ready(spec.Key())
	if !ok {
		t.Fatal("baseline model not cached")
	}
	want, err := json.Marshal(baseModel)
	if err != nil {
		t.Fatal(err)
	}

	// "Crash": the first server's build dies at the 3rd merged shard.
	dir := t.TempDir()
	faultpoint.Disarm()
	if err := faultpoint.Arm("core.merge=error:after=3"); err != nil {
		t.Fatal(err)
	}
	crashCfg := cfg()
	crashCfg.CheckpointDir = dir
	crashCfg.CheckpointEvery = 2
	_, tsCrash := newTestServer(t, crashCfg)
	if resp, data := buildWait(t, tsCrash.URL, spec); resp.StatusCode != http.StatusInternalServerError {
		faultpoint.Disarm()
		t.Fatalf("crashed build: %d %s", resp.StatusCode, data)
	}
	faultpoint.Disarm()
	ckpt := filepath.Join(dir, buildID(spec.Key())+".ckpt.json")
	if _, err := os.Stat(ckpt); err != nil {
		t.Fatalf("no checkpoint after crash: %v", err)
	}
	// A settled failure clears its sidecar; a SIGKILL would not have. Put
	// it back to simulate the kill happening before the build settled.
	if err := atomicio.WriteJSON(filepath.Join(dir, buildID(spec.Key())+".spec.json"), spec); err != nil {
		t.Fatal(err)
	}

	// Restart over the same directory: recover, resume, finish.
	restartCfg := cfg()
	restartCfg.CheckpointDir = dir
	restartCfg.CheckpointEvery = 2
	restarted, _ := newTestServer(t, restartCfg)
	ent, ok := restarted.cache.lookupID(buildID(spec.Key()))
	if !ok {
		t.Fatal("interrupted build not recovered")
	}
	select {
	case <-ent.done:
	case <-time.After(60 * time.Second):
		t.Fatal("recovered build did not settle")
	}
	if status, err := restarted.entryResult(ent); status != statusReady {
		t.Fatalf("recovered build %q: %v", status, err)
	}
	if got := restarted.met.buildsResumed.Value(); got != 1 {
		t.Errorf("resumed = %d, want 1", got)
	}
	gotModel, _ := restarted.cache.ready(spec.Key())
	got, err := json.Marshal(gotModel)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Error("resumed model differs from uninterrupted build")
	}
	if _, err := os.Stat(ckpt); !os.IsNotExist(err) {
		t.Errorf("checkpoint not removed after successful resume: %v", err)
	}
}

// TestStaleCheckpointMismatchRestartsFresh: a checkpoint from different
// build options is dropped and the build still succeeds.
func TestStaleCheckpointMismatchRestartsFresh(t *testing.T) {
	dir := t.TempDir()
	spec := BuildSpec{Module: "ripple-adder", Width: 2, Seed: 7, Patterns: 1280}

	// Leave a checkpoint behind with a different pattern budget.
	faultpoint.Disarm()
	if err := faultpoint.Arm("core.merge=error:after=3"); err != nil {
		t.Fatal(err)
	}
	crashCfg := Config{CharWorkers: 2, BuildRetries: -1, CheckpointDir: dir, CheckpointEvery: 2}
	_, tsCrash := newTestServer(t, crashCfg)
	if resp, data := buildWait(t, tsCrash.URL, spec); resp.StatusCode != http.StatusInternalServerError {
		faultpoint.Disarm()
		t.Fatalf("crashed build: %d %s", resp.StatusCode, data)
	}
	faultpoint.Disarm()

	// Same key, different budget: the stale checkpoint must not poison it.
	spec.Patterns = 2560
	_, ts := newTestServer(t, Config{CharWorkers: 2, BuildRetries: -1, CheckpointDir: dir, CheckpointEvery: 2})
	if resp, data := buildWait(t, ts.URL, spec); resp.StatusCode != http.StatusOK {
		t.Fatalf("build over stale checkpoint: %d %s", resp.StatusCode, data)
	}
}
