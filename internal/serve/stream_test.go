package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
)

// postNDJSON posts raw NDJSON to the stream endpoint and returns the
// response plus its non-empty output lines.
func postNDJSON(t *testing.T, url, body string) (*http.Response, []string) {
	t.Helper()
	resp, err := http.Post(url+"/v1/estimate/stream", "application/x-ndjson",
		strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var lines []string
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		if len(sc.Bytes()) > 0 {
			lines = append(lines, sc.Text())
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return resp, lines
}

// TestEstimateStream drives the batch endpoint through every line
// disposition — fast path, legacy fallback, degraded model, per-line
// error, blank line — and checks each output line against the unary
// endpoint's answer for the same request.
func TestEstimateStream(t *testing.T) {
	_, ts := newTestServer(t, Config{BuildFunc: instantBuilds(4)})
	buildReady(t, ts.URL, map[string]any{"module": "ripple-adder", "width": 2, "seed": 7})

	reqLines := []string{
		`{"model":{"module":"ripple-adder","width":2,"seed":7},"hd":[0,1,2]}`, // fast
		`{"model":` + slowModelJSON("ripple-adder", 2, 7) + `,"hd":[0,1,2]}`,  // legacy, same answer
		`{"model":{"module":"ripple-adder","width":2,"seed":9},"hd":[1]}`,     // degraded (seed sibling)
		`{"model":{"module":"ripple-adder","width":2,"seed":7},"hd":[99]}`,    // per-line error
		``, // blank: skipped
		`{"model":{"module":"ripple-adder","width":2,"seed":7},"words":[0,3,15]}`,            // fast, words
		`{"model":{"module":"ripple-adder","width":2,"seed":7},"hd":[1],"stable_zeros":[2]}`, // fast, enhanced
		`not json`, // decode error
	}
	resp, lines := postNDJSON(t, ts.URL, strings.Join(reqLines, "\n")+"\n")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type %q", ct)
	}
	if len(lines) != 7 {
		t.Fatalf("got %d output lines, want 7 (blank input skipped): %q", len(lines), lines)
	}

	for i, reqLine := range []string{reqLines[0], reqLines[1], reqLines[2], reqLines[5], reqLines[6]} {
		idx := []int{0, 1, 2, 4, 5}[i]
		uResp, uData := postRaw(t, ts.URL+"/v1/estimate", reqLine)
		if uResp.StatusCode != http.StatusOK {
			t.Fatalf("unary for line %d: %d %s", idx, uResp.StatusCode, uData)
		}
		var want, got estimateResponse
		if err := json.Unmarshal(uData, &want); err != nil {
			t.Fatal(err)
		}
		if err := json.Unmarshal([]byte(lines[idx]), &got); err != nil {
			t.Fatalf("line %d not JSON: %v: %s", idx, err, lines[idx])
		}
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Errorf("line %d: stream %+v != unary %+v", idx, got, want)
		}
	}

	// Line 3: out-of-range hd carries the exact unary error message.
	uResp, uData := postRaw(t, ts.URL+"/v1/estimate", reqLines[3])
	if uResp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unary error probe: %d", uResp.StatusCode)
	}
	var wantErr, gotErr errorResponse
	if err := json.Unmarshal(uData, &wantErr); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(lines[3]), &gotErr); err != nil {
		t.Fatalf("error line not JSON: %v: %s", err, lines[3])
	}
	if gotErr.Error == "" || gotErr.Error != wantErr.Error {
		t.Errorf("error line %q != unary error %q", gotErr.Error, wantErr.Error)
	}

	// Line 6: the decode error line mentions the failure without killing
	// the batch (line 6 exists and earlier asserts already passed).
	if err := json.Unmarshal([]byte(lines[6]), &gotErr); err != nil || gotErr.Error == "" {
		t.Errorf("decode-error line malformed: %s", lines[6])
	}
	// Degraded line is marked.
	var degraded estimateResponse
	if err := json.Unmarshal([]byte(lines[2]), &degraded); err != nil {
		t.Fatal(err)
	}
	if !degraded.Degraded || degraded.Fallback != fallbackSeed {
		t.Errorf("degraded line not marked: %s", lines[2])
	}
}

// TestEstimateStreamMetricsPerItem pins the metrics fix: stream lines
// increment the same hdserve_estimate_* instruments as unary requests,
// once per item — including the degraded and served-path counters.
func TestEstimateStreamMetricsPerItem(t *testing.T) {
	s, ts := newTestServer(t, Config{BuildFunc: instantBuilds(4)})
	buildReady(t, ts.URL, map[string]any{"module": "ripple-adder", "width": 2, "seed": 7})

	var b strings.Builder
	for i := 0; i < 5; i++ {
		b.WriteString(`{"model":{"module":"ripple-adder","width":2,"seed":7},"hd":[0,1]}` + "\n")
	}
	for i := 0; i < 3; i++ {
		b.WriteString(`{"model":{"module":"ripple-adder","width":2,"seed":8},"hd":[0]}` + "\n")
	}
	resp, lines := postNDJSON(t, ts.URL, b.String())
	if resp.StatusCode != http.StatusOK || len(lines) != 8 {
		t.Fatalf("stream: status %d, %d lines", resp.StatusCode, len(lines))
	}
	if got := s.met.servedLUT.Value(); got != 5 {
		t.Errorf("servedLUT = %d, want 5", got)
	}
	if got := s.met.servedLegacy.Value(); got != 3 {
		t.Errorf("servedLegacy = %d, want 3 (degraded lines take the slow path)", got)
	}
	if got := s.met.estimateDegraded(fallbackSeed).Value(); got != 3 {
		t.Errorf("estimateDegraded[seed] = %d, want 3 (one per degraded line)", got)
	}
	if got := s.met.estCycles.Value(); got != 5*2+3*1 {
		t.Errorf("estCycles = %d, want 13", got)
	}
}

// TestStreamLineAllocs pins the zero-allocation claim for the steady
// stream path: reading a hot-shape line from the buffered reader,
// pricing it and rendering the compact response allocates nothing.
func TestStreamLineAllocs(t *testing.T) {
	s, ts := newTestServer(t, Config{BuildFunc: instantBuilds(4)})
	buildReady(t, ts.URL, map[string]any{"module": "ripple-adder", "width": 2, "seed": 7})

	line := `{"model":{"module":"ripple-adder","width":2,"seed":7},"hd":[0,1,2,3,4]}` + "\n"
	payload := []byte(strings.Repeat(line, 4))
	br := bufio.NewReaderSize(nil, streamBufSize)
	sc := getScratch()
	defer putScratch(sc)
	reader := bytes.NewReader(payload)

	allocs := testing.AllocsPerRun(200, func() {
		reader.Reset(payload)
		br.Reset(reader)
		for {
			l, err := readLine(br, sc)
			if len(l) > 0 {
				if _, ok := s.estimateFastBytes(l, sc, false); !ok {
					t.Fatal("fast path refused hot-shape stream line")
				}
			}
			if err != nil {
				break
			}
		}
	})
	if allocs != 0 {
		t.Errorf("steady stream line path: %v allocs/op, want 0", allocs)
	}
}

// TestStreamOversizedLine checks the spill path: a line longer than the
// reader buffer still parses correctly (via the scratch spill), it is
// just not allocation-free.
func TestStreamOversizedLine(t *testing.T) {
	_, ts := newTestServer(t, Config{BuildFunc: instantBuilds(4), MaxBodyBytes: 4 << 20})
	buildReady(t, ts.URL, map[string]any{"module": "ripple-adder", "width": 2, "seed": 7})

	// One line with ~100k hd entries: bigger than the 64k reader buffer.
	n := 100_000
	var b strings.Builder
	b.WriteString(`{"model":{"module":"ripple-adder","width":2,"seed":7},"hd":[0`)
	for i := 1; i < n; i++ {
		b.WriteString(",1")
	}
	b.WriteString("]}\n")
	resp, lines := postNDJSON(t, ts.URL, b.String())
	if resp.StatusCode != http.StatusOK || len(lines) != 1 {
		t.Fatalf("status %d, %d lines", resp.StatusCode, len(lines))
	}
	var got estimateResponse
	if err := json.Unmarshal([]byte(lines[0]), &got); err != nil {
		t.Fatalf("line not JSON: %v", err)
	}
	if got.Cycles != n {
		t.Fatalf("cycles = %d, want %d", got.Cycles, n)
	}
}
