package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"hdpower/internal/atomicio"
	"hdpower/internal/core"
	"hdpower/internal/fleet"
)

// TestFleetDispatchBitIdentical is the serve-layer half of the fleet
// story: a coordinator-mode server with three workers registered builds
// through the fleet, over its own public listener, and the cached model
// is bit-identical to a plain single-node server's build of the same
// spec.
func TestFleetDispatchBitIdentical(t *testing.T) {
	spec := BuildSpec{Module: "ripple-adder", Width: 2, Seed: 7, Patterns: 1280, Enhanced: true}

	// Baseline: the ordinary local path.
	clean, tsClean := newTestServer(t, Config{CharWorkers: 2})
	if resp, data := buildWait(t, tsClean.URL, spec); resp.StatusCode != http.StatusOK {
		t.Fatalf("baseline build: %d %s", resp.StatusCode, data)
	}
	baseModel, ok := clean.cache.ready(spec.Key())
	if !ok {
		t.Fatal("baseline model not cached")
	}
	want, err := json.Marshal(baseModel)
	if err != nil {
		t.Fatal(err)
	}

	coord := fleet.NewCoordinator(fleet.Config{
		LeaseShards: 2,
		LeaseTTL:    2 * time.Second,
		Tick:        5 * time.Millisecond,
	})
	s, ts := newTestServer(t, Config{
		CharWorkers:   2,
		Fleet:         coord,
		CheckpointDir: t.TempDir(),
	})

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	for i := 0; i < 3; i++ {
		w, err := fleet.NewWorker(fleet.WorkerConfig{
			Coordinator:  ts.URL,
			Name:         fmt.Sprintf("w%d", i),
			Workers:      2,
			RetryBase:    5 * time.Millisecond,
			PollInterval: 10 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		go w.Run(ctx)
	}
	for deadline := time.Now().Add(10 * time.Second); coord.LiveWorkers() < 3; {
		if time.Now().After(deadline) {
			t.Fatalf("only %d workers registered", coord.LiveWorkers())
		}
		time.Sleep(5 * time.Millisecond)
	}

	if resp, data := buildWait(t, ts.URL, spec); resp.StatusCode != http.StatusOK {
		t.Fatalf("fleet build: %d %s", resp.StatusCode, data)
	}
	fleetModel, ok := s.cache.ready(spec.Key())
	if !ok {
		t.Fatal("fleet model not cached")
	}
	got, err := json.Marshal(fleetModel)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatalf("fleet build diverges from local build:\n got %s\nwant %s", got, want)
	}

	// The build really went through the fleet, and the metrics surfaced
	// on the server registry say so.
	resp, metricsText := postGet(t, ts.URL+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: %d", resp.StatusCode)
	}
	for _, metric := range []string{"hdfleet_leases_granted_total", "hdfleet_uploads_accepted_total"} {
		if !metricHasPositiveValue(string(metricsText), metric) {
			t.Errorf("metric %s not positive after a fleet build:\n%s", metric, metricsText)
		}
	}
}

func metricHasPositiveValue(text, name string) bool {
	for _, line := range splitLines(text) {
		var v float64
		if n, _ := fmt.Sscanf(line, name+" %g", &v); n == 1 && v > 0 {
			return true
		}
	}
	return false
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	return append(out, s[start:])
}

// TestBuildProgressRetryState pins the retry diagnostics of
// GET /v1/models/build/{id}: attempt count, last transient error, and the
// backoff that preceded the final (successful) attempt.
func TestBuildProgressRetryState(t *testing.T) {
	calls := 0
	var mu sync.Mutex
	_, ts := newTestServer(t, Config{
		BuildRetries:      2,
		BuildRetryBackoff: time.Millisecond,
		BuildFunc: func(ctx context.Context, spec BuildSpec, _ *core.Hooks) (*core.Model, error) {
			mu.Lock()
			defer mu.Unlock()
			calls++
			if calls <= 2 {
				return nil, fmt.Errorf("transient failure %d", calls)
			}
			return fakeModel(4), nil
		},
	})
	spec := tinySpec()
	if resp, data := buildWait(t, ts.URL, spec); resp.StatusCode != http.StatusOK {
		t.Fatalf("build: %d %s", resp.StatusCode, data)
	}
	resp, data := postGet(t, ts.URL+"/v1/models/build/"+buildID(spec.Key()))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("progress: %d %s", resp.StatusCode, data)
	}
	pr := decode[buildProgressResponse](t, data)
	if pr.Status != statusReady {
		t.Fatalf("status %q, want ready", pr.Status)
	}
	if pr.Attempts != 3 {
		t.Errorf("attempts = %d, want 3", pr.Attempts)
	}
	if pr.LastAttemptError != "transient failure 2" {
		t.Errorf("last_attempt_error = %q, want the second failure", pr.LastAttemptError)
	}
	if pr.RetryBackoffMs <= 0 {
		t.Errorf("retry_backoff_ms = %d, want positive", pr.RetryBackoffMs)
	}
}

// TestBuildProgressNoRetryFieldsOnCleanBuild: a first-try success keeps
// the retry diagnostics out of the payload entirely.
func TestBuildProgressNoRetryFieldsOnCleanBuild(t *testing.T) {
	_, ts := newTestServer(t, Config{BuildFunc: instantBuilds(4)})
	spec := tinySpec()
	if resp, data := buildWait(t, ts.URL, spec); resp.StatusCode != http.StatusOK {
		t.Fatalf("build: %d %s", resp.StatusCode, data)
	}
	resp, data := postGet(t, ts.URL+"/v1/models/build/"+buildID(spec.Key()))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("progress: %d %s", resp.StatusCode, data)
	}
	var raw map[string]any
	if err := json.Unmarshal(data, &raw); err != nil {
		t.Fatal(err)
	}
	if v, ok := raw["attempts"]; !ok || v.(float64) != 1 {
		t.Errorf("attempts = %v, want 1", v)
	}
	for _, field := range []string{"last_attempt_error", "retry_backoff_ms"} {
		if _, ok := raw[field]; ok {
			t.Errorf("clean build leaked retry field %q: %s", field, data)
		}
	}
}

// TestQuarantinedCheckpointRecovery: a torn checkpoint file left by a
// crash is quarantined to *.corrupt on restart and the recovered build
// falls back to a clean from-scratch run — settling ready, never failed.
func TestQuarantinedCheckpointRecovery(t *testing.T) {
	spec := BuildSpec{Module: "ripple-adder", Width: 2, Seed: 7, Patterns: 1280}
	dir := t.TempDir()
	id := buildID(spec.Key())
	ckpt := filepath.Join(dir, id+".ckpt.json")

	// A torn checkpoint: real-looking JSON cut mid-payload, no checksum
	// trailer — exactly what a crash mid-write leaves behind.
	if err := os.WriteFile(ckpt, []byte(`{"format":"hdpower-checkpoint-v1","module":"ripple-adder-w2","phase":"ba`), 0o644); err != nil {
		t.Fatal(err)
	}
	// The spec sidecar survived intact (it is tiny and written first), so
	// the restarted server recovers the build.
	if err := atomicio.WriteJSON(filepath.Join(dir, id+".spec.json"), spec); err != nil {
		t.Fatal(err)
	}

	s, _ := newTestServer(t, Config{
		CharWorkers:   2,
		CheckpointDir: dir,
	})
	ent, ok := s.cache.lookupID(id)
	if !ok {
		t.Fatal("interrupted build not recovered")
	}
	select {
	case <-ent.done:
	case <-time.After(60 * time.Second):
		t.Fatal("recovered build did not settle")
	}
	if status, err := s.entryResult(ent); status != statusReady {
		t.Fatalf("recovered build settled %q (%v), want ready", status, err)
	}
	if _, err := os.Stat(ckpt + ".corrupt"); err != nil {
		t.Errorf("torn checkpoint not quarantined: %v", err)
	}
	// Resumed must NOT have fired: the build started from scratch.
	if got := s.met.buildsResumed.Value(); got != 0 {
		t.Errorf("buildsResumed = %d, want 0 (fresh build after quarantine)", got)
	}
}
