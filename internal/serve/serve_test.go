package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"hdpower/internal/core"
	"hdpower/internal/dwlib"
	"hdpower/internal/hddist"
	"hdpower/internal/power"
	"hdpower/internal/sim"
	"hdpower/internal/stats"
)

// newTestServer builds a server plus an httptest front-end and tears both
// down with the test.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

// postRaw posts a body verbatim (for malformed-JSON cases).
func postRaw(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func decode[T any](t *testing.T, data []byte) T {
	t.Helper()
	var v T
	if err := json.Unmarshal(data, &v); err != nil {
		t.Fatalf("decode %q: %v", data, err)
	}
	return v
}

// fakeModel builds a minimal valid model for injected-build tests.
func fakeModel(m int) *core.Model {
	model := &core.Model{Module: "fake", InputBits: m, Basic: make([]core.Coef, m)}
	for i := range model.Basic {
		model.Basic[i] = core.Coef{P: float64(i + 1), Count: 10}
	}
	return model
}

// instantBuilds injects a build backend that returns fakeModel at once.
func instantBuilds(m int) func(context.Context, BuildSpec, *core.Hooks) (*core.Model, error) {
	return func(context.Context, BuildSpec, *core.Hooks) (*core.Model, error) {
		return fakeModel(m), nil
	}
}

// gatedBuilds injects a build backend that blocks until released; entered
// receives one tick per build invocation.
func gatedBuilds(m int) (build func(context.Context, BuildSpec, *core.Hooks) (*core.Model, error), entered chan string, release chan struct{}) {
	entered = make(chan string, 64)
	release = make(chan struct{})
	build = func(ctx context.Context, spec BuildSpec, _ *core.Hooks) (*core.Model, error) {
		entered <- spec.Key()
		select {
		case <-release:
			return fakeModel(m), nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	return build, entered, release
}

const tinySpecJSON = `{"module":"ripple-adder","width":2,"seed":7,"patterns":512}`

func tinySpec() BuildSpec {
	return BuildSpec{Module: "ripple-adder", Width: 2, Seed: 7, Patterns: 512}
}

// TestEndToEndEstimate runs the real pipeline: build a small model through
// the characterization engine, then check the served estimates against a
// direct core.Characterize run (deterministic => identical coefficients),
// in both hd and words modes.
func TestEndToEndEstimate(t *testing.T) {
	_, ts := newTestServer(t, Config{CharWorkers: 2})

	resp, data := postJSON(t, ts.URL+"/v1/models/build",
		map[string]any{"module": "ripple-adder", "width": 2, "seed": 7, "patterns": 512, "wait": true})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("build: %d %s", resp.StatusCode, data)
	}
	if br := decode[buildResponse](t, data); br.Status != statusReady {
		t.Fatalf("build status %q", br.Status)
	}

	// Reference model, fitted directly.
	mod, err := dwlib.Lookup("ripple-adder")
	if err != nil {
		t.Fatal(err)
	}
	nl := mod.Build(2)
	if err := nl.Finalize(); err != nil {
		t.Fatal(err)
	}
	meter, err := power.NewMeter(nl, sim.EventDriven)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := core.Characterize(meter, "ref", core.CharacterizeOptions{Patterns: 512, Seed: 7, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}

	hds := []int{0, 1, 2, 3, 4, 4, 1}
	resp, data = postJSON(t, ts.URL+"/v1/estimate",
		map[string]any{"model": tinySpec(), "hd": hds})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("estimate: %d %s", resp.StatusCode, data)
	}
	er := decode[estimateResponse](t, data)
	if er.Cycles != len(hds) {
		t.Fatalf("cycles = %d, want %d", er.Cycles, len(hds))
	}
	for i, hd := range hds {
		if want := ref.P(hd); math.Abs(er.Estimates[i]-want) > 1e-12 {
			t.Errorf("estimate[%d] (hd %d) = %v, want %v", i, hd, er.Estimates[i], want)
		}
	}

	// Words mode: consecutive 4-bit input vectors.
	resp, data = postJSON(t, ts.URL+"/v1/estimate",
		map[string]any{"model": tinySpec(), "words": []uint64{0b0000, 0b1111, 0b1110}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("words estimate: %d %s", resp.StatusCode, data)
	}
	er = decode[estimateResponse](t, data)
	if er.Cycles != 2 {
		t.Fatalf("words cycles = %d, want 2", er.Cycles)
	}
	for i, hd := range []int{4, 1} {
		if want := ref.P(hd); math.Abs(er.Estimates[i]-want) > 1e-12 {
			t.Errorf("words estimate[%d] = %v, want p_%d = %v", i, er.Estimates[i], hd, want)
		}
	}

	// The model inventory reports it ready.
	listResp, listData := postGet(t, ts.URL+"/v1/models")
	if listResp.StatusCode != http.StatusOK {
		t.Fatalf("models: %d", listResp.StatusCode)
	}
	lr := decode[modelsResponse](t, listData)
	if len(lr.Models) != 1 || lr.Models[0].Status != statusReady || lr.Models[0].BasicCoefs != 4 {
		t.Fatalf("models = %+v", lr.Models)
	}
}

func postGet(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

// TestEstimateStats checks the closed-form endpoint against a direct
// evaluation of the same pipeline.
func TestEstimateStats(t *testing.T) {
	s, ts := newTestServer(t, Config{BuildFunc: instantBuilds(4)})
	_ = s
	resp, data := postJSON(t, ts.URL+"/v1/models/build",
		map[string]any{"module": "ripple-adder", "width": 2, "seed": 7, "wait": true})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("build: %d %s", resp.StatusCode, data)
	}

	req := map[string]any{
		"model": BuildSpec{Module: "ripple-adder", Width: 2, Seed: 7},
		"mean":  0.5, "std": 1.25, "rho": 0.3, "width": 2, "n": 2000,
	}
	resp, data = postJSON(t, ts.URL+"/v1/estimate/stats", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats: %d %s", resp.StatusCode, data)
	}
	sr := decode[statsResponse](t, data)

	ws := stats.WordStats{N: 2000, Mean: 0.5, Std: 1.25, Rho: 0.3}
	port := hddist.FromWordStats(ws, 2)
	dist := hddist.Convolve(port, port) // 2 ports of 2 bits = 4 input bits
	want, err := fakeModel(4).AvgFromDist(dist)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sr.AvgCharge-want) > 1e-12 {
		t.Fatalf("avg charge = %v, want %v", sr.AvgCharge, want)
	}
	if math.Abs(sr.AvgHd-dist.Mean()) > 1e-12 {
		t.Fatalf("avg hd = %v, want %v", sr.AvgHd, dist.Mean())
	}
}

// TestSingleflight fires concurrent duplicate build requests and verifies
// exactly one build executes, with the rest observable as dedups in the
// metrics.
func TestSingleflight(t *testing.T) {
	build, entered, release := gatedBuilds(4)
	s, ts := newTestServer(t, Config{BuildFunc: build, BuildWorkers: 1, BuildQueue: 8})

	const dup = 6
	var wg sync.WaitGroup
	codes := make([]int, dup)
	for i := 0; i < dup; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			raw := []byte(tinySpecJSON)
			resp, err := http.Post(ts.URL+"/v1/models/build", "application/json", bytes.NewReader(raw))
			if err != nil {
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			codes[i] = resp.StatusCode
		}(i)
	}
	wg.Wait()
	close(release)

	// Exactly one build entered the backend.
	select {
	case <-entered:
	case <-time.After(5 * time.Second):
		t.Fatal("no build started")
	}
	select {
	case key := <-entered:
		t.Fatalf("second build started for %s", key)
	case <-time.After(50 * time.Millisecond):
	}

	accepted := 0
	for _, c := range codes {
		if c == http.StatusAccepted {
			accepted++
		} else {
			t.Errorf("unexpected status %d", c)
		}
	}
	if accepted != dup {
		t.Fatalf("accepted %d of %d", accepted, dup)
	}
	if got := s.met.buildsRun.Value(); got != 1 {
		t.Errorf("builds run = %d, want 1", got)
	}
	if got := s.met.buildsDeduped.Value(); got != dup-1 {
		t.Errorf("dedups = %d, want %d", got, dup-1)
	}

	// The singleflight is observable on /metrics.
	_, metData := postGet(t, ts.URL+"/metrics")
	out := string(metData)
	for _, want := range []string{
		"hdserve_model_builds_total 1",
		fmt.Sprintf("hdserve_model_build_dedup_total %d", dup-1),
	} {
		if !strings.Contains(out, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestBackpressure429 saturates the single-worker, depth-1 queue and
// expects the third distinct build to bounce with 429.
func TestBackpressure429(t *testing.T) {
	build, entered, release := gatedBuilds(4)
	defer close(release)
	s, ts := newTestServer(t, Config{BuildFunc: build, BuildWorkers: 1, BuildQueue: 1})

	specs := []string{
		`{"module":"ripple-adder","width":2,"seed":1}`,
		`{"module":"ripple-adder","width":2,"seed":2}`,
		`{"module":"ripple-adder","width":2,"seed":3}`,
	}
	// First build occupies the worker...
	resp, data := postJSON(t, ts.URL+"/v1/models/build", json.RawMessage(specs[0]))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first build: %d %s", resp.StatusCode, data)
	}
	<-entered
	// ...second fills the queue...
	resp, data = postJSON(t, ts.URL+"/v1/models/build", json.RawMessage(specs[1]))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("second build: %d %s", resp.StatusCode, data)
	}
	// ...third has nowhere to go.
	resp, data = postJSON(t, ts.URL+"/v1/models/build", json.RawMessage(specs[2]))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("third build: %d %s, want 429", resp.StatusCode, data)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	if got := s.met.queueRejected.Value(); got != 1 {
		t.Errorf("rejected = %d, want 1", got)
	}
	// The rejected spec can retry once capacity frees up; abandon() must
	// not have left a phantom in-flight entry behind.
	if _, ok := s.cache.entries[(BuildSpec{Module: "ripple-adder", Width: 2, Seed: 3}).Key()]; ok {
		t.Error("rejected build left a cache entry")
	}
}

// TestRequestTimeout bounds a wait=true build poll by the request
// timeout: the response must be 504 while the build keeps running.
func TestRequestTimeout(t *testing.T) {
	build, _, release := gatedBuilds(4)
	defer close(release)
	_, ts := newTestServer(t, Config{BuildFunc: build, RequestTimeout: 60 * time.Millisecond})

	start := time.Now()
	resp, data := postJSON(t, ts.URL+"/v1/models/build",
		map[string]any{"module": "ripple-adder", "width": 2, "seed": 1, "wait": true})
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("wait timeout: %d %s, want 504", resp.StatusCode, data)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("timeout took %v", elapsed)
	}
}

// TestGracefulDrain verifies Drain blocks on the in-flight build, refuses
// new work, flips readiness, and completes once the build lands.
func TestGracefulDrain(t *testing.T) {
	build, entered, release := gatedBuilds(4)
	s, ts := newTestServer(t, Config{BuildFunc: build})

	resp, data := postJSON(t, ts.URL+"/v1/models/build", json.RawMessage(tinySpecJSON))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("build: %d %s", resp.StatusCode, data)
	}
	<-entered // the build is now in-flight

	drained := make(chan error, 1)
	go func() { drained <- s.Drain(context.Background()) }()

	// Drain must not return while the build runs.
	select {
	case err := <-drained:
		t.Fatalf("drain returned early: %v", err)
	case <-time.After(60 * time.Millisecond):
	}

	// Readiness is down; new builds are refused; estimates still work
	// against cached models (none here, so 404 — but not 503).
	if resp, _ := postGet(t, ts.URL+"/readyz"); resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("readyz during drain = %d, want 503", resp.StatusCode)
	}
	if resp, _ := postGet(t, ts.URL+"/healthz"); resp.StatusCode != http.StatusOK {
		t.Errorf("healthz during drain = %d, want 200", resp.StatusCode)
	}
	resp, _ = postJSON(t, ts.URL+"/v1/models/build",
		map[string]any{"module": "ripple-adder", "width": 2, "seed": 99})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("build during drain = %d, want 503", resp.StatusCode)
	}

	close(release)
	select {
	case err := <-drained:
		if err != nil {
			t.Fatalf("drain: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("drain never completed")
	}
	// The drained build's model landed in the cache.
	if _, ok := s.cache.ready(tinySpec().Key()); !ok {
		t.Error("in-flight build was dropped instead of drained")
	}
}

// TestDrainDeadline pins that a drain bounded by an expired context
// reports the deadline instead of hanging.
func TestDrainDeadline(t *testing.T) {
	build, entered, release := gatedBuilds(4)
	defer close(release)
	s, ts := newTestServer(t, Config{BuildFunc: build})
	postJSON(t, ts.URL+"/v1/models/build", json.RawMessage(tinySpecJSON))
	<-entered
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if err := s.Drain(ctx); err == nil {
		t.Fatal("drain with blocked build and expired deadline returned nil")
	}
}

// TestLRUEviction fills the model cache beyond capacity and checks the
// oldest model is evicted and re-buildable.
func TestLRUEviction(t *testing.T) {
	s, ts := newTestServer(t, Config{BuildFunc: instantBuilds(4), ModelCache: 2})
	for seed := 1; seed <= 3; seed++ {
		resp, data := postJSON(t, ts.URL+"/v1/models/build",
			map[string]any{"module": "ripple-adder", "width": 2, "seed": seed, "wait": true})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("build seed %d: %d %s", seed, resp.StatusCode, data)
		}
	}
	if got := s.met.cacheEvicted.Value(); got != 1 {
		t.Fatalf("evictions = %d, want 1", got)
	}
	// Seed 1 was the LRU victim: estimating against it no longer gets the
	// exact model — the cached siblings answer, marked degraded.
	resp, data := postJSON(t, ts.URL+"/v1/estimate",
		map[string]any{"model": map[string]any{"module": "ripple-adder", "width": 2, "seed": 1}, "hd": []int{1}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("evicted estimate: %d %s", resp.StatusCode, data)
	}
	if er := decode[estimateResponse](t, data); !er.Degraded {
		t.Fatalf("evicted estimate served non-degraded: %+v", er)
	}
	// Seeds 2 and 3 still serve exactly.
	resp, data = postJSON(t, ts.URL+"/v1/estimate",
		map[string]any{"model": map[string]any{"module": "ripple-adder", "width": 2, "seed": 3}, "hd": []int{1}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cached estimate: %d", resp.StatusCode)
	}
	if er := decode[estimateResponse](t, data); er.Degraded {
		t.Fatalf("cached estimate marked degraded: %+v", er)
	}
}

// TestFailedBuildRetries verifies a failed build reports its error on
// wait, shows up as failed in the inventory, and does not poison the key.
func TestFailedBuildRetries(t *testing.T) {
	calls := 0
	var mu sync.Mutex
	s, ts := newTestServer(t, Config{
		BuildRetries: -1, // client-visible failure semantics, not auto-retry
		BuildFunc: func(ctx context.Context, spec BuildSpec, _ *core.Hooks) (*core.Model, error) {
			mu.Lock()
			defer mu.Unlock()
			calls++
			if calls == 1 {
				return nil, fmt.Errorf("synthetic failure")
			}
			return fakeModel(4), nil
		},
	})
	resp, data := postJSON(t, ts.URL+"/v1/models/build",
		map[string]any{"module": "ripple-adder", "width": 2, "seed": 1, "wait": true})
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("failed build: %d %s", resp.StatusCode, data)
	}
	if br := decode[buildResponse](t, data); !strings.Contains(br.Error, "synthetic failure") {
		t.Fatalf("error not surfaced: %+v", br)
	}
	if got := s.met.buildsFailed.Value(); got != 1 {
		t.Errorf("failed builds = %d, want 1", got)
	}
	// Retry succeeds: failed entries are replaced, not cached.
	resp, data = postJSON(t, ts.URL+"/v1/models/build",
		map[string]any{"module": "ripple-adder", "width": 2, "seed": 1, "wait": true})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("retry: %d %s", resp.StatusCode, data)
	}
}

// TestValidation sweeps the 4xx surface.
func TestValidation(t *testing.T) {
	s, ts := newTestServer(t, Config{BuildFunc: instantBuilds(4), MaxBodyBytes: 256})

	// Ready model for the estimate cases.
	postJSON(t, ts.URL+"/v1/models/build",
		map[string]any{"module": "ripple-adder", "width": 2, "seed": 7, "wait": true})

	cases := []struct {
		name string
		url  string
		body string
		want int
	}{
		{"unknown module", "/v1/models/build", `{"module":"warp-core","width":8}`, 400},
		{"width too small", "/v1/models/build", `{"module":"ripple-adder","width":0}`, 400},
		{"width too large", "/v1/models/build", `{"module":"ripple-adder","width":99}`, 400},
		{"negative patterns", "/v1/models/build", `{"module":"ripple-adder","width":2,"patterns":-5}`, 400},
		{"malformed json", "/v1/models/build", `{"module":`, 400},
		{"unknown field", "/v1/models/build", `{"module":"ripple-adder","width":2,"frobnicate":1}`, 400},
		{"estimate no model", "/v1/estimate", `{"model":{"module":"cla-adder","width":4,"seed":1},"hd":[1]}`, 404},
		{"estimate no input", "/v1/estimate", `{"model":` + tinySpecJSON + `}`, 400},
		{"estimate both inputs", "/v1/estimate", `{"model":` + tinySpecJSON + `,"hd":[1],"words":[1,2]}`, 400},
		{"hd out of range", "/v1/estimate", `{"model":` + tinySpecJSON + `,"hd":[5]}`, 400},
		{"stable zeros out of range", "/v1/estimate", `{"model":` + tinySpecJSON + `,"hd":[3],"stable_zeros":[2]}`, 400},
		{"word too wide", "/v1/estimate", `{"model":` + tinySpecJSON + `,"words":[16,1]}`, 400},
		{"one word", "/v1/estimate", `{"model":` + tinySpecJSON + `,"words":[3]}`, 400},
		{"stats zero std", "/v1/estimate/stats", `{"model":` + tinySpecJSON + `,"mean":1,"std":0,"rho":0,"width":2}`, 400},
		{"stats bad rho", "/v1/estimate/stats", `{"model":` + tinySpecJSON + `,"mean":1,"std":1,"rho":2,"width":2}`, 400},
		{"stats bad width", "/v1/estimate/stats", `{"model":` + tinySpecJSON + `,"mean":1,"std":1,"rho":0,"width":3}`, 400},
	}
	for _, tc := range cases {
		resp, data := postRaw(t, ts.URL+tc.url, tc.body)
		if resp.StatusCode != tc.want {
			t.Errorf("%s: %d %s, want %d", tc.name, resp.StatusCode, data, tc.want)
		}
	}

	// Oversized body => 413.
	big := fmt.Sprintf(`{"module":"ripple-adder","width":2,"seed":1,"patterns":%s1}`,
		strings.Repeat(" ", 300))
	resp, data := postRaw(t, ts.URL+"/v1/models/build", big)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized body: %d %s, want 413", resp.StatusCode, data)
	}
	if s.met.panics.Value() != 0 {
		t.Errorf("validation sweep tripped %d panics", s.met.panics.Value())
	}
}

// TestPanicRecovery drives a panicking handler through the middleware
// stack and expects a 500 plus a panic metric, not a dead connection.
func TestPanicRecovery(t *testing.T) {
	s, _ := newTestServer(t, Config{BuildFunc: instantBuilds(4)})
	h := s.wrap("GET /boom", func(w http.ResponseWriter, r *http.Request) {
		panic("boom")
	})
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/boom", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("panicking handler returned %d, want 500", rec.Code)
	}
	if got := s.met.panics.Value(); got != 1 {
		t.Fatalf("panics metric = %d, want 1", got)
	}
}

// TestHealthMetricsEndpoints smoke-tests the operational endpoints.
func TestHealthMetricsEndpoints(t *testing.T) {
	_, ts := newTestServer(t, Config{BuildFunc: instantBuilds(4)})
	if resp, data := postGet(t, ts.URL+"/healthz"); resp.StatusCode != 200 || !strings.Contains(string(data), "ok") {
		t.Errorf("healthz: %d %s", resp.StatusCode, data)
	}
	if resp, _ := postGet(t, ts.URL+"/readyz"); resp.StatusCode != 200 {
		t.Errorf("readyz: %d", resp.StatusCode)
	}
	resp, data := postGet(t, ts.URL+"/metrics")
	if resp.StatusCode != 200 {
		t.Fatalf("metrics: %d", resp.StatusCode)
	}
	out := string(data)
	for _, want := range []string{
		"# TYPE hdserve_requests_total counter",
		"# TYPE hdserve_request_seconds histogram",
		"hdserve_inflight_requests",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestCharHooksMetrics runs one real build and checks the
// characterization counters moved.
func TestCharHooksMetrics(t *testing.T) {
	s, ts := newTestServer(t, Config{CharWorkers: 1})
	resp, data := postJSON(t, ts.URL+"/v1/models/build",
		map[string]any{"module": "ripple-adder", "width": 2, "seed": 1, "patterns": 384, "wait": true})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("build: %d %s", resp.StatusCode, data)
	}
	if got := s.met.charPatterns.Value(); got != 384 {
		t.Errorf("char patterns = %d, want 384", got)
	}
	if got := s.met.charShards.Value(); got != 3 {
		t.Errorf("char shards = %d, want 3", got)
	}
}
