package serve

// fastpath.go is the production-QPS estimate data plane: a hand-rolled
// decoder/encoder for the hot estimate structs and a lock-free table
// lookup, so a steady-state /v1/estimate (and each /v1/estimate/stream
// line) runs with zero heap allocations — no encoding/json reflection,
// no per-request model-cache lock.
//
// The paper's economics only pay off if estimation stays a table lookup
// all the way to the wire: fitted models are flattened into lut.Table
// coefficient arrays at build-complete time and published behind an
// atomic pointer (RCU — see models.go), request scratch comes from
// sync.Pools, and the JSON for the hot shapes is parsed and rendered by
// hand. Anything unusual — escaped strings, unknown fields, non-integer
// numbers, uncached models — falls back to the legacy encoding/json path,
// which stays bit-identical in behavior; the fast path only ever serves
// requests it can answer exactly as the slow path would.

import (
	"errors"
	"io"
	"math"
	"math/bits"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"hdpower/internal/dwlib"
	"hdpower/internal/lut"
	"hdpower/internal/telemetry"
)

// Values of the hdserve_estimate_served_total path label.
const (
	servedLUT    = "lut"
	servedLegacy = "legacy"
)

// moduleIntern maps catalog module names to their canonical string, so a
// name parsed as request-body bytes can key the LUT snapshot without
// allocating (map[string]x lookups with a string([]byte) index compile to
// an allocation-free lookup; composite keys do not).
var moduleIntern = func() map[string]string {
	m := make(map[string]string)
	for _, name := range dwlib.Names() {
		m[name] = name
	}
	return m
}()

// lutKey identifies one published table: the same triple BuildSpec.Key
// renders, kept as a comparable struct so lookups need no formatting.
type lutKey struct {
	module string
	width  int
	seed   int64
}

// lutSet is one immutable RCU snapshot of every ready model's flattened
// table. Readers load the current snapshot and index the map — the map is
// never mutated after publication, so concurrent reads are safe without
// locks.
type lutSet struct {
	tables map[lutKey]*lut.Table
}

var emptyLutSet = &lutSet{tables: map[lutKey]*lut.Table{}}

// estScratch is the pooled per-request working set of the fast path:
// request body, decoded series, computed estimates, and the rendered
// response. Steady-state requests allocate nothing; the pool warms to the
// live request concurrency.
type estScratch struct {
	body  []byte
	hd    []int
	zeros []int
	words []uint64
	est   []float64
	out   []byte
	// shard is this scratch's telemetry-profiler shard hint, assigned
	// round-robin at pool-miss time. A scratch maps loosely to a concurrent
	// worker, so reusing its hint spreads recorders across counter shards
	// without any per-request work.
	shard uint32
}

// scratchSeq hands out profiler shard hints to freshly allocated scratches.
var scratchSeq atomic.Uint32

// scratch slices beyond these caps are dropped on release instead of
// pooled, so one huge batch cannot pin its buffers forever.
const (
	maxPooledBytes   = 1 << 16
	maxPooledEntries = 1 << 13
)

var scratchPool = sync.Pool{New: func() any {
	return &estScratch{
		body:  make([]byte, 0, 4096),
		hd:    make([]int, 0, 256),
		zeros: make([]int, 0, 256),
		words: make([]uint64, 0, 256),
		est:   make([]float64, 0, 256),
		out:   make([]byte, 0, 4096),
		shard: scratchSeq.Add(1),
	}
}}

func getScratch() *estScratch { return scratchPool.Get().(*estScratch) }

func putScratch(sc *estScratch) {
	if cap(sc.body) > maxPooledBytes || cap(sc.out) > maxPooledBytes ||
		cap(sc.hd) > maxPooledEntries || cap(sc.zeros) > maxPooledEntries ||
		cap(sc.words) > maxPooledEntries || cap(sc.est) > maxPooledEntries {
		return
	}
	scratchPool.Put(sc)
}

// fastReq is the decoded hot shape of an estimate request. Slices alias
// the owning scratch; module aliases the request body.
type fastReq struct {
	module   []byte
	width    int
	seed     int64
	hasModel bool
	hd       []int
	zeros    []int
	words    []uint64
}

// jsParser is a minimal JSON scanner for the hot request shapes. It
// accepts a strict subset of JSON — no escaped strings, integer-only
// numbers, known fields — and reports failure on anything else, at which
// point the caller falls back to encoding/json.
type jsParser struct {
	b []byte
	i int
}

func (p *jsParser) ws() {
	for p.i < len(p.b) {
		switch p.b[p.i] {
		case ' ', '\t', '\r', '\n':
			p.i++
		default:
			return
		}
	}
}

// eat consumes c if it is the next byte.
func (p *jsParser) eat(c byte) bool {
	if p.i < len(p.b) && p.b[p.i] == c {
		p.i++
		return true
	}
	return false
}

// str parses a string without escapes and returns the raw bytes between
// the quotes.
func (p *jsParser) str() ([]byte, bool) {
	if !p.eat('"') {
		return nil, false
	}
	start := p.i
	for p.i < len(p.b) {
		switch p.b[p.i] {
		case '\\':
			return nil, false // escapes take the slow path
		case '"':
			s := p.b[start:p.i]
			p.i++
			return s, true
		}
		p.i++
	}
	return nil, false
}

// int64 parses an optionally signed integer literal. A fraction or
// exponent fails the fast parse (the slow path reports the type error).
func (p *jsParser) int64() (int64, bool) {
	neg := p.eat('-')
	u, ok := p.uint64()
	if !ok {
		return 0, false
	}
	if neg {
		if u > 1<<63 {
			return 0, false
		}
		return -int64(u), true
	}
	if u > math.MaxInt64 {
		return 0, false
	}
	return int64(u), true
}

// uint64 parses an unsigned integer literal with overflow detection.
func (p *jsParser) uint64() (uint64, bool) {
	start := p.i
	var v uint64
	for p.i < len(p.b) {
		c := p.b[p.i]
		if c < '0' || c > '9' {
			break
		}
		d := uint64(c - '0')
		if v > (math.MaxUint64-d)/10 {
			return 0, false
		}
		v = v*10 + d
		p.i++
	}
	if p.i == start {
		return 0, false
	}
	if p.i < len(p.b) {
		switch p.b[p.i] {
		case '.', 'e', 'E':
			return 0, false
		}
	}
	return v, true
}

// intArray parses a JSON array of integers into dst (reusing its
// capacity) and returns the filled slice.
func (p *jsParser) intArray(dst []int) ([]int, bool) {
	if !p.eat('[') {
		return nil, false
	}
	p.ws()
	if p.eat(']') {
		return dst, true
	}
	for {
		p.ws()
		v, ok := p.int64()
		if !ok || v > math.MaxInt32 || v < math.MinInt32 {
			return nil, false
		}
		dst = append(dst, int(v))
		p.ws()
		if p.eat(',') {
			continue
		}
		if p.eat(']') {
			return dst, true
		}
		return nil, false
	}
}

// uintArray parses a JSON array of unsigned integers into dst.
func (p *jsParser) uintArray(dst []uint64) ([]uint64, bool) {
	if !p.eat('[') {
		return nil, false
	}
	p.ws()
	if p.eat(']') {
		return dst, true
	}
	for {
		p.ws()
		v, ok := p.uint64()
		if !ok {
			return nil, false
		}
		dst = append(dst, v)
		p.ws()
		if p.eat(',') {
			continue
		}
		if p.eat(']') {
			return dst, true
		}
		return nil, false
	}
}

// model parses the inner BuildSpec object. Only the cache-key fields are
// accepted; patterns/enhanced/z_clusters (or anything unknown) fall back
// to the slow path, which owns their validation semantics.
func (p *jsParser) model(req *fastReq) bool {
	if !p.eat('{') {
		return false
	}
	p.ws()
	if p.eat('}') {
		return true
	}
	for {
		p.ws()
		key, ok := p.str()
		if !ok {
			return false
		}
		p.ws()
		if !p.eat(':') {
			return false
		}
		p.ws()
		switch string(key) {
		case "module":
			s, ok := p.str()
			if !ok {
				return false
			}
			req.module = s
		case "width":
			v, ok := p.int64()
			if !ok || v < 0 || v > math.MaxInt32 {
				return false
			}
			req.width = int(v)
		case "seed":
			v, ok := p.int64()
			if !ok {
				return false
			}
			req.seed = v
		default:
			return false
		}
		p.ws()
		if p.eat(',') {
			continue
		}
		if p.eat('}') {
			return true
		}
		return false
	}
}

// parseEstimateFast decodes one estimate request in the hot shape. ok is
// false when the body needs the slow path; the scratch slices are
// (re)used as backing storage either way.
func parseEstimateFast(body []byte, sc *estScratch) (fastReq, bool) {
	req := fastReq{}
	sc.hd = sc.hd[:0]
	sc.zeros = sc.zeros[:0]
	sc.words = sc.words[:0]
	p := jsParser{b: body}
	p.ws()
	if !p.eat('{') {
		return req, false
	}
	p.ws()
	if p.eat('}') {
		p.ws()
		return req, p.i == len(p.b)
	}
	for {
		p.ws()
		key, ok := p.str()
		if !ok {
			return req, false
		}
		p.ws()
		if !p.eat(':') {
			return req, false
		}
		p.ws()
		switch string(key) {
		case "model":
			if !p.model(&req) {
				return req, false
			}
			req.hasModel = true
		case "hd":
			sc.hd, ok = p.intArray(sc.hd)
			if !ok {
				return req, false
			}
			req.hd = sc.hd
		case "stable_zeros":
			sc.zeros, ok = p.intArray(sc.zeros)
			if !ok {
				return req, false
			}
			req.zeros = sc.zeros
		case "words":
			sc.words, ok = p.uintArray(sc.words)
			if !ok {
				return req, false
			}
			req.words = sc.words
		default:
			return req, false
		}
		p.ws()
		if p.eat(',') {
			continue
		}
		if p.eat('}') {
			break
		}
		return req, false
	}
	p.ws()
	return req, p.i == len(p.b)
}

// readBody drains the request body into the pooled scratch buffer,
// growing it only when the body outruns the pooled capacity. Failures are
// translated exactly as readJSON translates them: 413 for a body over the
// MaxBytesReader cap, 400 for anything else.
func readBody(w http.ResponseWriter, r *http.Request, sc *estScratch) bool {
	sc.body = sc.body[:0]
	for {
		if len(sc.body) == cap(sc.body) {
			sc.body = append(sc.body, 0)[:len(sc.body)]
		}
		n, err := r.Body.Read(sc.body[len(sc.body):cap(sc.body)])
		sc.body = sc.body[:len(sc.body)+n]
		if err == io.EOF {
			return true
		}
		if err != nil {
			var tooLarge *http.MaxBytesError
			if errors.As(err, &tooLarge) {
				writeError(w, http.StatusRequestEntityTooLarge,
					"request body exceeds %d bytes", tooLarge.Limit)
			} else {
				writeError(w, http.StatusBadRequest, "bad request body: %v", err)
			}
			return false
		}
	}
}

// growFloats returns dst resized to n entries, reallocating only when the
// pooled capacity is too small.
func growFloats(dst []float64, n int) []float64 {
	if cap(dst) < n {
		return make([]float64, n)
	}
	return dst[:n]
}

// estimateFastBytes serves one estimate request body entirely on the fast
// path: hand-rolled parse, atomic LUT snapshot lookup, flat-table
// evaluation, hand-rolled render into sc.out. ok is false — with nothing
// written and no metrics counted — whenever any aspect of the request
// leaves the hot shape (parse failure, unknown module, model not in the
// snapshot, invalid series); the caller then re-runs the bytes through
// the legacy path, which owns all error semantics. The unary endpoint
// renders with indent=true to stay byte-identical to the legacy
// json.Encoder output; the stream endpoint renders compact NDJSON lines.
func (s *Server) estimateFastBytes(body []byte, sc *estScratch, indent bool) ([]byte, bool) {
	start := time.Now()
	req, ok := parseEstimateFast(body, sc)
	if !ok || !req.hasModel {
		return nil, false
	}
	module, ok := moduleIntern[string(req.module)]
	if !ok {
		return nil, false
	}
	t := s.cache.table(module, req.width, req.seed)
	if t == nil {
		return nil, false
	}
	m := t.InputBits

	var enhanced bool
	var total float64
	switch {
	case len(req.words) > 0 && len(req.hd) > 0:
		return nil, false
	case len(req.words) > 0:
		if len(req.words) < 2 || len(req.words) > maxBatchCycles || m > 64 {
			return nil, false
		}
		mask := wordMask(m)
		for _, v := range req.words {
			if v&^mask != 0 {
				return nil, false
			}
		}
		enhanced = t.HasEnhanced()
		sc.est = growFloats(sc.est, len(req.words)-1)
		total = estimateWords(t, sc.est, req.words, enhanced)
	case len(req.hd) > 0:
		if len(req.hd) > maxBatchCycles {
			return nil, false
		}
		for _, hd := range req.hd {
			if hd < 0 || hd > m {
				return nil, false
			}
		}
		sc.est = growFloats(sc.est, len(req.hd))
		if len(req.zeros) > 0 {
			if len(req.zeros) != len(req.hd) {
				return nil, false
			}
			for i, z := range req.zeros {
				if z < 0 || z > m-req.hd[i] {
					return nil, false
				}
			}
			total = t.EstimateEnhancedInto(sc.est, req.hd, req.zeros)
			enhanced = t.HasEnhanced()
		} else {
			total = t.EstimateBasicInto(sc.est, req.hd)
		}
	default:
		return nil, false
	}
	mean := 0.0
	if len(sc.est) > 0 {
		mean = total / float64(len(sc.est))
	}
	// Same accounting as the legacy path: an exact snapshot hit is a model
	// cache hit, and cycle volume counts per estimate regardless of path.
	s.met.cacheHits.Inc()
	s.met.estCycles.Add(int64(len(sc.est)))
	s.met.servedLUT.Inc()
	// Traffic profiling stays allocation-free: the interned module makes
	// the Key probe a plain map lookup, and the sharded counters take
	// atomic adds only. Model returns nil past the cap, which the record
	// calls tolerate.
	mp := s.tel.Profiler().Model(
		telemetry.Key{Module: module, Width: req.width, Seed: req.seed}, m+1)
	if mp != nil {
		if len(req.words) > 0 {
			// Validation above guarantees every word fits the m-bit mask,
			// so the XOR popcount is exactly the per-cycle Hd.
			for i := 1; i < len(req.words); i++ {
				mp.RecordClass(sc.shard, bits.OnesCount64(req.words[i-1]^req.words[i]))
			}
		} else {
			for _, hd := range req.hd {
				mp.RecordClass(sc.shard, hd)
			}
		}
		mp.RecordRequest(sc.shard, len(sc.est), time.Since(start).Seconds())
	}
	sc.out = appendEstimateResponse(sc.out[:0], module, req.width, req.seed,
		sc.est, enhanced, total, mean, "", indent)
	return sc.out, true
}

// appendJSONFloat renders a float64 exactly the way encoding/json does
// (shortest representation, 'e' form only for very small or very large
// magnitudes, exponent digits unpadded), so fast-path and slow-path
// responses carry byte-identical numbers.
func appendJSONFloat(b []byte, f float64) []byte {
	abs := math.Abs(f)
	format := byte('f')
	if abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	b = strconv.AppendFloat(b, f, format, -1, 64)
	if format == 'e' {
		if n := len(b); n >= 4 && b[n-4] == 'e' && b[n-3] == '-' && b[n-2] == '0' {
			b[n-2] = b[n-1]
			b = b[:n-1]
		}
	}
	return b
}

// appendKey appends a JSON object key and its colon, with the space
// json.Encoder inserts in indented mode.
func appendKey(out []byte, name string, indent bool) []byte {
	out = append(out, '"')
	out = append(out, name...)
	if indent {
		return append(out, `": `...)
	}
	return append(out, `":`...)
}

// appendEstimateResponse renders the estimateResponse hot shape (same
// fields, same order as the struct's JSON tags) without reflection.
// degraded/fallback are emitted only when fallback is non-empty, matching
// the omitempty tags. With indent set the output is byte-identical to
// writeJSON's json.Encoder with SetIndent("", "  ") — including the
// trailing newline Encode appends — so fast-path and legacy unary
// responses are indistinguishable on the wire; without it the result is
// one compact line for the NDJSON stream.
func appendEstimateResponse(out []byte, module string, width int, seed int64,
	est []float64, enhanced bool, total, mean float64, fallback string, indent bool) []byte {
	fieldSep := ","
	if indent {
		out = append(out, "{\n  "...)
		fieldSep = ",\n  "
	} else {
		out = append(out, '{')
	}
	out = appendKey(out, "key", indent)
	out = append(out, '"')
	out = append(out, module...)
	out = append(out, "/w"...)
	out = strconv.AppendInt(out, int64(width), 10)
	out = append(out, "/s"...)
	out = strconv.AppendInt(out, seed, 10)
	out = append(out, '"')
	out = append(out, fieldSep...)
	out = appendKey(out, "cycles", indent)
	out = strconv.AppendInt(out, int64(len(est)), 10)
	out = append(out, fieldSep...)
	out = appendKey(out, "enhanced", indent)
	out = strconv.AppendBool(out, enhanced)
	out = append(out, fieldSep...)
	out = appendKey(out, "estimates", indent)
	switch {
	case len(est) == 0:
		out = append(out, "[]"...)
	case indent:
		out = append(out, "[\n    "...)
		for i, q := range est {
			if i > 0 {
				out = append(out, ",\n    "...)
			}
			out = appendJSONFloat(out, q)
		}
		out = append(out, "\n  ]"...)
	default:
		out = append(out, '[')
		for i, q := range est {
			if i > 0 {
				out = append(out, ',')
			}
			out = appendJSONFloat(out, q)
		}
		out = append(out, ']')
	}
	out = append(out, fieldSep...)
	out = appendKey(out, "total", indent)
	out = appendJSONFloat(out, total)
	out = append(out, fieldSep...)
	out = appendKey(out, "mean", indent)
	out = appendJSONFloat(out, mean)
	if fallback != "" {
		out = append(out, fieldSep...)
		out = appendKey(out, "degraded", indent)
		out = append(out, "true"...)
		out = append(out, fieldSep...)
		out = appendKey(out, "fallback", indent)
		out = append(out, '"')
		out = append(out, fallback...)
		out = append(out, '"')
	}
	if indent {
		out = append(out, "\n}\n"...)
	} else {
		out = append(out, '}')
	}
	return out
}

// wordMask returns the valid-bit mask for an m-bit word, m <= 64.
func wordMask(m int) uint64 {
	if m >= 64 {
		return ^uint64(0)
	}
	return (1 << uint(m)) - 1
}

// estimateWords prices a vector stream against a table without building
// logic.Word values: Hd and stable-zeros come straight from uint64
// bit-twiddling (identical, by definition, to logic.Hd/StableZeros for
// words that fit one limb). dst must have len(words)-1 entries.
func estimateWords(t *lut.Table, dst []float64, words []uint64, enhanced bool) float64 {
	mask := wordMask(t.InputBits)
	var total float64
	for i := 1; i < len(words); i++ {
		prev, cur := words[i-1]&mask, words[i]&mask
		hd := bits.OnesCount64(prev ^ cur)
		var q float64
		if enhanced {
			z := bits.OnesCount64(^(prev | cur) & mask)
			q = t.PEnhanced(hd, z)
		} else {
			q = t.P(hd)
		}
		dst[i-1] = q
		total += q
	}
	return total
}
